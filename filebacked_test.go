package rapidgzip

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
	"repro/internal/zstdx"
)

// writeTempFile writes data under dir and returns its path.
func writeTempFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sparseWorks probes whether dir's filesystem keeps unwritten regions
// as holes: a 64 MiB truncated file with 4 KiB of real data must
// allocate well under 1 MiB. Without hole support the harness's
// multi-GiB tiers would actually consume that much disk, so they skip.
func sparseWorks(t *testing.T, dir string) bool {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, "sparse-probe"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(64 << 20); err != nil {
		return false
	}
	if _, err := f.WriteAt([]byte("end"), 64<<20-8); err != nil {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	alloc, ok := allocatedBytes(fi)
	return ok && alloc < 1<<20
}

// TestLargerThanMemoryHarness is the proof of the file-backed span
// engine: synthetic sparse archives shaped like multi-gigabyte files
// (generated on the fly, seeded, no testdata blobs) open and serve
// random ReadAt with the compressed source never resident as a whole.
// The bytes-read/pread counters in Stats are the instrument — the open
// reads only metadata, and each access preads only the span extents it
// decodes. Size tiers are -short-gated: the small tier always runs;
// the larger-than-typical-CI-memory tier needs a full (non-short) run
// plus a filesystem that supports holes.
func TestLargerThanMemoryHarness(t *testing.T) {
	type tier struct {
		name         string
		format       Format
		content      int64 // decompressed (and, stored, roughly compressed) size
		frameContent int64
		blockSize    int // LZ4 and gzip stored-block size; zstd blocks are fixed at 128 KiB
		// spanCompMax bounds one engine span's compressed extent; zero
		// means frameContent plus framing slack (formats whose span is
		// one frame). BGZF groups many members per span and gzip cuts
		// chunk-sized spans, so they set it explicitly.
		spanCompMax uint64
		// viaIndex prebuilds and exports the seek-point index with a
		// throwaway open, then runs the harness against a reopen that
		// discovers it — plain gzip's random-access mode (a cold gzip
		// open can only grow its span table sequentially).
		viaIndex bool
	}
	tiers := []tier{
		{name: "small", format: FormatLZ4, content: 128 << 20, frameContent: 4 << 20, blockSize: 1 << 20},
		{name: "small", format: FormatZstd, content: 128 << 20, frameContent: 4 << 20},
		{name: "small", format: FormatBGZF, content: 64 << 20, frameContent: 65280, spanCompMax: 4<<20 + 64<<10},
		{name: "small", format: FormatGzip, content: 128 << 20, frameContent: 4 << 20, blockSize: 60_000,
			spanCompMax: 8<<20 + 64<<10, viaIndex: true},
	}
	if !testing.Short() {
		// The big tiers pin one format each so a full test run stays
		// minutes, not tens of minutes; geometry keeps the scan's
		// header-pread count in the low thousands.
		tiers = append(tiers,
			tier{name: "large-4GiB", format: FormatLZ4, content: 4 << 30, frameContent: 16 << 20, blockSize: 4 << 20},
			tier{name: "large-1GiB", format: FormatZstd, content: 1 << 30, frameContent: 8 << 20},
			tier{name: "large-1GiB", format: FormatBGZF, content: 1 << 30, frameContent: 65280, spanCompMax: 4<<20 + 64<<10},
			tier{name: "large-1GiB", format: FormatGzip, content: 1 << 30, frameContent: 8 << 20, blockSize: 65535,
				spanCompMax: 8<<20 + 64<<10, viaIndex: true},
		)
	}
	for _, ti := range tiers {
		format := ti.format
		t.Run(fmt.Sprintf("%s-%s", ti.name, format), func(t *testing.T) {
			dir := t.TempDir()
			if ti.content > 512<<20 && !sparseWorks(t, dir) {
				t.Skipf("filesystem does not keep holes; skipping %s tier", ti.name)
			}
			f, err := os.Create(filepath.Join(dir, "sparse-archive"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			numFrames := int((ti.content + ti.frameContent - 1) / ti.frameContent)
			dataFrames := []int{0, numFrames / 2, numFrames - 1}
			var plan *workloads.SparsePlan
			switch format {
			case FormatGzip:
				plan, err = workloads.WriteSparseGzip(f, ti.content, ti.frameContent, ti.blockSize, 42, dataFrames)
			case FormatBGZF:
				plan, err = workloads.WriteSparseBGZF(f, ti.content, ti.frameContent, 42, dataFrames)
			case FormatLZ4:
				plan, err = workloads.WriteSparseLZ4(f, ti.content, ti.frameContent, ti.blockSize, 42, dataFrames)
			case FormatZstd:
				plan, err = workloads.WriteSparseZstd(f, ti.content, ti.frameContent, 42, dataFrames)
			}
			if err != nil {
				t.Fatal(err)
			}
			// Flush generation before scanning: interleaving the scan's
			// preads with writeback of the freshly written headers is
			// measurably pathological on some filesystems.
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}

			if ti.viaIndex {
				// Throwaway sequential open: grow the span table over the
				// whole file once and persist it as the sibling index the
				// harness open below discovers.
				cold, err := Open(f.Name(), WithParallelism(4), WithoutIndexDiscovery())
				if err != nil {
					t.Fatal(err)
				}
				ixf, err := os.Create(f.Name() + IndexSuffix)
				if err != nil {
					t.Fatal(err)
				}
				err = cold.ExportIndex(ixf)
				if cerr := ixf.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := cold.Close(); err != nil {
					t.Fatal(err)
				}
			}

			opts := []Option{WithParallelism(2), WithMaxPrefetch(2)}
			if !ti.viaIndex {
				opts = append(opts, WithoutIndexDiscovery())
			}
			a, err := Open(f.Name(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			if size, _ := a.Size(); size != plan.ContentSize {
				t.Fatalf("Size = %d, want %d", size, plan.ContentSize)
			}
			if !a.Capabilities().RandomAccess {
				t.Fatal("multi-frame sparse archive reports no random access")
			}

			open := a.Stats()
			if ti.viaIndex {
				// The index reopen contract, counter-asserted: the span
				// table comes from the sibling index — no sizing pass, no
				// source bytes touched before the first access (the
				// fingerprint probe reads outside the counters).
				if open.SizingPasses != 0 || open.SizingDecodes != 0 {
					t.Fatalf("index reopen ran a sizing pass: %+v", open)
				}
				if open.SourceReads != 0 || open.SourceBytesRead != 0 {
					t.Fatalf("index reopen read %d source bytes in %d preads before any access; want zero",
						open.SourceBytesRead, open.SourceReads)
				}
			} else {
				if open.SizingPasses != 1 || open.SizingDecodes != 0 {
					t.Fatalf("metadata-sized open ran sizing decodes: %+v", open)
				}
				// The open is a header walk: windowed reads around frame and
				// block headers, a low single-digit percentage of the file.
				scanBound := uint64(plan.CompressedSize/8) + 64<<10
				if open.SourceBytesRead > scanBound {
					t.Fatalf("open read %d source bytes of a %d-byte file (bound %d): not a windowed metadata scan",
						open.SourceBytesRead, plan.CompressedSize, scanBound)
				}
				if open.SourceReads == 0 {
					t.Fatal("file-backed open reported zero source reads")
				}
			}

			// Random accesses: data frames (seeded payload), hole frames
			// (zeros), a frame boundary straddle, and the file tail.
			readSize := 64 << 10
			offsets := []int64{
				0,
				ti.frameContent/2 + 123,
				int64(numFrames/2)*ti.frameContent + 7, // data frame
				ti.frameContent - int64(readSize)/2,    // straddles frames 0/1
				int64(numFrames/4)*ti.frameContent + 9, // hole frame
				plan.ContentSize - int64(readSize) - 1,
			}
			buf := make([]byte, readSize)
			for _, off := range offsets {
				n, err := a.ReadAt(buf, off)
				if err != nil && err != io.EOF {
					t.Fatalf("ReadAt(%d): %v", off, err)
				}
				if n != readSize {
					t.Fatalf("ReadAt(%d): %d of %d bytes", off, n, readSize)
				}
				if want := plan.ExpectedAt(off, n); !bytes.Equal(buf[:n], want) {
					t.Fatalf("ReadAt(%d): content mismatch against generation plan", off)
				}
			}

			s := a.Stats()
			if s.SizingDecodes != 0 {
				t.Fatalf("random access triggered sizing decodes: %+v", s)
			}
			// Every pread after the scan serves a span decode, and a span's
			// compressed extent is its content plus per-block framing: the
			// total source traffic must be explained by the decode count —
			// extent-granular reads, not whole-file ones. Up to MaxPrefetch
			// decodes may still be in flight when the counters are sampled
			// (their preads land before their completions), hence the +2.
			spanCompMax := uint64(ti.frameContent) + 64<<10
			if ti.spanCompMax != 0 {
				spanCompMax = ti.spanCompMax
			}
			accessBytes := s.SourceBytesRead - open.SourceBytesRead
			if accessBytes > (s.SpanDecodes+2)*spanCompMax {
				t.Fatalf("%d source bytes for %d span decodes (max %d per span): reads are not extent-granular",
					accessBytes, s.SpanDecodes, spanCompMax)
			}
			if s.SpanDecodes == 0 || s.SpanDecodes >= uint64(numFrames) {
				t.Fatalf("%d span decodes for %d targeted reads over %d frames: expected a small, access-driven subset",
					s.SpanDecodes, len(offsets), numFrames)
			}
			if s.SourceBytesRead >= uint64(plan.CompressedSize) {
				t.Fatalf("read %d bytes of a %d-byte file: the whole compressed file was materialized",
					s.SourceBytesRead, plan.CompressedSize)
			}
		})
	}
}

// fileBackedFixture compresses seeded content into the given format and
// writes it to a temp file, returning the path and the plain content.
func fileBackedFixture(t *testing.T, dir string, format Format, contentSize int) (string, []byte) {
	t.Helper()
	content := workloads.Base64(contentSize, 7)
	var comp []byte
	var name string
	var err error
	switch format {
	case FormatGzip:
		comp, _, err = gzipw.Compress(content, gzipw.Options{Level: 1, BlockSize: 32 << 10})
		name = "fixture.gz"
	case FormatBGZF:
		comp, _, err = gzipw.Compress(content, gzipw.Options{Level: 1, BGZF: true})
		name = "fixture.bgzf"
	case FormatBzip2:
		comp, err = bzip2x.Compress(content, bzip2x.WriterOptions{Level: 1, StreamSize: 256 << 10})
		name = "fixture.bz2"
	case FormatLZ4:
		comp = lz4x.CompressFrames(content, lz4x.FrameOptions{FrameSize: 256 << 10, ContentChecksum: true})
		name = "fixture.lz4"
	case FormatZstd:
		comp = zstdx.CompressFrames(content, zstdx.FrameOptions{Level: 1, FrameSize: 256 << 10, ContentChecksum: true})
		name = "fixture.zst"
	default:
		t.Fatalf("no file-backed fixture for %v", format)
	}
	if err != nil {
		t.Fatal(err)
	}
	return writeTempFile(t, dir, name, comp), content
}

// spanFormats are the five span-engine formats the file-backed matrix
// covers — since the gzip/BGZF chunk pipeline runs on the shared
// engine, gzip and BGZF go through the same file-backed contracts as
// the rest. The WithChunkSize in the matrix opens only affects
// gzip/BGZF (span granularity is format-inherent elsewhere) and keeps
// their span tables multi-entry at these fixture sizes.
var spanFormats = []Format{FormatGzip, FormatBGZF, FormatBzip2, FormatLZ4, FormatZstd}

// TestFileBackedConcurrentReadAt mirrors the in-memory concurrent
// matrix over real files: 8 goroutines hammer random offsets of a
// file-backed archive per format, under -race in CI.
func TestFileBackedConcurrentReadAt(t *testing.T) {
	for _, format := range spanFormats {
		t.Run(format.String(), func(t *testing.T) {
			path, content := fileBackedFixture(t, t.TempDir(), format, 2<<20)
			a, err := Open(path, WithParallelism(4), WithChunkSize(256<<10), WithoutIndexDiscovery())
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					buf := make([]byte, 3000)
					for i := 0; i < 40; i++ {
						off := int64((g*977 + i*31337) % (len(content) - len(buf)))
						n, err := a.ReadAt(buf, off)
						if err != nil || n != len(buf) {
							t.Errorf("ReadAt(%d): n=%d err=%v", off, n, err)
							return
						}
						if !bytes.Equal(buf, content[off:off+int64(n)]) {
							t.Errorf("ReadAt(%d): mismatch", off)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if s := a.Stats(); s.SourceReads == 0 {
				t.Fatalf("file-backed archive served reads with zero source preads: %+v", s)
			}
		})
	}
}

// TestFileBackedEvictionPressureMidPrefetch squeezes the span cache (2
// slots) under a deep prefetch (8) while decodes pread a real temp
// file: evictions must land mid-flight without corrupting content or
// wedging the engine.
func TestFileBackedEvictionPressureMidPrefetch(t *testing.T) {
	for _, format := range spanFormats {
		t.Run(format.String(), func(t *testing.T) {
			path, content := fileBackedFixture(t, t.TempDir(), format, 4<<20)
			a, err := Open(path, WithParallelism(4), WithChunkSize(256<<10),
				WithAccessCacheSize(2), WithMaxPrefetch(8), WithoutIndexDiscovery())
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			buf := make([]byte, 48<<10)
			var off int64
			for off < int64(len(content)) {
				n, err := a.ReadAt(buf, off)
				if n > 0 {
					if !bytes.Equal(buf[:n], content[off:off+int64(n)]) {
						t.Fatalf("mismatch at offset %d", off)
					}
					off += int64(n)
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("ReadAt(%d): %v", off, err)
				}
			}
			if off != int64(len(content)) {
				t.Fatalf("consumed %d of %d bytes", off, len(content))
			}
			if s := a.Stats(); s.SpanCacheEvictions == 0 {
				t.Fatalf("no evictions under a 2-span cache with prefetch depth 8: %+v", s)
			}
		})
	}
}

// TestFileBackedReopenWithIndexZeroSizing is the counter-asserted
// reopen contract: opening a file-backed archive with a sibling or
// explicitly imported RGZIDX04 index runs zero sizing passes and zero
// sizing decodes, touches zero source bytes at open (the engine's
// counters — the fingerprint probe reads outside it), and serves the
// first access with span-extent preads only, never a whole-file read.
func TestFileBackedReopenWithIndexZeroSizing(t *testing.T) {
	for _, format := range spanFormats {
		for _, mode := range []string{"sibling", "explicit"} {
			t.Run(format.String()+"-"+mode, func(t *testing.T) {
				dir := t.TempDir()
				path, content := fileBackedFixture(t, dir, format, 2<<20)

				// Cold open builds the checkpoint table; export it.
				cold, err := Open(path, WithParallelism(2), WithChunkSize(256<<10), WithoutIndexDiscovery())
				if err != nil {
					t.Fatal(err)
				}
				ixPath := path + IndexSuffix
				if mode == "explicit" {
					ixPath = filepath.Join(dir, "elsewhere.rgzidx")
				}
				ixf, err := os.Create(ixPath)
				if err != nil {
					t.Fatal(err)
				}
				err = cold.ExportIndex(ixf)
				if cerr := ixf.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := cold.Close(); err != nil {
					t.Fatal(err)
				}

				opts := []Option{WithParallelism(2), WithChunkSize(256 << 10)}
				if mode == "explicit" {
					opts = append(opts, WithIndexFile(ixPath))
				}
				a, err := Open(path, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer a.Close()

				s := a.Stats()
				if s.SizingPasses != 0 || s.SizingDecodes != 0 {
					t.Fatalf("reopen with index ran a sizing pass: %+v", s)
				}
				if s.SourceBytesRead != 0 || s.SourceReads != 0 {
					t.Fatalf("reopen with index read %d source bytes in %d preads before any access; want zero",
						s.SourceBytesRead, s.SourceReads)
				}
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}

				buf := make([]byte, 64<<10)
				off := int64(len(content) / 2)
				if _, err := a.ReadAt(buf, off); err != nil && err != io.EOF {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, content[off:off+int64(len(buf))]) {
					t.Fatalf("content mismatch through imported checkpoints")
				}
				s = a.Stats()
				if s.SizingPasses != 0 || s.SizingDecodes != 0 {
					t.Fatalf("access after index reopen ran a sizing pass: %+v", s)
				}
				if s.SourceReads == 0 {
					t.Fatal("access after index reopen issued no source preads")
				}
				// Span extents only: the one access (plus its prefetches)
				// cannot amount to the whole compressed file.
				if s.SourceBytesRead >= uint64(fi.Size()) {
					t.Fatalf("access read %d bytes of a %d-byte file: whole-file read after index reopen",
						s.SourceBytesRead, fi.Size())
				}
			})
		}
	}
}

// TestFileBackedMatchesInMemory pins WithInMemory as a pure backing
// swap: identical content, capabilities and span table either way.
func TestFileBackedMatchesInMemory(t *testing.T) {
	for _, format := range spanFormats {
		t.Run(format.String(), func(t *testing.T) {
			path, content := fileBackedFixture(t, t.TempDir(), format, 1<<20)
			fb, err := Open(path, WithParallelism(2), WithChunkSize(256<<10), WithoutIndexDiscovery())
			if err != nil {
				t.Fatal(err)
			}
			defer fb.Close()
			im, err := Open(path, WithParallelism(2), WithChunkSize(256<<10), WithoutIndexDiscovery(), WithInMemory())
			if err != nil {
				t.Fatal(err)
			}
			defer im.Close()
			if fb.Capabilities() != im.Capabilities() {
				t.Fatalf("capabilities diverge: file-backed %+v, in-memory %+v", fb.Capabilities(), im.Capabilities())
			}
			var fbOut, imOut bytes.Buffer
			if _, err := fb.WriteTo(&fbOut); err != nil {
				t.Fatal(err)
			}
			if _, err := im.WriteTo(&imOut); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fbOut.Bytes(), content) || !bytes.Equal(imOut.Bytes(), content) {
				t.Fatal("backing swap changed decoded content")
			}
		})
	}
}

// TestOpenFailurePaths table-tests the file-backed constructor's
// failure modes: every case must yield a nil archive and a typed error
// — never a panic. A stattable-but-unreadable source (the classic: a
// directory, or anything whose preads fail after a successful stat) is
// ErrSourceRead; readable-but-unrecognizable bytes stay
// ErrUnsupportedFormat.
func TestOpenFailurePaths(t *testing.T) {
	dir := t.TempDir()
	gz, _, err := gzipw.Compress(workloads.Base64(64<<10, 3), gzipw.Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	bgzf, _, err := gzipw.Compress(workloads.Base64(64<<10, 3), gzipw.Options{Level: 1, BGZF: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		path string
		opts []Option
		want error // nil = any non-nil error
	}{
		{name: "nonexistent", path: filepath.Join(dir, "missing.lz4"), want: fs.ErrNotExist},
		{name: "directory-sniffed", path: dir, want: ErrSourceRead},
		{name: "directory-forced-gzip", path: dir, opts: []Option{WithFormat(FormatGzip)}, want: ErrSourceRead},
		{name: "directory-forced-bgzf", path: dir, opts: []Option{WithFormat(FormatBGZF)}, want: ErrSourceRead},
		{name: "directory-forced-lz4", path: dir, opts: []Option{WithFormat(FormatLZ4)}, want: ErrSourceRead},
		{name: "directory-forced-bzip2", path: dir, opts: []Option{WithFormat(FormatBzip2)}, want: ErrSourceRead},
		{name: "directory-forced-zstd", path: dir, opts: []Option{WithFormat(FormatZstd)}, want: ErrSourceRead},
		{name: "empty-file", path: writeTempFile(t, dir, "empty", nil), want: ErrUnsupportedFormat},
		{name: "no-magic", path: writeTempFile(t, dir, "garbage", []byte("this is not compressed data at all")), want: ErrUnsupportedFormat},
		{
			// The magic bytes sniff as gzip, but the member header is cut
			// short: the open-time header parse must fail loudly.
			name: "truncated-gzip-header",
			path: writeTempFile(t, dir, "cut.gz", gz[:8]),
		},
		{
			// Cut mid-member: the BGZF metadata scan walks member headers
			// at open and must report the member overrunning the file.
			name: "truncated-bgzf-member",
			path: writeTempFile(t, dir, "cut.bgzf", bgzf[:len(bgzf)/2]),
		},
		{
			name: "truncated-lz4",
			path: writeTempFile(t, dir, "cut.lz4",
				lz4x.CompressFrames(workloads.Base64(64<<10, 3), lz4x.FrameOptions{})[:20<<10]),
		},
		{
			name: "truncated-zstd",
			path: writeTempFile(t, dir, "cut.zst",
				zstdx.CompressFrames(workloads.Base64(64<<10, 3), zstdx.FrameOptions{Level: 1})[:10<<10]),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Open(tc.path, tc.opts...)
			if err == nil {
				a.Close()
				t.Fatalf("Open(%s) succeeded; want an error", tc.name)
			}
			if a != nil {
				t.Fatalf("Open(%s) returned a non-nil archive alongside error %v", tc.name, err)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("Open(%s) = %v; want errors.Is(err, %v)", tc.name, err, tc.want)
			}
		})
	}
}
