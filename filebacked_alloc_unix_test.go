//go:build unix

package rapidgzip

import (
	"os"
	"syscall"
)

// allocatedBytes reports the disk blocks actually backing a file —
// how the sparse-archive harness checks that holes stayed holes.
func allocatedBytes(fi os.FileInfo) (int64, bool) {
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok {
		return 0, false
	}
	return st.Blocks * 512, true
}
