package rapidgzip

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
	"repro/internal/zstdx"
)

// fixtureSet builds one compressed fixture per supported format from
// the same uncompressed corpus.
func fixtureSet(t *testing.T, data []byte) map[Format][]byte {
	t.Helper()
	gz, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	bgzf, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true})
	if err != nil {
		t.Fatal(err)
	}
	bz, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1, StreamSize: 100 << 10})
	if err != nil {
		t.Fatal(err)
	}
	lz := lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 100 << 10, ContentChecksum: true})
	zs := zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 100 << 10, ContentChecksum: true})
	return map[Format][]byte{
		FormatGzip:  gz,
		FormatBGZF:  bgzf,
		FormatBzip2: bz,
		FormatLZ4:   lz,
		FormatZstd:  zs,
	}
}

// TestOpenSniffMatrix is the acceptance matrix: one Open call with no
// format hint must detect, fully decompress and randomly access every
// supported format.
func TestOpenSniffMatrix(t *testing.T) {
	data := workloads.Base64(500_000, 77)
	dir := t.TempDir()
	for format, comp := range fixtureSet(t, data) {
		t.Run(format.String(), func(t *testing.T) {
			path := filepath.Join(dir, "data."+format.String())
			if err := os.WriteFile(path, comp, 0o644); err != nil {
				t.Fatal(err)
			}
			a, err := Open(path, WithParallelism(4), WithChunkSize(64<<10))
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()

			if a.Format() != format {
				t.Fatalf("Format = %v, want %v", a.Format(), format)
			}
			caps := a.Capabilities()
			if !caps.Seek || !caps.RandomAccess || !caps.Parallel || !caps.Prefetch {
				t.Fatalf("capabilities %+v: multi-chunk fixtures must be seekable, parallel and prefetching", caps)
			}
			if !caps.Index {
				t.Fatalf("capabilities %+v: every format persists an index now", caps)
			}

			// Full sequential decompression.
			var out bytes.Buffer
			if n, err := io.Copy(&out, a); err != nil || n != int64(len(data)) {
				t.Fatalf("Copy: n=%d err=%v", n, err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatal("decompressed content mismatch")
			}
			if size, err := a.Size(); err != nil || size != int64(len(data)) {
				t.Fatalf("Size = %d, %v", size, err)
			}

			// ReadAt at arbitrary offsets, without disturbing the cursor.
			for _, off := range []int64{0, 1, 65_535, 250_000, int64(len(data)) - 100} {
				buf := make([]byte, 100)
				if _, err := a.ReadAt(buf, off); err != nil && err != io.EOF {
					t.Fatalf("ReadAt(%d): %v", off, err)
				}
				if !bytes.Equal(buf, data[off:off+100]) {
					t.Fatalf("ReadAt(%d): content mismatch", off)
				}
			}

			// Seek + Read.
			if _, err := a.Seek(123_456, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 64)
			if _, err := io.ReadFull(a, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data[123_456:123_456+64]) {
				t.Fatal("Seek+Read mismatch")
			}

			// Concurrent ReadAt (exercised under -race in CI).
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(seed))
					p := make([]byte, 2000)
					for i := 0; i < 15; i++ {
						off := rnd.Int63n(int64(len(data)))
						n, err := a.ReadAt(p, off)
						if err != nil && err != io.EOF {
							t.Errorf("ReadAt(%d): %v", off, err)
							return
						}
						if !bytes.Equal(p[:n], data[off:off+int64(n)]) {
							t.Errorf("ReadAt(%d): mismatch", off)
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
		})
	}
}

func TestOpenBytesSniffMatrix(t *testing.T) {
	data := workloads.FASTQ(200_000, 5)
	for format, comp := range fixtureSet(t, data) {
		a, err := OpenBytes(comp, WithParallelism(2))
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if a.Format() != format {
			t.Fatalf("Format = %v, want %v", a.Format(), format)
		}
		var out bytes.Buffer
		if _, err := io.Copy(&out, a); err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("%v: content mismatch", format)
		}
		a.Close()
	}
}

func TestOpenUnsupportedFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.xz")
	// XZ magic: recognised by nothing here.
	if err := os.WriteFile(path, []byte{0xFD, '7', 'z', 'X', 'Z', 0x00, 1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrUnsupportedFormat) {
		t.Fatalf("err = %v, want ErrUnsupportedFormat", err)
	}
}

// TestOpenDegenerateInputs pins the sniffing contract for inputs too
// short to carry any magic: Open and OpenBytes must fail with the typed
// ErrUnsupportedFormat from the sniffer, never a short-read error
// surfacing from inside a backend.
func TestOpenDegenerateInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"one-byte":     {0x1F},
		"two-bytes":    {0x1F, 0x8B},
		"three-bytes":  {0x28, 0xB5, 0x2F},
		"garbage":      {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33},
		"text":         []byte("hi"),
		"magic-prefix": {'B', 'Z'},
	}
	dir := t.TempDir()
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := OpenBytes(content); !errors.Is(err, ErrUnsupportedFormat) {
				t.Fatalf("OpenBytes: err = %v, want ErrUnsupportedFormat", err)
			}
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(path); !errors.Is(err, ErrUnsupportedFormat) {
				t.Fatalf("Open: err = %v, want ErrUnsupportedFormat", err)
			}
		})
	}
}

func TestWithFormatOverride(t *testing.T) {
	data := workloads.Base64(100_000, 9)
	lz := lz4x.CompressFrames(data, lz4x.FrameOptions{})
	// Forcing the right format works.
	a, err := OpenBytes(lz, WithFormat(FormatLZ4))
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	// Forcing the wrong format must fail with the backend's parse error,
	// not decode garbage.
	if _, err := OpenBytes(lz, WithFormat(FormatGzip)); err == nil {
		t.Fatal("gzip backend accepted an LZ4 file")
	}
	// Unsupported Format values fail at option time.
	if _, err := OpenBytes(lz, WithFormat(Format(99))); !errors.Is(err, ErrUnsupportedFormat) {
		t.Fatalf("err = %v, want ErrUnsupportedFormat", err)
	}
}

// TestStrategyValidation pins the bugfix: an unknown strategy name must
// be an error everywhere, not silently fall through to adaptive.
func TestStrategyValidation(t *testing.T) {
	data := gzipBytes(t, workloads.Base64(10_000, 1))

	if _, err := OpenBytes(data, WithStrategy("multistrem")); err == nil {
		t.Fatal("WithStrategy accepted a typo")
	}
	if _, err := NewBytesReader(data, Options{Strategy: "multistrem"}); err == nil {
		t.Fatal("legacy Options accepted a typo strategy")
	}
	for _, ok := range []string{"", "adaptive", "fixed", "multistream"} {
		r, err := NewBytesReader(data, Options{Strategy: ok})
		if err != nil {
			t.Fatalf("strategy %q rejected: %v", ok, err)
		}
		r.Close()
	}
}

func TestIndexAutoDiscovery(t *testing.T) {
	data := workloads.Base64(400_000, 33)
	comp := gzipBytes(t, data)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.gz")
	if err := os.WriteFile(path, comp, 0o644); err != nil {
		t.Fatal(err)
	}

	// Save a sibling index.
	r, err := Open(path, WithChunkSize(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	ixf, err := os.Create(path + IndexSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ExportIndex(ixf); err != nil {
		t.Fatal(err)
	}
	ixf.Close()
	r.Close()

	// A later Open picks it up transparently: the block finder never
	// runs, which FinderProbes witnesses.
	r2, err := Open(path, WithChunkSize(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := io.Copy(&out, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("content mismatch through discovered index")
	}
	if probes := r2.Stats().FinderProbes; probes != 0 {
		t.Fatalf("discovered index should make the run fully indexed; finder probed %d times", probes)
	}
	r2.Close()

	// Opt-out: the same open scans from scratch.
	r3, err := Open(path, WithChunkSize(32<<10), WithoutIndexDiscovery())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3)
	if probes := r3.Stats().FinderProbes; probes == 0 {
		t.Fatal("WithoutIndexDiscovery still used the sibling index")
	}
	r3.Close()

	// A corrupt sibling index must not break Open — fall back to a scan.
	if err := os.WriteFile(path+IndexSuffix, []byte("RGZIDX03 garbage that is not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	r4, err := Open(path, WithChunkSize(32<<10))
	if err != nil {
		t.Fatalf("corrupt sibling index broke Open: %v", err)
	}
	out.Reset()
	if _, err := io.Copy(&out, r4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("content mismatch after fallback")
	}
	r4.Close()

	// An index for a *different* file of the same size is rejected by
	// the source fingerprint and likewise falls back to a scan. The
	// "other" file flips only the gzip header's OS byte: still a valid
	// gzip of identical length and content, but a different file as far
	// as the fingerprint is concerned.
	other := bytes.Clone(comp)
	other[9] ^= 0xFF
	otherPath := filepath.Join(dir, "other.gz")
	if err := os.WriteFile(otherPath, other, 0o644); err != nil {
		t.Fatal(err)
	}
	// Regenerate a valid index for data.gz, then hand it to other.gz.
	r5, err := Open(path, WithChunkSize(32<<10), WithoutIndexDiscovery())
	if err != nil {
		t.Fatal(err)
	}
	ixf2, err := os.Create(otherPath + IndexSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if err := r5.ExportIndex(ixf2); err != nil {
		t.Fatal(err)
	}
	ixf2.Close()
	r5.Close()

	r6, err := Open(otherPath, WithChunkSize(32<<10))
	if err != nil {
		t.Fatalf("wrong-file sibling index broke Open: %v", err)
	}
	out.Reset()
	if _, err := io.Copy(&out, r6); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("content mismatch after fingerprint fallback")
	}
	if probes := r6.Stats().FinderProbes; probes == 0 {
		t.Fatal("an index fingerprinted for a different file was imported anyway")
	}
	r6.Close()
}

func TestWithIndexFile(t *testing.T) {
	data := workloads.Base64(300_000, 44)
	comp := gzipBytes(t, data)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.gz")
	ixPath := filepath.Join(dir, "saved.idx")
	if err := os.WriteFile(path, comp, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, WithChunkSize(32<<10), WithoutIndexDiscovery())
	if err != nil {
		t.Fatal(err)
	}
	ixf, err := os.Create(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ExportIndex(ixf); err != nil {
		t.Fatal(err)
	}
	ixf.Close()
	r.Close()

	r2, err := Open(path, WithChunkSize(32<<10), WithIndexFile(ixPath))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	var out bytes.Buffer
	if _, err := io.Copy(&out, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("content mismatch through explicit index")
	}
	if probes := r2.Stats().FinderProbes; probes != 0 {
		t.Fatalf("explicit index import still probed the finder %d times", probes)
	}

	// A gzip index carries a "gzip"-tagged checkpoint table, so handing
	// it to a bzip2 archive is a format mismatch, not a silent fallback.
	bz, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	bzPath := filepath.Join(dir, "data.bz2")
	if err := os.WriteFile(bzPath, bz, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bzPath, WithIndexFile(ixPath)); err == nil || !strings.Contains(err.Error(), "checkpoint table is for format") {
		t.Fatalf("err = %v, want checkpoint-table format mismatch", err)
	}

	// Unlike discovery, an explicit index must fail loudly when broken —
	// for the gzip backend and the span-engine backends alike.
	if err := os.WriteFile(ixPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, WithIndexFile(ixPath)); err == nil {
		t.Fatal("broken explicit index accepted")
	}
	if _, err := Open(bzPath, WithIndexFile(ixPath)); err == nil {
		t.Fatal("broken explicit index accepted by the bzip2 backend")
	}
}

// TestMemArchiveIndexMethods exercises the checkpoint-table index
// round trip on a span-engine backend: export from one archive, import
// into another over the same bytes, and read through the imported
// table.
func TestMemArchiveIndexMethods(t *testing.T) {
	data := workloads.Base64(50_000, 3)
	lz := lz4x.CompressFrames(data, lz4x.FrameOptions{FrameSize: 10_000})
	a, err := OpenBytes(lz)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.BuildIndex(); err != nil {
		t.Fatalf("BuildIndex on checkpointed backend: %v", err)
	}
	var ix bytes.Buffer
	if err := a.ExportIndex(&ix); err != nil {
		t.Fatalf("ExportIndex: %v", err)
	}

	b, err := OpenBytes(lz)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.ImportIndex(bytes.NewReader(ix.Bytes())); err != nil {
		t.Fatalf("ImportIndex: %v", err)
	}
	buf := make([]byte, 1000)
	if _, err := b.ReadAt(buf, 20_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[20_000:21_000]) {
		t.Fatal("content mismatch after checkpoint-table import")
	}

	// An index for different bytes of the same length is rejected by
	// the fingerprint.
	other := bytes.Clone(lz)
	other[30] ^= 0x01 // flip inside the first block's payload (scanner-invisible)
	c, err := OpenBytes(other)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ImportIndex(bytes.NewReader(ix.Bytes())); err == nil {
		t.Fatal("index for different bytes imported")
	}
	// The gzip counters stay zero on span-engine backends.
	if s := a.Stats(); s.ChunksConsumed != 0 || s.GuessTasks != 0 || s.FinderProbes != 0 {
		t.Fatalf("gzip fetcher counters should be zero on a span backend, got %+v", s)
	}
}

// TestCapabilitiesNonSeekableCases pins the honesty requirement: a
// single-stream bzip2 file and a single-frame LZ4 file are readable
// and seekable only at whole-file granularity, so RandomAccess must be
// false while multi-chunk fixtures report true.
func TestCapabilitiesNonSeekableCases(t *testing.T) {
	data := workloads.Base64(150_000, 8)

	bzSingle, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenBytes(bzSingle)
	if err != nil {
		t.Fatal(err)
	}
	if caps := a.Capabilities(); caps.RandomAccess || caps.Parallel {
		t.Fatalf("single-stream bzip2 capabilities %+v: RandomAccess and Parallel must be false", caps)
	}
	a.Close()

	lzSingle := lz4x.CompressFrames(data, lz4x.FrameOptions{})
	a, err = OpenBytes(lzSingle)
	if err != nil {
		t.Fatal(err)
	}
	if caps := a.Capabilities(); caps.RandomAccess || caps.Parallel {
		t.Fatalf("single-frame LZ4 capabilities %+v: RandomAccess and Parallel must be false", caps)
	}
	if a.Capabilities().Verify {
		t.Fatal("LZ4 without checksums must not claim Verify")
	}
	// Seek still works — it just costs a full decode.
	buf := make([]byte, 10)
	if _, err := a.ReadAt(buf, 100_000); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[100_000:100_010]) {
		t.Fatal("ReadAt mismatch on single-frame LZ4")
	}
	a.Close()
}

// TestTarFSOverNonGzipArchive exercises the tarfs-consumes-Archive
// plumbing: a .tar.bz2 serves files exactly like a .tar.gz.
func TestTarFSOverNonGzipArchive(t *testing.T) {
	tarData := workloads.SilesiaLike(400_000, 12) // emits real TAR framing
	bz, err := bzip2x.Compress(tarData, bzip2x.WriterOptions{Level: 1, StreamSize: 100 << 10})
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenBytes(bz)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	fsys, err := TarFS(a)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fsys.(interface {
		ReadDir(string) ([]os.DirEntry, error)
	}).ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries in tar.bz2 filesystem")
	}
}
