//go:build !unix

package rapidgzip

import "os"

// allocatedBytes has no portable implementation off unix; the harness
// treats that as "cannot prove holes work" and skips its big tiers.
func allocatedBytes(os.FileInfo) (int64, bool) { return 0, false }
