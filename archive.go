package rapidgzip

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"

	"repro/internal/bzip2x"
	"repro/internal/core"
	"repro/internal/filereader"
	"repro/internal/gzindex"
	"repro/internal/lz4x"
	"repro/internal/spanengine"
	"repro/internal/zstdx"
)

// Archive is the format-agnostic face of the package: one interface
// over the decompressed stream of a gzip, BGZF, bzip2, LZ4 or zstd
// file, served by whichever backend Open dispatched to. All methods
// are safe for concurrent use.
//
// Every format persists an index: gzip/BGZF export seek points with
// windows, bzip2/LZ4/zstd export their checkpoint tables — either way,
// reopening with the index skips the initial scan or sizing pass.
type Archive interface {
	io.Reader
	io.Seeker
	io.ReaderAt
	io.WriterTo
	io.Closer

	// Size returns the decompressed size, completing whatever scan the
	// backend needs first.
	Size() (int64, error)
	// DecompressedSize reports the decompressed size when it is already
	// known without any decoding — always for bzip2/LZ4/zstd (the sizing
	// pass ran at open) and for gzip/BGZF once the chunk table is
	// complete (index imported, BGZF metadata scan, or a finished first
	// pass). ok=false means answering would cost a decode; callers that
	// must stay cheap (a server emitting Content-Length) branch on it
	// instead of calling Size.
	DecompressedSize() (size int64, ok bool)
	// BuildIndex completes the backend's seek checkpoints for the whole
	// file, making every subsequent Seek/ReadAt constant-time where the
	// format allows it.
	BuildIndex() error
	// ExportIndex serialises the seek-point index or checkpoint table.
	ExportIndex(w io.Writer) error
	// ImportIndex installs a previously exported index.
	ImportIndex(rd io.Reader) error
	// Stats returns a snapshot of backend activity counters.
	Stats() Stats
	// Format reports the detected (or forced) container format.
	Format() Format
	// Capabilities reports what this archive can actually do.
	Capabilities() Capabilities
}

// IndexSuffix is the sibling-file extension Open probes for index
// auto-discovery: "file.gz" → "file.gz.rgzidx".
const IndexSuffix = ".rgzidx"

// Open opens the compressed file at path behind one format-agnostic
// front door: the content's magic bytes select the backend (gzip,
// BGZF, bzip2, LZ4 or zstd — WithFormat overrides), and the returned
// Archive serves parallel decompression and, where the format allows,
// checkpointed random access. Content that matches no supported magic
// fails with ErrUnsupportedFormat; a file whose bytes cannot be read
// at all (a directory, a truncated or vanished file) fails with
// ErrSourceRead.
//
// Every format is file-backed: the compressed bytes stay on disk and
// each decode preads only the extents it needs, so archives larger
// than RAM open and serve random access with bounded resident memory
// (WithInMemory restores the old load-it-all behavior for small files
// on slow storage).
//
// A sibling "path.rgzidx" index saved by a previous run is imported
// automatically when present and valid (disable with
// WithoutIndexDiscovery, force a specific file with WithIndexFile).
// For gzip/BGZF the import skips the initial decompression pass; for
// bzip2/LZ4/zstd it skips the sizing pass.
func Open(path string, opts ...Option) (Archive, error) {
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	src, err := filereader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	a, err := openArchive(src, path, cfg)
	if err != nil {
		src.Close()
		return nil, err
	}
	switch t := a.(type) {
	case *Reader:
		if t.fileBacked {
			t.owned = src
		} else {
			// WithInMemory copied the data out; the file is done.
			src.Close()
		}
	case *spanArchive:
		if t.fileBacked {
			t.owned = src
		} else {
			src.Close()
		}
	default:
		src.Close()
	}
	return a, nil
}

// OpenBytes opens an in-memory compressed buffer with the same
// sniffing dispatch as Open. No index auto-discovery (there is no
// sibling file), but WithIndexFile still works for every format.
func OpenBytes(data []byte, opts ...Option) (Archive, error) {
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	return openArchive(filereader.MemoryReader(data), "", cfg)
}

// openArchive dispatches src to a backend by sniffed or forced format.
// path is only used to locate a sibling index ("" disables discovery).
func openArchive(src filereader.FileReader, path string, cfg config) (Archive, error) {
	format := cfg.format
	if format == FormatUnknown {
		prefix := make([]byte, SniffLen)
		n, rerr := src.ReadAt(prefix, 0)
		format = DetectFormat(prefix[:n])
		if format == FormatUnknown {
			// A real read failure is an I/O problem, not a format
			// verdict — callers branching on ErrUnsupportedFormat must
			// not mistake a flaky disk (or a directory opened as a
			// file) for a wrong file type. (EOF just means the file is
			// shorter than the sniff window.)
			if rerr != nil && !errors.Is(rerr, io.EOF) {
				return nil, fmt.Errorf("%w: sniffing input: %w", ErrSourceRead, rerr)
			}
			// Classify here, before any backend sees the data: an
			// empty or undersized file must fail with the typed sniff
			// error, not a short-read error from deeper in a decoder.
			if n == 0 {
				return nil, fmt.Errorf("%w: empty input", ErrUnsupportedFormat)
			}
			return nil, fmt.Errorf("%w: %d-byte prefix matches no supported magic", ErrUnsupportedFormat, n)
		}
	}
	if cfg.inMemory {
		// Opt-in legacy behavior, same for every format: load everything
		// once, then serve decodes zero-copy from the resident buffer.
		if _, mem := filereader.Bytes(src); !mem {
			data, err := filereader.ReadAll(src)
			if err != nil {
				return nil, sourceErr(err)
			}
			src = filereader.MemoryReader(data)
		}
	}
	switch format {
	case FormatGzip, FormatBGZF:
		return openIndexed(src, path, cfg, format)
	case FormatBzip2, FormatLZ4, FormatZstd:
		return newSpanArchive(src, format, cfg, path)
	}
	return nil, fmt.Errorf("%w: content matches no supported magic", ErrUnsupportedFormat)
}

// sourceErr maps a filereader I/O failure to the public typed error.
// Format-level errors (corrupt headers, missing magics) pass through
// untouched: they mean the bytes were readable but wrong, which is a
// different caller branch.
func sourceErr(err error) error {
	if errors.Is(err, filereader.ErrIO) {
		return fmt.Errorf("%w: %w", ErrSourceRead, err)
	}
	return err
}

// closedErr maps the internal closed-state errors a read can surface —
// the engine's own gate, the core's, or a pread on a file descriptor
// that Close won the race for — onto the public ErrClosed, so a caller
// racing Close against ReadAt gets one typed answer regardless of
// which layer noticed first. Other errors pass through untouched.
func closedErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, spanengine.ErrClosed) || errors.Is(err, core.ErrClosed) || errors.Is(err, fs.ErrClosed) {
		return fmt.Errorf("%w: %w", ErrClosed, err)
	}
	return err
}

// openIndexed builds the gzip/BGZF backend, importing an explicit or
// discovered index when available.
func openIndexed(src filereader.FileReader, path string, cfg config, format Format) (*Reader, error) {
	coreCfg, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	if cfg.indexFile != "" {
		// An explicit index must work; failure is the caller's answer.
		return importIndexReader(src, coreCfg, cfg.indexFile, format)
	}
	if !cfg.noDiscovery && path != "" {
		if _, err := os.Stat(path + IndexSuffix); err == nil {
			// A sibling index is an optimisation: import it when valid,
			// fall back to a normal scan when stale, corrupt, or built
			// for a different file.
			if r, err := importIndexReader(src, coreCfg, path+IndexSuffix, format); err == nil {
				return r, nil
			}
		}
	}
	pr, err := core.NewReader(src, coreCfg)
	if err != nil {
		// The core tags open-time read failures (fingerprint probe on a
		// directory, a shrinking file) with filereader.ErrIO; surface
		// those as the typed ErrSourceRead, like every other backend.
		return nil, sourceErr(err)
	}
	_, mem := filereader.Bytes(src)
	return &Reader{pr: pr, format: format, fileBacked: !mem}, nil
}

// importIndexReader constructs a reader destined for an immediate index
// import: the eager BGZF member-metadata scan is skipped, because the
// imported table would replace its result anyway — for a BGZF file
// with millions of members that scan is the exact startup cost
// importing an index exists to avoid.
func importIndexReader(src filereader.FileReader, coreCfg core.Config, indexPath string, format Format) (*Reader, error) {
	ixf, err := os.Open(indexPath)
	if err != nil {
		return nil, err
	}
	defer ixf.Close()
	coreCfg.SkipMetadataScan = true
	pr, err := core.NewReader(src, coreCfg)
	if err != nil {
		return nil, sourceErr(err)
	}
	_, mem := filereader.Bytes(src)
	r := &Reader{pr: pr, format: format, fileBacked: !mem}
	// The file holds nothing but the index, so buffering is safe and
	// spares the varint-level deserializer per-byte file reads.
	if err := r.ImportIndex(bufio.NewReader(ixf)); err != nil {
		pr.Close()
		return nil, err
	}
	return r, nil
}

// --- span-engine backends (bzip2, LZ4, zstd) -----------------------------

// spanBackend is the contract of the span-engine-backed readers
// (bzip2x.Reader, lz4x.Reader, zstdx.Reader): concurrent positional
// reads over the decompressed stream, a size known after construction,
// the checkpoint table exposed as ordered chunks, and access to the
// engine for stats and checkpoint export.
type spanBackend interface {
	io.ReaderAt
	io.Closer
	Size() int64
	NumChunks() int
	ChunkExtent(i int) (off, size int64)
	ChunkContent(i int) ([]byte, error)
	Engine() *spanengine.Engine
}

// spanArchive adapts a spanBackend to the Archive interface: it adds
// the sequential cursor (Read/Seek/WriteTo) and the checkpoint-table
// index methods (ExportIndex/ImportIndex over the RGZIDX04 container).
// One archive serves either backing — a resident buffer (OpenBytes,
// WithInMemory) or an open file, in which case the compressed bytes
// are never whole in memory: every decode preads only its span's
// extent.
type spanArchive struct {
	src        filereader.FileReader // compressed source (file- or memory-backed)
	fileBacked bool
	owned      io.Closer // underlying file, closed with the archive (Open only)
	format     Format
	cfg        config // retained to rebuild the backend on ImportIndex (keeps the shared pool)

	mu   sync.Mutex
	back spanBackend
	// retired holds backends replaced by ImportIndex. They stay open
	// until Close so a concurrent ReadAt that snapshotted one mid-swap
	// finishes against it instead of hitting a closed engine.
	retired []spanBackend
	caps    Capabilities
	pos     int64
}

// formatTag returns the checkpoint-table tag of a span-engine format.
func formatTag(format Format) string {
	switch format {
	case FormatBzip2:
		return bzip2x.FormatTag
	case FormatLZ4:
		return lz4x.FormatTag
	case FormatZstd:
		return zstdx.FormatTag
	}
	return ""
}

// newSpanArchive constructs the backend over src (file- or memory-
// backed), importing an explicit or discovered checkpoint-table index
// when available (mirroring openIndexed's behavior for gzip: an
// explicit index must work, a discovered one falls back to a scan).
func newSpanArchive(src filereader.FileReader, format Format, cfg config, path string) (Archive, error) {
	if cfg.indexFile != "" {
		return spanArchiveFromIndexFile(src, format, cfg, cfg.indexFile)
	}
	if !cfg.noDiscovery && path != "" {
		if _, err := os.Stat(path + IndexSuffix); err == nil {
			if a, err := spanArchiveFromIndexFile(src, format, cfg, path+IndexSuffix); err == nil {
				return a, nil
			}
		}
	}
	engCfg, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	back, caps, err := scanSpanBackend(src, format, engCfg)
	if err != nil {
		return nil, sourceErr(err)
	}
	return finishSpanArchive(src, format, cfg, back, caps), nil
}

// finishSpanArchive wraps a constructed backend in the Archive shell.
func finishSpanArchive(src filereader.FileReader, format Format, cfg config, back spanBackend, caps Capabilities) *spanArchive {
	_, mem := filereader.Bytes(src)
	return &spanArchive{src: src, fileBacked: !mem, format: format, cfg: cfg, back: back, caps: caps}
}

// spanArchiveFromIndexFile opens the index at indexPath and builds the
// backend from its checkpoint table — zero sizing-pass decodes, and
// for a file-backed source zero reads of the compressed file beyond
// the fingerprint probe.
func spanArchiveFromIndexFile(src filereader.FileReader, format Format, cfg config, indexPath string) (Archive, error) {
	ixf, err := os.Open(indexPath)
	if err != nil {
		return nil, err
	}
	defer ixf.Close()
	ix, err := gzindex.Read(bufio.NewReader(ixf))
	if err != nil {
		return nil, err
	}
	engCfg, err := cfg.engineConfig()
	if err != nil {
		return nil, err
	}
	back, caps, err := spanBackendFromIndex(src, format, ix, engCfg)
	if err != nil {
		return nil, sourceErr(err)
	}
	return finishSpanArchive(src, format, cfg, back, caps), nil
}

// scanSpanBackend runs the format's sizing pass and reports the
// archive's truthful capabilities.
func scanSpanBackend(src filereader.FileReader, format Format, engCfg spanengine.Config) (spanBackend, Capabilities, error) {
	switch format {
	case FormatBzip2:
		br, err := bzip2x.NewReaderConfig(src, engCfg)
		if err != nil {
			return nil, Capabilities{}, err
		}
		// The stdlib bzip2 decoder verifies block CRCs on every decode,
		// so Verify holds unconditionally.
		return br, memCaps(br.NumStreams() > 1, true), nil
	case FormatLZ4:
		lr, err := lz4x.NewReaderConfig(src, engCfg)
		if err != nil {
			return nil, Capabilities{}, err
		}
		return lr, memCaps(lr.NumFrames() > 1, lr.Checksummed()), nil
	case FormatZstd:
		zr, err := zstdx.NewReaderConfig(src, engCfg)
		if err != nil {
			return nil, Capabilities{}, err
		}
		// Parallelism and metadata-only random access need the frame
		// table complete without decodes: multiple frames, each
		// declaring its content size. Unsized files were sized by a
		// sequential decode on open and stay honest about it (an index
		// import lifts the demotion — the table is metadata then).
		return zr, memCaps(zr.NumFrames() > 1 && zr.Sized(), zr.Checksummed()), nil
	}
	return nil, Capabilities{}, fmt.Errorf("%w: %v has no span-engine backend", ErrUnsupportedFormat, format)
}

// spanBackendFromIndex validates an imported index against the open
// source and builds the backend from its checkpoint table, skipping
// the sizing pass entirely.
func spanBackendFromIndex(src filereader.FileReader, format Format, ix *gzindex.Index, engCfg spanengine.Config) (spanBackend, Capabilities, error) {
	if !ix.Finalized {
		return nil, Capabilities{}, errors.New("rapidgzip: can only import finalized indexes")
	}
	ct := ix.Checkpoints
	if ct == nil {
		return nil, Capabilities{}, fmt.Errorf("%w: index carries no checkpoint table for %v", ErrNoIndexSupport, format)
	}
	if want := formatTag(format); ct.Format != want {
		return nil, Capabilities{}, fmt.Errorf("rapidgzip: index checkpoint table is for format %q, want %q", ct.Format, want)
	}
	if ix.CompressedSize != uint64(src.Size()) {
		return nil, Capabilities{}, fmt.Errorf("rapidgzip: index is for a %d-byte file, have %d bytes",
			ix.CompressedSize, src.Size())
	}
	if ix.SourceFP != nil {
		// The probe reads 4 KiB at each end of the file — the whole
		// point of the import is that nothing else is read.
		fp, err := gzindex.ComputeFingerprint(src, src.Size())
		if err != nil {
			return nil, Capabilities{}, err
		}
		if *ix.SourceFP != fp {
			return nil, Capabilities{}, fmt.Errorf("rapidgzip: index fingerprint %08x/%08x does not match the open file's %08x/%08x (index built for a different file of the same size)",
				ix.SourceFP.Head, ix.SourceFP.Tail, fp.Head, fp.Tail)
		}
	}
	spans := make([]spanengine.Span, len(ct.Spans))
	for i, s := range ct.Spans {
		spans[i] = spanengine.Span{CompOff: s.CompOff, CompEnd: s.CompEnd, DecompOff: s.DecompOff, DecompSize: s.DecompSize}
	}
	multi := len(spans) > 1
	switch format {
	case FormatBzip2:
		br, err := bzip2x.NewReaderFromCheckpoints(src, spans, engCfg)
		if err != nil {
			return nil, Capabilities{}, err
		}
		return br, memCaps(multi, true), nil
	case FormatLZ4:
		lr, err := lz4x.NewReaderFromCheckpoints(src, spans, ct.Flags, engCfg)
		if err != nil {
			return nil, Capabilities{}, err
		}
		return lr, memCaps(multi, lr.Checksummed()), nil
	case FormatZstd:
		zr, err := zstdx.NewReaderFromCheckpoints(src, spans, ct.Flags, engCfg)
		if err != nil {
			return nil, Capabilities{}, err
		}
		// The imported table carries every extent, so even a file whose
		// frame headers omitted content sizes is parallel and randomly
		// accessible now.
		return zr, memCaps(multi, zr.Checksummed()), nil
	}
	return nil, Capabilities{}, fmt.Errorf("%w: %v has no span-engine backend", ErrUnsupportedFormat, format)
}

// memCaps is the capability profile of a span-engine archive: Seek and
// Index always work; random access, parallel decode and prefetching
// need more than one span.
func memCaps(multi, verify bool) Capabilities {
	return Capabilities{Seek: true, Index: true, RandomAccess: multi, Parallel: multi, Prefetch: multi, Verify: verify}
}

func (a *spanArchive) Read(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, err := a.back.ReadAt(p, a.pos)
	a.pos += int64(n)
	return n, closedErr(err)
}

func (a *spanArchive) Seek(offset int64, whence int) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = a.pos
	case io.SeekEnd:
		base = a.back.Size()
	default:
		return 0, fmt.Errorf("rapidgzip: bad whence %d", whence)
	}
	target := base + offset
	if target < 0 {
		return 0, fmt.Errorf("rapidgzip: negative seek position %d", target)
	}
	a.pos = target
	return target, nil
}

func (a *spanArchive) ReadAt(p []byte, off int64) (int, error) {
	a.mu.Lock()
	back := a.back
	a.mu.Unlock()
	n, err := back.ReadAt(p, off)
	return n, closedErr(err)
}

// WriteTo streams the remaining decompressed bytes in span order — the
// sequential fast path io.Copy hits. Parallelism comes from the span
// engine itself: each ChunkContent access feeds the prefetch strategy,
// so upcoming spans decode on the worker pool while earlier ones are
// written.
func (a *spanArchive) WriteTo(w io.Writer) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fileBacked {
		// The whole remaining compressed tail is about to be preaded in
		// span order; tell the kernel so readahead widens.
		filereader.AdviseSequential(a.src, 0, a.src.Size())
	}
	n := a.back.NumChunks()
	var written int64
	for i := 0; i < n; i++ {
		off, size := a.back.ChunkExtent(i)
		if size <= 0 || off+size <= a.pos {
			continue
		}
		seg, err := a.back.ChunkContent(i)
		if err != nil {
			return written, closedErr(err)
		}
		if skip := a.pos - off; skip > 0 {
			seg = seg[skip:]
		}
		m, err := w.Write(seg)
		written += int64(m)
		a.pos += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Size returns the decompressed size, known since construction.
func (a *spanArchive) Size() (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.back.Size(), nil
}

// DecompressedSize implements Archive; span backends size the stream
// at construction, so the answer is always free.
func (a *spanArchive) DecompressedSize() (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.back.Size(), true
}

// AdviseSequentialRead hints the OS that the compressed file is about
// to be read front to back (a whole-archive streaming GET). No-op for
// memory-backed archives and platforms without posix_fadvise.
func (a *spanArchive) AdviseSequentialRead() {
	if a.fileBacked {
		filereader.AdviseSequential(a.src, 0, a.src.Size())
	}
}

// BuildIndex is a no-op: the checkpoint table (stream spans, frame
// table) is fully built at construction for these backends.
func (a *spanArchive) BuildIndex() error { return nil }

// ExportIndex serialises the checkpoint table as an RGZIDX04 index. A
// later Open of the same file with the index (explicit, or discovered
// as a sibling) skips the sizing pass entirely.
func (a *spanArchive) ExportIndex(w io.Writer) error {
	a.mu.Lock()
	eng := a.back.Engine()
	a.mu.Unlock()
	fp, err := gzindex.ComputeFingerprint(a.src, a.src.Size())
	if err != nil {
		return sourceErr(err)
	}
	ix := gzindex.New(0)
	ix.Finalized = true
	ix.CompressedSize = uint64(a.src.Size())
	ix.UncompressedSize = uint64(eng.Size())
	ix.SourceFP = &fp
	spans := eng.Checkpoints()
	ct := &gzindex.CheckpointTable{Format: formatTag(a.format), Flags: eng.Flags()}
	ct.Spans = make([]gzindex.Checkpoint, len(spans))
	for i, s := range spans {
		ct.Spans[i] = gzindex.Checkpoint{CompOff: s.CompOff, CompEnd: s.CompEnd, DecompOff: s.DecompOff, DecompSize: s.DecompSize}
	}
	ix.Checkpoints = ct
	_, err = ix.WriteTo(w)
	return err
}

// ImportIndex installs a previously exported checkpoint-table index,
// replacing the backend with one built from the persisted spans. The
// index must belong to the same compressed data (format tag,
// compressed size and source fingerprint are all enforced).
func (a *spanArchive) ImportIndex(rd io.Reader) error {
	ix, err := gzindex.Read(rd)
	if err != nil {
		return err
	}
	engCfg, err := a.cfg.engineConfig()
	if err != nil {
		return err
	}
	back, caps, err := spanBackendFromIndex(a.src, a.format, ix, engCfg)
	if err != nil {
		return sourceErr(err)
	}
	a.mu.Lock()
	a.retired = append(a.retired, a.back)
	a.back = back
	a.caps = caps
	a.mu.Unlock()
	return nil
}

// Stats reports the span engine's counters.
func (a *spanArchive) Stats() Stats {
	a.mu.Lock()
	eng := a.back.Engine()
	a.mu.Unlock()
	return engineStats(eng.Stats())
}

func (a *spanArchive) Close() error {
	a.mu.Lock()
	backs := append([]spanBackend{a.back}, a.retired...)
	a.retired = nil
	a.mu.Unlock()
	var err error
	for _, b := range backs {
		if cerr := b.Close(); err == nil {
			err = cerr
		}
	}
	// The compressed file outlives every backend engine (in-flight
	// decodes finished above), so it closes last.
	if a.owned != nil {
		if cerr := a.owned.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (a *spanArchive) Format() Format { return a.format }

func (a *spanArchive) Capabilities() Capabilities {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.caps
}

var (
	_ Archive = (*Reader)(nil)
	_ Archive = (*spanArchive)(nil)
)
