package rapidgzip

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/bzip2x"
	"repro/internal/core"
	"repro/internal/filereader"
	"repro/internal/lz4x"
	"repro/internal/zstdx"
)

// Archive is the format-agnostic face of the package: one interface
// over the decompressed stream of a gzip, BGZF, bzip2 or LZ4 file,
// served by whichever backend Open dispatched to. All methods are safe
// for concurrent use.
//
// Index methods are honest about format limits: formats without
// seek-point index support report Capabilities().Index == false and
// return ErrNoIndexSupport from ExportIndex/ImportIndex.
type Archive interface {
	io.Reader
	io.Seeker
	io.ReaderAt
	io.WriterTo
	io.Closer

	// Size returns the decompressed size, completing whatever scan the
	// backend needs first.
	Size() (int64, error)
	// BuildIndex completes the backend's seek checkpoints for the whole
	// file, making every subsequent Seek/ReadAt constant-time where the
	// format allows it.
	BuildIndex() error
	// ExportIndex serialises the seek-point index (gzip/BGZF only).
	ExportIndex(w io.Writer) error
	// ImportIndex installs a previously exported index (gzip/BGZF only).
	ImportIndex(rd io.Reader) error
	// Stats returns a snapshot of fetcher activity counters; backends
	// without a speculative fetcher report zeros.
	Stats() Stats
	// Format reports the detected (or forced) container format.
	Format() Format
	// Capabilities reports what this archive can actually do.
	Capabilities() Capabilities
}

// IndexSuffix is the sibling-file extension Open probes for index
// auto-discovery: "file.gz" → "file.gz.rgzidx".
const IndexSuffix = ".rgzidx"

// Open opens the compressed file at path behind one format-agnostic
// front door: the content's magic bytes select the backend (gzip,
// BGZF, bzip2 or LZ4 — WithFormat overrides), and the returned Archive
// serves parallel decompression and, where the format allows,
// checkpointed random access. Content that matches no supported magic
// fails with ErrUnsupportedFormat.
//
// For indexable formats a sibling "path.rgzidx" index saved by a
// previous run is imported automatically when present and valid
// (disable with WithoutIndexDiscovery, force a specific file with
// WithIndexFile).
func Open(path string, opts ...Option) (Archive, error) {
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	src, err := filereader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	a, err := openArchive(src, path, cfg)
	if err != nil {
		src.Close()
		return nil, err
	}
	if r, ok := a.(*Reader); ok {
		r.owned = src
	} else {
		// In-memory backends copied the data out; the file is done.
		src.Close()
	}
	return a, nil
}

// OpenBytes opens an in-memory compressed buffer with the same
// sniffing dispatch as Open. No index auto-discovery (there is no
// sibling file), but WithIndexFile still works for indexable formats.
func OpenBytes(data []byte, opts ...Option) (Archive, error) {
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	return openArchive(filereader.MemoryReader(data), "", cfg)
}

// openArchive dispatches src to a backend by sniffed or forced format.
// path is only used to locate a sibling index ("" disables discovery).
func openArchive(src filereader.FileReader, path string, cfg config) (Archive, error) {
	format := cfg.format
	if format == FormatUnknown {
		prefix := make([]byte, SniffLen)
		n, rerr := src.ReadAt(prefix, 0)
		format = DetectFormat(prefix[:n])
		if format == FormatUnknown {
			// A real read failure is an I/O problem, not a format
			// verdict — callers branching on ErrUnsupportedFormat must
			// not mistake a flaky disk for a wrong file type. (EOF just
			// means the file is shorter than the sniff window.)
			if rerr != nil && !errors.Is(rerr, io.EOF) {
				return nil, fmt.Errorf("rapidgzip: sniffing input: %w", rerr)
			}
			// Classify here, before any backend sees the data: an
			// empty or undersized file must fail with the typed sniff
			// error, not a short-read error from deeper in a decoder.
			if n == 0 {
				return nil, fmt.Errorf("%w: empty input", ErrUnsupportedFormat)
			}
			return nil, fmt.Errorf("%w: %d-byte prefix matches no supported magic", ErrUnsupportedFormat, n)
		}
	}
	switch format {
	case FormatGzip, FormatBGZF:
		return openIndexed(src, path, cfg, format)
	case FormatBzip2, FormatLZ4, FormatZstd:
		if cfg.indexFile != "" {
			return nil, fmt.Errorf("%w: WithIndexFile on %v", ErrNoIndexSupport, format)
		}
		data, err := filereader.ReadAll(src)
		if err != nil {
			return nil, err
		}
		return newMemArchive(data, format, cfg)
	}
	return nil, fmt.Errorf("%w: content matches no supported magic", ErrUnsupportedFormat)
}

// openIndexed builds the gzip/BGZF backend, importing an explicit or
// discovered index when available.
func openIndexed(src filereader.FileReader, path string, cfg config, format Format) (*Reader, error) {
	coreCfg, err := cfg.opts.toCore()
	if err != nil {
		return nil, err
	}
	if cfg.indexFile != "" {
		// An explicit index must work; failure is the caller's answer.
		return importIndexReader(src, coreCfg, cfg.indexFile, format)
	}
	if !cfg.noDiscovery && path != "" {
		if _, err := os.Stat(path + IndexSuffix); err == nil {
			// A sibling index is an optimisation: import it when valid,
			// fall back to a normal scan when stale, corrupt, or built
			// for a different file.
			if r, err := importIndexReader(src, coreCfg, path+IndexSuffix, format); err == nil {
				return r, nil
			}
		}
	}
	pr, err := core.NewReader(src, coreCfg)
	if err != nil {
		return nil, err
	}
	return &Reader{pr: pr, format: format}, nil
}

// importIndexReader constructs a reader destined for an immediate index
// import: the eager BGZF member-metadata scan is skipped, because the
// imported table would replace its result anyway — for a BGZF file
// with millions of members that scan is the exact startup cost
// importing an index exists to avoid.
func importIndexReader(src filereader.FileReader, coreCfg core.Config, indexPath string, format Format) (*Reader, error) {
	ixf, err := os.Open(indexPath)
	if err != nil {
		return nil, err
	}
	defer ixf.Close()
	coreCfg.SkipMetadataScan = true
	pr, err := core.NewReader(src, coreCfg)
	if err != nil {
		return nil, err
	}
	r := &Reader{pr: pr, format: format}
	// The file holds nothing but the index, so buffering is safe and
	// spares the varint-level deserializer per-byte file reads.
	if err := r.ImportIndex(bufio.NewReader(ixf)); err != nil {
		pr.Close()
		return nil, err
	}
	return r, nil
}

// --- in-memory backends (bzip2, LZ4) -------------------------------------

// memBackend is the contract of the checkpointed in-memory readers
// (bzip2x.Reader, lz4x.Reader): concurrent positional reads over the
// decompressed stream, a size known after construction, and the
// checkpoint table exposed as ordered chunks so sequential consumption
// can decode ahead in parallel.
type memBackend interface {
	io.ReaderAt
	Size() int64
	NumChunks() int
	ChunkExtent(i int) (off, size int64)
	ChunkContent(i int) ([]byte, error)
}

// memArchive adapts a memBackend to the Archive interface: it adds the
// sequential cursor (Read/Seek/WriteTo) and answers the index methods
// truthfully for formats without index support.
type memArchive struct {
	back    memBackend
	format  Format
	caps    Capabilities
	threads int

	mu  sync.Mutex
	pos int64
}

// newMemArchive constructs the backend for a whole-file buffer.
func newMemArchive(data []byte, format Format, cfg config) (Archive, error) {
	coreCfg, err := cfg.opts.toCore()
	if err != nil {
		return nil, err
	}
	threads := coreCfg.Parallelism
	switch format {
	case FormatBzip2:
		br, err := bzip2x.NewReader(data, threads)
		if err != nil {
			return nil, err
		}
		multi := br.NumStreams() > 1
		return &memArchive{
			back:    br,
			format:  format,
			threads: threads,
			// The stdlib bzip2 decoder verifies block CRCs on every
			// decode, so Verify holds unconditionally.
			caps: Capabilities{Seek: true, RandomAccess: multi, Parallel: multi, Verify: true},
		}, nil
	case FormatLZ4:
		lr, err := lz4x.NewReader(data, threads)
		if err != nil {
			return nil, err
		}
		multi := lr.NumFrames() > 1
		return &memArchive{
			back:    lr,
			format:  format,
			threads: threads,
			caps:    Capabilities{Seek: true, RandomAccess: multi, Parallel: multi, Verify: lr.Checksummed()},
		}, nil
	case FormatZstd:
		zr, err := zstdx.NewReader(data, threads)
		if err != nil {
			return nil, err
		}
		// Parallelism and metadata-only random access need the frame
		// table complete from headers alone: multiple frames, each
		// declaring its content size. Unsized files were sized by a
		// sequential decode on open and stay honest about it.
		multi := zr.NumFrames() > 1 && zr.Sized()
		return &memArchive{
			back:    zr,
			format:  format,
			threads: threads,
			caps:    Capabilities{Seek: true, RandomAccess: multi, Parallel: multi, Verify: zr.Checksummed()},
		}, nil
	}
	return nil, fmt.Errorf("%w: %v has no in-memory backend", ErrUnsupportedFormat, format)
}

func (a *memArchive) Read(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, err := a.back.ReadAt(p, a.pos)
	a.pos += int64(n)
	return n, err
}

func (a *memArchive) Seek(offset int64, whence int) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = a.pos
	case io.SeekEnd:
		base = a.back.Size()
	default:
		return 0, fmt.Errorf("rapidgzip: bad whence %d", whence)
	}
	target := base + offset
	if target < 0 {
		return 0, fmt.Errorf("rapidgzip: negative seek position %d", target)
	}
	a.pos = target
	return target, nil
}

func (a *memArchive) ReadAt(p []byte, off int64) (int, error) {
	return a.back.ReadAt(p, off)
}

// WriteTo streams the remaining decompressed bytes in chunk order,
// decoding up to `threads` upcoming chunks concurrently while earlier
// ones are written — the sequential fast path io.Copy hits, and where
// the Parallel capability of these backends materialises.
func (a *memArchive) WriteTo(w io.Writer) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.back.NumChunks()
	// First chunk covering the cursor (zero-size chunks cover nothing).
	first := 0
	for first < n {
		off, size := a.back.ChunkExtent(first)
		if size > 0 && off+size > a.pos {
			break
		}
		first++
	}
	var written int64
	batch := max(a.threads, 1)
	outs := make([][]byte, batch)
	errs := make([]error, batch)
	for i := first; i < n; i += batch {
		end := min(i+batch, n)
		var wg sync.WaitGroup
		for j := i; j < end; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				outs[j-i], errs[j-i] = a.back.ChunkContent(j)
			}(j)
		}
		wg.Wait()
		for j := i; j < end; j++ {
			if errs[j-i] != nil {
				return written, errs[j-i]
			}
			off, _ := a.back.ChunkExtent(j)
			seg := outs[j-i]
			if skip := a.pos - off; skip > 0 {
				seg = seg[skip:]
			}
			m, err := w.Write(seg)
			written += int64(m)
			a.pos += int64(m)
			if err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// Size returns the decompressed size, known since construction.
func (a *memArchive) Size() (int64, error) { return a.back.Size(), nil }

// BuildIndex is a no-op: the checkpoint table (stream spans, frame
// table) is fully built at construction for these backends.
func (a *memArchive) BuildIndex() error { return nil }

func (a *memArchive) ExportIndex(io.Writer) error {
	return fmt.Errorf("%w: %v", ErrNoIndexSupport, a.format)
}

func (a *memArchive) ImportIndex(io.Reader) error {
	return fmt.Errorf("%w: %v", ErrNoIndexSupport, a.format)
}

// Stats reports zeros: these backends have no speculative fetcher.
func (a *memArchive) Stats() Stats { return Stats{} }

func (a *memArchive) Close() error { return nil }

func (a *memArchive) Format() Format { return a.format }

func (a *memArchive) Capabilities() Capabilities { return a.caps }

var (
	_ Archive = (*Reader)(nil)
	_ Archive = (*memArchive)(nil)
)
