package pool

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := New(4)
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Close()
	if count.Load() != 100 {
		t.Fatalf("ran %d tasks", count.Load())
	}
}

func TestFuture(t *testing.T) {
	p := New(2)
	defer p.Close()
	f := Go(p, func() (int, error) { return 42, nil })
	v, err := f.Wait()
	if err != nil || v != 42 {
		t.Fatalf("got %d, %v", v, err)
	}
	// Waiting again returns the same result.
	v, _ = f.Wait()
	if v != 42 {
		t.Fatal("second wait")
	}
}

func TestFutureError(t *testing.T) {
	p := New(1)
	defer p.Close()
	wantErr := errors.New("boom")
	f := Go(p, func() (string, error) { return "", wantErr })
	_, err := f.Wait()
	if err != wantErr {
		t.Fatalf("got %v", err)
	}
}

func TestFutureReady(t *testing.T) {
	p := New(1)
	defer p.Close()
	release := make(chan struct{})
	f := Go(p, func() (int, error) { <-release; return 1, nil })
	if f.Ready() {
		t.Fatal("should not be ready")
	}
	close(release)
	if v, _ := f.Wait(); v != 1 || !f.Ready() {
		t.Fatal("should be ready after wait")
	}
}

func TestResolved(t *testing.T) {
	f := Resolved(7)
	if !f.Ready() {
		t.Fatal("resolved future not ready")
	}
	if v, err := f.Wait(); v != 7 || err != nil {
		t.Fatalf("got %d, %v", v, err)
	}
}

func TestParallelism(t *testing.T) {
	// With n workers, n long tasks must overlap.
	const n = 4
	p := New(n)
	defer p.Close()
	var running, peak atomic.Int64
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		p.Submit(func() {
			cur := running.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(30 * time.Millisecond)
			running.Add(-1)
			done <- struct{}{}
		})
	}
	for i := 0; i < n; i++ {
		<-done
	}
	if peak.Load() != n {
		t.Fatalf("peak parallelism %d want %d", peak.Load(), n)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := New(1)
	p.Close()
	p.Close() // must not panic
}
