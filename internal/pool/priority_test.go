package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHighPriorityPreemptsQueue verifies the property the chunk fetcher
// depends on: a marker-replacement task submitted while a deep backlog
// of speculative decodes is queued runs before that backlog.
func TestHighPriorityPreemptsQueue(t *testing.T) {
	p := New(1)
	defer p.Close()

	var mu sync.Mutex
	var order []string
	block := make(chan struct{})

	// Occupy the single worker.
	busy := Go(p, func() (int, error) {
		<-block
		return 0, nil
	})
	// Queue a deep low-priority backlog.
	var lows []*Future[int]
	for i := 0; i < 16; i++ {
		lows = append(lows, GoLow(p, func() (int, error) {
			mu.Lock()
			order = append(order, "low")
			mu.Unlock()
			return 0, nil
		}))
	}
	// Then one high-priority task.
	high := Go(p, func() (int, error) {
		mu.Lock()
		order = append(order, "high")
		mu.Unlock()
		return 0, nil
	})
	close(block)
	busy.Wait()
	high.Wait()
	for _, l := range lows {
		l.Wait()
	}
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "high" {
		t.Fatalf("high-priority task ran at position %v; order %v", order[0], order[:4])
	}
}

func TestDoneChannel(t *testing.T) {
	p := New(2)
	defer p.Close()
	release := make(chan struct{})
	fut := Go(p, func() (string, error) {
		<-release
		return "done", nil
	})
	select {
	case <-fut.Done():
		t.Fatal("Done closed before completion")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	select {
	case <-fut.Done():
	case <-time.After(time.Second):
		t.Fatal("Done never closed")
	}
	if v, err := fut.Wait(); v != "done" || err != nil {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestLowPriorityStillRuns(t *testing.T) {
	p := New(4)
	defer p.Close()
	var count atomic.Int64
	var futs []*Future[int]
	for i := 0; i < 100; i++ {
		futs = append(futs, GoLow(p, func() (int, error) {
			count.Add(1)
			return 0, nil
		}))
	}
	for _, f := range futs {
		f.Wait()
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 low-priority tasks", count.Load())
	}
}

func TestCloseDrainsBothQueues(t *testing.T) {
	p := New(2)
	var count atomic.Int64
	for i := 0; i < 10; i++ {
		Go(p, func() (int, error) { count.Add(1); return 0, nil })
		GoLow(p, func() (int, error) { count.Add(1); return 0, nil })
	}
	p.Close()
	if count.Load() != 20 {
		t.Fatalf("Close dropped tasks: ran %d of 20", count.Load())
	}
	// Idempotent.
	p.Close()
}
