// Package pool implements a fixed-size worker pool with futures and two
// priority classes — the ThreadPool component of the paper's
// architecture (Figure 5). Speculative chunk decodes are submitted at
// low priority; marker replacement and everything the consumer is about
// to wait on run at high priority, so a deep backlog of prefetch work
// can never stall the sequential reader (§3.1–§3.3).
package pool

import (
	"sync"
)

// Pool runs submitted tasks on a fixed number of worker goroutines.
// High-priority tasks always run before queued low-priority tasks.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	high   []func()
	low    []func()
	closed bool
	wg     sync.WaitGroup
}

// New starts a pool with n workers (n < 1 is clamped to 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for !p.closed && len(p.high) == 0 && len(p.low) == 0 {
			p.cond.Wait()
		}
		var f func()
		switch {
		case len(p.high) > 0:
			f = p.high[0]
			p.high = p.high[1:]
		case len(p.low) > 0:
			f = p.low[0]
			p.low = p.low[1:]
		default: // closed and drained
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		f()
	}
}

// Submit enqueues f at high priority. Submitting after Close panics;
// callers own that ordering.
func (p *Pool) Submit(f func()) { p.submit(f, true) }

// SubmitLow enqueues f at low priority (speculative work).
func (p *Pool) SubmitLow(f func()) { p.submit(f, false) }

func (p *Pool) submit(f func(), high bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("pool: submit after Close")
	}
	if high {
		p.high = append(p.high, f)
	} else {
		p.low = append(p.low, f)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// Close stops accepting tasks and waits for the workers to drain the
// queues. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Future is the result slot of an asynchronous task.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Go submits fn to p at high priority and returns a Future.
func Go[T any](p *Pool, fn func() (T, error)) *Future[T] {
	return submitFuture(p, fn, true)
}

// GoLow submits fn to p at low priority and returns a Future.
func GoLow[T any](p *Pool, fn func() (T, error)) *Future[T] {
	return submitFuture(p, fn, false)
}

func submitFuture[T any](p *Pool, fn func() (T, error), high bool) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	p.submit(func() {
		f.val, f.err = fn()
		close(f.done)
	}, high)
	return f
}

// Resolved returns an already-completed Future holding val.
func Resolved[T any](val T) *Future[T] {
	f := &Future[T]{done: make(chan struct{}), val: val}
	close(f.done)
	return f
}

// Wait blocks until the task completes and returns its result.
func (f *Future[T]) Wait() (T, error) {
	<-f.done
	return f.val, f.err
}

// Done returns a channel closed when the result is available, for use
// in select loops that must service other events while waiting.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Ready reports whether the result is available without blocking.
func (f *Future[T]) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
