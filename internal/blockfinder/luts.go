// Package blockfinder locates candidate Deflate block starts at
// arbitrary bit offsets (paper §3.4). It provides several Dynamic Block
// finder implementations of increasing sophistication — the exact
// ablation of Table 2 — plus the Non-Compressed Block finder and the
// combined finder used by the parallel decompressor. Finders may return
// false positives (the chunk-fetcher architecture is robust against
// them) but must not miss real non-final Dynamic/Non-Compressed blocks.
package blockfinder

// skipLUT implements the paper's 14-bit lookup cache (§3.4.2): indexed
// by the next 14 stream bits, it returns how many bits to skip until the
// first position whose visible prefix could be a non-final Dynamic Block
// header (0 = the current position passes the first three checks).
//
// The prefix checks cover, LSB-first from the candidate position:
//
//	bit 0     final-block flag, must be 0
//	bits 1-2  block type, must be dynamic (bit1=0, bit2=1)
//	bits 3-7  HLIT, must not be 30 or 31
//
// Bits beyond the window are treated optimistically.
var skipLUT [1 << 14]uint8

// hist4LUT maps 12 bits (four 3-bit precode code lengths) to a packed
// histogram with 5 bits per length value — the bit-parallel histogram
// trick of §3.4.2. Length 0 accumulates in bits 0..4 and is ignored.
var hist4LUT [1 << 12]uint64

// precodeLUT20 validates the packed frequencies of code lengths 1..4
// (20 bits) in one lookup: -1 means oversubscribed, otherwise it returns
// the number of unused leaves at depth 4 (0..16), to be extended with
// lengths 5..7. This is the paper's 20-bit histogram-validity table.
var precodeLUT20 []int8

func prefixOK(v uint32, s uint) bool {
	if s < 14 && v>>s&1 == 1 {
		return false // final block
	}
	if s+1 < 14 && v>>(s+1)&1 == 1 {
		return false // type bit 0 must be 0
	}
	if s+2 < 14 && v>>(s+2)&1 == 0 {
		return false // type bit 1 must be 1 (dynamic)
	}
	// HLIT = bits s+3..s+7 little-endian; 30 and 31 both have bits
	// s+4..s+7 set, so the value is invalid iff those four are all 1.
	if s+7 < 14 && v>>(s+4)&0xF == 0xF {
		return false
	}
	return true
}

func init() {
	for v := uint32(0); v < 1<<14; v++ {
		s := uint(0)
		for ; s < 14; s++ {
			if prefixOK(v, s) {
				break
			}
		}
		skipLUT[v] = uint8(s)
	}

	for v := uint32(0); v < 1<<12; v++ {
		var h uint64
		for t := uint(0); t < 4; t++ {
			cl := v >> (3 * t) & 7
			h += 1 << (5 * cl)
		}
		hist4LUT[v] = h
	}

	precodeLUT20 = make([]int8, 1<<20)
	for v := 0; v < 1<<20; v++ {
		avail := 1
		ok := true
		for l := 0; l < 4; l++ {
			c := v >> (5 * l) & 31
			avail = avail*2 - c
			if avail < 0 {
				ok = false
				break
			}
		}
		if !ok {
			precodeLUT20[v] = -1
		} else {
			precodeLUT20[v] = int8(avail)
		}
	}
}

// packedHistogram computes the 5-bit-packed code-length histogram of the
// first n precode entries contained in the low 3n bits of bits.
func packedHistogram(bits uint64, n int) uint64 {
	bits &= 1<<(3*uint(n)) - 1
	return hist4LUT[bits&0xFFF] +
		hist4LUT[bits>>12&0xFFF] +
		hist4LUT[bits>>24&0xFFF] +
		hist4LUT[bits>>36&0xFFF] +
		hist4LUT[bits>>48&0xFFF]
}

// precodeHistogramResult classifies a packed histogram.
type precodeHistogramResult uint8

const (
	precodeOK precodeHistogramResult = iota
	precodeOversubscribed
	precodeNonOptimal
)

// checkPackedHistogramLUT validates a packed histogram using the 20-bit
// lookup for lengths 1..4 plus a short loop for 5..7 (paper §3.4.2).
func checkPackedHistogramLUT(hist uint64) precodeHistogramResult {
	a := precodeLUT20[hist>>5&0xFFFFF]
	if a < 0 {
		return precodeOversubscribed
	}
	avail := int(a)
	for l := uint(5); l <= 7; l++ {
		avail = avail*2 - int(hist>>(5*l)&31)
		if avail < 0 {
			return precodeOversubscribed
		}
	}
	if avail != 0 {
		return precodeNonOptimal
	}
	return precodeOK
}

// checkPackedHistogramLoop is the plain-loop equivalent, kept as the
// ablation baseline for the LUT (benchmarked in this package).
func checkPackedHistogramLoop(hist uint64) precodeHistogramResult {
	avail := 1
	for l := uint(1); l <= 7; l++ {
		avail = avail*2 - int(hist>>(5*l)&31)
		if avail < 0 {
			return precodeOversubscribed
		}
	}
	if avail != 0 {
		return precodeNonOptimal
	}
	return precodeOK
}
