package blockfinder

import (
	"fmt"
	"strings"

	"repro/internal/bitio"
	"repro/internal/deflate"
)

// Funnel tallies how many candidate positions each sequential check of
// the Dynamic Block finder filters out — the reproduction of the paper's
// Table 1 ("Empirical filter frequencies listed top-down in the order
// they are checked").
type Funnel struct {
	Tested uint64
	Counts [deflate.NumRejectReasons]uint64
	Valid  uint64
}

// ScanFunnel classifies up to maxPositions bit positions of data.
// The caller should provide a buffer with at least ~2300 bits of slack
// after the last tested position so every position can hold a maximal
// Dynamic Block header (as the paper's Table 1 setup does).
func ScanFunnel(data []byte, maxPositions uint64) *Funnel {
	f := &Funnel{}
	total := uint64(len(data)) * 8
	positions := maxPositions
	if slack := uint64(2400); total > slack && total-slack < positions {
		positions = total - slack
	}
	br := bitio.NewBitReaderBytes(data)
	deep := bitio.NewBitReaderBytes(data)
	var dec deflate.Decoder
	finder := NewDynamicFinder()

	for off := uint64(0); off < positions; off++ {
		f.Tested++
		br.Reset(data)
		br.SeekBits(off)
		v, _ := br.Peek(14)
		if v&1 == 1 {
			f.Counts[deflate.RejectFinalBlock]++
			continue
		}
		if v>>1&3 != 2 {
			f.Counts[deflate.RejectBlockType]++
			continue
		}
		if v>>4&0xF == 0xF { // HLIT is 30 or 31
			f.Counts[deflate.RejectCodeCount]++
			continue
		}
		if r := finder.precodeQuickCheck(data, off); r != deflate.RejectNone {
			f.Counts[r]++
			continue
		}
		deep.Reset(data)
		deep.SeekBits(off + 3)
		dec.Reset(deep)
		if r := dec.ParseDynamicHeader(); r != deflate.RejectNone {
			f.Counts[r]++
			continue
		}
		f.Valid++
	}
	return f
}

// funnelRows is the print order of Table 1.
var funnelRows = []deflate.RejectReason{
	deflate.RejectFinalBlock,
	deflate.RejectBlockType,
	deflate.RejectCodeCount,
	deflate.RejectPrecodeInvalid,
	deflate.RejectPrecodeNonOptimal,
	deflate.RejectPrecodeData,
	deflate.RejectDistInvalid,
	deflate.RejectDistNonOptimal,
	deflate.RejectLitInvalid,
	deflate.RejectLitNonOptimal,
}

// String renders the funnel in the layout of the paper's Table 1.
func (f *Funnel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %d\n", "Tested bit positions", f.Tested)
	for _, r := range funnelRows {
		fmt.Fprintf(&b, "%-32s %d\n", capitalize(r.String()), f.Counts[r])
	}
	fmt.Fprintf(&b, "%-32s %d\n", "Valid Deflate headers", f.Valid)
	return b.String()
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
