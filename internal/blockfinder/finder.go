package blockfinder

import (
	"bytes"
	"compress/flate"
	"io"

	"repro/internal/bitio"
	"repro/internal/deflate"
)

// Finder returns candidate Deflate block start offsets in a buffer.
type Finder interface {
	// Next returns the first candidate bit offset at or after fromBit,
	// or ok=false when no candidate exists in data.
	Next(data []byte, fromBit uint64) (bit uint64, ok bool)
}

// --- "DBF rapidgzip": skip-LUT + bit-parallel precode histogram ------

// DynamicFinder is the fully optimised Dynamic Block finder (paper
// §3.4.2, "DBF rapidgzip" in Table 2): a 14-bit skip table, a single
// 57-bit read of the precode, bit-parallel histogram construction, a
// 20-bit validity lookup, and only then the full header parse.
type DynamicFinder struct {
	br, deep *bitio.BitReader
	dec      deflate.Decoder
}

// NewDynamicFinder returns a reusable DynamicFinder.
func NewDynamicFinder() *DynamicFinder {
	return &DynamicFinder{
		br:   bitio.NewBitReaderBytes(nil),
		deep: bitio.NewBitReaderBytes(nil),
	}
}

// Next implements Finder.
func (f *DynamicFinder) Next(data []byte, fromBit uint64) (uint64, bool) {
	total := uint64(len(data)) * 8
	if fromBit+13 > total {
		return 0, false
	}
	br := f.br
	br.Reset(data)
	if err := br.SeekBits(fromBit); err != nil {
		return 0, false
	}
	off := fromBit
	for off+13 <= total {
		v, _ := br.Peek(14) // zero-padded near EOF; deep check catches it
		s := uint(skipLUT[v])
		if s > 0 {
			if off+uint64(s) > total {
				return 0, false
			}
			br.Skip(s)
			off += uint64(s)
			continue
		}
		if f.check(data, off) == deflate.RejectNone {
			return off, true
		}
		br.Skip(1)
		off++
	}
	return 0, false
}

// check runs the deep checks at a position whose 13-bit prefix passed.
func (f *DynamicFinder) check(data []byte, off uint64) deflate.RejectReason {
	r := f.precodeQuickCheck(data, off)
	if r != deflate.RejectNone {
		return r
	}
	// Full parse (precode decode, distance and literal code checks).
	// Partly duplicated work, but only on the rare near-hits (§3.4.2).
	deep := f.deep
	deep.Reset(data)
	if err := deep.SeekBits(off + 3); err != nil {
		return deflate.RejectEOF
	}
	f.dec.Reset(deep)
	return f.dec.ParseDynamicHeader()
}

// precodeQuickCheck reads HCLEN and up to 57 precode bits in one go and
// validates the histogram with the packed LUTs.
func (f *DynamicFinder) precodeQuickCheck(data []byte, off uint64) deflate.RejectReason {
	deep := f.deep
	deep.Reset(data)
	if err := deep.SeekBits(off + 13); err != nil {
		return deflate.RejectEOF
	}
	hclen, err := deep.Read(4)
	if err != nil {
		return deflate.RejectEOF
	}
	n := int(hclen) + 4
	bits, avail := deep.Peek(57)
	if int(avail) < 3*n {
		return deflate.RejectEOF
	}
	hist := packedHistogram(bits, n)
	switch checkPackedHistogramLUT(hist) {
	case precodeOversubscribed:
		return deflate.RejectPrecodeInvalid
	case precodeNonOptimal:
		return deflate.RejectPrecodeNonOptimal
	}
	return deflate.RejectNone
}

// --- "DBF skip-LUT": skip table + plain header parse ------------------

// SkipLUTFinder uses the 14-bit skip table for pre-filtering but the
// plain Deflate header parser for everything else ("DBF skip-LUT").
type SkipLUTFinder struct {
	br, deep *bitio.BitReader
	dec      deflate.Decoder
}

// NewSkipLUTFinder returns a reusable SkipLUTFinder.
func NewSkipLUTFinder() *SkipLUTFinder {
	return &SkipLUTFinder{br: bitio.NewBitReaderBytes(nil), deep: bitio.NewBitReaderBytes(nil)}
}

// Next implements Finder.
func (f *SkipLUTFinder) Next(data []byte, fromBit uint64) (uint64, bool) {
	total := uint64(len(data)) * 8
	if fromBit+13 > total {
		return 0, false
	}
	br := f.br
	br.Reset(data)
	if err := br.SeekBits(fromBit); err != nil {
		return 0, false
	}
	off := fromBit
	for off+13 <= total {
		v, _ := br.Peek(14)
		s := uint(skipLUT[v])
		if s > 0 {
			if off+uint64(s) > total {
				return 0, false
			}
			br.Skip(s)
			off += uint64(s)
			continue
		}
		deep := f.deep
		deep.Reset(data)
		deep.SeekBits(off + 3)
		f.dec.Reset(deep)
		if f.dec.ParseDynamicHeader() == deflate.RejectNone {
			return off, true
		}
		br.Skip(1)
		off++
	}
	return 0, false
}

// --- "DBF custom deflate": trial parse at every offset ----------------

// TrialCustomFinder tries the full custom header parse at every bit
// offset ("DBF custom deflate" in Table 2).
type TrialCustomFinder struct {
	br  *bitio.BitReader
	dec deflate.Decoder
}

// NewTrialCustomFinder returns a reusable TrialCustomFinder.
func NewTrialCustomFinder() *TrialCustomFinder {
	return &TrialCustomFinder{br: bitio.NewBitReaderBytes(nil)}
}

// Next implements Finder.
func (f *TrialCustomFinder) Next(data []byte, fromBit uint64) (uint64, bool) {
	total := uint64(len(data)) * 8
	br := f.br
	for off := fromBit; off+13 <= total; off++ {
		br.Reset(data)
		br.SeekBits(off)
		final, typ, err := deflate.ParseBlockHeader(br)
		if err != nil || final || typ != deflate.BlockDynamic {
			continue
		}
		f.dec.Reset(br)
		if f.dec.ParseDynamicHeader() == deflate.RejectNone {
			return off, true
		}
	}
	return 0, false
}

// --- "Pugz block finder": explicit pre-checks, no LUTs ----------------

// PugzFinder emulates pugz's block finder: explicit cheap checks on the
// first header bits before the full parse, but no lookup tables.
type PugzFinder struct {
	br, deep *bitio.BitReader
	dec      deflate.Decoder
}

// NewPugzFinder returns a reusable PugzFinder.
func NewPugzFinder() *PugzFinder {
	return &PugzFinder{br: bitio.NewBitReaderBytes(nil), deep: bitio.NewBitReaderBytes(nil)}
}

// Next implements Finder.
func (f *PugzFinder) Next(data []byte, fromBit uint64) (uint64, bool) {
	total := uint64(len(data)) * 8
	br := f.br
	br.Reset(data)
	if err := br.SeekBits(fromBit); err != nil {
		return 0, false
	}
	for off := fromBit; off+13 <= total; off++ {
		v, _ := br.Peek(8)
		// final=0, type=dynamic, HLIT not 30/31.
		if v&1 == 1 || v>>1&3 != 2 || v>>4&0xF == 0xF {
			br.Skip(1)
			continue
		}
		deep := f.deep
		deep.Reset(data)
		deep.SeekBits(off + 3)
		f.dec.Reset(deep)
		if f.dec.ParseDynamicHeader() == deflate.RejectNone {
			return off, true
		}
		br.Skip(1)
	}
	return 0, false
}

// --- "DBF zlib": trial inflation with the standard library ------------

// TrialFlateFinder is the slowest baseline ("DBF zlib" in Table 2): at
// every bit offset it byte-shifts the input and attempts real inflation
// with compress/flate, accepting offsets that decode without error.
type TrialFlateFinder struct {
	// ProbeIn/ProbeOut bound the work per offset.
	ProbeIn, ProbeOut int
	shift             []byte
	out               []byte
	dict              []byte
}

// NewTrialFlateFinder returns a TrialFlateFinder with default probes.
func NewTrialFlateFinder() *TrialFlateFinder {
	return &TrialFlateFinder{
		ProbeIn:  2048,
		ProbeOut: 1024,
		// A dummy 32 KiB dictionary stands in for the unknown window so
		// that back-references beyond the probe start do not error — the
		// equivalent of priming zlib with inflateSetDictionary.
		dict: make([]byte, 32768),
	}
}

// Next implements Finder.
func (f *TrialFlateFinder) Next(data []byte, fromBit uint64) (uint64, bool) {
	total := uint64(len(data)) * 8
	if f.out == nil {
		f.out = make([]byte, f.ProbeOut)
	}
	for off := fromBit; off+13 <= total; off++ {
		window := f.shiftedWindow(data, off)
		// Require a dynamic non-final block so the comparison against the
		// other finders is apples-to-apples.
		if len(window) == 0 || window[0]&1 == 1 || window[0]>>1&3 != 2 {
			continue
		}
		fr := flate.NewReaderDict(bytes.NewReader(window), f.dict)
		n, err := io.ReadFull(fr, f.out)
		fr.Close()
		if err == nil || ((err == io.ErrUnexpectedEOF || err == io.EOF) && n > 0) {
			return off, true
		}
	}
	return 0, false
}

func (f *TrialFlateFinder) shiftedWindow(data []byte, off uint64) []byte {
	b := int(off / 8)
	k := uint(off % 8)
	end := b + f.ProbeIn
	if end > len(data) {
		end = len(data)
	}
	if k == 0 {
		return data[b:end]
	}
	if cap(f.shift) < f.ProbeIn {
		f.shift = make([]byte, f.ProbeIn)
	}
	w := f.shift[:0]
	for i := b; i < end; i++ {
		v := data[i] >> k
		if i+1 < len(data) {
			v |= data[i+1] << (8 - k)
		}
		w = append(w, v)
	}
	return w
}

// --- Non-Compressed Block finder ---------------------------------------

// StoredFinder locates Non-Compressed Block candidates (§3.4.1): a
// byte-aligned LEN/~NLEN pair preceded by a zero 3-bit header and zero
// padding. Offsets are canonicalised to byteBoundary-3 (the latest
// possible header position), matching the decoder's normalisation.
type StoredFinder struct{}

// Next implements Finder.
func (StoredFinder) Next(data []byte, fromBit uint64) (uint64, bool) {
	// Smallest i with i*8-3 >= fromBit.
	i := int((fromBit + 3 + 7) / 8)
	if i < 1 {
		i = 1
	}
	for ; i+4 <= len(data); i++ {
		if data[i-1]>>5 != 0 {
			continue
		}
		l := uint16(data[i]) | uint16(data[i+1])<<8
		nl := uint16(data[i+2]) | uint16(data[i+3])<<8
		if l == ^nl {
			return uint64(i)*8 - 3, true
		}
	}
	return 0, false
}

// --- Combined finder ----------------------------------------------------

// CombinedFinder merges the Dynamic and Non-Compressed finders,
// returning whichever candidate comes first (§3.4: "combined by finding
// candidates for both and returning the result with the lower offset").
type CombinedFinder struct {
	Dynamic Finder
	Stored  Finder
}

// NewCombinedFinder returns the production finder used by the parallel
// decompressor.
func NewCombinedFinder() *CombinedFinder {
	return &CombinedFinder{Dynamic: NewDynamicFinder(), Stored: StoredFinder{}}
}

// Next implements Finder.
func (f *CombinedFinder) Next(data []byte, fromBit uint64) (uint64, bool) {
	d, okd := f.Dynamic.Next(data, fromBit)
	s, oks := f.Stored.Next(data, fromBit)
	switch {
	case okd && oks:
		if s < d {
			return s, true
		}
		return d, true
	case okd:
		return d, true
	case oks:
		return s, true
	}
	return 0, false
}

// ScanAll collects every candidate in data (for tests and experiment
// harnesses). It caps the result at limit candidates (0 = unlimited).
func ScanAll(f Finder, data []byte, limit int) []uint64 {
	var out []uint64
	off := uint64(0)
	for {
		bit, ok := f.Next(data, off)
		if !ok {
			return out
		}
		out = append(out, bit)
		if limit > 0 && len(out) >= limit {
			return out
		}
		off = bit + 1
	}
}
