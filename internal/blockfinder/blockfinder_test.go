package blockfinder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/deflate"
	"repro/internal/gzipw"
)

func textData(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"wood", "chuck", "would", "how", "much", "if", "a", "the", "quick", "brown"}
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, words[rng.Intn(len(words))]...)
		out = append(out, ' ')
	}
	return out[:n]
}

func randomData(seed int64, n int) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

// groundTruth returns the offsets of non-final findable blocks (dynamic
// and stored) from compressor metadata.
func groundTruth(meta *gzipw.Meta) map[uint64]deflate.BlockType {
	want := map[uint64]deflate.BlockType{}
	for _, b := range meta.Blocks {
		if b.Final || b.Type == deflate.BlockFixed {
			continue
		}
		want[b.Bit] = b.Type
	}
	return want
}

func TestFindersLocateAllRealBlocks(t *testing.T) {
	data := textData(1, 600_000)
	comp, meta, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	want := groundTruth(meta)
	if len(want) < 10 {
		t.Fatalf("test needs many blocks, got %d", len(want))
	}
	finders := map[string]Finder{
		"rapidgzip": NewDynamicFinder(),
		"skipLUT":   NewSkipLUTFinder(),
		"custom":    NewTrialCustomFinder(),
		"pugz":      NewPugzFinder(),
		"combined":  NewCombinedFinder(),
	}
	for name, f := range finders {
		got := map[uint64]bool{}
		for _, off := range ScanAll(f, comp, 0) {
			got[off] = true
		}
		for off, typ := range want {
			if typ == deflate.BlockStored && name != "combined" {
				continue // dynamic-only finders do not see stored blocks
			}
			if !got[off] {
				t.Errorf("%s: missed real block at bit %d (%v)", name, off, typ)
			}
		}
	}
}

func TestStoredFinderLocatesStoredBlocks(t *testing.T) {
	data := randomData(2, 400_000) // incompressible -> stored blocks
	comp, meta, err := gzipw.Compress(data, gzipw.Options{Level: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := groundTruth(meta)
	stored := 0
	for _, typ := range want {
		if typ == deflate.BlockStored {
			stored++
		}
	}
	if stored == 0 {
		t.Fatal("expected stored blocks for random data")
	}
	got := map[uint64]bool{}
	for _, off := range ScanAll(StoredFinder{}, comp, 0) {
		got[off] = true
	}
	for off, typ := range want {
		if typ == deflate.BlockStored && !got[off] {
			t.Errorf("missed stored block at bit %d", off)
		}
	}
}

func TestPigzStyleEmptyStoredBlocksFound(t *testing.T) {
	// pigz's empty stored sync blocks are key parallelization points.
	data := textData(3, 500_000)
	comp, meta, err := gzipw.Compress(data, gzipw.Options{Level: 6, IndependentChunks: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f := NewCombinedFinder()
	got := map[uint64]bool{}
	for _, off := range ScanAll(f, comp, 0) {
		got[off] = true
	}
	for off, typ := range groundTruth(meta) {
		if !got[off] {
			t.Errorf("combined finder missed %v block at bit %d", typ, off)
		}
	}
}

func TestStoredFinderFalsePositiveRate(t *testing.T) {
	// Paper §3.4.1: on random data the stored finder fires about once
	// every (514 +- 23) KiB. Allow a generous band.
	data := randomData(4, 8<<20)
	n := len(ScanAll(StoredFinder{}, data, 0))
	perMiB := float64(n) / 8
	if perMiB < 0.5 || perMiB > 8 {
		t.Fatalf("false positive rate %.2f/MiB outside expected band (~2/MiB)", perMiB)
	}
}

func TestDynamicFinderFalsePositivesAreRare(t *testing.T) {
	// Paper Table 1: ~202 valid headers per 10^12 positions. On 4 MiB
	// (3.3*10^7 positions) expect ~0; allow a few.
	data := randomData(5, 4<<20)
	n := len(ScanAll(NewDynamicFinder(), data, 0))
	if n > 20 {
		t.Fatalf("%d dynamic false positives in 4 MiB of random data", n)
	}
}

func TestSkipLUTMatchesExplicitChecks(t *testing.T) {
	f := func(v uint16) bool {
		v14 := uint32(v) & 0x3FFF
		lutSaysCandidate := skipLUT[v14] == 0
		explicit := v14&1 == 0 && v14>>1&3 == 2 && v14>>4&0xF != 0xF
		return lutSaysCandidate == explicit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipLUTNeverSkipsPastCandidate(t *testing.T) {
	// Property: for every 14-bit window, no position strictly before
	// LUT[v] passes the prefix checks.
	for v := uint32(0); v < 1<<14; v++ {
		s := skipLUT[v]
		for p := uint(0); p < uint(s); p++ {
			if prefixOK(v, p) {
				t.Fatalf("LUT[%#x]=%d but prefix passes at %d", v, s, p)
			}
		}
	}
}

func TestPackedHistogram(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		var bits uint64
		var want [8]int
		for i := 0; i < n; i++ {
			cl := rng.Intn(8)
			bits |= uint64(cl) << (3 * i)
			want[cl]++
		}
		hist := packedHistogram(bits, n)
		for l := 1; l < 8; l++ {
			if int(hist>>(5*l)&31) != want[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCheckLUTMatchesLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var bits uint64
		n := 4 + rng.Intn(16)
		for i := 0; i < n; i++ {
			bits |= uint64(rng.Intn(8)) << (3 * i)
		}
		hist := packedHistogram(bits, n)
		return checkPackedHistogramLUT(hist) == checkPackedHistogramLoop(hist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFunnelRatios(t *testing.T) {
	// The first funnel stages have analytically known rates on random
	// data: 1/2 final, 3/8 type, (1/8)*(2/32) HLIT (paper Table 1).
	data := randomData(6, 2<<20)
	f := ScanFunnel(data, 1<<24)
	if f.Tested < 1<<20 {
		t.Fatalf("tested too few positions: %d", f.Tested)
	}
	tot := float64(f.Tested)
	checks := []struct {
		reason deflate.RejectReason
		want   float64
		tol    float64
	}{
		{deflate.RejectFinalBlock, 0.5, 0.01},
		{deflate.RejectBlockType, 0.375, 0.01},
		{deflate.RejectCodeCount, 0.0078125, 0.002},
	}
	for _, c := range checks {
		got := float64(f.Counts[c.reason]) / tot
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%v rate %.5f want %.5f±%.3f", c.reason, got, c.want, c.tol)
		}
	}
	// Everything must be accounted for.
	var sum uint64
	for _, c := range f.Counts {
		sum += c
	}
	if sum+f.Valid != f.Tested {
		t.Fatalf("funnel does not sum: %d + %d != %d", sum, f.Valid, f.Tested)
	}
	// Valid headers in random data are vanishingly rare (202 per 10^12).
	if f.Valid > 5 {
		t.Fatalf("%d valid headers in %d random positions", f.Valid, f.Tested)
	}
	t.Logf("\n%s", f)
}

func TestAllFindersAgreeOnFirstCandidate(t *testing.T) {
	data := textData(7, 100_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Start the search after the first block header so the first hit is
	// a genuine mid-stream block.
	from := uint64(200)
	r1, ok1 := NewDynamicFinder().Next(comp, from)
	r2, ok2 := NewSkipLUTFinder().Next(comp, from)
	r3, ok3 := NewTrialCustomFinder().Next(comp, from)
	r4, ok4 := NewPugzFinder().Next(comp, from)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("some finder found nothing")
	}
	if r1 != r2 || r1 != r3 || r1 != r4 {
		t.Fatalf("finders disagree: %d %d %d %d", r1, r2, r3, r4)
	}
}

func TestNextRespectsFromBit(t *testing.T) {
	data := textData(8, 200_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f := NewCombinedFinder()
	all := ScanAll(f, comp, 0)
	if len(all) < 3 {
		t.Skip("too few candidates")
	}
	for _, start := range []uint64{all[1], all[1] + 1, all[2] - 1} {
		got, ok := f.Next(comp, start)
		if !ok {
			t.Fatalf("no candidate from %d", start)
		}
		if got < start {
			t.Fatalf("candidate %d before fromBit %d", got, start)
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	finders := []Finder{
		NewDynamicFinder(), NewSkipLUTFinder(), NewTrialCustomFinder(),
		NewPugzFinder(), StoredFinder{}, NewCombinedFinder(), NewTrialFlateFinder(),
	}
	for _, f := range finders {
		if _, ok := f.Next(nil, 0); ok {
			t.Fatalf("%T found candidate in empty input", f)
		}
		if _, ok := f.Next([]byte{0x05}, 0); ok {
			t.Fatalf("%T found candidate in 1-byte input", f)
		}
	}
}

func TestTrialFlateFindsRealBlock(t *testing.T) {
	data := textData(9, 200_000)
	comp, meta, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var firstDyn uint64
	for _, b := range meta.Blocks {
		if !b.Final && b.Type == deflate.BlockDynamic && b.Bit > 200 {
			firstDyn = b.Bit
			break
		}
	}
	if firstDyn == 0 {
		t.Skip("no mid-stream dynamic block")
	}
	f := NewTrialFlateFinder()
	got, ok := f.Next(comp, firstDyn-40)
	if !ok {
		t.Fatal("flate finder found nothing")
	}
	if got > firstDyn {
		t.Fatalf("flate finder skipped the real block: got %d want <= %d", got, firstDyn)
	}
}

// --- Table 2 benchmark: block finder bandwidths -------------------------

func benchFinder(b *testing.B, f Finder, data []byte) {
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(0)
		for {
			bit, ok := f.Next(data, off)
			if !ok {
				break
			}
			off = bit + 1
		}
	}
}

func BenchmarkDBFRapidgzip(b *testing.B) {
	benchFinder(b, NewDynamicFinder(), randomData(10, 1<<20))
}

func BenchmarkDBFSkipLUT(b *testing.B) {
	benchFinder(b, NewSkipLUTFinder(), randomData(10, 1<<20))
}

func BenchmarkDBFCustom(b *testing.B) {
	benchFinder(b, NewTrialCustomFinder(), randomData(10, 256<<10))
}

func BenchmarkDBFPugz(b *testing.B) {
	benchFinder(b, NewPugzFinder(), randomData(10, 512<<10))
}

func BenchmarkDBFFlate(b *testing.B) {
	benchFinder(b, NewTrialFlateFinder(), randomData(10, 16<<10))
}

func BenchmarkNBF(b *testing.B) {
	benchFinder(b, StoredFinder{}, randomData(10, 4<<20))
}

func BenchmarkPrecodeCheckLUT(b *testing.B) {
	hists := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(11))
	for i := range hists {
		var bits uint64
		for t := 0; t < 19; t++ {
			bits |= uint64(rng.Intn(8)) << (3 * t)
		}
		hists[i] = packedHistogram(bits, 19)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checkPackedHistogramLUT(hists[i&1023])
	}
}

func BenchmarkPrecodeCheckLoop(b *testing.B) {
	hists := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(11))
	for i := range hists {
		var bits uint64
		for t := 0; t < 19; t++ {
			bits |= uint64(rng.Intn(8)) << (3 * t)
		}
		hists[i] = packedHistogram(bits, 19)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checkPackedHistogramLoop(hists[i&1023])
	}
}
