package bitio

import "io"

// BitWriter writes an LSB-first bit stream, accumulating bits into bytes
// in Deflate order. It backs the compressor suite (internal/gzipw) that
// generates the evaluation inputs.
type BitWriter struct {
	w     io.Writer
	bits  uint64
	nbits uint
	buf   []byte
	err   error

	// BitsWritten counts every bit emitted, including padding. The
	// compressor records exact block start offsets with it so tests can
	// verify the block finder against ground truth.
	BitsWritten uint64
}

// NewBitWriter returns a BitWriter emitting to w.
func NewBitWriter(w io.Writer) *BitWriter {
	return &BitWriter{w: w, buf: make([]byte, 0, 4096)}
}

// Err returns the first error encountered while writing.
func (w *BitWriter) Err() error { return w.err }

// WriteBits emits the low n bits of v (n <= 57), LSB first.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	w.bits |= (v & (1<<n - 1)) << w.nbits
	w.nbits += n
	w.BitsWritten += uint64(n)
	for w.nbits >= 8 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits >>= 8
		w.nbits -= 8
	}
	if len(w.buf) >= 2048 {
		w.flushBuf()
	}
}

// AlignToByte pads with zero bits to the next byte boundary and returns
// the number of padding bits written (0..7). Deflate stored blocks and
// gzip member boundaries require it.
func (w *BitWriter) AlignToByte() uint {
	n := (8 - w.nbits&7) & 7
	if n > 0 {
		w.WriteBits(0, n)
	}
	return n
}

// WriteBytes emits p; the writer must be byte-aligned.
func (w *BitWriter) WriteBytes(p []byte) {
	if w.nbits != 0 {
		// Slow path keeps correctness if a caller forgot to align.
		for _, b := range p {
			w.WriteBits(uint64(b), 8)
		}
		return
	}
	w.BitsWritten += uint64(len(p)) * 8
	if len(p) >= 2048 {
		w.flushBuf()
		if w.err == nil {
			_, err := w.w.Write(p)
			if err != nil {
				w.err = err
			}
		}
		return
	}
	w.buf = append(w.buf, p...)
	if len(w.buf) >= 2048 {
		w.flushBuf()
	}
}

func (w *BitWriter) flushBuf() {
	if w.err == nil && len(w.buf) > 0 {
		if _, err := w.w.Write(w.buf); err != nil {
			w.err = err
		}
	}
	w.buf = w.buf[:0]
}

// Flush byte-aligns the stream and writes out all buffered data.
func (w *BitWriter) Flush() error {
	w.AlignToByte()
	w.flushBuf()
	return w.err
}
