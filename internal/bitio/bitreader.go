// Package bitio provides bit-granular readers and writers over byte
// streams using the LSB-first bit order mandated by the Deflate format
// (RFC 1951): bits are consumed from the least-significant end of each
// byte, and multi-bit fields are assembled with the earliest bit in the
// least-significant position.
//
// BitReader is the performance-critical substrate of the whole
// decompressor: the Deflate decoder, the block finder and the chunk
// fetcher all pull their input through it (paper §4.1, Figure 7).
package bitio

import (
	"encoding/binary"
	"errors"
	"io"
)

// ErrSeekOutOfRange is returned by SeekBits for a position outside the
// underlying source.
var ErrSeekOutOfRange = errors.New("bitio: seek position out of range")

// defaultBufSize is the refill granularity when reading from an
// io.ReaderAt source. 128 KiB matches the stride used by the paper's
// SharedFileReader benchmark and amortises pread syscalls well.
const defaultBufSize = 128 * 1024

// maxReadBits is the largest count accepted by Read and Peek. The bit
// buffer holds at least 57 valid bits after a refill, which covers the
// largest unit any caller needs in one call (the 57-bit precode field of
// a Dynamic Block header, paper §3.4.2).
const maxReadBits = 57

// BitReader reads an LSB-first bit stream from an in-memory buffer or an
// io.ReaderAt. It supports seeking to arbitrary *bit* offsets, which is
// what lets decompression start in the middle of a Deflate stream.
//
// A BitReader is not safe for concurrent use; the parallel decompressor
// gives every worker its own instance (paper §4.1).
type BitReader struct {
	src  io.ReaderAt // nil when reading a fixed in-memory buffer
	size int64       // total size of the source in bytes

	buf      []byte // current window of the source
	bufStart int64  // byte offset of buf[0] within the source
	pos      int    // index in buf of the next byte to load into bits

	bits  uint64 // bit accumulator; next stream bit is bit 0
	nbits uint   // number of valid bits in bits
}

// NewBitReader returns a BitReader over an io.ReaderAt of the given size
// in bytes. The reader refills an internal buffer with ReadAt calls and
// therefore never mutates shared state in src, so many BitReaders may
// share one src concurrently.
func NewBitReader(src io.ReaderAt, size int64) *BitReader {
	return &BitReader{src: src, size: size, buf: make([]byte, 0, defaultBufSize)}
}

// NewBitReaderBytes returns a BitReader over data without copying it.
func NewBitReaderBytes(data []byte) *BitReader {
	return &BitReader{size: int64(len(data)), buf: data}
}

// Reset repositions the reader at bit 0 of data, reusing the receiver.
func (r *BitReader) Reset(data []byte) {
	r.src = nil
	r.size = int64(len(data))
	r.buf = data
	r.bufStart = 0
	r.pos = 0
	r.bits = 0
	r.nbits = 0
}

// Size returns the size of the underlying source in bytes.
func (r *BitReader) Size() int64 { return r.size }

// BitPos returns the absolute position of the next unread bit.
func (r *BitReader) BitPos() uint64 {
	return uint64(r.bufStart+int64(r.pos))*8 - uint64(r.nbits)
}

// refillBuf loads the next window from src. It reports whether any new
// bytes became available.
func (r *BitReader) refillBuf() bool {
	if r.src == nil {
		return false
	}
	next := r.bufStart + int64(len(r.buf))
	if next >= r.size {
		return false
	}
	n := r.size - next
	if n > defaultBufSize {
		n = defaultBufSize
	}
	r.buf = r.buf[:n]
	read, err := r.src.ReadAt(r.buf, next)
	if read == 0 && err != nil {
		r.buf = r.buf[:0]
		return false
	}
	r.buf = r.buf[:read]
	r.bufStart = next
	r.pos = 0
	return read > 0
}

// fill tops up the bit accumulator to at least 57 bits or until the
// source is exhausted.
func (r *BitReader) fill() {
	for {
		if r.pos+8 <= len(r.buf) && r.nbits <= 0 {
			r.bits = binary.LittleEndian.Uint64(r.buf[r.pos:])
			r.pos += 8
			r.nbits = 64
			return
		}
		if r.pos+4 <= len(r.buf) && r.nbits <= 32 {
			r.bits |= uint64(binary.LittleEndian.Uint32(r.buf[r.pos:])) << r.nbits
			r.pos += 4
			r.nbits += 32
			if r.nbits >= maxReadBits {
				return
			}
			continue
		}
		if r.pos < len(r.buf) {
			if r.nbits > 56 {
				return
			}
			r.bits |= uint64(r.buf[r.pos]) << r.nbits
			r.pos++
			r.nbits += 8
			continue
		}
		if !r.refillBuf() {
			return
		}
	}
}

// Read consumes and returns the next n bits (0 < n <= 57) as an
// LSB-first integer. It returns io.ErrUnexpectedEOF when fewer than n
// bits remain.
func (r *BitReader) Read(n uint) (uint64, error) {
	if r.nbits < n {
		r.fill()
		if r.nbits < n {
			return 0, io.ErrUnexpectedEOF
		}
	}
	v := r.bits & (1<<n - 1)
	r.bits >>= n
	r.nbits -= n
	return v, nil
}

// Peek returns up to n bits (n <= 57) without consuming them, along with
// the number of bits actually available. Missing bits near end of stream
// are zero-padded, which is the convention Huffman decoders rely on.
func (r *BitReader) Peek(n uint) (v uint64, avail uint) {
	if r.nbits < n {
		r.fill()
	}
	avail = r.nbits
	if avail > n {
		avail = n
	}
	return r.bits & (1<<n - 1), avail
}

// Skip consumes n bits, which must not exceed the number remaining.
func (r *BitReader) Skip(n uint) error {
	for n > r.nbits {
		n -= r.nbits
		r.bits = 0
		r.nbits = 0
		r.fill()
		if r.nbits == 0 {
			return io.ErrUnexpectedEOF
		}
	}
	r.bits >>= n
	r.nbits -= n
	return nil
}

// View exposes the buffered source window and the accumulator state for
// inlined hot loops. The caller decodes on local copies — refilling the
// accumulator straight from buf with 8-byte loads while pos+8 <=
// len(buf) — and must Commit the advanced state before calling any
// other method of r. The contract mirrors the wide-refill discipline:
//
//	bits |= binary.LittleEndian.Uint64(buf[pos:]) << nbits
//	pos += int((63 - nbits) >> 3)
//	nbits |= 56
//
// which tops the accumulator up to 56..63 valid bits per iteration.
// Bits of buf[pos:] beyond nbits may be OR-ed into bits redundantly
// across refills; the alignment invariant (bit i of buf[pos] sits at
// accumulator position nbits+i) makes that idempotent.
func (r *BitReader) View() (buf []byte, pos int, bits uint64, nbits uint) {
	return r.buf, r.pos, r.bits, r.nbits
}

// Commit stores fast-loop state advanced from View back into the
// reader. nbits must be < 64; bits above nbits are masked off so the
// slow-path fill() can rebuild them from buf.
func (r *BitReader) Commit(pos int, bits uint64, nbits uint) {
	r.pos = pos
	r.bits = bits & (1<<nbits - 1)
	r.nbits = nbits
}

// AlignToByte discards bits up to the next byte boundary and returns the
// number of bits skipped (0..7).
func (r *BitReader) AlignToByte() uint {
	n := r.nbits & 7
	r.bits >>= n
	r.nbits -= n
	return n
}

// SeekBits repositions the reader at the absolute bit offset off.
func (r *BitReader) SeekBits(off uint64) error {
	if off > uint64(r.size)*8 {
		return ErrSeekOutOfRange
	}
	byteOff := int64(off / 8)
	bitRem := uint(off % 8)
	if r.src == nil {
		r.pos = int(byteOff)
		r.bits = 0
		r.nbits = 0
	} else if byteOff >= r.bufStart && byteOff <= r.bufStart+int64(len(r.buf)) {
		r.pos = int(byteOff - r.bufStart)
		r.bits = 0
		r.nbits = 0
	} else {
		r.buf = r.buf[:0]
		r.bufStart = byteOff
		r.pos = 0
		r.bits = 0
		r.nbits = 0
	}
	if bitRem > 0 {
		if err := r.Skip(bitRem); err != nil {
			return err
		}
	}
	return nil
}

// ReadFull fills p with the next len(p) bytes. The reader must be
// byte-aligned; Non-Compressed Deflate blocks guarantee this after their
// padding is skipped, and the gzip header/footer are byte-aligned by
// construction. This is the fast path the paper's stored-block copy
// relies on (§3.3).
func (r *BitReader) ReadFull(p []byte) error {
	if r.nbits&7 != 0 {
		return errors.New("bitio: ReadFull requires byte alignment")
	}
	n := 0
	// Drain whole bytes already in the accumulator.
	for r.nbits >= 8 && n < len(p) {
		p[n] = byte(r.bits)
		r.bits >>= 8
		r.nbits -= 8
		n++
	}
	for n < len(p) {
		if r.pos >= len(r.buf) {
			if !r.refillBuf() {
				return io.ErrUnexpectedEOF
			}
		}
		c := copy(p[n:], r.buf[r.pos:])
		r.pos += c
		n += c
	}
	return nil
}

// SkipBytes discards n bytes; the reader must be byte-aligned.
func (r *BitReader) SkipBytes(n uint64) error {
	if r.nbits&7 != 0 {
		return errors.New("bitio: SkipBytes requires byte alignment")
	}
	return r.SeekBits(r.BitPos() + n*8)
}

// ReadByte consumes the next 8 bits as a byte. Unlike ReadFull it does
// not require alignment; gzip header parsing after a bit-offset seek
// uses it.
func (r *BitReader) ReadByte() (byte, error) {
	v, err := r.Read(8)
	return byte(v), err
}

// RemainingBits returns the number of unread bits in the source.
func (r *BitReader) RemainingBits() uint64 {
	return uint64(r.size)*8 - r.BitPos()
}
