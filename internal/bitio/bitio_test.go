package bitio

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadSingleBits(t *testing.T) {
	// 0b10110100, 0b01101001 — LSB first yields 0,0,1,0,1,1,0,1 then 1,0,0,1,0,1,1,0.
	r := NewBitReaderBytes([]byte{0xB4, 0x96})
	want := []uint64{0, 0, 1, 0, 1, 1, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1}
	for i, w := range want {
		got, err := r.Read(1)
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("bit %d: got %d want %d", i, got, w)
		}
	}
	if _, err := r.Read(1); err != io.ErrUnexpectedEOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadMultiBit(t *testing.T) {
	r := NewBitReaderBytes([]byte{0xB4, 0x96, 0x5A})
	v, err := r.Read(3)
	if err != nil || v != 0b100 {
		t.Fatalf("got %b err %v", v, err)
	}
	v, err = r.Read(13)
	if err != nil {
		t.Fatal(err)
	}
	// Remaining bits of 0xB4 (10110) then 0x96 (10010110).
	want := uint64(0x96)<<5 | 0b10110
	if v != want {
		t.Fatalf("got %#x want %#x", v, want)
	}
	if r.BitPos() != 16 {
		t.Fatalf("BitPos = %d", r.BitPos())
	}
}

func TestBitPosAndSeek(t *testing.T) {
	data := make([]byte, 1024)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	r := NewBitReaderBytes(data)

	for trial := 0; trial < 2000; trial++ {
		off := uint64(rng.Intn(len(data)*8 - 64))
		if err := r.SeekBits(off); err != nil {
			t.Fatal(err)
		}
		if r.BitPos() != off {
			t.Fatalf("BitPos after seek = %d want %d", r.BitPos(), off)
		}
		n := uint(1 + rng.Intn(57))
		got, err := r.Read(n)
		if err != nil {
			t.Fatal(err)
		}
		want := extractBits(data, off, n)
		if got != want {
			t.Fatalf("off=%d n=%d: got %#x want %#x", off, n, got, want)
		}
		if r.BitPos() != off+uint64(n) {
			t.Fatalf("BitPos after read = %d want %d", r.BitPos(), off+uint64(n))
		}
	}
}

// extractBits is a trivially-correct reference implementation.
func extractBits(data []byte, off uint64, n uint) uint64 {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit := off + uint64(i)
		if data[bit/8]>>(bit%8)&1 == 1 {
			v |= 1 << i
		}
	}
	return v
}

func TestReaderAtSource(t *testing.T) {
	data := make([]byte, 300*1024) // spans multiple refill windows
	rng := rand.New(rand.NewSource(2))
	rng.Read(data)
	r := NewBitReader(bytes.NewReader(data), int64(len(data)))
	ref := NewBitReaderBytes(data)
	for {
		a, errA := r.Read(11)
		b, errB := ref.Read(11)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error mismatch: %v vs %v", errA, errB)
		}
		if errA != nil {
			break
		}
		if a != b {
			t.Fatalf("mismatch at pos %d: %#x vs %#x", ref.BitPos(), a, b)
		}
	}
}

func TestReaderAtSeek(t *testing.T) {
	data := make([]byte, 512*1024)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	r := NewBitReader(bytes.NewReader(data), int64(len(data)))
	for trial := 0; trial < 500; trial++ {
		off := uint64(rng.Intn(len(data)*8 - 64))
		if err := r.SeekBits(off); err != nil {
			t.Fatal(err)
		}
		got, err := r.Read(33)
		if err != nil {
			t.Fatal(err)
		}
		if want := extractBits(data, off, 33); got != want {
			t.Fatalf("off=%d: got %#x want %#x", off, got, want)
		}
	}
}

func TestPeekAndSkip(t *testing.T) {
	data := []byte{0xAA, 0x55, 0xFF, 0x00, 0x12}
	r := NewBitReaderBytes(data)
	v, avail := r.Peek(16)
	if avail != 16 || v != 0x55AA {
		t.Fatalf("peek got %#x avail %d", v, avail)
	}
	if err := r.Skip(4); err != nil {
		t.Fatal(err)
	}
	v, _ = r.Peek(8)
	if v != 0x5A {
		t.Fatalf("peek after skip got %#x", v)
	}
	// Peek near EOF zero-pads.
	if err := r.SeekBits(uint64(len(data)*8 - 3)); err != nil {
		t.Fatal(err)
	}
	v, avail = r.Peek(10)
	if avail != 3 {
		t.Fatalf("avail = %d", avail)
	}
	if v != 0 { // 0x12 = 00010010; top 3 bits are 000
		t.Fatalf("peek near EOF got %#x", v)
	}
}

func TestAlignAndReadFull(t *testing.T) {
	data := []byte{0xFF, 0x01, 0x02, 0x03, 0x04}
	r := NewBitReaderBytes(data)
	if _, err := r.Read(3); err != nil {
		t.Fatal(err)
	}
	if n := r.AlignToByte(); n != 5 {
		t.Fatalf("skipped %d padding bits", n)
	}
	got := make([]byte, 4)
	if err := r.ReadFull(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
	// Align when already aligned is a no-op.
	r.Reset(data)
	if n := r.AlignToByte(); n != 0 {
		t.Fatalf("skipped %d", n)
	}
}

func TestReadFullAcrossRefills(t *testing.T) {
	data := make([]byte, 400*1024)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := NewBitReader(bytes.NewReader(data), int64(len(data)))
	if _, err := r.Read(8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data)-1)
	if err := r.ReadFull(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1:]) {
		t.Fatal("ReadFull across refills mismatch")
	}
}

func TestSkipBytes(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	r := NewBitReaderBytes(data)
	if err := r.SkipBytes(500); err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadByte()
	if err != nil || b != data[500] {
		t.Fatalf("got %d err %v", b, err)
	}
}

func TestSeekOutOfRange(t *testing.T) {
	r := NewBitReaderBytes(make([]byte, 4))
	if err := r.SeekBits(33); err != ErrSeekOutOfRange {
		t.Fatalf("got %v", err)
	}
	if err := r.SeekBits(32); err != nil { // exactly EOF is fine
		t.Fatal(err)
	}
	if _, err := r.Read(1); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v", err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			v uint64
			n uint
		}
		var ops []op
		for i := 0; i < 200; i++ {
			n := uint(1 + rng.Intn(57))
			ops = append(ops, op{rng.Uint64() & (1<<n - 1), n})
		}
		var buf bytes.Buffer
		w := NewBitWriter(&buf)
		var total uint64
		for _, o := range ops {
			w.WriteBits(o.v, o.n)
			total += uint64(o.n)
		}
		if w.BitsWritten != total {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewBitReaderBytes(buf.Bytes())
		for _, o := range ops {
			v, err := r.Read(o.n)
			if err != nil || v != o.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterAlignAndBytes(t *testing.T) {
	var buf bytes.Buffer
	w := NewBitWriter(&buf)
	w.WriteBits(0b101, 3)
	if n := w.AlignToByte(); n != 5 {
		t.Fatalf("pad = %d", n)
	}
	w.WriteBytes([]byte{0xDE, 0xAD})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), []byte{0b101, 0xDE, 0xAD}) {
		t.Fatalf("got %x", buf.Bytes())
	}
	if w.BitsWritten != 24 {
		t.Fatalf("BitsWritten = %d", w.BitsWritten)
	}
}

func TestWriterLargeBytes(t *testing.T) {
	var buf bytes.Buffer
	w := NewBitWriter(&buf)
	big := make([]byte, 10000)
	for i := range big {
		big[i] = byte(i)
	}
	w.WriteBits(1, 1)
	w.AlignToByte()
	w.WriteBytes(big)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{1}, big...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("large WriteBytes mismatch")
	}
}

func TestRemainingBits(t *testing.T) {
	r := NewBitReaderBytes(make([]byte, 10))
	if r.RemainingBits() != 80 {
		t.Fatalf("got %d", r.RemainingBits())
	}
	r.Read(13)
	if r.RemainingBits() != 67 {
		t.Fatalf("got %d", r.RemainingBits())
	}
}

func BenchmarkBitReaderRead(b *testing.B) {
	// Figure 7: bandwidth of BitReader.Read for varying bits per call.
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(7)).Read(data)
	for _, bits := range []uint{1, 2, 4, 8, 12, 16, 24, 30} {
		b.Run(benchName(bits), func(b *testing.B) {
			r := NewBitReaderBytes(data)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(data)
				total := uint64(len(data)) * 8
				for read := uint64(0); read+uint64(bits) <= total; read += uint64(bits) {
					if _, err := r.Read(bits); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func benchName(bits uint) string {
	return "bits=" + string(rune('0'+bits/10)) + string(rune('0'+bits%10))
}

// BenchmarkViewCommitRefill isolates the wide-refill discipline the
// decode hot loops inline via View/Commit: one 8-byte load tops the
// accumulator up to 56..63 bits, then several variable-width takes
// drain it. Compare against BenchmarkBitReaderRead to see what the
// per-call Read overhead costs.
func BenchmarkViewCommitRefill(b *testing.B) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 2654435761 >> 7)
	}
	r := NewBitReaderBytes(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		buf, pos, bits, nbits := r.View()
		for pos+8 <= len(buf) {
			bits |= binary.LittleEndian.Uint64(buf[pos:]) << nbits
			pos += int((63 - nbits) >> 3)
			nbits |= 56
			// Four 13-bit takes per refill, mirroring the Huffman
			// loop's symbols-per-refill budget.
			for k := 0; k < 4; k++ {
				sink += bits & (1<<13 - 1)
				bits >>= 13
				nbits -= 13
			}
		}
		r.Commit(pos, bits, nbits)
	}
	benchSink = sink
}

var benchSink uint64
