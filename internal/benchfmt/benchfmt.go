// Package benchfmt defines the JSON schema of the cross-format
// benchmark reports CI produces (`benchsuite -json`) and the
// comparison logic behind the CI regression gate (`benchgate`). One
// package owns both so the producer and the gate can never drift.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result is one benchmark row: the decompression throughput of one
// input through the public Open API.
type Result struct {
	Name       string  `json:"name"`
	Format     string  `json:"format"`
	InBytes    int     `json:"compressed_bytes"`
	OutBytes   int     `json:"uncompressed_bytes"`
	MBps       float64 `json:"mbps"`
	StdDev     float64 `json:"stddev"`
	Repeats    int     `json:"repeats"`
	WithIndex  bool    `json:"with_index,omitempty"`
	Parallel   int     `json:"parallelism"`
	FailureMsg string  `json:"error,omitempty"`
}

// Report is the file-level schema.
type Report struct {
	Timestamp string   `json:"timestamp"`
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Results   []Result `json:"results"`
}

// Load reads a report from disk.
func Load(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return r, nil
}

// Save writes a report to disk.
func Save(path string, r Report) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Delta is the comparison of one named row across two reports.
type Delta struct {
	Name     string
	Baseline float64 // MB/s in the baseline report (0 when New)
	Current  float64 // MB/s in the current report (0 when Missing)
	// Change is Current/Baseline - 1 (e.g. -0.30 for a 30% slowdown);
	// meaningless when Missing, New or Failed.
	Change  float64
	Missing bool   // row present in baseline but absent now
	New     bool   // row absent from the baseline
	Failed  string // current run's error message, when it errored
}

// Regressed reports whether this delta violates tolerance: a slowdown
// beyond it, a row that vanished, or a row that errors — including a
// brand-new row, since a benchmark that never worked must not merge
// silently. tolerance is a fraction (0.25 = fail below 75% of
// baseline throughput).
func (d Delta) Regressed(tolerance float64) bool {
	if d.Failed != "" || d.Missing {
		return true
	}
	if d.New {
		return false
	}
	return d.Change < -tolerance
}

// Compare matches rows by name and computes per-row deltas, ordered by
// name for stable output.
func Compare(baseline, current Report) []Delta {
	cur := map[string]Result{}
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	seen := map[string]bool{}
	var deltas []Delta
	for _, b := range baseline.Results {
		seen[b.Name] = true
		if b.FailureMsg != "" {
			// A baseline row that never worked cannot gate anything —
			// and its continued failure is not "new" either.
			continue
		}
		c, ok := cur[b.Name]
		switch {
		case !ok:
			deltas = append(deltas, Delta{Name: b.Name, Baseline: b.MBps, Missing: true})
		case c.FailureMsg != "":
			deltas = append(deltas, Delta{Name: b.Name, Baseline: b.MBps, Failed: c.FailureMsg})
		default:
			deltas = append(deltas, Delta{
				Name: b.Name, Baseline: b.MBps, Current: c.MBps,
				Change: c.MBps/b.MBps - 1,
			})
		}
	}
	for _, c := range current.Results {
		if !seen[c.Name] {
			deltas = append(deltas, Delta{Name: c.Name, Current: c.MBps, New: true, Failed: c.FailureMsg})
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// FormatTable renders the deltas as the human-readable table the CI
// log shows, flagging every row the tolerance would fail.
func FormatTable(deltas []Delta, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %9s\n", "format", "baseline MB/s", "current MB/s", "delta")
	for _, d := range deltas {
		switch {
		case d.New && d.Failed != "":
			fmt.Fprintf(&b, "%-16s %14s %14s %9s  <-- FAIL (new row errors: %s)\n", d.Name, "-", "-", "new", d.Failed)
		case d.New:
			fmt.Fprintf(&b, "%-16s %14s %14.1f %9s\n", d.Name, "-", d.Current, "new")
		case d.Missing:
			fmt.Fprintf(&b, "%-16s %14.1f %14s %9s  <-- FAIL (row disappeared)\n", d.Name, d.Baseline, "-", "gone")
		case d.Failed != "":
			fmt.Fprintf(&b, "%-16s %14.1f %14s %9s  <-- FAIL (%s)\n", d.Name, d.Baseline, "-", "error", d.Failed)
		default:
			mark := ""
			if d.Regressed(tolerance) {
				mark = fmt.Sprintf("  <-- FAIL (worse than -%.0f%%)", tolerance*100)
			}
			fmt.Fprintf(&b, "%-16s %14.1f %14.1f %+8.1f%%%s\n", d.Name, d.Baseline, d.Current, d.Change*100, mark)
		}
	}
	return b.String()
}

// Scaling is one derived parallelism-sweep row: for a format measured
// at several core counts (`benchsuite -json-cores`, rows "name-pN"),
// the speedup of the widest run over the single-core run.
type Scaling struct {
	Format  string  // base row name, without the -pN suffix
	P1      float64 // single-core MB/s
	PMax    float64 // MB/s at the widest core count
	Cores   int     // that widest core count
	Speedup float64 // PMax / P1
}

// scalingCeilingMBps excludes rows from the scaling check whose
// single-core throughput says the row measures per-call overhead, not
// streaming decode (cold opens against a prebuilt index run at tens of
// GB/s of *eventual* output). Their p2/p1 ratio is run-to-run noise
// with no decode-parallelism signal in it.
const scalingCeilingMBps = 5000

// ScalingRows derives the speedup rows from a sweep report: every base
// name with a p1 row and at least one wider -pN row yields one entry,
// ordered by name. Reports without sweep rows yield nothing, so callers
// can gate unconditionally.
func ScalingRows(r Report) []Scaling {
	type pair struct{ p1, pmax Result }
	groups := map[string]*pair{}
	for _, res := range r.Results {
		if res.FailureMsg != "" || res.Parallel <= 0 {
			continue
		}
		suffix := fmt.Sprintf("-p%d", res.Parallel)
		base, ok := strings.CutSuffix(res.Name, suffix)
		if !ok {
			continue
		}
		g := groups[base]
		if g == nil {
			g = &pair{}
			groups[base] = g
		}
		if res.Parallel == 1 {
			g.p1 = res
		} else if res.Parallel > g.pmax.Parallel {
			g.pmax = res
		}
	}
	var out []Scaling
	for base, g := range groups {
		if g.p1.Parallel != 1 || g.pmax.Parallel < 2 || g.p1.MBps <= 0 {
			continue
		}
		if g.p1.MBps > scalingCeilingMBps {
			continue
		}
		out = append(out, Scaling{
			Format:  base,
			P1:      g.p1.MBps,
			PMax:    g.pmax.MBps,
			Cores:   g.pmax.Parallel,
			Speedup: g.pmax.MBps / g.p1.MBps,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Format < out[j].Format })
	return out
}

// ScalingDelta compares one format's derived speedup across two sweep
// reports.
type ScalingDelta struct {
	Format   string
	Baseline Scaling // zero-valued when New
	Current  Scaling
	New      bool // no sweep pair for this format in the baseline
}

// Regressed reports whether the format's widest-run speedup fell more
// than tolerance below its baseline speedup. The check is relative, not
// an absolute efficiency floor: CI runners share cores and some rows
// legitimately never scale (an HTTP server bottlenecked on accept, a
// single zstd frame with no frame-level parallelism) — what must not
// happen silently is a format that used to scale ceasing to.
func (d ScalingDelta) Regressed(tolerance float64) bool {
	if d.New {
		return false
	}
	return d.Current.Speedup < d.Baseline.Speedup*(1-tolerance)
}

// CompareScaling derives the speedup rows of both reports and matches
// them by format. Formats that lost their sweep pair entirely already
// fail the main row gate as missing rows, so they are skipped here.
func CompareScaling(baseline, current Report) []ScalingDelta {
	base := map[string]Scaling{}
	for _, s := range ScalingRows(baseline) {
		base[s.Format] = s
	}
	var out []ScalingDelta
	for _, s := range ScalingRows(current) {
		b, ok := base[s.Format]
		out = append(out, ScalingDelta{Format: s.Format, Baseline: b, Current: s, New: !ok})
	}
	return out
}

// FormatScalingTable renders the speedup comparison, flagging every
// format the tolerance would fail.
func FormatScalingTable(deltas []ScalingDelta, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %11s %9s %9s\n", "format", "p1 MB/s", "baseline", "speedup")
	for _, d := range deltas {
		s := d.Current
		mark := ""
		if d.Regressed(tolerance) {
			mark = fmt.Sprintf("  <-- FAIL (worse than -%.0f%%)", tolerance*100)
		}
		baseCol := fmt.Sprintf("%8.2fx", d.Baseline.Speedup)
		if d.New {
			baseCol = fmt.Sprintf("%9s", "new")
		}
		fmt.Fprintf(&b, "%-24s %11.1f %s %5.2fx(p%d)%s\n", d.Format, s.P1, baseCol, s.Speedup, s.Cores, mark)
	}
	return b.String()
}

// ScalingRegressions filters the scaling deltas the tolerance fails, as
// gate messages.
func ScalingRegressions(deltas []ScalingDelta, tolerance float64) []string {
	var out []string
	for _, d := range deltas {
		if d.Regressed(tolerance) {
			out = append(out, fmt.Sprintf("%s: p%d speedup %.2fx, baseline %.2fx (tolerance -%.0f%%)",
				d.Format, d.Current.Cores, d.Current.Speedup, d.Baseline.Speedup, tolerance*100))
		}
	}
	return out
}

// Regressions filters the deltas the tolerance fails, as messages.
func Regressions(deltas []Delta, tolerance float64) []string {
	var out []string
	for _, d := range deltas {
		if !d.Regressed(tolerance) {
			continue
		}
		switch {
		case d.Missing:
			out = append(out, fmt.Sprintf("%s: present in baseline (%.1f MB/s) but missing from current report", d.Name, d.Baseline))
		case d.Failed != "" && d.New:
			out = append(out, fmt.Sprintf("%s: new row errors: %s", d.Name, d.Failed))
		case d.Failed != "":
			out = append(out, fmt.Sprintf("%s: current run failed: %s", d.Name, d.Failed))
		default:
			out = append(out, fmt.Sprintf("%s: %.1f -> %.1f MB/s (%.1f%%, tolerance -%.0f%%)",
				d.Name, d.Baseline, d.Current, d.Change*100, tolerance*100))
		}
	}
	return out
}
