package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(rows ...Result) Report {
	return Report{Timestamp: "t", GoVersion: "go", NumCPU: 4, Results: rows}
}

func TestCompareAndTolerance(t *testing.T) {
	base := report(
		Result{Name: "gzip", MBps: 100},
		Result{Name: "zstd", MBps: 200},
		Result{Name: "lz4", MBps: 400},
		Result{Name: "flaky", MBps: 50, FailureMsg: "never worked"},
		Result{Name: "gone", MBps: 80},
	)
	cur := report(
		Result{Name: "gzip", MBps: 80},                             // -20%: inside a 25% tolerance
		Result{Name: "zstd", MBps: 140},                            // -30%: regression
		Result{Name: "lz4", MBps: 440},                             // +10%: fine
		Result{Name: "flaky", MBps: 0, FailureMsg: "still broken"}, // ignored: broken in baseline
		Result{Name: "new-format", MBps: 10},
	)
	deltas := Compare(base, cur)
	regs := Regressions(deltas, 0.25)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want zstd slowdown + gone row", regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "zstd") || !strings.Contains(joined, "gone") {
		t.Fatalf("unexpected regression set: %v", regs)
	}
	// The same comparison passes at a looser tolerance (minus the
	// disappeared row, which no tolerance forgives).
	if regs := Regressions(deltas, 0.50); len(regs) != 1 || !strings.Contains(regs[0], "gone") {
		t.Fatalf("loose tolerance regressions = %v", regs)
	}

	table := FormatTable(deltas, 0.25)
	for _, want := range []string{"gzip", "zstd", "new", "FAIL"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCurrentRowErrorFails(t *testing.T) {
	base := report(Result{Name: "bzip2", MBps: 30})
	cur := report(Result{Name: "bzip2", FailureMsg: "decode exploded"})
	regs := Regressions(Compare(base, cur), 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "decode exploded") {
		t.Fatalf("regressions = %v", regs)
	}
}

// A brand-new row that errors must gate (and render): a benchmark that
// never worked must not merge silently.
func TestNewRowErrorFails(t *testing.T) {
	base := report(Result{Name: "gzip", MBps: 100})
	cur := report(
		Result{Name: "gzip", MBps: 100},
		Result{Name: "xz", FailureMsg: "not wired up"},
	)
	deltas := Compare(base, cur)
	regs := Regressions(deltas, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "not wired up") {
		t.Fatalf("regressions = %v", regs)
	}
	if table := FormatTable(deltas, 0.25); !strings.Contains(table, "not wired up") {
		t.Fatalf("table hides the erroring new row:\n%s", table)
	}
}

func TestScalingRows(t *testing.T) {
	r := report(
		Result{Name: "gzip-p1", Parallel: 1, MBps: 100},
		Result{Name: "gzip-p2", Parallel: 2, MBps: 180},
		Result{Name: "gzip-p4", Parallel: 4, MBps: 320},
		Result{Name: "coldopen-p1", Parallel: 1, MBps: 80000}, // open-cost row: excluded by the ceiling
		Result{Name: "coldopen-p2", Parallel: 2, MBps: 50000},
		Result{Name: "broken-p1", Parallel: 1, MBps: 0, FailureMsg: "x"}, // errored: no pair
		Result{Name: "broken-p2", Parallel: 2, MBps: 50},
		Result{Name: "create-then-open", Parallel: 2, MBps: 90}, // no -pN suffix: not a sweep row
	)
	rows := ScalingRows(r)
	if len(rows) != 1 || rows[0].Format != "gzip" {
		t.Fatalf("rows = %+v", rows)
	}
	// The widest core count wins (p4, not p2), and speedup is pmax/p1.
	if rows[0].Cores != 4 || rows[0].Speedup != 3.2 {
		t.Fatalf("gzip row = %+v", rows[0])
	}
	// A report without sweep rows derives nothing, so the gate can run
	// unconditionally.
	if rows := ScalingRows(report(Result{Name: "gzip", Parallel: 2, MBps: 100})); len(rows) != 0 {
		t.Fatalf("non-sweep report produced rows: %+v", rows)
	}
}

func TestCompareScaling(t *testing.T) {
	base := report(
		Result{Name: "gzip-p1", Parallel: 1, MBps: 100},
		Result{Name: "gzip-p2", Parallel: 2, MBps: 180}, // scaled 1.8x
		Result{Name: "serve-p1", Parallel: 1, MBps: 100},
		Result{Name: "serve-p2", Parallel: 2, MBps: 65}, // never scaled: 0.65x
	)
	cur := report(
		Result{Name: "gzip-p1", Parallel: 1, MBps: 110},
		Result{Name: "gzip-p2", Parallel: 2, MBps: 115}, // collapsed to 1.05x
		Result{Name: "serve-p1", Parallel: 1, MBps: 100},
		Result{Name: "serve-p2", Parallel: 2, MBps: 60}, // 0.60x: within tolerance of 0.65x
		Result{Name: "zstd-p1", Parallel: 1, MBps: 200},
		Result{Name: "zstd-p2", Parallel: 2, MBps: 100}, // new pair: cannot regress
	)
	deltas := CompareScaling(base, cur)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %+v", deltas)
	}
	regs := ScalingRegressions(deltas, 0.35)
	if len(regs) != 1 || !strings.Contains(regs[0], "gzip") {
		t.Fatalf("regressions = %v", regs)
	}
	table := FormatScalingTable(deltas, 0.35)
	if !strings.Contains(table, "FAIL") || !strings.Contains(table, "new") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	in := report(Result{Name: "gzip", Format: "gzip", MBps: 123.4, Parallel: 4, Repeats: 3})
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0] != in.Results[0] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage JSON loaded")
	}
}
