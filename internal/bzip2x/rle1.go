package bzip2x

// rle1Encode applies bzip2's first run-length stage: runs of 4 to 255
// identical bytes become four copies plus a count byte (run-4). The
// stage exists to bound the quadratic worst cases of the original
// block-sorting implementation; it is mandatory in the format.
func rle1Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/64+16)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && run < 255 && src[i+run] == b {
			run++
		}
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
		} else {
			for k := 0; k < run; k++ {
				out = append(out, b)
			}
		}
		i += run
	}
	return out
}

// rle1Decode inverts rle1Encode (used only by tests; decompression is
// validated against the standard library).
func rle1Decode(src []byte) []byte {
	var out []byte
	run := 0
	var last byte
	for i := 0; i < len(src); i++ {
		b := src[i]
		if run == 4 {
			for k := 0; k < int(b); k++ {
				out = append(out, last)
			}
			run = 0
			continue
		}
		if len(out) > 0 && b == last {
			run++
		} else {
			run = 1
		}
		last = b
		out = append(out, b)
	}
	return out
}

// rle1SplitPoint returns the largest prefix length p of src such that
// rle1Encode(src[:p]) fits within limit bytes, without cutting a run in
// a way that changes the encoding. It returns len(src) when everything
// fits.
func rle1SplitPoint(src []byte, limit int) int {
	used := 0
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && run < 255 && src[i+run] == b {
			run++
		}
		cost := run
		if run >= 4 {
			cost = 5
		}
		if used+cost > limit {
			return i
		}
		used += cost
		i += run
	}
	return len(src)
}
