// Package bzip2x is the bzip2 leg of the reproduction: a from-scratch
// bzip2 compressor (RLE1 → BWT → MTF/RLE2 → Huffman, validated against
// the standard library's decompressor) and an lbzip2-style parallel
// decompressor that splits multi-stream files at stream magics and
// inflates the streams concurrently.
//
// The paper's Figure 5 notes that the rapidgzip chunk-fetcher
// architecture had already been instantiated for bzip2
// (Bzip2BlockFetcher), and Table 4 benchmarks lbzip2 as the bzip2
// analog of parallel gzip decompression. bzip2 is a far easier target
// than gzip: blocks are self-contained (no LZ window crosses a block
// boundary), so no two-stage decoding or marker replacement is needed —
// which is precisely why the gzip problem required the paper.
package bzip2x

import (
	"errors"
	"fmt"
)

// WriterOptions configures Compress.
type WriterOptions struct {
	// Level selects the block size, level * 100 kB, like bzip2 -1..-9.
	// Zero means 9.
	Level int
	// StreamSize > 0 splits the input into independent bzip2 streams of
	// this many uncompressed bytes each — the structure pbzip2/lbzip2
	// produce and the unit of parallel decompression. Zero emits a
	// single stream (possibly with many blocks).
	StreamSize int
}

func (o WriterOptions) withDefaults() (WriterOptions, error) {
	if o.Level == 0 {
		o.Level = 9
	}
	if o.Level < 1 || o.Level > 9 {
		return o, fmt.Errorf("bzip2x: invalid level %d", o.Level)
	}
	return o, nil
}

// Compress produces a bzip2 file (one or more concatenated streams).
func Compress(data []byte, opts WriterOptions) ([]byte, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	streamSize := opts.StreamSize
	if streamSize <= 0 {
		streamSize = len(data)
	}
	var out []byte
	for start := 0; ; start += streamSize {
		end := start + streamSize
		if end > len(data) {
			end = len(data)
		}
		stream, err := compressStream(data[start:end], opts.Level)
		if err != nil {
			return nil, err
		}
		out = append(out, stream...)
		if end == len(data) {
			break
		}
	}
	return out, nil
}

// compressStream emits one complete bzip2 stream.
func compressStream(data []byte, level int) ([]byte, error) {
	w := &msbWriter{}
	w.writeBits(uint64('B'), 8)
	w.writeBits(uint64('Z'), 8)
	w.writeBits(uint64('h'), 8)
	w.writeBits(uint64('0'+level), 8)

	// The block limit applies to the post-RLE1 length; reserve the
	// safety margin bzlib uses.
	limit := level*100_000 - 20
	combined := uint32(0)
	for len(data) > 0 {
		p := rle1SplitPoint(data, limit)
		if p == 0 {
			return nil, errors.New("bzip2x: block split made no progress")
		}
		crc, err := encodeBlock(w, data[:p])
		if err != nil {
			return nil, err
		}
		combined = combineCRC(combined, crc)
		data = data[p:]
	}
	w.writeBits(footerMagic, 48)
	w.writeBits(uint64(combined), 32)
	w.align()
	return w.bytes(), nil
}
