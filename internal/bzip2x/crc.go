package bzip2x

// bzip2 uses a big-endian (non-reflected) CRC-32 with the standard
// polynomial — the bit-mirrored cousin of the gzip CRC.
const crcPoly = 0x04C11DB7

var crcTable = func() [256]uint32 {
	var t [256]uint32
	for i := range t {
		c := uint32(i) << 24
		for b := 0; b < 8; b++ {
			if c&0x80000000 != 0 {
				c = c<<1 ^ crcPoly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}()

// blockCRC computes the bzip2 block CRC of data (pre-RLE1 bytes).
func blockCRC(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>24)^b]
	}
	return ^crc
}

// combineCRC folds a block CRC into the stream CRC.
func combineCRC(stream, block uint32) uint32 {
	return (stream<<1 | stream>>31) ^ block
}
