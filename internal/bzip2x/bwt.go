package bzip2x

import "sort"

// bwt computes the Burrows-Wheeler transform of s: the last column of
// the sorted rotation matrix, plus the row index of the original
// string. Rotations are ordered with prefix-doubling on circular
// ranks — O(n log^2 n), robust against the highly repetitive inputs
// that defeat naive rotation sorting.
func bwt(s []byte) (last []byte, origPtr int) {
	n := len(s)
	if n == 0 {
		return nil, 0
	}
	rank := make([]int, n)
	for i, b := range s {
		rank[i] = int(b)
	}
	sa := make([]int, n)
	for i := range sa {
		sa[i] = i
	}
	tmp := make([]int, n)
	for k := 1; ; k <<= 1 {
		key := func(i int) (int, int) { return rank[i], rank[(i+k)%n] }
		sort.Slice(sa, func(a, b int) bool {
			r1a, r2a := key(sa[a])
			r1b, r2b := key(sa[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[sa[0]] = 0
		distinct := 1
		for i := 1; i < n; i++ {
			r1p, r2p := key(sa[i-1])
			r1c, r2c := key(sa[i])
			if r1p == r1c && r2p == r2c {
				tmp[sa[i]] = tmp[sa[i-1]]
			} else {
				tmp[sa[i]] = tmp[sa[i-1]] + 1
				distinct++
			}
		}
		copy(rank, tmp)
		if distinct == n || k >= n {
			break
		}
	}
	// Rotations with equal circular content (periodic strings) are
	// interchangeable: any stable order yields a valid transform.
	last = make([]byte, n)
	origPtr = -1
	for i, start := range sa {
		last[i] = s[(start+n-1)%n]
		if start == 0 {
			origPtr = i
		}
	}
	return last, origPtr
}

// bwtInverse reconstructs the original string (tests only).
func bwtInverse(last []byte, origPtr int) []byte {
	n := len(last)
	if n == 0 {
		return nil
	}
	var counts [256]int
	for _, b := range last {
		counts[b]++
	}
	var base [256]int
	sum := 0
	for v := 0; v < 256; v++ {
		base[v] = sum
		sum += counts[v]
	}
	// next[i]: row index of the rotation that follows row i's rotation.
	next := make([]int, n)
	var seen [256]int
	for i, b := range last {
		next[base[b]+seen[b]] = i
		seen[b]++
	}
	out := make([]byte, n)
	row := next[origPtr]
	for i := 0; i < n; i++ {
		out[i] = last[row]
		row = next[row]
	}
	return out
}
