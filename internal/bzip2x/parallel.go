package bzip2x

import (
	"bytes"
	"compress/bzip2"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/pool"
)

// streamMagicLen is the prefix checked by FindStreams: "BZh", a level
// digit, and the first block's 48-bit magic (or the footer magic of an
// empty stream).
const streamMagicLen = 10

// FindStreams scans for byte offsets that look like bzip2 stream
// starts. Offset 0 is always included (the caller validates it by
// decompressing). Like the gzip block finder, this may return false
// positives — compressed payload bytes can spell the magic — so the
// caller must be ready to fall back (§3: trial and error).
func FindStreams(data []byte) []int {
	offs := []int{0}
	for i := 1; i+streamMagicLen <= len(data); i++ {
		if data[i] != 'B' || data[i+1] != 'Z' || data[i+2] != 'h' {
			continue
		}
		if data[i+3] < '1' || data[i+3] > '9' {
			continue
		}
		m := uint64(0)
		for _, b := range data[i+4 : i+10] {
			m = m<<8 | uint64(b)
		}
		if m == blockMagic || m == footerMagic {
			offs = append(offs, i)
		}
	}
	return offs
}

// Decompress inflates a bzip2 file serially (any block/stream layout),
// delegating to the standard library decoder.
func Decompress(data []byte) ([]byte, error) {
	out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(data)))
	if err != nil {
		return nil, fmt.Errorf("bzip2x: %w", err)
	}
	return out, nil
}

// DecompressParallel inflates a multi-stream bzip2 file with
// stream-level parallelism, the lbzip2 scheme of Table 4: candidate
// stream boundaries come from FindStreams, the spans between
// consecutive candidates decode concurrently on the worker pool, and
// any failure (for example a false-positive boundary splitting a real
// stream) falls back to the serial whole-file path, which is always
// correct.
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	if threads < 1 {
		threads = 1
	}
	offs := FindStreams(data)
	if len(offs) == 1 || threads == 1 {
		return Decompress(data)
	}
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[[]byte], len(offs))
	for i := range offs {
		start := offs[i]
		end := len(data)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		futs[i] = pool.Go(p, func() ([]byte, error) {
			return Decompress(data[start:end])
		})
	}
	var out []byte
	for _, fut := range futs {
		part, err := fut.Wait()
		if err != nil {
			// A span failed: at least one candidate was a false
			// positive. Serial decoding resolves the layout exactly.
			return Decompress(data)
		}
		out = append(out, part...)
	}
	return out, nil
}

// streamSpan is one checkpoint of a Reader: a validated span of
// complete bzip2 streams and its decompressed extent.
type streamSpan struct {
	compOff, compEnd int
	decompOff        int64
	size             int64
}

// Reader provides checkpointed random access into a bzip2 file — the
// Bzip2BlockFetcher instantiation the paper mentions under Figure 5.
// bzip2 declares no sizes anywhere, so construction runs one sizing
// pass over the whole file: candidate stream boundaries come from
// FindStreams, the spans between them decode in parallel, and any span
// that fails (a false-positive magic splitting a real stream) is merged
// with its successor and retried, which converges on the true stream
// layout. After that, ReadAt re-decodes only the stream spans touched
// by the request, keeping recent outputs in an LRU cache.
//
// All methods are safe for concurrent use.
type Reader struct {
	data    []byte
	spans   []streamSpan
	size    int64
	threads int

	mu    sync.Mutex
	cache *cache.Cache[int, []byte] // span index -> decompressed output
}

// NewReader validates data and builds the checkpoint table. The sizing
// pass decompresses the whole file once (in parallel for multi-stream
// files) but records only the span sizes — peak memory stays bounded
// by threads × span output, not the whole decompressed file.
func NewReader(data []byte, threads int) (*Reader, error) {
	if threads < 1 {
		threads = 1
	}
	cands := FindStreams(data)
	end := func(i int) int {
		if i+1 < len(cands) {
			return cands[i+1]
		}
		return len(data)
	}

	// First guess: every candidate starts a stream. Size all spans
	// concurrently; failures are resolved by merging below.
	p := pool.New(threads)
	futs := make([]*pool.Future[int], len(cands))
	for i := range cands {
		start, stop := cands[i], end(i)
		futs[i] = pool.Go(p, func() (int, error) {
			out, err := Decompress(data[start:stop])
			return len(out), err
		})
	}
	firstLen := make([]int, len(cands))
	firstErr := make([]error, len(cands))
	for i, fut := range futs {
		firstLen[i], firstErr[i] = fut.Wait()
	}
	p.Close()

	r := &Reader{
		data:    data,
		threads: threads,
		cache:   cache.NewLRUCache[int, []byte](max(2*threads, 4)),
	}
	for i := 0; i < len(cands); {
		start := cands[i]
		j := i
		size, err := firstLen[i], firstErr[i]
		for err != nil {
			// The span was cut short by a false-positive candidate:
			// extend it over the next candidate and retry.
			j++
			if j >= len(cands) {
				return nil, fmt.Errorf("bzip2x: stream at offset %d: %w", start, err)
			}
			var out []byte
			out, err = Decompress(data[start:end(j)])
			size = len(out)
		}
		r.spans = append(r.spans, streamSpan{
			compOff:   start,
			compEnd:   end(j),
			decompOff: r.size,
			size:      int64(size),
		})
		r.size += int64(size)
		i = j + 1
	}
	return r, nil
}

// Size returns the total decompressed size (established by the sizing
// pass, so this never scans again).
func (r *Reader) Size() int64 { return r.size }

// NumStreams returns the number of checkpoints (validated stream
// spans). Files written by pbzip2/lbzip2 — or Compress with a
// StreamSize — have many; single-stream files have one, making every
// ReadAt a whole-file decode.
func (r *Reader) NumStreams() int { return len(r.spans) }

// spanContent returns the decompressed output of span i, re-decoding on
// a cache miss. The decode runs outside the lock so concurrent reads of
// different spans overlap on multiple cores; two goroutines racing on
// the same span duplicate work, not results.
func (r *Reader) spanContent(i int) ([]byte, error) {
	r.mu.Lock()
	if out, ok := r.cache.Get(i); ok {
		r.mu.Unlock()
		return out, nil
	}
	r.mu.Unlock()
	s := r.spans[i]
	out, err := Decompress(r.data[s.compOff:s.compEnd])
	if err != nil {
		// The span decoded during the sizing pass; only data corruption
		// between then and now can get here.
		return nil, fmt.Errorf("bzip2x: span %d: %w", i, err)
	}
	r.mu.Lock()
	r.cache.Put(i, out)
	r.mu.Unlock()
	return out, nil
}

// NumChunks, ChunkExtent and ChunkContent expose the checkpoint table
// generically (one chunk = one validated stream span), so a consumer
// can pipeline ordered sequential reads with parallel decodes.
func (r *Reader) NumChunks() int { return len(r.spans) }

// ChunkExtent returns the decompressed offset and size of chunk i.
func (r *Reader) ChunkExtent(i int) (off, size int64) {
	return r.spans[i].decompOff, r.spans[i].size
}

// ChunkContent returns the decompressed output of chunk i. The
// returned slice is shared with the cache and must not be modified.
func (r *Reader) ChunkContent(i int) ([]byte, error) { return r.spanContent(i) }

// ReadAt implements io.ReaderAt over the decompressed stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("bzip2x: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		if off >= r.size {
			return n, io.EOF
		}
		// Last span starting at or before off, skipping empty spans.
		i := sort.Search(len(r.spans), func(i int) bool {
			return r.spans[i].decompOff > off
		}) - 1
		for i < len(r.spans) && r.spans[i].decompOff+r.spans[i].size <= off {
			i++
		}
		if i < 0 || i >= len(r.spans) {
			return n, io.EOF
		}
		out, err := r.spanContent(i)
		if err != nil {
			return n, err
		}
		within := off - r.spans[i].decompOff
		c := copy(p[n:], out[within:])
		n += c
		off += int64(c)
	}
	return n, nil
}
