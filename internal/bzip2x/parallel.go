package bzip2x

import (
	"bytes"
	"compress/bzip2"
	"fmt"
	"io"

	"repro/internal/pool"
	"repro/internal/spanengine"
)

// FormatTag identifies bzip2 checkpoint tables in persisted indexes.
const FormatTag = "bz2 "

// streamMagicLen is the prefix checked by FindStreams: "BZh", a level
// digit, and the first block's 48-bit magic (or the footer magic of an
// empty stream).
const streamMagicLen = 10

// FindStreams scans for byte offsets that look like bzip2 stream
// starts. Offset 0 is always included (the caller validates it by
// decompressing). Like the gzip block finder, this may return false
// positives — compressed payload bytes can spell the magic — so the
// caller must be ready to fall back (§3: trial and error).
func FindStreams(data []byte) []int {
	offs := []int{0}
	for i := 1; i+streamMagicLen <= len(data); i++ {
		if data[i] != 'B' || data[i+1] != 'Z' || data[i+2] != 'h' {
			continue
		}
		if data[i+3] < '1' || data[i+3] > '9' {
			continue
		}
		m := uint64(0)
		for _, b := range data[i+4 : i+10] {
			m = m<<8 | uint64(b)
		}
		if m == blockMagic || m == footerMagic {
			offs = append(offs, i)
		}
	}
	return offs
}

// Decompress inflates a bzip2 file serially (any block/stream layout),
// delegating to the standard library decoder.
func Decompress(data []byte) ([]byte, error) {
	out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(data)))
	if err != nil {
		return nil, fmt.Errorf("bzip2x: %w", err)
	}
	return out, nil
}

// DecompressParallel inflates a multi-stream bzip2 file with
// stream-level parallelism, the lbzip2 scheme of Table 4: candidate
// stream boundaries come from FindStreams, the spans between
// consecutive candidates decode concurrently on the worker pool, and
// any failure (for example a false-positive boundary splitting a real
// stream) falls back to the serial whole-file path, which is always
// correct.
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	if threads < 1 {
		threads = 1
	}
	offs := FindStreams(data)
	if len(offs) == 1 || threads == 1 {
		return Decompress(data)
	}
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[[]byte], len(offs))
	for i := range offs {
		start := offs[i]
		end := len(data)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		futs[i] = pool.Go(p, func() ([]byte, error) {
			return Decompress(data[start:end])
		})
	}
	var out []byte
	for _, fut := range futs {
		part, err := fut.Wait()
		if err != nil {
			// A span failed: at least one candidate was a false
			// positive. Serial decoding resolves the layout exactly.
			return Decompress(data)
		}
		out = append(out, part...)
	}
	return out, nil
}

// Codec is the bzip2 half of the shared span engine: the sizing pass
// (bzip2 declares no sizes anywhere, so Scan decompresses the whole
// file once, in parallel, merging spans cut short by false-positive
// magics) and the per-span decode.
type Codec struct {
	// Threads parallelizes the sizing pass; values < 1 mean 1.
	Threads int
}

// FormatTag implements spanengine.Codec.
func (Codec) FormatTag() string { return FormatTag }

// Scan implements spanengine.Codec: candidate stream boundaries come
// from FindStreams, the spans between them decode in parallel, and any
// span that fails (a false-positive magic splitting a real stream) is
// merged with its successor and retried, which converges on the true
// stream layout. Peak memory stays bounded by threads × span output —
// only the span sizes are recorded.
func (c Codec) Scan(data []byte) (spanengine.ScanResult, error) {
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	cands := FindStreams(data)
	end := func(i int) int {
		if i+1 < len(cands) {
			return cands[i+1]
		}
		return len(data)
	}

	// First guess: every candidate starts a stream. Size all spans
	// concurrently; failures are resolved by merging below.
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[int], len(cands))
	for i := range cands {
		start, stop := cands[i], end(i)
		futs[i] = pool.Go(p, func() (int, error) {
			out, err := Decompress(data[start:stop])
			return len(out), err
		})
	}
	firstLen := make([]int, len(cands))
	firstErr := make([]error, len(cands))
	for i, fut := range futs {
		firstLen[i], firstErr[i] = fut.Wait()
	}

	res := spanengine.ScanResult{SizingDecodes: uint64(len(cands))}
	var decomp int64
	for i := 0; i < len(cands); {
		start := cands[i]
		j := i
		size, err := firstLen[i], firstErr[i]
		for err != nil {
			// The span was cut short by a false-positive candidate:
			// extend it over the next candidate and retry.
			j++
			if j >= len(cands) {
				return spanengine.ScanResult{}, fmt.Errorf("bzip2x: stream at offset %d: %w", start, err)
			}
			var out []byte
			out, err = Decompress(data[start:end(j)])
			size = len(out)
			res.SizingDecodes++
		}
		res.Spans = append(res.Spans, spanengine.Span{
			CompOff:    int64(start),
			CompEnd:    int64(end(j)),
			DecompOff:  decomp,
			DecompSize: int64(size),
		})
		decomp += int64(size)
		i = j + 1
	}
	return res, nil
}

// DecodeSpan implements spanengine.Codec. The stdlib decoder verifies
// block CRCs on every decode, so span decodes always verify integrity.
func (Codec) DecodeSpan(data []byte, s spanengine.Span) ([]byte, error) {
	out, err := Decompress(data[s.CompOff:s.CompEnd])
	if err != nil {
		// The span decoded during the sizing pass (or was persisted by
		// one); only data corruption since then can get here.
		return nil, fmt.Errorf("bzip2x: span at offset %d: %w", s.CompOff, err)
	}
	return out, nil
}

// Reader provides checkpointed random access into a bzip2 file — the
// Bzip2BlockFetcher instantiation the paper mentions under Figure 5,
// served by the shared span engine: the checkpoint table comes from
// Codec.Scan (one sizing pass over the whole file) or from a persisted
// index via NewReaderFromCheckpoints (no sizing pass at all), and
// ReadAt re-decodes only the stream spans touched by the request, with
// the engine's LRU cache and prefetcher around it.
//
// All methods are safe for concurrent use.
type Reader struct {
	eng *spanengine.Engine
}

// NewReader validates data and builds the checkpoint table with one
// parallel sizing pass.
func NewReader(data []byte, threads int) (*Reader, error) {
	return NewReaderConfig(data, spanengine.Config{Threads: threads})
}

// NewReaderConfig is NewReader with full engine tuning (cache size,
// prefetch depth, strategy).
func NewReaderConfig(data []byte, cfg spanengine.Config) (*Reader, error) {
	eng, err := spanengine.New(data, Codec{Threads: cfg.Threads}, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng}, nil
}

// NewReaderFromCheckpoints builds a reader from a persisted checkpoint
// table, skipping the sizing pass entirely.
func NewReaderFromCheckpoints(data []byte, spans []spanengine.Span, cfg spanengine.Config) (*Reader, error) {
	eng, err := spanengine.NewFromCheckpoints(data, Codec{Threads: cfg.Threads}, spans, 0, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng}, nil
}

// Engine exposes the underlying span engine (stats, checkpoint export).
func (r *Reader) Engine() *spanengine.Engine { return r.eng }

// Close releases the engine's prefetch workers.
func (r *Reader) Close() error { return r.eng.Close() }

// Size returns the total decompressed size (established by the sizing
// pass or the imported table, so this never scans again).
func (r *Reader) Size() int64 { return r.eng.Size() }

// NumStreams returns the number of checkpoints (validated stream
// spans). Files written by pbzip2/lbzip2 — or Compress with a
// StreamSize — have many; single-stream files have one, making every
// ReadAt a whole-file decode.
func (r *Reader) NumStreams() int { return r.eng.NumSpans() }

// NumChunks, ChunkExtent and ChunkContent expose the checkpoint table
// generically (one chunk = one validated stream span), so a consumer
// can pipeline ordered sequential reads with parallel decodes.
func (r *Reader) NumChunks() int { return r.eng.NumSpans() }

// ChunkExtent returns the decompressed offset and size of chunk i.
func (r *Reader) ChunkExtent(i int) (off, size int64) { return r.eng.SpanExtent(i) }

// ChunkContent returns the decompressed output of chunk i. The
// returned slice is shared with the engine's cache and must not be
// modified.
func (r *Reader) ChunkContent(i int) ([]byte, error) { return r.eng.SpanContent(i) }

// ReadAt implements io.ReaderAt over the decompressed stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) { return r.eng.ReadAt(p, off) }
