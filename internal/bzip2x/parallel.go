package bzip2x

import (
	"bytes"
	"compress/bzip2"
	"errors"
	"fmt"
	"io"

	"repro/internal/filereader"
	"repro/internal/pool"
	"repro/internal/spanengine"
)

// FormatTag identifies bzip2 checkpoint tables in persisted indexes.
const FormatTag = "bz2 "

// streamMagicLen is the prefix checked by FindStreams: "BZh", a level
// digit, and the first block's 48-bit magic (or the footer magic of an
// empty stream).
const streamMagicLen = 10

// streamMagicAt reports whether b (at least streamMagicLen bytes)
// spells a bzip2 stream header followed by a block or footer magic.
func streamMagicAt(b []byte) bool {
	if b[0] != 'B' || b[1] != 'Z' || b[2] != 'h' {
		return false
	}
	if b[3] < '1' || b[3] > '9' {
		return false
	}
	m := uint64(0)
	for _, c := range b[4:10] {
		m = m<<8 | uint64(c)
	}
	return m == blockMagic || m == footerMagic
}

// FindStreams scans for byte offsets that look like bzip2 stream
// starts. Offset 0 is always included (the caller validates it by
// decompressing). Like the gzip block finder, this may return false
// positives — compressed payload bytes can spell the magic — so the
// caller must be ready to fall back (§3: trial and error).
func FindStreams(data []byte) []int {
	offs := []int{0}
	for i := 1; i+streamMagicLen <= len(data); i++ {
		if streamMagicAt(data[i:]) {
			offs = append(offs, i)
		}
	}
	return offs
}

// findWindow is the chunk size FindStreamsReader scans at a time.
// bzip2 declares nothing, so the magic scan must touch every byte of
// the file either way — the window only bounds how much of it is
// resident at once.
const findWindow = 1 << 20

// FindStreamsReader is FindStreams over a positional reader: the file
// is scanned in findWindow-sized chunks overlapping by
// streamMagicLen-1 bytes, so peak resident source stays one window
// regardless of file size. Memory-backed sources take the zero-copy
// whole-buffer path.
func FindStreamsReader(src filereader.FileReader) ([]int64, error) {
	if data, ok := filereader.Bytes(src); ok {
		ints := FindStreams(data)
		offs := make([]int64, len(ints))
		for i, v := range ints {
			offs[i] = int64(v)
		}
		return offs, nil
	}
	offs := []int64{0}
	size := src.Size()
	buf := make([]byte, findWindow)
	for base := int64(0); base+streamMagicLen <= size; {
		n := int64(len(buf))
		if base+n > size {
			n = size - base
		}
		chunk := buf[:n]
		if rn, err := src.ReadAt(chunk, base); int64(rn) < n {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("%w: bzip2 magic scan at offset %d: %w", filereader.ErrIO, base, err)
		}
		for p := 0; p+streamMagicLen <= len(chunk); p++ {
			if base+int64(p) == 0 {
				continue
			}
			if streamMagicAt(chunk[p:]) {
				offs = append(offs, base+int64(p))
			}
		}
		if base+n == size {
			break
		}
		// Overlap by streamMagicLen-1 so a magic straddling the window
		// boundary is still seen exactly once.
		base += n - (streamMagicLen - 1)
	}
	return offs, nil
}

// Decompress inflates a bzip2 file serially (any block/stream layout),
// delegating to the standard library decoder.
func Decompress(data []byte) ([]byte, error) {
	out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(data)))
	if err != nil {
		return nil, fmt.Errorf("bzip2x: %w", err)
	}
	return out, nil
}

// DecompressParallel inflates a multi-stream bzip2 file with
// stream-level parallelism, the lbzip2 scheme of Table 4: candidate
// stream boundaries come from FindStreams, the spans between
// consecutive candidates decode concurrently on the worker pool, and
// any failure (for example a false-positive boundary splitting a real
// stream) falls back to the serial whole-file path, which is always
// correct.
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	if threads < 1 {
		threads = 1
	}
	offs := FindStreams(data)
	if len(offs) == 1 || threads == 1 {
		return Decompress(data)
	}
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[[]byte], len(offs))
	for i := range offs {
		start := offs[i]
		end := len(data)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		futs[i] = pool.Go(p, func() ([]byte, error) {
			return Decompress(data[start:end])
		})
	}
	var out []byte
	for _, fut := range futs {
		part, err := fut.Wait()
		if err != nil {
			// A span failed: at least one candidate was a false
			// positive. Serial decoding resolves the layout exactly.
			return Decompress(data)
		}
		out = append(out, part...)
	}
	return out, nil
}

// Codec is the bzip2 half of the shared span engine: the sizing pass
// (bzip2 declares no sizes anywhere, so Scan decompresses the whole
// file once, in parallel, merging spans cut short by false-positive
// magics) and the per-span decode.
type Codec struct {
	// Threads parallelizes the sizing pass; values < 1 mean 1.
	Threads int
}

// FormatTag implements spanengine.Codec.
func (Codec) FormatTag() string { return FormatTag }

// sizeSpan decodes the candidate span [start, stop) of src and returns
// only its decompressed length: the compressed extent is read once
// (pooled), the output streamed through io.Copy and never materialized
// — the sizing pass of a file larger than RAM keeps peak memory at
// threads × compressed span size.
func sizeSpan(src filereader.FileReader, start, stop int64) (int64, error) {
	ext, release, err := filereader.Extent(src, start, stop)
	if err != nil {
		return 0, err
	}
	defer release()
	n, err := io.Copy(io.Discard, bzip2.NewReader(bytes.NewReader(ext)))
	if err != nil {
		return 0, fmt.Errorf("bzip2x: %w", err)
	}
	return n, nil
}

// Scan implements spanengine.Codec: candidate stream boundaries come
// from FindStreamsReader (a bounded windowed magic scan), the spans
// between them size-decode in parallel, and any span that fails (a
// false-positive magic splitting a real stream) is merged with its
// successor and retried, which converges on the true stream layout.
// Peak memory stays bounded by the scan window plus threads × span
// extent — only the span sizes are recorded, never the outputs.
func (c Codec) Scan(src filereader.FileReader) (spanengine.ScanResult, error) {
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	cands, err := FindStreamsReader(src)
	if err != nil {
		return spanengine.ScanResult{}, err
	}
	end := func(i int) int64 {
		if i+1 < len(cands) {
			return cands[i+1]
		}
		return src.Size()
	}

	// First guess: every candidate starts a stream. Size all spans
	// concurrently; failures are resolved by merging below.
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[int64], len(cands))
	for i := range cands {
		start, stop := cands[i], end(i)
		futs[i] = pool.Go(p, func() (int64, error) {
			return sizeSpan(src, start, stop)
		})
	}
	firstLen := make([]int64, len(cands))
	firstErr := make([]error, len(cands))
	for i, fut := range futs {
		firstLen[i], firstErr[i] = fut.Wait()
	}

	res := spanengine.ScanResult{SizingDecodes: uint64(len(cands))}
	var decomp int64
	for i := 0; i < len(cands); {
		start := cands[i]
		j := i
		size, err := firstLen[i], firstErr[i]
		for err != nil {
			// Merging only resolves format errors (a false-positive
			// candidate cut a real stream short). A read failure would
			// just recur over ever-larger extents — fail fast instead.
			if errors.Is(err, filereader.ErrIO) {
				return spanengine.ScanResult{}, fmt.Errorf("bzip2x: sizing stream at offset %d: %w", start, err)
			}
			// The span was cut short by a false-positive candidate:
			// extend it over the next candidate and retry.
			j++
			if j >= len(cands) {
				return spanengine.ScanResult{}, fmt.Errorf("bzip2x: stream at offset %d: %w", start, err)
			}
			size, err = sizeSpan(src, start, end(j))
			res.SizingDecodes++
		}
		res.Spans = append(res.Spans, spanengine.Span{
			CompOff:    start,
			CompEnd:    end(j),
			DecompOff:  decomp,
			DecompSize: size,
		})
		decomp += size
		i = j + 1
	}
	return res, nil
}

// DecodeSpan implements spanengine.Codec: one pread of the span's
// compressed extent, decompressed with the stdlib decoder (which
// verifies block CRCs, so span decodes always verify integrity).
func (Codec) DecodeSpan(src filereader.FileReader, s spanengine.Span) ([]byte, error) {
	ext, release, err := filereader.Extent(src, s.CompOff, s.CompEnd)
	if err != nil {
		return nil, err
	}
	defer release()
	out, err := Decompress(ext)
	if err != nil {
		// The span decoded during the sizing pass (or was persisted by
		// one); only data corruption since then can get here.
		return nil, fmt.Errorf("bzip2x: span at offset %d: %w", s.CompOff, err)
	}
	return out, nil
}

// Reader provides checkpointed random access into a bzip2 file — the
// Bzip2BlockFetcher instantiation the paper mentions under Figure 5,
// served by the shared span engine: the checkpoint table comes from
// Codec.Scan (one sizing pass over the whole file) or from a persisted
// index via NewReaderFromCheckpoints (no sizing pass at all), and
// ReadAt re-decodes only the stream spans touched by the request, with
// the engine's LRU cache and prefetcher around it.
//
// All methods are safe for concurrent use.
type Reader struct {
	eng *spanengine.Engine
}

// NewReader validates data and builds the checkpoint table with one
// parallel sizing pass.
func NewReader(data []byte, threads int) (*Reader, error) {
	return NewReaderConfig(filereader.MemoryReader(data), spanengine.Config{Threads: threads})
}

// NewReaderConfig is NewReader with full engine tuning (cache size,
// prefetch depth, strategy), over any positional source — an open file
// serves random access without the compressed bytes ever being
// resident as a whole.
func NewReaderConfig(src filereader.FileReader, cfg spanengine.Config) (*Reader, error) {
	eng, err := spanengine.New(src, Codec{Threads: cfg.Threads}, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng}, nil
}

// NewReaderFromCheckpoints builds a reader from a persisted checkpoint
// table, skipping the sizing pass entirely.
func NewReaderFromCheckpoints(src filereader.FileReader, spans []spanengine.Span, cfg spanengine.Config) (*Reader, error) {
	eng, err := spanengine.NewFromCheckpoints(src, Codec{Threads: cfg.Threads}, spans, 0, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng}, nil
}

// Engine exposes the underlying span engine (stats, checkpoint export).
func (r *Reader) Engine() *spanengine.Engine { return r.eng }

// Close releases the engine's prefetch workers.
func (r *Reader) Close() error { return r.eng.Close() }

// Size returns the total decompressed size (established by the sizing
// pass or the imported table, so this never scans again).
func (r *Reader) Size() int64 { return r.eng.Size() }

// NumStreams returns the number of checkpoints (validated stream
// spans). Files written by pbzip2/lbzip2 — or Compress with a
// StreamSize — have many; single-stream files have one, making every
// ReadAt a whole-file decode.
func (r *Reader) NumStreams() int { return r.eng.NumSpans() }

// NumChunks, ChunkExtent and ChunkContent expose the checkpoint table
// generically (one chunk = one validated stream span), so a consumer
// can pipeline ordered sequential reads with parallel decodes.
func (r *Reader) NumChunks() int { return r.eng.NumSpans() }

// ChunkExtent returns the decompressed offset and size of chunk i.
func (r *Reader) ChunkExtent(i int) (off, size int64) { return r.eng.SpanExtent(i) }

// ChunkContent returns the decompressed output of chunk i. The
// returned slice is shared with the engine's cache and must not be
// modified.
func (r *Reader) ChunkContent(i int) ([]byte, error) { return r.eng.SpanContent(i) }

// ReadAt implements io.ReaderAt over the decompressed stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) { return r.eng.ReadAt(p, off) }
