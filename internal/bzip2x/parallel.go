package bzip2x

import (
	"bytes"
	"compress/bzip2"
	"fmt"
	"io"

	"repro/internal/pool"
)

// streamMagicLen is the prefix checked by FindStreams: "BZh", a level
// digit, and the first block's 48-bit magic (or the footer magic of an
// empty stream).
const streamMagicLen = 10

// FindStreams scans for byte offsets that look like bzip2 stream
// starts. Offset 0 is always included (the caller validates it by
// decompressing). Like the gzip block finder, this may return false
// positives — compressed payload bytes can spell the magic — so the
// caller must be ready to fall back (§3: trial and error).
func FindStreams(data []byte) []int {
	offs := []int{0}
	for i := 1; i+streamMagicLen <= len(data); i++ {
		if data[i] != 'B' || data[i+1] != 'Z' || data[i+2] != 'h' {
			continue
		}
		if data[i+3] < '1' || data[i+3] > '9' {
			continue
		}
		m := uint64(0)
		for _, b := range data[i+4 : i+10] {
			m = m<<8 | uint64(b)
		}
		if m == blockMagic || m == footerMagic {
			offs = append(offs, i)
		}
	}
	return offs
}

// Decompress inflates a bzip2 file serially (any block/stream layout),
// delegating to the standard library decoder.
func Decompress(data []byte) ([]byte, error) {
	out, err := io.ReadAll(bzip2.NewReader(bytes.NewReader(data)))
	if err != nil {
		return nil, fmt.Errorf("bzip2x: %w", err)
	}
	return out, nil
}

// DecompressParallel inflates a multi-stream bzip2 file with
// stream-level parallelism, the lbzip2 scheme of Table 4: candidate
// stream boundaries come from FindStreams, the spans between
// consecutive candidates decode concurrently on the worker pool, and
// any failure (for example a false-positive boundary splitting a real
// stream) falls back to the serial whole-file path, which is always
// correct.
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	if threads < 1 {
		threads = 1
	}
	offs := FindStreams(data)
	if len(offs) == 1 || threads == 1 {
		return Decompress(data)
	}
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[[]byte], len(offs))
	for i := range offs {
		start := offs[i]
		end := len(data)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		futs[i] = pool.Go(p, func() ([]byte, error) {
			return Decompress(data[start:end])
		})
	}
	var out []byte
	for _, fut := range futs {
		part, err := fut.Wait()
		if err != nil {
			// A span failed: at least one candidate was a false
			// positive. Serial decoding resolves the layout exactly.
			return Decompress(data)
		}
		out = append(out, part...)
	}
	return out, nil
}
