package bzip2x

// msbWriter packs bits MSB-first, the bit order of the bzip2 format
// (unlike Deflate, which is LSB-first — see internal/bitio for that
// writer).
type msbWriter struct {
	buf  []byte
	acc  uint64
	nAcc uint // bits currently in acc (always < 8 after flushAcc)
}

// writeBits emits the low n bits of v, most significant first.
func (w *msbWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		take := 8 - w.nAcc
		if take > n {
			take = n
		}
		w.acc = w.acc<<take | (v>>(n-take))&((1<<take)-1)
		w.nAcc += take
		n -= take
		if w.nAcc == 8 {
			w.buf = append(w.buf, byte(w.acc))
			w.acc, w.nAcc = 0, 0
		}
	}
}

// align pads with zero bits to the next byte boundary.
func (w *msbWriter) align() {
	if w.nAcc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nAcc)))
		w.acc, w.nAcc = 0, 0
	}
}

func (w *msbWriter) bytes() []byte { return w.buf }
