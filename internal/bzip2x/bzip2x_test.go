package bzip2x

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/workloads"
)

// stdlibRoundTrip compresses with this package and decompresses with
// the standard library — the ground-truth check for format fidelity.
func stdlibRoundTrip(t *testing.T, data []byte, opts WriterOptions) {
	t.Helper()
	comp, err := Compress(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatalf("stdlib rejected our stream: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestCompressStdlibValidates(t *testing.T) {
	cases := map[string][]byte{
		"empty":   nil,
		"one":     []byte("q"),
		"ascii":   []byte("hello, bzip2 world! hello, bzip2 world!"),
		"zeros":   make([]byte, 100_000),
		"runs":    bytes.Repeat([]byte{'a', 'a', 'a', 'a', 'a', 'a', 'b'}, 5_000),
		"random":  workloads.Random(150_000, 1),
		"base64":  workloads.Base64(150_000, 2),
		"silesia": workloads.SilesiaLike(300_000, 3),
		"fastq":   workloads.FASTQ(150_000, 4),
		"allbytes": func() []byte {
			b := make([]byte, 4096)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
		"periodic": bytes.Repeat([]byte("ab"), 30_000),
		"rle-edge": bytes.Repeat([]byte{'x'}, 259), // 255-run + 4-run boundary
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			stdlibRoundTrip(t, data, WriterOptions{Level: 1})
		})
	}
}

func TestCompressLevels(t *testing.T) {
	data := workloads.SilesiaLike(250_000, 5)
	for level := 1; level <= 9; level++ {
		stdlibRoundTrip(t, data, WriterOptions{Level: level})
	}
	if _, err := Compress(nil, WriterOptions{Level: 10}); err == nil {
		t.Fatal("level 10 accepted")
	}
}

func TestMultiBlockSingleStream(t *testing.T) {
	// Level 1 = 100 kB blocks; 350 kB forces 4+ blocks in one stream.
	data := workloads.Base64(350_000, 6)
	stdlibRoundTrip(t, data, WriterOptions{Level: 1})
}

func TestMultiStream(t *testing.T) {
	data := workloads.SilesiaLike(500_000, 7)
	comp, err := Compress(data, WriterOptions{Level: 1, StreamSize: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	// The standard library must accept the concatenation serially.
	got, err := Decompress(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("multi-stream serial decode failed: %v", err)
	}
	offs := FindStreams(comp)
	if len(offs) != 5 {
		t.Fatalf("found %d stream candidates, want 5", len(offs))
	}
}

func TestDecompressParallelMatchesSerial(t *testing.T) {
	data := workloads.SilesiaLike(600_000, 8)
	comp, err := Compress(data, WriterOptions{Level: 1, StreamSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 8} {
		got, err := DecompressParallel(comp, threads)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("threads=%d: mismatch", threads)
		}
	}
}

func TestParallelFallbackOnFalsePositive(t *testing.T) {
	// Plant a fake stream magic inside a REAL stream's payload region
	// is hard to do deterministically, so emulate the effect: a file
	// with one real stream and candidate offsets injected by prefixing
	// stored magic bytes inside the data itself. The data contains the
	// literal stream prefix, which (if it survives compression
	// literally) could produce a false candidate; either way the
	// parallel path must return correct output.
	payload := append([]byte("BZh1"), []byte{0x31, 0x41, 0x59, 0x26, 0x53, 0x59}...)
	data := append(workloads.Base64(200_000, 9), bytes.Repeat(payload, 100)...)
	comp, err := Compress(data, WriterOptions{Level: 1, StreamSize: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressParallel(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("false-positive handling broke the output")
	}
}

func TestRLE1RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(rle1Decode(rle1Encode(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Run-length edge cases around the 4-byte trigger and 255 cap.
	for _, n := range []int{1, 2, 3, 4, 5, 254, 255, 256, 259, 510, 1000} {
		data := bytes.Repeat([]byte{'z'}, n)
		if got := rle1Decode(rle1Encode(data)); !bytes.Equal(got, data) {
			t.Fatalf("run of %d: got %d bytes back", n, len(got))
		}
	}
}

func TestRLE1SplitPoint(t *testing.T) {
	data := bytes.Repeat([]byte{'a', 'b', 'c'}, 1000)
	p := rle1SplitPoint(data, 100)
	if p == 0 || p > 100 {
		t.Fatalf("split point %d", p)
	}
	if got := len(rle1Encode(data[:p])); got > 100 {
		t.Fatalf("prefix encodes to %d > limit", got)
	}
	if p2 := rle1SplitPoint(data, 1<<20); p2 != len(data) {
		t.Fatalf("unbounded split %d, want %d", p2, len(data))
	}
}

func TestBWTRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		last, ptr := bwt(data)
		return bytes.Equal(bwtInverse(last, ptr), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"banana":   []byte("banana"),
		"periodic": bytes.Repeat([]byte("ab"), 500),
		"zeros":    make([]byte, 2000),
		"single":   {42},
	} {
		last, ptr := bwt(data)
		if got := bwtInverse(last, ptr); !bytes.Equal(got, data) {
			t.Fatalf("%s: inverse mismatch", name)
		}
	}
}

func TestBWTKnownVector(t *testing.T) {
	// The classic example: BWT("banana") = "nnbaaa", row 3 (rotations
	// sorted: abanan, anaban, ananab, banana, nabana, nanaba).
	last, ptr := bwt([]byte("banana"))
	if string(last) != "nnbaaa" || ptr != 3 {
		t.Fatalf("bwt(banana) = %q, %d", last, ptr)
	}
}

func TestMSBWriter(t *testing.T) {
	w := &msbWriter{}
	w.writeBits(0b1, 1)
	w.writeBits(0b0110, 4)
	w.writeBits(0b101, 3)
	// 1 0110 101 -> 0xB5
	w.writeBits(0xABCD, 16)
	w.writeBits(0x3, 2)
	w.align()
	want := []byte{0xB5, 0xAB, 0xCD, 0xC0}
	if !bytes.Equal(w.bytes(), want) {
		t.Fatalf("got %x want %x", w.bytes(), want)
	}
}

func TestBlockCRCAgainstReference(t *testing.T) {
	// bzip2's CRC is the bit-reversed IEEE CRC-32: checking a known
	// property — CRC of empty data is 0 after the final inversion of
	// an all-ones register... simply pin the implementation with a
	// reference value computed from the bzlib algorithm definition.
	if got := blockCRC(nil); got != 0 {
		// ^(^0) == 0
		t.Fatalf("blockCRC(nil) = %#x", got)
	}
	// Distinctness and order sensitivity.
	a := blockCRC([]byte("abc"))
	b := blockCRC([]byte("acb"))
	if a == b || a == 0 {
		t.Fatalf("weak CRC: %#x %#x", a, b)
	}
}

func TestCompressionRatioReasonable(t *testing.T) {
	data := workloads.SilesiaLike(400_000, 10)
	comp, err := Compress(data, WriterOptions{Level: 9})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(data)) / float64(len(comp))
	// Paper Table 4: bzip2 ratio 3.88 on Silesia. Our single-table
	// Huffman coding loses some density; accept >= 2.
	if ratio < 2 {
		t.Fatalf("bzip2 ratio %.2f too weak", ratio)
	}
	t.Logf("bzip2x ratio on silesia-like: %.2f", ratio)
}

func TestCompressedPayloadProperty(t *testing.T) {
	// Arbitrary bytes must survive compress -> stdlib decompress.
	f := func(data []byte) bool {
		comp, err := Compress(data, WriterOptions{Level: 1})
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderReadAt(t *testing.T) {
	data := workloads.SilesiaLike(500_000, 21)
	comp, err := Compress(data, WriterOptions{Level: 1, StreamSize: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(data))
	}
	if r.NumStreams() != 5 {
		t.Fatalf("NumStreams = %d, want 5", r.NumStreams())
	}
	offs := []int64{0, 1, 99_999, 100_000, 100_001, 333_333, int64(len(data)) - 1}
	for _, off := range offs {
		buf := make([]byte, 4096)
		n, err := r.ReadAt(buf, off)
		want := len(data) - int(off)
		if want > len(buf) {
			want = len(buf)
		}
		if n != want || (err != nil && err != io.EOF) {
			t.Fatalf("ReadAt(%d): n=%d err=%v, want n=%d", off, n, err, want)
		}
		if !bytes.Equal(buf[:n], data[off:int(off)+n]) {
			t.Fatalf("ReadAt(%d): content mismatch", off)
		}
	}
	if _, err := r.ReadAt(make([]byte, 1), r.Size()); err != io.EOF {
		t.Fatalf("ReadAt(EOF) err = %v, want io.EOF", err)
	}
}

func TestReaderSingleStream(t *testing.T) {
	data := workloads.Base64(200_000, 22)
	comp, err := Compress(data, WriterOptions{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumStreams() != 1 {
		t.Fatalf("NumStreams = %d, want 1", r.NumStreams())
	}
	buf := make([]byte, 1000)
	if _, err := r.ReadAt(buf, 150_000); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[150_000:151_000]) {
		t.Fatal("single-stream ReadAt mismatch")
	}
}

func TestReaderConcurrentReadAt(t *testing.T) {
	data := workloads.FASTQ(400_000, 23)
	comp, err := Compress(data, WriterOptions{Level: 1, StreamSize: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			buf := make([]byte, 2048)
			for i := 0; i < 30; i++ {
				off := rnd.Int63n(int64(len(data)))
				n, err := r.ReadAt(buf, off)
				if err != nil && err != io.EOF {
					t.Errorf("ReadAt(%d): %v", off, err)
					return
				}
				if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
					t.Errorf("ReadAt(%d): mismatch", off)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestReaderRejectsCorrupt(t *testing.T) {
	data := workloads.Base64(100_000, 24)
	comp, err := Compress(data, WriterOptions{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	comp[len(comp)/2] ^= 0xFF
	if _, err := NewReader(comp, 2); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
