package bzip2x

// mtfRLE2 performs bzip2's second pipeline stage on the BWT output:
// move-to-front over the block's used-symbol alphabet, with zero runs
// encoded in bijective base 2 over the RUNA/RUNB symbols, terminated by
// the EOB symbol.
//
// The output alphabet is: 0 = RUNA, 1 = RUNB, v+1 for MTF value
// v in 1..len(used)-1, and EOB = len(used)+1.
func mtfRLE2(bwtOut []byte, used []byte) []uint16 {
	eob := uint16(len(used) + 1)
	out := make([]uint16, 0, len(bwtOut)/2+8)

	mtf := make([]byte, len(used))
	copy(mtf, used)
	pos := make([]int, 256) // current MTF position of each byte value
	for i, b := range mtf {
		pos[b] = i
	}

	zeroRun := 0
	flushRun := func() {
		// Bijective base 2: n = sum of (digit_i + 1) * 2^i with RUNA
		// encoding digit 0 and RUNB digit 1 (matches the decoder's
		// repeat += repeatPower << v accumulation).
		n := zeroRun
		for n > 0 {
			n--
			out = append(out, uint16(n&1))
			n >>= 1
		}
		zeroRun = 0
	}

	for _, b := range bwtOut {
		p := pos[b]
		if p == 0 {
			zeroRun++
			continue
		}
		flushRun()
		// Move b to the front.
		for i := p; i > 0; i-- {
			mtf[i] = mtf[i-1]
			pos[mtf[i]] = i
		}
		mtf[0] = b
		pos[b] = 0
		out = append(out, uint16(p)+1)
	}
	flushRun()
	return append(out, eob)
}

// usedBytes returns the sorted distinct byte values of s.
func usedBytes(s []byte) []byte {
	var present [256]bool
	for _, b := range s {
		present[b] = true
	}
	var used []byte
	for v := 0; v < 256; v++ {
		if present[v] {
			used = append(used, byte(v))
		}
	}
	return used
}
