package bzip2x

import (
	"fmt"

	"repro/internal/huffman"
)

// bzip2 bit-stream magics.
const (
	blockMagic  = 0x314159265359 // 48 bits: BCD pi
	footerMagic = 0x177245385090 // 48 bits: BCD sqrt(pi)
	maxCodeLen  = 20
	groupSize   = 50 // symbols per Huffman table selector
)

// encodeBlock emits one compressed block for the pre-RLE1 bytes `raw`
// and returns its CRC. The caller guarantees the post-RLE1 length fits
// the stream's block size.
func encodeBlock(w *msbWriter, raw []byte) (uint32, error) {
	crc := blockCRC(raw)
	data := rle1Encode(raw)
	last, origPtr := bwt(data)
	used := usedBytes(data)
	syms := mtfRLE2(last, used)
	alpha := len(used) + 2

	w.writeBits(blockMagic, 48)
	w.writeBits(uint64(crc), 32)
	w.writeBits(0, 1) // randomized: deprecated, always 0
	w.writeBits(uint64(origPtr), 24)

	// Symbol map: 16-bit used-group bitmap, then 16 bits per used group.
	var groups uint64
	var groupBits [16]uint64
	for _, b := range used {
		groups |= 1 << (15 - b/16)
		groupBits[b/16] |= 1 << (15 - b%16)
	}
	w.writeBits(groups, 16)
	for g := 0; g < 16; g++ {
		if groups&(1<<(15-g)) != 0 {
			w.writeBits(groupBits[g], 16)
		}
	}

	// Huffman coding. The format demands 2..6 tables; table 0 is built
	// from the real frequencies, table 1 is a flat fallback, and every
	// selector picks table 0.
	freqs := make([]int, alpha)
	for i := range freqs {
		freqs[i] = 1 // every alphabet symbol needs a code
	}
	for _, s := range syms {
		freqs[s]++
	}
	lengths0, err := huffman.BuildLengths(freqs, maxCodeLen)
	if err != nil {
		return 0, fmt.Errorf("bzip2x: %w", err)
	}
	lengths1 := flatLengths(alpha)
	codes0 := canonicalCodes(lengths0)

	nSelectors := (len(syms) + groupSize - 1) / groupSize
	w.writeBits(2, 3)                   // nGroups
	w.writeBits(uint64(nSelectors), 15) // nSelectors
	for i := 0; i < nSelectors; i++ {
		w.writeBits(0, 1) // MTF-unary for table 0: a single 0 bit
	}
	writeDeltaLengths(w, lengths0)
	writeDeltaLengths(w, lengths1)

	for _, s := range syms {
		w.writeBits(uint64(codes0[s]), uint(lengths0[s]))
	}
	return crc, nil
}

// flatLengths returns a valid complete code of near-uniform lengths for
// an alphabet of n >= 2 symbols (the dummy second table).
func flatLengths(n int) []uint8 {
	lengths := make([]uint8, n)
	bits := uint8(1)
	for 1<<bits < n {
		bits++
	}
	// A complete code: the first 2^bits - n codes get bits-1 bits... but
	// simpler and always valid: give everything `bits` bits and shorten
	// the leading symbols until the Kraft sum reaches exactly 1.
	for i := range lengths {
		lengths[i] = bits
	}
	// Kraft deficit in units of 2^-bits.
	deficit := (1 << bits) - n
	for i := 0; deficit > 0 && i < n; i++ {
		// Promoting one symbol from `bits` to `bits-1` absorbs one unit.
		lengths[i] = bits - 1
		deficit--
	}
	return lengths
}

// canonicalCodes assigns canonical MSB-first codes in (length, symbol)
// order — the assignment the bzip2 format prescribes.
func canonicalCodes(lengths []uint8) []uint32 {
	maxLen := uint8(0)
	minLen := uint8(255)
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
		if l < minLen {
			minLen = l
		}
	}
	codes := make([]uint32, len(lengths))
	code := uint32(0)
	for l := minLen; l <= maxLen; l++ {
		for sym, sl := range lengths {
			if sl == l {
				codes[sym] = code
				code++
			}
		}
		code <<= 1
	}
	return codes
}

// writeDeltaLengths emits one Huffman table in the format's
// delta-encoded form: 5 bits of starting length, then {1,0} for +1,
// {1,1} for -1, and 0 to move to the next symbol.
func writeDeltaLengths(w *msbWriter, lengths []uint8) {
	cur := int(lengths[0])
	w.writeBits(uint64(cur), 5)
	for _, l := range lengths {
		for cur < int(l) {
			w.writeBits(0b10, 2)
			cur++
		}
		for cur > int(l) {
			w.writeBits(0b11, 2)
			cur--
		}
		w.writeBits(0, 1)
	}
}
