package workloads

// SilesiaLike builds a TAR archive of mixed synthetic files emulating
// the Silesia corpus's composition (English prose, XML, database rows,
// binary/executable-like data, highly repetitive records, and noisy
// samples). The mixture is tuned so that gzip -6 lands near Silesia's
// compression ratio of ~3 and — crucially for Figure 10 — back-
// references occur densely enough that first-stage markers survive past
// 32 KiB, keeping the serial window-propagation term alive.
func SilesiaLike(n int, seed uint64) []byte {
	r := newRNG(seed)
	var tw tarBuilder
	kinds := []struct {
		name string
		gen  func(*rng, int) []byte
	}{
		{"dickens.txt", markovText},
		{"webster.xml", xmlData},
		{"osdb.bin", databaseRows},
		{"mozilla.bin", executableLike},
		{"nci.dat", repetitiveRecords},
		{"x-ray.raw", noisySamples},
	}
	// Target per-file sizes proportional to remaining space.
	part := 0
	for tw.size() < n {
		k := kinds[part%len(kinds)]
		remaining := n - tw.size()
		size := remaining / 3
		if size < 16<<10 {
			size = remaining
		}
		if size > 2<<20 {
			size = 2 << 20
		}
		name := k.name
		if part >= len(kinds) {
			name = fileSuffix(name, part/len(kinds))
		}
		tw.addFile("silesia/"+name, k.gen(r, size))
		part++
	}
	out := tw.finish()
	if len(out) > n {
		// TAR framing overshoots slightly; trim to the requested size at
		// a 512 boundary so the archive stays parseable minus the tail.
		return out[:n]
	}
	return out
}

func fileSuffix(name string, i int) string {
	return name + "." + string(rune('0'+i%10))
}

// --- content generators -------------------------------------------------

var wordList = []string{
	"the", "of", "and", "a", "to", "in", "he", "have", "it", "that",
	"for", "they", "with", "as", "not", "on", "she", "at", "by", "this",
	"we", "you", "do", "but", "from", "or", "which", "one", "would",
	"all", "will", "there", "say", "who", "make", "when", "can", "more",
	"if", "no", "man", "out", "other", "so", "what", "time", "up", "go",
	"about", "than", "into", "could", "state", "only", "new", "year",
	"some", "take", "come", "these", "know", "see", "use", "get",
	"like", "then", "first", "any", "work", "now", "may", "such",
	"give", "over", "think", "most", "even", "find", "day", "also",
	"after", "way", "many", "must", "look", "before", "great", "back",
	"through", "long", "where", "much", "should", "well", "people",
	"down", "own", "just", "because", "good", "each", "those", "feel",
	"seem", "how", "high", "too", "place", "little", "world", "very",
	"still", "nation", "hand", "old", "life", "tell", "write",
	"become", "here", "show", "house", "both", "between", "need",
	"mean", "call", "develop", "under", "last", "right", "move",
	"thing", "general", "school", "never", "same", "another", "begin",
	"while", "number", "part", "turn", "real", "leave", "might",
	"want", "point", "form", "off", "child", "few", "small", "since",
	"against", "ask", "late", "home", "interest", "large", "person",
	"end", "open", "public", "follow", "during", "present", "without",
	"again", "hold", "govern", "around", "possible", "head", "consider",
	"word", "program", "problem", "however", "lead", "system", "set",
	"order", "eye", "plan", "run", "keep", "face", "fact", "group",
	"play", "stand", "increase", "early", "course", "change", "help",
	"line",
}

// markovText emits English-like prose with Zipf-distributed words,
// sentences and paragraphs — dense short- and mid-range duplicates
// like Silesia's dickens.
func markovText(r *rng, n int) []byte {
	out := make([]byte, 0, n+64)
	sentenceLen := 0
	capitalize := true
	for len(out) < n {
		// Zipf-ish: prefer low word indexes.
		idx := r.intn(len(wordList))
		idx = idx * (r.intn(len(wordList)) + 1) / len(wordList)
		w := wordList[idx]
		if capitalize {
			out = append(out, w[0]-'a'+'A')
			out = append(out, w[1:]...)
			capitalize = false
		} else {
			out = append(out, w...)
		}
		sentenceLen++
		if sentenceLen > 6 && r.intn(10) == 0 {
			out = append(out, '.')
			sentenceLen = 0
			capitalize = true
			if r.intn(6) == 0 {
				out = append(out, '\n', '\n')
				continue
			}
		} else if r.intn(14) == 0 {
			out = append(out, ',')
		}
		out = append(out, ' ')
	}
	return out[:n]
}

// xmlData emits nested markup with heavily repeated tags/attributes,
// like Silesia's webster/xml entries.
func xmlData(r *rng, n int) []byte {
	out := make([]byte, 0, n+256)
	out = append(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<dictionary>\n"...)
	id := 0
	for len(out) < n {
		id++
		out = append(out, "  <entry id=\""...)
		out = appendInt(out, id)
		out = append(out, "\" type=\"noun\" lang=\"en\">\n    <headword>"...)
		out = append(out, wordList[r.intn(len(wordList))]...)
		out = append(out, "</headword>\n    <definition>"...)
		for i, k := 0, 3+r.intn(10); i < k; i++ {
			out = append(out, wordList[r.intn(len(wordList))]...)
			out = append(out, ' ')
		}
		out = append(out, "</definition>\n  </entry>\n"...)
	}
	out = append(out, "</dictionary>\n"...)
	return out[:n]
}

// databaseRows emits fixed-width records with low-cardinality columns,
// like Silesia's osdb sample database.
func databaseRows(r *rng, n int) []byte {
	out := make([]byte, 0, n+128)
	cities := []string{"Dresden ", "Orlando ", "Gliwice ", "Tsukuba ", "Lyon    "}
	for len(out) < n {
		var rec [64]byte
		binary := rec[:]
		putU64(binary[0:], uint64(len(out)))
		putU64(binary[8:], r.next()%1000)
		copy(binary[16:], cities[r.intn(len(cities))])
		copy(binary[24:], "ACTIVE  ")
		putU64(binary[32:], uint64(r.intn(100)))
		putU64(binary[40:], 0xDEADBEEF)
		copy(binary[48:], "2023-06-1")
		binary[57] = byte('0' + r.intn(10))
		binary[58] = '\n'
		out = append(out, rec[:]...)
	}
	return out[:n]
}

func putU64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

// executableLike mixes repeated instruction-like byte patterns with
// embedded strings and random sections, like mozilla.
func executableLike(r *rng, n int) []byte {
	out := make([]byte, 0, n+64)
	patterns := [][]byte{
		{0x55, 0x48, 0x89, 0xE5},
		{0x48, 0x83, 0xEC, 0x20},
		{0xE8, 0x00, 0x00, 0x00, 0x00},
		{0x48, 0x8B, 0x45, 0xF8},
		{0xC3, 0x90, 0x90, 0x90},
	}
	for len(out) < n {
		switch r.intn(10) {
		case 0: // random data section
			k := 64 + r.intn(512)
			for i := 0; i < k; i += 8 {
				var tmp [8]byte
				putU64(tmp[:], r.next())
				out = append(out, tmp[:]...)
			}
		case 1: // embedded string table
			for i := 0; i < 8; i++ {
				out = append(out, "lib"...)
				out = append(out, wordList[r.intn(64)]...)
				out = append(out, ".so\x00"...)
			}
		default: // instruction stream
			for i := 0; i < 32; i++ {
				out = append(out, patterns[r.intn(len(patterns))]...)
				out = append(out, byte(r.intn(16)))
			}
		}
	}
	return out[:n]
}

// repetitiveRecords emits extremely redundant line-oriented data like
// Silesia's nci (chemical database) — compresses >10x.
func repetitiveRecords(r *rng, n int) []byte {
	out := make([]byte, 0, n+128)
	for len(out) < n {
		mol := r.intn(100000)
		out = append(out, "  -OEChem-0"...)
		out = appendInt(out, mol)
		out = append(out, "\n  7  6  0     0  0  0  0  0  0999 V2000\n"...)
		for i := 0; i < 7; i++ {
			out = append(out, "    0.0000    0.0000    0.0000 C   0  0  0  0  0\n"...)
		}
		out = append(out, "M  END\n$$$$\n"...)
	}
	return out[:n]
}

// noisySamples emits 12-bit-ish sensor samples with smooth drift, like
// x-ray: mildly compressible binary.
func noisySamples(r *rng, n int) []byte {
	out := make([]byte, 0, n+2)
	level := 2048
	for len(out) < n {
		level += r.intn(65) - 32
		if level < 0 {
			level = 0
		}
		if level > 4095 {
			level = 4095
		}
		out = append(out, byte(level), byte(level>>8))
	}
	return out[:n]
}

// --- minimal TAR builder --------------------------------------------------

// tarBuilder writes a POSIX ustar archive; implemented here (rather
// than archive/tar) so examples can show raw offsets and because the
// generated archives must be byte-deterministic.
type tarBuilder struct {
	buf []byte
}

func (t *tarBuilder) size() int { return len(t.buf) }

func (t *tarBuilder) addFile(name string, content []byte) {
	var hdr [512]byte
	copy(hdr[0:100], name)
	copy(hdr[100:108], "0000644\x00")
	copy(hdr[108:116], "0000000\x00")
	copy(hdr[116:124], "0000000\x00")
	octal(hdr[124:136], uint64(len(content)))
	copy(hdr[136:148], "14000000000\x00") // mtime
	copy(hdr[148:156], "        ")        // checksum placeholder
	hdr[156] = '0'
	copy(hdr[257:263], "ustar\x00")
	copy(hdr[263:265], "00")
	sum := 0
	for _, b := range hdr {
		sum += int(b)
	}
	octal(hdr[148:155], uint64(sum))
	hdr[155] = 0
	t.buf = append(t.buf, hdr[:]...)
	t.buf = append(t.buf, content...)
	if pad := (512 - len(content)%512) % 512; pad > 0 {
		t.buf = append(t.buf, make([]byte, pad)...)
	}
}

func (t *tarBuilder) finish() []byte {
	t.buf = append(t.buf, make([]byte, 1024)...) // two zero blocks
	return t.buf
}

func octal(dst []byte, v uint64) {
	for i := len(dst) - 2; i >= 0; i-- {
		dst[i] = byte('0' + v&7)
		v >>= 3
	}
	dst[len(dst)-1] = 0
}
