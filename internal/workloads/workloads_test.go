package workloads

import (
	"archive/tar"
	"bytes"
	"compress/flate"
	"io"
	"testing"
)

// ratio compresses data with stdlib flate level 6 and returns the
// compression ratio (uncompressed / compressed).
func ratio(t *testing.T, data []byte) float64 {
	t.Helper()
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, 6)
	w.Write(data)
	w.Close()
	return float64(len(data)) / float64(buf.Len())
}

func TestDeterminism(t *testing.T) {
	gens := map[string]func(int, uint64) []byte{
		"random": Random, "base64": Base64, "fastq": FASTQ, "silesia": SilesiaLike,
	}
	for name, gen := range gens {
		a := gen(100_000, 42)
		b := gen(100_000, 42)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: not deterministic", name)
		}
		c := gen(100_000, 43)
		if bytes.Equal(a, c) {
			t.Fatalf("%s: seed has no effect", name)
		}
		if len(a) != 100_000 {
			t.Fatalf("%s: length %d, want 100000", name, len(a))
		}
	}
}

func TestBase64Properties(t *testing.T) {
	data := Base64(500_000, 1)
	for i, b := range data {
		if b != '\n' && !bytes.ContainsRune([]byte(base64Alphabet), rune(b)) {
			t.Fatalf("byte %d = %q outside the base64 alphabet", i, b)
		}
	}
	// Paper §4.4: base64-encoded random data compresses ~1.315x, mostly
	// via Huffman coding; accept a generous band.
	r := ratio(t, data)
	if r < 1.15 || r > 1.6 {
		t.Fatalf("base64 ratio %.3f outside [1.15, 1.6]", r)
	}
	// pugz-compatible content (9..126).
	for _, b := range data {
		if b != '\n' && (b < 9 || b > 126) {
			t.Fatalf("byte %q outside pugz range", b)
		}
	}
}

func TestRandomIsIncompressible(t *testing.T) {
	if r := ratio(t, Random(500_000, 2)); r > 1.01 {
		t.Fatalf("random data compressed %.3fx", r)
	}
}

func TestFASTQProperties(t *testing.T) {
	data := FASTQ(400_000, 3)
	// Structure: records of 4 lines starting with '@'.
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines) < 16 {
		t.Fatal("too few lines")
	}
	if lines[0][0] != '@' {
		t.Fatalf("first line %q does not start with @", lines[0])
	}
	if lines[2][0] != '+' {
		t.Fatalf("third line %q does not start with +", lines[2])
	}
	for _, b := range lines[1] {
		if b != 'A' && b != 'C' && b != 'G' && b != 'T' && b != 'N' {
			t.Fatalf("sequence line contains %q", b)
		}
	}
	// Paper §4.6: FASTQ compresses ~3.74x with pigz defaults.
	r := ratio(t, data)
	if r < 2.5 || r > 5.5 {
		t.Fatalf("fastq ratio %.3f outside [2.5, 5.5]", r)
	}
}

func TestSilesiaLikeProperties(t *testing.T) {
	data := SilesiaLike(2_000_000, 4)
	// Must be a valid TAR archive with multiple files of mixed kinds.
	tr := tar.NewReader(bytes.NewReader(data))
	files := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// The generator truncates the tail to hit the exact size; a
			// partial trailing entry is acceptable.
			break
		}
		files++
		io.Copy(io.Discard, tr)
		_ = hdr
	}
	if files < 3 {
		t.Fatalf("only %d tar entries", files)
	}
	// Paper §4.5: Silesia compresses ~3.1x.
	r := ratio(t, data)
	if r < 2.2 || r > 4.5 {
		t.Fatalf("silesia-like ratio %.3f outside [2.2, 4.5]", r)
	}
}

func TestSilesiaLikeHasLongRangeMatches(t *testing.T) {
	// The property that throttles Figure 10 scaling: back-references
	// persist beyond 32 KiB, so two-stage chunks keep markers. Proxy
	// check: compressing with a full window beats a dictionary-reset
	// compressor by a clear margin.
	data := SilesiaLike(1_500_000, 5)
	full := ratio(t, data)

	var reset bytes.Buffer
	const piece = 16 << 10
	for off := 0; off < len(data); off += piece {
		end := off + piece
		if end > len(data) {
			end = len(data)
		}
		w, _ := flate.NewWriter(&reset, 6)
		w.Write(data[off:end])
		w.Close()
	}
	resetRatio := float64(len(data)) / float64(reset.Len())
	if full < resetRatio*1.05 {
		t.Fatalf("full-window ratio %.3f barely beats reset ratio %.3f: no long-range matches", full, resetRatio)
	}
}

func TestTinySizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100} {
		for _, gen := range []func(int, uint64) []byte{Random, Base64, FASTQ} {
			if got := len(gen(n, 1)); got != n {
				t.Fatalf("size %d: got %d bytes", n, got)
			}
		}
	}
}
