// Package workloads generates the deterministic synthetic datasets used
// to reproduce the paper's evaluation:
//
//   - Base64: base64-encoded random data, the §4.4 workload — uniform
//     compression ratio ~1.3, nearly no back-references, so two-stage
//     decoding falls back to single-stage quickly.
//   - FASTQ: synthetic sequencing reads, the §4.6 workload — repetitive
//     record framing with incompressible payloads, ratio ~3.5.
//   - SilesiaLike: a real TAR archive of mixed synthetic files standing
//     in for the Silesia corpus (§4.5) — ratio ~3 with dense long-range
//     back-references, which keeps markers alive across chunks and
//     exposes the Amdahl window-propagation bottleneck.
//   - Random: incompressible bytes (stored-block handling).
//
// All generators are deterministic in (size, seed).
package workloads

import "encoding/binary"

// rng is a splitmix64 generator — tiny, fast, deterministic across
// platforms and Go versions (unlike math/rand's global behaviours).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// Random returns n incompressible bytes.
func Random(n int, seed uint64) []byte {
	out := make([]byte, n)
	r := newRNG(seed)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(out[i:], r.next())
	}
	for ; i < n; i++ {
		out[i] = byte(r.next())
	}
	return out
}

const base64Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

// Base64 returns n bytes of base64-encoded random data wrapped at 76
// columns, like `base64 /dev/urandom` (paper §4.4).
func Base64(n int, seed uint64) []byte {
	out := make([]byte, n)
	r := newRNG(seed)
	for i := range out {
		if i%77 == 76 {
			out[i] = '\n'
			continue
		}
		out[i] = base64Alphabet[r.intn(64)]
	}
	return out
}

// FASTQ returns about n bytes of synthetic sequencing records
// (paper §4.6). Record structure follows the Illumina convention:
// @instrument:run:flowcell:lane:tile:x:y, bases, '+', qualities.
func FASTQ(n int, seed uint64) []byte {
	r := newRNG(seed)
	out := make([]byte, 0, n+512)
	bases := []byte("ACGT")
	read := make([]byte, 100)
	qual := make([]byte, 100)
	tile := 1101
	x, y := 1000, 1000
	for len(out) < n {
		x += r.intn(200)
		if x > 30000 {
			x = 1000 + r.intn(100)
			y += r.intn(300)
		}
		if y > 30000 {
			y = 1000
			tile++
		}
		out = append(out, "@SIM001:42:FCX42:1:"...)
		out = appendInt(out, tile)
		out = append(out, ':')
		out = appendInt(out, x)
		out = append(out, ':')
		out = appendInt(out, y)
		out = append(out, " 1:N:0:ATCCGA\n"...)
		for i := range read {
			read[i] = bases[r.intn(4)]
		}
		out = append(out, read...)
		out = append(out, "\n+\n"...)
		q := 38
		for i := range qual {
			q += r.intn(5) - 2
			if q > 40 {
				q = 40
			}
			if q < 2 {
				q = 2
			}
			qual[i] = byte('!' + q)
		}
		out = append(out, qual...)
		out = append(out, '\n')
	}
	return out[:n]
}

func appendInt(dst []byte, v int) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}
