package workloads

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/crc32x"
	"repro/internal/xxhash"
)

// SparsePlan describes a synthetic sparse archive written by one of
// the WriteSparse* generators (LZ4, zstd, gzip, BGZF): a multi-
// gigabyte-shaped compressed
// file whose all-zero block payloads are filesystem holes, so the
// on-disk allocation stays megabytes while the logical file (and its
// decompressed content) can exceed RAM. The plan carries everything a
// test needs to verify decoded bytes without materializing the content.
type SparsePlan struct {
	// ContentSize is the total decompressed size.
	ContentSize int64
	// FrameContent is the decompressed bytes per frame (the last frame
	// may be shorter).
	FrameContent int64
	// NumFrames counts the frames written.
	NumFrames int
	// CompressedSize is the logical size of the written file.
	CompressedSize int64
	// DataFrames maps a frame index to the seed of its deterministic
	// random payload; every frame not present decodes to zeros (and
	// was written as a hole).
	DataFrames map[int]uint64
}

// ExpectedAt regenerates the decompressed bytes [off, off+n) from the
// plan — zeros for hole frames, seeded random payloads for data frames.
func (p *SparsePlan) ExpectedAt(off int64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		pos := off + int64(i)
		if pos >= p.ContentSize {
			break
		}
		fi := int(pos / p.FrameContent)
		fStart := int64(fi) * p.FrameContent
		fLen := p.FrameContent
		if fStart+fLen > p.ContentSize {
			fLen = p.ContentSize - fStart
		}
		within := pos - fStart
		chunk := int64(n - i)
		if chunk > fLen-within {
			chunk = fLen - within
		}
		if seed, ok := p.DataFrames[fi]; ok {
			payload := Random(int(fLen), seed)
			copy(out[i:], payload[within:within+chunk])
		}
		i += int(chunk)
	}
	return out
}

// frameSeed derives a per-frame payload seed deterministically.
func frameSeed(seed uint64, frame int) uint64 {
	return seed ^ (uint64(frame)+1)*0x9E3779B97F4A7C15
}

// planFrames validates the geometry and returns the shared plan shell.
func planFrames(contentSize, frameContent int64, dataFrames []int) (*SparsePlan, error) {
	if contentSize <= 0 || frameContent <= 0 {
		return nil, fmt.Errorf("workloads: non-positive sparse archive geometry (%d/%d)", contentSize, frameContent)
	}
	n := int((contentSize + frameContent - 1) / frameContent)
	p := &SparsePlan{
		ContentSize:  contentSize,
		FrameContent: frameContent,
		NumFrames:    n,
		DataFrames:   map[int]uint64{},
	}
	for _, fi := range dataFrames {
		if fi < 0 || fi >= n {
			return nil, fmt.Errorf("workloads: data frame %d out of range [0,%d)", fi, n)
		}
		p.DataFrames[fi] = 0 // seeds filled by the writer
	}
	return p, nil
}

// WriteSparseLZ4 writes a synthetic multi-frame LZ4 archive of
// contentSize decompressed bytes to f: every frame declares its content
// size and consists of stored (uncompressed) blocks of blockSize bytes,
// so a frame's compressed extent equals its content plus a few header
// bytes. Frames listed in dataFrames carry seeded random payloads;
// every other frame's payload is all zeros and is written as a hole
// (only the 4-byte block headers land on disk). No checksums are
// written — holes would have to be read back to hash them.
//
// The result parses with the package's own scanner and any compliant
// LZ4 frame decoder; generation cost scales with headers plus data
// frames, not with contentSize.
func WriteSparseLZ4(f *os.File, contentSize, frameContent int64, blockSize int, seed uint64, dataFrames []int) (*SparsePlan, error) {
	p, err := planFrames(contentSize, frameContent, dataFrames)
	if err != nil {
		return nil, err
	}
	if blockSize <= 0 || int64(blockSize) > frameContent || blockSize > 4<<20 {
		return nil, fmt.Errorf("workloads: bad LZ4 block size %d", blockSize)
	}
	var bd byte
	switch {
	case blockSize <= 64<<10:
		bd = 4 << 4
	case blockSize <= 256<<10:
		bd = 5 << 4
	case blockSize <= 1<<20:
		bd = 6 << 4
	default:
		bd = 7 << 4
	}
	const flg = 0x40 | 0x20 | 0x08 // version 01, block-independent, content size
	var pos int64
	for fi := 0; fi < p.NumFrames; fi++ {
		cl := frameContent
		if int64(fi)*frameContent+cl > contentSize {
			cl = contentSize - int64(fi)*frameContent
		}
		var payload []byte
		if _, ok := p.DataFrames[fi]; ok {
			s := frameSeed(seed, fi)
			p.DataFrames[fi] = s
			payload = Random(int(cl), s)
		}
		hdr := binary.LittleEndian.AppendUint32(nil, 0x184D2204)
		desc := append([]byte{flg, bd}, binary.LittleEndian.AppendUint64(nil, uint64(cl))...)
		hdr = append(hdr, desc...)
		hdr = append(hdr, byte(xxhash.Sum32(desc, 0)>>8)) // HC
		if _, err := f.WriteAt(hdr, pos); err != nil {
			return nil, err
		}
		pos += int64(len(hdr))
		for off := int64(0); off < cl; off += int64(blockSize) {
			bs := int64(blockSize)
			if off+bs > cl {
				bs = cl - off
			}
			bh := binary.LittleEndian.AppendUint32(nil, uint32(bs)|1<<31) // stored
			if _, err := f.WriteAt(bh, pos); err != nil {
				return nil, err
			}
			pos += 4
			if payload != nil {
				if _, err := f.WriteAt(payload[off:off+bs], pos); err != nil {
					return nil, err
				}
			}
			pos += bs // hole when payload is nil
		}
		if _, err := f.WriteAt([]byte{0, 0, 0, 0}, pos); err != nil { // EndMark
			return nil, err
		}
		pos += 4
	}
	p.CompressedSize = pos
	return p, f.Truncate(pos)
}

// zeroCRC returns the CRC32 (IEEE) of n zero bytes in O(log n) via
// GF(2) combine doubling — hole members need correct footers without
// reading the hole back.
func zeroCRC(n int64) uint32 {
	var crc uint32
	blockCRC := crc32x.Checksum([]byte{0})
	blockLen := int64(1)
	for n > 0 {
		if n&1 == 1 {
			crc = crc32x.Combine(crc, blockCRC, blockLen)
		}
		n >>= 1
		if n > 0 {
			blockCRC = crc32x.Combine(blockCRC, blockCRC, blockLen)
			blockLen <<= 1
		}
	}
	return crc
}

// gzipMemberHeader is a minimal 10-byte gzip header (deflate, no flags,
// unknown OS).
var gzipMemberHeader = []byte{0x1f, 0x8b, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xff}

// writeStoredDeflate writes data (or a hole, when payload is nil) of
// length cl at pos as stored deflate blocks of at most blockSize bytes
// and returns the new position. Stored blocks keep the compressed
// extent equal to the content plus 5 bytes of framing per block, so
// hole payloads stay holes.
func writeStoredDeflate(f *os.File, pos, cl int64, blockSize int, payload []byte) (int64, error) {
	for off := int64(0); ; off += int64(blockSize) {
		bs := int64(blockSize)
		if off+bs > cl {
			bs = cl - off
		}
		final := off+bs >= cl
		// 3-bit block header (BFINAL, BTYPE=00) padded to the byte
		// boundary, then LEN/NLEN.
		var b byte
		if final {
			b = 1
		}
		bh := []byte{b, byte(bs), byte(bs >> 8), ^byte(bs), ^byte(bs >> 8)}
		if _, err := f.WriteAt(bh, pos); err != nil {
			return 0, err
		}
		pos += int64(len(bh))
		if payload != nil {
			if _, err := f.WriteAt(payload[off:off+bs], pos); err != nil {
				return 0, err
			}
		}
		pos += bs // hole when payload is nil
		if final {
			return pos, nil
		}
	}
}

// WriteSparseGzip is WriteSparseLZ4 for gzip: every frame is one gzip
// member whose deflate stream consists of stored blocks of blockSize
// bytes (at most 65535, the stored-block cap), so a member's compressed
// extent equals its content plus a few bytes of framing. Hole members'
// payloads are filesystem holes; their footers still carry the correct
// CRC32 (computed in O(log n) over zeros) and ISIZE, so verified
// sequential consumption passes.
func WriteSparseGzip(f *os.File, contentSize, frameContent int64, blockSize int, seed uint64, dataFrames []int) (*SparsePlan, error) {
	p, err := planFrames(contentSize, frameContent, dataFrames)
	if err != nil {
		return nil, err
	}
	if blockSize <= 0 || blockSize > 65535 {
		return nil, fmt.Errorf("workloads: bad stored-block size %d (want 1..65535)", blockSize)
	}
	zeroCRCs := map[int64]uint32{} // by member length; at most two distinct
	var pos int64
	for fi := 0; fi < p.NumFrames; fi++ {
		cl := frameContent
		if int64(fi)*frameContent+cl > contentSize {
			cl = contentSize - int64(fi)*frameContent
		}
		var payload []byte
		crc, ok := zeroCRCs[cl]
		if !ok {
			crc = zeroCRC(cl)
			zeroCRCs[cl] = crc
		}
		if _, data := p.DataFrames[fi]; data {
			s := frameSeed(seed, fi)
			p.DataFrames[fi] = s
			payload = Random(int(cl), s)
			crc = crc32x.Checksum(payload)
		}
		if _, err := f.WriteAt(gzipMemberHeader, pos); err != nil {
			return nil, err
		}
		pos += int64(len(gzipMemberHeader))
		pos, err = writeStoredDeflate(f, pos, cl, blockSize, payload)
		if err != nil {
			return nil, err
		}
		var ftr [8]byte
		binary.LittleEndian.PutUint32(ftr[:4], crc)
		binary.LittleEndian.PutUint32(ftr[4:], uint32(uint64(cl)))
		if _, err := f.WriteAt(ftr[:], pos); err != nil {
			return nil, err
		}
		pos += 8
	}
	p.CompressedSize = pos
	return p, f.Truncate(pos)
}

// bgzfEOF is the canonical 28-byte empty BGZF EOF member.
var bgzfEOF = []byte{
	0x1f, 0x8b, 0x08, 0x04, 0, 0, 0, 0, 0x00, 0xff,
	0x06, 0x00, 'B', 'C', 0x02, 0x00, 0x1b, 0x00,
	0x03, 0x00,
	0, 0, 0, 0, 0, 0, 0, 0,
}

// WriteSparseBGZF is WriteSparseGzip in BGZF framing: every frame is
// one BGZF member (frameContent at most 65280, the format's member
// payload cap) whose header carries the member's compressed size in the
// "BC" extra subfield, stored as a single stored deflate block, closed
// by the canonical empty EOF member. Hole members' payloads are
// filesystem holes with correct CRC32/ISIZE footers.
func WriteSparseBGZF(f *os.File, contentSize, frameContent int64, seed uint64, dataFrames []int) (*SparsePlan, error) {
	if frameContent > 65280 {
		return nil, fmt.Errorf("workloads: BGZF member content %d exceeds the 65280-byte cap", frameContent)
	}
	p, err := planFrames(contentSize, frameContent, dataFrames)
	if err != nil {
		return nil, err
	}
	zeroCRCs := map[int64]uint32{}
	var pos int64
	for fi := 0; fi < p.NumFrames; fi++ {
		cl := frameContent
		if int64(fi)*frameContent+cl > contentSize {
			cl = contentSize - int64(fi)*frameContent
		}
		var payload []byte
		crc, ok := zeroCRCs[cl]
		if !ok {
			crc = zeroCRC(cl)
			zeroCRCs[cl] = crc
		}
		if _, data := p.DataFrames[fi]; data {
			s := frameSeed(seed, fi)
			p.DataFrames[fi] = s
			payload = Random(int(cl), s)
			crc = crc32x.Checksum(payload)
		}
		// 18-byte BGZF header: gzip header with FEXTRA and the 6-byte
		// BC subfield holding BSIZE-1 (total member size minus one).
		bsize := 18 + 5 + cl + 8 // header + one stored block's framing + payload + footer
		hdr := []byte{
			0x1f, 0x8b, 0x08, 0x04, 0, 0, 0, 0, 0x00, 0xff,
			0x06, 0x00, 'B', 'C', 0x02, 0x00,
			byte(bsize - 1), byte((bsize - 1) >> 8),
		}
		if _, err := f.WriteAt(hdr, pos); err != nil {
			return nil, err
		}
		pos += int64(len(hdr))
		pos, err = writeStoredDeflate(f, pos, cl, 65535, payload)
		if err != nil {
			return nil, err
		}
		var ftr [8]byte
		binary.LittleEndian.PutUint32(ftr[:4], crc)
		binary.LittleEndian.PutUint32(ftr[4:], uint32(uint64(cl)))
		if _, err := f.WriteAt(ftr[:], pos); err != nil {
			return nil, err
		}
		pos += 8
	}
	if _, err := f.WriteAt(bgzfEOF, pos); err != nil {
		return nil, err
	}
	pos += int64(len(bgzfEOF))
	p.CompressedSize = pos
	return p, f.Truncate(pos)
}

// WriteSparseZstd is WriteSparseLZ4 for Zstandard: every frame declares
// its content size (8-byte FCS) and consists of raw blocks of at most
// 128 KiB (the format's Block_Maximum_Size); hole frames' payloads are
// filesystem holes. No content checksums.
func WriteSparseZstd(f *os.File, contentSize, frameContent int64, seed uint64, dataFrames []int) (*SparsePlan, error) {
	p, err := planFrames(contentSize, frameContent, dataFrames)
	if err != nil {
		return nil, err
	}
	const blockSize = 128 << 10
	var pos int64
	for fi := 0; fi < p.NumFrames; fi++ {
		cl := frameContent
		if int64(fi)*frameContent+cl > contentSize {
			cl = contentSize - int64(fi)*frameContent
		}
		var payload []byte
		if _, ok := p.DataFrames[fi]; ok {
			s := frameSeed(seed, fi)
			p.DataFrames[fi] = s
			payload = Random(int(cl), s)
		}
		hdr := binary.LittleEndian.AppendUint32(nil, 0xFD2FB528)
		// FHD: 8-byte FCS (flag 3), no checksum, no dict, not single-
		// segment — so a window descriptor follows: exponent 24 (16 MiB),
		// comfortably above any frame content this generator emits.
		hdr = append(hdr, 0xC0, 14<<3)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(cl))
		if _, err := f.WriteAt(hdr, pos); err != nil {
			return nil, err
		}
		pos += int64(len(hdr))
		for off := int64(0); off < cl; off += blockSize {
			bs := int64(blockSize)
			if off+bs > cl {
				bs = cl - off
			}
			last := off+bs >= cl
			bh := uint32(bs)<<3 | 0<<1 // raw block
			if last {
				bh |= 1
			}
			if _, err := f.WriteAt([]byte{byte(bh), byte(bh >> 8), byte(bh >> 16)}, pos); err != nil {
				return nil, err
			}
			pos += 3
			if payload != nil {
				if _, err := f.WriteAt(payload[off:off+bs], pos); err != nil {
					return nil, err
				}
			}
			pos += bs // hole when payload is nil
		}
	}
	p.CompressedSize = pos
	return p, f.Truncate(pos)
}
