package workloads

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/xxhash"
)

// SparsePlan describes a synthetic sparse archive written by
// WriteSparseLZ4 or WriteSparseZstd: a multi-gigabyte-shaped compressed
// file whose all-zero block payloads are filesystem holes, so the
// on-disk allocation stays megabytes while the logical file (and its
// decompressed content) can exceed RAM. The plan carries everything a
// test needs to verify decoded bytes without materializing the content.
type SparsePlan struct {
	// ContentSize is the total decompressed size.
	ContentSize int64
	// FrameContent is the decompressed bytes per frame (the last frame
	// may be shorter).
	FrameContent int64
	// NumFrames counts the frames written.
	NumFrames int
	// CompressedSize is the logical size of the written file.
	CompressedSize int64
	// DataFrames maps a frame index to the seed of its deterministic
	// random payload; every frame not present decodes to zeros (and
	// was written as a hole).
	DataFrames map[int]uint64
}

// ExpectedAt regenerates the decompressed bytes [off, off+n) from the
// plan — zeros for hole frames, seeded random payloads for data frames.
func (p *SparsePlan) ExpectedAt(off int64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		pos := off + int64(i)
		if pos >= p.ContentSize {
			break
		}
		fi := int(pos / p.FrameContent)
		fStart := int64(fi) * p.FrameContent
		fLen := p.FrameContent
		if fStart+fLen > p.ContentSize {
			fLen = p.ContentSize - fStart
		}
		within := pos - fStart
		chunk := int64(n - i)
		if chunk > fLen-within {
			chunk = fLen - within
		}
		if seed, ok := p.DataFrames[fi]; ok {
			payload := Random(int(fLen), seed)
			copy(out[i:], payload[within:within+chunk])
		}
		i += int(chunk)
	}
	return out
}

// frameSeed derives a per-frame payload seed deterministically.
func frameSeed(seed uint64, frame int) uint64 {
	return seed ^ (uint64(frame)+1)*0x9E3779B97F4A7C15
}

// planFrames validates the geometry and returns the shared plan shell.
func planFrames(contentSize, frameContent int64, dataFrames []int) (*SparsePlan, error) {
	if contentSize <= 0 || frameContent <= 0 {
		return nil, fmt.Errorf("workloads: non-positive sparse archive geometry (%d/%d)", contentSize, frameContent)
	}
	n := int((contentSize + frameContent - 1) / frameContent)
	p := &SparsePlan{
		ContentSize:  contentSize,
		FrameContent: frameContent,
		NumFrames:    n,
		DataFrames:   map[int]uint64{},
	}
	for _, fi := range dataFrames {
		if fi < 0 || fi >= n {
			return nil, fmt.Errorf("workloads: data frame %d out of range [0,%d)", fi, n)
		}
		p.DataFrames[fi] = 0 // seeds filled by the writer
	}
	return p, nil
}

// WriteSparseLZ4 writes a synthetic multi-frame LZ4 archive of
// contentSize decompressed bytes to f: every frame declares its content
// size and consists of stored (uncompressed) blocks of blockSize bytes,
// so a frame's compressed extent equals its content plus a few header
// bytes. Frames listed in dataFrames carry seeded random payloads;
// every other frame's payload is all zeros and is written as a hole
// (only the 4-byte block headers land on disk). No checksums are
// written — holes would have to be read back to hash them.
//
// The result parses with the package's own scanner and any compliant
// LZ4 frame decoder; generation cost scales with headers plus data
// frames, not with contentSize.
func WriteSparseLZ4(f *os.File, contentSize, frameContent int64, blockSize int, seed uint64, dataFrames []int) (*SparsePlan, error) {
	p, err := planFrames(contentSize, frameContent, dataFrames)
	if err != nil {
		return nil, err
	}
	if blockSize <= 0 || int64(blockSize) > frameContent || blockSize > 4<<20 {
		return nil, fmt.Errorf("workloads: bad LZ4 block size %d", blockSize)
	}
	var bd byte
	switch {
	case blockSize <= 64<<10:
		bd = 4 << 4
	case blockSize <= 256<<10:
		bd = 5 << 4
	case blockSize <= 1<<20:
		bd = 6 << 4
	default:
		bd = 7 << 4
	}
	const flg = 0x40 | 0x20 | 0x08 // version 01, block-independent, content size
	var pos int64
	for fi := 0; fi < p.NumFrames; fi++ {
		cl := frameContent
		if int64(fi)*frameContent+cl > contentSize {
			cl = contentSize - int64(fi)*frameContent
		}
		var payload []byte
		if _, ok := p.DataFrames[fi]; ok {
			s := frameSeed(seed, fi)
			p.DataFrames[fi] = s
			payload = Random(int(cl), s)
		}
		hdr := binary.LittleEndian.AppendUint32(nil, 0x184D2204)
		desc := append([]byte{flg, bd}, binary.LittleEndian.AppendUint64(nil, uint64(cl))...)
		hdr = append(hdr, desc...)
		hdr = append(hdr, byte(xxhash.Sum32(desc, 0)>>8)) // HC
		if _, err := f.WriteAt(hdr, pos); err != nil {
			return nil, err
		}
		pos += int64(len(hdr))
		for off := int64(0); off < cl; off += int64(blockSize) {
			bs := int64(blockSize)
			if off+bs > cl {
				bs = cl - off
			}
			bh := binary.LittleEndian.AppendUint32(nil, uint32(bs)|1<<31) // stored
			if _, err := f.WriteAt(bh, pos); err != nil {
				return nil, err
			}
			pos += 4
			if payload != nil {
				if _, err := f.WriteAt(payload[off:off+bs], pos); err != nil {
					return nil, err
				}
			}
			pos += bs // hole when payload is nil
		}
		if _, err := f.WriteAt([]byte{0, 0, 0, 0}, pos); err != nil { // EndMark
			return nil, err
		}
		pos += 4
	}
	p.CompressedSize = pos
	return p, f.Truncate(pos)
}

// WriteSparseZstd is WriteSparseLZ4 for Zstandard: every frame declares
// its content size (8-byte FCS) and consists of raw blocks of at most
// 128 KiB (the format's Block_Maximum_Size); hole frames' payloads are
// filesystem holes. No content checksums.
func WriteSparseZstd(f *os.File, contentSize, frameContent int64, seed uint64, dataFrames []int) (*SparsePlan, error) {
	p, err := planFrames(contentSize, frameContent, dataFrames)
	if err != nil {
		return nil, err
	}
	const blockSize = 128 << 10
	var pos int64
	for fi := 0; fi < p.NumFrames; fi++ {
		cl := frameContent
		if int64(fi)*frameContent+cl > contentSize {
			cl = contentSize - int64(fi)*frameContent
		}
		var payload []byte
		if _, ok := p.DataFrames[fi]; ok {
			s := frameSeed(seed, fi)
			p.DataFrames[fi] = s
			payload = Random(int(cl), s)
		}
		hdr := binary.LittleEndian.AppendUint32(nil, 0xFD2FB528)
		// FHD: 8-byte FCS (flag 3), no checksum, no dict, not single-
		// segment — so a window descriptor follows: exponent 24 (16 MiB),
		// comfortably above any frame content this generator emits.
		hdr = append(hdr, 0xC0, 14<<3)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(cl))
		if _, err := f.WriteAt(hdr, pos); err != nil {
			return nil, err
		}
		pos += int64(len(hdr))
		for off := int64(0); off < cl; off += blockSize {
			bs := int64(blockSize)
			if off+bs > cl {
				bs = cl - off
			}
			last := off+bs >= cl
			bh := uint32(bs)<<3 | 0<<1 // raw block
			if last {
				bh |= 1
			}
			if _, err := f.WriteAt([]byte{byte(bh), byte(bh >> 8), byte(bh >> 16)}, pos); err != nil {
				return nil, err
			}
			pos += 3
			if payload != nil {
				if _, err := f.WriteAt(payload[off:off+bs], pos); err != nil {
					return nil, err
				}
			}
			pos += bs // hole when payload is nil
		}
	}
	p.CompressedSize = pos
	return p, f.Truncate(pos)
}
