package workloads

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestSparseGzipDecodesWithStdlib validates the gzip/BGZF sparse
// generators against an independent decoder: the emitted file must
// decode byte-exactly with compress/gzip (which also verifies every
// member's CRC32 and ISIZE — including the O(log n) zero-hole CRCs)
// and match the plan's ExpectedAt regeneration.
func TestSparseGzipDecodesWithStdlib(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name  string
		write func(f *os.File) (*SparsePlan, error)
	}{
		{name: "gzip", write: func(f *os.File) (*SparsePlan, error) {
			return WriteSparseGzip(f, 1<<20, 256<<10, 60_000, 99, []int{0, 2})
		}},
		{name: "gzip-ragged-tail", write: func(f *os.File) (*SparsePlan, error) {
			return WriteSparseGzip(f, 1<<20-12345, 256<<10, 65535, 7, []int{3})
		}},
		{name: "bgzf", write: func(f *os.File) (*SparsePlan, error) {
			return WriteSparseBGZF(f, 600_000, 65280, 41, []int{0, 5})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := os.Create(filepath.Join(dir, tc.name))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			plan, err := tc.write(f)
			if err != nil {
				t.Fatal(err)
			}
			fi, err := f.Stat()
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != plan.CompressedSize {
				t.Fatalf("file is %d bytes, plan says %d", fi.Size(), plan.CompressedSize)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			zr, err := gzip.NewReader(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(zr)
			if err != nil {
				t.Fatalf("stdlib decode: %v", err)
			}
			if int64(len(got)) != plan.ContentSize {
				t.Fatalf("decoded %d bytes, want %d", len(got), plan.ContentSize)
			}
			if want := plan.ExpectedAt(0, int(plan.ContentSize)); !bytes.Equal(got, want) {
				t.Fatal("decoded content does not match the generation plan")
			}
		})
	}
}
