// Package fleet generates directories of many small archives — the
// "small-file fleet" serving workload, the opposite regime of the
// sparse multi-GiB archives the range benchmarks use. It lives beside
// package workloads rather than in it because it imports the codec
// packages (gzipw, lz4x, zstdx), whose tests import workloads.
package fleet

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
	"repro/internal/zstdx"
)

// File is one archive of a generated fleet: its root-relative name
// (forward slashes) and decompressed content.
type File struct {
	Name    string
	Content []byte
}

// Write populates dir with count KB-scale archives of mixed formats.
// Formats rotate gzip → LZ4 → zstd, sizes cycle 8–56 KiB, and files
// land in bucketed subdirectories ("b07/f0123.gz") so consumers
// exercise nested-name handling (index stores must recreate the
// directory layout, archive listings must walk it). Deterministic in
// (count, seed).
func Write(dir string, count int, seed uint64) ([]File, error) {
	out := make([]File, 0, count)
	for i := 0; i < count; i++ {
		size := 8<<10 + (i%7)*(8<<10) + i%1021
		content := workloads.Base64(size, seed+uint64(i)*2654435761)
		var comp []byte
		var ext string
		switch i % 3 {
		case 0:
			ext = "gz"
			c, _, err := gzipw.Compress(content, gzipw.Options{Level: 6, BlockSize: 16 << 10})
			if err != nil {
				return nil, fmt.Errorf("fleet: gzip %d: %w", i, err)
			}
			comp = c
		case 1:
			ext = "lz4"
			comp = lz4x.CompressFrames(content, lz4x.FrameOptions{BlockSize: 16 << 10, FrameSize: 16 << 10})
		default:
			ext = "zst"
			comp = zstdx.CompressFrames(content, zstdx.FrameOptions{Level: 1, FrameSize: 16 << 10})
		}
		name := fmt.Sprintf("b%02d/f%04d.%s", i%16, i, ext)
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(full, comp, 0o644); err != nil {
			return nil, err
		}
		out = append(out, File{Name: name, Content: content})
	}
	return out, nil
}
