// Package gzformat parses and writes the gzip container format
// (RFC 1952): member headers, footers (CRC32 + ISIZE) and the BGZF
// extra-field convention used by bgzip (paper §3.4.4). Deflate itself
// lives in internal/deflate; this package only handles the byte-aligned
// wrapper around it.
package gzformat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bitio"
)

// Gzip header constants (RFC 1952).
const (
	ID1 = 0x1F
	ID2 = 0x8B
	CM  = 8 // deflate

	flagText    = 1 << 0
	flagHdrCRC  = 1 << 1
	flagExtra   = 1 << 2
	flagName    = 1 << 3
	flagComment = 1 << 4
)

// ErrNotGzip reports a missing or malformed gzip magic/header.
var ErrNotGzip = errors.New("gzformat: not a gzip stream")

// Header holds the parsed fields of one gzip member header.
type Header struct {
	ModTime  uint32
	XFL      byte
	OS       byte
	Name     string
	Comment  string
	Extra    []byte
	Text     bool
	HeaderSz int // total encoded size in bytes

	// BGZFBlockSize is the total compressed size of this gzip member as
	// declared by a BGZF "BC" extra subfield, or 0 when absent. This is
	// the metadata that makes BGZF files trivially parallelizable.
	BGZFBlockSize int
}

// Footer is the 8-byte gzip member trailer.
type Footer struct {
	CRC32 uint32
	ISize uint32 // uncompressed size mod 2^32
}

// ParseHeader reads a gzip member header from br. The reader may be at
// an arbitrary bit position (e.g. right after a preceding member's
// footer parsed mid-chunk); gzip headers are byte-sized but the bit
// reader handles the framing.
func ParseHeader(br *bitio.BitReader) (Header, error) {
	var h Header
	b := func() (byte, error) { return br.ReadByte() }

	id1, err := b()
	if err != nil {
		return h, err
	}
	id2, err := b()
	if err != nil {
		return h, err
	}
	cm, err := b()
	if err != nil {
		return h, err
	}
	if id1 != ID1 || id2 != ID2 || cm != CM {
		return h, ErrNotGzip
	}
	flg, err := b()
	if err != nil {
		return h, err
	}
	if flg&0xE0 != 0 {
		return h, fmt.Errorf("gzformat: reserved header flag bits set: %#x", flg)
	}
	var fixed [6]byte
	for i := range fixed {
		fixed[i], err = b()
		if err != nil {
			return h, err
		}
	}
	h.ModTime = binary.LittleEndian.Uint32(fixed[0:4])
	h.XFL = fixed[4]
	h.OS = fixed[5]
	h.Text = flg&flagText != 0
	size := 10

	if flg&flagExtra != 0 {
		lo, err := b()
		if err != nil {
			return h, err
		}
		hi, err := b()
		if err != nil {
			return h, err
		}
		xlen := int(lo) | int(hi)<<8
		h.Extra = make([]byte, xlen)
		for i := 0; i < xlen; i++ {
			h.Extra[i], err = b()
			if err != nil {
				return h, err
			}
		}
		size += 2 + xlen
		h.BGZFBlockSize = parseBGZFExtra(h.Extra)
	}
	if flg&flagName != 0 {
		s, n, err := readCString(br)
		if err != nil {
			return h, err
		}
		h.Name = s
		size += n
	}
	if flg&flagComment != 0 {
		s, n, err := readCString(br)
		if err != nil {
			return h, err
		}
		h.Comment = s
		size += n
	}
	if flg&flagHdrCRC != 0 {
		if _, err := b(); err != nil {
			return h, err
		}
		if _, err := b(); err != nil {
			return h, err
		}
		size += 2
	}
	h.HeaderSz = size
	return h, nil
}

func readCString(br *bitio.BitReader) (string, int, error) {
	var buf []byte
	for {
		c, err := br.ReadByte()
		if err != nil {
			return "", 0, err
		}
		if c == 0 {
			return string(buf), len(buf) + 1, nil
		}
		if len(buf) > 1<<16 {
			return "", 0, errors.New("gzformat: unterminated header string")
		}
		buf = append(buf, c)
	}
}

// parseBGZFExtra scans gzip extra subfields for the BGZF "BC" subfield
// and returns the declared total member size (BSIZE+1), or 0.
func parseBGZFExtra(extra []byte) int {
	for len(extra) >= 4 {
		si1, si2 := extra[0], extra[1]
		slen := int(binary.LittleEndian.Uint16(extra[2:4]))
		if len(extra) < 4+slen {
			return 0
		}
		if si1 == 'B' && si2 == 'C' && slen == 2 {
			return int(binary.LittleEndian.Uint16(extra[4:6])) + 1
		}
		extra = extra[4+slen:]
	}
	return 0
}

// ParseFooter reads the 8-byte member trailer. The reader must be
// byte-aligned (the deflate decoder aligns after the final block).
func ParseFooter(br *bitio.BitReader) (Footer, error) {
	var raw [8]byte
	if err := br.ReadFull(raw[:]); err != nil {
		return Footer{}, err
	}
	return Footer{
		CRC32: binary.LittleEndian.Uint32(raw[0:4]),
		ISize: binary.LittleEndian.Uint32(raw[4:8]),
	}, nil
}

// WriteHeaderOptions configures WriteHeader.
type WriteHeaderOptions struct {
	Name    string
	Comment string
	Extra   []byte
	ModTime uint32
	OS      byte
}

// WriteHeader emits a gzip member header and returns its size in bytes.
func WriteHeader(w io.Writer, opts WriteHeaderOptions) (int, error) {
	var flg byte
	if len(opts.Extra) > 0 {
		flg |= flagExtra
	}
	if opts.Name != "" {
		flg |= flagName
	}
	if opts.Comment != "" {
		flg |= flagComment
	}
	buf := make([]byte, 0, 32+len(opts.Extra)+len(opts.Name)+len(opts.Comment))
	buf = append(buf, ID1, ID2, CM, flg)
	buf = binary.LittleEndian.AppendUint32(buf, opts.ModTime)
	buf = append(buf, 0, opts.OS)
	if len(opts.Extra) > 0 {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(opts.Extra)))
		buf = append(buf, opts.Extra...)
	}
	if opts.Name != "" {
		buf = append(buf, opts.Name...)
		buf = append(buf, 0)
	}
	if opts.Comment != "" {
		buf = append(buf, opts.Comment...)
		buf = append(buf, 0)
	}
	n, err := w.Write(buf)
	return n, err
}

// WriteFooter emits the member trailer for data with the given CRC and
// uncompressed size.
func WriteFooter(w io.Writer, crc uint32, isize uint64) error {
	var raw [8]byte
	binary.LittleEndian.PutUint32(raw[0:4], crc)
	binary.LittleEndian.PutUint32(raw[4:8], uint32(isize))
	_, err := w.Write(raw[:])
	return err
}

// BGZFExtra builds the "BC" extra subfield declaring a total member size
// of bsize bytes.
func BGZFExtra(bsize int) []byte {
	extra := make([]byte, 6)
	extra[0], extra[1] = 'B', 'C'
	binary.LittleEndian.PutUint16(extra[2:4], 2)
	binary.LittleEndian.PutUint16(extra[4:6], uint16(bsize-1))
	return extra
}

// Kind is a compression container format recognisable from its leading
// bytes. The sniffer lives in this package because the hard case —
// telling BGZF apart from plain gzip — requires parsing the gzip header
// this package models; the other magics are trivial byte comparisons.
type Kind int

const (
	// KindUnknown means no supported magic matched.
	KindUnknown Kind = iota
	// KindGzip is a plain gzip/zlib-deflate file (RFC 1952).
	KindGzip
	// KindBGZF is gzip whose first member carries the BGZF "BC" extra
	// subfield — the blocked variant used by bgzip/htslib.
	KindBGZF
	// KindBzip2 is a bzip2 stream ("BZh" + level + block magic).
	KindBzip2
	// KindLZ4 is an LZ4 frame (magic 0x184D2204, little-endian).
	KindLZ4
	// KindZstd is a Zstandard frame (magic 0xFD2FB528, little-endian),
	// or a skippable frame (0x184D2A50–5F) leading a Zstandard file.
	KindZstd
)

// String names the kind the way the CLI's --format flag spells it.
func (k Kind) String() string {
	switch k {
	case KindGzip:
		return "gzip"
	case KindBGZF:
		return "bgzf"
	case KindBzip2:
		return "bzip2"
	case KindLZ4:
		return "lz4"
	case KindZstd:
		return "zstd"
	}
	return "unknown"
}

// SniffLen is the prefix size that suffices for Sniff to classify every
// supported format: a standard BGZF header is 18 bytes (12 fixed + the
// 6-byte "BC" subfield), and some writers put other subfields first, so
// a little headroom is kept. Shorter prefixes are fine — Sniff degrades
// to the formats it can still tell apart.
const SniffLen = 64

// Sniff classifies a file by its leading bytes. A gzip member whose
// extra field cannot be fully inspected within the prefix (oversized
// foreign subfields) is reported as plain gzip — the safe default,
// since BGZF handling is an optimisation, not a correctness split.
func Sniff(prefix []byte) Kind {
	if len(prefix) >= 4 && binary.LittleEndian.Uint32(prefix) == 0xFD2FB528 {
		return KindZstd
	}
	if len(prefix) >= 4 && binary.LittleEndian.Uint32(prefix)&^0xF == 0x184D2A50 {
		// A skippable frame: the range is shared by the LZ4 and
		// Zstandard frame specs, but only zstd tooling emits files that
		// lead with one, so classify as Zstandard (whose scanner skips
		// it and finds the data frames behind).
		return KindZstd
	}
	if len(prefix) >= 4 && binary.LittleEndian.Uint32(prefix) == 0x184D2204 {
		return KindLZ4
	}
	if len(prefix) >= 4 && prefix[0] == 'B' && prefix[1] == 'Z' && prefix[2] == 'h' &&
		prefix[3] >= '1' && prefix[3] <= '9' {
		return KindBzip2
	}
	if len(prefix) >= 3 && prefix[0] == ID1 && prefix[1] == ID2 && prefix[2] == CM {
		if sniffBGZF(prefix) {
			return KindBGZF
		}
		return KindGzip
	}
	return KindUnknown
}

// sniffBGZF reports whether a gzip prefix carries the BGZF "BC" extra
// subfield in its first member header.
func sniffBGZF(prefix []byte) bool {
	if len(prefix) < 12 || prefix[3]&flagExtra == 0 {
		return false
	}
	xlen := int(binary.LittleEndian.Uint16(prefix[10:12]))
	extra := prefix[12:]
	if xlen < len(extra) {
		extra = extra[:xlen]
	}
	return parseBGZFExtra(extra) > 0
}

// NewCRC returns the running CRC32 (IEEE) used by gzip footers.
func NewCRC() uint32 { return 0 }

// UpdateCRC extends crc with p, matching RFC 1952's CRC32.
func UpdateCRC(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, crc32.IEEETable, p)
}
