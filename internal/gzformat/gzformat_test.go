package gzformat

import (
	"bytes"
	"compress/gzip"
	"errors"
	"hash/crc32"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func parse(t *testing.T, raw []byte) (Header, error) {
	t.Helper()
	return ParseHeader(bitio.NewBitReaderBytes(raw))
}

func TestHeaderRoundTrip(t *testing.T) {
	cases := []WriteHeaderOptions{
		{},
		{Name: "file.tar"},
		{Comment: "hello world"},
		{Name: "a", Comment: "b", ModTime: 123456, OS: 3},
		{Extra: BGZFExtra(1234)},
		{Name: "x.gz", Extra: []byte{'A', 'B', 2, 0, 0xFF, 0xFE}},
	}
	for i, opts := range cases {
		var buf bytes.Buffer
		n, err := WriteHeader(&buf, opts)
		if err != nil {
			t.Fatal(err)
		}
		if n != buf.Len() {
			t.Fatalf("case %d: reported size %d, wrote %d", i, n, buf.Len())
		}
		h, err := parse(t, buf.Bytes())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if h.Name != opts.Name || h.Comment != opts.Comment || h.ModTime != opts.ModTime {
			t.Fatalf("case %d: round trip mismatch: %+v", i, h)
		}
		if h.HeaderSz != n {
			t.Fatalf("case %d: HeaderSz %d != written %d", i, h.HeaderSz, n)
		}
		if !bytes.Equal(h.Extra, opts.Extra) {
			t.Fatalf("case %d: extra mismatch", i)
		}
	}
}

func TestStdlibInterop(t *testing.T) {
	// Headers written by the stdlib gzip writer must parse, and our
	// headers must be accepted by the stdlib reader.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Name = "inner.txt"
	zw.Comment = "stdlib header"
	zw.Write([]byte("payload"))
	zw.Close()

	h, err := parse(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "inner.txt" || h.Comment != "stdlib header" {
		t.Fatalf("parsed %+v", h)
	}

	var ours bytes.Buffer
	WriteHeader(&ours, WriteHeaderOptions{Name: "n", OS: 255})
	// Complete the member with an empty deflate stream + footer.
	fw, _ := gzip.NewWriterLevel(io.Discard, gzip.NoCompression)
	_ = fw
	ours.Write([]byte{0x03, 0x00}) // final fixed empty block
	WriteFooter(&ours, 0, 0)
	zr, err := gzip.NewReader(bytes.NewReader(ours.Bytes()))
	if err != nil {
		t.Fatalf("stdlib rejected our header: %v", err)
	}
	if zr.Name != "n" {
		t.Fatalf("stdlib parsed name %q", zr.Name)
	}
	if _, err := io.ReadAll(zr); err != nil {
		t.Fatalf("stdlib decode: %v", err)
	}
}

func TestBGZFExtraRoundTrip(t *testing.T) {
	f := func(bsizeRaw uint16) bool {
		bsize := int(bsizeRaw)%65535 + 1
		var buf bytes.Buffer
		WriteHeader(&buf, WriteHeaderOptions{Extra: BGZFExtra(bsize)})
		h, err := parse(t, buf.Bytes())
		return err == nil && h.BGZFBlockSize == bsize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBGZFExtraAmongOtherSubfields(t *testing.T) {
	extra := append([]byte{'X', 'Y', 3, 0, 1, 2, 3}, BGZFExtra(999)...)
	extra = append(extra, 'Z', 'Z', 1, 0, 7)
	var buf bytes.Buffer
	WriteHeader(&buf, WriteHeaderOptions{Extra: extra})
	h, err := parse(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.BGZFBlockSize != 999 {
		t.Fatalf("BGZF size %d, want 999", h.BGZFBlockSize)
	}
}

func TestNotGzip(t *testing.T) {
	for _, raw := range [][]byte{
		[]byte("plain text, nothing like gzip"),
		{0x1F, 0x8B, 7, 0, 0, 0, 0, 0, 0, 0}, // wrong CM
		{0x1F, 0x8C, 8, 0, 0, 0, 0, 0, 0, 0}, // wrong ID2
		{0x50, 0x4B, 3, 4, 0, 0, 0, 0, 0, 0}, // ZIP local header
	} {
		if _, err := parse(t, raw); !errors.Is(err, ErrNotGzip) {
			t.Fatalf("%x: got %v, want ErrNotGzip", raw[:4], err)
		}
	}
}

func TestTruncatedHeader(t *testing.T) {
	var full bytes.Buffer
	WriteHeader(&full, WriteHeaderOptions{Name: "abcdef", Extra: BGZFExtra(55)})
	raw := full.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := parse(t, raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFooterRoundTrip(t *testing.T) {
	f := func(crc uint32, isize uint32) bool {
		var buf bytes.Buffer
		WriteFooter(&buf, crc, uint64(isize))
		got, err := ParseFooter(bitio.NewBitReaderBytes(buf.Bytes()))
		return err == nil && got.CRC32 == crc && got.ISize == isize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFooterISizeModulo(t *testing.T) {
	// ISIZE is the size mod 2^32 (RFC 1952).
	var buf bytes.Buffer
	WriteFooter(&buf, 1, (1<<32)+7)
	got, err := ParseFooter(bitio.NewBitReaderBytes(buf.Bytes()))
	if err != nil || got.ISize != 7 {
		t.Fatalf("got %+v, %v", got, err)
	}
}

func TestCRCMatchesStdlib(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	crc := NewCRC()
	crc = UpdateCRC(crc, data[:10])
	crc = UpdateCRC(crc, data[10:])
	if want := crc32.ChecksumIEEE(data); crc != want {
		t.Fatalf("crc %08x, want %08x", crc, want)
	}
}

func TestSniff(t *testing.T) {
	var gz bytes.Buffer
	WriteHeader(&gz, WriteHeaderOptions{Name: "x"})

	var bgzf bytes.Buffer
	WriteHeader(&bgzf, WriteHeaderOptions{Extra: BGZFExtra(100)})

	// BGZF with a foreign subfield before "BC" still classifies.
	foreign := append([]byte{'X', 'Y', 2, 0, 7, 7}, BGZFExtra(100)...)
	var bgzf2 bytes.Buffer
	WriteHeader(&bgzf2, WriteHeaderOptions{Extra: foreign})

	cases := []struct {
		name   string
		prefix []byte
		want   Kind
	}{
		{"gzip", gz.Bytes(), KindGzip},
		{"bgzf", bgzf.Bytes(), KindBGZF},
		{"bgzf-foreign-subfield", bgzf2.Bytes(), KindBGZF},
		{"gzip-extra-not-bgzf", append([]byte{ID1, ID2, CM, flagExtra, 0, 0, 0, 0, 0, 255, 4, 0}, 'Z', 'Z', 0, 0), KindGzip},
		{"bzip2", []byte("BZh91AY&SY"), KindBzip2},
		{"bzip2-bad-level", []byte("BZh01AY&SY"), KindUnknown},
		{"lz4", []byte{0x04, 0x22, 0x4D, 0x18, 0x40}, KindLZ4},
		{"zstd", []byte{0x28, 0xB5, 0x2F, 0xFD}, KindZstd},
		{"zstd-skippable-lead", []byte{0x50, 0x2A, 0x4D, 0x18, 4, 0, 0, 0}, KindZstd},
		{"zstd-skippable-max", []byte{0x5F, 0x2A, 0x4D, 0x18, 0, 0, 0, 0}, KindZstd},
		{"zstd-short", []byte{0x28, 0xB5, 0x2F}, KindUnknown},
		{"empty", nil, KindUnknown},
		{"short-gzip", []byte{ID1, ID2}, KindUnknown},
		{"text", []byte("hello world, definitely not compressed"), KindUnknown},
	}
	for _, c := range cases {
		if got := Sniff(c.prefix); got != c.want {
			t.Errorf("%s: Sniff = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSniffTruncatedBGZFHeaderIsGzip(t *testing.T) {
	var bgzf bytes.Buffer
	WriteHeader(&bgzf, WriteHeaderOptions{Extra: BGZFExtra(100)})
	// With the extra field cut off, the safe answer is plain gzip.
	if got := Sniff(bgzf.Bytes()[:11]); got != KindGzip {
		t.Fatalf("Sniff(truncated bgzf) = %v, want %v", got, KindGzip)
	}
}
