package gzformat

import (
	"bytes"
	"testing"

	"repro/internal/bitio"
)

// FuzzSniff asserts the sniffing path never panics and every verdict
// is anchored to the right magic bytes — it is the first code every
// byte of untrusted input reaches through Open.
func FuzzSniff(f *testing.F) {
	f.Add([]byte{ID1, ID2, CM})
	f.Add([]byte{0x28, 0xB5, 0x2F, 0xFD})
	f.Add([]byte{0x04, 0x22, 0x4D, 0x18})
	f.Add([]byte{0x50, 0x2A, 0x4D, 0x18, 0, 0, 0, 0})
	f.Add([]byte("BZh91AY&SY"))
	f.Add([]byte{ID1, ID2, CM, flagExtra, 0, 0, 0, 0, 0, 255, 6, 0, 'B', 'C', 2, 0, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, prefix []byte) {
		switch Sniff(prefix) {
		case KindGzip, KindBGZF:
			if len(prefix) < 3 || prefix[0] != ID1 || prefix[1] != ID2 || prefix[2] != CM {
				t.Fatalf("gzip verdict without gzip magic: % x", prefix[:min(len(prefix), 4)])
			}
		case KindBzip2:
			if len(prefix) < 4 || prefix[0] != 'B' || prefix[1] != 'Z' || prefix[2] != 'h' {
				t.Fatalf("bzip2 verdict without BZh magic: % x", prefix[:min(len(prefix), 4)])
			}
		case KindLZ4, KindZstd:
			if len(prefix) < 4 {
				t.Fatalf("frame-format verdict on %d-byte prefix", len(prefix))
			}
		}
	})
}

// FuzzParseHeader hardens the member-header parser against truncated
// and corrupt input: errors are fine, panics are not.
func FuzzParseHeader(f *testing.F) {
	var ok bytes.Buffer
	WriteHeader(&ok, WriteHeaderOptions{Name: "n", Comment: "c", Extra: BGZFExtra(100)})
	f.Add(ok.Bytes())
	f.Add([]byte{ID1, ID2, CM, 0xE0})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bitio.NewBitReaderBytes(data)
		_, _ = ParseHeader(br)
	})
}
