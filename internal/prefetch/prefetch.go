// Package prefetch implements the prefetching strategies of the paper's
// chunk fetcher (§3.2, Figure 5): FetchNextFixed, FetchNextAdaptive and
// FetchNextMultiStream. Strategies operate on chunk *indexes*, not byte
// offsets; the fetcher maps between the two. A strategy only proposes
// indexes — the fetcher filters out chunks that are already cached or in
// flight (§3.2).
package prefetch

// Strategy proposes chunk indexes to prefetch based on recent accesses.
type Strategy interface {
	// Access records that the consumer requested chunk index.
	Access(index uint64)
	// Prefetch returns up to maxDegree candidate indexes, best first.
	Prefetch(maxDegree int) []uint64
}

// Fixed always prefetches the next maxDegree chunks after the last
// access — the FetchNextFixed strategy.
type Fixed struct {
	last     uint64
	accessed bool
}

// NewFixed returns a Fixed strategy.
func NewFixed() *Fixed { return &Fixed{} }

// Access implements Strategy.
func (f *Fixed) Access(index uint64) { f.last, f.accessed = index, true }

// Prefetch implements Strategy.
func (f *Fixed) Prefetch(maxDegree int) []uint64 {
	if !f.accessed {
		return nil
	}
	out := make([]uint64, 0, maxDegree)
	for i := 1; i <= maxDegree; i++ {
		out = append(out, f.last+uint64(i))
	}
	return out
}

// Adaptive ramps the prefetch degree exponentially while accesses remain
// sequential and resets on random accesses — the paper's default
// "exponentially incremented adaptive asynchronous" strategy. Matching
// §3.2, the very first access already returns the full degree so that
// whole-file decompression starts fully parallel.
type Adaptive struct {
	last      uint64
	accessed  bool
	streak    int // consecutive sequential accesses
	firstSeen bool
}

// NewAdaptive returns an Adaptive strategy.
func NewAdaptive() *Adaptive { return &Adaptive{} }

// Access implements Strategy.
func (a *Adaptive) Access(index uint64) {
	switch {
	case !a.accessed:
		a.streak = 1
	case index == a.last+1:
		a.streak++
	case index == a.last:
		// Repeated access to the same chunk keeps the streak.
	default:
		a.streak = 1
	}
	a.last = index
	a.accessed = true
}

// Prefetch implements Strategy.
func (a *Adaptive) Prefetch(maxDegree int) []uint64 {
	if !a.accessed || maxDegree <= 0 {
		return nil
	}
	degree := maxDegree
	if !a.firstSeen {
		// Initial access: full degree (paper §3.2).
		a.firstSeen = true
	} else if a.streak < 32 {
		degree = 1 << a.streak
		if degree > maxDegree {
			degree = maxDegree
		}
	}
	out := make([]uint64, 0, degree)
	for i := 1; i <= degree; i++ {
		out = append(out, a.last+uint64(i))
	}
	return out
}

// MultiStream tracks several concurrent sequential access streams (for
// example two readers extracting different files from one TAR archive)
// and prefetches adaptively for each — FetchNextMultiStream, comparable
// to the AMP multi-stream prefetcher the paper cites.
type MultiStream struct {
	streams []*Adaptive
	// MaxStreams bounds tracked streams; least recently used is evicted.
	MaxStreams int
	order      []int // stream indexes, most recently used first
}

// NewMultiStream returns a MultiStream strategy tracking up to 8 streams.
func NewMultiStream() *MultiStream { return &MultiStream{MaxStreams: 8} }

// Access implements Strategy. An access within +-2 chunks of a known
// stream head extends that stream; otherwise a new stream starts.
func (m *MultiStream) Access(index uint64) {
	for pos, si := range m.order {
		s := m.streams[si]
		if diff := int64(index) - int64(s.last); diff >= -2 && diff <= 2 {
			s.Access(index)
			m.touch(pos)
			return
		}
	}
	s := NewAdaptive()
	s.Access(index)
	if len(m.streams) >= m.MaxStreams && len(m.order) > 0 {
		victim := m.order[len(m.order)-1]
		m.order = m.order[:len(m.order)-1]
		m.streams[victim] = s
		m.order = append([]int{victim}, m.order...)
		return
	}
	m.streams = append(m.streams, s)
	m.order = append([]int{len(m.streams) - 1}, m.order...)
}

func (m *MultiStream) touch(pos int) {
	si := m.order[pos]
	copy(m.order[1:pos+1], m.order[:pos])
	m.order[0] = si
}

// Prefetch implements Strategy: the degree is split across streams, the
// most recently active stream first.
func (m *MultiStream) Prefetch(maxDegree int) []uint64 {
	if len(m.order) == 0 || maxDegree <= 0 {
		return nil
	}
	per := maxDegree / len(m.order)
	if per < 1 {
		per = 1
	}
	var out []uint64
	seen := map[uint64]bool{}
	for _, si := range m.order {
		for _, idx := range m.streams[si].Prefetch(per) {
			if !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
			if len(out) >= maxDegree {
				return out
			}
		}
	}
	return out
}
