package prefetch

import "testing"

func TestFixed(t *testing.T) {
	f := NewFixed()
	if got := f.Prefetch(4); got != nil {
		t.Fatalf("prefetch before access: %v", got)
	}
	f.Access(10)
	got := f.Prefetch(3)
	want := []uint64{11, 12, 13}
	if len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Fatalf("got %v", got)
	}
}

func TestAdaptiveFullDegreeOnFirstAccess(t *testing.T) {
	// Paper §3.2: the initial access returns the full degree so that
	// decompression starts fully parallel.
	a := NewAdaptive()
	a.Access(0)
	if got := a.Prefetch(16); len(got) != 16 {
		t.Fatalf("first access prefetched %d, want 16", len(got))
	}
}

func TestAdaptiveRampAndReset(t *testing.T) {
	a := NewAdaptive()
	a.Access(0)
	a.Prefetch(64) // consume the initial full-degree grant
	a.Access(1)
	d1 := len(a.Prefetch(64))
	a.Access(2)
	d2 := len(a.Prefetch(64))
	a.Access(3)
	d3 := len(a.Prefetch(64))
	if !(d1 < d2 && d2 < d3) {
		t.Fatalf("degrees should ramp: %d %d %d", d1, d2, d3)
	}
	// Random access resets the streak.
	a.Access(100)
	dAfterJump := len(a.Prefetch(64))
	if dAfterJump > d1*2 {
		t.Fatalf("degree after random access = %d, expected small", dAfterJump)
	}
	// Prefetches follow the new position.
	got := a.Prefetch(2)
	if got[0] != 101 {
		t.Fatalf("prefetch after jump starts at %d", got[0])
	}
}

func TestAdaptiveSaturates(t *testing.T) {
	a := NewAdaptive()
	for i := uint64(0); i < 100; i++ {
		a.Access(i)
	}
	if got := a.Prefetch(8); len(got) != 8 {
		t.Fatalf("saturated degree %d want 8", len(got))
	}
}

func TestMultiStreamTracksTwoStreams(t *testing.T) {
	m := NewMultiStream()
	// Interleaved sequential accesses at two distant positions, as when
	// two files of a TAR are read concurrently (§3.2).
	for i := 0; i < 5; i++ {
		m.Access(uint64(10 + i))
		m.Access(uint64(1000 + i))
	}
	got := m.Prefetch(8)
	var near, far bool
	for _, idx := range got {
		if idx >= 15 && idx < 50 {
			near = true
		}
		if idx >= 1005 && idx < 1050 {
			far = true
		}
	}
	if !near || !far {
		t.Fatalf("prefetches %v should cover both streams", got)
	}
}

func TestMultiStreamEviction(t *testing.T) {
	m := NewMultiStream()
	m.MaxStreams = 2
	m.Access(10)
	m.Access(1000)
	m.Access(5000) // evicts stream at 10
	if len(m.streams) > 2 {
		t.Fatalf("%d streams tracked", len(m.streams))
	}
	got := m.Prefetch(8)
	for _, idx := range got {
		if idx > 10 && idx < 100 {
			t.Fatalf("evicted stream still prefetched: %v", got)
		}
	}
}

func TestMultiStreamNoDuplicates(t *testing.T) {
	m := NewMultiStream()
	m.Access(5)
	m.Access(6) // same stream
	got := m.Prefetch(16)
	seen := map[uint64]bool{}
	for _, idx := range got {
		if seen[idx] {
			t.Fatalf("duplicate index %d in %v", idx, got)
		}
		seen[idx] = true
	}
}

func TestPrefetchZeroDegree(t *testing.T) {
	for _, s := range []Strategy{NewFixed(), NewAdaptive(), NewMultiStream()} {
		s.Access(1)
		if got := s.Prefetch(0); len(got) != 0 {
			t.Fatalf("%T: %v", s, got)
		}
	}
}
