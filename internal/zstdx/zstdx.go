// Package zstdx decompresses Zstandard (RFC 8878) with frame-level
// parallelism and checkpointed random access — the fifth Archive
// format, and the paper's §4.9 best case: pzstd-style multi-frame
// files carry their decompressed extents in frame metadata, so the
// planning pass that gzip needs speculative block finding for is a
// header walk here, exactly as in the LZ4 backend.
//
// The decoder is self-contained (FSE, Huffman, sequence execution,
// xxHash64) and handles the full single-pass format: raw/RLE/
// compressed blocks, all literal modes including treeless repeats,
// predefined/RLE/FSE/repeat sequence tables, repeat offsets, skippable
// frames and content checksums. Dictionaries are not supported.
package zstdx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/filereader"
	"repro/internal/xxhash"
)

// FrameMagic introduces every Zstandard frame.
const FrameMagic = 0xFD2FB528

// skippableMagicBase begins the 16-magic range of skippable frames
// (0x184D2A50 … 0x184D2A5F).
const skippableMagicBase = 0x184D2A50

// ErrNotZstd reports a missing frame magic.
var ErrNotZstd = errors.New("zstdx: not a Zstandard frame")

// ErrCorrupt reports malformed frame content. Test with errors.Is.
var ErrCorrupt = errors.New("zstdx: corrupt input")

// ErrChecksum reports a failed xxHash64 content-checksum verification.
var ErrChecksum = errors.New("zstdx: checksum mismatch")

func errCorrupt(detail string) error { return fmt.Errorf("%w: %s", ErrCorrupt, detail) }

// frameHeader is the parsed fixed part of one frame (§3.1.1.1).
type frameHeader struct {
	headerLen     int
	contentSize   int64 // -1 when the header omits it
	windowSize    int64
	dictID        uint32
	hasChecksum   bool
	singleSegment bool
}

func parseFrameHeader(data []byte) (frameHeader, error) {
	var h frameHeader
	if len(data) < 5 {
		return h, ErrNotZstd
	}
	if binary.LittleEndian.Uint32(data) != FrameMagic {
		return h, ErrNotZstd
	}
	fhd := data[4]
	if fhd&(1<<3) != 0 {
		return h, errCorrupt("reserved frame header bit set")
	}
	h.singleSegment = fhd&(1<<5) != 0
	h.hasChecksum = fhd&(1<<2) != 0
	fcsFlag := int(fhd >> 6)
	didFlag := int(fhd & 3)
	p := 5
	if !h.singleSegment {
		if len(data) < p+1 {
			return h, errCorrupt("truncated window descriptor")
		}
		wd := data[p]
		p++
		windowBase := int64(1) << (10 + wd>>3)
		h.windowSize = windowBase + windowBase/8*int64(wd&7)
	}
	didLen := [4]int{0, 1, 2, 4}[didFlag]
	if len(data) < p+didLen {
		return h, errCorrupt("truncated dictionary ID")
	}
	for i := 0; i < didLen; i++ {
		h.dictID |= uint32(data[p+i]) << (8 * i)
	}
	p += didLen
	fcsLen := [4]int{0, 2, 4, 8}[fcsFlag]
	if fcsFlag == 0 && h.singleSegment {
		fcsLen = 1
	}
	if len(data) < p+fcsLen {
		return h, errCorrupt("truncated frame content size")
	}
	switch fcsLen {
	case 0:
		h.contentSize = -1
	case 1:
		h.contentSize = int64(data[p])
	case 2:
		h.contentSize = int64(binary.LittleEndian.Uint16(data[p:])) + 256
	case 4:
		h.contentSize = int64(binary.LittleEndian.Uint32(data[p:]))
	case 8:
		u := binary.LittleEndian.Uint64(data[p:])
		if u > 1<<62 {
			return h, errCorrupt("absurd frame content size")
		}
		h.contentSize = int64(u)
	}
	p += fcsLen
	if h.singleSegment {
		h.windowSize = h.contentSize
	}
	h.headerLen = p
	return h, nil
}

// skipBlocks walks the block chain of one frame without decoding,
// returning the offset just past the last block.
func skipBlocks(data []byte, p int) (int, error) {
	for {
		if p+3 > len(data) {
			return 0, errCorrupt("truncated block header")
		}
		bh := uint32(data[p]) | uint32(data[p+1])<<8 | uint32(data[p+2])<<16
		p += 3
		last := bh&1 != 0
		btype := bh >> 1 & 3
		bsize := int(bh >> 3)
		switch btype {
		case 0, 2: // raw, compressed: payload is bsize bytes
			p += bsize
		case 1: // RLE: one byte regenerates bsize
			p++
		default:
			return 0, errCorrupt("reserved block type")
		}
		if p > len(data) {
			return 0, errCorrupt("truncated block payload")
		}
		if last {
			return p, nil
		}
	}
}

// FrameInfo locates one data frame inside a (possibly multi-frame,
// possibly skippable-frame-interleaved) Zstandard file. Fields are
// int64: the scan also runs over positional readers, where offsets are
// not bounded by a slice length (files can exceed 2 GiB on 32-bit
// platforms).
type FrameInfo struct {
	// Offset is the byte position of the frame magic; End is just past
	// the frame (including any content checksum).
	Offset, End int64
	// ContentSize is the declared decompressed size, or -1 when the
	// frame header omits it (sized on open by a sequential decode).
	ContentSize int64
	// ContentStart is the decompressed offset of this frame's content.
	ContentStart int64
	// HasChecksum reports a trailing xxHash64 content checksum.
	HasChecksum bool
}

// ScanResult is the outcome of the planning pass over a file.
type ScanResult struct {
	Frames []FrameInfo
	// Skippable counts skippable frames (they carry no content).
	Skippable int
	// Sized reports that every frame declares its content size, the
	// precondition for parallel decode and metadata-only ReadAt plans.
	Sized bool
}

// ScanFramesReader is ScanFrames over a positional reader: frame and
// block headers are parsed through a small refill window and block
// payloads (plus skippable frames) are skipped without reading them,
// so sizing a multi-gigabyte file touches only its metadata bytes.
// Memory-backed sources take the zero-copy whole-buffer path.
func ScanFramesReader(src filereader.FileReader) (ScanResult, error) {
	if data, ok := filereader.Bytes(src); ok {
		return ScanFrames(data)
	}
	w := filereader.NewWalker(src, 0)
	res := ScanResult{Sized: true}
	var contentPos int64
	for w.Remaining() > 0 {
		pos := w.Pos()
		if w.Remaining() >= 8 {
			b, err := w.Peek(8)
			if err != nil {
				return res, err
			}
			if binary.LittleEndian.Uint32(b)&^0xF == skippableMagicBase {
				w.Skip(8 + int64(binary.LittleEndian.Uint32(b[4:])))
				if w.Remaining() < 0 {
					return res, errCorrupt("truncated skippable frame")
				}
				res.Skippable++
				continue
			}
		}
		// The fixed header is at most 18 bytes (magic, FHD, window
		// descriptor, 4-byte dict ID, 8-byte content size); peek what
		// the file still has and let the parser report truncation.
		hdrLen := int64(18)
		if hdrLen > w.Remaining() {
			hdrLen = w.Remaining()
		}
		hdr, err := w.Peek(int(hdrLen))
		if err != nil {
			return res, fmt.Errorf("frame %d at offset %d: %w", len(res.Frames), pos, err)
		}
		h, err := parseFrameHeader(hdr)
		if err != nil {
			return res, fmt.Errorf("frame %d at offset %d: %w", len(res.Frames), pos, err)
		}
		w.Skip(int64(h.headerLen))
		for {
			bh3, err := w.Next(3)
			if err != nil {
				// A pread failure is a storage problem, not corrupt data:
				// pass it through with its filereader.ErrIO mark intact and
				// reserve ErrCorrupt for genuine truncation.
				if errors.Is(err, filereader.ErrIO) {
					return res, fmt.Errorf("block header at offset %d: %w", w.Pos(), err)
				}
				return res, fmt.Errorf("%w: truncated block header: %w", ErrCorrupt, err)
			}
			bh := uint32(bh3[0]) | uint32(bh3[1])<<8 | uint32(bh3[2])<<16
			switch bh >> 1 & 3 {
			case 0, 2: // raw, compressed: payload is bsize bytes
				w.Skip(int64(bh >> 3))
			case 1: // RLE: one byte regenerates bsize
				w.Skip(1)
			default:
				return res, errCorrupt("reserved block type")
			}
			if w.Remaining() < 0 {
				return res, errCorrupt("truncated block payload")
			}
			if bh&1 != 0 {
				break
			}
		}
		if h.hasChecksum {
			w.Skip(4)
			if w.Remaining() < 0 {
				return res, errCorrupt("truncated content checksum")
			}
		}
		end := w.Pos()
		// Same forged-header bound as the in-memory scan: an RLE block
		// is the densest construct, 4 bytes regenerating 128 KiB.
		if h.contentSize > (end-pos)*(maxBlockSize/4)+maxBlockSize {
			return res, errCorrupt("declared content size exceeds maximum expansion")
		}
		f := FrameInfo{
			Offset:      pos,
			End:         end,
			ContentSize: h.contentSize,
			HasChecksum: h.hasChecksum,
		}
		if h.contentSize < 0 || !res.Sized {
			res.Sized = false
			f.ContentStart = -1
			if h.contentSize < 0 {
				f.ContentSize = -1
			}
		} else {
			f.ContentStart = contentPos
			contentPos += h.contentSize
		}
		res.Frames = append(res.Frames, f)
	}
	return res, nil
}

// ScanFrames walks a Zstandard file without decompressing: frame
// headers plus per-block size fields locate every frame boundary, and
// frames that carry Frame_Content_Size yield their decompressed
// extents for free — the §4.9 "trivially parallelizable" metadata.
func ScanFrames(data []byte) (ScanResult, error) {
	res := ScanResult{Sized: true}
	pos, contentPos := 0, 0
	for pos < len(data) {
		if len(data)-pos >= 8 {
			magic := binary.LittleEndian.Uint32(data[pos:])
			if magic&^0xF == skippableMagicBase {
				size := int(binary.LittleEndian.Uint32(data[pos+4:]))
				if pos+8+size > len(data) {
					return res, errCorrupt("truncated skippable frame")
				}
				pos += 8 + size
				res.Skippable++
				continue
			}
		}
		h, err := parseFrameHeader(data[pos:])
		if err != nil {
			return res, fmt.Errorf("frame %d at offset %d: %w", len(res.Frames), pos, err)
		}
		end, err := skipBlocks(data[pos:], h.headerLen)
		if err != nil {
			return res, fmt.Errorf("frame %d at offset %d: %w", len(res.Frames), pos, err)
		}
		if h.hasChecksum {
			end += 4
			if pos+end > len(data) {
				return res, errCorrupt("truncated content checksum")
			}
		}
		// An RLE block is the format's densest construct: 4 bytes
		// regenerate at most 128 KiB. A declared size beyond that bound
		// is a forged header — reject it before anyone allocates for it.
		if h.contentSize > int64(end)*(maxBlockSize/4)+maxBlockSize {
			return res, errCorrupt("declared content size exceeds maximum expansion")
		}
		f := FrameInfo{
			Offset:      int64(pos),
			End:         int64(pos + end),
			ContentSize: h.contentSize,
			HasChecksum: h.hasChecksum,
		}
		if h.contentSize < 0 || !res.Sized {
			res.Sized = false
			f.ContentStart = -1
			if h.contentSize < 0 {
				f.ContentSize = -1
			}
		} else {
			f.ContentStart = int64(contentPos)
			contentPos += int(h.contentSize)
		}
		res.Frames = append(res.Frames, f)
		pos += end
	}
	return res, nil
}

// decodeFrame inflates the frame starting at data[0], verifying the
// content checksum when present. The frame must have been located by
// ScanFrames (data spans exactly one frame).
func decodeFrame(data []byte) ([]byte, error) {
	h, err := parseFrameHeader(data)
	if err != nil {
		return nil, err
	}
	if h.dictID != 0 {
		return nil, fmt.Errorf("zstdx: frame requires dictionary %#x (dictionaries unsupported)", h.dictID)
	}
	var out []byte
	if h.contentSize > 0 {
		// Eager capacity is a hint, not a trusted value: cap it so a
		// forged header cannot allocate ahead of the decode validating.
		out = make([]byte, 0, min(h.contentSize, 32<<20))
	}
	d := newFrameDecoder()
	p := h.headerLen
	for {
		if p+3 > len(data) {
			return nil, errCorrupt("truncated block header")
		}
		bh := uint32(data[p]) | uint32(data[p+1])<<8 | uint32(data[p+2])<<16
		p += 3
		last := bh&1 != 0
		btype := bh >> 1 & 3
		bsize := int(bh >> 3)
		switch btype {
		case 0:
			if p+bsize > len(data) {
				return nil, errCorrupt("truncated raw block")
			}
			out = append(out, data[p:p+bsize]...)
			p += bsize
		case 1:
			if p >= len(data) || bsize > maxBlockSize {
				return nil, errCorrupt("bad RLE block")
			}
			b := data[p]
			p++
			out = append(out, make([]byte, bsize)...)
			tail := out[len(out)-bsize:]
			for i := range tail {
				tail[i] = b
			}
		case 2:
			if p+bsize > len(data) {
				return nil, errCorrupt("truncated compressed block")
			}
			out, err = d.decodeBlock(data[p:p+bsize], out)
			if err != nil {
				return nil, err
			}
			p += bsize
		default:
			return nil, errCorrupt("reserved block type")
		}
		if last {
			break
		}
	}
	if h.hasChecksum {
		if p+4 > len(data) {
			return nil, errCorrupt("truncated content checksum")
		}
		if uint32(xxhash.Sum64(out, 0)) != binary.LittleEndian.Uint32(data[p:]) {
			return nil, ErrChecksum
		}
	}
	if h.contentSize >= 0 && int64(len(out)) != h.contentSize {
		return nil, fmt.Errorf("%w: frame decoded %d bytes, header declared %d", ErrCorrupt, len(out), h.contentSize)
	}
	return out, nil
}

// Decompress inflates a (possibly multi-frame) Zstandard file
// serially, concatenating frame contents like `zstd -d`.
func Decompress(data []byte) ([]byte, error) {
	scan, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	var out []byte
	if scan.Sized {
		total := int64(0)
		for _, f := range scan.Frames {
			total += int64(f.ContentSize)
		}
		out = make([]byte, 0, min(total, 64<<20))
	}
	for i, f := range scan.Frames {
		content, err := decodeFrame(data[f.Offset:f.End])
		if err != nil {
			return nil, fmt.Errorf("zstdx: frame %d: %w", i, err)
		}
		out = append(out, content...)
	}
	return out, nil
}
