package zstdx

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/pool"
)

// DecompressParallel inflates a multi-frame Zstandard file with
// frame-level parallelism — the paper's §4.9 pzstd case: frame
// metadata alone yields independent work units, so frames decode into
// disjoint slices of one allocation. Files whose frames omit the
// content size cannot be planned this way and fall back to the serial
// path.
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	scan, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	if !scan.Sized || threads < 2 || len(scan.Frames) < 2 {
		return Decompress(data)
	}
	total := 0
	for _, f := range scan.Frames {
		total += f.ContentSize
	}
	out := make([]byte, total)
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[struct{}], len(scan.Frames))
	for i, f := range scan.Frames {
		futs[i] = pool.Go(p, func() (struct{}, error) {
			content, err := decodeFrame(data[f.Offset:f.End])
			if err == nil {
				copy(out[f.ContentStart:f.ContentStart+f.ContentSize], content)
			}
			return struct{}{}, err
		})
	}
	for i, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			return nil, fmt.Errorf("zstdx: frame %d: %w", i, err)
		}
	}
	return out, nil
}

// Reader provides checkpointed random access into a (possibly
// multi-frame) Zstandard file. The frame table from ScanFrames is the
// checkpoint database; when every frame declares its content size the
// table is complete without decoding anything — the metadata fast path
// of §4.9 — and otherwise a sequential sizing pass decodes each
// unsized frame once on open (their contents prime the cache). ReadAt
// then inflates only the frames overlapping the request, keeping
// recent frame outputs in a small LRU span cache.
//
// All methods are safe for concurrent use.
type Reader struct {
	data      []byte
	frames    []FrameInfo
	size      int64
	threads   int
	sized     bool
	checked   bool // every data frame carries a content checksum
	skippable int

	mu    sync.Mutex
	cache *cache.Cache[int, []byte] // frame index -> decompressed content
}

// NewReader scans data and returns a random-access reader. Frames
// without a content size force a sequential sizing decode here, and
// demote the Sized (parallel-plannable) capability.
func NewReader(data []byte, threads int) (*Reader, error) {
	scan, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = 1
	}
	r := &Reader{
		data:      data,
		frames:    scan.Frames,
		threads:   threads,
		sized:     scan.Sized,
		checked:   len(scan.Frames) > 0,
		skippable: scan.Skippable,
		cache:     cache.NewLRUCache[int, []byte](max(2*threads, 4)),
	}
	for _, f := range scan.Frames {
		if !f.HasChecksum {
			r.checked = false
		}
	}
	if !r.sized {
		// Sizing pass: decode every unsized frame once to pin down the
		// decompressed extents; contents land in the LRU so small files
		// do not pay twice.
		contentPos := 0
		for i := range r.frames {
			f := &r.frames[i]
			f.ContentStart = contentPos
			if f.ContentSize < 0 {
				content, err := decodeFrame(data[f.Offset:f.End])
				if err != nil {
					return nil, fmt.Errorf("zstdx: sizing frame %d: %w", i, err)
				}
				f.ContentSize = len(content)
				r.cache.Put(i, content)
			}
			contentPos += f.ContentSize
		}
	}
	for _, f := range r.frames {
		r.size += int64(f.ContentSize)
	}
	return r, nil
}

// Size returns the total decompressed size.
func (r *Reader) Size() int64 { return r.size }

// NumFrames returns the number of checkpoints (data frames).
func (r *Reader) NumFrames() int { return len(r.frames) }

// NumSkippable returns the count of skippable frames the scan ignored.
func (r *Reader) NumSkippable() int { return r.skippable }

// Sized reports whether every frame header declared its content size,
// i.e. whether the checkpoint table came from metadata alone. Unsized
// files still read correctly but cost a sequential decode on open, so
// consumers should not advertise them as parallel or random-access.
func (r *Reader) Sized() bool { return r.sized }

// Checksummed reports whether every data frame carries an xxHash64
// content checksum, i.e. whether every decode verifies integrity.
func (r *Reader) Checksummed() bool { return r.checked }

// frameContent returns the decompressed content of frame i, serving it
// from the LRU cache when possible. The decode runs outside the lock
// so concurrent reads of different frames overlap on multiple cores;
// two goroutines racing on the same frame duplicate work, not results.
func (r *Reader) frameContent(i int) ([]byte, error) {
	r.mu.Lock()
	if out, ok := r.cache.Get(i); ok {
		r.mu.Unlock()
		return out, nil
	}
	r.mu.Unlock()
	f := r.frames[i]
	out, err := decodeFrame(r.data[f.Offset:f.End])
	if err != nil {
		return nil, fmt.Errorf("zstdx: frame %d: %w", i, err)
	}
	if len(out) != f.ContentSize {
		return nil, fmt.Errorf("%w: frame %d decoded %d bytes, expected %d", ErrCorrupt, i, len(out), f.ContentSize)
	}
	r.mu.Lock()
	r.cache.Put(i, out)
	r.mu.Unlock()
	return out, nil
}

// NumChunks, ChunkExtent and ChunkContent expose the checkpoint table
// generically (one chunk = one frame), so a consumer can pipeline
// ordered sequential reads with parallel decodes.
func (r *Reader) NumChunks() int { return len(r.frames) }

// ChunkExtent returns the decompressed offset and size of chunk i.
func (r *Reader) ChunkExtent(i int) (off, size int64) {
	return int64(r.frames[i].ContentStart), int64(r.frames[i].ContentSize)
}

// ChunkContent returns the decompressed content of chunk i. The
// returned slice is shared with the cache and must not be modified.
func (r *Reader) ChunkContent(i int) ([]byte, error) { return r.frameContent(i) }

// ReadAt implements io.ReaderAt over the decompressed stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("zstdx: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		if off >= r.size {
			return n, io.EOF
		}
		// Last frame starting at or before off; frames with zero
		// content never cover an offset, so skip past them.
		i := sort.Search(len(r.frames), func(i int) bool {
			return int64(r.frames[i].ContentStart) > off
		}) - 1
		for i < len(r.frames) && int64(r.frames[i].ContentStart+r.frames[i].ContentSize) <= off {
			i++
		}
		if i < 0 || i >= len(r.frames) {
			return n, io.EOF
		}
		out, err := r.frameContent(i)
		if err != nil {
			return n, err
		}
		within := off - int64(r.frames[i].ContentStart)
		c := copy(p[n:], out[within:])
		n += c
		off += int64(c)
	}
	return n, nil
}
