package zstdx

import (
	"fmt"

	"repro/internal/filereader"
	"repro/internal/pool"
	"repro/internal/spanengine"
)

// FormatTag identifies Zstandard checkpoint tables in persisted
// indexes.
const FormatTag = "zstd"

// Codec capability flags persisted alongside the checkpoint table.
const (
	// FlagChecksummed marks files whose every data frame carries an
	// xxHash64 content checksum, i.e. every decode verifies integrity.
	FlagChecksummed uint8 = 1 << 0
	// FlagMetadataSized marks files whose every frame header declared
	// its content size — the checkpoint table came from metadata alone
	// (§4.9's trivially parallelizable shape).
	FlagMetadataSized uint8 = 1 << 1
)

// DecompressParallel inflates a multi-frame Zstandard file with
// frame-level parallelism — the paper's §4.9 pzstd case: frame
// metadata alone yields independent work units, so frames decode into
// disjoint slices of one allocation. Files whose frames omit the
// content size cannot be planned this way and fall back to the serial
// path.
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	scan, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	if !scan.Sized || threads < 2 || len(scan.Frames) < 2 {
		return Decompress(data)
	}
	var total int64
	for _, f := range scan.Frames {
		total += f.ContentSize
	}
	out := make([]byte, total)
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[struct{}], len(scan.Frames))
	for i, f := range scan.Frames {
		futs[i] = pool.Go(p, func() (struct{}, error) {
			content, err := decodeFrame(data[f.Offset:f.End])
			if err == nil {
				copy(out[f.ContentStart:f.ContentStart+f.ContentSize], content)
			}
			return struct{}{}, err
		})
	}
	for i, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			return nil, fmt.Errorf("zstdx: frame %d: %w", i, err)
		}
	}
	return out, nil
}

// Codec is the Zstandard half of the shared span engine. When every
// frame declares its content size, Scan is a pure header-and-block
// walk (zero sizing decodes — the §4.9 metadata fast path); frames
// without one force a sequential sizing decode, whose outputs prime
// the engine cache so small files do not pay twice.
type Codec struct {
	// Skippable is set by Scan: the count of skippable frames the scan
	// ignored (they carry no content).
	Skippable int
}

// FormatTag implements spanengine.Codec.
func (*Codec) FormatTag() string { return FormatTag }

// Scan implements spanengine.Codec via ScanFramesReader (a windowed
// header walk that never reads block payloads) plus a sizing decode
// for every frame that omits its content size.
func (c *Codec) Scan(src filereader.FileReader) (spanengine.ScanResult, error) {
	scan, err := ScanFramesReader(src)
	if err != nil {
		return spanengine.ScanResult{}, err
	}
	c.Skippable = scan.Skippable
	res := spanengine.ScanResult{}
	if scan.Sized {
		res.Flags |= FlagMetadataSized
	}
	if len(scan.Frames) > 0 {
		res.Flags |= FlagChecksummed
	}
	for _, f := range scan.Frames {
		if !f.HasChecksum {
			res.Flags &^= FlagChecksummed
		}
	}
	var decomp int64
	for i, f := range scan.Frames {
		size := f.ContentSize
		if f.ContentSize < 0 {
			// Sizing pass: decode the unsized frame once to pin down its
			// decompressed extent, handing the content to the engine so
			// it lands in the span cache.
			ext, release, err := filereader.Extent(src, f.Offset, f.End)
			if err != nil {
				return spanengine.ScanResult{}, err
			}
			content, err := decodeFrame(ext)
			release()
			if err != nil {
				return spanengine.ScanResult{}, fmt.Errorf("zstdx: sizing frame %d: %w", i, err)
			}
			size = int64(len(content))
			res.SizingDecodes++
			if res.Primed == nil {
				res.Primed = map[int][]byte{}
			}
			res.Primed[i] = content
		}
		res.Spans = append(res.Spans, spanengine.Span{
			CompOff:    f.Offset,
			CompEnd:    f.End,
			DecompOff:  decomp,
			DecompSize: size,
		})
		decomp += size
	}
	return res, nil
}

// DecodeSpan implements spanengine.Codec: one span is one data frame,
// read with one pread of its compressed extent and verified against
// its content checksum when present. (The engine checks the decoded
// length against the table.)
func (*Codec) DecodeSpan(src filereader.FileReader, s spanengine.Span) ([]byte, error) {
	ext, release, err := filereader.Extent(src, s.CompOff, s.CompEnd)
	if err != nil {
		return nil, err
	}
	defer release()
	out, err := decodeFrame(ext)
	if err != nil {
		return nil, fmt.Errorf("zstdx: frame at offset %d: %w", s.CompOff, err)
	}
	return out, nil
}

// Reader provides checkpointed random access into a (possibly
// multi-frame) Zstandard file, served by the shared span engine. The
// frame table from ScanFrames is the checkpoint database; when every
// frame declares its content size the table is complete without
// decoding anything — the metadata fast path of §4.9 — and otherwise a
// sequential sizing pass decodes each unsized frame once on open
// (their contents prime the cache). A reader built from a persisted
// checkpoint table skips even that: the index already carries every
// extent, so unsized files become seekable and parallel on reopen.
//
// All methods are safe for concurrent use.
type Reader struct {
	eng       *spanengine.Engine
	skippable int
	fromIndex bool
}

// NewReader scans data and returns a random-access reader. Frames
// without a content size force a sequential sizing decode here, and
// demote the Sized (parallel-plannable) capability.
func NewReader(data []byte, threads int) (*Reader, error) {
	return NewReaderConfig(filereader.MemoryReader(data), spanengine.Config{Threads: threads})
}

// NewReaderConfig is NewReader with full engine tuning (cache size,
// prefetch depth, strategy), over any positional source — an open file
// serves random access with only headers read at open (plus sizing
// decodes for unsized frames) and one frame extent per decode.
func NewReaderConfig(src filereader.FileReader, cfg spanengine.Config) (*Reader, error) {
	codec := &Codec{}
	eng, err := spanengine.New(src, codec, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng, skippable: codec.Skippable}, nil
}

// NewReaderFromCheckpoints builds a reader from a persisted checkpoint
// table, skipping the scan (and any sizing decodes) entirely.
func NewReaderFromCheckpoints(src filereader.FileReader, spans []spanengine.Span, flags uint8, cfg spanengine.Config) (*Reader, error) {
	eng, err := spanengine.NewFromCheckpoints(src, &Codec{}, spans, flags, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng, fromIndex: true}, nil
}

// Engine exposes the underlying span engine (stats, checkpoint export).
func (r *Reader) Engine() *spanengine.Engine { return r.eng }

// Close releases the engine's prefetch workers.
func (r *Reader) Close() error { return r.eng.Close() }

// Size returns the total decompressed size.
func (r *Reader) Size() int64 { return r.eng.Size() }

// NumFrames returns the number of checkpoints (data frames).
func (r *Reader) NumFrames() int { return r.eng.NumSpans() }

// NumSkippable returns the count of skippable frames the scan ignored.
// Readers built from a persisted checkpoint table never scanned and
// report zero.
func (r *Reader) NumSkippable() int { return r.skippable }

// Sized reports whether the checkpoint table is complete metadata: every
// frame header declared its content size, or the table was imported
// from an index (which stores every extent). Files that are not Sized
// still read correctly but cost a sequential decode on open, so
// consumers should not advertise them as parallel or random-access.
func (r *Reader) Sized() bool { return r.fromIndex || r.eng.Flags()&FlagMetadataSized != 0 }

// Checksummed reports whether every data frame carries an xxHash64
// content checksum, i.e. whether every decode verifies integrity.
func (r *Reader) Checksummed() bool { return r.eng.Flags()&FlagChecksummed != 0 }

// NumChunks, ChunkExtent and ChunkContent expose the checkpoint table
// generically (one chunk = one frame), so a consumer can pipeline
// ordered sequential reads with parallel decodes.
func (r *Reader) NumChunks() int { return r.eng.NumSpans() }

// ChunkExtent returns the decompressed offset and size of chunk i.
func (r *Reader) ChunkExtent(i int) (off, size int64) { return r.eng.SpanExtent(i) }

// ChunkContent returns the decompressed content of chunk i. The
// returned slice is shared with the engine's cache and must not be
// modified.
func (r *Reader) ChunkContent(i int) ([]byte, error) { return r.eng.SpanContent(i) }

// ReadAt implements io.ReaderAt over the decompressed stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) { return r.eng.ReadAt(p, off) }
