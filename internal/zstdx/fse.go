package zstdx

import "math/bits"

// fseEntry is one cell of an FSE decoding table: emitting symbol, then
// consuming nbBits to move to newState+bits.
type fseEntry struct {
	symbol   uint8
	nbBits   uint8
	newState uint16
}

type fseTable struct {
	log     int
	entries []fseEntry
}

// buildFSETable constructs the decoding table for normalized counts
// (probabilities over 1<<log cells; -1 marks a less-than-one symbol
// that gets a single cell at the high end of the table).
func buildFSETable(probs []int16, log int) (*fseTable, error) {
	size := 1 << log
	t := &fseTable{log: log, entries: make([]fseEntry, size)}
	symbols := make([]uint8, size)
	next := make([]uint16, len(probs))
	high := size - 1
	for s, p := range probs {
		if p == -1 {
			if high < 0 {
				return nil, errCorrupt("FSE low-prob symbols overflow table")
			}
			symbols[high] = uint8(s)
			high--
			next[s] = 1
		} else {
			next[s] = uint16(p)
		}
	}
	step := size>>1 + size>>3 + 3
	mask := size - 1
	pos := 0
	for s, p := range probs {
		for i := 0; i < int(p); i++ {
			symbols[pos] = uint8(s)
			pos = (pos + step) & mask
			for pos > high {
				pos = (pos + step) & mask
			}
		}
	}
	if pos != 0 {
		return nil, errCorrupt("FSE spread did not close")
	}
	for i := 0; i < size; i++ {
		s := symbols[i]
		x := next[s]
		next[s]++
		nb := log - (bits.Len16(x) - 1)
		t.entries[i] = fseEntry{symbol: s, nbBits: uint8(nb), newState: uint16(int(x)<<nb - size)}
	}
	return t, nil
}

// rleFSETable is the degenerate table the RLE compression mode selects:
// a single zero-bit state that always emits sym.
func rleFSETable(sym uint8) *fseTable {
	return &fseTable{log: 0, entries: []fseEntry{{symbol: sym}}}
}

// readFSETableDesc parses an FSE table description (RFC 8878 §4.1.1)
// from the start of data, returning the table and the byte-aligned
// length consumed.
func readFSETableDesc(data []byte, maxLog, maxSymbols int) (*fseTable, int, error) {
	br := &fwdBitReader{data: data}
	al, ok := br.read(4)
	if !ok {
		return nil, 0, errCorrupt("truncated FSE table")
	}
	log := int(al) + 5
	if log > maxLog {
		return nil, 0, errCorrupt("FSE accuracy log too large")
	}
	cells := 1 << log
	var probs []int16
	for cells > 0 && len(probs) < maxSymbols {
		// Probabilities in [-1, cells] need cells+2 values; the short
		// codes (one bit less) cover the gap up to the next power of 2.
		nb := bits.Len32(uint32(cells + 1))
		v, ok := br.read(nb)
		if !ok {
			return nil, 0, errCorrupt("truncated FSE table")
		}
		lowMask := uint32(1)<<(nb-1) - 1
		short := uint32(1)<<nb - 1 - uint32(cells+1)
		if v&lowMask < short {
			br.rewind(1)
			v &= lowMask
		} else if v > lowMask {
			v -= short
		}
		p := int16(v) - 1
		probs = append(probs, p)
		if p < 0 {
			cells--
		} else {
			cells -= int(p)
		}
		if cells < 0 {
			return nil, 0, errCorrupt("FSE probabilities exceed table")
		}
		if p == 0 {
			for {
				rep, ok := br.read(2)
				if !ok {
					return nil, 0, errCorrupt("truncated FSE zero run")
				}
				for i := uint32(0); i < rep; i++ {
					probs = append(probs, 0)
				}
				if rep != 3 {
					break
				}
			}
		}
	}
	if cells != 0 {
		return nil, 0, errCorrupt("FSE probabilities do not fill table")
	}
	if len(probs) > maxSymbols {
		return nil, 0, errCorrupt("too many FSE symbols")
	}
	t, err := buildFSETable(probs, log)
	if err != nil {
		return nil, 0, err
	}
	return t, br.bytesConsumed(), nil
}

// --- sequence code value tables (RFC 8878 §3.1.1.3.2.1) -------------------

type codeExtra struct {
	baseline uint32
	bits     uint8
}

func fillExtra(dst []codeExtra, base uint32, extra ...uint8) {
	for i, b := range extra {
		dst[i] = codeExtra{baseline: base, bits: b}
		base += 1 << b
	}
}

// The code tables are built by variable initializers (not init
// functions) so dependent package variables — the encoder's reverse
// lookup tables — are ordered after them.
var llCodeTable = func() []codeExtra {
	t := make([]codeExtra, 36)
	for i := 0; i < 16; i++ {
		t[i] = codeExtra{baseline: uint32(i)}
	}
	fillExtra(t[16:], 16, 1, 1, 1, 1, 2, 2, 3, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
	return t
}()

var mlCodeTable = func() []codeExtra {
	t := make([]codeExtra, 53)
	for i := 0; i < 32; i++ {
		t[i] = codeExtra{baseline: uint32(i) + 3}
	}
	fillExtra(t[32:], 35, 1, 1, 1, 1, 2, 2, 3, 3, 4, 4, 5, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
	return t
}()

var ofCodeTable = func() []codeExtra {
	t := make([]codeExtra, 32)
	for i := range t {
		t[i] = codeExtra{baseline: 1 << i, bits: uint8(i)}
	}
	return t
}()

// Predefined FSE distributions (RFC 8878 §3.1.1.3.2.2).
var (
	llPredefProbs = []int16{4, 3, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1,
		2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 2, 1, 1, 1, 1, 1,
		-1, -1, -1, -1}
	mlPredefProbs = []int16{1, 4, 3, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1,
		1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
		1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, -1, -1,
		-1, -1, -1, -1, -1}
	ofPredefProbs = []int16{1, 1, 1, 1, 1, 1, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1,
		1, 1, 1, 1, 1, 1, 1, 1, -1, -1, -1, -1, -1}

	llPredefTable, mlPredefTable, ofPredefTable *fseTable
)

const (
	llMaxLog = 9
	ofMaxLog = 8
	mlMaxLog = 9
)

func init() {
	var err error
	if llPredefTable, err = buildFSETable(llPredefProbs, 6); err != nil {
		panic(err)
	}
	if mlPredefTable, err = buildFSETable(mlPredefProbs, 6); err != nil {
		panic(err)
	}
	if ofPredefTable, err = buildFSETable(ofPredefProbs, 5); err != nil {
		panic(err)
	}
}
