package zstdx

import (
	"encoding/binary"
	"math/bits"
)

// maxHuffBits is the format's limit on Huffman code lengths (§4.2.1).
const maxHuffBits = 11

type huffEntry struct {
	symbol uint8
	nbBits uint8
}

// huffTable is a single-level Huffman decoding table of 1<<maxBits
// cells, plus the canonical code of every symbol for the encoder.
type huffTable struct {
	maxBits int
	entries []huffEntry
	codes   [256]uint16
	lens    [256]uint8
}

// buildHuffTable builds the table from complete weights (the implied
// last weight already appended). Weight w>0 means a code of
// maxBits+1-w bits; cells are filled by ascending weight, symbols in
// natural order within a weight — the canonical zstd assignment.
func buildHuffTable(weights []uint8) (*huffTable, error) {
	if len(weights) > 256 {
		return nil, errCorrupt("more than 256 Huffman symbols")
	}
	total := 0
	var rank [maxHuffBits + 2]int
	for _, w := range weights {
		if w > maxHuffBits {
			return nil, errCorrupt("Huffman weight too large")
		}
		if w > 0 {
			total += 1 << (w - 1)
			rank[w]++
		}
	}
	if total == 0 || total&(total-1) != 0 {
		return nil, errCorrupt("Huffman weights do not sum to a power of two")
	}
	maxBits := bits.Len(uint(total)) - 1
	if maxBits > maxHuffBits {
		return nil, errCorrupt("Huffman table log too large")
	}
	if rank[1] < 2 || rank[1]&1 != 0 {
		return nil, errCorrupt("Huffman weight-one count must be even and at least 2")
	}
	t := &huffTable{maxBits: maxBits, entries: make([]huffEntry, total)}
	// Starting cell for each weight: all lighter weights come first.
	var start [maxHuffBits + 2]int
	pos := 0
	for w := 1; w <= maxBits; w++ {
		start[w] = pos
		pos += rank[w] << (w - 1)
	}
	for s, w := range weights {
		if w == 0 {
			continue
		}
		span := 1 << (w - 1)
		nb := uint8(maxBits + 1 - int(w))
		e := huffEntry{symbol: uint8(s), nbBits: nb}
		for i := start[w]; i < start[w]+span; i++ {
			t.entries[i] = e
		}
		t.codes[s] = uint16(start[w] >> (maxBits - int(nb)))
		t.lens[s] = nb
		start[w] += span
	}
	return t, nil
}

// completeWeights reconstructs the implied last weight (§4.2.1: the
// total must complete to a power of two) and returns the full set.
func completeWeights(explicit []uint8) ([]uint8, error) {
	total := 0
	for _, w := range explicit {
		if w > maxHuffBits {
			return nil, errCorrupt("Huffman weight too large")
		}
		if w > 0 {
			total += 1 << (w - 1)
		}
	}
	if total == 0 {
		return nil, errCorrupt("Huffman weights all zero")
	}
	tableLog := bits.Len(uint(total))
	if tableLog > maxHuffBits {
		return nil, errCorrupt("Huffman table log too large")
	}
	rest := 1<<tableLog - total
	if rest&(rest-1) != 0 {
		return nil, errCorrupt("implied Huffman weight not a power of two")
	}
	last := uint8(bits.Len(uint(rest)))
	return append(append([]uint8{}, explicit...), last), nil
}

// readHuffTable parses a Huffman tree description (direct 4-bit
// weights, or FSE-compressed with two interleaved states) and returns
// the decoding table plus bytes consumed.
func readHuffTable(data []byte) (*huffTable, int, error) {
	if len(data) < 1 {
		return nil, 0, errCorrupt("missing Huffman tree header")
	}
	hb := int(data[0])
	var explicit []uint8
	var consumed int
	if hb >= 128 {
		num := hb - 127
		nBytes := (num + 1) / 2
		if len(data) < 1+nBytes {
			return nil, 0, errCorrupt("truncated direct Huffman weights")
		}
		explicit = make([]uint8, num)
		for i := 0; i < num; i++ {
			v := data[1+i/2]
			if i%2 == 0 {
				explicit[i] = v >> 4
			} else {
				explicit[i] = v & 15
			}
		}
		consumed = 1 + nBytes
	} else {
		if len(data) < 1+hb {
			return nil, 0, errCorrupt("truncated FSE Huffman weights")
		}
		var err error
		explicit, err = readFSEWeights(data[1 : 1+hb])
		if err != nil {
			return nil, 0, err
		}
		consumed = 1 + hb
	}
	weights, err := completeWeights(explicit)
	if err != nil {
		return nil, 0, err
	}
	t, err := buildHuffTable(weights)
	if err != nil {
		return nil, 0, err
	}
	return t, consumed, nil
}

// readFSEWeights decodes FSE-compressed Huffman weights: a table
// description followed by a backward bitstream with two interleaved
// states, drained until the stream is exhausted (§4.2.1.2).
func readFSEWeights(data []byte) ([]uint8, error) {
	table, n, err := readFSETableDesc(data, 6, 256)
	if err != nil {
		return nil, err
	}
	br, err := newRevBitReader(data[n:])
	if err != nil {
		return nil, err
	}
	s1 := br.read(table.log)
	s2 := br.read(table.log)
	if br.overflowed() {
		return nil, errCorrupt("FSE weight stream too short")
	}
	var weights []uint8
	for {
		// A state whose next hop needs more bits than remain holds the
		// second-to-last symbol; the other state holds the last.
		e1 := table.entries[s1]
		if br.finished() && e1.nbBits > 0 {
			weights = append(weights, e1.symbol, table.entries[s2].symbol)
			break
		}
		weights = append(weights, e1.symbol)
		s1 = uint32(e1.newState) + br.read(int(e1.nbBits))
		if br.overflowed() {
			return nil, errCorrupt("FSE weight stream overrun")
		}
		e2 := table.entries[s2]
		if br.finished() && e2.nbBits > 0 {
			weights = append(weights, e2.symbol, table.entries[s1].symbol)
			break
		}
		weights = append(weights, e2.symbol)
		s2 = uint32(e2.newState) + br.read(int(e2.nbBits))
		if br.overflowed() {
			return nil, errCorrupt("FSE weight stream overrun")
		}
		if len(weights) > 254 {
			return nil, errCorrupt("FSE weight stream does not terminate")
		}
	}
	if len(weights) > 255 {
		return nil, errCorrupt("too many Huffman weights")
	}
	return weights, nil
}

// decodeStream inflates one Huffman bitstream into exactly len(dst)
// symbols; the stream must be consumed exactly (§4.2.2).
//
// The hot loop keeps a top-aligned 64-bit window over src and decodes
// five symbols per refill: after a refill at most 7 bits are consumed
// from the window top, and the fifth max-length code peeks at offset
// 7+4×11 = 51, +11 = 62 ≤ 64, so no per-symbol bounds or overflow
// checks are needed. While the window pointer stays ≥ 0 the logical
// cursor cannot pass the start of the stream, so overflow is impossible
// by construction; the checked per-symbol tail handles the final bytes.
func (t *huffTable) decodeStream(src []byte, dst []byte) error {
	br, err := newRevBitReader(src)
	if err != nil {
		return err
	}
	return t.decodeInto(&br, src, dst, 0)
}

// windowAt positions a top-aligned 64-bit window at the reader's
// current bit cursor: ptr is the window's byte offset (negative when
// the stream is too short for a full window), bc the bits already
// consumed from the window top, so the next code sits at w<<bc.
func windowAt(br *revBitReader, src []byte) (ptr int, bc uint, w uint64) {
	remaining := br.totalBits - br.consumed
	bc = uint(8-remaining&7) & 7
	ptr = (remaining + int(bc) - 64) / 8
	if ptr >= 0 {
		w = binary.LittleEndian.Uint64(src[ptr:])
	}
	return
}

// decodeInto resumes decoding at output index i and the reader's bit
// cursor, running the wide-window fast loop while it can and the
// checked per-symbol loop for the tail.
func (t *huffTable) decodeInto(br *revBitReader, src []byte, dst []byte, i int) error {
	entries := t.entries
	maxBits := uint(t.maxBits)
	if ptr, bc, w := windowAt(br, src); ptr >= 0 && maxBits > 0 {
		// Masked table indices and an advancing output slice keep the
		// loop body free of bounds checks: the table is complete, so
		// len(entries) == 1<<maxBits and the mask is a no-op.
		mask := uint64(len(entries)) - 1
		d := dst[i:]
		for len(d) >= 5 {
			if bc >= 8 {
				nptr := ptr - int(bc>>3)
				if nptr < 0 {
					break
				}
				ptr = nptr
				bc &= 7
				w = binary.LittleEndian.Uint64(src[ptr:])
			}
			// Five symbols per refill: bc ≤ 7 after the refill, and the
			// fifth lookup peeks at bc ≤ 7+4×11 = 51, +11 = 62 ≤ 64.
			e := entries[w<<bc>>(64-maxBits)&mask]
			bc += uint(e.nbBits)
			d[0] = e.symbol
			e = entries[w<<bc>>(64-maxBits)&mask]
			bc += uint(e.nbBits)
			d[1] = e.symbol
			e = entries[w<<bc>>(64-maxBits)&mask]
			bc += uint(e.nbBits)
			d[2] = e.symbol
			e = entries[w<<bc>>(64-maxBits)&mask]
			bc += uint(e.nbBits)
			d[3] = e.symbol
			e = entries[w<<bc>>(64-maxBits)&mask]
			bc += uint(e.nbBits)
			d[4] = e.symbol
			d = d[5:]
		}
		i = len(dst) - len(d)
		// Sync the checked reader to the fast cursor: the next unread
		// bit, measured from the bottom of the stream, is the window
		// top minus the bits consumed within it.
		br.consumed = br.totalBits - (ptr*8 + 64 - int(bc))
	}
	for ; i < len(dst); i++ {
		e := entries[br.peek(int(maxBits))]
		br.consumed += int(e.nbBits)
		if br.overflowed() {
			return errCorrupt("Huffman stream overrun")
		}
		dst[i] = e.symbol
	}
	if !br.finished() {
		return errCorrupt("Huffman stream not fully consumed")
	}
	return nil
}

// decode4Streams inflates the four independent literal streams with
// their bit windows interleaved in one loop. A single stream's decode
// is a serial dependency chain (each code's position depends on the
// previous code's length), so one stream leaves most of the core idle;
// four chains in flight cover each other's table-load latency. Each
// round refills all four windows, then decodes four symbols from each;
// the per-stream invariants are exactly decodeStream's. Tails — and
// any stream too short for a 64-bit window — finish on the per-stream
// path via decodeInto.
func (t *huffTable) decode4Streams(srcs *[4][]byte, dsts *[4][]byte) error {
	var br [4]revBitReader
	for k := range srcs {
		b, err := newRevBitReader(srcs[k])
		if err != nil {
			return err
		}
		br[k] = b
	}
	maxBits := uint(t.maxBits)
	entries := t.entries
	var i0, i1, i2, i3 int
	p0, b0, w0 := windowAt(&br[0], srcs[0])
	p1, b1, w1 := windowAt(&br[1], srcs[1])
	p2, b2, w2 := windowAt(&br[2], srcs[2])
	p3, b3, w3 := windowAt(&br[3], srcs[3])
	if maxBits > 0 && p0 >= 0 && p1 >= 0 && p2 >= 0 && p3 >= 0 {
		s0, s1, s2, s3 := srcs[0], srcs[1], srcs[2], srcs[3]
		d0, d1, d2, d3 := dsts[0], dsts[1], dsts[2], dsts[3]
		// Masked table indices and advancing output slices keep the 32
		// lookups and stores per round free of bounds checks (the table
		// is complete, so len(entries) == 1<<maxBits).
		mask := uint64(len(entries)) - 1
		for len(d0) >= 5 && len(d1) >= 5 && len(d2) >= 5 && len(d3) >= 5 {
			if b0 >= 8 {
				np := p0 - int(b0>>3)
				if np < 0 {
					break
				}
				p0, b0 = np, b0&7
				w0 = binary.LittleEndian.Uint64(s0[p0:])
			}
			if b1 >= 8 {
				np := p1 - int(b1>>3)
				if np < 0 {
					break
				}
				p1, b1 = np, b1&7
				w1 = binary.LittleEndian.Uint64(s1[p1:])
			}
			if b2 >= 8 {
				np := p2 - int(b2>>3)
				if np < 0 {
					break
				}
				p2, b2 = np, b2&7
				w2 = binary.LittleEndian.Uint64(s2[p2:])
			}
			if b3 >= 8 {
				np := p3 - int(b3>>3)
				if np < 0 {
					break
				}
				p3, b3 = np, b3&7
				w3 = binary.LittleEndian.Uint64(s3[p3:])
			}
			e0 := entries[w0<<b0>>(64-maxBits)&mask]
			e1 := entries[w1<<b1>>(64-maxBits)&mask]
			e2 := entries[w2<<b2>>(64-maxBits)&mask]
			e3 := entries[w3<<b3>>(64-maxBits)&mask]
			b0 += uint(e0.nbBits)
			b1 += uint(e1.nbBits)
			b2 += uint(e2.nbBits)
			b3 += uint(e3.nbBits)
			d0[0], d1[0], d2[0], d3[0] = e0.symbol, e1.symbol, e2.symbol, e3.symbol
			e0 = entries[w0<<b0>>(64-maxBits)&mask]
			e1 = entries[w1<<b1>>(64-maxBits)&mask]
			e2 = entries[w2<<b2>>(64-maxBits)&mask]
			e3 = entries[w3<<b3>>(64-maxBits)&mask]
			b0 += uint(e0.nbBits)
			b1 += uint(e1.nbBits)
			b2 += uint(e2.nbBits)
			b3 += uint(e3.nbBits)
			d0[1], d1[1], d2[1], d3[1] = e0.symbol, e1.symbol, e2.symbol, e3.symbol
			e0 = entries[w0<<b0>>(64-maxBits)&mask]
			e1 = entries[w1<<b1>>(64-maxBits)&mask]
			e2 = entries[w2<<b2>>(64-maxBits)&mask]
			e3 = entries[w3<<b3>>(64-maxBits)&mask]
			b0 += uint(e0.nbBits)
			b1 += uint(e1.nbBits)
			b2 += uint(e2.nbBits)
			b3 += uint(e3.nbBits)
			d0[2], d1[2], d2[2], d3[2] = e0.symbol, e1.symbol, e2.symbol, e3.symbol
			e0 = entries[w0<<b0>>(64-maxBits)&mask]
			e1 = entries[w1<<b1>>(64-maxBits)&mask]
			e2 = entries[w2<<b2>>(64-maxBits)&mask]
			e3 = entries[w3<<b3>>(64-maxBits)&mask]
			b0 += uint(e0.nbBits)
			b1 += uint(e1.nbBits)
			b2 += uint(e2.nbBits)
			b3 += uint(e3.nbBits)
			d0[3], d1[3], d2[3], d3[3] = e0.symbol, e1.symbol, e2.symbol, e3.symbol
			e0 = entries[w0<<b0>>(64-maxBits)&mask]
			e1 = entries[w1<<b1>>(64-maxBits)&mask]
			e2 = entries[w2<<b2>>(64-maxBits)&mask]
			e3 = entries[w3<<b3>>(64-maxBits)&mask]
			b0 += uint(e0.nbBits)
			b1 += uint(e1.nbBits)
			b2 += uint(e2.nbBits)
			b3 += uint(e3.nbBits)
			d0[4], d1[4], d2[4], d3[4] = e0.symbol, e1.symbol, e2.symbol, e3.symbol
			d0, d1, d2, d3 = d0[5:], d1[5:], d2[5:], d3[5:]
		}
		i0 = len(dsts[0]) - len(d0)
		i1 = len(dsts[1]) - len(d1)
		i2 = len(dsts[2]) - len(d2)
		i3 = len(dsts[3]) - len(d3)
		br[0].consumed = br[0].totalBits - (p0*8 + 64 - int(b0))
		br[1].consumed = br[1].totalBits - (p1*8 + 64 - int(b1))
		br[2].consumed = br[2].totalBits - (p2*8 + 64 - int(b2))
		br[3].consumed = br[3].totalBits - (p3*8 + 64 - int(b3))
	}
	for k, i := range [4]int{i0, i1, i2, i3} {
		if err := t.decodeInto(&br[k], srcs[k], dsts[k], i); err != nil {
			return err
		}
	}
	return nil
}

// decodeLiterals inflates the 1- or 4-stream Huffman literal payload
// into out (len(out) = the regenerated size); out may be reused
// scratch, since every byte is overwritten on success.
func (t *huffTable) decodeLiterals(out []byte, src []byte, fourStreams bool) ([]byte, error) {
	regen := len(out)
	if !fourStreams {
		return out, t.decodeStream(src, out)
	}
	if len(src) < 6 {
		return nil, errCorrupt("missing Huffman jump table")
	}
	sizes := [4]int{
		int(src[0]) | int(src[1])<<8,
		int(src[2]) | int(src[3])<<8,
		int(src[4]) | int(src[5])<<8,
	}
	sizes[3] = len(src) - 6 - sizes[0] - sizes[1] - sizes[2]
	if sizes[3] <= 0 {
		return nil, errCorrupt("Huffman jump table exceeds payload")
	}
	seg := (regen + 3) / 4
	if seg*3 > regen {
		return nil, errCorrupt("four Huffman streams for tiny output")
	}
	var srcs, dsts [4][]byte
	p := 6
	o := 0
	for i, size := range sizes {
		n := seg
		if i == 3 {
			n = regen - 3*seg
		}
		if size < 0 || p+size > len(src) {
			return nil, errCorrupt("Huffman jump table exceeds payload")
		}
		srcs[i] = src[p : p+size]
		dsts[i] = out[o : o+n]
		p += size
		o += n
	}
	if err := t.decode4Streams(&srcs, &dsts); err != nil {
		return nil, err
	}
	return out, nil
}
