package zstdx

import "math/bits"

// maxHuffBits is the format's limit on Huffman code lengths (§4.2.1).
const maxHuffBits = 11

type huffEntry struct {
	symbol uint8
	nbBits uint8
}

// huffTable is a single-level Huffman decoding table of 1<<maxBits
// cells, plus the canonical code of every symbol for the encoder.
type huffTable struct {
	maxBits int
	entries []huffEntry
	codes   [256]uint16
	lens    [256]uint8
}

// buildHuffTable builds the table from complete weights (the implied
// last weight already appended). Weight w>0 means a code of
// maxBits+1-w bits; cells are filled by ascending weight, symbols in
// natural order within a weight — the canonical zstd assignment.
func buildHuffTable(weights []uint8) (*huffTable, error) {
	if len(weights) > 256 {
		return nil, errCorrupt("more than 256 Huffman symbols")
	}
	total := 0
	var rank [maxHuffBits + 2]int
	for _, w := range weights {
		if w > maxHuffBits {
			return nil, errCorrupt("Huffman weight too large")
		}
		if w > 0 {
			total += 1 << (w - 1)
			rank[w]++
		}
	}
	if total == 0 || total&(total-1) != 0 {
		return nil, errCorrupt("Huffman weights do not sum to a power of two")
	}
	maxBits := bits.Len(uint(total)) - 1
	if maxBits > maxHuffBits {
		return nil, errCorrupt("Huffman table log too large")
	}
	if rank[1] < 2 || rank[1]&1 != 0 {
		return nil, errCorrupt("Huffman weight-one count must be even and at least 2")
	}
	t := &huffTable{maxBits: maxBits, entries: make([]huffEntry, total)}
	// Starting cell for each weight: all lighter weights come first.
	var start [maxHuffBits + 2]int
	pos := 0
	for w := 1; w <= maxBits; w++ {
		start[w] = pos
		pos += rank[w] << (w - 1)
	}
	for s, w := range weights {
		if w == 0 {
			continue
		}
		span := 1 << (w - 1)
		nb := uint8(maxBits + 1 - int(w))
		e := huffEntry{symbol: uint8(s), nbBits: nb}
		for i := start[w]; i < start[w]+span; i++ {
			t.entries[i] = e
		}
		t.codes[s] = uint16(start[w] >> (maxBits - int(nb)))
		t.lens[s] = nb
		start[w] += span
	}
	return t, nil
}

// completeWeights reconstructs the implied last weight (§4.2.1: the
// total must complete to a power of two) and returns the full set.
func completeWeights(explicit []uint8) ([]uint8, error) {
	total := 0
	for _, w := range explicit {
		if w > maxHuffBits {
			return nil, errCorrupt("Huffman weight too large")
		}
		if w > 0 {
			total += 1 << (w - 1)
		}
	}
	if total == 0 {
		return nil, errCorrupt("Huffman weights all zero")
	}
	tableLog := bits.Len(uint(total))
	if tableLog > maxHuffBits {
		return nil, errCorrupt("Huffman table log too large")
	}
	rest := 1<<tableLog - total
	if rest&(rest-1) != 0 {
		return nil, errCorrupt("implied Huffman weight not a power of two")
	}
	last := uint8(bits.Len(uint(rest)))
	return append(append([]uint8{}, explicit...), last), nil
}

// readHuffTable parses a Huffman tree description (direct 4-bit
// weights, or FSE-compressed with two interleaved states) and returns
// the decoding table plus bytes consumed.
func readHuffTable(data []byte) (*huffTable, int, error) {
	if len(data) < 1 {
		return nil, 0, errCorrupt("missing Huffman tree header")
	}
	hb := int(data[0])
	var explicit []uint8
	var consumed int
	if hb >= 128 {
		num := hb - 127
		nBytes := (num + 1) / 2
		if len(data) < 1+nBytes {
			return nil, 0, errCorrupt("truncated direct Huffman weights")
		}
		explicit = make([]uint8, num)
		for i := 0; i < num; i++ {
			v := data[1+i/2]
			if i%2 == 0 {
				explicit[i] = v >> 4
			} else {
				explicit[i] = v & 15
			}
		}
		consumed = 1 + nBytes
	} else {
		if len(data) < 1+hb {
			return nil, 0, errCorrupt("truncated FSE Huffman weights")
		}
		var err error
		explicit, err = readFSEWeights(data[1 : 1+hb])
		if err != nil {
			return nil, 0, err
		}
		consumed = 1 + hb
	}
	weights, err := completeWeights(explicit)
	if err != nil {
		return nil, 0, err
	}
	t, err := buildHuffTable(weights)
	if err != nil {
		return nil, 0, err
	}
	return t, consumed, nil
}

// readFSEWeights decodes FSE-compressed Huffman weights: a table
// description followed by a backward bitstream with two interleaved
// states, drained until the stream is exhausted (§4.2.1.2).
func readFSEWeights(data []byte) ([]uint8, error) {
	table, n, err := readFSETableDesc(data, 6, 256)
	if err != nil {
		return nil, err
	}
	br, err := newRevBitReader(data[n:])
	if err != nil {
		return nil, err
	}
	s1 := br.read(table.log)
	s2 := br.read(table.log)
	if br.overflowed() {
		return nil, errCorrupt("FSE weight stream too short")
	}
	var weights []uint8
	for {
		// A state whose next hop needs more bits than remain holds the
		// second-to-last symbol; the other state holds the last.
		e1 := table.entries[s1]
		if br.finished() && e1.nbBits > 0 {
			weights = append(weights, e1.symbol, table.entries[s2].symbol)
			break
		}
		weights = append(weights, e1.symbol)
		s1 = uint32(e1.newState) + br.read(int(e1.nbBits))
		if br.overflowed() {
			return nil, errCorrupt("FSE weight stream overrun")
		}
		e2 := table.entries[s2]
		if br.finished() && e2.nbBits > 0 {
			weights = append(weights, e2.symbol, table.entries[s1].symbol)
			break
		}
		weights = append(weights, e2.symbol)
		s2 = uint32(e2.newState) + br.read(int(e2.nbBits))
		if br.overflowed() {
			return nil, errCorrupt("FSE weight stream overrun")
		}
		if len(weights) > 254 {
			return nil, errCorrupt("FSE weight stream does not terminate")
		}
	}
	if len(weights) > 255 {
		return nil, errCorrupt("too many Huffman weights")
	}
	return weights, nil
}

// decodeStream inflates one Huffman bitstream into exactly len(dst)
// symbols; the stream must be consumed exactly (§4.2.2).
func (t *huffTable) decodeStream(src []byte, dst []byte) error {
	br, err := newRevBitReader(src)
	if err != nil {
		return err
	}
	for i := range dst {
		e := t.entries[br.peek(t.maxBits)]
		br.consumed += int(e.nbBits)
		if br.overflowed() {
			return errCorrupt("Huffman stream overrun")
		}
		dst[i] = e.symbol
	}
	if !br.finished() {
		return errCorrupt("Huffman stream not fully consumed")
	}
	return nil
}

// decodeLiterals inflates the 1- or 4-stream Huffman literal payload.
func (t *huffTable) decodeLiterals(src []byte, regen int, fourStreams bool) ([]byte, error) {
	out := make([]byte, regen)
	if !fourStreams {
		return out, t.decodeStream(src, out)
	}
	if len(src) < 6 {
		return nil, errCorrupt("missing Huffman jump table")
	}
	sizes := [4]int{
		int(src[0]) | int(src[1])<<8,
		int(src[2]) | int(src[3])<<8,
		int(src[4]) | int(src[5])<<8,
	}
	sizes[3] = len(src) - 6 - sizes[0] - sizes[1] - sizes[2]
	if sizes[3] <= 0 {
		return nil, errCorrupt("Huffman jump table exceeds payload")
	}
	seg := (regen + 3) / 4
	if seg*3 > regen {
		return nil, errCorrupt("four Huffman streams for tiny output")
	}
	p := 6
	o := 0
	for i, size := range sizes {
		n := seg
		if i == 3 {
			n = regen - 3*seg
		}
		if err := t.decodeStream(src[p:p+size], out[o:o+n]); err != nil {
			return nil, err
		}
		p += size
		o += n
	}
	return out, nil
}
