package zstdx

import (
	"encoding/binary"
	"math/bits"
)

// revBitReader reads a zstd bitstream backwards: the stream is written
// forward LSB-first, terminated by a 1-bit sentinel in its last byte,
// and consumed from the end. Fields come back in reverse write order,
// which is how every entropy-coded payload in the format (FSE states,
// Huffman codes, sequence extra bits) is laid out.
type revBitReader struct {
	data      []byte
	totalBits int // bits below the sentinel
	consumed  int
	// win caches the 8-byte little-endian window at bit offset winOff*8,
	// so consecutive reads (which walk downward) cost a shift and mask
	// instead of an 8-byte reload with bounds checks each.
	win    uint64
	winOff int
}

func newRevBitReader(data []byte) (revBitReader, error) {
	if len(data) == 0 || data[len(data)-1] == 0 {
		return revBitReader{}, errCorrupt("bitstream missing sentinel")
	}
	pad := bits.LeadingZeros8(data[len(data)-1]) + 1
	r := revBitReader{data: data, totalBits: len(data)*8 - pad}
	r.reload(max(0, len(data)-8))
	return r, nil
}

// reload caches the window at byte offset byteOff, zero-padding reads
// past the end of data.
func (r *revBitReader) reload(byteOff int) {
	if byteOff+8 <= len(r.data) {
		r.win = binary.LittleEndian.Uint64(r.data[byteOff:])
	} else {
		var buf [8]byte
		copy(buf[:], r.data[byteOff:])
		r.win = binary.LittleEndian.Uint64(buf[:])
	}
	r.winOff = byteOff
}

// overflowed reports reads past the start of the stream — the end
// condition for self-delimiting payloads (FSE-compressed weights) and a
// corruption signal everywhere else.
func (r *revBitReader) overflowed() bool { return r.consumed > r.totalBits }

// finished reports exact consumption; the format requires it of every
// entropy payload with a known symbol count.
func (r *revBitReader) finished() bool { return r.consumed == r.totalBits }

// peek returns the next n (≤ 32) bits without consuming them,
// zero-filling past the start of the stream.
func (r *revBitReader) peek(n int) uint32 {
	if n == 0 {
		return 0
	}
	start := r.totalBits - r.consumed - n
	shift := 0
	if start < 0 {
		shift = -start
		n -= shift
		if n <= 0 {
			return 0
		}
		start = 0
	}
	off := start - r.winOff<<3
	if off < 0 || off+n > 64 {
		r.reload(start >> 3)
		off = start & 7
	}
	return uint32(r.win>>uint(off)&(1<<uint(n)-1)) << shift
}

// read consumes and returns the next n (≤ 32) bits.
func (r *revBitReader) read(n int) uint32 {
	v := r.peek(n)
	r.consumed += n
	return v
}

// extractBits reads n (≤ 32) bits at absolute bit position start,
// LSB-first within the forward byte order.
func extractBits(data []byte, start, n int) uint32 {
	byteOff := start >> 3
	var window uint64
	if byteOff+8 <= len(data) {
		window = binary.LittleEndian.Uint64(data[byteOff:])
	} else {
		var buf [8]byte
		copy(buf[:], data[byteOff:])
		window = binary.LittleEndian.Uint64(buf[:])
	}
	return uint32(window >> (start & 7) & (uint64(1)<<n - 1))
}

// fwdBitReader reads bits LSB-first in forward byte order — the layout
// of FSE table descriptions (the only forward-coded bit payload).
type fwdBitReader struct {
	data []byte
	pos  int // in bits
}

func (r *fwdBitReader) read(n int) (uint32, bool) {
	if r.pos+n > len(r.data)*8 {
		return 0, false
	}
	v := extractBits(r.data, r.pos, n)
	r.pos += n
	return v, true
}

func (r *fwdBitReader) rewind(n int) { r.pos -= n }

// bytesConsumed returns the byte-aligned length of what was read.
func (r *fwdBitReader) bytesConsumed() int { return (r.pos + 7) / 8 }

// bitWriter builds a forward LSB-first bitstream; close appends the
// sentinel bit the backward reader looks for.
type bitWriter struct {
	out   []byte
	acc   uint64
	nbits int
}

func (w *bitWriter) addBits(v uint32, n int) {
	w.acc |= uint64(v) & (1<<n - 1) << w.nbits
	w.nbits += n
	for w.nbits >= 8 {
		w.out = append(w.out, byte(w.acc))
		w.acc >>= 8
		w.nbits -= 8
	}
}

func (w *bitWriter) close() []byte {
	w.addBits(1, 1)
	if w.nbits > 0 {
		w.out = append(w.out, byte(w.acc))
		w.acc, w.nbits = 0, 0
	}
	return w.out
}
