package zstdx

// maxBlockSize is the format's Block_Maximum_Size ceiling (128 KiB).
const maxBlockSize = 128 << 10

// frameDecoder carries the state that persists across the blocks of
// one frame: the three repeat offsets, the last Huffman table (for
// treeless literals) and the last FSE tables (for repeat mode).
type frameDecoder struct {
	reps [3]uint32
	huff *huffTable
	ll   *fseTable
	of   *fseTable
	ml   *fseTable
	// litBuf is scratch for decoded literals, reused across blocks so
	// each block skips a fresh make (and its zeroing) on the hot path.
	litBuf []byte
}

// litScratch returns an n-byte scratch slice backed by litBuf.
func (d *frameDecoder) litScratch(n int) []byte {
	if cap(d.litBuf) < n {
		d.litBuf = make([]byte, n)
	}
	return d.litBuf[:n]
}

func newFrameDecoder() *frameDecoder {
	return &frameDecoder{reps: [3]uint32{1, 4, 8}}
}

// literalsBlockType values (§3.1.1.3.1.1).
const (
	litRaw = iota
	litRLE
	litCompressed
	litTreeless
)

// decodeLiterals parses the literals section at the start of a
// compressed block, returning the literal bytes and the section length.
func (d *frameDecoder) decodeLiterals(in []byte) ([]byte, int, error) {
	if len(in) < 1 {
		return nil, 0, errCorrupt("empty literals section")
	}
	litType := int(in[0] & 3)
	sizeFormat := int(in[0]>>2) & 3
	var regen, comp, hdr int
	fourStreams := false
	switch litType {
	case litRaw, litRLE:
		switch sizeFormat {
		case 0, 2:
			regen = int(in[0] >> 3)
			hdr = 1
		case 1:
			if len(in) < 2 {
				return nil, 0, errCorrupt("truncated literals header")
			}
			regen = int(in[0]>>4) | int(in[1])<<4
			hdr = 2
		case 3:
			if len(in) < 3 {
				return nil, 0, errCorrupt("truncated literals header")
			}
			regen = int(in[0]>>4) | int(in[1])<<4 | int(in[2])<<12
			hdr = 3
		}
	case litCompressed, litTreeless:
		switch sizeFormat {
		case 0, 1:
			if len(in) < 3 {
				return nil, 0, errCorrupt("truncated literals header")
			}
			n := int(in[0]>>4) | int(in[1])<<4 | int(in[2])<<12
			regen = n & 1023
			comp = n >> 10
			fourStreams = sizeFormat == 1
			hdr = 3
		case 2:
			if len(in) < 4 {
				return nil, 0, errCorrupt("truncated literals header")
			}
			n := int(in[0]>>4) | int(in[1])<<4 | int(in[2])<<12 | int(in[3])<<20
			regen = n & 16383
			comp = n >> 14
			fourStreams = true
			hdr = 4
		case 3:
			if len(in) < 5 {
				return nil, 0, errCorrupt("truncated literals header")
			}
			n := int(in[0]>>4) | int(in[1])<<4 | int(in[2])<<12 | int(in[3])<<20 | int(in[4])<<28
			regen = n & 262143
			comp = n >> 18
			fourStreams = true
			hdr = 5
		}
	}
	if regen > maxBlockSize {
		return nil, 0, errCorrupt("literals larger than a block")
	}
	body := in[hdr:]
	switch litType {
	case litRaw:
		if len(body) < regen {
			return nil, 0, errCorrupt("truncated raw literals")
		}
		return body[:regen], hdr + regen, nil
	case litRLE:
		if len(body) < 1 {
			return nil, 0, errCorrupt("truncated RLE literals")
		}
		lit := d.litScratch(regen)
		for i := range lit {
			lit[i] = body[0]
		}
		return lit, hdr + 1, nil
	}
	if len(body) < comp {
		return nil, 0, errCorrupt("truncated compressed literals")
	}
	stream := body[:comp]
	if litType == litCompressed {
		t, n, err := readHuffTable(stream)
		if err != nil {
			return nil, 0, err
		}
		d.huff = t
		stream = stream[n:]
	} else if d.huff == nil {
		return nil, 0, errCorrupt("treeless literals without a previous Huffman table")
	}
	lit, err := d.huff.decodeLiterals(d.litScratch(regen), stream, fourStreams)
	if err != nil {
		return nil, 0, err
	}
	return lit, hdr + comp, nil
}

// seqTables resolves the three compression modes of the sequences
// section header, reading RLE symbols and FSE table descriptions.
func (d *frameDecoder) seqTables(in []byte, modes byte) (int, error) {
	p := 0
	for i := 0; i < 3; i++ {
		mode := int(modes>>(6-2*i)) & 3
		var table **fseTable
		var predef *fseTable
		var maxLog, maxSym int
		switch i {
		case 0:
			table, predef, maxLog, maxSym = &d.ll, llPredefTable, llMaxLog, len(llCodeTable)
		case 1:
			table, predef, maxLog, maxSym = &d.of, ofPredefTable, ofMaxLog, len(ofCodeTable)
		default:
			table, predef, maxLog, maxSym = &d.ml, mlPredefTable, mlMaxLog, len(mlCodeTable)
		}
		switch mode {
		case 0:
			*table = predef
		case 1:
			if p >= len(in) {
				return 0, errCorrupt("truncated RLE sequence symbol")
			}
			if int(in[p]) >= maxSym {
				return 0, errCorrupt("RLE sequence symbol out of range")
			}
			*table = rleFSETable(in[p])
			p++
		case 2:
			t, n, err := readFSETableDesc(in[p:], maxLog, maxSym)
			if err != nil {
				return 0, err
			}
			*table = t
			p += n
		default:
			if *table == nil {
				return 0, errCorrupt("repeat mode without a previous table")
			}
		}
	}
	return p, nil
}

// decodeBlock inflates one compressed block, appending to out (which
// holds the frame's earlier output — the match window).
func (d *frameDecoder) decodeBlock(in []byte, out []byte) ([]byte, error) {
	lit, n, err := d.decodeLiterals(in)
	if err != nil {
		return nil, err
	}
	in = in[n:]

	if len(in) < 1 {
		return nil, errCorrupt("missing sequences header")
	}
	nbSeq := 0
	switch b0 := int(in[0]); {
	case b0 < 128:
		nbSeq = b0
		in = in[1:]
	case b0 < 255:
		if len(in) < 2 {
			return nil, errCorrupt("truncated sequences header")
		}
		nbSeq = (b0-128)<<8 | int(in[1])
		in = in[2:]
	default:
		if len(in) < 3 {
			return nil, errCorrupt("truncated sequences header")
		}
		nbSeq = 0x7F00 + int(in[1]) + int(in[2])<<8
		in = in[3:]
	}
	if nbSeq == 0 {
		if len(in) != 0 {
			return nil, errCorrupt("trailing bytes after literals-only block")
		}
		return append(out, lit...), nil
	}

	if len(in) < 1 {
		return nil, errCorrupt("missing sequence compression modes")
	}
	modes := in[0]
	if modes&3 != 0 {
		return nil, errCorrupt("reserved sequence mode bits set")
	}
	n, err = d.seqTables(in[1:], modes)
	if err != nil {
		return nil, err
	}
	in = in[1+n:]

	br, err := newRevBitReader(in)
	if err != nil {
		return nil, err
	}
	llState := br.read(d.ll.log)
	ofState := br.read(d.of.log)
	mlState := br.read(d.ml.log)
	if br.overflowed() {
		return nil, errCorrupt("sequence bitstream too short")
	}

	// Hoist the FSE tables: they cannot change mid-block, and keeping
	// the entry slices in locals lets the loop's lookups skip the
	// double pointer chase per state.
	llEnt, ofEnt, mlEnt := d.ll.entries, d.of.entries, d.ml.entries

	base := len(out)
	for s := 0; s < nbSeq; s++ {
		ofCode := ofEnt[ofState].symbol
		mlCode := mlEnt[mlState].symbol
		llCode := llEnt[llState].symbol
		if int(ofCode) >= len(ofCodeTable) || int(mlCode) >= len(mlCodeTable) || int(llCode) >= len(llCodeTable) {
			return nil, errCorrupt("sequence code out of range")
		}
		// Extra bits come back in reverse write order: offset, match
		// length, literal length.
		offVal := ofCodeTable[ofCode].baseline + br.read(int(ofCodeTable[ofCode].bits))
		ml := int(mlCodeTable[mlCode].baseline) + int(br.read(int(mlCodeTable[mlCode].bits)))
		ll := int(llCodeTable[llCode].baseline) + int(br.read(int(llCodeTable[llCode].bits)))
		if br.overflowed() {
			return nil, errCorrupt("sequence bitstream overrun")
		}

		var offset uint32
		if offVal > 3 {
			offset = offVal - 3
			d.reps[2], d.reps[1], d.reps[0] = d.reps[1], d.reps[0], offset
		} else {
			idx := offVal
			if ll == 0 {
				idx++
			}
			switch idx {
			case 1:
				offset = d.reps[0]
			case 2:
				offset = d.reps[1]
				d.reps[1], d.reps[0] = d.reps[0], offset
			case 3:
				offset = d.reps[2]
				d.reps[2], d.reps[1], d.reps[0] = d.reps[1], d.reps[0], offset
			default: // 4: repeat offset 1 minus one byte
				offset = d.reps[0] - 1
				if offset == 0 {
					return nil, errCorrupt("zero repeat offset")
				}
				d.reps[2], d.reps[1], d.reps[0] = d.reps[1], d.reps[0], offset
			}
		}

		if ll > len(lit) {
			return nil, errCorrupt("sequence consumes more literals than present")
		}
		out = append(out, lit[:ll]...)
		lit = lit[ll:]
		if int(offset) > len(out) {
			return nil, errCorrupt("match offset beyond window")
		}
		if len(out)+ml-base > maxBlockSize {
			return nil, errCorrupt("block output too large")
		}
		out = appendMatch(out, int(offset), ml)

		if s+1 < nbSeq {
			// State updates also mirror write order: literal length,
			// match length, offset.
			e := llEnt[llState]
			llState = uint32(e.newState) + br.read(int(e.nbBits))
			e = mlEnt[mlState]
			mlState = uint32(e.newState) + br.read(int(e.nbBits))
			e = ofEnt[ofState]
			ofState = uint32(e.newState) + br.read(int(e.nbBits))
			if br.overflowed() {
				return nil, errCorrupt("sequence state update overrun")
			}
		}
	}
	if !br.finished() {
		return nil, errCorrupt("sequence bitstream not fully consumed")
	}
	return append(out, lit...), nil
}

// appendMatch appends ml bytes copied from offset back within out.
// Non-overlapping matches are one memmove; overlapping ones (offset <
// ml, including offset < 8) replicate the pattern with doubling
// memmoves instead of the byte-at-a-time loop this replaced.
func appendMatch(out []byte, offset, ml int) []byte {
	p := len(out)
	if cap(out)-p < ml {
		grown := make([]byte, p, max(2*cap(out), p+ml))
		copy(grown, out)
		out = grown
	}
	out = out[: p+ml : cap(out)]
	dst := out[p:]
	src := p - offset
	if offset >= ml {
		copy(dst, out[src:src+ml])
		return out
	}
	n := copy(dst, out[src:p])
	for n < ml {
		n += copy(dst[n:], dst[:n])
	}
	return out
}
