package zstdx

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/shardpipe"
)

// shardBufPool recycles input shard buffers across shards and Writers;
// a full shard is garbage the moment its frame is encoded, and letting
// the GC chew through one per shard costs the encode workers cores.
// frameBufPool does the same for the encoded output frames, which
// drain returns once they are written to the sink.
var (
	shardBufPool sync.Pool // []byte
	frameBufPool sync.Pool // []byte
)

func getShardBuf(n int) []byte {
	if v := shardBufPool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			return b[:0]
		}
	}
	return make([]byte, 0, n)
}

func getFrameBuf() []byte {
	if v := frameBufPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return nil
}

// WriterOptions configures a parallel multi-frame Writer.
type WriterOptions struct {
	// Level 0 stores raw blocks; any other value runs the LZ matcher.
	Level int
	// ShardSize is the uncompressed bytes per frame — the parallel work
	// unit and the random-access granularity. Zero selects
	// DefaultShardSize.
	ShardSize int
	// BlockSize is the uncompressed bytes per block within a frame
	// (capped at the format's 128 KiB ceiling); zero selects the cap.
	BlockSize int
	// Parallelism is the number of encode workers; zero selects
	// runtime.NumCPU().
	Parallelism int
	// ContentChecksum appends an xxHash64 checksum to every frame, so
	// every parallel decode verifies integrity.
	ContentChecksum bool
}

// DefaultShardSize is the uncompressed bytes per frame.
const DefaultShardSize = 1 << 20

// Checkpoint records one drained frame: its compressed extent in the
// output and the decompressed extent it encodes — exactly one span of
// the reopen checkpoint table.
type Checkpoint struct {
	CompOff, CompEnd      int64
	DecompOff, DecompSize int64
}

// Writer is a parallel multi-frame Zstandard encoder: input is cut
// into fixed-size shards, each compressed as one complete frame with
// its Frame_Content_Size header set, concurrently on a worker pool,
// and the frames concatenated in submit order — pzstd's structure,
// which §4.9 of the paper calls trivially parallelizable precisely
// because the frame headers alone describe the decode plan. ScanFrames
// over the output therefore reports Sized (zero sizing decodes), and
// the checkpoint table recorded here while encoding matches what a
// scan would recover.
//
// Not safe for concurrent use: one producer writes, the encoding
// parallelizes underneath.
type Writer struct {
	out  io.Writer
	opts WriterOptions
	pipe *shardpipe.Pipeline[frameResult]

	shard     []byte
	submitted int

	compOff     int64
	decompOff   int64
	checkpoints []Checkpoint

	closed bool
	err    error
}

type frameResult struct {
	frame  []byte
	rawLen int
}

// NewWriter constructs a parallel multi-frame writer over w.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	if opts.ShardSize < 0 {
		return nil, fmt.Errorf("zstdx: negative shard size %d", opts.ShardSize)
	}
	if opts.ShardSize == 0 {
		opts.ShardSize = DefaultShardSize
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	pw := &Writer{out: w, opts: opts}
	pw.pipe = shardpipe.New[frameResult](opts.Parallelism, 2*opts.Parallelism, pw.drain)
	return pw, nil
}

func (w *Writer) drain(fr frameResult) error {
	if _, err := w.out.Write(fr.frame); err != nil {
		return err
	}
	w.checkpoints = append(w.checkpoints, Checkpoint{
		CompOff:    w.compOff,
		CompEnd:    w.compOff + int64(len(fr.frame)),
		DecompOff:  w.decompOff,
		DecompSize: int64(fr.rawLen),
	})
	w.compOff += int64(len(fr.frame))
	w.decompOff += int64(fr.rawLen)
	frameBufPool.Put(fr.frame[:0])
	return nil
}

// Write implements io.Writer, buffering into the current shard and
// submitting full shards to the encode pool.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("zstdx: write after Close")
	}
	if w.err != nil {
		return 0, w.err
	}
	total := len(p)
	for len(p) > 0 {
		if w.shard == nil {
			w.shard = getShardBuf(w.opts.ShardSize)
		}
		n := w.opts.ShardSize - len(w.shard)
		if n > len(p) {
			n = len(p)
		}
		w.shard = append(w.shard, p[:n]...)
		p = p[n:]
		if len(w.shard) == w.opts.ShardSize {
			if err := w.submitShard(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// ReadFrom implements io.ReaderFrom, filling shards straight from r.
func (w *Writer) ReadFrom(r io.Reader) (int64, error) {
	if w.closed {
		return 0, errors.New("zstdx: write after Close")
	}
	var total int64
	for {
		if w.shard == nil {
			w.shard = getShardBuf(w.opts.ShardSize)
		}
		n, err := r.Read(w.shard[len(w.shard):w.opts.ShardSize])
		w.shard = w.shard[:len(w.shard)+n]
		total += int64(n)
		if len(w.shard) == w.opts.ShardSize {
			if serr := w.submitShard(); serr != nil {
				return total, serr
			}
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

func (w *Writer) submitShard() error {
	data := w.shard
	w.shard = nil
	fo := FrameOptions{
		BlockSize:       w.opts.BlockSize,
		Level:           w.opts.Level,
		ContentChecksum: w.opts.ContentChecksum,
	}
	err := w.pipe.Submit(func() (frameResult, error) {
		// FrameSize 0 = the whole shard as one frame; the content-size
		// header is always written (OmitContentSize false), which is what
		// keeps the output metadata-sized.
		fr := frameResult{frame: AppendFrames(getFrameBuf(), data, fo), rawLen: len(data)}
		shardBufPool.Put(data[:0])
		return fr, nil
	})
	if err != nil {
		w.err = err
		return err
	}
	w.submitted++
	return nil
}

// Close flushes the pending shard and drains the pipeline. An empty
// input still produces one empty sized frame, so the output is always
// a valid Zstandard file. Close does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if (len(w.shard) > 0 || w.submitted == 0) && w.err == nil {
		if w.shard == nil {
			w.shard = []byte{}
		}
		w.submitShard()
	}
	if err := w.pipe.Close(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Checkpoints returns the per-frame checkpoint table recorded while
// encoding. Complete only after Close.
func (w *Writer) Checkpoints() []Checkpoint { return w.checkpoints }

// Flags returns the codec capability flags describing the output:
// always FlagMetadataSized (every frame header carries its content
// size), plus FlagChecksummed when enabled.
func (w *Writer) Flags() uint8 {
	f := FlagMetadataSized
	if w.opts.ContentChecksum {
		f |= FlagChecksummed
	}
	return f
}

// CompressedSize returns the total bytes written. Final only after Close.
func (w *Writer) CompressedSize() int64 { return w.compOff }

// UncompressedSize returns the input bytes encoded so far.
func (w *Writer) UncompressedSize() int64 { return w.decompOff }
