package zstdx

import (
	"encoding/binary"
	"math/bits"
	"sync"

	"repro/internal/xxhash"
)

// FrameOptions configures CompressFrames.
type FrameOptions struct {
	// FrameSize splits the input into independent frames of this many
	// uncompressed bytes. Zero writes a single frame. Multi-frame files
	// are the pzstd structure §4.9 calls trivially parallelizable.
	FrameSize int
	// BlockSize is the uncompressed bytes per block (max 128 KiB, the
	// format ceiling); zero selects 128 KiB.
	BlockSize int
	// Level 0 stores raw blocks; any other value compresses with a
	// greedy LZ matcher, Huffman-coded literals and predefined-FSE
	// sequences — modest ratios, but fully standard frames.
	Level int
	// ContentChecksum appends the xxHash64 content checksum per frame.
	ContentChecksum bool
	// OmitContentSize drops Frame_Content_Size from headers, producing
	// the streamed-output shape that forces consumers into a sequential
	// sizing pass (for testing capability degradation).
	OmitContentSize bool
}

func (o FrameOptions) withDefaults() FrameOptions {
	if o.BlockSize <= 0 || o.BlockSize > maxBlockSize {
		o.BlockSize = maxBlockSize
	}
	return o
}

// CompressFrames compresses data into one or more Zstandard frames.
func CompressFrames(data []byte, opts FrameOptions) []byte {
	return AppendFrames(nil, data, opts)
}

// AppendFrames appends the frames for data to dst, so callers that
// recycle output buffers (the parallel Writer) avoid regrowing a
// multi-megabyte slice per shard.
func AppendFrames(dst, data []byte, opts FrameOptions) []byte {
	opts = opts.withDefaults()
	frameSize := opts.FrameSize
	if frameSize <= 0 {
		frameSize = len(data)
	}
	out := dst
	for start := 0; ; start += frameSize {
		end := min(start+frameSize, len(data))
		out = appendFrame(out, data[start:end], opts)
		if end == len(data) {
			break
		}
	}
	return out
}

// AppendSkippable appends a skippable frame (magic 0x184D2A50) wrapping
// payload — legal anywhere between frames; decoders ignore it.
func AppendSkippable(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, skippableMagicBase)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// appendFrame writes one complete frame for content.
func appendFrame(out, content []byte, opts FrameOptions) []byte {
	out = binary.LittleEndian.AppendUint32(out, FrameMagic)

	var fhd byte
	if opts.ContentChecksum {
		fhd |= 1 << 2
	}
	singleSegment := !opts.OmitContentSize && len(content) <= 8<<20
	var fcsLen int
	if !opts.OmitContentSize {
		switch {
		case len(content) < 256 && singleSegment:
			fcsLen = 1 // flag 0 + single segment
		case len(content) >= 256 && len(content) < 65536+256:
			fhd |= 1 << 6
			fcsLen = 2
		default:
			fhd |= 2 << 6
			fcsLen = 4
		}
		if fcsLen == 1 && !singleSegment {
			// flag 0 without single segment means "no FCS"; widen.
			fhd |= 2 << 6
			fcsLen = 4
		}
	}
	maxOffset := len(content)
	if singleSegment {
		fhd |= 1 << 5
		out = append(out, fhd)
	} else {
		out = append(out, fhd)
		// Smallest window descriptor covering the content (capped at
		// 128 MiB so default decoders accept it); matches never reach
		// further back than the window.
		target := min(max(len(content), 1<<10), 128<<20)
		exp, mant := 0, 0
	window:
		for exp = 0; exp <= 21; exp++ {
			base := 1 << (10 + exp)
			for mant = 0; mant <= 7; mant++ {
				if base+base/8*mant >= target {
					break window
				}
			}
		}
		base := 1 << (10 + exp)
		maxOffset = base + base/8*mant
		out = append(out, byte(exp<<3|mant))
	}
	switch fcsLen {
	case 1:
		out = append(out, byte(len(content)))
	case 2:
		out = binary.LittleEndian.AppendUint16(out, uint16(len(content)-256))
	case 4:
		out = binary.LittleEndian.AppendUint32(out, uint32(len(content)))
	}

	enc := getFrameEncoder(content, maxOffset)
	for blockStart := 0; ; blockStart += opts.BlockSize {
		blockEnd := min(blockStart+opts.BlockSize, len(content))
		last := blockEnd == len(content)
		out = enc.appendBlock(out, blockStart, blockEnd, last, opts.Level != 0)
		if last {
			break
		}
	}
	if opts.ContentChecksum {
		out = binary.LittleEndian.AppendUint32(out, uint32(xxhash.Sum64(content, 0)))
	}
	putFrameEncoder(enc)
	return out
}

// frameEncoder compresses the blocks of one frame; the match table
// persists across blocks so offsets may reach anywhere earlier in the
// frame (the decoder's window covers it).
type frameEncoder struct {
	content   []byte
	maxOffset int
	table     [1 << 15]int32 // hash -> position+1 of a previous 4-byte match
	// The remaining fields are per-block scratch reused across blocks
	// and, via frameEncPool, across frames: regrowing them per block
	// dominated the encode path's allocation volume.
	seqs      []seqRec
	lit       []byte
	cs        []coded // sequence codes
	seqOut    []byte  // sequences-section output
	bwBuf     []byte  // sequences bitstream
	litOut    []byte  // literals-section output
	streamBuf []byte  // Huffman literal streams
	payload   []byte  // assembled block payload
}

// frameEncPool recycles frameEncoders across frames and Writers. The
// 128 KiB match table must be cleared on reuse — findSequences only
// validates candidates against the current content, and a stale entry
// may point past its end (or ahead of the cursor) and corrupt a match.
var frameEncPool = sync.Pool{New: func() any { return new(frameEncoder) }}

func getFrameEncoder(content []byte, maxOffset int) *frameEncoder {
	e := frameEncPool.Get().(*frameEncoder)
	e.content = content
	e.maxOffset = maxOffset
	clear(e.table[:])
	return e
}

func putFrameEncoder(e *frameEncoder) {
	e.content = nil
	frameEncPool.Put(e)
}

func hash4(v uint32) uint32 { return v * 2654435761 >> 17 }

func blockHeader(size, btype int, last bool) []byte {
	bh := uint32(size)<<3 | uint32(btype)<<1
	if last {
		bh |= 1
	}
	return []byte{byte(bh), byte(bh >> 8), byte(bh >> 16)}
}

// appendBlock emits content[start:end] as one block, choosing between
// RLE, compressed and raw encodings.
func (e *frameEncoder) appendBlock(out []byte, start, end int, last, compress bool) []byte {
	src := e.content[start:end]
	if len(src) > 1 && allEqual(src) {
		out = append(out, blockHeader(len(src), 1, last)...)
		return append(out, src[0])
	}
	if compress && len(src) >= 16 {
		if payload := e.compressBlock(start, end); payload != nil && len(payload) < len(src) {
			out = append(out, blockHeader(len(payload), 2, last)...)
			return append(out, payload...)
		}
	}
	out = append(out, blockHeader(len(src), 0, last)...)
	return append(out, src...)
}

func allEqual(b []byte) bool {
	for _, c := range b[1:] {
		if c != b[0] {
			return false
		}
	}
	return true
}

// seqRec is one LZ sequence: ll literals, then a match of length ml at
// distance off.
type seqRec struct {
	ll, ml, off int
}

// Length caps expressible by the last LL/ML code values.
const (
	maxLitLen   = 65536 + 65535 // LL code 35
	maxMatchLen = 65539 + 65535 // ML code 52
)

// findSequences runs the greedy matcher over content[start:end],
// returning the sequences and the concatenated literals.
func (e *frameEncoder) findSequences(start, end int) ([]seqRec, []byte) {
	src := e.content
	seqs := e.seqs[:0]
	lit := e.lit[:0]
	anchor := start
	i := start
	for i+4 <= end {
		v := binary.LittleEndian.Uint32(src[i:])
		h := hash4(v)
		cand := int(e.table[h]) - 1
		e.table[h] = int32(i + 1)
		if cand < 0 || i-cand > e.maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != v {
			i++
			continue
		}
		ml := extendMatch(src, cand, i, min(end-i, maxMatchLen))
		// ll never overflows its code range: blocks cap at 128 KiB and
		// matches start at most blockSize-4 bytes past the anchor.
		ll := i - anchor
		lit = append(lit, src[anchor:i]...)
		seqs = append(seqs, seqRec{ll: ll, ml: ml, off: i - cand})
		i += ml
		anchor = i
	}
	lit = append(lit, src[anchor:end]...)
	e.seqs, e.lit = seqs, lit
	return seqs, lit
}

// extendMatch returns the match length at src[cand:] vs src[i:]
// (cand < i, first four bytes already verified equal), comparing eight
// bytes per step; the first differing byte falls out of the XOR's
// trailing zeros. limit must not reach past len(src)-i.
func extendMatch(src []byte, cand, i, limit int) int {
	n := 4
	for n+8 <= limit {
		x := binary.LittleEndian.Uint64(src[cand+n:]) ^ binary.LittleEndian.Uint64(src[i+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for n < limit && src[cand+n] == src[i+n] {
		n++
	}
	return n
}

// compressBlock builds a compressed-block payload for
// content[start:end], or nil when compression does not pay.
func (e *frameEncoder) compressBlock(start, end int) []byte {
	seqs, lit := e.findSequences(start, end)
	litSection := e.encodeLiteralsSection(lit)
	if litSection == nil {
		return nil
	}
	seqSection := e.encodeSequencesSection(seqs)
	if seqSection == nil {
		return nil
	}
	payload := append(e.payload[:0], litSection...)
	payload = append(payload, seqSection...)
	e.payload = payload
	return payload
}

// --- literals ------------------------------------------------------------

// encodeLiteralsSection emits the literals section, choosing RLE, raw
// or Huffman-compressed encoding. The returned slice is encoder
// scratch, valid until the next block.
func (e *frameEncoder) encodeLiteralsSection(lit []byte) []byte {
	if len(lit) > 1 && allEqual(lit) {
		return append(litHeader(litRLE, len(lit), 0), lit[0])
	}
	if comp := e.huffCompressLiterals(lit); comp != nil {
		return comp
	}
	out := append(e.litOut[:0], litHeader(litRaw, len(lit), 0)...)
	out = append(out, lit...)
	e.litOut = out
	return out
}

// litHeader builds the literals section header. For raw/RLE pass
// comp=0; for compressed types regen and comp select the size format.
func litHeader(litType, regen, comp int) []byte {
	if litType == litRaw || litType == litRLE {
		switch {
		case regen < 32:
			return []byte{byte(litType | regen<<3)}
		case regen < 4096:
			return []byte{byte(litType | 1<<2 | regen<<4), byte(regen >> 4)}
		default:
			return []byte{byte(litType | 3<<2 | regen<<4), byte(regen >> 4), byte(regen >> 12)}
		}
	}
	if regen < 1024 && comp < 1024 {
		// 1-stream, 10-bit sizes.
		n := regen | comp<<10
		return []byte{byte(litType | n<<4), byte(n >> 4), byte(n >> 12)}
	}
	if regen < 16384 && comp < 16384 {
		// 4-stream, 14-bit sizes.
		n := regen | comp<<14
		return []byte{byte(litType | 2<<2 | n<<4), byte(n >> 4), byte(n >> 12), byte(n >> 20)}
	}
	// 4-stream, 18-bit sizes.
	n := regen | comp<<18
	return []byte{byte(litType | 3<<2 | n<<4), byte(n >> 4), byte(n >> 12), byte(n >> 20), byte(n >> 28)}
}

// huffCompressLiterals Huffman-codes lit (with a direct-representation
// tree description), or returns nil when it does not pay. The returned
// slice is encoder scratch, valid until the next block.
func (e *frameEncoder) huffCompressLiterals(lit []byte) []byte {
	if len(lit) < 32 {
		return nil
	}
	var freq [256]int
	last := 0
	for _, b := range lit {
		freq[b]++
		if int(b) > last {
			last = int(b)
		}
	}
	if last > 127 {
		// The direct tree description lists weights for symbols
		// 0..last-1; beyond 128 entries it cannot be encoded directly.
		return nil
	}
	lens := buildHuffLengths(&freq)
	if lens == nil {
		return nil
	}
	weights, table, err := lengthsToTable(lens)
	if err != nil {
		return nil
	}
	// Tree description: direct 4-bit weights for symbols 0..last-1.
	var desc [65]byte // 1 + ceil(127/2) is the direct-description cap
	desc[0] = byte(127 + last)
	dn := 1
	for i := 0; i < last; i += 2 {
		b := weights[i] << 4
		if i+1 < last {
			b |= weights[i+1]
		}
		desc[dn] = b
		dn++
	}

	oneStream := len(lit) < 1024
	sb := e.streamBuf[:0]
	if oneStream {
		sb = table.appendStream(sb, lit)
		e.streamBuf = sb
	} else {
		// Jump table first, then the four streams back to back; the
		// stream sizes are patched in once known.
		sb = append(sb, 0, 0, 0, 0, 0, 0)
		seg := (len(lit) + 3) / 4
		var sizes [3]int
		for s := 0; s < 3; s++ {
			p := len(sb)
			sb = table.appendStream(sb, lit[s*seg:(s+1)*seg])
			sizes[s] = len(sb) - p
		}
		sb = table.appendStream(sb, lit[3*seg:])
		e.streamBuf = sb
		if sizes[0] > 65535 || sizes[1] > 65535 || sizes[2] > 65535 {
			return nil
		}
		binary.LittleEndian.PutUint16(sb[0:], uint16(sizes[0]))
		binary.LittleEndian.PutUint16(sb[2:], uint16(sizes[1]))
		binary.LittleEndian.PutUint16(sb[4:], uint16(sizes[2]))
	}
	comp := dn + len(sb)
	if comp+5 >= len(lit) {
		return nil
	}
	var out []byte
	if oneStream {
		out = append(e.litOut[:0], litHeader(litCompressed, len(lit), comp)...)
	} else {
		// Force a 4-stream size format.
		if len(lit) < 16384 && comp < 16384 {
			n := len(lit) | comp<<14
			out = append(e.litOut[:0], byte(litCompressed|2<<2|n<<4), byte(n>>4), byte(n>>12), byte(n>>20))
		} else {
			n := len(lit) | comp<<18
			out = append(e.litOut[:0], byte(litCompressed|3<<2|n<<4), byte(n>>4), byte(n>>12), byte(n>>20), byte(n>>28))
		}
	}
	out = append(out, desc[:dn]...)
	out = append(out, sb...)
	e.litOut = out
	return out
}

// appendStream Huffman-codes src in reverse order (the backward reader
// emits symbols forward), closes with the sentinel bit, and appends the
// stream to dst.
func (t *huffTable) appendStream(dst []byte, src []byte) []byte {
	w := bitWriter{out: dst}
	for i := len(src) - 1; i >= 0; i-- {
		s := src[i]
		w.addBits(uint32(t.codes[s]), int(t.lens[s]))
	}
	return w.close()
}

// buildHuffLengths computes code lengths (≤ maxHuffBits, complete
// Kraft sum) for the non-zero frequencies, or nil for fewer than two
// distinct symbols.
func buildHuffLengths(freq *[256]int) []uint8 {
	type node struct {
		weight      int
		sym         int // -1 for internal
		left, right int // indices into nodes
	}
	var nodes []node
	var order []int
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, node{weight: f, sym: s, left: -1, right: -1})
			order = append(order, len(nodes)-1)
		}
	}
	if len(order) < 2 {
		return nil
	}
	// Two-queue Huffman over the leaves sorted by weight.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && nodes[order[j]].weight < nodes[order[j-1]].weight; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	leaves, merged := order, []int{}
	popMin := func() int {
		if len(leaves) == 0 || (len(merged) > 0 && nodes[merged[0]].weight <= nodes[leaves[0]].weight) {
			n := merged[0]
			merged = merged[1:]
			return n
		}
		n := leaves[0]
		leaves = leaves[1:]
		return n
	}
	for len(leaves)+len(merged) > 1 {
		a := popMin()
		b := popMin()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, sym: -1, left: a, right: b})
		merged = append(merged, len(nodes)-1)
	}
	lens := make([]uint8, 256)
	var walk func(n, depth int)
	walk = func(n, depth int) {
		if nodes[n].sym >= 0 {
			d := max(depth, 1)
			if d > maxHuffBits {
				d = maxHuffBits
			}
			lens[nodes[n].sym] = uint8(d)
			return
		}
		walk(nodes[n].left, depth+1)
		walk(nodes[n].right, depth+1)
	}
	walk(merged[0], 0)

	// Clamping can break the Kraft sum; restore exact completeness in
	// units of 2^-maxHuffBits.
	kraft := 0
	for _, l := range lens {
		if l > 0 {
			kraft += 1 << (maxHuffBits - l)
		}
	}
	for kraft > 1<<maxHuffBits {
		// Deepen the deepest non-maximal symbol: the cheapest step.
		deepest := -1
		for s, l := range lens {
			if l > 0 && l < maxHuffBits && (deepest < 0 || l > lens[deepest]) {
				deepest = s
			}
		}
		if deepest < 0 {
			return nil
		}
		kraft -= 1 << (maxHuffBits - lens[deepest] - 1)
		lens[deepest]++
	}
	for kraft < 1<<maxHuffBits {
		// Shorten the deepest symbol whose promotion still fits.
		fixed := false
		for l := uint8(maxHuffBits); l >= 2 && !fixed; l-- {
			for s := range lens {
				if lens[s] == l && kraft+1<<(maxHuffBits-l) <= 1<<maxHuffBits {
					kraft += 1 << (maxHuffBits - l)
					lens[s]--
					fixed = true
					break
				}
			}
		}
		if !fixed {
			return nil
		}
	}
	return lens
}

// lengthsToTable converts code lengths to zstd weights and builds the
// shared code/decode table (the encoder uses its canonical codes).
func lengthsToTable(lens []uint8) ([]uint8, *huffTable, error) {
	maxLen := uint8(0)
	lastSym := 0
	for s, l := range lens {
		if l > maxLen {
			maxLen = l
		}
		if l > 0 {
			lastSym = s
		}
	}
	weights := make([]uint8, lastSym+1)
	for s, l := range lens[:lastSym+1] {
		if l > 0 {
			weights[s] = maxLen + 1 - l
		}
	}
	table, err := buildHuffTable(weights)
	if err != nil {
		return nil, nil, err
	}
	return weights, table, nil
}

// --- sequences -----------------------------------------------------------

var llCodeLUT = func() [64]uint8 {
	var t [64]uint8
	for v := 0; v < 64; v++ {
		code := 0
		for c, e := range llCodeTable {
			if uint32(v) >= e.baseline {
				code = c
			}
		}
		t[v] = uint8(code)
	}
	return t
}()

var mlCodeLUT = func() [128]uint8 {
	var t [128]uint8
	for v := 0; v < 128; v++ {
		code := 0
		for c, e := range mlCodeTable {
			if uint32(v)+3 >= e.baseline {
				code = c
			}
		}
		t[v] = uint8(code)
	}
	return t
}()

func llCodeOf(ll int) uint8 {
	if ll < 64 {
		return llCodeLUT[ll]
	}
	return uint8(bits.Len32(uint32(ll)) - 1 + 19)
}

func mlCodeOf(mlBase int) uint8 {
	if mlBase < 128 {
		return mlCodeLUT[mlBase]
	}
	return uint8(bits.Len32(uint32(mlBase)) - 1 + 36)
}

// coded is one sequence translated to its LL/ML/OF codes and the extra
// bits each carries.
type coded struct {
	llCode, mlCode, ofCode uint8
	llX, mlX, ofX          uint32
}

// encodeSequencesSection emits the sequences section with the three
// predefined FSE tables (compression-modes byte zero). The returned
// slice is encoder scratch, valid until the next block.
func (e *frameEncoder) encodeSequencesSection(seqs []seqRec) []byte {
	out := e.seqOut[:0]
	n := len(seqs)
	switch {
	case n < 128:
		out = append(out, byte(n))
	case n < 0x7F00:
		out = append(out, byte(n>>8|0x80), byte(n))
	default:
		out = append(out, 255, byte(n-0x7F00), byte((n-0x7F00)>>8))
	}
	if n == 0 {
		return out
	}
	out = append(out, 0) // all three tables predefined

	cs := e.cs
	if cap(cs) >= n {
		cs = cs[:n]
	} else {
		cs = make([]coded, n)
		e.cs = cs
	}
	for i, s := range seqs {
		mlBase := s.ml - 3
		offVal := uint32(s.off + 3)
		ofCode := uint8(bits.Len32(offVal) - 1)
		cs[i] = coded{
			llCode: llCodeOf(s.ll), mlCode: mlCodeOf(mlBase), ofCode: ofCode,
			llX: uint32(s.ll), mlX: uint32(mlBase), ofX: offVal,
		}
	}

	w := bitWriter{out: e.bwBuf[:0]}
	lastC := cs[n-1]
	mlState := mlEncTable.init(lastC.mlCode)
	ofState := ofEncTable.init(lastC.ofCode)
	llState := llEncTable.init(lastC.llCode)
	w.addBits(lastC.llX, int(llCodeTable[lastC.llCode].bits))
	w.addBits(lastC.mlX, int(mlCodeTable[lastC.mlCode].bits))
	w.addBits(lastC.ofX, int(lastC.ofCode))
	for i := n - 2; i >= 0; i-- {
		c := cs[i]
		ofState = ofEncTable.encode(&w, ofState, c.ofCode)
		mlState = mlEncTable.encode(&w, mlState, c.mlCode)
		llState = llEncTable.encode(&w, llState, c.llCode)
		w.addBits(c.llX, int(llCodeTable[c.llCode].bits))
		w.addBits(c.mlX, int(mlCodeTable[c.mlCode].bits))
		w.addBits(c.ofX, int(c.ofCode))
	}
	mlEncTable.flush(&w, mlState)
	ofEncTable.flush(&w, ofState)
	llEncTable.flush(&w, llState)
	stream := w.close()
	e.bwBuf = stream
	out = append(out, stream...)
	e.seqOut = out
	return out
}

// --- FSE encoding tables --------------------------------------------------

type fseEncSym struct {
	deltaNbBits    uint32
	deltaFindState int32
}

type fseEncTable struct {
	log    int
	states []uint16
	syms   []fseEncSym
}

// buildFSEEncTable is the encoding-side counterpart of buildFSETable,
// sharing its symbol spread so the state machines agree.
func buildFSEEncTable(probs []int16, log int) *fseEncTable {
	size := 1 << log
	t := &fseEncTable{log: log, states: make([]uint16, size), syms: make([]fseEncSym, len(probs))}
	symbols := make([]uint8, size)
	cumul := make([]int, len(probs)+1)
	high := size - 1
	for s, p := range probs {
		if p == -1 {
			cumul[s+1] = cumul[s] + 1
			symbols[high] = uint8(s)
			high--
		} else {
			cumul[s+1] = cumul[s] + int(p)
		}
	}
	step := size>>1 + size>>3 + 3
	mask := size - 1
	pos := 0
	for s, p := range probs {
		for i := 0; i < int(p); i++ {
			symbols[pos] = uint8(s)
			pos = (pos + step) & mask
			for pos > high {
				pos = (pos + step) & mask
			}
		}
	}
	for u := 0; u < size; u++ {
		s := symbols[u]
		t.states[cumul[s]] = uint16(size + u)
		cumul[s]++
	}
	total := 0
	for s, p := range probs {
		switch {
		case p == 0:
			t.syms[s].deltaNbBits = uint32((log+1)<<16 - size)
		case p == -1 || p == 1:
			t.syms[s].deltaNbBits = uint32(log<<16 - size)
			t.syms[s].deltaFindState = int32(total - 1)
			total++
		default:
			maxBitsOut := log - (bits.Len32(uint32(p-1)) - 1)
			minStatePlus := int(p) << maxBitsOut
			t.syms[s].deltaNbBits = uint32(maxBitsOut<<16 - minStatePlus)
			t.syms[s].deltaFindState = int32(total - int(p))
			total += int(p)
		}
	}
	return t
}

func (t *fseEncTable) init(sym uint8) uint16 {
	tt := t.syms[sym]
	nbBits := (tt.deltaNbBits + 1<<15) >> 16
	base := (nbBits << 16) - tt.deltaNbBits
	return t.states[int(base>>nbBits)+int(tt.deltaFindState)]
}

func (t *fseEncTable) encode(w *bitWriter, state uint16, sym uint8) uint16 {
	tt := t.syms[sym]
	nbBits := (uint32(state) + tt.deltaNbBits) >> 16
	w.addBits(uint32(state), int(nbBits))
	return t.states[int(uint32(state)>>nbBits)+int(tt.deltaFindState)]
}

func (t *fseEncTable) flush(w *bitWriter, state uint16) {
	w.addBits(uint32(state), t.log)
}

var (
	llEncTable = buildFSEEncTable(llPredefProbs, 6)
	mlEncTable = buildFSEEncTable(mlPredefProbs, 6)
	ofEncTable = buildFSEEncTable(ofPredefProbs, 5)
)
