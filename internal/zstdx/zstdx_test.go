package zstdx

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/workloads"
)

func TestDecodeRealMultiFrame(t *testing.T) {
	comp, err := os.ReadFile("testdata/real-multiframe.zst")
	if err != nil {
		t.Fatal(err)
	}
	want := workloads.Base64(262144, 77)
	scan, err := ScanFrames(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Frames) != 4 || !scan.Sized {
		t.Fatalf("scan: %d frames, sized=%v; want 4 sized frames", len(scan.Frames), scan.Sized)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("serial decode mismatch")
	}
	got, err = DecompressParallel(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("parallel decode mismatch")
	}
}

func TestDecodeRealNoContentSize(t *testing.T) {
	comp, err := os.ReadFile("testdata/real-nosize.zst")
	if err != nil {
		t.Fatal(err)
	}
	scan, err := ScanFrames(comp)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Sized {
		t.Fatal("streamed fixture unexpectedly declares content sizes")
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if want := workloads.FASTQ(131072, 33); !bytes.Equal(got, want) {
		t.Fatal("decode mismatch")
	}
}

func TestDecodeRealRepetitive(t *testing.T) {
	comp, err := os.ReadFile("testdata/real-repetitive.zst")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if want := bytes.Repeat([]byte("zstd "), 40000); !bytes.Equal(got, want) {
		t.Fatal("decode mismatch")
	}
}

// encoderInputs are the shapes the encoder must handle; all are
// deterministic.
func encoderInputs() map[string][]byte {
	return map[string][]byte{
		"empty":   {},
		"one":     {42},
		"two":     {1, 2},
		"rle":     bytes.Repeat([]byte{7}, 100000),
		"text":    bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 5000),
		"base64":  workloads.Base64(1<<20, 5),
		"fastq":   workloads.FASTQ(1<<20, 6),
		"random":  workloads.Random(300000, 4),
		"hibytes": workloads.Random(65536, 9), // symbols ≥ 128: raw-literals path
	}
}

func encoderOptions() []FrameOptions {
	return []FrameOptions{
		{},
		{Level: 1},
		{Level: 1, ContentChecksum: true},
		{Level: 1, FrameSize: 256 << 10, ContentChecksum: true},
		{Level: 1, FrameSize: 100000, BlockSize: 10000},
		{Level: 1, OmitContentSize: true},
		{FrameSize: 1 << 18, OmitContentSize: true, ContentChecksum: true},
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	for name, data := range encoderInputs() {
		for _, opt := range encoderOptions() {
			comp := CompressFrames(data, opt)
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("%s/%+v: %v", name, opt, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%+v: mismatch (%d vs %d bytes)", name, opt, len(got), len(data))
			}
		}
	}
}

// TestEncodeInterop pipes our encoder's output through the reference
// zstd CLI when present (skipped otherwise — CI has it).
func TestEncodeInterop(t *testing.T) {
	if _, err := exec.LookPath("zstd"); err != nil {
		t.Skip("zstd binary not installed")
	}
	dir := t.TempDir()
	for name, data := range encoderInputs() {
		for i, opt := range encoderOptions() {
			comp := CompressFrames(data, opt)
			zf := filepath.Join(dir, fmt.Sprintf("%s-%d.zst", name, i))
			of := zf + ".out"
			if err := os.WriteFile(zf, comp, 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("zstd", "-d", "-f", "-o", of, zf)
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("%s/%+v: zstd -d rejected our frames: %v: %s", name, opt, err, out)
			}
			ref, err := os.ReadFile(of)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, data) {
				t.Fatalf("%s/%+v: zstd -d output mismatch", name, opt)
			}
		}
	}
}

func TestSkippableFrames(t *testing.T) {
	data := workloads.Base64(100000, 11)
	comp := AppendSkippable(nil, []byte("index payload"))
	comp = append(comp, CompressFrames(data, FrameOptions{Level: 1, FrameSize: 30000})...)
	comp = AppendSkippable(comp, nil)
	scan, err := ScanFrames(comp)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Skippable != 2 || len(scan.Frames) != 4 {
		t.Fatalf("scan: %d skippable, %d frames; want 2 and 4", scan.Skippable, len(scan.Frames))
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode mismatch around skippable frames")
	}
	r, err := NewReader(comp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSkippable() != 2 {
		t.Fatalf("NumSkippable = %d", r.NumSkippable())
	}
}

func TestReaderRandomAccess(t *testing.T) {
	data := workloads.FASTQ(1<<20, 21)
	comp := CompressFrames(data, FrameOptions{Level: 1, FrameSize: 64 << 10, ContentChecksum: true})
	r, err := NewReader(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sized() || !r.Checksummed() {
		t.Fatalf("Sized=%v Checksummed=%v; want both", r.Sized(), r.Checksummed())
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(data))
	}
	if r.NumFrames() != 16 {
		t.Fatalf("NumFrames = %d, want 16", r.NumFrames())
	}
	offsets := []int64{0, 1, 65535, 65536, 65537, 500000, int64(len(data)) - 100}
	for _, off := range offsets {
		buf := make([]byte, 1000)
		n, err := r.ReadAt(buf, off)
		want := min(len(buf), len(data)-int(off))
		if n != want || (err != nil && !errors.Is(err, io.EOF)) {
			t.Fatalf("ReadAt(%d): n=%d err=%v, want n=%d", off, n, err, want)
		}
		if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
			t.Fatalf("ReadAt(%d): content mismatch", off)
		}
	}
	// chunk table covers the stream contiguously
	var pos int64
	for i := 0; i < r.NumChunks(); i++ {
		off, size := r.ChunkExtent(i)
		if off != pos {
			t.Fatalf("chunk %d starts at %d, want %d", i, off, pos)
		}
		content, err := r.ChunkContent(i)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(content)) != size {
			t.Fatalf("chunk %d: %d bytes, extent says %d", i, len(content), size)
		}
		pos += size
	}
	if pos != r.Size() {
		t.Fatalf("chunks cover %d bytes, size is %d", pos, r.Size())
	}
}

func TestReaderConcurrentReadAt(t *testing.T) {
	data := workloads.Base64(512<<10, 13)
	comp := CompressFrames(data, FrameOptions{Level: 1, FrameSize: 32 << 10})
	r, err := NewReader(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 5000)
			for i := 0; i < 40; i++ {
				off := int64((g*97 + i*31337) % (len(data) - len(buf)))
				n, err := r.ReadAt(buf, off)
				if err != nil || n != len(buf) {
					t.Errorf("ReadAt(%d): n=%d err=%v", off, n, err)
					return
				}
				if !bytes.Equal(buf, data[off:off+int64(n)]) {
					t.Errorf("ReadAt(%d): mismatch", off)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestReaderUnsizedFrames(t *testing.T) {
	data := workloads.Base64(300<<10, 19)
	comp := CompressFrames(data, FrameOptions{Level: 1, FrameSize: 100 << 10, OmitContentSize: true})
	r, err := NewReader(comp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sized() {
		t.Fatal("OmitContentSize frames reported as sized")
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size = %d after sizing pass, want %d", r.Size(), len(data))
	}
	buf := make([]byte, 4096)
	off := int64(250 << 10)
	if _, err := r.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+4096]) {
		t.Fatal("ReadAt mismatch on unsized file")
	}
}

func TestDecompressParallelMatchesSerial(t *testing.T) {
	data := workloads.FASTQ(2<<20, 3)
	comp := CompressFrames(data, FrameOptions{Level: 1, FrameSize: 128 << 10, ContentChecksum: true})
	for _, threads := range []int{1, 2, 4, 8} {
		got, err := DecompressParallel(comp, threads)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("threads=%d: mismatch", threads)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data := workloads.Base64(50000, 2)
	comp := CompressFrames(data, FrameOptions{Level: 1, ContentChecksum: true})
	// Flip a byte inside the payload (past the 6-byte header).
	bad := append([]byte{}, comp...)
	bad[len(bad)/2] ^= 0x40
	if _, err := Decompress(bad); err == nil {
		t.Fatal("corrupted frame decoded without error")
	}
}

func TestTruncationsAndGarbageDoNotPanic(t *testing.T) {
	data := workloads.Base64(100000, 8)
	comp := CompressFrames(data, FrameOptions{Level: 1, FrameSize: 30000, ContentChecksum: true})
	for cut := 0; cut < len(comp); cut += 917 {
		if _, err := Decompress(comp[:cut]); err == nil && cut < len(comp) {
			// Truncation at a frame boundary legitimately decodes a
			// prefix; anything else must error.
			if _, serr := ScanFrames(comp[:cut]); serr == nil {
				continue
			}
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	for i := 0; i < 64; i++ {
		garbage := workloads.Random(300, uint64(i))
		_, _ = Decompress(garbage) // must not panic
	}
	if _, err := Decompress([]byte{0x28, 0xB5, 0x2F, 0xFD}); err == nil {
		t.Fatal("bare magic decoded")
	}
	if _, err := Decompress(nil); err != nil {
		t.Fatalf("empty input is zero frames, got %v", err)
	}
}

func TestDictionaryFramesRejected(t *testing.T) {
	// Frame header with Dictionary_ID_flag = 1 and a one-byte dict ID.
	frame := []byte{0x28, 0xB5, 0x2F, 0xFD, 0x01, 0x00, 0x07, 0x01, 0x00, 0x00}
	if _, err := Decompress(frame); err == nil {
		t.Fatal("dictionary frame decoded without error")
	}
}

func TestErrNotZstd(t *testing.T) {
	if _, err := ScanFrames([]byte("not a zstd file at all")); !errors.Is(err, ErrNotZstd) {
		t.Fatalf("got %v, want ErrNotZstd", err)
	}
}

func BenchmarkDecompressParallelBase64(b *testing.B) {
	data := workloads.Base64(8<<20, 42)
	comp := CompressFrames(data, FrameOptions{Level: 1, FrameSize: 1 << 20, ContentChecksum: true})
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("P%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := DecompressParallel(comp, threads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
