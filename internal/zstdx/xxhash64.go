package zstdx

import (
	"encoding/binary"
	"math/bits"
)

// xxHash64 primes.
const (
	xxPrime1 = 0x9E3779B185EBCA87
	xxPrime2 = 0xC2B2AE3D27D4EB4F
	xxPrime3 = 0x165667B19E3779F9
	xxPrime4 = 0x85EBCA77C2B2AE63
	xxPrime5 = 0x27D4EB2F165667C5
)

func xxRound(acc, v uint64) uint64 {
	acc += v * xxPrime2
	return bits.RotateLeft64(acc, 31) * xxPrime1
}

func xxMerge(h, v uint64) uint64 {
	h ^= xxRound(0, v)
	return h*xxPrime1 + xxPrime4
}

// XXH64 computes the xxHash64 of data — the content checksum of the
// Zstandard frame format (its low 32 bits are stored).
func XXH64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	p := 0
	if n >= 32 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for ; p+32 <= n; p += 32 {
			v1 = xxRound(v1, binary.LittleEndian.Uint64(data[p:]))
			v2 = xxRound(v2, binary.LittleEndian.Uint64(data[p+8:]))
			v3 = xxRound(v3, binary.LittleEndian.Uint64(data[p+16:]))
			v4 = xxRound(v4, binary.LittleEndian.Uint64(data[p+24:]))
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMerge(h, v1)
		h = xxMerge(h, v2)
		h = xxMerge(h, v3)
		h = xxMerge(h, v4)
	} else {
		h = seed + xxPrime5
	}
	h += uint64(n)
	for ; p+8 <= n; p += 8 {
		h ^= xxRound(0, binary.LittleEndian.Uint64(data[p:]))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
	}
	if p+4 <= n {
		h ^= uint64(binary.LittleEndian.Uint32(data[p:])) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		p += 4
	}
	for ; p < n; p++ {
		h ^= uint64(data[p]) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}
