package zstdx

// Micro-benchmarks isolating the three kernels of the zstd decode path:
// Huffman symbol decode (decodeStream's wide-window loop), match copy
// (appendMatch's 8-byte doubling memmoves), and bitstream refill
// (revBitReader's cached-window peek). BenchmarkDecodeFrames is the
// end-to-end composition the CI bench suite's zstd rows measure.

import (
	"bytes"
	"testing"

	"repro/internal/workloads"
)

func huffStreamFixture(b *testing.B, n int) (*huffTable, []byte, []byte) {
	b.Helper()
	lit := workloads.SilesiaLike(n, 23)
	var freq [256]int
	for _, c := range lit {
		freq[c]++
	}
	lens := buildHuffLengths(&freq)
	if lens == nil {
		b.Fatal("degenerate fixture: fewer than two distinct symbols")
	}
	_, table, err := lengthsToTable(lens)
	if err != nil {
		b.Fatal(err)
	}
	return table, table.appendStream(nil, lit), lit
}

// BenchmarkHuffDecodeStream isolates symbol decode: one long stream,
// table already built, output buffer reused.
func BenchmarkHuffDecodeStream(b *testing.B) {
	table, stream, lit := huffStreamFixture(b, 1<<20)
	dst := make([]byte, len(lit))
	b.SetBytes(int64(len(lit)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := table.decodeStream(stream, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !bytes.Equal(dst, lit) {
		b.Fatal("round trip mismatch")
	}
}

// BenchmarkAppendMatch isolates match copy at the offset classes the
// copy kernel branches on: wide non-overlapping, overlapping dist<8
// (RLE-like), and overlapping dist just under the match length.
func BenchmarkAppendMatch(b *testing.B) {
	cases := []struct {
		name       string
		offset, ml int
	}{
		{"off64KiB-len32", 64 << 10, 32},
		{"off1-len64", 1, 64},
		{"off3-len64", 3, 64},
		{"off7-len300", 7, 300},
		{"off48-len64", 48, 64},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			seed := workloads.SilesiaLike(128<<10, 5)
			buf := make([]byte, 0, len(seed)+(c.ml+8)*1024)
			buf = append(buf, seed...)
			base := len(buf)
			b.SetBytes(int64(c.ml))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(buf)+c.ml > cap(buf) {
					buf = buf[:base]
				}
				buf = appendMatch(buf, c.offset, c.ml)
			}
		})
	}
}

// BenchmarkRevBitRefill isolates the backward reader's refill path:
// a long stream of fixed-width reads walking down through the cached
// window and reloading every few reads.
func BenchmarkRevBitRefill(b *testing.B) {
	data := workloads.SilesiaLike(64<<10, 9)
	data[len(data)-1] |= 0x80 // sentinel for the backward reader
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := newRevBitReader(data)
		if err != nil {
			b.Fatal(err)
		}
		var sink uint32
		for !br.overflowed() {
			sink += br.read(13)
		}
		if sink == 0xdeadbeef {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkDecodeFrames is the end-to-end kernel composition: decode a
// multi-frame archive produced by the package's own encoder.
func BenchmarkDecodeFrames(b *testing.B) {
	data := workloads.SilesiaLike(8<<20, 17)
	comp := CompressFrames(data, FrameOptions{})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Decompress(comp)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(data) {
			b.Fatal("size mismatch")
		}
	}
}
