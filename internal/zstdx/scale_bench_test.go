package zstdx

import (
	"io"
	"math/rand"
	"testing"
)

func benchCorpus(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	words := make([][]byte, 128)
	for i := range words {
		w := make([]byte, 4+rng.Intn(12))
		for j := range w {
			w[j] = byte('a' + rng.Intn(26))
		}
		words[i] = w
	}
	data := make([]byte, 0, n)
	for len(data) < n {
		data = append(data, words[rng.Intn(len(words))]...)
		data = append(data, ' ')
	}
	return data[:n]
}

func benchWriter(b *testing.B, workers int) {
	data := benchCorpus(8 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewWriter(io.Discard, WriterOptions{Level: 1, Parallelism: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterW1(b *testing.B) { benchWriter(b, 1) }
func BenchmarkWriterW4(b *testing.B) { benchWriter(b, 4) }
