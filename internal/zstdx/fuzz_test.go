package zstdx

import (
	"bytes"
	"testing"
)

// FuzzDecompress hardens the newest parser in the tree: arbitrary
// bytes must produce an error or a decode, never a panic or a hang.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x28, 0xB5, 0x2F, 0xFD})
	f.Add(CompressFrames([]byte("seed data seed data seed data"), FrameOptions{Level: 1, ContentChecksum: true}))
	f.Add(CompressFrames(bytes.Repeat([]byte{9}, 1000), FrameOptions{}))
	f.Add(AppendSkippable(nil, []byte("skip")))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(data)
		if err != nil {
			return
		}
		// Whatever decoded must round-trip through the scanner's sizes.
		scan, serr := ScanFrames(data)
		if serr != nil {
			t.Fatalf("Decompress accepted what ScanFrames rejects: %v", serr)
		}
		if scan.Sized {
			var total int64
			for _, fr := range scan.Frames {
				total += fr.ContentSize
			}
			if total != int64(len(out)) {
				t.Fatalf("declared sizes sum to %d, decoded %d bytes", total, len(out))
			}
		}
	})
}
