package zstdx

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func writerPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(5) == 0 {
			b.WriteByte(byte(rng.Intn(256)))
		}
	}
	return b.Bytes()[:n]
}

// TestZstdWriterRoundTrip checks parallel multi-frame output decodes
// byte-exact with this package's own decoder across boundary sizes.
func TestZstdWriterRoundTrip(t *testing.T) {
	shard := 8 << 10
	for _, n := range []int{0, 1, shard - 1, shard, shard + 1, 4*shard + 77} {
		for _, level := range []int{0, 1} {
			data := writerPayload(n, int64(n+level))
			var out bytes.Buffer
			w, err := NewWriter(&out, WriterOptions{Level: level, ShardSize: shard, Parallelism: 3, ContentChecksum: true})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(data); err != nil {
				t.Fatalf("n=%d Write: %v", n, err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("n=%d Close: %v", n, err)
			}
			dec, err := Decompress(out.Bytes())
			if err != nil {
				t.Fatalf("n=%d level=%d decode: %v", n, level, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("n=%d level=%d round trip mismatch", n, level)
			}
		}
	}
}

// TestZstdWriterSized asserts the output is metadata-sized: ScanFrames
// recovers the full decode plan from headers alone, matching the
// checkpoint table the writer recorded.
func TestZstdWriterSized(t *testing.T) {
	shard := 10 << 10
	data := writerPayload(3*shard+123, 9)
	var out bytes.Buffer
	w, _ := NewWriter(&out, WriterOptions{Level: 1, ShardSize: shard, Parallelism: 4})
	if _, err := w.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanFrames(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Sized {
		t.Fatal("output not metadata-sized: a frame omitted its content size")
	}
	cps := w.Checkpoints()
	if len(scan.Frames) != len(cps) || len(cps) != 4 {
		t.Fatalf("scan found %d frames, writer recorded %d checkpoints, want 4", len(scan.Frames), len(cps))
	}
	for i, f := range scan.Frames {
		cp := cps[i]
		if f.Offset != cp.CompOff || f.End != cp.CompEnd ||
			f.ContentStart != cp.DecompOff || f.ContentSize != cp.DecompSize {
			t.Fatalf("frame %d scan %+v != checkpoint %+v", i, f, cp)
		}
	}
	if w.Flags()&FlagMetadataSized == 0 {
		t.Fatal("writer flags missing FlagMetadataSized")
	}
	if w.Flags()&FlagChecksummed != 0 {
		t.Fatal("writer flags claim checksums that were not written")
	}
	if w.CompressedSize() != int64(out.Len()) || w.UncompressedSize() != int64(len(data)) {
		t.Fatalf("sizes (%d,%d), want (%d,%d)", w.CompressedSize(), w.UncompressedSize(), out.Len(), len(data))
	}
}

// TestZstdWriterEmpty checks an empty input still yields one valid
// sized frame.
func TestZstdWriterEmpty(t *testing.T) {
	var out bytes.Buffer
	w, _ := NewWriter(&out, WriterOptions{Level: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("empty input produced no frame")
	}
	dec, err := Decompress(out.Bytes())
	if err != nil || len(dec) != 0 {
		t.Fatalf("decode = %d bytes, %v", len(dec), err)
	}
	if len(w.Checkpoints()) != 1 {
		t.Fatalf("got %d checkpoints, want 1", len(w.Checkpoints()))
	}
}

// TestZstdWriterErrors covers invalid options and write-after-close.
func TestZstdWriterErrors(t *testing.T) {
	if _, err := NewWriter(io.Discard, WriterOptions{ShardSize: -1}); err == nil {
		t.Fatal("negative shard size accepted")
	}
	w, _ := NewWriter(io.Discard, WriterOptions{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write after Close accepted")
	}
}
