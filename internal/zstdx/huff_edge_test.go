package zstdx

// Edge cases of the wide-window Huffman decode loops: codes at the
// format's 11-bit length limit (the widest lookups the five-per-refill
// budget must absorb), near-end streams that never enter the fast loop,
// and the interleaved four-stream kernel resuming its checked tails.

import (
	"bytes"
	"testing"
)

// maxBitsTable builds a table whose longest codes hit maxHuffBits: one
// symbol per weight 1..10 (weight sum 1023), one at weight 11 (1024),
// and one extra weight-1 symbol complete the 2^11 sum, so maxBits == 11
// and the weight-1 symbols decode through full-width 11-bit lookups.
func maxBitsTable(t *testing.T) *huffTable {
	t.Helper()
	weights := make([]uint8, 12)
	for i := 0; i < 10; i++ {
		weights[i] = uint8(i + 1)
	}
	weights[10] = 11
	weights[11] = 1
	tab, err := buildHuffTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	if tab.maxBits != maxHuffBits {
		t.Fatalf("maxBits = %d, want %d", tab.maxBits, maxHuffBits)
	}
	return tab
}

func TestHuffDecodeMaxLengthCodes(t *testing.T) {
	tab := maxBitsTable(t)
	// A symbol mix leaning on the 11-bit codes (the weight-1 symbols 0
	// and 11), long enough to drive the fast loop through many refills.
	lit := make([]byte, 4096)
	for i := range lit {
		lit[i] = byte([]uint8{0, 11, 10, 0, 9, 11, 10, 5}[i&7])
	}
	stream := tab.appendStream(nil, lit)
	got := make([]byte, len(lit))
	if err := tab.decodeStream(stream, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, lit) {
		t.Fatal("max-length-code round trip mismatch")
	}
}

// TestHuffDecodeShortStreams sweeps output lengths around the fast
// loop's entry threshold: the shortest streams decode entirely in the
// checked tail, slightly longer ones cross the fast/tail handoff with
// the final codes in the stream's first (last-read) bytes.
func TestHuffDecodeShortStreams(t *testing.T) {
	tab := maxBitsTable(t)
	for n := 1; n <= 64; n++ {
		lit := make([]byte, n)
		for i := range lit {
			lit[i] = byte([]uint8{0, 11, 3, 10}[i&3])
		}
		stream := tab.appendStream(nil, lit)
		got := make([]byte, n)
		if err := tab.decodeStream(stream, got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, lit) {
			t.Fatalf("n=%d: mismatch", n)
		}
	}
}

// TestHuffDecode4StreamsUneven drives the interleaved kernel with
// deliberately unequal stream lengths, so the streams leave the joint
// fast loop at different points and each per-stream checked tail must
// resume from its own interleaved cursor.
func TestHuffDecode4StreamsUneven(t *testing.T) {
	tab := maxBitsTable(t)
	lens := [4]int{2000, 3, 997, 64}
	var srcs, dsts [4][]byte
	var want [4][]byte
	for k, n := range lens {
		lit := make([]byte, n)
		for i := range lit {
			lit[i] = byte([]uint8{0, 11, 10, 9, 5}[(i+k)%5])
		}
		want[k] = lit
		srcs[k] = tab.appendStream(nil, lit)
		dsts[k] = make([]byte, n)
	}
	if err := tab.decode4Streams(&srcs, &dsts); err != nil {
		t.Fatal(err)
	}
	for k := range dsts {
		if !bytes.Equal(dsts[k], want[k]) {
			t.Fatalf("stream %d: mismatch", k)
		}
	}
}

// TestHuffDecodeTruncatedStream: cutting bytes off an otherwise valid
// stream must error (too few bits, or a dead cursor), never hang or
// over-read.
func TestHuffDecodeTruncatedStream(t *testing.T) {
	tab := maxBitsTable(t)
	lit := make([]byte, 512)
	for i := range lit {
		lit[i] = byte([]uint8{0, 11, 10, 7}[i&3])
	}
	stream := tab.appendStream(nil, lit)
	got := make([]byte, len(lit))
	for cut := 1; cut <= 8 && cut < len(stream); cut++ {
		if err := tab.decodeStream(stream[:len(stream)-cut], got); err == nil {
			t.Fatalf("cut=%d: truncated stream decoded", cut)
		}
	}
	if err := tab.decodeStream(nil, got); err == nil {
		t.Fatal("empty stream decoded")
	}
}
