package lz4x

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/filereader"
	"repro/internal/xxhash"
)

// FrameMagic introduces every LZ4 frame.
const FrameMagic = 0x184D2204

// ErrNotLZ4 reports a missing frame magic.
var ErrNotLZ4 = errors.New("lz4x: not an LZ4 frame")

// ErrChecksum reports a failed xxHash32 verification.
var ErrChecksum = errors.New("lz4x: checksum mismatch")

// FLG bits (frame descriptor).
const (
	flgVersion      = 1 << 6
	flgBlockIndep   = 1 << 5
	flgBlockCheck   = 1 << 4
	flgContentSize  = 1 << 3
	flgContentCheck = 1 << 2
)

// FrameOptions configures CompressFrames.
type FrameOptions struct {
	// BlockSize is the uncompressed bytes per block (max 4 MiB); zero
	// selects 64 KiB. It is rounded up to the nearest frame-format
	// block-maximum class (64K/256K/1M/4M).
	BlockSize int
	// FrameSize splits the input into independent frames of this many
	// uncompressed bytes. Zero writes a single frame. Multi-frame files
	// are the pzstd-style trivially parallelizable structure (§4.9:
	// "For pzstd, Zstandard files with more than one frame are
	// required").
	FrameSize int
	// BlockChecksums appends an xxHash32 to every block.
	BlockChecksums bool
	// ContentChecksum appends an xxHash32 of the whole frame content.
	ContentChecksum bool
}

func (o FrameOptions) withDefaults() FrameOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 64 << 10
	}
	if o.BlockSize > 4<<20 {
		o.BlockSize = 4 << 20
	}
	return o
}

// bdClass returns the BD byte value and actual maximum for a block size.
func bdClass(blockSize int) (byte, int) {
	switch {
	case blockSize <= 64<<10:
		return 4 << 4, 64 << 10
	case blockSize <= 256<<10:
		return 5 << 4, 256 << 10
	case blockSize <= 1<<20:
		return 6 << 4, 1 << 20
	default:
		return 7 << 4, 4 << 20
	}
}

// CompressFrames compresses data into one or more LZ4 frames. Every
// frame carries its uncompressed content size, which is what allows
// the scanner to plan parallel decompression without decoding.
func CompressFrames(data []byte, opts FrameOptions) []byte {
	opts = opts.withDefaults()
	frameSize := opts.FrameSize
	if frameSize <= 0 {
		frameSize = len(data)
	}
	var out []byte
	for start := 0; ; start += frameSize {
		end := start + frameSize
		if end > len(data) {
			end = len(data)
		}
		out = appendFrame(out, data[start:end], opts)
		if end == len(data) {
			break
		}
	}
	return out
}

func appendFrame(out, content []byte, opts FrameOptions) []byte {
	out = binary.LittleEndian.AppendUint32(out, FrameMagic)
	flg := byte(flgVersion | flgBlockIndep | flgContentSize)
	if opts.BlockChecksums {
		flg |= flgBlockCheck
	}
	if opts.ContentChecksum {
		flg |= flgContentCheck
	}
	bd, _ := bdClass(opts.BlockSize)
	descStart := len(out)
	out = append(out, flg, bd)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(content)))
	out = append(out, byte(xxhash.Sum32(out[descStart:], 0)>>8)) // HC byte

	for off := 0; off < len(content) || (off == 0 && len(content) == 0); off += opts.BlockSize {
		end := off + opts.BlockSize
		if end > len(content) {
			end = len(content)
		}
		raw := content[off:end]
		comp := CompressBlock(raw, nil)
		if len(comp) >= len(raw) && len(raw) > 0 {
			// Store incompressible blocks with the high bit set.
			out = binary.LittleEndian.AppendUint32(out, uint32(len(raw))|1<<31)
			out = append(out, raw...)
			if opts.BlockChecksums {
				out = binary.LittleEndian.AppendUint32(out, xxhash.Sum32(raw, 0))
			}
		} else {
			out = binary.LittleEndian.AppendUint32(out, uint32(len(comp)))
			out = append(out, comp...)
			if opts.BlockChecksums {
				out = binary.LittleEndian.AppendUint32(out, xxhash.Sum32(comp, 0))
			}
		}
		if len(content) == 0 {
			break
		}
	}
	out = binary.LittleEndian.AppendUint32(out, 0) // EndMark
	if opts.ContentChecksum {
		out = binary.LittleEndian.AppendUint32(out, xxhash.Sum32(content, 0))
	}
	return out
}

// FrameInfo locates one frame inside a multi-frame file. Fields are
// int64: the scan also runs over positional readers, where offsets are
// not bounded by a slice length (files can exceed 2 GiB on 32-bit
// platforms).
type FrameInfo struct {
	// Offset is the byte position of the frame magic.
	Offset int64
	// End is the byte position just past the frame.
	End int64
	// ContentSize is the declared uncompressed size.
	ContentSize int64
	// ContentStart is the uncompressed offset of this frame's content.
	ContentStart int64

	// flg is the frame descriptor byte, kept so consumers of the scan
	// (Reader capability reporting) need not re-parse the header.
	flg byte
}

// frameHeader is the parsed fixed part of a frame.
type frameHeader struct {
	flg, bd     byte
	contentSize int
	headerLen   int
}

func parseFrameHeader(data []byte) (frameHeader, error) {
	var h frameHeader
	if len(data) < 7 {
		return h, ErrNotLZ4
	}
	if binary.LittleEndian.Uint32(data) != FrameMagic {
		return h, ErrNotLZ4
	}
	h.flg = data[4]
	h.bd = data[5]
	if h.flg&0xC0 != flgVersion {
		return h, fmt.Errorf("lz4x: unsupported frame version %#x", h.flg>>6)
	}
	p := 6
	if h.flg&flgContentSize != 0 {
		if len(data) < p+9 {
			return h, ErrNotLZ4
		}
		h.contentSize = int(binary.LittleEndian.Uint64(data[p:]))
		p += 8
	} else {
		h.contentSize = -1
	}
	hc := data[p]
	p++
	if byte(xxhash.Sum32(data[4:p-1], 0)>>8) != hc {
		return h, fmt.Errorf("lz4x: header checksum mismatch")
	}
	h.headerLen = p
	return h, nil
}

// ScanFramesReader is ScanFrames over a positional reader: frame and
// block headers are parsed through a small refill window and block
// payloads are skipped without reading them, so sizing a multi-
// gigabyte file touches only its metadata bytes. Memory-backed sources
// take the zero-copy whole-buffer path.
func ScanFramesReader(src filereader.FileReader) ([]FrameInfo, error) {
	if data, ok := filereader.Bytes(src); ok {
		return ScanFrames(data)
	}
	w := filereader.NewWalker(src, 0)
	var frames []FrameInfo
	var contentPos int64
	for w.Remaining() > 0 {
		pos := w.Pos()
		// The fixed header is at most 19 bytes (magic, FLG, BD, 8-byte
		// content size, HC); peek what the file still has and let the
		// parser report truncation.
		hdrLen := int64(19)
		if hdrLen > w.Remaining() {
			hdrLen = w.Remaining()
		}
		hdr, err := w.Peek(int(hdrLen))
		if err != nil {
			return nil, fmt.Errorf("lz4x: frame %d at offset %d: %w", len(frames), pos, err)
		}
		h, err := parseFrameHeader(hdr)
		if err != nil {
			return nil, fmt.Errorf("lz4x: frame %d at offset %d: %w", len(frames), pos, err)
		}
		if h.contentSize < 0 {
			return nil, fmt.Errorf("lz4x: frame %d lacks a content size; cannot parallelize", len(frames))
		}
		w.Skip(int64(h.headerLen))
		for {
			b, err := w.Next(4)
			if err != nil {
				return nil, fmt.Errorf("lz4x: truncated frame %d: %w", len(frames), err)
			}
			bsize := binary.LittleEndian.Uint32(b)
			if bsize == 0 {
				break // EndMark
			}
			w.Skip(int64(bsize &^ (1 << 31)))
			if h.flg&flgBlockCheck != 0 {
				w.Skip(4)
			}
			if w.Remaining() < 0 {
				return nil, fmt.Errorf("lz4x: truncated frame %d", len(frames))
			}
		}
		if h.flg&flgContentCheck != 0 {
			w.Skip(4)
			if w.Remaining() < 0 {
				return nil, fmt.Errorf("lz4x: truncated frame %d", len(frames))
			}
		}
		frames = append(frames, FrameInfo{
			Offset: pos, End: w.Pos(), ContentSize: int64(h.contentSize), ContentStart: contentPos,
			flg: h.flg,
		})
		contentPos += int64(h.contentSize)
	}
	return frames, nil
}

// ScanFrames walks a multi-frame file without decompressing, using the
// per-block size fields to skip block payloads. This is the planning
// pass of the parallel decompressor.
func ScanFrames(data []byte) ([]FrameInfo, error) {
	var frames []FrameInfo
	pos, contentPos := 0, 0
	for pos < len(data) {
		h, err := parseFrameHeader(data[pos:])
		if err != nil {
			return nil, fmt.Errorf("lz4x: frame %d at offset %d: %w", len(frames), pos, err)
		}
		if h.contentSize < 0 {
			return nil, fmt.Errorf("lz4x: frame %d lacks a content size; cannot parallelize", len(frames))
		}
		p := pos + h.headerLen
		for {
			if p+4 > len(data) {
				return nil, fmt.Errorf("lz4x: truncated frame %d", len(frames))
			}
			bsize := binary.LittleEndian.Uint32(data[p:])
			p += 4
			if bsize == 0 {
				break // EndMark
			}
			n := int(bsize &^ (1 << 31))
			p += n
			if h.flg&flgBlockCheck != 0 {
				p += 4
			}
			if p > len(data) {
				return nil, fmt.Errorf("lz4x: truncated frame %d", len(frames))
			}
		}
		if h.flg&flgContentCheck != 0 {
			p += 4
			if p > len(data) {
				return nil, fmt.Errorf("lz4x: truncated frame %d", len(frames))
			}
		}
		frames = append(frames, FrameInfo{
			Offset: int64(pos), End: int64(p), ContentSize: int64(h.contentSize), ContentStart: int64(contentPos),
			flg: h.flg,
		})
		contentPos += h.contentSize
		pos = p
	}
	return frames, nil
}

// decompressFrame inflates one frame into dst (sized ContentSize).
func decompressFrame(data []byte, dst []byte) error {
	h, err := parseFrameHeader(data)
	if err != nil {
		return err
	}
	blockMax := []int{0, 0, 0, 0, 64 << 10, 256 << 10, 1 << 20, 4 << 20}[(h.bd>>4)&7]
	if blockMax == 0 {
		return fmt.Errorf("lz4x: invalid BD byte %#x", h.bd)
	}
	p := h.headerLen
	dp := 0
	for {
		if p+4 > len(data) {
			return ErrCorrupt
		}
		bsize := binary.LittleEndian.Uint32(data[p:])
		p += 4
		if bsize == 0 {
			break
		}
		stored := bsize&(1<<31) != 0
		n := int(bsize &^ (1 << 31))
		if n > blockMax+blockMax/255+16 || p+n > len(data) {
			return ErrCorrupt
		}
		payload := data[p : p+n]
		p += n
		if h.flg&flgBlockCheck != 0 {
			if p+4 > len(data) {
				return ErrCorrupt
			}
			if binary.LittleEndian.Uint32(data[p:]) != xxhash.Sum32(payload, 0) {
				return ErrChecksum
			}
			p += 4
		}
		if stored {
			if dp+n > len(dst) {
				return ErrCorrupt
			}
			copy(dst[dp:], payload)
			dp += n
		} else {
			// A compressed block inflates to at most blockMax bytes and
			// never past the declared content size.
			end := dp + blockMax
			if end > len(dst) {
				end = len(dst)
			}
			var out int
			var err error
			if h.flg&flgBlockIndep != 0 {
				out, err = decompressBlockInto(payload, dst[dp:end])
			} else {
				// Linked blocks: matches may reach back into earlier
				// blocks of the same frame, so decode with the frame
				// output so far as history.
				out, err = decompressBlockLoose(payload, dst[:end], dp)
			}
			if err != nil {
				return err
			}
			dp += out
		}
	}
	if h.flg&flgContentCheck != 0 {
		if p+4 > len(data) {
			return ErrCorrupt
		}
		if binary.LittleEndian.Uint32(data[p:]) != xxhash.Sum32(dst[:dp], 0) {
			return ErrChecksum
		}
	}
	if dp != len(dst) {
		return fmt.Errorf("lz4x: frame decoded %d bytes, header declared %d", dp, len(dst))
	}
	return nil
}

// decompressBlockInto is DecompressBlock for a block whose exact output
// size is unknown (only bounded): it returns the bytes produced.
func decompressBlockInto(src, dst []byte) (int, error) {
	// DecompressBlock demands an exact-size dst; blocks inside frames
	// are exact-size by construction except possibly the last one.
	// Try exact first (the common case: all blocks full), then shrink.
	n, err := DecompressBlock(src, dst)
	if err == nil {
		return n, nil
	}
	// Fallback: decode with a tolerant variant.
	return decompressBlockLoose(src, dst, 0)
}

// decompressBlockLoose decodes src into dst starting at position start,
// allowing the output to end before dst is full. dst[:start] is match
// history: offsets may reach into it (the linked-block mode of the
// frame format). It returns the number of bytes produced.
func decompressBlockLoose(src, dst []byte, start int) (int, error) {
	sp, dp := 0, start
	readLen := func(base int) (int, error) {
		v := base
		for {
			if sp >= len(src) {
				return 0, ErrCorrupt
			}
			b := src[sp]
			sp++
			v += int(b)
			if b != 255 {
				return v, nil
			}
		}
	}
	for sp < len(src) {
		token := src[sp]
		sp++
		litLen := int(token >> tokenLitSh)
		if litLen == 15 {
			var err error
			if litLen, err = readLen(15); err != nil {
				return dp - start, err
			}
		}
		if sp+litLen > len(src) || dp+litLen > len(dst) {
			return dp - start, ErrCorrupt
		}
		copy(dst[dp:], src[sp:sp+litLen])
		sp += litLen
		dp += litLen
		if sp == len(src) {
			return dp - start, nil
		}
		if sp+2 > len(src) {
			return dp - start, ErrCorrupt
		}
		offset := int(binary.LittleEndian.Uint16(src[sp:]))
		sp += 2
		if offset == 0 || offset > dp {
			return dp - start, ErrCorrupt
		}
		matchLen := int(token & 15)
		if matchLen == 15 {
			var err error
			if matchLen, err = readLen(15); err != nil {
				return dp - start, err
			}
		}
		matchLen += minMatch
		if dp+matchLen > len(dst) {
			return dp - start, ErrCorrupt
		}
		m := dp - offset
		for i := 0; i < matchLen; i++ {
			dst[dp+i] = dst[m+i]
		}
		dp += matchLen
	}
	return dp - start, nil
}

// Decompress inflates a (possibly multi-frame) LZ4 file serially.
func Decompress(data []byte) ([]byte, error) {
	frames, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	var total int64
	for _, f := range frames {
		total += f.ContentSize
	}
	out := make([]byte, total)
	for _, f := range frames {
		if err := decompressFrame(data[f.Offset:f.End], out[f.ContentStart:f.ContentStart+f.ContentSize]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
