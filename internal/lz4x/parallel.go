package lz4x

import (
	"fmt"

	"repro/internal/pool"
)

// DecompressParallel inflates a multi-frame LZ4 file with frame-level
// parallelism — the pzstd scheme of §4.9: the content-size metadata in
// every frame header lets the scanner pre-compute all output positions,
// so frames decode into disjoint slices of one allocation with no
// inter-frame dependencies at all. (Contrast with gzip, where rapidgzip
// must discover chunk boundaries speculatively.)
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	frames, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, f := range frames {
		total += f.ContentSize
	}
	out := make([]byte, total)
	if threads < 1 {
		threads = 1
	}
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[struct{}], len(frames))
	for i, f := range frames {
		futs[i] = pool.Go(p, func() (struct{}, error) {
			err := decompressFrame(data[f.Offset:f.End], out[f.ContentStart:f.ContentStart+f.ContentSize])
			return struct{}{}, err
		})
	}
	for i, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			return nil, fmt.Errorf("lz4x: frame %d: %w", i, err)
		}
	}
	return out, nil
}
