package lz4x

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/pool"
)

// DecompressParallel inflates a multi-frame LZ4 file with frame-level
// parallelism — the pzstd scheme of §4.9: the content-size metadata in
// every frame header lets the scanner pre-compute all output positions,
// so frames decode into disjoint slices of one allocation with no
// inter-frame dependencies at all. (Contrast with gzip, where rapidgzip
// must discover chunk boundaries speculatively.)
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	frames, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, f := range frames {
		total += f.ContentSize
	}
	out := make([]byte, total)
	if threads < 1 {
		threads = 1
	}
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[struct{}], len(frames))
	for i, f := range frames {
		futs[i] = pool.Go(p, func() (struct{}, error) {
			err := decompressFrame(data[f.Offset:f.End], out[f.ContentStart:f.ContentStart+f.ContentSize])
			return struct{}{}, err
		})
	}
	for i, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			return nil, fmt.Errorf("lz4x: frame %d: %w", i, err)
		}
	}
	return out, nil
}

// Reader provides checkpointed random access into a (possibly
// multi-frame) LZ4 file: the frame table from ScanFrames is the
// checkpoint database — every frame header declares its content size,
// so all decompressed extents are known without decoding anything —
// and ReadAt inflates only the frames overlapping the request, keeping
// recently used frame outputs in a small LRU cache.
//
// This is the LZ4 instantiation of the paper's chunk-fetcher pattern
// (Figure 5), degenerate in the best way: where gzip needs speculative
// two-stage decoding to discover chunk boundaries, the LZ4 frame
// format hands the whole chunk table over for free.
//
// All methods are safe for concurrent use.
type Reader struct {
	data    []byte
	frames  []FrameInfo
	size    int64
	threads int
	indep   bool // every frame flags block independence
	checked bool // any frame carries block or content checksums

	mu    sync.Mutex
	cache *cache.Cache[int, []byte] // frame index -> decompressed content
}

// NewReader scans data and returns a random-access reader. It fails on
// anything ScanFrames cannot plan — in particular frames that omit the
// content-size field.
func NewReader(data []byte, threads int) (*Reader, error) {
	frames, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = 1
	}
	r := &Reader{
		data:    data,
		frames:  frames,
		threads: threads,
		indep:   true,
		cache:   cache.NewLRUCache[int, []byte](max(2*threads, 4)),
	}
	for _, f := range frames {
		if f.flg&flgBlockIndep == 0 {
			r.indep = false
		}
		if f.flg&(flgBlockCheck|flgContentCheck) != 0 {
			r.checked = true
		}
		r.size += int64(f.ContentSize)
	}
	return r, nil
}

// Size returns the total decompressed size (known up front from the
// frame headers).
func (r *Reader) Size() int64 { return r.size }

// NumFrames returns the number of checkpoints (frames).
func (r *Reader) NumFrames() int { return len(r.frames) }

// BlockIndependent reports whether every frame declares independent
// blocks. Dependent blocks decode fine (the whole frame is always
// inflated as a unit) but make the frame the smallest seekable grain.
func (r *Reader) BlockIndependent() bool { return r.indep }

// Checksummed reports whether any frame carries xxHash32 block or
// content checksums, i.e. whether decoding verifies payload integrity.
func (r *Reader) Checksummed() bool { return r.checked }

// frameContent returns the decompressed content of frame i, serving it
// from the LRU cache when possible. The decode itself runs outside the
// lock so concurrent reads of different frames overlap on multiple
// cores; two goroutines racing on the same frame duplicate work, not
// results.
func (r *Reader) frameContent(i int) ([]byte, error) {
	r.mu.Lock()
	if out, ok := r.cache.Get(i); ok {
		r.mu.Unlock()
		return out, nil
	}
	r.mu.Unlock()
	f := r.frames[i]
	out := make([]byte, f.ContentSize)
	if err := decompressFrame(r.data[f.Offset:f.End], out); err != nil {
		return nil, fmt.Errorf("lz4x: frame %d: %w", i, err)
	}
	r.mu.Lock()
	r.cache.Put(i, out)
	r.mu.Unlock()
	return out, nil
}

// NumChunks, ChunkExtent and ChunkContent expose the checkpoint table
// generically (one chunk = one frame), so a consumer can pipeline
// ordered sequential reads with parallel decodes.
func (r *Reader) NumChunks() int { return len(r.frames) }

// ChunkExtent returns the decompressed offset and size of chunk i.
func (r *Reader) ChunkExtent(i int) (off, size int64) {
	return int64(r.frames[i].ContentStart), int64(r.frames[i].ContentSize)
}

// ChunkContent returns the decompressed content of chunk i. The
// returned slice is shared with the cache and must not be modified.
func (r *Reader) ChunkContent(i int) ([]byte, error) { return r.frameContent(i) }

// ReadAt implements io.ReaderAt over the decompressed stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("lz4x: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		if off >= r.size {
			return n, io.EOF
		}
		// Last frame whose content starts at or before off. Frames with
		// ContentSize 0 never cover any offset; skip past them.
		i := sort.Search(len(r.frames), func(i int) bool {
			return int64(r.frames[i].ContentStart) > off
		}) - 1
		for i < len(r.frames) && int64(r.frames[i].ContentStart+r.frames[i].ContentSize) <= off {
			i++
		}
		if i < 0 || i >= len(r.frames) {
			return n, io.EOF
		}
		out, err := r.frameContent(i)
		if err != nil {
			return n, err
		}
		within := off - int64(r.frames[i].ContentStart)
		c := copy(p[n:], out[within:])
		n += c
		off += int64(c)
	}
	return n, nil
}
