package lz4x

import (
	"fmt"

	"repro/internal/filereader"
	"repro/internal/pool"
	"repro/internal/spanengine"
)

// FormatTag identifies LZ4 checkpoint tables in persisted indexes.
const FormatTag = "lz4 "

// Codec capability flags persisted alongside the checkpoint table.
const (
	// FlagChecksummed marks files whose frames carry xxHash32 block or
	// content checksums, i.e. decoding verifies payload integrity.
	FlagChecksummed uint8 = 1 << 0
	// FlagBlockIndep marks files whose every frame declares independent
	// blocks.
	FlagBlockIndep uint8 = 1 << 1
)

// DecompressParallel inflates a multi-frame LZ4 file with frame-level
// parallelism — the pzstd scheme of §4.9: the content-size metadata in
// every frame header lets the scanner pre-compute all output positions,
// so frames decode into disjoint slices of one allocation with no
// inter-frame dependencies at all. (Contrast with gzip, where rapidgzip
// must discover chunk boundaries speculatively.)
func DecompressParallel(data []byte, threads int) ([]byte, error) {
	frames, err := ScanFrames(data)
	if err != nil {
		return nil, err
	}
	var total int64
	for _, f := range frames {
		total += f.ContentSize
	}
	out := make([]byte, total)
	if threads < 1 {
		threads = 1
	}
	p := pool.New(threads)
	defer p.Close()
	futs := make([]*pool.Future[struct{}], len(frames))
	for i, f := range frames {
		futs[i] = pool.Go(p, func() (struct{}, error) {
			err := decompressFrame(data[f.Offset:f.End], out[f.ContentStart:f.ContentStart+f.ContentSize])
			return struct{}{}, err
		})
	}
	for i, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			return nil, fmt.Errorf("lz4x: frame %d: %w", i, err)
		}
	}
	return out, nil
}

// Codec is the LZ4 half of the shared span engine. LZ4 is the paper's
// best case, degenerate in the right way: every frame header declares
// its content size, so Scan is a pure header walk — zero sizing
// decodes — and the whole checkpoint table comes from metadata.
type Codec struct{}

// FormatTag implements spanengine.Codec.
func (Codec) FormatTag() string { return FormatTag }

// Scan implements spanengine.Codec via ScanFramesReader (the §4.9
// metadata planning pass, windowed: only header bytes are ever read).
// It fails on anything the scan cannot plan — in particular frames
// that omit the content-size field.
func (Codec) Scan(src filereader.FileReader) (spanengine.ScanResult, error) {
	frames, err := ScanFramesReader(src)
	if err != nil {
		return spanengine.ScanResult{}, err
	}
	res := spanengine.ScanResult{Flags: FlagBlockIndep}
	for _, f := range frames {
		if f.flg&flgBlockIndep == 0 {
			res.Flags &^= FlagBlockIndep
		}
		if f.flg&(flgBlockCheck|flgContentCheck) != 0 {
			res.Flags |= FlagChecksummed
		}
		res.Spans = append(res.Spans, spanengine.Span{
			CompOff:    f.Offset,
			CompEnd:    f.End,
			DecompOff:  f.ContentStart,
			DecompSize: f.ContentSize,
		})
	}
	return res, nil
}

// DecodeSpan implements spanengine.Codec: one span is one frame, read
// with one pread of its compressed extent and inflated as a unit
// (dependent blocks decode fine — the frame is the smallest seekable
// grain either way).
func (Codec) DecodeSpan(src filereader.FileReader, s spanengine.Span) ([]byte, error) {
	ext, release, err := filereader.Extent(src, s.CompOff, s.CompEnd)
	if err != nil {
		return nil, err
	}
	defer release()
	out := make([]byte, s.DecompSize)
	if err := decompressFrame(ext, out); err != nil {
		return nil, fmt.Errorf("lz4x: frame at offset %d: %w", s.CompOff, err)
	}
	return out, nil
}

// Reader provides checkpointed random access into a (possibly
// multi-frame) LZ4 file, served by the shared span engine: the frame
// table from ScanFrames (or a persisted index) is the checkpoint
// database, and ReadAt inflates only the frames overlapping the
// request, with the engine's LRU cache and prefetcher around it.
//
// All methods are safe for concurrent use.
type Reader struct {
	eng *spanengine.Engine
}

// NewReader scans data and returns a random-access reader. It fails on
// anything ScanFrames cannot plan — in particular frames that omit the
// content-size field.
func NewReader(data []byte, threads int) (*Reader, error) {
	return NewReaderConfig(filereader.MemoryReader(data), spanengine.Config{Threads: threads})
}

// NewReaderConfig is NewReader with full engine tuning (cache size,
// prefetch depth, strategy), over any positional source — an open file
// serves random access with only headers read at open and one frame
// extent per decode.
func NewReaderConfig(src filereader.FileReader, cfg spanengine.Config) (*Reader, error) {
	eng, err := spanengine.New(src, Codec{}, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng}, nil
}

// NewReaderFromCheckpoints builds a reader from a persisted checkpoint
// table, skipping even the header walk.
func NewReaderFromCheckpoints(src filereader.FileReader, spans []spanengine.Span, flags uint8, cfg spanengine.Config) (*Reader, error) {
	eng, err := spanengine.NewFromCheckpoints(src, Codec{}, spans, flags, cfg)
	if err != nil {
		return nil, err
	}
	return &Reader{eng: eng}, nil
}

// Engine exposes the underlying span engine (stats, checkpoint export).
func (r *Reader) Engine() *spanengine.Engine { return r.eng }

// Close releases the engine's prefetch workers.
func (r *Reader) Close() error { return r.eng.Close() }

// Size returns the total decompressed size (known up front from the
// frame headers).
func (r *Reader) Size() int64 { return r.eng.Size() }

// NumFrames returns the number of checkpoints (frames).
func (r *Reader) NumFrames() int { return r.eng.NumSpans() }

// BlockIndependent reports whether every frame declares independent
// blocks. Dependent blocks decode fine (the whole frame is always
// inflated as a unit) but make the frame the smallest seekable grain.
func (r *Reader) BlockIndependent() bool { return r.eng.Flags()&FlagBlockIndep != 0 }

// Checksummed reports whether any frame carries xxHash32 block or
// content checksums, i.e. whether decoding verifies payload integrity.
func (r *Reader) Checksummed() bool { return r.eng.Flags()&FlagChecksummed != 0 }

// NumChunks, ChunkExtent and ChunkContent expose the checkpoint table
// generically (one chunk = one frame), so a consumer can pipeline
// ordered sequential reads with parallel decodes.
func (r *Reader) NumChunks() int { return r.eng.NumSpans() }

// ChunkExtent returns the decompressed offset and size of chunk i.
func (r *Reader) ChunkExtent(i int) (off, size int64) { return r.eng.SpanExtent(i) }

// ChunkContent returns the decompressed content of chunk i. The
// returned slice is shared with the engine's cache and must not be
// modified.
func (r *Reader) ChunkContent(i int) ([]byte, error) { return r.eng.SpanContent(i) }

// ReadAt implements io.ReaderAt over the decompressed stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) { return r.eng.ReadAt(p, off) }
