package lz4x

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/workloads"
	"repro/internal/xxhash"
)

func roundTripBlock(t *testing.T, data []byte) {
	t.Helper()
	comp := CompressBlock(data, nil)
	if len(comp) > CompressBlockBound(len(data)) {
		t.Fatalf("compressed %d exceeds bound %d", len(comp), CompressBlockBound(len(data)))
	}
	out := make([]byte, len(data))
	n, err := DecompressBlock(comp, out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) || !bytes.Equal(out, data) {
		t.Fatalf("round trip mismatch (%d bytes)", n)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	cases := map[string][]byte{
		"empty":   nil,
		"one":     []byte("x"),
		"tiny":    []byte("hello"),
		"twelve":  []byte("123456789012"),
		"repeat":  bytes.Repeat([]byte("ab"), 10_000),
		"zeros":   make([]byte, 100_000),
		"random":  workloads.Random(100_000, 1),
		"base64":  workloads.Base64(100_000, 2),
		"silesia": workloads.SilesiaLike(200_000, 3),
		"fastq":   workloads.FASTQ(100_000, 4),
		"overlap": append(bytes.Repeat([]byte("a"), 20), []byte("bcdefgh")...),
		"period3": bytes.Repeat([]byte("abc"), 5000),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) { roundTripBlock(t, data) })
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp := CompressBlock(data, nil)
		out := make([]byte, len(data))
		n, err := DecompressBlock(comp, out)
		return err == nil && n == len(data) && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockCompressesRepetitiveData(t *testing.T) {
	data := bytes.Repeat([]byte("the quick brown fox "), 5000)
	comp := CompressBlock(data, nil)
	if len(comp) > len(data)/10 {
		t.Fatalf("repetitive data compressed only to %d/%d", len(comp), len(data))
	}
}

func TestHandCraftedBlock(t *testing.T) {
	// token 0x54: 5 literals, match len 4+4=8 at offset 5 -> "abcdeabcdeabc"
	src := []byte{0x54, 'a', 'b', 'c', 'd', 'e', 5, 0, 0x30, 'x', 'y', 'z'}
	want := []byte("abcdeabcdeabcxyz")
	dst := make([]byte, len(want))
	n, err := DecompressBlock(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(dst, want) {
		t.Fatalf("got %q", dst[:n])
	}
}

func TestDecompressBlockRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{0x10},                  // literal length 1 but no literal byte
		{0x04, 'a', 9, 0},       // offset 9 > produced 1
		{0x04, 'a', 0, 0},       // offset 0 invalid
		{0xF0, 255},             // unterminated length extension
		{0x04, 'a', 1, 0, 0xFF}, // match overruns destination
	}
	for i, src := range cases {
		dst := make([]byte, 4)
		if _, err := DecompressBlock(src, dst); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	data := workloads.SilesiaLike(1_000_000, 5)
	for _, opts := range []FrameOptions{
		{},
		{BlockSize: 16 << 10},
		{BlockSize: 300 << 10},
		{BlockChecksums: true},
		{ContentChecksum: true},
		{BlockChecksums: true, ContentChecksum: true},
		{FrameSize: 200 << 10},
		{FrameSize: 100 << 10, BlockSize: 32 << 10, BlockChecksums: true, ContentChecksum: true},
	} {
		comp := CompressFrames(data, opts)
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%+v: mismatch", opts)
		}
	}
}

func TestFrameEmptyInput(t *testing.T) {
	comp := CompressFrames(nil, FrameOptions{})
	got, err := Decompress(comp)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d bytes, %v", len(got), err)
	}
}

func TestScanFrames(t *testing.T) {
	data := workloads.Base64(500_000, 6)
	comp := CompressFrames(data, FrameOptions{FrameSize: 100_000})
	frames, err := ScanFrames(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	var contentPos, prevEnd int64
	for i, f := range frames {
		if f.Offset != prevEnd {
			t.Fatalf("frame %d starts at %d, previous ended at %d", i, f.Offset, prevEnd)
		}
		if f.ContentStart != contentPos {
			t.Fatalf("frame %d content start %d, want %d", i, f.ContentStart, contentPos)
		}
		contentPos += f.ContentSize
		prevEnd = f.End
	}
	if prevEnd != int64(len(comp)) || contentPos != int64(len(data)) {
		t.Fatalf("scan covered %d/%d compressed, %d/%d content", prevEnd, len(comp), contentPos, len(data))
	}
}

func TestDecompressParallelMatchesSerial(t *testing.T) {
	data := workloads.SilesiaLike(2_000_000, 7)
	comp := CompressFrames(data, FrameOptions{FrameSize: 128 << 10, BlockSize: 32 << 10, ContentChecksum: true})
	for _, threads := range []int{1, 2, 8} {
		got, err := DecompressParallel(comp, threads)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("threads=%d: mismatch", threads)
		}
	}
}

func TestChecksumsCatchCorruption(t *testing.T) {
	data := workloads.Base64(300_000, 8)
	comp := CompressFrames(data, FrameOptions{BlockChecksums: true, ContentChecksum: true, FrameSize: 64 << 10})
	for _, flip := range []int{len(comp) / 3, len(comp) / 2, len(comp) - 10} {
		bad := bytes.Clone(comp)
		bad[flip] ^= 0x40
		if _, err := Decompress(bad); err == nil {
			t.Fatalf("corruption at %d not detected", flip)
		}
	}
}

func TestNotLZ4(t *testing.T) {
	if _, err := Decompress([]byte("certainly not lz4")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ScanFrames([]byte{0x04, 0x22, 0x4D, 0x18}); err == nil {
		t.Fatal("bare magic accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	data := workloads.Base64(100_000, 9)
	comp := CompressFrames(data, FrameOptions{})
	for _, cut := range []int{5, 20, len(comp) / 2, len(comp) - 1} {
		if _, err := Decompress(comp[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReaderReadAt(t *testing.T) {
	data := workloads.Base64(600_000, 11)
	comp := CompressFrames(data, FrameOptions{FrameSize: 100_000, BlockSize: 16 << 10})
	r, err := NewReader(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(data))
	}
	if r.NumFrames() != 6 {
		t.Fatalf("NumFrames = %d, want 6", r.NumFrames())
	}
	if !r.BlockIndependent() {
		t.Fatal("CompressFrames output should be block-independent")
	}
	// Arbitrary offsets, including frame-straddling and tail reads.
	offs := []int64{0, 1, 99_999, 100_000, 100_001, 250_000, 599_000, int64(len(data)) - 1}
	for _, off := range offs {
		buf := make([]byte, 5000)
		n, err := r.ReadAt(buf, off)
		want := len(data) - int(off)
		if want > len(buf) {
			want = len(buf)
		}
		if n != want || (err != nil && err != io.EOF) {
			t.Fatalf("ReadAt(%d): n=%d err=%v, want n=%d", off, n, err, want)
		}
		if !bytes.Equal(buf[:n], data[off:int(off)+n]) {
			t.Fatalf("ReadAt(%d): content mismatch", off)
		}
	}
	if _, err := r.ReadAt(make([]byte, 1), r.Size()); err != io.EOF {
		t.Fatalf("ReadAt(EOF) err = %v, want io.EOF", err)
	}
}

func TestReaderConcurrentReadAt(t *testing.T) {
	data := workloads.FASTQ(300_000, 3)
	comp := CompressFrames(data, FrameOptions{FrameSize: 50_000, ContentChecksum: true})
	r, err := NewReader(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checksummed() {
		t.Fatal("expected Checksummed")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			buf := make([]byte, 3000)
			for i := 0; i < 40; i++ {
				off := rnd.Int63n(int64(len(data)))
				n, err := r.ReadAt(buf, off)
				if err != nil && err != io.EOF {
					t.Errorf("ReadAt(%d): %v", off, err)
					return
				}
				if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
					t.Errorf("ReadAt(%d): mismatch", off)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// linkedFrame hand-crafts a frame in linked-block (dependent) mode: a
// stored first block and a compressed second block whose match reaches
// back into the first block — illegal for an independent-block decoder.
func linkedFrame(t *testing.T) (comp, content []byte) {
	t.Helper()
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, FrameMagic)
	flg := byte(flgVersion | flgContentSize) // no flgBlockIndep
	bd := byte(4 << 4)
	descStart := len(out)
	out = append(out, flg, bd)
	out = binary.LittleEndian.AppendUint64(out, 12)
	out = append(out, byte(xxhash.Sum32(out[descStart:], 0)>>8))
	// Block 1: stored "ABCDEFGH".
	out = binary.LittleEndian.AppendUint32(out, 8|1<<31)
	out = append(out, "ABCDEFGH"...)
	// Block 2: one sequence, zero literals, 4-byte match at offset 8.
	out = binary.LittleEndian.AppendUint32(out, 3)
	out = append(out, 0x00, 0x08, 0x00)
	out = binary.LittleEndian.AppendUint32(out, 0) // EndMark
	return out, []byte("ABCDEFGHABCD")
}

func TestLinkedBlockFrameDecodes(t *testing.T) {
	comp, want := linkedFrame(t)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	r, err := NewReader(comp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockIndependent() {
		t.Fatal("linked frame reported as block-independent")
	}
	buf := make([]byte, 4)
	if _, err := r.ReadAt(buf, 8); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "ABCD" {
		t.Fatalf("ReadAt tail = %q", buf)
	}
}
