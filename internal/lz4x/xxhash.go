package lz4x

import "math/bits"

// xxHash32 as specified by the LZ4 frame format for header, block and
// content checksums.
const (
	xxPrime1 = 2654435761
	xxPrime2 = 2246822519
	xxPrime3 = 3266489917
	xxPrime4 = 668265263
	xxPrime5 = 374761393
)

func xxRound(acc, input uint32) uint32 {
	return bits.RotateLeft32(acc+input*xxPrime2, 13) * xxPrime1
}

func loadU32(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// XXH32 computes the 32-bit xxHash of input with the given seed.
func XXH32(input []byte, seed uint32) uint32 {
	n := len(input)
	var h uint32
	p := 0
	if n >= 16 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for p+16 <= n {
			v1 = xxRound(v1, loadU32(input[p:]))
			v2 = xxRound(v2, loadU32(input[p+4:]))
			v3 = xxRound(v3, loadU32(input[p+8:]))
			v4 = xxRound(v4, loadU32(input[p+12:]))
			p += 16
		}
		h = bits.RotateLeft32(v1, 1) + bits.RotateLeft32(v2, 7) +
			bits.RotateLeft32(v3, 12) + bits.RotateLeft32(v4, 18)
	} else {
		h = seed + xxPrime5
	}
	h += uint32(n)
	for p+4 <= n {
		h += loadU32(input[p:]) * xxPrime3
		h = bits.RotateLeft32(h, 17) * xxPrime4
		p += 4
	}
	for p < n {
		h += uint32(input[p]) * xxPrime5
		h = bits.RotateLeft32(h, 11) * xxPrime1
		p++
	}
	h ^= h >> 15
	h *= xxPrime2
	h ^= h >> 13
	h *= xxPrime3
	h ^= h >> 16
	return h
}
