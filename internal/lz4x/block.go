// Package lz4x implements the LZ4 block and frame formats from
// scratch: a hash-table LZ77 compressor, a bounds-checked block
// decompressor, the frame container with xxHash32 checksums, and a
// frame-parallel decompressor.
//
// In the reproduction, lz4x plays two roles from the paper's Table 4:
// the serial "lz4" row (fast LZ with modest ratio), and — via files
// holding many independent frames that each declare their content size
// — the "pzstd" analog: a format whose metadata makes parallel
// decompression trivial, against which the rapidgzip architecture is
// compared (§4.9).
package lz4x

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Block format constants.
const (
	minMatch   = 4  // shortest encodable match
	mfLimit    = 12 // matches must start this many bytes before the end
	lastLits   = 5  // the final bytes are always literals
	maxOffset  = 65535
	hashLog    = 16
	hashShift  = 32 - hashLog
	hashPrime  = 2654435761
	tokenLitSh = 4
)

// ErrCorrupt reports a malformed LZ4 block.
var ErrCorrupt = errors.New("lz4x: corrupt block")

// ErrDstTooSmall reports an undersized destination buffer.
var ErrDstTooSmall = errors.New("lz4x: destination too small")

// CompressBlockBound returns the maximum compressed size of a block of
// n input bytes (the worst case is incompressible data).
func CompressBlockBound(n int) int {
	return n + n/255 + 16
}

func blockHash(v uint32) uint32 {
	return (v * hashPrime) >> hashShift
}

// CompressBlock compresses src into the LZ4 block format and returns
// the compressed bytes (appended to dst, which may be nil).
func CompressBlock(src, dst []byte) []byte {
	var table [1 << hashLog]int32
	for i := range table {
		table[i] = -1
	}
	n := len(src)
	anchor := 0
	pos := 0

	emitSeq := func(litEnd, matchLen, offset int) {
		litLen := litEnd - anchor
		token := byte(0)
		if litLen >= 15 {
			token = 15 << tokenLitSh
		} else {
			token = byte(litLen) << tokenLitSh
		}
		if matchLen > 0 {
			ml := matchLen - minMatch
			if ml >= 15 {
				token |= 15
			} else {
				token |= byte(ml)
			}
		}
		dst = append(dst, token)
		if litLen >= 15 {
			for rest := litLen - 15; ; rest -= 255 {
				if rest >= 255 {
					dst = append(dst, 255)
				} else {
					dst = append(dst, byte(rest))
					break
				}
			}
		}
		dst = append(dst, src[anchor:litEnd]...)
		if matchLen > 0 {
			dst = append(dst, byte(offset), byte(offset>>8))
			if ml := matchLen - minMatch; ml >= 15 {
				for rest := ml - 15; ; rest -= 255 {
					if rest >= 255 {
						dst = append(dst, 255)
					} else {
						dst = append(dst, byte(rest))
						break
					}
				}
			}
		}
	}

	if n >= mfLimit {
		limit := n - mfLimit
		matchLimit := n - lastLits
		for pos <= limit {
			v := binary.LittleEndian.Uint32(src[pos:])
			h := blockHash(v)
			cand := int(table[h])
			table[h] = int32(pos)
			if cand < 0 || pos-cand > maxOffset || binary.LittleEndian.Uint32(src[cand:]) != v {
				pos++
				continue
			}
			// Extend the match forward.
			mlen := minMatch
			for pos+mlen < matchLimit && src[cand+mlen] == src[pos+mlen] {
				mlen++
			}
			// Extend backward over pending literals.
			for pos > anchor && cand > 0 && src[cand-1] == src[pos-1] {
				pos--
				cand--
				mlen++
			}
			emitSeq(pos, mlen, pos-cand)
			pos += mlen
			anchor = pos
			if pos <= limit {
				table[blockHash(binary.LittleEndian.Uint32(src[pos-2:]))] = int32(pos - 2)
			}
		}
	}
	// Final literals-only sequence.
	emitSeq(n, 0, 0)
	return dst
}

// DecompressBlock decompresses an LZ4 block into dst, which must have
// the exact decompressed length. It returns the number of bytes
// written.
func DecompressBlock(src, dst []byte) (int, error) {
	sp, dp := 0, 0
	readLen := func(base int) (int, error) {
		v := base
		for {
			if sp >= len(src) {
				return 0, ErrCorrupt
			}
			b := src[sp]
			sp++
			v += int(b)
			if b != 255 {
				return v, nil
			}
		}
	}
	for sp < len(src) {
		token := src[sp]
		sp++
		litLen := int(token >> tokenLitSh)
		if litLen == 15 {
			var err error
			if litLen, err = readLen(15); err != nil {
				return dp, err
			}
		}
		if sp+litLen > len(src) || dp+litLen > len(dst) {
			return dp, ErrCorrupt
		}
		copy(dst[dp:], src[sp:sp+litLen])
		sp += litLen
		dp += litLen
		if sp == len(src) {
			// Terminating literals-only sequence.
			if dp != len(dst) {
				return dp, fmt.Errorf("%w: %d of %d bytes decoded", ErrCorrupt, dp, len(dst))
			}
			return dp, nil
		}
		if sp+2 > len(src) {
			return dp, ErrCorrupt
		}
		offset := int(binary.LittleEndian.Uint16(src[sp:]))
		sp += 2
		if offset == 0 || offset > dp {
			return dp, ErrCorrupt
		}
		matchLen := int(token & 15)
		if matchLen == 15 {
			var err error
			if matchLen, err = readLen(15); err != nil {
				return dp, err
			}
		}
		matchLen += minMatch
		if dp+matchLen > len(dst) {
			return dp, ErrCorrupt
		}
		// Overlapping copies must run byte-by-byte (offset < matchLen
		// replicates the period).
		m := dp - offset
		for i := 0; i < matchLen; i++ {
			dst[dp+i] = dst[m+i]
		}
		dp += matchLen
	}
	if dp != len(dst) {
		return dp, fmt.Errorf("%w: %d of %d bytes decoded", ErrCorrupt, dp, len(dst))
	}
	return dp, nil
}
