package gzindex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// goldenIndex is the index serialised into the testdata fixtures (the
// v1 file was written by the legacy fixed-width writer before its
// removal, the v2 file by the pre-fingerprint varint writer, the v3
// file by the pre-checkpoint-table writer, the v4 file by the current
// writer). Any change that stops a fixture from parsing back to
// exactly this index is an on-disk format break and must bump the
// version magic instead.
func goldenIndex(t *testing.T) *Index {
	t.Helper()
	ix := New(4 << 20)
	ix.Finalized = true
	ix.CompressedSize = 123456
	ix.UncompressedSize = 654321
	for _, e := range []struct {
		p   SeekPoint
		win []byte
	}{
		{SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil},
		{SeekPoint{CompressedBitOffset: 100_003, UncompressedOffset: 262144}, bytes.Repeat([]byte("window!?"), 4096)},
		{SeekPoint{CompressedBitOffset: 220_111, UncompressedOffset: 524288}, []byte("short tail window")},
	} {
		if err := ix.Add(e.p, e.win); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func assertEqualIndex(t *testing.T, got, want *Index) {
	t.Helper()
	if got.Len() != want.Len() || got.ChunkSize != want.ChunkSize ||
		got.Finalized != want.Finalized ||
		got.CompressedSize != want.CompressedSize ||
		got.UncompressedSize != want.UncompressedSize {
		t.Fatalf("metadata mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	for i := 0; i < want.Len(); i++ {
		if got.Point(i) != want.Point(i) {
			t.Fatalf("point %d: got %+v want %+v", i, got.Point(i), want.Point(i))
		}
		w1, ok1 := want.Window(want.Point(i).CompressedBitOffset)
		w2, ok2 := got.Window(want.Point(i).CompressedBitOffset)
		if ok1 != ok2 || !bytes.Equal(w1, w2) {
			t.Fatalf("window %d mismatch (ok %v/%v)", i, ok1, ok2)
		}
	}
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestGoldenV2BackwardCompatible(t *testing.T) {
	raw := readGolden(t, "golden-v2.rgzidx")
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualIndex(t, got, goldenIndex(t))
	if got.SourceFP != nil {
		t.Fatal("v2 index has no fingerprint; got one")
	}
}

// goldenIndexV3 is goldenIndex plus the v3 source fingerprint.
func goldenIndexV3(t *testing.T) *Index {
	ix := goldenIndex(t)
	ix.SourceFP = &Fingerprint{Head: 0x11223344, Tail: 0x55667788}
	return ix
}

func TestGoldenV3(t *testing.T) {
	raw := readGolden(t, "golden-v3.rgzidx")
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenIndexV3(t)
	assertEqualIndex(t, got, want)
	if got.SourceFP == nil || *got.SourceFP != *want.SourceFP {
		t.Fatalf("fingerprint: got %+v, want %+v", got.SourceFP, want.SourceFP)
	}
}

func TestGoldenV4(t *testing.T) {
	raw := readGolden(t, "golden-v4.rgzidx")
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenIndexV3(t)
	assertEqualIndex(t, got, want)
	if got.SourceFP == nil || *got.SourceFP != *want.SourceFP {
		t.Fatalf("fingerprint: got %+v, want %+v", got.SourceFP, want.SourceFP)
	}

	// The writer must still produce the byte-identical file: the format
	// is deterministic, so this locks the layout, not just parseability.
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("WriteTo output diverged from the golden fixture (%d vs %d bytes)", buf.Len(), len(raw))
	}
}

// checkpointIndex is the sample serialised into
// golden-v4-checkpoints.rgzidx: a zstd-style span table with a
// compressed gap (skippable frame) between the second and third span,
// no seek points.
func checkpointIndex(t *testing.T) *Index {
	t.Helper()
	ix := New(0)
	ix.Finalized = true
	ix.CompressedSize = 10_000
	ix.UncompressedSize = 5_000_000
	ix.SourceFP = &Fingerprint{Head: 0xAABBCCDD, Tail: 0x99887766}
	ix.Checkpoints = &CheckpointTable{
		Format: "zstd",
		Flags:  0x03,
		Spans: []Checkpoint{
			{CompOff: 0, CompEnd: 3_000, DecompOff: 0, DecompSize: 2_000_000},
			{CompOff: 3_000, CompEnd: 5_500, DecompOff: 2_000_000, DecompSize: 1_500_000},
			{CompOff: 6_000, CompEnd: 9_999, DecompOff: 3_500_000, DecompSize: 1_500_000},
		},
	}
	return ix
}

func assertEqualCheckpoints(t *testing.T, got, want *Index) {
	t.Helper()
	g, w := got.Checkpoints, want.Checkpoints
	if (g == nil) != (w == nil) {
		t.Fatalf("Checkpoints presence: got %v, want %v", g != nil, w != nil)
	}
	if g == nil {
		return
	}
	if g.Format != w.Format || g.Flags != w.Flags || len(g.Spans) != len(w.Spans) {
		t.Fatalf("checkpoint table header mismatch:\ngot  %+v\nwant %+v", g, w)
	}
	for i := range w.Spans {
		if g.Spans[i] != w.Spans[i] {
			t.Fatalf("span %d: got %+v want %+v", i, g.Spans[i], w.Spans[i])
		}
	}
}

func TestGoldenV4Checkpoints(t *testing.T) {
	raw := readGolden(t, "golden-v4-checkpoints.rgzidx")
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := checkpointIndex(t)
	assertEqualCheckpoints(t, got, want)
	if got.CompressedSize != want.CompressedSize || got.UncompressedSize != want.UncompressedSize {
		t.Fatalf("sizes: got %d/%d, want %d/%d",
			got.CompressedSize, got.UncompressedSize, want.CompressedSize, want.UncompressedSize)
	}
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("WriteTo output diverged from the checkpoint golden fixture (%d vs %d bytes)", buf.Len(), len(raw))
	}
}

func TestCheckpointTableRoundTrip(t *testing.T) {
	want := checkpointIndex(t)
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualCheckpoints(t, got, want)
}

func TestCheckpointTableRejectsBadShapes(t *testing.T) {
	// Serialisation-side: overlapping or inverted spans must not write.
	bad := checkpointIndex(t)
	bad.Checkpoints.Spans[1].CompOff = 100 // overlaps span 0
	if _, err := bad.WriteTo(io.Discard); err == nil {
		t.Fatal("overlapping checkpoint spans serialised")
	}
	short := checkpointIndex(t)
	short.Checkpoints.Format = "xz"
	if _, err := short.WriteTo(io.Discard); err == nil {
		t.Fatal("2-byte format tag serialised")
	}
	// Read-side: a table whose decompressed total disagrees with the
	// declared uncompressed size is rejected by validation.
	lying := checkpointIndex(t)
	lying.UncompressedSize = 1
	var buf bytes.Buffer
	if _, err := lying.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("size-lying checkpoint table: err = %v, want ErrCorrupt", err)
	}
	// ...as is one whose spans overrun the compressed size.
	overrun := checkpointIndex(t)
	overrun.CompressedSize = 9_000
	buf.Reset()
	if _, err := overrun.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overrunning checkpoint table: err = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointIndexRejectsEveryByteFlip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := checkpointIndex(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x01
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("byte flip at offset %d accepted", i)
		}
	}
}

func TestGoldenV1BackwardCompatible(t *testing.T) {
	got, err := Read(bytes.NewReader(readGolden(t, "golden-v1.rgzidx")))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualIndex(t, got, goldenIndex(t))
}

// markedIndex is the sample serialised into golden-v2-marks.rgzidx:
// member marks on two points, windows on two, MemberMarksComplete set.
func markedIndex(t *testing.T) *Index {
	t.Helper()
	ix := New(1 << 20)
	ix.Finalized = true
	ix.MemberMarksComplete = true
	ix.CompressedSize = 999_999
	ix.UncompressedSize = 3_500_000
	if err := ix.Add(SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil); err != nil {
		t.Fatal(err)
	}
	ix.AddMemberEnd(0, MemberEnd{RelEnd: 700_000, CRC32: 0xDEADBEEF})
	if err := ix.Add(SeekPoint{CompressedBitOffset: 2_000_001, UncompressedOffset: 1_000_000}, bytes.Repeat([]byte{0x5A}, 32768)); err != nil {
		t.Fatal(err)
	}
	ix.AddMemberEnd(2_000_001, MemberEnd{RelEnd: 400_000, CRC32: 0x01020304})
	ix.AddMemberEnd(2_000_001, MemberEnd{RelEnd: 900_000, CRC32: 0xCAFEBABE})
	if err := ix.Add(SeekPoint{CompressedBitOffset: 5_500_007, UncompressedOffset: 2_500_000}, []byte("tail window")); err != nil {
		t.Fatal(err)
	}
	return ix
}

func assertEqualMarks(t *testing.T, got, want *Index) {
	t.Helper()
	if got.MemberMarksComplete != want.MemberMarksComplete {
		t.Fatalf("MemberMarksComplete: got %v want %v", got.MemberMarksComplete, want.MemberMarksComplete)
	}
	for i := 0; i < want.Len(); i++ {
		off := want.Point(i).CompressedBitOffset
		g, w := got.MemberEnds(off), want.MemberEnds(off)
		if len(g) != len(w) {
			t.Fatalf("point %d: %d marks, want %d", i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("point %d mark %d: got %+v want %+v", i, j, g[j], w[j])
			}
		}
	}
}

func TestGoldenV2WithMemberMarks(t *testing.T) {
	raw := readGolden(t, "golden-v2-marks.rgzidx")
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := markedIndex(t)
	assertEqualIndex(t, got, want)
	assertEqualMarks(t, got, want)
}

func TestGoldenV3WithMemberMarks(t *testing.T) {
	raw := readGolden(t, "golden-v3-marks.rgzidx")
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := markedIndex(t)
	assertEqualIndex(t, got, want)
	assertEqualMarks(t, got, want)
}

func TestGoldenV4WithMemberMarks(t *testing.T) {
	raw := readGolden(t, "golden-v4-marks.rgzidx")
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := markedIndex(t)
	assertEqualIndex(t, got, want)
	assertEqualMarks(t, got, want)

	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("WriteTo output diverged from the marks golden fixture (%d vs %d bytes)", buf.Len(), len(raw))
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	want := goldenIndexV3(t)
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SourceFP == nil || *got.SourceFP != *want.SourceFP {
		t.Fatalf("fingerprint: got %+v, want %+v", got.SourceFP, want.SourceFP)
	}
}

func TestComputeFingerprint(t *testing.T) {
	// Distinct content of identical length must yield distinct
	// fingerprints — the wrong-file import hole this exists to close.
	a := bytes.Repeat([]byte("abcdefgh"), 2048) // 16 KiB
	b := bytes.Clone(a)
	b[10_000] ^= 1 // differs only in the middle... which neither span covers
	c := bytes.Clone(a)
	c[1] ^= 1 // head difference
	d := bytes.Clone(a)
	d[len(d)-2] ^= 1 // tail difference

	fa, err := ComputeFingerprint(bytes.NewReader(a), int64(len(a)))
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := ComputeFingerprint(bytes.NewReader(b), int64(len(b)))
	fc, _ := ComputeFingerprint(bytes.NewReader(c), int64(len(c)))
	fd, _ := ComputeFingerprint(bytes.NewReader(d), int64(len(d)))
	if fa != fb {
		t.Fatal("a mid-file difference outside both spans should not change the fingerprint")
	}
	if fa == fc || fa == fd {
		t.Fatal("head/tail differences must change the fingerprint")
	}
	// Short files: spans overlap, still deterministic.
	s1, err := ComputeFingerprint(bytes.NewReader([]byte("tiny")), 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := ComputeFingerprint(bytes.NewReader([]byte("tinz")), 4)
	if s1 == s2 {
		t.Fatal("short-file fingerprints collide")
	}
	if _, err := ComputeFingerprint(bytes.NewReader(nil), 0); err != nil {
		t.Fatalf("empty file: %v", err)
	}
}

func TestMemberMarksRoundTrip(t *testing.T) {
	want := markedIndex(t)
	var buf bytes.Buffer
	if _, err := want.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualIndex(t, got, want)
	assertEqualMarks(t, got, want)
}

func TestReadRejectsOutOfSpanMemberMarks(t *testing.T) {
	// A structurally valid, checksummed index whose member mark points
	// past its seek point's span must be rejected: imported, it would
	// desynchronise the member-CRC verification chain.
	mk := func(relEnd uint64) []byte {
		ix := New(1 << 20)
		ix.Finalized = true
		ix.MemberMarksComplete = true
		ix.CompressedSize = 1000
		ix.UncompressedSize = 5000
		if err := ix.Add(SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil); err != nil {
			t.Fatal(err)
		}
		if err := ix.Add(SeekPoint{CompressedBitOffset: 4000, UncompressedOffset: 3000}, []byte("w")); err != nil {
			t.Fatal(err)
		}
		ix.AddMemberEnd(0, MemberEnd{RelEnd: relEnd, CRC32: 1})
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if _, err := Read(bytes.NewReader(mk(3000))); err != nil {
		t.Fatalf("mark at span edge rejected: %v", err)
	}
	if _, err := Read(bytes.NewReader(mk(3001))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-span mark: got %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsInconsistentSizes(t *testing.T) {
	// Declared file sizes must bound the seek points: importers derive
	// the final chunk's extent from them by subtraction. A finalized
	// index whose last point lies beyond either size is corrupt even
	// when its checksum is intact.
	mk := func(tweak func(*Index)) []byte {
		ix := New(1 << 20)
		ix.Finalized = true
		ix.CompressedSize = 1000
		ix.UncompressedSize = 5000
		if err := ix.Add(SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil); err != nil {
			t.Fatal(err)
		}
		if err := ix.Add(SeekPoint{CompressedBitOffset: 4000, UncompressedOffset: 3000}, []byte("w")); err != nil {
			t.Fatal(err)
		}
		tweak(ix)
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if _, err := Read(bytes.NewReader(mk(func(*Index) {}))); err != nil {
		t.Fatalf("consistent index rejected: %v", err)
	}
	if _, err := Read(bytes.NewReader(mk(func(ix *Index) { ix.UncompressedSize = 2999 }))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undersized uncompressed size: got %v, want ErrCorrupt", err)
	}
	if _, err := Read(bytes.NewReader(mk(func(ix *Index) { ix.CompressedSize = 499 }))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undersized compressed size: got %v, want ErrCorrupt", err)
	}
}

func TestNonFinalizedIndexWithMarksRoundTrips(t *testing.T) {
	// An in-progress index (not finalized, sizes still zero) that
	// already carries member marks must survive its own WriteTo→Read
	// round trip: the last point's span is simply unknown yet.
	ix := New(1 << 20)
	ix.CompressedSize = 1000
	if err := ix.Add(SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(SeekPoint{CompressedBitOffset: 4000, UncompressedOffset: 3000}, []byte("w")); err != nil {
		t.Fatal(err)
	}
	ix.AddMemberEnd(4000, MemberEnd{RelEnd: 500, CRC32: 7})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("library rejected its own in-progress index: %v", err)
	}
	if len(got.MemberEnds(4000)) != 1 {
		t.Fatal("mark lost in round trip")
	}
}

func TestV1RejectsNonMonotonicPoints(t *testing.T) {
	// The legacy fixed-width format has no trailing checksum, so
	// structural validation is all that stands between a bit-flipped
	// offset and an underflowing chunk-size subtraction at import.
	mkV1 := func(off2 uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString("RGZIDX01")
		le := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
		le(uint32(1))       // flags: finalized
		le(uint64(1 << 20)) // chunk size
		le(uint64(1000))    // compressed size
		le(uint64(5000))    // uncompressed size
		le(uint64(2))       // points
		le(uint64(0))       // point 0: bit offset
		le(uint64(0))       //          uncompressed offset
		buf.WriteByte(1)    //          member start
		le(uint32(0xFFFFFFFF))
		le(uint64(4000)) // point 1: bit offset
		le(off2)         //          uncompressed offset
		buf.WriteByte(0)
		le(uint32(0xFFFFFFFF))
		return buf.Bytes()
	}
	if _, err := Read(bytes.NewReader(mkV1(3000))); err != nil {
		t.Fatalf("valid v1 rejected: %v", err)
	}
	if _, err := Read(bytes.NewReader(mkV1(1 << 63))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v1 point beyond declared size: got %v, want ErrCorrupt", err)
	}
	// Non-monotonic uncompressed offset: point 1 "before" point 0.
	raw := mkV1(3000)
	// Overwrite point 0's uncompressed offset (the header is 44 bytes,
	// the point's bit offset 8 more → byte 52) with a value above
	// point 1's.
	binary.LittleEndian.PutUint64(raw[52:], 4000)
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-monotonic v1 points: got %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsWrappingMarkDeltas(t *testing.T) {
	// Marks are delta-coded; a delta that wraps uint64 would hide a
	// huge intermediate mark from validate's last-mark span check (the
	// wrapped final mark lands back in range). WriteTo reproduces the
	// wire pattern faithfully when fed out-of-order marks, so the
	// reader must reject it.
	ix := New(1 << 20)
	ix.Finalized = true
	ix.MemberMarksComplete = true
	ix.CompressedSize = 1000
	ix.UncompressedSize = 5000
	if err := ix.Add(SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil); err != nil {
		t.Fatal(err)
	}
	ix.AddMemberEnd(0, MemberEnd{RelEnd: 1 << 62, CRC32: 1})
	ix.AddMemberEnd(0, MemberEnd{RelEnd: 100, CRC32: 2}) // delta wraps
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrapping mark delta: got %v, want ErrCorrupt", err)
	}
}

func TestMarkedIndexRejectsEveryByteFlip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := markedIndex(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x40
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("byte flip at offset %d accepted", i)
		}
	}
}

func TestReadSurvivesOverflowingVarints(t *testing.T) {
	// A corrupt/hostile varint must produce ErrCorrupt, not feed a huge
	// partial value into an allocation (historic panic: makeslice: len
	// out of range on a ~24-byte input).
	overflow := bytes.Repeat([]byte{0xFF}, 10)
	craft := func(tail ...byte) []byte {
		raw := []byte("RGZIDX02")
		raw = append(raw, 0x01)                   // flags: finalized
		raw = append(raw, 0x04, 0x0A, 0x0A, 0x01) // chunk, sizes, 1 point
		raw = append(raw, 0x00, 0x00)             // point deltas
		return append(raw, tail...)
	}
	cases := map[string][]byte{
		"window-compLen-overflow": craft(append([]byte{0x02, 0x05}, overflow...)...),
		"window-rawLen-overflow":  craft(append([]byte{0x02}, overflow...)...),
		"mark-count-overflow":     craft(append([]byte{0x04}, overflow...)...),
		"point-count-overflow": append([]byte("RGZIDX02\x01\x04\x0A\x0A"),
			overflow...),
	}
	for name, raw := range cases {
		if _, err := Read(bytes.NewReader(raw)); err == nil {
			t.Fatalf("%s: accepted", name)
		} // a panic fails the test; any error is a pass
	}
}

func TestReadRejectsEveryByteFlip(t *testing.T) {
	// The trailing CRC32 must catch a corruption of any single byte —
	// including within the compressed windows and the checksum itself.
	var buf bytes.Buffer
	if _, err := goldenIndex(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x40
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("byte flip at offset %d accepted", i)
		}
	}
}

func TestReadRejectsEveryTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := goldenIndex(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(raw))
		}
	}
}

func TestReadErrorTaxonomy(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("GIF89a more bytes here........."))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign file: %v", err)
	}
	if _, err := Read(bytes.NewReader([]byte("RGZIDX99whatever"))); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("future version: %v", err)
	}
	var buf bytes.Buffer
	goldenIndex(t).WriteTo(&buf)
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt only the stored checksum
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum corruption: %v", err)
	}
}

func TestReadFrom(t *testing.T) {
	want := goldenIndex(t)
	var buf bytes.Buffer
	n, err := want.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var ix Index
	m, err := ix.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom consumed %d bytes, WriteTo wrote %d", m, n)
	}
	assertEqualIndex(t, &ix, want)

	// A failed ReadFrom must not leave partial state behind.
	before := ix.Len()
	if _, err := ix.ReadFrom(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Fatal("truncated ReadFrom succeeded")
	}
	if ix.Len() != before {
		t.Fatal("failed ReadFrom mutated the index")
	}
}

func TestDeltaCodingIsCompact(t *testing.T) {
	// 1000 windowless checkpoints with ~4 MiB compressed spacing: the
	// v1 fixed-width encoding took 21 bytes per record; delta varints
	// must stay below half that.
	ix := New(4 << 20)
	ix.Finalized = true
	for i := uint64(1); i <= 1000; i++ {
		if err := ix.Add(SeekPoint{
			CompressedBitOffset: i * (4 << 23),
			UncompressedOffset:  i * (10 << 20),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	ix.CompressedSize = 1001 * (4 << 20)
	ix.UncompressedSize = 1001 * (10 << 20)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if perRecord := buf.Len() / 1000; perRecord > 10 {
		t.Fatalf("%d bytes per checkpoint record; delta coding broken", perRecord)
	}
}

func TestReadStopsAtIndexEnd(t *testing.T) {
	// An index followed by trailing data (e.g. read from a combined
	// stream) must parse without consuming past its own trailer.
	var buf bytes.Buffer
	goldenIndex(t).WriteTo(&buf)
	indexLen := buf.Len()
	buf.WriteString("TRAILING GARBAGE THAT IS NOT PART OF THE INDEX")
	r := bytes.NewReader(buf.Bytes())
	got, err := Read(r)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualIndex(t, got, goldenIndex(t))
	if consumed := int(r.Size()) - r.Len(); consumed != indexLen {
		t.Fatalf("Read consumed %d bytes, index is %d", consumed, indexLen)
	}
}

var _ io.ReaderFrom = (*Index)(nil)
var _ io.WriterTo = (*Index)(nil)
