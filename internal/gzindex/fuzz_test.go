package gzindex

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReadIndex hardens index import against corrupt, truncated and
// adversarial files: Read must reject them with an error, never panic
// or over-allocate — a stale sibling .rgzidx is auto-imported by Open,
// so this parser sees unvetted bytes in normal operation.
func FuzzReadIndex(f *testing.F) {
	for _, golden := range []string{
		"testdata/golden-v1.rgzidx",
		"testdata/golden-v2.rgzidx",
		"testdata/golden-v2-marks.rgzidx",
		"testdata/golden-v3.rgzidx",
		"testdata/golden-v3-marks.rgzidx",
	} {
		if raw, err := os.ReadFile(golden); err == nil {
			f.Add(raw)
		}
	}
	// A fresh valid index as a well-formed seed.
	ix := New(4 << 20)
	ix.Add(SeekPoint{CompressedBitOffset: 80, UncompressedOffset: 0}, nil)
	ix.Add(SeekPoint{CompressedBitOffset: 4096, UncompressedOffset: 70_000}, []byte("window bytes"))
	ix.Finalized = true
	ix.CompressedSize = 9_000
	ix.UncompressedSize = 140_000
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err == nil {
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted indexes must be internally consistent enough to
		// re-serialise without panicking.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted index failed to re-serialise: %v", err)
		}
	})
}
