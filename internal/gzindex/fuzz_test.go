package gzindex

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReadIndex hardens index import against corrupt, truncated and
// adversarial files: Read must reject them with an error, never panic
// or over-allocate — a stale sibling .rgzidx is auto-imported by Open,
// so this parser sees unvetted bytes in normal operation.
func FuzzReadIndex(f *testing.F) {
	for _, golden := range []string{
		"testdata/golden-v1.rgzidx",
		"testdata/golden-v2.rgzidx",
		"testdata/golden-v2-marks.rgzidx",
		"testdata/golden-v3.rgzidx",
		"testdata/golden-v3-marks.rgzidx",
	} {
		if raw, err := os.ReadFile(golden); err == nil {
			f.Add(raw)
		}
	}
	// A fresh valid index as a well-formed seed.
	ix := New(4 << 20)
	ix.Add(SeekPoint{CompressedBitOffset: 80, UncompressedOffset: 0}, nil)
	ix.Add(SeekPoint{CompressedBitOffset: 4096, UncompressedOffset: 70_000}, []byte("window bytes"))
	ix.Finalized = true
	ix.CompressedSize = 9_000
	ix.UncompressedSize = 140_000
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err == nil {
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted indexes must be internally consistent enough to
		// re-serialise without panicking.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted index failed to re-serialise: %v", err)
		}
	})
}

// FuzzReadIndexV4 targets the version-4 checkpoint-table section: the
// corpus seeds a v4 export of each per-format span table (bzip2, LZ4,
// zstd — including a compressed gap, as a skippable frame leaves).
// Accepted inputs must survive a serialise/re-read round trip with the
// checkpoint table intact: the section feeds span extents straight
// into backend slicing, so a parser discrepancy here is an
// out-of-bounds read waiting in a backend.
func FuzzReadIndexV4(f *testing.F) {
	seed := func(tag string, flags uint8, spans []Checkpoint, compSize, decompSize uint64) {
		ix := New(0)
		ix.Finalized = true
		ix.CompressedSize = compSize
		ix.UncompressedSize = decompSize
		ix.SourceFP = &Fingerprint{Head: 0x1234, Tail: 0x5678}
		ix.Checkpoints = &CheckpointTable{Format: tag, Flags: flags, Spans: spans}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed("bz2 ", 0, []Checkpoint{
		{CompOff: 0, CompEnd: 900, DecompOff: 0, DecompSize: 100_000},
		{CompOff: 900, CompEnd: 2_000, DecompOff: 100_000, DecompSize: 123_456},
	}, 2_000, 223_456)
	seed("lz4 ", 0x03, []Checkpoint{
		{CompOff: 0, CompEnd: 64, DecompOff: 0, DecompSize: 0}, // empty frame
		{CompOff: 64, CompEnd: 512, DecompOff: 0, DecompSize: 64_000},
	}, 512, 64_000)
	seed("zstd", 0x03, []Checkpoint{
		{CompOff: 0, CompEnd: 300, DecompOff: 0, DecompSize: 50_000},
		{CompOff: 428, CompEnd: 700, DecompOff: 50_000, DecompSize: 50_000}, // gap: skippable frame
	}, 700, 100_000)
	if raw, err := os.ReadFile("testdata/golden-v4-checkpoints.rgzidx"); err == nil {
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted index failed to re-serialise: %v", err)
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialised index failed to re-read: %v", err)
		}
		g, b := got.Checkpoints, back.Checkpoints
		if (g == nil) != (b == nil) {
			t.Fatal("checkpoint table lost in round trip")
		}
		if g != nil {
			if g.Format != b.Format || g.Flags != b.Flags || len(g.Spans) != len(b.Spans) {
				t.Fatalf("checkpoint table mutated in round trip: %+v vs %+v", g, b)
			}
			for i := range g.Spans {
				if g.Spans[i] != b.Spans[i] {
					t.Fatalf("span %d mutated in round trip: %+v vs %+v", i, g.Spans[i], b.Spans[i])
				}
			}
		}
	})
}
