// Package gzindex implements the seek-point database of the paper
// (§1.3 "Index for Seeking", §3.3): for each chunk start it stores the
// compressed bit offset, the decompressed byte offset and the preceding
// 32 KiB window, enabling constant-time seeking and window-primed
// (single-stage) decompression. Indexes can be exported and imported so
// later runs skip the initial decompression pass, like indexed_gzip's
// .gzi files; the on-disk format here is this package's own versioned
// binary layout with flate-compressed windows.
package gzindex

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// SeekPoint marks a position where decompression can resume.
type SeekPoint struct {
	// CompressedBitOffset is the exact bit offset of a Deflate block
	// header (canonicalised for stored blocks) or of a gzip member
	// header (flagged by AtMemberStart).
	CompressedBitOffset uint64
	// UncompressedOffset is the decompressed position of this point.
	UncompressedOffset uint64
	// AtMemberStart marks points that sit on a gzip member boundary
	// (e.g. BGZF members), where decoding must begin with header parsing
	// and an empty window.
	AtMemberStart bool
}

// Index is the seek-point database. It is not goroutine-safe; the chunk
// fetcher serialises access.
type Index struct {
	points  []SeekPoint
	windows map[uint64][]byte // keyed by CompressedBitOffset

	// Finalized is set once the whole file has been scanned, making
	// sizes authoritative.
	Finalized        bool
	CompressedSize   uint64 // bytes
	UncompressedSize uint64
	ChunkSize        int // compressed chunk size used during creation
}

// New returns an empty index.
func New(chunkSize int) *Index {
	return &Index{windows: map[uint64][]byte{}, ChunkSize: chunkSize}
}

// Add appends a seek point; points must be added in stream order.
// window is the decompressed data preceding the point (nil for member
// starts, up to 32 KiB otherwise).
func (ix *Index) Add(p SeekPoint, window []byte) error {
	if n := len(ix.points); n > 0 {
		last := ix.points[n-1]
		if p.UncompressedOffset < last.UncompressedOffset ||
			p.CompressedBitOffset <= last.CompressedBitOffset {
			return fmt.Errorf("gzindex: out-of-order seek point %+v after %+v", p, last)
		}
	}
	ix.points = append(ix.points, p)
	if window != nil {
		ix.windows[p.CompressedBitOffset] = window
	}
	return nil
}

// Len returns the number of seek points.
func (ix *Index) Len() int { return len(ix.points) }

// Point returns the i-th seek point.
func (ix *Index) Point(i int) SeekPoint { return ix.points[i] }

// Window returns the stored window for a compressed offset.
func (ix *Index) Window(compressedBitOffset uint64) ([]byte, bool) {
	w, ok := ix.windows[compressedBitOffset]
	return w, ok
}

// Find returns the index of the last seek point whose uncompressed
// offset is <= target, or false when no point qualifies (empty index).
func (ix *Index) Find(target uint64) (int, bool) {
	if len(ix.points) == 0 {
		return 0, false
	}
	// First point with UncompressedOffset > target, minus one.
	i := sort.Search(len(ix.points), func(i int) bool {
		return ix.points[i].UncompressedOffset > target
	})
	if i == 0 {
		return 0, false
	}
	return i - 1, true
}

const magic = "RGZIDX01"

// WriteTo serialises the index. Windows are flate-compressed — they are
// the bulk of the index and compress well.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	flags := uint32(0)
	if ix.Finalized {
		flags |= 1
	}
	binary.Write(&buf, binary.LittleEndian, flags)
	binary.Write(&buf, binary.LittleEndian, uint64(ix.ChunkSize))
	binary.Write(&buf, binary.LittleEndian, ix.CompressedSize)
	binary.Write(&buf, binary.LittleEndian, ix.UncompressedSize)
	binary.Write(&buf, binary.LittleEndian, uint64(len(ix.points)))
	for _, p := range ix.points {
		binary.Write(&buf, binary.LittleEndian, p.CompressedBitOffset)
		binary.Write(&buf, binary.LittleEndian, p.UncompressedOffset)
		var memberFlag uint8
		if p.AtMemberStart {
			memberFlag = 1
		}
		buf.WriteByte(memberFlag)
		win, ok := ix.windows[p.CompressedBitOffset]
		if !ok {
			binary.Write(&buf, binary.LittleEndian, uint32(0xFFFFFFFF))
			continue
		}
		comp, err := flateCompress(win)
		if err != nil {
			return 0, err
		}
		binary.Write(&buf, binary.LittleEndian, uint32(len(win)))
		binary.Write(&buf, binary.LittleEndian, uint32(len(comp)))
		buf.Write(comp)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Read deserialises an index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufReader{r: r}
	var m [8]byte
	if err := br.full(m[:]); err != nil {
		return nil, err
	}
	if string(m[:]) != magic {
		return nil, errors.New("gzindex: bad magic")
	}
	flags := br.u32()
	ix := New(int(br.u64()))
	ix.Finalized = flags&1 != 0
	ix.CompressedSize = br.u64()
	ix.UncompressedSize = br.u64()
	n := br.u64()
	if br.err != nil {
		return nil, br.err
	}
	if n > 1<<40 {
		return nil, errors.New("gzindex: implausible point count")
	}
	for i := uint64(0); i < n; i++ {
		var p SeekPoint
		p.CompressedBitOffset = br.u64()
		p.UncompressedOffset = br.u64()
		p.AtMemberStart = br.u8() == 1
		rawLen := br.u32()
		if br.err != nil {
			return nil, br.err
		}
		var win []byte
		if rawLen != 0xFFFFFFFF {
			if rawLen > 1<<20 {
				return nil, errors.New("gzindex: implausible window size")
			}
			compLen := br.u32()
			comp := make([]byte, compLen)
			if err := br.full(comp); err != nil {
				return nil, err
			}
			var err error
			win, err = flateDecompress(comp, int(rawLen))
			if err != nil {
				return nil, err
			}
		}
		ix.points = append(ix.points, p)
		if win != nil {
			ix.windows[p.CompressedBitOffset] = win
		}
	}
	return ix, br.err
}

func flateCompress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, 6)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(data); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func flateDecompress(comp []byte, rawLen int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// bufReader wraps sequential little-endian primitive reads.
type bufReader struct {
	r   io.Reader
	err error
}

func (b *bufReader) full(p []byte) error {
	if b.err != nil {
		return b.err
	}
	_, b.err = io.ReadFull(b.r, p)
	return b.err
}

func (b *bufReader) u8() uint8 {
	var raw [1]byte
	b.full(raw[:])
	return raw[0]
}

func (b *bufReader) u32() uint32 {
	var raw [4]byte
	b.full(raw[:])
	return binary.LittleEndian.Uint32(raw[:])
}

func (b *bufReader) u64() uint64 {
	var raw [8]byte
	b.full(raw[:])
	return binary.LittleEndian.Uint64(raw[:])
}
