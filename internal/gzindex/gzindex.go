// Package gzindex implements the seek-point database of the paper
// (§1.3 "Index for Seeking", §3.3): for each chunk start it stores the
// compressed bit offset, the decompressed byte offset and the preceding
// 32 KiB window, enabling constant-time seeking and window-primed
// (single-stage) decompression. Indexes can be exported and imported so
// later runs skip the initial decompression pass, like indexed_gzip's
// .gzi files; the on-disk format here is this package's own versioned
// binary layout with flate-compressed windows.
package gzindex

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// SeekPoint marks a position where decompression can resume.
type SeekPoint struct {
	// CompressedBitOffset is the exact bit offset of a Deflate block
	// header (canonicalised for stored blocks) or of a gzip member
	// header (flagged by AtMemberStart).
	CompressedBitOffset uint64
	// UncompressedOffset is the decompressed position of this point.
	UncompressedOffset uint64
	// AtMemberStart marks points that sit on a gzip member boundary
	// (e.g. BGZF members), where decoding must begin with header parsing
	// and an empty window.
	AtMemberStart bool
}

// MemberEnd marks a gzip member ending inside the span of a seek
// point: the decompressed offset relative to the point and the CRC32
// the member's footer declares. Persisting these with the index keeps
// full member-checksum verification available after an import, when the
// fast stdlib-delegated chunk decodes carry no footer events of their
// own.
type MemberEnd struct {
	RelEnd uint64
	CRC32  uint32
}

// Fingerprint identifies the source file an index was built for beyond
// its length: CRC32s of the file's first and last FingerprintSpan
// bytes. Together with CompressedSize it rejects an import whose index
// belongs to a different file of identical size — which would
// otherwise decode garbage from the recorded offsets.
type Fingerprint struct {
	Head uint32 // CRC32 (IEEE) of the first min(FingerprintSpan, size) bytes
	Tail uint32 // CRC32 (IEEE) of the last min(FingerprintSpan, size) bytes
}

// FingerprintSpan is the number of bytes hashed at each end of the
// source file. It is part of the on-disk format: changing it would make
// every stored fingerprint mismatch its file.
const FingerprintSpan = 4 << 10

// ComputeFingerprint hashes the head and tail of a source file. The two
// spans overlap for files shorter than 2*FingerprintSpan; that is fine,
// the comparison just needs determinism.
func ComputeFingerprint(r io.ReaderAt, size int64) (Fingerprint, error) {
	span := int64(FingerprintSpan)
	if span > size {
		span = size
	}
	read := func(off int64) (uint32, error) {
		buf := make([]byte, span)
		n, err := r.ReadAt(buf, off)
		if int64(n) < span {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("gzindex: fingerprinting source: %w", err)
		}
		return crc32.ChecksumIEEE(buf), nil
	}
	head, err := read(0)
	if err != nil {
		return Fingerprint{}, err
	}
	tail, err := read(size - span)
	if err != nil {
		return Fingerprint{}, err
	}
	return Fingerprint{Head: head, Tail: tail}, nil
}

// Checkpoint is one span of a per-format checkpoint table (the
// non-gzip analogue of a SeekPoint): a compressed byte extent that
// decodes independently, and the decompressed extent it produces.
// Decompressed extents are contiguous from 0; the compressed side may
// have gaps (zstd skippable frames).
type Checkpoint struct {
	CompOff, CompEnd      int64
	DecompOff, DecompSize int64
}

// CheckpointTable is the optional per-format section of a version-4
// index: the complete span table of a bzip2/LZ4/zstd file, persisted
// so a reopen can skip the sizing pass entirely (the ROADMAP follow-up
// from the format-agnostic-API and zstd PRs).
type CheckpointTable struct {
	// Format is the owning codec's 4-byte tag ("bz2 ", "lz4 ", "zstd").
	Format string
	// Flags carries codec-specific capability bits (checksummed, block
	// independence, metadata-sized, ...), opaque to this package.
	Flags uint8
	// Spans is the checkpoint table in stream order.
	Spans []Checkpoint
}

// Index is the seek-point database. It is not goroutine-safe; the chunk
// fetcher serialises access.
type Index struct {
	points     []SeekPoint
	windows    map[uint64][]byte      // keyed by CompressedBitOffset
	memberEnds map[uint64][]MemberEnd // keyed by CompressedBitOffset

	// Checkpoints is the optional per-format checkpoint-table section
	// (version 4); nil for gzip/BGZF seek-point indexes.
	Checkpoints *CheckpointTable

	// Finalized is set once the whole file has been scanned, making
	// sizes authoritative.
	Finalized        bool
	CompressedSize   uint64 // bytes
	UncompressedSize uint64
	ChunkSize        int // compressed chunk size used during creation
	// MemberMarksComplete asserts that every member boundary in the
	// file is recorded via AddMemberEnd — i.e. the absence of marks for
	// a point means "no member ends there", not "unknown".
	MemberMarksComplete bool
	// SourceFP is the source-file fingerprint, or nil when unknown
	// (indexes read from the fingerprint-less v1/v2 formats).
	SourceFP *Fingerprint
}

// New returns an empty index.
func New(chunkSize int) *Index {
	return &Index{
		windows:    map[uint64][]byte{},
		memberEnds: map[uint64][]MemberEnd{},
		ChunkSize:  chunkSize,
	}
}

// Add appends a seek point; points must be added in stream order.
// window is the decompressed data preceding the point (nil for member
// starts, up to 32 KiB otherwise).
func (ix *Index) Add(p SeekPoint, window []byte) error {
	if n := len(ix.points); n > 0 {
		last := ix.points[n-1]
		if p.UncompressedOffset < last.UncompressedOffset ||
			p.CompressedBitOffset <= last.CompressedBitOffset {
			return fmt.Errorf("gzindex: out-of-order seek point %+v after %+v", p, last)
		}
	}
	ix.points = append(ix.points, p)
	if window != nil {
		ix.windows[p.CompressedBitOffset] = window
	}
	return nil
}

// Len returns the number of seek points.
func (ix *Index) Len() int { return len(ix.points) }

// Point returns the i-th seek point.
func (ix *Index) Point(i int) SeekPoint { return ix.points[i] }

// Window returns the stored window for a compressed offset.
func (ix *Index) Window(compressedBitOffset uint64) ([]byte, bool) {
	w, ok := ix.windows[compressedBitOffset]
	return w, ok
}

// AddMemberEnd records a member boundary within the seek point at the
// given compressed offset. Marks must be added in increasing RelEnd
// order per point.
func (ix *Index) AddMemberEnd(compressedBitOffset uint64, m MemberEnd) {
	ix.memberEnds[compressedBitOffset] = append(ix.memberEnds[compressedBitOffset], m)
}

// MemberEnds returns the member boundaries recorded for a seek point.
func (ix *Index) MemberEnds(compressedBitOffset uint64) []MemberEnd {
	return ix.memberEnds[compressedBitOffset]
}

// Find returns the index of the last seek point whose uncompressed
// offset is <= target, or false when no point qualifies (empty index).
func (ix *Index) Find(target uint64) (int, bool) {
	if len(ix.points) == 0 {
		return 0, false
	}
	// First point with UncompressedOffset > target, minus one.
	i := sort.Search(len(ix.points), func(i int) bool {
		return ix.points[i].UncompressedOffset > target
	})
	if i == 0 {
		return 0, false
	}
	return i - 1, true
}

// --- serialization -------------------------------------------------------
//
// On-disk layout (version 4, all integers little-endian or unsigned
// LEB128 varints). Version 4 differs from version 3 only in the magic
// and the optional per-format checkpoint-table section (flag bit 3);
// version 3 differs from version 2 only in the magic and the optional
// source fingerprint (flag bit 2):
//
//	offset  size      field
//	0       8         magic "RGZIDX04"
//	8       1         flags (bit 0: finalized, bit 1: member marks
//	                  complete, bit 2: source fingerprint present,
//	                  bit 3: checkpoint table present)
//	9       varint    chunk size used during creation
//	...     varint    compressed file size (bytes)
//	...     varint    uncompressed file size (bytes)
//	...     4+4       head and tail CRC32 of the source file (only when
//	                  flag bit 2 is set)
//	...     varint    number of seek-point records
//	...               seek-point records (see below)
//	...               checkpoint-table section (only when flag bit 3 is
//	                  set, see below)
//	end-4   4         CRC32 (IEEE) of every preceding byte
//
// Each seek-point record is:
//
//	varint    compressed bit offset, delta-coded against the previous
//	          record (absolute for the first record)
//	varint    uncompressed byte offset, delta-coded likewise
//	1         flags (bit 0: at member start, bit 1: window present,
//	          bit 2: member marks present)
//	varint    raw window length        | only when bit 1
//	varint    compressed window length | is set; the window
//	...       flate-compressed window  | bytes follow
//	varint    member mark count                   | only when
//	...       per mark: varint relative offset    | bit 2
//	          (delta-coded within the record)     | is
//	          plus 4 bytes footer CRC32           | set
//
// Seek points are strictly increasing in compressed offset, so the
// deltas are non-negative and small; windows are the bulk of the file
// and flate-compress well (often 3-10x). The trailing CRC32 makes any
// single-byte corruption detectable before an import trusts the data.
//
// The checkpoint-table section (the persisted span table of a
// bzip2/LZ4/zstd file) is:
//
//	4         format tag ("bz2 ", "lz4 ", "zstd")
//	1         codec capability flags (opaque to this package)
//	varint    number of spans
//	per span:
//	varint    compressed gap: span start minus the previous span's end
//	          (absolute offset for the first span; usually 0 — only
//	          zstd skippable frames leave gaps)
//	varint    compressed length of the span
//	varint    decompressed size of the span
//
// Decompressed offsets are not stored: spans are contiguous from 0, so
// each offset is the running sum of the preceding sizes.

const (
	magicV1 = "RGZIDX01" // legacy fixed-width format, still readable
	magicV2 = "RGZIDX02" // fingerprint-less varint format, still readable
	magicV3 = "RGZIDX03" // checkpoint-table-less format, still readable
	magicV4 = "RGZIDX04" // current format, written by WriteTo
)

// maxWindowRaw bounds a stored window. Real windows are at most the
// Deflate history size of 32 KiB; the margin is kept tight because the
// bound is what caps decompression amplification when importing an
// untrusted index (a future format carrying more context would bump
// the version magic anyway).
const maxWindowRaw = 64 << 10

// Serialization errors. All of them (and any io error) abort an import.
var (
	// ErrBadMagic reports that the input is not a rapidgzip index.
	ErrBadMagic = errors.New("gzindex: bad magic (not a rapidgzip index)")
	// ErrUnsupportedVersion reports a magic of a newer, unknown format.
	ErrUnsupportedVersion = errors.New("gzindex: unsupported index version")
	// ErrChecksum reports that the trailing CRC32 does not match.
	ErrChecksum = errors.New("gzindex: index checksum mismatch")
	// ErrCorrupt reports a structurally invalid index.
	ErrCorrupt = errors.New("gzindex: corrupt index")
)

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// WriteTo serialises the index in the version-4 format.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	if ix.Checkpoints != nil && len(ix.Checkpoints.Format) != 4 {
		return 0, fmt.Errorf("gzindex: checkpoint table format tag %q is not 4 bytes", ix.Checkpoints.Format)
	}
	var buf bytes.Buffer
	buf.WriteString(magicV4)
	var flags uint8
	if ix.Finalized {
		flags |= 1
	}
	if ix.MemberMarksComplete {
		flags |= 2
	}
	if ix.SourceFP != nil {
		flags |= 4
	}
	if ix.Checkpoints != nil {
		flags |= 8
	}
	buf.WriteByte(flags)
	writeUvarint(&buf, uint64(ix.ChunkSize))
	writeUvarint(&buf, ix.CompressedSize)
	writeUvarint(&buf, ix.UncompressedSize)
	if ix.SourceFP != nil {
		binary.Write(&buf, binary.LittleEndian, ix.SourceFP.Head)
		binary.Write(&buf, binary.LittleEndian, ix.SourceFP.Tail)
	}
	writeUvarint(&buf, uint64(len(ix.points)))
	var prev SeekPoint
	for _, p := range ix.points {
		writeUvarint(&buf, p.CompressedBitOffset-prev.CompressedBitOffset)
		writeUvarint(&buf, p.UncompressedOffset-prev.UncompressedOffset)
		prev = p
		win, hasWin := ix.windows[p.CompressedBitOffset]
		marks := ix.memberEnds[p.CompressedBitOffset]
		var pflags uint8
		if p.AtMemberStart {
			pflags |= 1
		}
		if hasWin {
			pflags |= 2
		}
		if len(marks) > 0 {
			pflags |= 4
		}
		buf.WriteByte(pflags)
		if hasWin {
			comp, err := flateCompress(win)
			if err != nil {
				return 0, err
			}
			writeUvarint(&buf, uint64(len(win)))
			writeUvarint(&buf, uint64(len(comp)))
			buf.Write(comp)
		}
		if len(marks) > 0 {
			writeUvarint(&buf, uint64(len(marks)))
			var prevEnd uint64
			for _, m := range marks {
				writeUvarint(&buf, m.RelEnd-prevEnd)
				prevEnd = m.RelEnd
				binary.Write(&buf, binary.LittleEndian, m.CRC32)
			}
		}
	}
	if ct := ix.Checkpoints; ct != nil {
		buf.WriteString(ct.Format)
		buf.WriteByte(ct.Flags)
		writeUvarint(&buf, uint64(len(ct.Spans)))
		var prevEnd, decomp int64
		for i, s := range ct.Spans {
			// DecompOff is reconstructed as the running size sum on
			// read, so a non-contiguous table must fail here rather
			// than silently round-trip to different extents.
			if s.CompOff < prevEnd || s.CompEnd <= s.CompOff || s.DecompSize < 0 || s.DecompOff != decomp {
				return 0, fmt.Errorf("gzindex: checkpoint span %d is not serialisable: %+v", i, s)
			}
			writeUvarint(&buf, uint64(s.CompOff-prevEnd))
			writeUvarint(&buf, uint64(s.CompEnd-s.CompOff))
			writeUvarint(&buf, uint64(s.DecompSize))
			prevEnd = s.CompEnd
			decomp += s.DecompSize
		}
	}
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes()))
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Read deserialises an index written by WriteTo, dispatching on the
// format version named by the magic. The current version's trailing
// CRC32 is verified; any mismatch or structural problem rejects the
// whole index — a partially imported index would silently disable
// seeking into the missing region.
func Read(r io.Reader) (*Index, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMagic, err)
	}
	switch string(m[:]) {
	case magicV4:
		return readV234(r, magicV4)
	case magicV3:
		return readV234(r, magicV3)
	case magicV2:
		return readV234(r, magicV2)
	case magicV1:
		return readV1(r)
	}
	if string(m[:6]) == magicV2[:6] {
		return nil, fmt.Errorf("%w: %q", ErrUnsupportedVersion, m)
	}
	return nil, ErrBadMagic
}

// ReadFrom replaces the index contents with a serialised index read
// from r, implementing io.ReaderFrom. Byte counting is best-effort (the
// windows are read through a decompressor); the error is what matters.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	read, err := Read(cr)
	if err != nil {
		return cr.n, err
	}
	*ix = *read
	return cr.n, nil
}

// readV234 parses the varint formats. Versions 2, 3 and 4 share the
// whole layout except the optional source fingerprint of v3+ and the
// optional checkpoint-table section of v4.
func readV234(r io.Reader, magic string) (*Index, error) {
	cr := &crcReader{r: r}
	cr.sum = crc32.Update(cr.sum, crc32.IEEETable, []byte(magic))
	flags, _ := cr.ReadByte()
	ix := New(int(cr.uvarint()))
	ix.Finalized = flags&1 != 0
	ix.MemberMarksComplete = flags&2 != 0
	ix.CompressedSize = cr.uvarint()
	ix.UncompressedSize = cr.uvarint()
	if magic != magicV2 && flags&4 != 0 {
		var raw [8]byte
		if err := cr.full(raw[:]); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		ix.SourceFP = &Fingerprint{
			Head: binary.LittleEndian.Uint32(raw[0:4]),
			Tail: binary.LittleEndian.Uint32(raw[4:8]),
		}
	}
	n := cr.uvarint()
	if cr.err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, cr.err)
	}
	if n > 1<<40 {
		return nil, fmt.Errorf("%w: implausible point count %d", ErrCorrupt, n)
	}
	var prev SeekPoint
	for i := uint64(0); i < n; i++ {
		var p SeekPoint
		p.CompressedBitOffset = prev.CompressedBitOffset + cr.uvarint()
		p.UncompressedOffset = prev.UncompressedOffset + cr.uvarint()
		pflags, _ := cr.ReadByte()
		p.AtMemberStart = pflags&1 != 0
		var win []byte
		if pflags&2 != 0 {
			rawLen := cr.uvarint()
			compLen := cr.uvarint()
			// The error check must precede the sanity check: a failed
			// uvarint read leaves a huge partial value that would
			// otherwise reach the allocation below.
			if cr.err != nil {
				return nil, fmt.Errorf("%w: %w", ErrCorrupt, cr.err)
			}
			var err error
			if win, err = readWindow(cr.full, rawLen, compLen, i); err != nil {
				return nil, err
			}
		}
		var marks []MemberEnd
		if pflags&4 != 0 {
			mn := cr.uvarint()
			if cr.err != nil {
				return nil, fmt.Errorf("%w: %w", ErrCorrupt, cr.err)
			}
			if mn > 1<<32 {
				return nil, fmt.Errorf("%w: implausible mark count %d at point %d", ErrCorrupt, mn, i)
			}
			var prevEnd uint64
			for j := uint64(0); j < mn; j++ {
				relEnd := prevEnd + cr.uvarint()
				// A wrapping delta would sneak a huge intermediate mark
				// past validate's last-mark span check and blow up the
				// CRC part arithmetic downstream.
				if relEnd < prevEnd {
					return nil, fmt.Errorf("%w: member mark delta wraps at point %d", ErrCorrupt, i)
				}
				prevEnd = relEnd
				var crcRaw [4]byte
				if err := cr.full(crcRaw[:]); err != nil {
					return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
				}
				marks = append(marks, MemberEnd{RelEnd: relEnd, CRC32: binary.LittleEndian.Uint32(crcRaw[:])})
			}
		}
		if cr.err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, cr.err)
		}
		if i > 0 && (p.CompressedBitOffset <= prev.CompressedBitOffset ||
			p.UncompressedOffset < prev.UncompressedOffset) {
			return nil, fmt.Errorf("%w: non-monotonic point %d", ErrCorrupt, i)
		}
		prev = p
		ix.points = append(ix.points, p)
		if win != nil {
			ix.windows[p.CompressedBitOffset] = win
		}
		if marks != nil {
			ix.memberEnds[p.CompressedBitOffset] = marks
		}
	}
	if magic == magicV4 && flags&8 != 0 {
		ct, err := readCheckpointTable(cr)
		if err != nil {
			return nil, err
		}
		ix.Checkpoints = ct
	}
	want := cr.sum // the trailer itself is not part of the checksum
	var trailer [4]byte
	if err := cr.full(trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %w", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(trailer[:]) != want {
		return nil, ErrChecksum
	}
	if err := ix.validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

// readCheckpointTable parses the per-format span-table section of a
// version-4 index. Spans are reconstructed from (gap, compressed
// length, decompressed size) triples; the decompressed offsets are the
// running sum of the sizes, so they are contiguous by construction.
func readCheckpointTable(cr *crcReader) (*CheckpointTable, error) {
	var tag [4]byte
	if err := cr.full(tag[:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	ct := &CheckpointTable{Format: string(tag[:])}
	ct.Flags, _ = cr.ReadByte()
	n := cr.uvarint()
	if cr.err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, cr.err)
	}
	if n > 1<<40 {
		return nil, fmt.Errorf("%w: implausible span count %d", ErrCorrupt, n)
	}
	var compEnd, decomp int64
	for i := uint64(0); i < n; i++ {
		gap := cr.uvarint()
		compLen := cr.uvarint()
		size := cr.uvarint()
		if cr.err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, cr.err)
		}
		// Each field must keep the running offsets inside int64: a
		// forged varint wrapping the accumulator would otherwise slip
		// a negative extent past the span-level checks downstream.
		const maxOff = 1 << 62
		if gap > maxOff || compLen == 0 || compLen > maxOff || size > maxOff ||
			uint64(compEnd)+gap+compLen > maxOff || uint64(decomp)+size > maxOff {
			return nil, fmt.Errorf("%w: checkpoint span %d extents overflow", ErrCorrupt, i)
		}
		s := Checkpoint{
			CompOff:    compEnd + int64(gap),
			DecompOff:  decomp,
			DecompSize: int64(size),
		}
		s.CompEnd = s.CompOff + int64(compLen)
		compEnd = s.CompEnd
		decomp += int64(size)
		ct.Spans = append(ct.Spans, s)
	}
	return ct, nil
}

// validate applies the structural sanity checks shared by both format
// readers: the declared file sizes must bound the seek points (an
// importer derives the final chunk's extent from them by subtraction,
// which must not underflow), and member marks must stay within their
// point's span (they feed the member-CRC part arithmetic, where an
// out-of-span offset would turn into spurious verification results
// instead of a clean import error).
func (ix *Index) validate() error {
	// Monotonicity is structural: an importer derives chunk extents by
	// subtracting adjacent offsets. The v2 reader enforces it per
	// record; checking here covers the checksum-less v1 format too.
	for i := 1; i < len(ix.points); i++ {
		if ix.points[i].CompressedBitOffset <= ix.points[i-1].CompressedBitOffset ||
			ix.points[i].UncompressedOffset < ix.points[i-1].UncompressedOffset {
			return fmt.Errorf("%w: non-monotonic point %d", ErrCorrupt, i)
		}
	}
	if n := len(ix.points); n > 0 && ix.Finalized {
		last := ix.points[n-1]
		if last.UncompressedOffset > ix.UncompressedSize {
			return fmt.Errorf("%w: last point at offset %d exceeds uncompressed size %d",
				ErrCorrupt, last.UncompressedOffset, ix.UncompressedSize)
		}
		if last.CompressedBitOffset >= ix.CompressedSize*8 {
			return fmt.Errorf("%w: last point at bit %d exceeds compressed size %d bytes",
				ErrCorrupt, last.CompressedBitOffset, ix.CompressedSize)
		}
	}
	for i, p := range ix.points {
		marks := ix.memberEnds[p.CompressedBitOffset]
		if len(marks) == 0 {
			continue
		}
		var span uint64
		if i+1 < len(ix.points) {
			span = ix.points[i+1].UncompressedOffset - p.UncompressedOffset
		} else if !ix.Finalized {
			// The last point's span is unknown until the scan completes;
			// rejecting here would make Read refuse WriteTo's own output
			// for an in-progress index.
			continue
		} else {
			// Safe: the finalized-size check above already established
			// UncompressedSize >= the last point's offset.
			span = ix.UncompressedSize - p.UncompressedOffset
		}
		if last := marks[len(marks)-1].RelEnd; last > span {
			return fmt.Errorf("%w: member mark at +%d overruns point %d (span %d)",
				ErrCorrupt, last, i, span)
		}
	}
	if ct := ix.Checkpoints; ct != nil && ix.Finalized {
		// The declared file sizes must bound the span table: an importer
		// slices the compressed source by these extents and trusts the
		// decompressed total as the stream size.
		if n := len(ct.Spans); n > 0 {
			if last := ct.Spans[n-1]; uint64(last.CompEnd) > ix.CompressedSize {
				return fmt.Errorf("%w: checkpoint span ends at byte %d, compressed size is %d",
					ErrCorrupt, last.CompEnd, ix.CompressedSize)
			}
		}
		if len(ix.points) == 0 {
			var total uint64
			for _, s := range ct.Spans {
				total += uint64(s.DecompSize)
			}
			if total != ix.UncompressedSize {
				return fmt.Errorf("%w: checkpoint spans cover %d bytes, uncompressed size is %d",
					ErrCorrupt, total, ix.UncompressedSize)
			}
		}
	}
	return nil
}

// readV1 parses the legacy fixed-width format (no trailing checksum).
func readV1(r io.Reader) (*Index, error) {
	br := bufReader{r: r}
	flags := br.u32()
	ix := New(int(br.u64()))
	ix.Finalized = flags&1 != 0
	ix.CompressedSize = br.u64()
	ix.UncompressedSize = br.u64()
	n := br.u64()
	if br.err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, br.err)
	}
	if n > 1<<40 {
		return nil, fmt.Errorf("%w: implausible point count %d", ErrCorrupt, n)
	}
	for i := uint64(0); i < n; i++ {
		var p SeekPoint
		p.CompressedBitOffset = br.u64()
		p.UncompressedOffset = br.u64()
		p.AtMemberStart = br.u8() == 1
		rawLen := br.u32()
		if br.err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, br.err)
		}
		var win []byte
		if rawLen != 0xFFFFFFFF {
			compLen := br.u32()
			if br.err != nil {
				return nil, fmt.Errorf("%w: %w", ErrCorrupt, br.err)
			}
			var err error
			if win, err = readWindow(br.full, uint64(rawLen), uint64(compLen), i); err != nil {
				return nil, err
			}
		}
		ix.points = append(ix.points, p)
		if win != nil {
			ix.windows[p.CompressedBitOffset] = win
		}
	}
	if err := ix.validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

// readWindow bound-checks the declared window lengths and then reads
// and inflates the window through full — the single validation path
// shared by both format readers, so the amplification cap cannot
// silently diverge between them. Lengths must already be known-good
// reads (no pending reader error).
func readWindow(full func([]byte) error, rawLen, compLen, point uint64) ([]byte, error) {
	if rawLen > maxWindowRaw || compLen > rawLen+rawLen/255+64 {
		return nil, fmt.Errorf("%w: window %d/%d bytes at point %d", ErrCorrupt, compLen, rawLen, point)
	}
	comp := make([]byte, compLen)
	if err := full(comp); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	win, err := flateDecompress(comp, int(rawLen))
	if err != nil {
		return nil, fmt.Errorf("%w: window at point %d: %v", ErrCorrupt, point, err)
	}
	return win, nil
}

func flateCompress(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, 6)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(data); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func flateDecompress(comp []byte, rawLen int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// crcReader reads sequentially while maintaining a running CRC32 of
// every byte it has delivered, so the trailing checksum can be verified
// without buffering the whole index.
type crcReader struct {
	r   io.Reader
	sum uint32
	err error
}

func (c *crcReader) full(p []byte) error {
	if c.err != nil {
		return c.err
	}
	if _, c.err = io.ReadFull(c.r, p); c.err != nil {
		return c.err
	}
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p)
	return nil
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (c *crcReader) ReadByte() (byte, error) {
	var raw [1]byte
	if err := c.full(raw[:]); err != nil {
		return 0, err
	}
	return raw[0], nil
}

func (c *crcReader) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(c)
	if err != nil && c.err == nil {
		c.err = err
	}
	return v
}

// countingReader counts bytes delivered to Read (for ReadFrom).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// bufReader wraps sequential little-endian primitive reads.
type bufReader struct {
	r   io.Reader
	err error
}

func (b *bufReader) full(p []byte) error {
	if b.err != nil {
		return b.err
	}
	_, b.err = io.ReadFull(b.r, p)
	return b.err
}

func (b *bufReader) u8() uint8 {
	var raw [1]byte
	b.full(raw[:])
	return raw[0]
}

func (b *bufReader) u32() uint32 {
	var raw [4]byte
	b.full(raw[:])
	return binary.LittleEndian.Uint32(raw[:])
}

func (b *bufReader) u64() uint64 {
	var raw [8]byte
	b.full(raw[:])
	return binary.LittleEndian.Uint64(raw[:])
}
