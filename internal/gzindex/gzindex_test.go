package gzindex

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func sampleIndex(t *testing.T) *Index {
	t.Helper()
	ix := New(4 << 20)
	ix.CompressedSize = 123456
	ix.UncompressedSize = 654321
	ix.Finalized = true
	points := []struct {
		p      SeekPoint
		window []byte
	}{
		{SeekPoint{CompressedBitOffset: 0, UncompressedOffset: 0, AtMemberStart: true}, nil},
		{SeekPoint{CompressedBitOffset: 1001, UncompressedOffset: 4096}, bytes.Repeat([]byte{0xAB}, 32768)},
		{SeekPoint{CompressedBitOffset: 2002, UncompressedOffset: 8192}, []byte("short window")},
		{SeekPoint{CompressedBitOffset: 3003, UncompressedOffset: 8192}, []byte{}},
	}
	for _, e := range points {
		if err := ix.Add(e.p, e.window); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestAddAndLookup(t *testing.T) {
	ix := sampleIndex(t)
	if ix.Len() != 4 {
		t.Fatalf("len %d", ix.Len())
	}
	if p := ix.Point(1); p.CompressedBitOffset != 1001 || p.UncompressedOffset != 4096 {
		t.Fatalf("point 1: %+v", p)
	}
	w, ok := ix.Window(1001)
	if !ok || len(w) != 32768 {
		t.Fatalf("window 1001: ok=%v len=%d", ok, len(w))
	}
	if _, ok := ix.Window(999); ok {
		t.Fatal("window for unknown offset")
	}
}

func TestAddRejectsOutOfOrder(t *testing.T) {
	ix := New(0)
	ix.Add(SeekPoint{CompressedBitOffset: 100, UncompressedOffset: 50}, nil)
	if err := ix.Add(SeekPoint{CompressedBitOffset: 100, UncompressedOffset: 60}, nil); err == nil {
		t.Fatal("equal compressed offset accepted")
	}
	if err := ix.Add(SeekPoint{CompressedBitOffset: 200, UncompressedOffset: 40}, nil); err == nil {
		t.Fatal("decreasing uncompressed offset accepted")
	}
	// Equal uncompressed offsets are legal (empty members / split points).
	if err := ix.Add(SeekPoint{CompressedBitOffset: 300, UncompressedOffset: 50}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFind(t *testing.T) {
	ix := sampleIndex(t)
	cases := []struct {
		target uint64
		want   int
		ok     bool
	}{
		{0, 0, true},
		{4095, 0, true},
		{4096, 1, true},
		{8191, 1, true},
		{8192, 3, true}, // last of the two equal-offset points
		{1 << 40, 3, true},
	}
	for _, c := range cases {
		got, ok := ix.Find(c.target)
		if ok != c.ok || got != c.want {
			t.Fatalf("Find(%d) = %d,%v want %d,%v", c.target, got, ok, c.want, c.ok)
		}
	}
	empty := New(0)
	if _, ok := empty.Find(0); ok {
		t.Fatal("Find on empty index succeeded")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	ix := sampleIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ix.Len() || got.CompressedSize != ix.CompressedSize ||
		got.UncompressedSize != ix.UncompressedSize || got.Finalized != ix.Finalized ||
		got.ChunkSize != ix.ChunkSize {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, ix)
	}
	for i := 0; i < ix.Len(); i++ {
		if got.Point(i) != ix.Point(i) {
			t.Fatalf("point %d: %+v vs %+v", i, got.Point(i), ix.Point(i))
		}
		w1, ok1 := ix.Window(ix.Point(i).CompressedBitOffset)
		w2, ok2 := got.Window(ix.Point(i).CompressedBitOffset)
		if ok1 != ok2 || !bytes.Equal(w1, w2) {
			t.Fatalf("window %d mismatch (ok %v/%v, %d vs %d bytes)", i, ok1, ok2, len(w1), len(w2))
		}
	}
}

func TestSerializedWindowsCompress(t *testing.T) {
	// 32 KiB windows of repetitive data must not be stored verbatim.
	ix := New(1 << 20)
	ix.Finalized = true
	win := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB
	for i := uint64(1); i <= 64; i++ {
		if err := ix.Add(SeekPoint{CompressedBitOffset: i * 1000, UncompressedOffset: i * 5000}, win); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := 64 * len(win)
	if buf.Len() > raw/4 {
		t.Fatalf("index %d bytes for %d bytes of windows: windows not compressed", buf.Len(), raw)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not an index file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	ix := sampleIndex(t)
	var buf bytes.Buffer
	ix.WriteTo(&buf)
	raw := buf.Bytes()
	for _, cut := range []int{1, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(offsets []uint32, winSeed byte) bool {
		ix := New(64 << 10)
		ix.Finalized = true
		bit, dec := uint64(0), uint64(0)
		for i, o := range offsets {
			bit += uint64(o%100_000) + 1
			dec += uint64(o % 65536)
			var win []byte
			if i%2 == 1 {
				win = bytes.Repeat([]byte{winSeed ^ byte(i)}, int(o%200))
			}
			if err := ix.Add(SeekPoint{CompressedBitOffset: bit, UncompressedOffset: dec}, win); err != nil {
				return false
			}
		}
		ix.CompressedSize = bit/8 + 1
		ix.UncompressedSize = dec
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil || got.Len() != ix.Len() {
			return false
		}
		for i := 0; i < ix.Len(); i++ {
			if got.Point(i) != ix.Point(i) {
				return false
			}
			w1, ok1 := ix.Window(ix.Point(i).CompressedBitOffset)
			w2, ok2 := got.Window(got.Point(i).CompressedBitOffset)
			if ok1 != ok2 || !bytes.Equal(w1, w2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteToReportsBytes(t *testing.T) {
	ix := sampleIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	// WriteTo must also work for non-buffer writers.
	n2, err := ix.WriteTo(io.Discard)
	if err != nil || n2 != n {
		t.Fatalf("io.Discard: %d, %v", n2, err)
	}
}
