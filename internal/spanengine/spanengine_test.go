package spanengine

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/filereader"
	"repro/internal/prefetch"
)

// fakeCodec splits src into fixed-size spans; DecodeSpan "decodes" by
// reading the span extent. decodes counts DecodeSpan calls; sizingCost
// simulates a sizing pass that must decode everything (bzip2-style).
type fakeCodec struct {
	spanSize    int64
	sizingCost  bool
	decodes     atomic.Uint64
	decodeDelay chan struct{} // when non-nil, DecodeSpan blocks until it can receive
}

func (c *fakeCodec) FormatTag() string { return "fake" }

func (c *fakeCodec) Scan(src filereader.FileReader) (ScanResult, error) {
	var res ScanResult
	for off := int64(0); off < src.Size(); off += c.spanSize {
		end := min(off+c.spanSize, src.Size())
		res.Spans = append(res.Spans, Span{
			CompOff: off, CompEnd: end,
			DecompOff: off, DecompSize: end - off,
		})
		if c.sizingCost {
			res.SizingDecodes++
		}
	}
	res.Flags = 0x5A
	return res, nil
}

func (c *fakeCodec) DecodeSpan(src filereader.FileReader, s Span) ([]byte, error) {
	if c.decodeDelay != nil {
		<-c.decodeDelay
	}
	c.decodes.Add(1)
	data, release, err := filereader.Extent(src, s.CompOff, s.CompEnd)
	if err != nil {
		return nil, err
	}
	defer release()
	return bytes.Clone(data), nil
}

func testSrc(n int) []byte {
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i*31 + i>>8)
	}
	return src
}

func TestReadAtMatchesSource(t *testing.T) {
	src := testSrc(10_000)
	codec := &fakeCodec{spanSize: 512}
	e, err := New(filereader.MemoryReader(src), codec, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Size() != int64(len(src)) {
		t.Fatalf("Size = %d, want %d", e.Size(), len(src))
	}
	if e.NumSpans() != 20 {
		t.Fatalf("NumSpans = %d, want 20", e.NumSpans())
	}
	if e.Flags() != 0x5A {
		t.Fatalf("Flags = %#x, want 0x5A", e.Flags())
	}
	for _, off := range []int64{0, 1, 511, 512, 777, 9_999} {
		buf := make([]byte, 700)
		n, err := e.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(buf[:n], src[off:off+int64(n)]) {
			t.Fatalf("ReadAt(%d): content mismatch", off)
		}
	}
}

func TestSequentialReadPrefetches(t *testing.T) {
	src := testSrc(64 << 10)
	codec := &fakeCodec{spanSize: 1 << 10}
	e, err := New(filereader.MemoryReader(src), codec, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var out bytes.Buffer
	buf := make([]byte, 2048)
	var off int64
	for off < e.Size() {
		n, err := e.ReadAt(buf, off)
		if n > 0 {
			out.Write(buf[:n])
			off += int64(n)
		}
		if err != nil {
			break
		}
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatal("sequential read mismatch")
	}
	s := e.Stats()
	if s.PrefetchIssued == 0 {
		t.Fatal("sequential consumption issued no prefetches")
	}
	if s.SizingPasses != 1 {
		t.Fatalf("SizingPasses = %d, want 1", s.SizingPasses)
	}
}

func TestCheckpointRoundTripSkipsSizing(t *testing.T) {
	src := testSrc(32 << 10)
	codec := &fakeCodec{spanSize: 1 << 10, sizingCost: true}
	e, err := New(filereader.MemoryReader(src), codec, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	spans := e.Checkpoints()
	flags := e.Flags()
	if s := e.Stats(); s.SizingDecodes == 0 {
		t.Fatal("fixture should report sizing decodes on a cold scan")
	}
	e.Close()

	codec2 := &fakeCodec{spanSize: 1 << 10, sizingCost: true}
	e2, err := NewFromCheckpoints(filereader.MemoryReader(src), codec2, spans, flags, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if s := e2.Stats(); s.SizingPasses != 0 || s.SizingDecodes != 0 {
		t.Fatalf("checkpoint import ran a sizing pass: %+v", s)
	}
	if e2.Flags() != flags {
		t.Fatalf("Flags = %#x, want %#x", e2.Flags(), flags)
	}
	buf := make([]byte, 4096)
	if _, err := e2.ReadAt(buf, 10_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, src[10_000:10_000+4096]) {
		t.Fatal("content mismatch through imported checkpoints")
	}
}

func TestCheckpointValidation(t *testing.T) {
	src := testSrc(4096)
	codec := &fakeCodec{spanSize: 1024}
	good := []Span{
		{CompOff: 0, CompEnd: 2048, DecompOff: 0, DecompSize: 2048},
		{CompOff: 2048, CompEnd: 4096, DecompOff: 2048, DecompSize: 2048},
	}
	cases := map[string][]Span{
		"empty":           {},
		"out-of-bounds":   {{CompOff: 0, CompEnd: 9999, DecompOff: 0, DecompSize: 1}},
		"negative":        {{CompOff: -1, CompEnd: 10, DecompOff: 0, DecompSize: 1}},
		"inverted":        {{CompOff: 10, CompEnd: 10, DecompOff: 0, DecompSize: 1}},
		"overlap":         {good[0], {CompOff: 1000, CompEnd: 4096, DecompOff: 2048, DecompSize: 1}},
		"decomp-gap":      {good[0], {CompOff: 2048, CompEnd: 4096, DecompOff: 3000, DecompSize: 1}},
		"negative-decomp": {{CompOff: 0, CompEnd: 10, DecompOff: 0, DecompSize: -1}},
		"decomp-not-at-0": {{CompOff: 0, CompEnd: 10, DecompOff: 5, DecompSize: 1}},
	}
	for name, spans := range cases {
		if _, err := NewFromCheckpoints(filereader.MemoryReader(src), codec, spans, 0, Config{}); err == nil {
			t.Errorf("%s: invalid checkpoint table accepted", name)
		}
	}
	e, err := NewFromCheckpoints(filereader.MemoryReader(src), codec, good, 0, Config{})
	if err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	e.Close()
}

func TestConcurrentReadAt(t *testing.T) {
	src := testSrc(128 << 10)
	codec := &fakeCodec{spanSize: 4 << 10}
	e, err := New(filereader.MemoryReader(src), codec, Config{Threads: 4, CacheSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 3000)
			for i := 0; i < 50; i++ {
				off := int64((g*977 + i*31337) % (len(src) - len(buf)))
				n, err := e.ReadAt(buf, off)
				if err != nil || n != len(buf) {
					t.Errorf("ReadAt(%d): n=%d err=%v", off, n, err)
					return
				}
				if !bytes.Equal(buf, src[off:off+int64(n)]) {
					t.Errorf("ReadAt(%d): mismatch", off)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEvictionPressureMidPrefetch forces the span cache over capacity
// while prefetched decodes are still landing: a cache of 2 spans under
// a prefetch depth of 8 must keep evicting mid-flight without losing
// correctness or wedging the engine.
func TestEvictionPressureMidPrefetch(t *testing.T) {
	src := testSrc(256 << 10)
	codec := &fakeCodec{spanSize: 2 << 10} // 128 spans
	e, err := New(filereader.MemoryReader(src), codec, Config{Threads: 4, CacheSize: 2, MaxPrefetch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Sequential consumption ramps the adaptive prefetcher to full
	// depth; every landing prefetch then fights for the two cache slots.
	buf := make([]byte, 1500)
	var off int64
	for off < e.Size() {
		n, err := e.ReadAt(buf, off)
		if n > 0 {
			if !bytes.Equal(buf[:n], src[off:off+int64(n)]) {
				t.Fatalf("mismatch at %d", off)
			}
			off += int64(n)
		}
		if err != nil {
			break
		}
	}
	if off != e.Size() {
		t.Fatalf("consumed %d of %d bytes", off, e.Size())
	}
	s := e.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under a 2-span cache with prefetch depth 8: %+v", s)
	}
	if s.PrefetchIssued == 0 {
		t.Fatalf("no prefetches issued: %+v", s)
	}
}

// TestPrefetchJoin pins the join path: an access finding its span in
// flight must wait for the worker instead of decoding a second time.
func TestPrefetchJoin(t *testing.T) {
	src := testSrc(64 << 10)
	delay := make(chan struct{})
	codec := &fakeCodec{spanSize: 4 << 10, decodeDelay: delay}
	e, err := New(filereader.MemoryReader(src), codec, Config{Threads: 2, Strategy: prefetch.NewFixed(), MaxPrefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Unblock decodes as they come; buffered enough for the whole test.
	go func() {
		for i := 0; i < 1000; i++ {
			delay <- struct{}{}
		}
	}()
	buf := make([]byte, 4<<10)
	for i := 0; i < e.NumSpans(); i++ {
		off := int64(i) * (4 << 10)
		if _, err := e.ReadAt(buf, off); err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
	}
	s := e.Stats()
	if s.PrefetchJoined == 0 {
		t.Fatalf("sequential consumption under a fixed strategy never joined a prefetch: %+v", s)
	}
	// Every span decodes at most once along the sequential walk: joins
	// and cache hits must cover what prefetching started.
	if got := codec.decodes.Load(); got > uint64(e.NumSpans())+2 {
		t.Fatalf("%d decodes for %d spans: joins are not deduplicating work", got, e.NumSpans())
	}
}

func TestClosedEngineFails(t *testing.T) {
	src := testSrc(4096)
	codec := &fakeCodec{spanSize: 1024}
	e, err := New(filereader.MemoryReader(src), codec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.SpanContent(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("SpanContent after Close: err = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSizeMismatchSurfaces(t *testing.T) {
	src := testSrc(4096)
	codec := &fakeCodec{spanSize: 1024}
	spans := []Span{{CompOff: 0, CompEnd: 1024, DecompOff: 0, DecompSize: 999}} // lies about size
	e, err := NewFromCheckpoints(filereader.MemoryReader(src), codec, spans, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.SpanContent(0); err == nil {
		t.Fatal("size-lying checkpoint table decoded without error")
	}
}

func TestSpanContentOutOfRange(t *testing.T) {
	src := testSrc(4096)
	e, err := New(filereader.MemoryReader(src), &fakeCodec{spanSize: 1024}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, i := range []int{-1, 4, 100} {
		if _, err := e.SpanContent(i); err == nil {
			t.Fatalf("SpanContent(%d) succeeded", i)
		}
	}
}

func BenchmarkReadAtSequential(b *testing.B) {
	src := testSrc(1 << 20)
	codec := &fakeCodec{spanSize: 32 << 10}
	e, err := New(filereader.MemoryReader(src), codec, Config{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var off int64
		for off < e.Size() {
			n, err := e.ReadAt(buf, off)
			if n > 0 {
				off += int64(n)
			}
			if err != nil {
				break
			}
		}
	}
}

// TestFileBackedEngineMatchesMemory drives the same codec over the same
// bytes through both backings — a resident buffer and a real temp file —
// and demands identical content plus truthful source-traffic counters:
// the file-backed engine reads spans by positional extent, never the
// whole file at once.
func TestFileBackedEngineMatchesMemory(t *testing.T) {
	src := testSrc(96 << 10)
	path := filepath.Join(t.TempDir(), "spans.bin")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := filereader.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	em, err := New(filereader.MemoryReader(src), &fakeCodec{spanSize: 4 << 10}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	ef, err := New(f, &fakeCodec{spanSize: 4 << 10}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()

	if em.Size() != ef.Size() || em.NumSpans() != ef.NumSpans() {
		t.Fatalf("backings disagree: mem %d/%d file %d/%d",
			em.Size(), em.NumSpans(), ef.Size(), ef.NumSpans())
	}
	for _, off := range []int64{0, 1, 4095, 4096, 50_000, em.Size() - 100} {
		bm := make([]byte, 5000)
		bf := make([]byte, 5000)
		nm, errm := em.ReadAt(bm, off)
		nf, errf := ef.ReadAt(bf, off)
		if nm != nf || !bytes.Equal(bm[:nm], bf[:nf]) {
			t.Fatalf("ReadAt(%d): mem %d bytes (err %v), file %d bytes (err %v)", off, nm, errm, nf, errf)
		}
		if !bytes.Equal(bf[:nf], src[off:off+int64(nf)]) {
			t.Fatalf("ReadAt(%d): file-backed content mismatch", off)
		}
	}
	s := ef.Stats()
	if s.SourceReads == 0 || s.SourceBytesRead == 0 {
		t.Fatalf("file-backed engine reported no source traffic: %+v", s)
	}
	if s.SourceBytesRead%(4<<10) != 0 {
		t.Fatalf("file-backed engine read %d bytes; want a multiple of the 4 KiB span extent (extent preads only)", s.SourceBytesRead)
	}
}
