// Cross-engine pool mode: a CachePool is one byte-budgeted span cache
// shared by any number of engines — the scaling primitive behind the
// archive server, where "N bytes across all open archives" is the
// memory contract, not "N spans per archive". Each participating
// engine gets a view into the pool; recency is global, so a hot
// archive's spans push a cold archive's spans out, and the sum of
// cached decompressed bytes never exceeds the configured budget.

package spanengine

import (
	"sync"

	"repro/internal/cache"
)

// poolKey identifies one cached span pool-wide: the owning view's id
// plus the span index within that engine.
type poolKey struct {
	view uint64
	span int
}

// PoolStats is a snapshot of a CachePool's accounting.
type PoolStats struct {
	// BudgetBytes is the configured capacity; UsedBytes the cached
	// decompressed bytes right now; PeakBytes the high-water mark of
	// UsedBytes over the pool's lifetime. UsedBytes <= BudgetBytes is a
	// structural invariant (spans larger than the whole budget are
	// simply not cached), so PeakBytes <= BudgetBytes always holds.
	BudgetBytes, UsedBytes, PeakBytes int64
	// Entries counts cached spans; Engines the views currently
	// registered (one per open engine in pool mode).
	Entries, Engines int
	// Hits/Misses/Evictions aggregate over all member engines.
	// Rejected counts spans that were not cached because they alone
	// exceed the budget.
	Hits, Misses, Evictions, Rejected uint64
}

// CachePool is a shared span cache with a global byte budget and
// global LRU recency across every engine registered with it. It is
// safe for concurrent use and may outlive any of its engines; closing
// an engine releases its entries back to the budget.
type CachePool struct {
	mu     sync.Mutex
	budget int64
	used   int64
	peak   int64
	nextID uint64
	lru    *cache.LRU[poolKey]
	items  map[poolKey]*entry
	views  map[uint64]*poolView
	// aggregate counters over closed views, so Stats does not dip when
	// an engine deregisters.
	hits, misses, evictions, rejected uint64
}

// NewCachePool returns a pool bounding the cached decompressed bytes
// of all member engines to budgetBytes. A non-positive budget caches
// nothing (every span is served by decoding).
func NewCachePool(budgetBytes int64) *CachePool {
	return &CachePool{
		budget: budgetBytes,
		lru:    cache.NewLRU[poolKey](),
		items:  map[poolKey]*entry{},
		views:  map[uint64]*poolView{},
	}
}

// Stats returns a snapshot of the pool's accounting, aggregated over
// all member engines (past and present).
func (p *CachePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{
		BudgetBytes: p.budget,
		UsedBytes:   p.used,
		PeakBytes:   p.peak,
		Entries:     len(p.items),
		Engines:     len(p.views),
		Hits:        p.hits,
		Misses:      p.misses,
		Evictions:   p.evictions,
		Rejected:    p.rejected,
	}
	for _, v := range p.views {
		s.Hits += v.hits
		s.Misses += v.misses
		s.Evictions += v.evictions
		s.Rejected += v.rejected
	}
	return s
}

// register creates a view for one engine. Called by newEngine when
// Config.Pool is set.
func (p *CachePool) register() *poolView {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	v := &poolView{pool: p, id: p.nextID, keys: map[int]struct{}{}}
	p.views[v.id] = v
	return v
}

// evictOneLocked drops the globally least-recently-used entry and
// credits its bytes back. Caller holds p.mu.
func (p *CachePool) evictOneLocked() bool {
	k, ok := p.lru.Evict()
	if !ok {
		return false
	}
	ent := p.items[k]
	delete(p.items, k)
	p.used -= int64(len(ent.data))
	if owner := p.views[k.view]; owner != nil {
		delete(owner.keys, k.span)
		owner.evictions++
	} else {
		p.evictions++
	}
	return true
}

// poolView adapts the shared pool to the engine's spanStore interface.
// All methods are called with the owning engine's mutex held; the view
// only takes the pool mutex inside, so the lock order is always
// engine -> pool and the pool never calls back into an engine.
type poolView struct {
	pool *CachePool
	id   uint64
	// guarded by pool.mu:
	keys                              map[int]struct{}
	hits, misses, evictions, rejected uint64
	closed                            bool
}

func (v *poolView) Get(i int) (*entry, bool) {
	p := v.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.closed {
		return nil, false
	}
	k := poolKey{view: v.id, span: i}
	ent, ok := p.items[k]
	if ok {
		p.lru.Touch(k)
		v.hits++
	} else {
		v.misses++
	}
	return ent, ok
}

func (v *poolView) Put(i int, ent *entry) {
	cost := int64(len(ent.data))
	p := v.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.closed {
		return
	}
	if cost > p.budget {
		// Caching this span alone would break the budget invariant;
		// serve it uncached instead (the caller already has the bytes).
		v.rejected++
		return
	}
	k := poolKey{view: v.id, span: i}
	if old, ok := p.items[k]; ok {
		p.used -= int64(len(old.data))
		p.lru.Remove(k)
	}
	for p.used+cost > p.budget {
		if !p.evictOneLocked() {
			return // nothing left to evict; should be unreachable
		}
	}
	p.items[k] = ent
	p.lru.Insert(k)
	v.keys[i] = struct{}{}
	p.used += cost
	if p.used > p.peak {
		p.peak = p.used
	}
}

func (v *poolView) Contains(i int) bool {
	p := v.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.closed {
		return false
	}
	_, ok := p.items[poolKey{view: v.id, span: i}]
	return ok
}

func (v *poolView) Stats() cache.Stats {
	p := v.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	return cache.Stats{Hits: v.hits, Misses: v.misses, Evictions: v.evictions}
}

// Close deregisters the view: its entries are dropped, their bytes
// credited back to the budget, and its counters folded into the pool
// aggregates. Idempotent; subsequent Get/Put are no-ops.
func (v *poolView) Close() {
	p := v.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.closed {
		return
	}
	v.closed = true
	for span := range v.keys {
		k := poolKey{view: v.id, span: span}
		if ent, ok := p.items[k]; ok {
			p.used -= int64(len(ent.data))
			delete(p.items, k)
			p.lru.Remove(k)
		}
	}
	v.keys = nil
	p.hits += v.hits
	p.misses += v.misses
	p.evictions += v.evictions
	p.rejected += v.rejected
	delete(p.views, v.id)
}

// localStore is the classic per-engine span cache (capacity in spans,
// private LRU) behind the same spanStore interface pool mode uses.
type localStore struct {
	c *cache.Cache[int, *entry]
}

func (l *localStore) Get(i int) (*entry, bool) { return l.c.Get(i) }
func (l *localStore) Put(i int, ent *entry)    { l.c.Put(i, ent) }
func (l *localStore) Contains(i int) bool      { return l.c.Contains(i) }
func (l *localStore) Stats() cache.Stats       { return l.c.Stats() }
func (l *localStore) Close()                   {}

// spanStore is the engine's cache seam: either a private LRU
// (localStore) or a view into a shared cross-engine CachePool.
// Methods are called with the engine mutex held.
type spanStore interface {
	Get(i int) (*entry, bool)
	Put(i int, ent *entry)
	Contains(i int) bool
	Stats() cache.Stats
	Close()
}
