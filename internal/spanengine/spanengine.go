// Package spanengine is the shared random-access core behind every
// non-gzip backend: one engine owning the checkpoint table ("spans"),
// the LRU span cache and the prefetcher, parameterised by a small
// per-format Codec that only knows how to split a file into spans (the
// sizing pass) and how to decode one span.
//
// This is the paper's cache-plus-prefetch chunk-fetcher architecture
// (§3.2, Figure 5), serving two kinds of codecs. Formats whose metadata
// declares boundaries (bzip2, LZ4, Zstandard, BGZF) hand the engine a
// complete span table up front — either from the codec's sizing pass or
// from a persisted checkpoint table (an RGZIDX04 index), in which case
// the sizing pass is skipped entirely. Formats that must discover
// boundaries by decoding (gzip) implement Grower on top of Codec and
// run the engine in growing mode (see growing.go): the span table
// starts empty and extends one confirmed decode unit at a time, while
// speculative results parked in the tentative pool stay exactly that —
// tentative — until a clean upstream decode confirms where the next
// span really starts.
//
// The engine operates over a positional reader (filereader.FileReader),
// never a resident buffer: codecs size the file with bounded windowed
// reads and decode each span from its own compressed extent, so a
// file-backed archive serves random access without ever materializing
// the whole compressed file in memory. All source traffic flows through
// one SharedFileReader per engine — its pread and byte counters are the
// observable proof of that bound.
package spanengine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/filereader"
	"repro/internal/pool"
	"repro/internal/prefetch"
)

// Span is one checkpoint: a compressed byte extent that decodes
// independently of every other span, and the decompressed extent it
// produces. Spans are ordered; decompressed extents are contiguous
// from offset 0 (the compressed side may have gaps — zstd skippable
// frames sit between data frames).
type Span struct {
	// CompOff and CompEnd delimit the compressed bytes of the span.
	CompOff, CompEnd int64
	// DecompOff and DecompSize delimit the decompressed output.
	DecompOff, DecompSize int64
}

// ScanResult is the outcome of a codec's sizing pass.
type ScanResult struct {
	// Spans is the complete checkpoint table, in stream order.
	Spans []Span
	// SizingDecodes counts the full span decodes the pass needed to
	// establish decompressed extents. Formats whose metadata declares
	// sizes (LZ4, sized zstd) report zero; bzip2 decodes everything
	// once.
	SizingDecodes uint64
	// Flags carries codec-specific capability bits (checksummed, block
	// independence, metadata-sized, ...). They are persisted alongside
	// the span table so a reopen-from-index reader can report
	// capabilities without re-parsing headers.
	Flags uint8
	// Primed optionally carries decompressed span contents the sizing
	// pass produced anyway (keyed by span index); the engine seeds its
	// cache with them so small unsized files do not decode twice.
	Primed map[int][]byte
}

// Codec is the per-format half of the engine: how to split a file into
// spans and how to decode one. Implementations must be safe for
// concurrent DecodeSpan calls — the prefetcher runs them on a worker
// pool — and must read src positionally with bounded windows: a span's
// compressed extent (via filereader.Extent) for decodes, a walker for
// sizing passes. src may be memory- or file-backed; the helpers take
// the zero-copy path automatically for the former.
type Codec interface {
	// FormatTag is the 4-byte tag identifying this codec in persisted
	// checkpoint tables (e.g. "bz2 ", "lz4 ", "zstd").
	FormatTag() string
	// Scan runs the sizing pass over src, producing the span table.
	Scan(src filereader.FileReader) (ScanResult, error)
	// DecodeSpan decodes the compressed bytes of one span (reading only
	// [s.CompOff, s.CompEnd) of src), returning exactly s.DecompSize
	// bytes.
	DecodeSpan(src filereader.FileReader, s Span) ([]byte, error)
}

// Config tunes an Engine. The zero value selects defaults.
type Config struct {
	// Threads is the prefetch worker count (min 1).
	Threads int
	// CacheSize is the span cache capacity in spans; zero selects
	// max(2*Threads, 4). Prefetched and accessed spans share the cache,
	// so it should be at least as large as MaxPrefetch to avoid
	// prefetch results evicting each other before consumption.
	CacheSize int
	// MaxPrefetch bounds in-flight speculative span decodes; zero
	// selects 2*Threads (the paper's default prefetch-cache depth).
	MaxPrefetch int
	// Strategy proposes spans to prefetch; nil selects
	// prefetch.NewAdaptive().
	Strategy prefetch.Strategy
	// Pool, when non-nil, replaces the engine's private span cache with
	// a view into a shared cross-engine CachePool: cached bytes are
	// bounded pool-wide (in bytes, not spans) and recency is global
	// across every member engine. CacheSize is ignored in pool mode.
	Pool *CachePool
}

func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.MaxPrefetch <= 0 {
		c.MaxPrefetch = 2 * c.Threads
	}
	if c.CacheSize <= 0 {
		c.CacheSize = max(2*c.Threads, 4)
	}
	if c.Strategy == nil {
		c.Strategy = prefetch.NewAdaptive()
	}
	return c
}

// Stats counts engine activity. The zero-sizing-pass property of an
// index import is observable here: SizingPasses and SizingDecodes stay
// exactly zero when the engine was built from checkpoints.
type Stats struct {
	// SizingPasses counts codec Scan invocations (0 or 1).
	SizingPasses uint64
	// SizingDecodes counts full span decodes the sizing pass needed.
	SizingDecodes uint64
	// SpanDecodes counts span decodes after construction (on-demand
	// and prefetch alike; sizing decodes are not included).
	SpanDecodes uint64
	// PrefetchProposed counts the span candidates the strategy proposed
	// across all accesses, before filtering against the cache, the
	// in-flight set and the MaxPrefetch bound. Unlike PrefetchIssued it
	// is deterministic for a given access sequence, which makes it the
	// counter to compare strategies by.
	PrefetchProposed uint64
	// PrefetchIssued counts speculative span decodes dispatched to the
	// worker pool.
	PrefetchIssued uint64
	// PrefetchJoined counts accesses that found their span already in
	// flight and waited for the prefetch instead of decoding.
	PrefetchJoined uint64
	// CacheHits / CacheMisses / Evictions mirror the span cache.
	CacheHits, CacheMisses, Evictions uint64
	// SourceReads counts positional reads issued against the compressed
	// source (sizing-pass windows and span-extent reads alike; memory-
	// backed sources count one logical read per zero-copy extent).
	// SourceBytesRead is the bytes those reads returned. Together they
	// bound the compressed bytes the engine ever made resident: for a
	// file-backed archive, SourceBytesRead staying far below the file
	// size is the larger-than-RAM property, measured.
	SourceReads, SourceBytesRead uint64
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("spanengine: engine is closed")

// entry is one cached decompressed span.
type entry struct {
	data []byte
}

// Engine serves concurrent random access over the decompressed stream
// of one compressed source: ReadAt locates the spans covering a
// request, serves them from the LRU cache when possible, and feeds the
// prefetch strategy with every span access so upcoming spans decode on
// the worker pool while the caller consumes the current one. The
// source is positional — a file on disk works exactly like a resident
// buffer, each decode preading only its own compressed extent.
//
// All methods are safe for concurrent use. The engine does not own the
// source: closing the underlying file is the caller's job, after Close.
type Engine struct {
	src   *filereader.SharedFileReader
	codec Codec
	flags uint8
	cfg   Config

	mu sync.Mutex
	// spans and size are guarded by mu: a growing engine appends while
	// readers are active. Span values are never mutated after append.
	spans    []Span
	size     int64
	complete bool
	cache    spanStore
	inflight map[int]*pool.Future[[]byte]
	strategy prefetch.Strategy
	pool     *pool.Pool
	stats    Stats
	closed   bool

	// Growing-mode state (nil/unused for complete-table engines).
	grower   Grower
	observer AccessObserver
	growMu   sync.Mutex // serialises GrowNext calls
	tentMu   sync.Mutex
	tent     *cache.Cache[uint64, any]
}

// share returns src as a SharedFileReader, wrapping it only if it is
// not one already — so a caller that pre-wraps the source (to observe
// the same read counters the engine reports) keeps counter continuity.
func share(src filereader.FileReader) *filereader.SharedFileReader {
	if s, ok := src.(*filereader.SharedFileReader); ok {
		return s
	}
	return filereader.NewShared(src)
}

// New runs the codec's sizing pass over src and returns an engine over
// the resulting span table. All source traffic — the sizing pass
// included — is routed through one SharedFileReader and shows up in
// Stats.
func New(src filereader.FileReader, codec Codec, cfg Config) (*Engine, error) {
	shared := share(src)
	scan, err := codec.Scan(shared)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(shared, codec, scan.Spans, scan.Flags, cfg)
	if err != nil {
		return nil, err
	}
	e.stats.SizingPasses = 1
	e.stats.SizingDecodes = scan.SizingDecodes
	for i, content := range scan.Primed {
		if i >= 0 && i < len(e.spans) && int64(len(content)) == e.spans[i].DecompSize {
			e.cache.Put(i, &entry{data: content})
		}
	}
	return e, nil
}

// NewFromCheckpoints builds an engine from a persisted span table,
// skipping the sizing pass entirely — the reopen-with-index fast path
// (and, file-backed, the zero-read open: no byte of the source is
// touched until the first span access). The table is validated
// structurally (ordered, in-bounds, contiguous decompressed extents);
// decode errors from a stale table surface on first access, exactly
// like data corruption would.
func NewFromCheckpoints(src filereader.FileReader, codec Codec, spans []Span, flags uint8, cfg Config) (*Engine, error) {
	if len(spans) == 0 {
		return nil, errors.New("spanengine: empty checkpoint table")
	}
	size := src.Size()
	var decomp int64
	for i, s := range spans {
		if s.CompOff < 0 || s.CompEnd <= s.CompOff || s.CompEnd > size {
			return nil, fmt.Errorf("spanengine: checkpoint %d compressed extent [%d,%d) out of bounds (%d-byte source)",
				i, s.CompOff, s.CompEnd, size)
		}
		if i > 0 && s.CompOff < spans[i-1].CompEnd {
			return nil, fmt.Errorf("spanengine: checkpoint %d overlaps its predecessor", i)
		}
		if s.DecompSize < 0 || s.DecompOff != decomp {
			return nil, fmt.Errorf("spanengine: checkpoint %d decompressed extent not contiguous", i)
		}
		decomp += s.DecompSize
	}
	return newEngine(share(src), codec, spans, flags, cfg)
}

func newEngine(src *filereader.SharedFileReader, codec Codec, spans []Span, flags uint8, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	var store spanStore
	if cfg.Pool != nil {
		store = cfg.Pool.register()
	} else {
		store = &localStore{c: cache.NewLRUCache[int, *entry](cfg.CacheSize)}
	}
	e := &Engine{
		src:      src,
		codec:    codec,
		spans:    spans,
		flags:    flags,
		cfg:      cfg,
		complete: true,
		cache:    store,
		inflight: map[int]*pool.Future[[]byte]{},
		strategy: cfg.Strategy,
		pool:     pool.New(cfg.Threads),
	}
	if o, ok := codec.(AccessObserver); ok {
		e.observer = o
	}
	for _, s := range spans {
		e.size += s.DecompSize
	}
	return e, nil
}

// Close shuts the prefetch worker pool down. In-flight decodes finish
// (their results are discarded); subsequent accesses fail with
// ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	// Close outside the lock: it waits for workers, and workers take
	// the lock briefly to record their results.
	e.pool.Close()
	// With the workers drained and e.closed set, nothing touches the
	// store any more; in pool mode this releases the engine's cached
	// bytes back to the shared budget.
	e.cache.Close()
	return nil
}

// Size returns the decompressed size confirmed so far: the total size
// for a complete-table engine, the confirmed frontier for a growing
// one (use TotalSize to force completion first).
func (e *Engine) Size() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.size
}

// NumSpans returns the number of checkpoints confirmed so far.
func (e *Engine) NumSpans() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.spans)
}

// Flags returns the codec capability bits recorded at scan (or import)
// time.
func (e *Engine) Flags() uint8 { return e.flags }

// Checkpoints returns a copy of the span table, for persisting.
func (e *Engine) Checkpoints() []Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Span, len(e.spans))
	copy(out, e.spans)
	return out
}

// SpanExtent returns the decompressed offset and size of span i.
func (e *Engine) SpanExtent(i int) (off, size int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spans[i].DecompOff, e.spans[i].DecompSize
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	cs := e.cache.Stats()
	s.CacheHits, s.CacheMisses, s.Evictions = cs.Hits, cs.Misses, cs.Evictions
	s.SourceReads = uint64(e.src.Reads())
	s.SourceBytesRead = uint64(e.src.BytesRead())
	return s
}

// SpanContent returns the decompressed content of span i, records the
// access with the prefetch strategy, and issues follow-up prefetches.
// The returned slice is shared with the cache and must not be modified.
func (e *Engine) SpanContent(i int) ([]byte, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if i < 0 || i >= len(e.spans) {
		n := len(e.spans)
		e.mu.Unlock()
		return nil, fmt.Errorf("spanengine: span %d out of range [0,%d)", i, n)
	}
	s := e.spans[i]
	// Feed the strategy first so the prefetches issued below already
	// reflect this access (paper §3.2: prefetching starts before the
	// blocking fetch of the requested chunk).
	e.strategy.Access(uint64(i))
	if ent, ok := e.cache.Get(i); ok {
		e.issuePrefetches()
		e.mu.Unlock()
		e.noteAccess(i, ent.data)
		return ent.data, nil
	}
	fut := e.inflight[i]
	if fut != nil {
		e.stats.PrefetchJoined++
	}
	e.issuePrefetches()
	e.mu.Unlock()

	if fut != nil {
		// The span is already decoding on a worker; join it. The worker
		// moves the result into the cache itself.
		data, err := fut.Wait()
		if err == nil {
			e.noteAccess(i, data)
		}
		return data, err
	}

	// On-demand decode on the caller's goroutine (concurrent callers
	// racing on the same span duplicate work, not results).
	data, err := e.codec.DecodeSpan(e.src, s)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != s.DecompSize {
		return nil, fmt.Errorf("spanengine: span %d decoded %d bytes, table says %d",
			i, len(data), s.DecompSize)
	}
	e.mu.Lock()
	e.stats.SpanDecodes++
	if !e.closed {
		e.cache.Put(i, &entry{data: data})
	}
	e.mu.Unlock()
	e.noteAccess(i, data)
	return data, nil
}

// noteAccess reports a span consumption to the codec's observer (if
// any). Called without e.mu held, after content is available.
func (e *Engine) noteAccess(i int, data []byte) {
	if e.observer != nil {
		e.observer.SpanAccessed(i, data)
	}
}

// issuePrefetches asks the strategy for span candidates and dispatches
// decodes for the ones neither cached nor in flight, bounded by
// MaxPrefetch. Caller holds e.mu.
func (e *Engine) issuePrefetches() {
	if e.closed {
		return
	}
	cands := e.strategy.Prefetch(e.cfg.MaxPrefetch)
	e.stats.PrefetchProposed += uint64(len(cands))
	for _, cand := range cands {
		if len(e.inflight) >= e.cfg.MaxPrefetch {
			return
		}
		if cand >= uint64(len(e.spans)) {
			// Beyond the confirmed table. A growing codec turns these
			// candidates into speculative decodes of grid cells past the
			// frontier; complete tables have nothing there.
			if e.grower != nil && !e.complete {
				e.grower.Speculate(e, cand)
			}
			continue
		}
		i := int(cand)
		if e.cache.Contains(i) || e.inflight[i] != nil {
			continue
		}
		s := e.spans[i]
		e.stats.PrefetchIssued++
		e.inflight[i] = pool.GoLow(e.pool, func() ([]byte, error) {
			data, err := e.codec.DecodeSpan(e.src, s)
			if err == nil && int64(len(data)) != s.DecompSize {
				err = fmt.Errorf("spanengine: span %d decoded %d bytes, table says %d", i, len(data), s.DecompSize)
			}
			e.mu.Lock()
			delete(e.inflight, i)
			if err == nil {
				e.stats.SpanDecodes++
				if !e.closed {
					e.cache.Put(i, &entry{data: data})
				}
			}
			e.mu.Unlock()
			return data, err
		})
	}
}

// findSpanLocked returns the index of the span covering decompressed
// offset off, skipping zero-size spans (which cover nothing). Caller
// holds e.mu.
func (e *Engine) findSpanLocked(off int64) int {
	i := sort.Search(len(e.spans), func(i int) bool {
		return e.spans[i].DecompOff > off
	}) - 1
	for i >= 0 && i < len(e.spans) && e.spans[i].DecompOff+e.spans[i].DecompSize <= off {
		i++
	}
	return i
}

// ReadAt implements io.ReaderAt over the decompressed stream. On a
// growing engine it extends the confirmed table as far as the request
// needs; io.EOF is only reported once the table is complete.
func (e *Engine) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("spanengine: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		if err := e.ensureCovered(off); err != nil {
			return n, err
		}
		e.mu.Lock()
		i := e.findSpanLocked(off)
		ok := off < e.size && i >= 0 && i < len(e.spans)
		var s Span
		if ok {
			s = e.spans[i]
		}
		e.mu.Unlock()
		if !ok {
			return n, io.EOF
		}
		out, err := e.SpanContent(i)
		if err != nil {
			return n, err
		}
		within := off - s.DecompOff
		c := copy(p[n:], out[within:])
		n += c
		off += int64(c)
	}
	return n, nil
}
