// Growing mode: the engine extension for formats that cannot enumerate
// their span table from metadata and must discover it by decoding —
// gzip, whose deflate blocks start at arbitrary bit offsets. The table
// starts empty and grows one confirmed decode unit at a time, driven by
// the codec's Grower half; everything a speculative worker produces is
// parked in the engine's tentative pool, keyed by the exact offset
// where the decode actually began, and stays tentative until a clean
// upstream decode confirms the frontier reaches exactly that offset
// (the paper's §3 robustness argument: a block-finder false positive
// simply never matches a requested key and ages out of the pool).

package spanengine

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/filereader"
	"repro/internal/pool"
)

// Grower is the growth half of a codec whose span table must be
// discovered by decoding. The engine serialises GrowNext calls; the
// other methods are called under the locks documented per method.
type Grower interface {
	// GrowNext confirms the next decode unit: obtain the decode result
	// for the exact frontier offset (tentative pool, in-flight
	// speculation, or an on-demand decode), append the resulting spans
	// via AppendSpans, and prime their contents via Prime. It returns
	// done=true once the frontier has reached end of file (possibly on
	// the same call that appended the final spans). Calls are
	// serialised by the engine; the implementation may block.
	GrowNext(e *Engine) (done bool, err error)
	// Speculate offers a prefetch candidate beyond the confirmed table
	// (in spans past the frontier). The codec maps it to a speculative
	// decode of its own geometry and schedules it on the engine's pool.
	// Called with the engine's internal mutex held: the implementation
	// must only do quick bookkeeping plus pool submission, and must not
	// call back into engine methods other than Pool.
	Speculate(e *Engine, cand uint64)
	// TentativeEvicted reports that the tentative pool dropped the
	// entry keyed by key, so the codec can re-arm whatever bookkeeping
	// (e.g. a guessed-cell bitmap) would otherwise suppress a retry.
	// Called while the pool's mutex is held; must not call back into
	// the tentative pool.
	TentativeEvicted(key uint64)
}

// GrowingCodec is the contract for growing-mode engines: a Codec whose
// Scan is never called (the table grows instead) plus the Grower half.
type GrowingCodec interface {
	Codec
	Grower
}

// AccessObserver is implemented by codecs that want to observe span
// consumption — every successful SpanContent, with the decoded bytes.
// gzip uses it to verify member CRC32s in consumption order. Called
// without engine locks held.
type AccessObserver interface {
	SpanAccessed(i int, data []byte)
}

// NewGrowing returns an engine in growing mode: the span table starts
// empty and extends on demand (ReadAt, EnsureComplete, GrowTo), one
// GrowNext unit at a time. The discovery scan counts as the engine's
// sizing pass; an engine rebuilt from checkpoints instead reports
// SizingPasses == 0, exactly like the complete-table formats.
func NewGrowing(src filereader.FileReader, codec GrowingCodec, flags uint8, cfg Config) (*Engine, error) {
	e, err := newEngine(share(src), codec, nil, flags, cfg)
	if err != nil {
		return nil, err
	}
	e.grower = codec
	e.complete = false
	e.stats.SizingPasses = 1
	e.tent = cache.NewLRUCache[uint64, any](max(2*e.cfg.MaxPrefetch, 4))
	e.tent.OnEvict = func(key uint64, _ any) { codec.TentativeEvicted(key) }
	return e, nil
}

// Pool exposes the worker pool for codec-scheduled speculative work.
func (e *Engine) Pool() *pool.Pool { return e.pool }

// Complete reports whether the span table covers the whole file.
func (e *Engine) Complete() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.complete
}

// AppendSpans appends confirmed spans to the table (growing mode;
// called by GrowNext). It returns the table index of the first
// appended span.
func (e *Engine) AppendSpans(spans ...Span) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	base := len(e.spans)
	e.spans = append(e.spans, spans...)
	for _, s := range spans {
		e.size += s.DecompSize
	}
	return base
}

// Prime registers a pending content future for span i: decode runs on
// the worker pool (at resolution priority, ahead of speculation) and
// its result lands in the span cache. Accesses arriving before it
// finishes join the future exactly like a prefetch in flight. No-op if
// the span is already cached or in flight.
func (e *Engine) Prime(i int, decode func() ([]byte, error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.cache.Contains(i) || e.inflight[i] != nil {
		return
	}
	e.inflight[i] = pool.Go(e.pool, func() ([]byte, error) {
		data, err := decode()
		e.mu.Lock()
		delete(e.inflight, i)
		if err == nil && !e.closed {
			e.cache.Put(i, &entry{data: data})
		}
		e.mu.Unlock()
		return data, err
	})
}

// PutTentative parks a speculative decode result under its exact start
// key. The pool is LRU-bounded; evicted entries are reported to the
// grower so the speculation can be retried later.
func (e *Engine) PutTentative(key uint64, v any) {
	e.tentMu.Lock()
	defer e.tentMu.Unlock()
	if e.tent != nil {
		e.tent.Put(key, v)
	}
}

// TakeTentative removes and returns the tentative entry keyed by key.
func (e *Engine) TakeTentative(key uint64) (any, bool) {
	e.tentMu.Lock()
	defer e.tentMu.Unlock()
	if e.tent == nil {
		return nil, false
	}
	v, ok := e.tent.Peek(key)
	if ok {
		e.tent.Delete(key)
	}
	return v, ok
}

// HasTentative reports whether a tentative entry for key is parked,
// without touching LRU order.
func (e *Engine) HasTentative(key uint64) bool {
	e.tentMu.Lock()
	defer e.tentMu.Unlock()
	return e.tent != nil && e.tent.Contains(key)
}

// growStep runs one serialised growth iteration: feed the strategy the
// next span index and start speculation before the (possibly blocking)
// frontier confirmation — paper §3.2, prefetching starts before the
// blocking fetch.
func (e *Engine) growStep() error {
	e.growMu.Lock()
	defer e.growMu.Unlock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.complete {
		e.mu.Unlock()
		return nil
	}
	e.strategy.Access(uint64(len(e.spans)))
	e.issuePrefetches()
	e.mu.Unlock()
	done, err := e.grower.GrowNext(e)
	if err != nil {
		return err
	}
	if done {
		e.mu.Lock()
		e.complete = true
		e.mu.Unlock()
	}
	return nil
}

// ensureCovered grows the table until decompressed offset off is
// covered (or the table is complete). Afterwards it opportunistically
// confirms units whose speculative results are already parked, so the
// serial confirmation walk runs ahead of consumption and the primed
// resolutions overlap it (the paper's §2.2 Amdahl argument assumes
// exactly this overlap).
func (e *Engine) ensureCovered(off int64) error {
	for {
		e.mu.Lock()
		covered := e.complete || e.grower == nil || off < e.size
		e.mu.Unlock()
		if covered {
			break
		}
		if err := e.growStep(); err != nil {
			return err
		}
	}
	for e.growReady() {
		if err := e.growStep(); err != nil {
			return err
		}
	}
	return nil
}

// growReady reports whether the next growth step would complete
// without blocking (a tentative result is parked at the frontier key).
func (e *Engine) growReady() bool {
	e.mu.Lock()
	pending := e.grower != nil && !e.complete && !e.closed
	e.mu.Unlock()
	if !pending {
		return false
	}
	r, ok := e.grower.(interface{ GrowReady(e *Engine) bool })
	return ok && r.GrowReady(e)
}

// SpanAt returns the index of the span covering decompressed offset
// off, growing the table as far as needed. io.EOF reports offsets at or
// past the end of the (completed) stream.
func (e *Engine) SpanAt(off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("spanengine: negative offset %d", off)
	}
	if err := e.ensureCovered(off); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if off >= e.size {
		return 0, io.EOF
	}
	i := e.findSpanLocked(off)
	if i < 0 || i >= len(e.spans) {
		return 0, io.EOF
	}
	return i, nil
}

// EnsureComplete grows the span table to end of file.
func (e *Engine) EnsureComplete() error {
	for {
		e.mu.Lock()
		done := e.complete || e.grower == nil
		e.mu.Unlock()
		if done {
			return nil
		}
		if err := e.growStep(); err != nil {
			return err
		}
	}
}

// TotalSize returns the total decompressed size, growing the table to
// completion first if necessary.
func (e *Engine) TotalSize() (int64, error) {
	if err := e.EnsureComplete(); err != nil {
		return 0, err
	}
	return e.Size(), nil
}

// GrowTo ensures span i exists, growing as needed; it reports whether
// the (now possibly complete) table contains it.
func (e *Engine) GrowTo(i int) (bool, error) {
	for {
		e.mu.Lock()
		n, done := len(e.spans), e.complete || e.grower == nil
		e.mu.Unlock()
		if i < n {
			return true, nil
		}
		if done {
			return false, nil
		}
		if err := e.growStep(); err != nil {
			return false, err
		}
	}
}
