package server

import (
	"net/http"
	"strings"
	"time"
)

// conditionalHit reports whether a GET/HEAD request carries a cache
// validator matching the current representation, i.e. whether the
// response should be 304 Not Modified. Evaluation order follows
// RFC 9110 §13.1.3: when If-None-Match is present it alone decides and
// If-Modified-Since MUST be ignored (even when the etag comparison
// fails); If-Modified-Since applies only in its absence.
func conditionalHit(r *http.Request, etag string, modTime time.Time) bool {
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		return etagMatches(inm, etag)
	}
	ims := r.Header.Get("If-Modified-Since")
	if ims == "" {
		return false
	}
	t, err := http.ParseTime(ims)
	if err != nil {
		return false // an unparseable date is ignored, not an error
	}
	// Last-Modified is serialised at HTTP-date (second) granularity, so
	// compare at the same resolution — otherwise a sub-second mtime is
	// always "after" the date the client echoed back and never matches.
	return !modTime.Truncate(time.Second).After(t)
}

// etagMatches evaluates an If-None-Match field value against the
// current entity-tag using the weak comparison of RFC 9110 §8.8.3.2
// (a W/ prefix is disregarded on both sides). The value is either "*"
// or a comma-separated list of entity-tags; each tag is a quoted
// string whose content may itself contain commas, so members are
// scanned by their closing quote rather than split on commas.
func etagMatches(header, etag string) bool {
	target := strings.TrimPrefix(strings.TrimSpace(etag), "W/")
	rest := strings.TrimSpace(header)
	if rest == "*" {
		return true
	}
	for rest != "" {
		rest = strings.TrimLeft(rest, " \t,")
		if rest == "" {
			break
		}
		tag := strings.TrimPrefix(rest, "W/")
		if len(tag) < 2 || tag[0] != '"' {
			return false // malformed list: no match, never a 304 by accident
		}
		end := strings.IndexByte(tag[1:], '"')
		if end < 0 {
			return false // unterminated quoted string
		}
		if tag[:end+2] == target {
			return true
		}
		rest = tag[end+2:]
	}
	return false
}
