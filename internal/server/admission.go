package server

import "context"

// admission is the open-path admission controller. It replaces the old
// single global open semaphore with a two-lane scheme that keeps cold
// heavyweight opens from starving everything else:
//
//   - every open (light or heavy) holds one of `slots` — the overall
//     concurrency bound, unchanged from before;
//   - a heavy open (a sizing pass that must decode real data: a cold
//     bzip2 scan, an unindexed gzip first pass) additionally holds one
//     of `heavy`, whose capacity is strictly smaller than `slots`.
//
// The invariant that buys fairness: at most cap(heavy) of the
// cap(slots) open slots can ever be occupied by heavy opens, so
// slots-heavy slots always remain reachable for light opens (an
// indexed reopen, a KB-scale archive, a metadata-only header walk) no
// matter how many cold multi-GiB scans are queued.
//
// Both waits honor ctx: a disconnected client stops occupying a queue
// position the moment its request context is canceled.
type admission struct {
	slots chan struct{}
	heavy chan struct{}
}

// newAdmission builds a gate with `slots` total open slots, of which at
// most heavySlots may run heavy opens concurrently. heavySlots is
// clamped to [1, slots]; when slots == 1 the lanes collapse (a single
// slot cannot reserve anything).
func newAdmission(slots, heavySlots int) *admission {
	if slots < 1 {
		slots = 1
	}
	if heavySlots < 1 {
		heavySlots = 1
	}
	if heavySlots > slots {
		heavySlots = slots
	}
	return &admission{
		slots: make(chan struct{}, slots),
		heavy: make(chan struct{}, heavySlots),
	}
}

// acquire takes an open slot (plus a heavy token first, for heavy
// opens), or returns ctx.Err() without holding anything when ctx is
// canceled while waiting. The heavy token is acquired before the slot
// so a heavy open waiting for its lane does not pin a general slot
// light opens could use.
func (ad *admission) acquire(ctx context.Context, heavy bool) error {
	if heavy {
		select {
		case ad.heavy <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	select {
	case ad.slots <- struct{}{}:
	case <-ctx.Done():
		if heavy {
			<-ad.heavy
		}
		return ctx.Err()
	}
	return nil
}

// release returns the tokens taken by a successful acquire with the
// same heavy flag.
func (ad *admission) release(heavy bool) {
	<-ad.slots
	if heavy {
		<-ad.heavy
	}
}
