package server

import "testing"

// TestParseRange pins the range grammar: single bytes= ranges in all
// three RFC forms, clamping, and the ignore-vs-416 split.
func TestParseRange(t *testing.T) {
	const size = 1000
	cases := []struct {
		name   string
		header string
		off, n int64
		res    rangeResult
	}{
		{"exact", "bytes=0-99", 0, 100, rangePartial},
		{"interior", "bytes=250-749", 250, 500, rangePartial},
		{"single-byte", "bytes=999-999", 999, 1, rangePartial},
		{"clamp-end", "bytes=900-5000", 900, 100, rangePartial},
		{"open-ended", "bytes=400-", 400, 600, rangePartial},
		{"open-ended-zero", "bytes=0-", 0, 1000, rangePartial},
		{"suffix", "bytes=-100", 900, 100, rangePartial},
		{"suffix-whole", "bytes=-1000", 0, 1000, rangePartial},
		{"suffix-over", "bytes=-9999", 0, 1000, rangePartial},
		{"start-at-size", "bytes=1000-", 0, 0, rangeUnsatisfiable},
		{"start-past-size", "bytes=5000-6000", 0, 0, rangeUnsatisfiable},
		{"suffix-zero", "bytes=-0", 0, 0, rangeUnsatisfiable},
		{"inverted", "bytes=500-400", 0, 0, rangeNone},
		{"multi", "bytes=0-1,500-501", 0, 0, rangeNone},
		{"not-bytes", "lines=0-10", 0, 0, rangeNone},
		{"garbage", "bytes=abc-def", 0, 0, rangeNone},
		{"negative-start", "bytes=-5-10", 0, 0, rangeNone},
		{"empty-spec", "bytes=", 0, 0, rangeNone},
		{"no-dash", "bytes=123", 0, 0, rangeNone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			off, n, res := parseRange(tc.header, size)
			if res != tc.res {
				t.Fatalf("parseRange(%q): result %v, want %v", tc.header, res, tc.res)
			}
			if res == rangePartial && (off != tc.off || n != tc.n) {
				t.Fatalf("parseRange(%q) = [%d,+%d), want [%d,+%d)", tc.header, off, n, tc.off, tc.n)
			}
		})
	}

	// Empty entity: nothing satisfies any range, including suffixes.
	for _, h := range []string{"bytes=0-", "bytes=0-0", "bytes=-1"} {
		if _, _, res := parseRange(h, 0); res != rangeUnsatisfiable {
			t.Fatalf("parseRange(%q, size=0): result %v, want unsatisfiable", h, res)
		}
	}
}

// TestCleanName pins the URL-name validation: traversal collapses
// against the root, index sidecars and malformed names are refused.
func TestCleanName(t *testing.T) {
	good := map[string]string{
		"a.gz":          "a.gz",
		"dir/a.gz":      "dir/a.gz",
		"./a.gz":        "a.gz",
		"dir/../a.gz":   "a.gz",
		"../../etc/pwd": "etc/pwd", // rooted clean: cannot climb above root
	}
	for raw, want := range good {
		got, ok := cleanName(raw)
		if !ok || got != want {
			t.Errorf("cleanName(%q) = %q, %v; want %q, true", raw, got, ok, want)
		}
	}
	for _, raw := range []string{"", ".", "..", "a.gz.rgzidx", "dir\\a.gz", "a\x00b"} {
		if got, ok := cleanName(raw); ok {
			t.Errorf("cleanName(%q) = %q, true; want rejection", raw, got)
		}
	}
}
