package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
	"repro/internal/workloads"
)

// writeGzipFile writes data gzip-compressed to dir/name and returns
// the full path.
func writeGzipFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, 6)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, name)
	if err := os.WriteFile(full, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return full
}

// newTestServer stands up a Server over dir plus an httptest front.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// get issues a GET with headers and returns the response; the caller
// owns the body.
func get(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func body(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeRangeGrammar drives the full HTTP range matrix against a
// real archive: plain 200, exact/suffix/open-ended 206s, multi-range
// and invalid ranges ignored to 200, 416 with Content-Range, If-Range
// fallback, HEAD, and name policy (sidecars, traversal, directories).
func TestServeRangeGrammar(t *testing.T) {
	dir := t.TempDir()
	content := workloads.Base64(300_000, 7)
	writeGzipFile(t, dir, "data.gz", content)
	if err := os.WriteFile(filepath.Join(dir, "data.gz"+rapidgzip.IndexSuffix), []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Root: dir})
	u := ts.URL + "/archives/data.gz"
	size := len(content)

	t.Run("full-200", func(t *testing.T) {
		resp := get(t, u, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		if ar := resp.Header.Get("Accept-Ranges"); ar != "bytes" {
			t.Fatalf("Accept-Ranges %q, want bytes", ar)
		}
		if cl := resp.ContentLength; cl != int64(size) {
			t.Fatalf("Content-Length %d, want %d", cl, size)
		}
		if !bytes.Equal(body(t, resp), content) {
			t.Fatal("full body mismatch")
		}
	})

	t.Run("head", func(t *testing.T) {
		resp, err := http.Head(u)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		if resp.ContentLength != int64(size) {
			t.Fatalf("HEAD Content-Length %d, want %d", resp.ContentLength, size)
		}
		if b := body(t, resp); len(b) != 0 {
			t.Fatalf("HEAD returned %d body bytes", len(b))
		}
	})

	ranges := []struct {
		header string
		off, n int
	}{
		{"bytes=0-999", 0, 1000},
		{"bytes=100000-149999", 100000, 50000},
		{fmt.Sprintf("bytes=%d-%d", size-1, size-1), size - 1, 1},
		{"bytes=-2000", size - 2000, 2000},                               // suffix
		{fmt.Sprintf("bytes=-%d", size+5), 0, size},                      // suffix over size: whole entity as 206
		{"bytes=250000-", 250000, size - 250000},                         // open-ended
		{fmt.Sprintf("bytes=290000-%d", size+99), 290000, size - 290000}, // end clamped
	}
	for _, rc := range ranges {
		t.Run(rc.header, func(t *testing.T) {
			resp := get(t, u, map[string]string{"Range": rc.header})
			if resp.StatusCode != http.StatusPartialContent {
				t.Fatalf("status %d, want 206", resp.StatusCode)
			}
			wantCR := fmt.Sprintf("bytes %d-%d/%d", rc.off, rc.off+rc.n-1, size)
			if cr := resp.Header.Get("Content-Range"); cr != wantCR {
				t.Fatalf("Content-Range %q, want %q", cr, wantCR)
			}
			if !bytes.Equal(body(t, resp), content[rc.off:rc.off+rc.n]) {
				t.Fatalf("range %s: body mismatch", rc.header)
			}
		})
	}

	t.Run("unsatisfiable-416", func(t *testing.T) {
		for _, h := range []string{fmt.Sprintf("bytes=%d-", size), "bytes=99999999-", "bytes=-0"} {
			resp := get(t, u, map[string]string{"Range": h})
			if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
				t.Fatalf("range %q: status %d, want 416", h, resp.StatusCode)
			}
			wantCR := fmt.Sprintf("bytes */%d", size)
			if cr := resp.Header.Get("Content-Range"); cr != wantCR {
				t.Fatalf("range %q: Content-Range %q, want %q", h, cr, wantCR)
			}
			resp.Body.Close()
		}
	})

	t.Run("ignored-to-200", func(t *testing.T) {
		// Multi-range and malformed ranges are ignored per the server's
		// single-range policy: full 200, not multipart.
		for _, h := range []string{"bytes=0-99,200-299", "bytes=zz-10", "lines=1-2", "bytes=500-400"} {
			resp := get(t, u, map[string]string{"Range": h})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("range %q: status %d, want 200", h, resp.StatusCode)
			}
			if len(body(t, resp)) != size {
				t.Fatalf("range %q: partial body for ignored range", h)
			}
		}
	})

	t.Run("if-range", func(t *testing.T) {
		probe := get(t, u, nil)
		etag := probe.Header.Get("ETag")
		lastMod := probe.Header.Get("Last-Modified")
		probe.Body.Close()
		if etag == "" || lastMod == "" {
			t.Fatalf("missing validators: ETag=%q Last-Modified=%q", etag, lastMod)
		}
		// Matching validator (either form): the range is honored.
		for _, ir := range []string{etag, lastMod} {
			resp := get(t, u, map[string]string{"Range": "bytes=0-9", "If-Range": ir})
			if resp.StatusCode != http.StatusPartialContent {
				t.Fatalf("If-Range %q: status %d, want 206", ir, resp.StatusCode)
			}
			resp.Body.Close()
		}
		// Mismatch: fall back to the full representation.
		resp := get(t, u, map[string]string{"Range": "bytes=0-9", "If-Range": `"stale-etag"`})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stale If-Range: status %d, want 200", resp.StatusCode)
		}
		if len(body(t, resp)) != size {
			t.Fatal("stale If-Range: expected full body")
		}
	})

	t.Run("name-policy", func(t *testing.T) {
		for path, want := range map[string]int{
			"/archives/data.gz" + rapidgzip.IndexSuffix: http.StatusNotFound, // sidecars are not servable
			"/archives/missing.gz":                      http.StatusNotFound,
			"/archives/../server_test.go":               http.StatusNotFound, // traversal collapses into the root
			"/stats/missing.gz":                         http.StatusNotFound,
		} {
			resp := get(t, ts.URL+path, nil)
			if resp.StatusCode != want {
				t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
			}
			resp.Body.Close()
		}
		resp, err := http.Post(ts.URL+"/archives/data.gz", "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	})

	t.Run("list-and-stats", func(t *testing.T) {
		resp := get(t, ts.URL+"/archives/", nil)
		var listing struct {
			Archives []string `json:"archives"`
		}
		if err := json.Unmarshal(body(t, resp), &listing); err != nil {
			t.Fatal(err)
		}
		if len(listing.Archives) != 1 || listing.Archives[0] != "data.gz" {
			t.Fatalf("listing = %v, want [data.gz] (sidecar excluded)", listing.Archives)
		}
		resp = get(t, ts.URL+"/stats/data.gz", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		var st struct {
			Name   string `json:"name"`
			Format string `json:"format"`
			Size   int64  `json:"decompressed_size"`
		}
		if err := json.Unmarshal(body(t, resp), &st); err != nil {
			t.Fatal(err)
		}
		if st.Name != "data.gz" || st.Format != "gzip" || st.Size != int64(size) {
			t.Fatalf("stats = %+v", st)
		}
	})
}

// TestServeNotAnArchive maps open failures to useful statuses: a file
// that is no recognized format answers 415, and the failure is not
// cached (a retry re-opens).
func TestServeNotAnArchive(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "plain.txt"), []byte("just text, no magic"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Root: dir})
	for i := 0; i < 2; i++ {
		resp := get(t, ts.URL+"/archives/plain.txt", nil)
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("status %d, want 415", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if m := s.Metrics(); m.OpenFailures != 2 {
		t.Fatalf("OpenFailures = %d, want 2 (failures must not be cached)", m.OpenFailures)
	}
}

// sparseArchive is one archive of the concurrency workload: its name
// under the root and the plan to verify response bytes against.
type sparseArchive struct {
	name string
	plan *workloads.SparsePlan
}

// buildSparseRoot writes the mixed-format workload: three file-backed
// archives (LZ4, gzip, zstd), each with contentSize decompressed bytes
// — larger than the pool budget the acceptance test configures. An
// exported sidecar index makes reopens after handle eviction cheap
// (and exercises discovery through the server path).
func buildSparseRoot(t *testing.T, dir string, contentSize int64) []sparseArchive {
	t.Helper()
	const frame = 256 << 10
	data := []int{0, 3, 7, 11, 15}
	var out []sparseArchive
	for _, spec := range []struct {
		name  string
		write func(f *os.File) (*workloads.SparsePlan, error)
	}{
		{"big.lz4", func(f *os.File) (*workloads.SparsePlan, error) {
			return workloads.WriteSparseLZ4(f, contentSize, frame, 64<<10, 101, data)
		}},
		{"big.gz", func(f *os.File) (*workloads.SparsePlan, error) {
			return workloads.WriteSparseGzip(f, contentSize, frame, 32<<10, 202, data)
		}},
		{"big.zst", func(f *os.File) (*workloads.SparsePlan, error) {
			return workloads.WriteSparseZstd(f, contentSize, frame, 303, data)
		}},
	} {
		full := filepath.Join(dir, spec.name)
		f, err := os.Create(full)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := spec.write(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		a, err := rapidgzip.Open(full)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		ixf, err := os.Create(full + rapidgzip.IndexSuffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.ExportIndex(ixf); err != nil {
			t.Fatalf("%s: export index: %v", spec.name, err)
		}
		ixf.Close()
		a.Close()
		out = append(out, sparseArchive{name: spec.name, plan: plan})
	}
	return out
}

// TestConcurrentRangedGets is the acceptance workload: ≥64 concurrent
// ranged GETs across three file-backed archives of mixed formats, each
// larger than the shared pool budget, through a handle cache too small
// to hold them all. Every response body is verified byte-exact against
// the sparse plan; afterwards the pool must never have exceeded its
// budget and handle evictions must have occurred.
func TestConcurrentRangedGets(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency workload")
	}
	dir := t.TempDir()
	const contentSize = 6 << 20
	const budget = 1 << 20 // every archive's content exceeds this
	archives := buildSparseRoot(t, dir, contentSize)

	s, ts := newTestServer(t, Config{
		Root:            dir,
		MaxOpenArchives: 2, // three archives: reopening churn is forced
		PoolBudget:      budget,
		ReadSlots:       128,
	})

	const workers = 96
	const perWorker = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			<-start
			for i := 0; i < perWorker; i++ {
				arc := archives[rng.Intn(len(archives))]
				n := int64(1+rng.Intn(96<<10)) + 1
				off := rng.Int63n(contentSize - n)
				var header string
				if i == 0 && w%3 == 0 {
					// Mix in suffix ranges so the grammar runs hot too.
					header = fmt.Sprintf("bytes=-%d", n)
					off = contentSize - n
				} else {
					header = fmt.Sprintf("bytes=%d-%d", off, off+n-1)
				}
				req, err := http.NewRequest(http.MethodGet, ts.URL+"/archives/"+arc.name, nil)
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set("Range", header)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("%s %s: %w", arc.name, header, err)
					return
				}
				if resp.StatusCode != http.StatusPartialContent {
					errs <- fmt.Errorf("%s %s: status %d, want 206", arc.name, header, resp.StatusCode)
					return
				}
				want := arc.plan.ExpectedAt(off, int(n))
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("%s %s: body mismatch (%d bytes)", arc.name, header, len(got))
					return
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ps := s.Pool().Stats()
	if ps.PeakBytes > ps.BudgetBytes {
		t.Errorf("pool peak %d exceeded budget %d", ps.PeakBytes, ps.BudgetBytes)
	}
	if ps.Evictions == 0 {
		t.Error("pool evictions = 0; budget smaller than the working set must evict")
	}
	m := s.Metrics()
	if m.HandleEvictions == 0 {
		t.Error("handle evictions = 0; 3 archives through a 2-slot handle cache must evict")
	}
	if m.RangeRequests != workers*perWorker {
		t.Errorf("range requests = %d, want %d", m.RangeRequests, workers*perWorker)
	}

	// The metrics endpoint reflects the same accounting.
	resp := get(t, ts.URL+"/metrics", nil)
	var metrics struct {
		Pool   rapidgzip.PoolStats `json:"pool"`
		Server Metrics             `json:"server"`
	}
	if err := json.Unmarshal(body(t, resp), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Pool.BudgetBytes != budget {
		t.Errorf("/metrics pool budget = %d, want %d", metrics.Pool.BudgetBytes, budget)
	}
	if metrics.Server.BytesServed == 0 || metrics.Server.HandleEvictions == 0 {
		t.Errorf("/metrics server counters flat: %+v", metrics.Server)
	}
}
