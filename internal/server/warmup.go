// Background index warm-up: the first open of an archive without a
// sidecar pays the format's sizing pass in-request (there is no way
// around it — the response needs Content-Length), but nothing says the
// *next* cold open has to pay it again. After any such open the server
// queues the archive for a bounded background worker that exports the
// RGZIDX04 index to the index store (a configurable directory, default
// beside the archive), via a crash-safe temp-file-then-rename write.
// The next open of that name — in this process after a handle eviction,
// or in the next process entirely — imports the sidecar and skips the
// sizing pass.
package server

import (
	"context"
	"os"
	"sync"
	"sync/atomic"

	"repro"
)

// warmup is the background index-export subsystem. Enqueue requests are
// deduplicated single-flight per archive name, the queue is bounded
// (overflow is counted, not blocked on), and `workers` goroutines drain
// it. All counters are exposed through Metrics.
type warmup struct {
	s      *Server
	queue  chan string
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]bool // names queued or being exported

	queued    atomic.Uint64 // accepted into the queue
	completed atomic.Uint64 // sidecar written and renamed into place
	failed    atomic.Uint64 // export errored (unreadable archive, read-only store)
	skipped   atomic.Uint64 // dedup, sidecar already present, or queue full
}

// newWarmup starts `workers` export workers feeding on a bounded queue.
func newWarmup(s *Server, workers int) *warmup {
	ctx, cancel := context.WithCancel(context.Background())
	w := &warmup{
		s:        s,
		queue:    make(chan string, 64*workers),
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(map[string]bool),
	}
	w.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go w.run()
	}
	return w
}

// enqueue queues name for a background index export unless one is
// already queued or running for it, the sidecar already exists, or the
// queue is full. Never blocks: warm-up is an optimisation, and the
// serving path must not wait on it.
func (w *warmup) enqueue(name string) {
	if w == nil {
		return
	}
	if _, err := os.Stat(w.s.indexPathFor(name)); err == nil {
		w.skipped.Add(1)
		return
	}
	w.mu.Lock()
	if w.inflight[name] {
		w.mu.Unlock()
		w.skipped.Add(1)
		return
	}
	w.inflight[name] = true
	w.mu.Unlock()
	select {
	case w.queue <- name:
		w.queued.Add(1)
	default:
		w.done(name)
		w.skipped.Add(1)
	}
}

// done clears name's single-flight mark.
func (w *warmup) done(name string) {
	w.mu.Lock()
	delete(w.inflight, name)
	w.mu.Unlock()
}

// run is one export worker.
func (w *warmup) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.ctx.Done():
			return
		case name := <-w.queue:
			w.export(name)
		}
	}
}

// export writes name's index sidecar. The archive is acquired through
// the regular handle cache — usually a hit on the handle whose open
// triggered the warm-up — and the reference keeps it alive for the
// duration even if the LRU evicts it meanwhile. For gzip the export may
// complete the seek-point index first (one full background decode);
// every other format's checkpoint table exists since open.
func (w *warmup) export(name string) {
	defer w.done(name)
	target := w.s.indexPathFor(name)
	if _, err := os.Stat(target); err == nil {
		w.skipped.Add(1) // lost a race against another writer of the sidecar
		return
	}
	h, err := w.s.acquire(w.ctx, name)
	if err != nil {
		if w.ctx.Err() == nil {
			w.failed.Add(1)
		}
		return
	}
	defer w.s.release(h)
	if h.err != nil {
		w.failed.Add(1)
		return
	}
	if err := rapidgzip.ExportIndexFile(h.a, target); err != nil {
		w.failed.Add(1)
		return
	}
	w.completed.Add(1)
}

// shutdown stops the workers and waits for the in-flight export (which
// is not cancellable mid-write) to finish.
func (w *warmup) shutdown() {
	if w == nil {
		return
	}
	w.cancel()
	w.wg.Wait()
}
