package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/workloads"
)

// TestEtagMatches drives the If-None-Match scanner through the
// RFC 9110 §8.8.3.2 grammar: weak comparison, "*", comma lists, and
// quoted tags whose content itself contains commas.
func TestEtagMatches(t *testing.T) {
	const cur = `"abc-123"`
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{`"abc-123"`, true},
		{`W/"abc-123"`, true}, // weak comparison: W/ ignored
		{`*`, true},
		{`"other"`, false},
		{`"other", "abc-123"`, true},
		{`"other" , W/"abc-123" , "third"`, true},
		{`"oth,er", "abc-123"`, true}, // comma inside a quoted tag
		{`"oth,er", "nope"`, false},
		{`"abc-123`, false},  // unterminated
		{`abc-123`, false},   // unquoted: malformed, never matches
		{`"ABC-123"`, false}, // etags are case-sensitive
	} {
		if got := etagMatches(tc.header, cur); got != tc.want {
			t.Errorf("etagMatches(%q, %q) = %v, want %v", tc.header, cur, got, tc.want)
		}
	}
	// A weak current etag also compares weakly.
	if !etagMatches(`"x"`, `W/"x"`) {
		t.Error(`W/"x" should weakly match "x"`)
	}
}

// TestConditionalGet is the HTTP-level table: 304 semantics for
// If-None-Match and If-Modified-Since, the §13.1.3 precedence between
// them, and the guarantee that a 304 never decodes body bytes.
func TestConditionalGet(t *testing.T) {
	dir := t.TempDir()
	content := workloads.Base64(100_000, 11)
	writeGzipFile(t, dir, "data.gz", content)
	s, ts := newTestServer(t, Config{Root: dir, WarmupWorkers: -1})
	u := ts.URL + "/archives/data.gz"

	probe := get(t, u, nil)
	etag := probe.Header.Get("ETag")
	lastMod := probe.Header.Get("Last-Modified")
	probe.Body.Close()
	if etag == "" || lastMod == "" {
		t.Fatalf("missing validators: ETag=%q Last-Modified=%q", etag, lastMod)
	}
	if cc := probe.Header.Get("Cache-Control"); cc != "public, max-age=60" {
		t.Fatalf("Cache-Control = %q, want default public, max-age=60", cc)
	}
	if v := probe.Header.Get("Vary"); v != "Accept-Encoding" {
		t.Fatalf("Vary = %q", v)
	}
	modTime, err := http.ParseTime(lastMod)
	if err != nil {
		t.Fatal(err)
	}
	earlier := modTime.Add(-time.Hour).Format(http.TimeFormat)
	later := modTime.Add(time.Hour).Format(http.TimeFormat)

	for _, tc := range []struct {
		name string
		hdr  map[string]string
		want int
	}{
		{"inm-match", map[string]string{"If-None-Match": etag}, http.StatusNotModified},
		{"inm-weak", map[string]string{"If-None-Match": "W/" + etag}, http.StatusNotModified},
		{"inm-star", map[string]string{"If-None-Match": "*"}, http.StatusNotModified},
		{"inm-list", map[string]string{"If-None-Match": `"a", ` + etag + `, "b"`}, http.StatusNotModified},
		{"inm-miss", map[string]string{"If-None-Match": `"stale"`}, http.StatusOK},
		{"ims-equal", map[string]string{"If-Modified-Since": lastMod}, http.StatusNotModified},
		{"ims-later", map[string]string{"If-Modified-Since": later}, http.StatusNotModified},
		{"ims-earlier", map[string]string{"If-Modified-Since": earlier}, http.StatusOK},
		{"ims-garbage", map[string]string{"If-Modified-Since": "not a date"}, http.StatusOK},
		// §13.1.3 precedence: a present If-None-Match decides alone.
		{"inm-miss-beats-ims-hit", map[string]string{
			"If-None-Match": `"stale"`, "If-Modified-Since": later}, http.StatusOK},
		{"inm-hit-beats-ims-miss", map[string]string{
			"If-None-Match": etag, "If-Modified-Since": earlier}, http.StatusNotModified},
		// A conditional range request that revalidates: 304, no range.
		{"inm-with-range", map[string]string{
			"If-None-Match": etag, "Range": "bytes=0-9"}, http.StatusNotModified},
	} {
		t.Run(tc.name, func(t *testing.T) {
			before := s.Metrics().BodyDecodes
			resp := get(t, u, tc.hdr)
			b := body(t, resp)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			if tc.want == http.StatusNotModified {
				if len(b) != 0 {
					t.Fatalf("304 carried %d body bytes", len(b))
				}
				if got := resp.Header.Get("ETag"); got != etag {
					t.Fatalf("304 ETag = %q, want %q", got, etag)
				}
				if got := s.Metrics().BodyDecodes; got != before {
					t.Fatalf("304 moved BodyDecodes %d → %d: decode slot touched", before, got)
				}
			} else if !bytes.Equal(b, content) {
				t.Fatal("200 body mismatch")
			}
		})
	}
}

// waitWarmups polls until the warm-up queue has fully drained (every
// accepted name completed or failed) or the deadline passes.
func waitWarmups(t *testing.T, s *Server, timeout time.Duration) Metrics {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		m := s.Metrics()
		if m.WarmupsCompleted+m.WarmupsFailed >= m.WarmupsQueued && m.WarmupsQueued > 0 {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm-up did not drain: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWarmupRoundTrip is the acceptance scenario: serve an archive
// with no sidecar, let the background warm-up export one, restart the
// server, and observe the next open skip its sizing pass — then
// revalidate with If-None-Match and get a bodiless 304 that acquires
// no read slot.
func TestWarmupRoundTrip(t *testing.T) {
	dir := t.TempDir()
	content := workloads.Base64(200_000, 23)
	writeGzipFile(t, dir, "data.gz", content)
	sidecar := filepath.Join(dir, "data.gz"+rapidgzip.IndexSuffix)

	statsFor := func(ts *httptest.Server) (out struct {
		Stats rapidgzip.Stats `json:"stats"`
	}) {
		resp := get(t, ts.URL+"/stats/data.gz", nil)
		if err := json.Unmarshal(body(t, resp), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Round 1: cold, no sidecar anywhere. The open pays a sizing pass,
	// which queues the background export.
	s1, ts1 := newTestServer(t, Config{Root: dir})
	resp := get(t, ts1.URL+"/archives/data.gz", nil)
	etag := resp.Header.Get("ETag")
	if !bytes.Equal(body(t, resp), content) {
		t.Fatal("cold body mismatch")
	}
	if st := statsFor(ts1); st.Stats.SizingPasses == 0 {
		t.Fatal("cold open reported no sizing pass; test premise broken")
	}
	m := waitWarmups(t, s1, 10*time.Second)
	if m.WarmupsCompleted != 1 || m.WarmupsFailed != 0 {
		t.Fatalf("warm-up counters after drain: %+v", m)
	}
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}
	assertNoTempFiles(t, dir)
	// Re-requesting does not re-queue: the sidecar exists now.
	get(t, ts1.URL+"/archives/data.gz", nil).Body.Close()
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Round 2: a fresh server (fresh process, as far as the cache is
	// concerned) imports the warmed index — open is metadata-only.
	s2, ts2 := newTestServer(t, Config{Root: dir})
	if st := statsFor(ts2); st.Stats.SizingPasses != 0 {
		t.Fatalf("warmed open ran %d sizing passes, want 0", st.Stats.SizingPasses)
	}
	resp = get(t, ts2.URL+"/archives/data.gz", nil)
	if !bytes.Equal(body(t, resp), content) {
		t.Fatal("warmed body mismatch")
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("etag changed across restart: %q → %q", etag, got)
	}

	// Revalidation: 304, empty body, and the decode path untouched.
	before := s2.Metrics().BodyDecodes
	resp = get(t, ts2.URL+"/archives/data.gz", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", resp.StatusCode)
	}
	if b := body(t, resp); len(b) != 0 {
		t.Fatalf("304 carried %d body bytes", len(b))
	}
	if after := s2.Metrics().BodyDecodes; after != before {
		t.Fatalf("304 acquired a decode slot: BodyDecodes %d → %d", before, after)
	}
}

// assertNoTempFiles fails if any atomic-write temp file leaked.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWarmupIndexStore routes sidecars through a shared store
// directory: the archive root stays pristine (it may be read-only in
// production), the store mirrors the archive's directory layout, and a
// second server over the same store opens without a sizing pass.
func TestWarmupIndexStore(t *testing.T) {
	root := t.TempDir()
	store := t.TempDir()
	content := workloads.Base64(150_000, 31)
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeGzipFile(t, filepath.Join(root, "sub"), "data.gz", content)

	s1, ts1 := newTestServer(t, Config{Root: root, IndexStore: store})
	get(t, ts1.URL+"/archives/sub/data.gz", nil).Body.Close()
	waitWarmups(t, s1, 10*time.Second)

	want := filepath.Join(store, "sub", "data.gz"+rapidgzip.IndexSuffix)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("store sidecar missing at %s: %v", want, err)
	}
	if _, err := os.Stat(filepath.Join(root, "sub", "data.gz"+rapidgzip.IndexSuffix)); err == nil {
		t.Fatal("sidecar written beside the archive despite an index store")
	}
	assertNoTempFiles(t, root)
	assertNoTempFiles(t, store)
	ts1.Close()
	s1.Close()

	_, ts2 := newTestServer(t, Config{Root: root, IndexStore: store})
	resp := get(t, ts2.URL+"/stats/sub/data.gz", nil)
	var st struct {
		Stats rapidgzip.Stats `json:"stats"`
	}
	if err := json.Unmarshal(body(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.SizingPasses != 0 {
		t.Fatalf("store-indexed open ran %d sizing passes, want 0", st.Stats.SizingPasses)
	}
	resp = get(t, ts2.URL+"/archives/sub/data.gz", nil)
	if !bytes.Equal(body(t, resp), content) {
		t.Fatal("store-indexed body mismatch")
	}
}

// TestWarmupSingleFlight hammers enqueue for one name from many
// goroutines: exactly one export runs, the rest dedup into skips.
func TestWarmupSingleFlight(t *testing.T) {
	dir := t.TempDir()
	writeGzipFile(t, dir, "data.gz", workloads.Base64(120_000, 41))
	s, ts := newTestServer(t, Config{Root: dir})
	// Open the handle once so enqueue targets a cached archive.
	get(t, ts.URL+"/archives/data.gz", nil).Body.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.warm.enqueue("data.gz")
		}()
	}
	wg.Wait()
	m := waitWarmups(t, s, 10*time.Second)
	if m.WarmupsCompleted != 1 {
		t.Fatalf("WarmupsCompleted = %d, want exactly 1 (single-flight)", m.WarmupsCompleted)
	}
	if m.WarmupsFailed != 0 {
		t.Fatalf("WarmupsFailed = %d", m.WarmupsFailed)
	}
	if m.WarmupsSkipped == 0 {
		t.Fatal("no enqueue was deduplicated; single-flight untested")
	}
	assertNoTempFiles(t, dir)
}

// TestWarmupSkipsExistingSidecar: a name whose sidecar already exists
// (even a bogus one — it is the operator's file) is never rewritten.
func TestWarmupSkipsExistingSidecar(t *testing.T) {
	dir := t.TempDir()
	writeGzipFile(t, dir, "data.gz", workloads.Base64(80_000, 43))
	bogus := filepath.Join(dir, "data.gz"+rapidgzip.IndexSuffix)
	if err := os.WriteFile(bogus, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Root: dir})
	get(t, ts.URL+"/archives/data.gz", nil).Body.Close()
	s.warm.enqueue("data.gz")
	if m := s.Metrics(); m.WarmupsQueued != 0 || m.WarmupsSkipped == 0 {
		t.Fatalf("existing sidecar should skip enqueue: %+v", m)
	}
	if b, err := os.ReadFile(bogus); err != nil || string(b) != "not an index" {
		t.Fatalf("operator sidecar was modified: %q, %v", b, err)
	}
}

// TestCanceledWaitsReclaimSlots verifies the slot-pinning fix: a
// request whose context dies while queued for a read or open slot gets
// a 503 with Retry-After, frees its queue position, and the slots stay
// usable for the next request.
func TestCanceledWaitsReclaimSlots(t *testing.T) {
	dir := t.TempDir()
	content := workloads.Base64(50_000, 53)
	writeGzipFile(t, dir, "data.gz", content)
	s, _ := newTestServer(t, Config{Root: dir, ReadSlots: 1, OpenSlots: 1, WarmupWorkers: -1})

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("read-slot", func(t *testing.T) {
		s.readSem <- struct{}{} // occupy the only decode slot
		req := httptest.NewRequest(http.MethodGet, "/archives/data.gz", nil).WithContext(canceled)
		rec := httptest.NewRecorder()
		s.handleArchive(rec, req)
		<-s.readSem
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("503 without Retry-After")
		}
		if s.Metrics().CanceledWaits == 0 {
			t.Fatal("CanceledWaits not counted")
		}
		// The slot is free again: a live request succeeds.
		rec = httptest.NewRecorder()
		s.handleArchive(rec, httptest.NewRequest(http.MethodGet, "/archives/data.gz", nil))
		if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), content) {
			t.Fatalf("follow-up status %d, body %d bytes", rec.Code, rec.Body.Len())
		}
	})

	t.Run("open-slot", func(t *testing.T) {
		writeGzipFile(t, dir, "cold.gz", content)
		if err := s.adm.acquire(context.Background(), false); err != nil { // occupy the only open slot
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodGet, "/archives/cold.gz", nil).WithContext(canceled)
		rec := httptest.NewRecorder()
		s.handleArchive(rec, req)
		s.adm.release(false)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("503 without Retry-After")
		}
		// The abandoned open is not cached as a failure: a live request
		// opens the archive for real.
		rec = httptest.NewRecorder()
		s.handleArchive(rec, httptest.NewRequest(http.MethodGet, "/archives/cold.gz", nil))
		if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), content) {
			t.Fatalf("follow-up status %d, body %d bytes", rec.Code, rec.Body.Len())
		}
	})
}

// TestMetricsSkipsPendingOpen: /metrics and Metrics() must answer
// while a cold open is still in flight — pending handles are skipped,
// not waited on, and are not counted as open archives.
func TestMetricsSkipsPendingOpen(t *testing.T) {
	dir := t.TempDir()
	content := workloads.Base64(60_000, 59)
	writeGzipFile(t, dir, "data.gz", content)
	s, ts := newTestServer(t, Config{Root: dir, WarmupWorkers: -1})
	get(t, ts.URL+"/archives/data.gz", nil).Body.Close()

	// Plant a handle whose open never finishes, as a stuck sizing scan
	// would look: ready stays open.
	stuck := &handle{name: "stuck.bz2", ready: make(chan struct{}), refs: 1}
	s.mu.Lock()
	s.handles.Put("stuck.bz2", stuck)
	s.mu.Unlock()

	done := make(chan Metrics, 1)
	go func() {
		resp := get(t, ts.URL+"/metrics", nil)
		var out struct {
			Server   Metrics                    `json:"server"`
			Archives map[string]json.RawMessage `json:"archives"`
		}
		if err := json.Unmarshal(body(t, resp), &out); err != nil {
			t.Error(err)
		}
		if _, ok := out.Archives["stuck.bz2"]; ok {
			t.Error("pending handle reported in /metrics archives")
		}
		done <- out.Server
	}()
	select {
	case m := <-done:
		if m.OpenArchives != 1 {
			t.Fatalf("OpenArchives = %d, want 1 (ready handles only)", m.OpenArchives)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/metrics blocked behind a pending open")
	}

	// Unstick and withdraw the handle so Close does not wait on it.
	stuck.err = errors.New("never opened")
	close(stuck.ready)
	s.mu.Lock()
	s.handles.Delete("stuck.bz2")
	s.mu.Unlock()
	s.drainReleases()
}

// TestAdmissionFairness exercises the two-lane gate directly: heavy
// opens saturate at the heavy cap while light opens still pass, and a
// canceled wait leaks no token.
func TestAdmissionFairness(t *testing.T) {
	ad := newAdmission(3, 1)
	bg := context.Background()

	if err := ad.acquire(bg, true); err != nil { // heavy 1/1, slots 1/3
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	if err := ad.acquire(short, true); err == nil { // heavy lane full
		t.Fatal("second heavy acquire passed; lane cap not enforced")
	}
	// Light opens are unaffected by the saturated heavy lane.
	for i := 0; i < 2; i++ {
		if err := ad.acquire(bg, false); err != nil {
			t.Fatalf("light acquire %d: %v", i, err)
		}
	}
	// All 3 slots held now; a light wait that cancels leaves no debris.
	short2, cancel2 := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel2()
	if err := ad.acquire(short2, false); err == nil {
		t.Fatal("acquire with all slots held should time out")
	}
	ad.release(true)
	ad.release(false)
	ad.release(false)
	// Full capacity restored: heavy + two lights fit again.
	for _, heavy := range []bool{true, false, false} {
		if err := ad.acquire(bg, heavy); err != nil {
			t.Fatalf("post-release acquire(heavy=%v): %v", heavy, err)
		}
	}
	ad.release(true)
	ad.release(false)
	ad.release(false)
}

// TestHeavyOpenClassification: a large unindexed gzip goes through the
// heavy lane (counted), while the same file with a sidecar — or a
// small file — rides light.
func TestHeavyOpenClassification(t *testing.T) {
	dir := t.TempDir()
	big := workloads.Base64(6<<20, 61)
	writeGzipFile(t, dir, "big.gz", big)
	writeGzipFile(t, dir, "small.gz", workloads.Base64(10_000, 67))

	s, ts := newTestServer(t, Config{Root: dir, HeavyOpenBytes: 1 << 20, WarmupWorkers: -1})
	get(t, ts.URL+"/archives/small.gz", nil).Body.Close()
	if m := s.Metrics(); m.HeavyOpens != 0 {
		t.Fatalf("small archive classified heavy: %+v", m)
	}
	resp := get(t, ts.URL+"/archives/big.gz", map[string]string{"Range": "bytes=0-99"})
	body(t, resp)
	if m := s.Metrics(); m.HeavyOpens != 1 {
		t.Fatalf("HeavyOpens = %d, want 1 after a cold multi-MiB gzip open", m.HeavyOpens)
	}

	// With a sidecar the same archive opens light.
	a, err := rapidgzip.Open(filepath.Join(dir, "big.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rapidgzip.ExportIndexFile(a, filepath.Join(dir, "big.gz"+rapidgzip.IndexSuffix)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	s2, ts2 := newTestServer(t, Config{Root: dir, HeavyOpenBytes: 1 << 20, WarmupWorkers: -1})
	get(t, ts2.URL+"/archives/big.gz", map[string]string{"Range": "bytes=0-99"}).Body.Close()
	if m := s2.Metrics(); m.HeavyOpens != 0 {
		t.Fatalf("indexed archive classified heavy: %+v", m)
	}
}
