// Package server implements rgzserve's core: an HTTP handler that maps
// GET /archives/<name> with Range headers onto ReadAt calls against
// file-backed compressed archives, so clients address byte ranges of
// the *decompressed* stream of files that are never decompressed as a
// whole. Three pieces make that safe to run over a directory of
// archives bigger than RAM:
//
//   - a shared rapidgzip.CachePool bounds the decompressed span bytes
//     cached across every open archive to one byte budget;
//   - an LRU handle cache bounds how many archives are open at once,
//     closing the coldest when a new name is requested;
//   - two admission semaphores bound concurrent archive opens (each may
//     cost a sizing pass) and concurrent body decodes.
package server

import (
	"errors"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cache"
)

// Config configures a Server. The zero value of every field selects a
// sensible default; Root is the only required field.
type Config struct {
	// Root is the directory whose files are served as archives.
	Root string
	// MaxOpenArchives caps concurrently open archives (the handle
	// cache's LRU capacity). Opening the N+1th closes the coldest.
	// Zero selects 64.
	MaxOpenArchives int
	// OpenSlots caps concurrent cold opens — each may run a sizing
	// pass over the whole compressed file. Zero selects NumCPU/2
	// (min 1).
	OpenSlots int
	// ReadSlots caps concurrent response bodies being decoded. Zero
	// selects 4×NumCPU.
	ReadSlots int
	// PoolBudget is the shared span-cache budget in bytes across all
	// open archives. Zero selects 256 MiB; negative disables the
	// shared pool (each archive keeps a private span-count cache and
	// memory is unbounded across archives).
	PoolBudget int64
	// Options are extra open options applied to every archive (e.g.
	// rapidgzip.WithParallelism). The server appends its own
	// WithSharedPool.
	Options []rapidgzip.Option
}

// Metrics is a snapshot of the server's request counters.
type Metrics struct {
	Requests        uint64 `json:"requests"`
	RangeRequests   uint64 `json:"range_requests"`
	BytesServed     uint64 `json:"bytes_served"`
	HandleHits      uint64 `json:"handle_hits"`
	HandleMisses    uint64 `json:"handle_misses"`
	HandleEvictions uint64 `json:"handle_evictions"`
	OpenFailures    uint64 `json:"open_failures"`
	OpenArchives    int    `json:"open_archives"`
}

// Server serves decompressed byte ranges of the archives under a root
// directory. Create with New, mount via Handler, release with Close.
type Server struct {
	root      string
	pool      *rapidgzip.CachePool // nil when disabled
	openSem   chan struct{}
	readSem   chan struct{}
	openOpts  []rapidgzip.Option
	mu        sync.Mutex
	handles   *cache.Cache[string, *handle]
	releasing []*handle // evicted handles pending release outside mu
	closed    bool

	requests        atomic.Uint64
	rangeRequests   atomic.Uint64
	bytesServed     atomic.Uint64
	handleHits      atomic.Uint64
	handleMisses    atomic.Uint64
	handleEvictions atomic.Uint64
	openFailures    atomic.Uint64
}

// handle is one open archive plus the response metadata derived from
// it. Opens are single-flight: the creating request inserts the handle
// with ready still open, opens the archive, then closes ready; every
// other request for the same name waits on ready instead of opening a
// second time.
//
// refs counts the cache's reference (1 while cached) plus one per
// request currently serving from the handle; the last release closes
// the archive. Eviction from the handle cache therefore never yanks an
// archive out from under an in-flight response — it only drops the
// cache's reference.
type handle struct {
	name  string
	ready chan struct{} // closed when open finished (a or err set)

	a       rapidgzip.Archive
	size    int64 // decompressed size, resolved at open
	etag    string
	modTime time.Time
	err     error // open failure; handle was removed from the cache

	refs int // guarded by the server's mu
}

// New constructs a Server over cfg.Root. The root must exist and be a
// directory.
func New(cfg Config) (*Server, error) {
	st, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, errors.New("server: root is not a directory")
	}
	maxOpen := cfg.MaxOpenArchives
	if maxOpen <= 0 {
		maxOpen = 64
	}
	openSlots := cfg.OpenSlots
	if openSlots <= 0 {
		openSlots = max(1, runtime.NumCPU()/2)
	}
	readSlots := cfg.ReadSlots
	if readSlots <= 0 {
		readSlots = 4 * runtime.NumCPU()
	}
	budget := cfg.PoolBudget
	if budget == 0 {
		budget = 256 << 20
	}
	s := &Server{
		root:     cfg.Root,
		openSem:  make(chan struct{}, openSlots),
		readSem:  make(chan struct{}, readSlots),
		openOpts: cfg.Options,
		handles:  cache.NewLRUCache[string, *handle](maxOpen),
	}
	if budget > 0 {
		s.pool = rapidgzip.NewCachePool(budget)
		s.openOpts = append(s.openOpts[:len(s.openOpts):len(s.openOpts)],
			rapidgzip.WithSharedPool(s.pool))
	}
	// Eviction only drops the cache's reference; the handle closes when
	// the last in-flight request releases it. The release itself (which
	// may close an archive and wait out its workers) runs after mu is
	// dropped — see drainReleases.
	s.handles.OnEvict = func(_ string, h *handle) {
		s.handleEvictions.Add(1)
		s.releasing = append(s.releasing, h)
	}
	return s, nil
}

// Pool returns the shared span-cache pool, or nil when disabled.
func (s *Server) Pool() *rapidgzip.CachePool { return s.pool }

// Metrics returns a snapshot of the request counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	open := s.handles.Len()
	s.mu.Unlock()
	return Metrics{
		Requests:        s.requests.Load(),
		RangeRequests:   s.rangeRequests.Load(),
		BytesServed:     s.bytesServed.Load(),
		HandleHits:      s.handleHits.Load(),
		HandleMisses:    s.handleMisses.Load(),
		HandleEvictions: s.handleEvictions.Load(),
		OpenFailures:    s.openFailures.Load(),
		OpenArchives:    open,
	}
}

// Close evicts and closes every open archive. In-flight requests
// holding references finish against their handles; the last release
// closes each archive.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for _, name := range s.handles.Keys() {
		if h, ok := s.handles.Peek(name); ok {
			s.releasing = append(s.releasing, h)
			s.handles.Delete(name)
		}
	}
	s.mu.Unlock()
	s.drainReleases()
	return nil
}

// errServerClosed reports acquire after Close.
var errServerClosed = errors.New("server: closed")

// cleanName validates and normalises an archive name from a URL path.
// It rejects anything that could escape the root (the name is resolved
// rooted, so ".." collapses harmlessly, but absolute/backslash forms
// are refused outright) and the server's own index sidecars.
func cleanName(raw string) (string, bool) {
	if raw == "" || strings.ContainsRune(raw, '\\') || strings.ContainsRune(raw, 0) {
		return "", false
	}
	name := path.Clean("/" + raw)[1:] // rooted clean: ".." cannot climb
	if name == "" || name == "." {
		return "", false
	}
	if strings.HasSuffix(name, rapidgzip.IndexSuffix) {
		return "", false // index sidecars are not archives
	}
	return name, true
}

// acquire returns a ready handle for name, opening the archive if it
// is not cached. The caller must call s.release(h) when done. A handle
// with h.err != nil is returned for failed opens (already released
// from the cache so the next request retries).
func (s *Server) acquire(name string) (*handle, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errServerClosed
	}
	if h, ok := s.handles.Get(name); ok {
		h.refs++
		s.mu.Unlock()
		s.handleHits.Add(1)
		<-h.ready
		return h, nil
	}
	h := &handle{name: name, ready: make(chan struct{}), refs: 2} // cache + this request
	s.handles.Put(name, h)
	s.mu.Unlock()
	s.handleMisses.Add(1)
	s.drainReleases()

	// Cold open, bounded by openSem: a sizing pass over a large archive
	// is expensive, and an unbounded stampede of distinct names must
	// not run one per request.
	s.openSem <- struct{}{}
	h.open(s)
	<-s.openSem
	close(h.ready)

	if h.err != nil {
		s.openFailures.Add(1)
		// Drop the cache's reference so the next request retries
		// instead of caching the failure.
		s.mu.Lock()
		if cur, ok := s.handles.Peek(name); ok && cur == h {
			s.handles.Delete(name)
			h.refs--
		}
		s.mu.Unlock()
	}
	return h, nil
}

// open resolves the archive behind h. Called once, by the acquiring
// request, with an openSem slot held.
func (h *handle) open(s *Server) {
	full := filepath.Join(s.root, filepath.FromSlash(h.name))
	st, err := os.Stat(full)
	if err != nil {
		h.err = err
		return
	}
	if st.IsDir() {
		h.err = fs.ErrNotExist
		return
	}
	a, err := rapidgzip.Open(full, s.openOpts...)
	if err != nil {
		h.err = err
		return
	}
	size, known := a.DecompressedSize()
	if !known {
		// Complete the scan now, once, under the open slot — every
		// request needs Content-Length, and resolving it per request
		// would serialise decodes behind the archive's cursor lock.
		if size, err = a.Size(); err != nil {
			a.Close()
			h.err = err
			return
		}
	}
	h.a = a
	h.size = size
	h.modTime = st.ModTime()
	h.etag = makeETag(st.Size(), st.ModTime(), size)
	h.err = nil
}

// release drops one reference; the last reference closes the archive.
func (s *Server) release(h *handle) {
	s.mu.Lock()
	h.refs--
	last := h.refs == 0
	s.mu.Unlock()
	if last && h.a != nil {
		h.a.Close()
	}
}

// drainReleases releases handles evicted while mu was held.
func (s *Server) drainReleases() {
	s.mu.Lock()
	pending := s.releasing
	s.releasing = nil
	s.mu.Unlock()
	for _, h := range pending {
		s.release(h)
	}
}

// openHandles snapshots the currently cached, successfully opened
// handles for the metrics endpoint, taking a reference on each. The
// caller must release every returned handle.
func (s *Server) openHandles() []*handle {
	s.mu.Lock()
	var out []*handle
	for _, name := range s.handles.Keys() {
		h, ok := s.handles.Peek(name)
		if !ok {
			continue
		}
		h.refs++
		out = append(out, h)
	}
	s.mu.Unlock()
	return out
}
