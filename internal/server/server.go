// Package server implements rgzserve's core: an HTTP handler that maps
// GET /archives/<name> with Range headers onto ReadAt calls against
// file-backed compressed archives, so clients address byte ranges of
// the *decompressed* stream of files that are never decompressed as a
// whole. Four pieces make that safe to run over a directory of
// archives bigger than RAM, under traffic:
//
//   - a shared rapidgzip.CachePool bounds the decompressed span bytes
//     cached across every open archive to one byte budget;
//   - an LRU handle cache bounds how many archives are open at once,
//     closing the coldest when a new name is requested;
//   - a two-lane admission gate bounds concurrent archive opens (each
//     may cost a sizing pass) while reserving slots that heavyweight
//     cold scans can never occupy, and a read semaphore bounds
//     concurrent body decodes — both waits honor the request context,
//     so a disconnected client stops occupying a slot immediately;
//   - a background warm-up subsystem exports the index sidecar of any
//     archive whose open needed a sizing pass, so the next open of
//     that name is metadata-only.
package server

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cache"
)

// Config configures a Server. The zero value of every field selects a
// sensible default; Root is the only required field.
type Config struct {
	// Root is the directory whose files are served as archives.
	Root string
	// MaxOpenArchives caps concurrently open archives (the handle
	// cache's LRU capacity). Opening the N+1th closes the coldest.
	// Zero selects 64.
	MaxOpenArchives int
	// OpenSlots caps concurrent cold opens — each may run a sizing
	// pass over the whole compressed file. Zero selects NumCPU/2
	// (min 1).
	OpenSlots int
	// HeavyOpenSlots caps how many of the OpenSlots may run *heavy*
	// opens concurrently — cold opens of scan-to-size formats (bzip2,
	// gzip, zstd) at or above HeavyOpenBytes with no index sidecar.
	// Keeping this strictly below OpenSlots means a stampede of cold
	// multi-GiB scans can never occupy every open slot while KB-scale
	// archives queue behind them. Zero selects max(1, OpenSlots/2).
	HeavyOpenSlots int
	// HeavyOpenBytes is the compressed size at which an unindexed open
	// counts as heavy. Zero selects 4 MiB; below it even a full sizing
	// decode is quick enough to ride the light lane.
	HeavyOpenBytes int64
	// ReadSlots caps concurrent response bodies being decoded. Zero
	// selects 4×NumCPU.
	ReadSlots int
	// PoolBudget is the shared span-cache budget in bytes across all
	// open archives. Zero selects 256 MiB; negative disables the
	// shared pool (each archive keeps a private span-count cache and
	// memory is unbounded across archives).
	PoolBudget int64
	// IndexStore is the directory index sidecars are warmed into and
	// opens consult first: "<store>/<name>.rgzidx", parent directories
	// created as needed. Empty selects "beside the archive" — the
	// sibling "<archive>.rgzidx" layout Open auto-discovers. A shared
	// store keeps sidecars off read-only archive roots and lets a
	// fleet of servers share one warm index set.
	IndexStore string
	// WarmupWorkers bounds concurrent background index exports. Zero
	// selects 1; negative disables warm-up entirely.
	WarmupWorkers int
	// CacheControl is the Cache-Control header value sent on archive
	// responses. Empty selects "public, max-age=60"; "none" sends no
	// header.
	CacheControl string
	// Options are extra open options applied to every archive (e.g.
	// rapidgzip.WithParallelism). The server appends its own
	// WithSharedPool.
	Options []rapidgzip.Option
}

// Metrics is a snapshot of the server's request counters.
type Metrics struct {
	Requests      uint64 `json:"requests"`
	RangeRequests uint64 `json:"range_requests"`
	// NotModified counts conditional GET/HEADs answered 304 — served
	// from the handle's metadata alone, with no body decode.
	NotModified uint64 `json:"not_modified"`
	BytesServed uint64 `json:"bytes_served"`
	// BodyDecodes counts responses that acquired a read slot and
	// decoded body bytes; 304s and HEADs never move it.
	BodyDecodes     uint64 `json:"body_decodes"`
	HandleHits      uint64 `json:"handle_hits"`
	HandleMisses    uint64 `json:"handle_misses"`
	HandleEvictions uint64 `json:"handle_evictions"`
	OpenFailures    uint64 `json:"open_failures"`
	// HeavyOpens counts cold opens classified into the heavy admission
	// lane (large scan-to-size archives with no sidecar).
	HeavyOpens uint64 `json:"heavy_opens"`
	// CanceledWaits counts slot waits abandoned because the client
	// disconnected (or timed out) before a slot freed up.
	CanceledWaits uint64 `json:"canceled_waits"`
	// OpenArchives counts ready, successfully opened handles in the
	// cache — pending cold opens and failed opens are excluded.
	OpenArchives int `json:"open_archives"`
	// Warm-up subsystem counters: sidecar exports accepted, finished,
	// errored, and skipped (dedup, sidecar already present, queue
	// full). Queued == Completed + Failed once the queue drains.
	WarmupsQueued    uint64 `json:"warmups_queued"`
	WarmupsCompleted uint64 `json:"warmups_completed"`
	WarmupsFailed    uint64 `json:"warmups_failed"`
	WarmupsSkipped   uint64 `json:"warmups_skipped"`
}

// Server serves decompressed byte ranges of the archives under a root
// directory. Create with New, mount via Handler, release with Close.
type Server struct {
	root           string
	pool           *rapidgzip.CachePool // nil when disabled
	adm            *admission
	readSem        chan struct{}
	openOpts       []rapidgzip.Option
	indexStore     string // "" = sidecars beside the archives
	heavyOpenBytes int64
	cacheControl   string  // "" = no header
	warm           *warmup // nil when disabled
	mu             sync.Mutex
	handles        *cache.Cache[string, *handle]
	releasing      []*handle // evicted handles pending release outside mu
	closed         bool

	requests        atomic.Uint64
	rangeRequests   atomic.Uint64
	notModified     atomic.Uint64
	bytesServed     atomic.Uint64
	bodyDecodes     atomic.Uint64
	handleHits      atomic.Uint64
	handleMisses    atomic.Uint64
	handleEvictions atomic.Uint64
	openFailures    atomic.Uint64
	heavyOpens      atomic.Uint64
	canceledWaits   atomic.Uint64
}

// handle is one open archive plus the response metadata derived from
// it. Opens are single-flight: the creating request inserts the handle
// with ready still open, opens the archive, then closes ready; every
// other request for the same name waits on ready instead of opening a
// second time.
//
// refs counts the cache's reference (1 while cached) plus one per
// request currently serving from the handle; the last release closes
// the archive. Eviction from the handle cache therefore never yanks an
// archive out from under an in-flight response — it only drops the
// cache's reference.
type handle struct {
	name  string
	ready chan struct{} // closed when open finished (a or err set)

	a       rapidgzip.Archive
	size    int64 // decompressed size, resolved at open
	etag    string
	modTime time.Time
	err     error // open failure; handle was removed from the cache

	refs int // guarded by the server's mu
}

// New constructs a Server over cfg.Root. The root must exist and be a
// directory.
func New(cfg Config) (*Server, error) {
	st, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, errors.New("server: root is not a directory")
	}
	maxOpen := cfg.MaxOpenArchives
	if maxOpen <= 0 {
		maxOpen = 64
	}
	openSlots := cfg.OpenSlots
	if openSlots <= 0 {
		openSlots = max(1, runtime.NumCPU()/2)
	}
	heavySlots := cfg.HeavyOpenSlots
	if heavySlots <= 0 {
		heavySlots = max(1, openSlots/2)
	}
	heavyBytes := cfg.HeavyOpenBytes
	if heavyBytes <= 0 {
		heavyBytes = 4 << 20
	}
	readSlots := cfg.ReadSlots
	if readSlots <= 0 {
		readSlots = 4 * runtime.NumCPU()
	}
	budget := cfg.PoolBudget
	if budget == 0 {
		budget = 256 << 20
	}
	cacheControl := cfg.CacheControl
	switch cacheControl {
	case "":
		cacheControl = "public, max-age=60"
	case "none":
		cacheControl = ""
	}
	s := &Server{
		root:           cfg.Root,
		adm:            newAdmission(openSlots, heavySlots),
		readSem:        make(chan struct{}, readSlots),
		openOpts:       cfg.Options,
		indexStore:     cfg.IndexStore,
		heavyOpenBytes: heavyBytes,
		cacheControl:   cacheControl,
		handles:        cache.NewLRUCache[string, *handle](maxOpen),
	}
	if budget > 0 {
		s.pool = rapidgzip.NewCachePool(budget)
		s.openOpts = append(s.openOpts[:len(s.openOpts):len(s.openOpts)],
			rapidgzip.WithSharedPool(s.pool))
	}
	if cfg.WarmupWorkers >= 0 {
		s.warm = newWarmup(s, max(1, cfg.WarmupWorkers))
	}
	// Eviction only drops the cache's reference; the handle closes when
	// the last in-flight request releases it. The release itself (which
	// may close an archive and wait out its workers) runs after mu is
	// dropped — see drainReleases.
	s.handles.OnEvict = func(_ string, h *handle) {
		s.handleEvictions.Add(1)
		s.releasing = append(s.releasing, h)
	}
	return s, nil
}

// Pool returns the shared span-cache pool, or nil when disabled.
func (s *Server) Pool() *rapidgzip.CachePool { return s.pool }

// Metrics returns a snapshot of the request counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	open := 0
	for _, name := range s.handles.Keys() {
		h, ok := s.handles.Peek(name)
		if !ok {
			continue
		}
		// Only ready, successfully opened archives count as open:
		// handles mid-cold-open hold no archive yet, and failed opens
		// (still cached for the instant before acquire drops them)
		// never held one.
		select {
		case <-h.ready:
			if h.err == nil && h.a != nil {
				open++
			}
		default:
		}
	}
	s.mu.Unlock()
	m := Metrics{
		Requests:        s.requests.Load(),
		RangeRequests:   s.rangeRequests.Load(),
		NotModified:     s.notModified.Load(),
		BytesServed:     s.bytesServed.Load(),
		BodyDecodes:     s.bodyDecodes.Load(),
		HandleHits:      s.handleHits.Load(),
		HandleMisses:    s.handleMisses.Load(),
		HandleEvictions: s.handleEvictions.Load(),
		OpenFailures:    s.openFailures.Load(),
		HeavyOpens:      s.heavyOpens.Load(),
		CanceledWaits:   s.canceledWaits.Load(),
		OpenArchives:    open,
	}
	if s.warm != nil {
		m.WarmupsQueued = s.warm.queued.Load()
		m.WarmupsCompleted = s.warm.completed.Load()
		m.WarmupsFailed = s.warm.failed.Load()
		m.WarmupsSkipped = s.warm.skipped.Load()
	}
	return m
}

// Close stops the warm-up workers, then evicts and closes every open
// archive. In-flight requests holding references finish against their
// handles; the last release closes each archive.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Warm-up first: its workers acquire handles, and acquire refuses
	// new work once closed is set, so after shutdown no new references
	// appear behind the eviction sweep below.
	s.warm.shutdown()
	s.mu.Lock()
	for _, name := range s.handles.Keys() {
		if h, ok := s.handles.Peek(name); ok {
			s.releasing = append(s.releasing, h)
			s.handles.Delete(name)
		}
	}
	s.mu.Unlock()
	s.drainReleases()
	return nil
}

// errServerClosed reports acquire after Close.
var errServerClosed = errors.New("server: closed")

// cleanName validates and normalises an archive name from a URL path.
// It rejects anything that could escape the root (the name is resolved
// rooted, so ".." collapses harmlessly, but absolute/backslash forms
// are refused outright) and the server's own index sidecars.
func cleanName(raw string) (string, bool) {
	if raw == "" || strings.ContainsRune(raw, '\\') || strings.ContainsRune(raw, 0) {
		return "", false
	}
	name := path.Clean("/" + raw)[1:] // rooted clean: ".." cannot climb
	if name == "" || name == "." {
		return "", false
	}
	if strings.HasSuffix(name, rapidgzip.IndexSuffix) {
		return "", false // index sidecars are not archives
	}
	return name, true
}

// fullPath resolves an already-cleaned archive name under the root.
func (s *Server) fullPath(name string) string {
	return filepath.Join(s.root, filepath.FromSlash(name))
}

// indexPathFor returns where name's index sidecar lives (or belongs):
// under the index store when one is configured, beside the archive
// otherwise.
func (s *Server) indexPathFor(name string) string {
	if s.indexStore != "" {
		return filepath.Join(s.indexStore, filepath.FromSlash(name)+rapidgzip.IndexSuffix)
	}
	return s.fullPath(name) + rapidgzip.IndexSuffix
}

// classifyOpen decides the admission lane of a cold open and resolves
// the index to import, before any slot is held:
//
//   - a store sidecar exists → light, import it explicitly;
//   - a sibling sidecar exists → light, Open auto-discovers it;
//   - the file is small (below HeavyOpenBytes) → light, even a full
//     sizing decode of it is quick;
//   - otherwise the magic bytes decide: LZ4 and BGZF size themselves
//     by a metadata-only header walk and stay light, while gzip,
//     bzip2 and zstd may each cost a decode-everything pass cold —
//     the heavy lane exists exactly for them.
//
// The classification is a heuristic (a stale sidecar still falls back
// to a scan, a sized multi-frame zstd is cheaper than assumed); being
// wrong costs a little lane misallocation, never correctness.
func (s *Server) classifyOpen(name, full string) (heavy bool, indexPath string) {
	if s.indexStore != "" {
		if p := s.indexPathFor(name); isRegular(p) {
			return false, p
		}
	}
	if isRegular(full + rapidgzip.IndexSuffix) {
		return false, "" // sibling: Open's auto-discovery imports it
	}
	st, err := os.Stat(full)
	if err != nil || st.Size() < s.heavyOpenBytes {
		return false, ""
	}
	f, err := os.Open(full)
	if err != nil {
		return false, "" // the open proper will surface the error
	}
	prefix := make([]byte, rapidgzip.SniffLen)
	n, _ := io.ReadFull(f, prefix)
	f.Close()
	switch rapidgzip.DetectFormat(prefix[:n]) {
	case rapidgzip.FormatGzip, rapidgzip.FormatBzip2, rapidgzip.FormatZstd:
		return true, ""
	}
	return false, ""
}

// isRegular reports whether path exists and is a regular file.
func isRegular(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// acquire returns a ready handle for name, opening the archive if it
// is not cached. The caller must call s.release(h) when done. A handle
// with h.err != nil is returned for failed opens (already released
// from the cache so the next request retries).
//
// Both the wait for another request's in-flight open and the wait for
// an admission slot honor ctx: when the client disconnects, acquire
// returns ctx's error holding nothing.
func (s *Server) acquire(ctx context.Context, name string) (*handle, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errServerClosed
	}
	if h, ok := s.handles.Get(name); ok {
		h.refs++
		s.mu.Unlock()
		s.handleHits.Add(1)
		select {
		case <-h.ready:
			return h, nil
		case <-ctx.Done():
			// The opener still holds its own reference, so this release
			// can never be the one that closes the archive mid-open.
			s.canceledWaits.Add(1)
			s.release(h)
			return nil, ctx.Err()
		}
	}
	h := &handle{name: name, ready: make(chan struct{}), refs: 2} // cache + this request
	s.handles.Put(name, h)
	s.mu.Unlock()
	s.handleMisses.Add(1)
	s.drainReleases()

	// Cold open, bounded by the admission gate: a sizing pass over a
	// large archive is expensive, an unbounded stampede of distinct
	// names must not run one per request, and the heavy lane keeps the
	// expensive scans from occupying every slot.
	full := s.fullPath(name)
	heavy, indexPath := s.classifyOpen(name, full)
	if heavy {
		s.heavyOpens.Add(1)
	}
	if err := s.adm.acquire(ctx, heavy); err != nil {
		// Abandoned open: fail the handle so requests already waiting on
		// ready error out instead of hanging, and drop the cache's
		// reference so the next request retries with a fresh handle.
		s.canceledWaits.Add(1)
		h.err = err
		close(h.ready)
		s.mu.Lock()
		if cur, ok := s.handles.Peek(name); ok && cur == h {
			s.handles.Delete(name)
			h.refs--
		}
		s.mu.Unlock()
		s.release(h) // this request's reference
		return nil, err
	}
	h.open(s, full, indexPath)
	s.adm.release(heavy)
	close(h.ready)

	if h.err != nil {
		s.openFailures.Add(1)
		// Drop the cache's reference so the next request retries
		// instead of caching the failure.
		s.mu.Lock()
		if cur, ok := s.handles.Peek(name); ok && cur == h {
			s.handles.Delete(name)
			h.refs--
		}
		s.mu.Unlock()
	} else if h.a.Stats().SizingPasses > 0 {
		// The open paid a sizing pass, meaning no usable index existed;
		// warm one up in the background so the next open of this name
		// (here or in the next process) is metadata-only.
		s.warm.enqueue(name)
	}
	return h, nil
}

// open resolves the archive behind h. Called once, by the acquiring
// request, with an admission slot held. indexPath, when non-empty, is
// a store sidecar to import explicitly; a stale or corrupt one falls
// back to a plain open, mirroring sibling auto-discovery's behavior.
func (h *handle) open(s *Server, full, indexPath string) {
	st, err := os.Stat(full)
	if err != nil {
		h.err = err
		return
	}
	if st.IsDir() {
		h.err = fs.ErrNotExist
		return
	}
	var a rapidgzip.Archive
	if indexPath != "" {
		opts := append(s.openOpts[:len(s.openOpts):len(s.openOpts)],
			rapidgzip.WithIndexFile(indexPath))
		a, err = rapidgzip.Open(full, opts...)
	}
	if indexPath == "" || err != nil {
		a, err = rapidgzip.Open(full, s.openOpts...)
	}
	if err != nil {
		h.err = err
		return
	}
	size, known := a.DecompressedSize()
	if !known {
		// Complete the scan now, once, under the open slot — every
		// request needs Content-Length, and resolving it per request
		// would serialise decodes behind the archive's cursor lock.
		if size, err = a.Size(); err != nil {
			a.Close()
			h.err = err
			return
		}
	}
	h.a = a
	h.size = size
	h.modTime = st.ModTime()
	h.etag = makeETag(st.Size(), st.ModTime(), size)
	h.err = nil
}

// release drops one reference; the last reference closes the archive.
// A handle can only reach zero references after its open finished (the
// opener holds a reference until ready is closed), so reading h.a here
// is ordered after the opener's writes.
func (s *Server) release(h *handle) {
	s.mu.Lock()
	h.refs--
	last := h.refs == 0
	s.mu.Unlock()
	if last && h.a != nil {
		h.a.Close()
	}
}

// drainReleases releases handles evicted while mu was held.
func (s *Server) drainReleases() {
	s.mu.Lock()
	pending := s.releasing
	s.releasing = nil
	s.mu.Unlock()
	for _, h := range pending {
		s.release(h)
	}
}

// openHandles snapshots the currently cached handles for the metrics
// endpoint, taking a reference on each. The caller must release every
// returned handle, and must not block on handles whose ready channel
// is still open.
func (s *Server) openHandles() []*handle {
	s.mu.Lock()
	var out []*handle
	for _, name := range s.handles.Keys() {
		h, ok := s.handles.Peek(name)
		if !ok {
			continue
		}
		h.refs++
		out = append(out, h)
	}
	s.mu.Unlock()
	return out
}
