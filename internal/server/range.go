package server

import (
	"strconv"
	"strings"
)

// rangeResult classifies a Range header against a known entity size.
type rangeResult int

const (
	// rangeNone: no usable range — serve the full entity with 200.
	// Covers "no Range header", syntactically invalid ranges and
	// multi-range requests (RFC 7233 lets a server ignore Range
	// entirely; this server does so rather than emit multipart
	// responses).
	rangeNone rangeResult = iota
	// rangePartial: serve [off, off+n) with 206.
	rangePartial
	// rangeUnsatisfiable: no byte of the entity satisfies the range —
	// 416 with Content-Range: bytes */size.
	rangeUnsatisfiable
)

// parseRange interprets a Range header value against size. Only
// single "bytes=" ranges are honored:
//
//	bytes=a-b  → [a, min(b+1, size)); a >= size is unsatisfiable,
//	             b < a is ignored (full 200)
//	bytes=a-   → [a, size); a >= size is unsatisfiable
//	bytes=-n   → the final n bytes; n <= 0 is unsatisfiable, n >= size
//	             is the whole entity (as a 206)
func parseRange(header string, size int64) (off, n int64, res rangeResult) {
	const prefix = "bytes="
	if !strings.HasPrefix(header, prefix) {
		return 0, 0, rangeNone
	}
	spec := strings.TrimSpace(header[len(prefix):])
	if spec == "" || strings.ContainsRune(spec, ',') {
		return 0, 0, rangeNone
	}
	dash := strings.IndexByte(spec, '-')
	if dash < 0 {
		return 0, 0, rangeNone
	}
	first, last := strings.TrimSpace(spec[:dash]), strings.TrimSpace(spec[dash+1:])
	if first == "" {
		// Suffix range: the final n bytes.
		suffix, err := strconv.ParseInt(last, 10, 64)
		if err != nil {
			return 0, 0, rangeNone
		}
		if suffix <= 0 {
			return 0, 0, rangeUnsatisfiable
		}
		if suffix > size {
			suffix = size
		}
		if suffix == 0 { // empty entity: no byte can satisfy a suffix range
			return 0, 0, rangeUnsatisfiable
		}
		return size - suffix, suffix, rangePartial
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return 0, 0, rangeNone
	}
	if start >= size {
		return 0, 0, rangeUnsatisfiable
	}
	if last == "" {
		// Open-ended: to the end of the entity.
		return start, size - start, rangePartial
	}
	end, err := strconv.ParseInt(last, 10, 64)
	if err != nil {
		return 0, 0, rangeNone
	}
	if end < start {
		return 0, 0, rangeNone
	}
	if end >= size {
		end = size - 1
	}
	return start, end - start + 1, rangePartial
}
