package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"mime"
	"net/http"
	"os"
	"path"
	"sort"
	"strings"
	"time"

	"repro"
)

// Handler returns the server's HTTP interface:
//
//	GET/HEAD /archives/<name>  decompressed bytes of <name>, Range-aware
//	GET      /archives/        JSON list of servable archive names
//	GET      /stats/<name>     backend counters of one archive (opens it)
//	GET      /metrics          pool, server and per-archive counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/archives/", s.handleArchive)
	mux.HandleFunc("/stats/", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// openError maps an archive-open failure onto an HTTP status.
func openError(err error) int {
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, rapidgzip.ErrUnsupportedFormat):
		return http.StatusUnsupportedMediaType
	case errors.Is(err, fs.ErrPermission):
		return http.StatusForbidden
	default:
		return http.StatusInternalServerError
	}
}

// acquireError answers a failed Server.acquire: 503 either way, with
// Retry-After when the wait was cut short (a canceled or timed-out
// request gave up its queue position — the server itself is fine).
func acquireError(w http.ResponseWriter, err error) {
	if !errors.Is(err, errServerClosed) {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), http.StatusServiceUnavailable)
}

// compressedExts are stripped before guessing a Content-Type, so
// "logs.json.gz" serves as application/json — the response body is the
// decompressed stream, after all.
var compressedExts = map[string]bool{
	".gz": true, ".bgz": true, ".bgzf": true, ".bz2": true,
	".lz4": true, ".zst": true, ".zstd": true,
}

// contentType guesses the media type of the decompressed content.
func contentType(name string) string {
	if compressedExts[strings.ToLower(path.Ext(name))] {
		name = strings.TrimSuffix(name, path.Ext(name))
	}
	if t := mime.TypeByExtension(path.Ext(name)); t != "" {
		return t
	}
	return "application/octet-stream"
}

// makeETag derives a strong validator from everything the response
// depends on: the compressed file's identity (size + mtime) and the
// decompressed size.
func makeETag(compSize int64, mod time.Time, decompSize int64) string {
	return fmt.Sprintf(`"%x-%x-%x"`, compSize, mod.UnixNano(), decompSize)
}

// handleArchive serves GET/HEAD /archives/<name> and GET /archives/.
func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/archives/")
	if raw == "" {
		s.handleList(w, r)
		return
	}
	name, ok := cleanName(raw)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	h, err := s.acquire(r.Context(), name)
	if err != nil {
		acquireError(w, err)
		return
	}
	defer s.release(h)
	if h.err != nil {
		http.Error(w, h.err.Error(), openError(h.err))
		return
	}

	hdr := w.Header()
	hdr.Set("Accept-Ranges", "bytes")
	hdr.Set("ETag", h.etag)
	hdr.Set("Last-Modified", h.modTime.UTC().Format(http.TimeFormat))
	if s.cacheControl != "" {
		hdr.Set("Cache-Control", s.cacheControl)
	}
	hdr.Set("Vary", "Accept-Encoding")

	// Conditional GET/HEAD: a matching validator short-circuits before
	// range parsing and before any read slot — a 304 is served from the
	// handle's metadata alone and never touches the decode path.
	if conditionalHit(r, h.etag, h.modTime) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	hdr.Set("Content-Type", contentType(name))

	off, n, res := int64(0), h.size, rangeNone
	if rh := r.Header.Get("Range"); rh != "" {
		s.rangeRequests.Add(1)
		// If-Range: serve the range only against the exact entity it
		// was requested for; on mismatch fall back to the full body.
		if ir := r.Header.Get("If-Range"); ir == "" || ir == h.etag ||
			ir == h.modTime.UTC().Format(http.TimeFormat) {
			off, n, res = parseRange(rh, h.size)
		}
	}
	if res == rangeUnsatisfiable {
		hdr.Set("Content-Range", fmt.Sprintf("bytes */%d", h.size))
		http.Error(w, "range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if res == rangeNone {
		off, n = 0, h.size
	}

	// Take the decode slot BEFORE committing the status line: once
	// WriteHeader runs, the 200/206 is on the wire and a canceled wait
	// could no longer be reported as 503. HEADs and empty bodies skip
	// the slot entirely — they decode nothing.
	needBody := r.Method != http.MethodHead && n > 0
	if needBody {
		select {
		case s.readSem <- struct{}{}:
			defer func() { <-s.readSem }()
		case <-r.Context().Done():
			s.canceledWaits.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "canceled while waiting for a decode slot",
				http.StatusServiceUnavailable)
			return
		}
	}

	if res == rangePartial {
		hdr.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, h.size))
		hdr.Set("Content-Length", fmt.Sprint(n))
		w.WriteHeader(http.StatusPartialContent)
	} else {
		hdr.Set("Content-Length", fmt.Sprint(n))
		w.WriteHeader(http.StatusOK)
	}
	if !needBody {
		return
	}

	// Body decode, bounded by readSem. All bodies — full and partial —
	// are served through ReadAt (via SectionReader): the archives'
	// sequential WriteTo path holds a cursor lock for the whole stream,
	// which would serialise concurrent downloads of the same archive.
	s.bodyDecodes.Add(1)
	if res == rangeNone {
		// A whole-file GET reads the compressed source front to back;
		// let the kernel widen readahead.
		if adv, ok := h.a.(interface{ AdviseSequentialRead() }); ok {
			adv.AdviseSequentialRead()
		}
	}
	written, err := io.Copy(w, io.NewSectionReader(h.a, off, n))
	s.bytesServed.Add(uint64(written))
	_ = err // headers are gone; a decode or client failure just truncates
}

// handleList serves GET /archives/: the servable names under root.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var names []string
	err := fs.WalkDir(os.DirFS(s.root), ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if !strings.HasSuffix(p, rapidgzip.IndexSuffix) {
			names = append(names, p)
		}
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sort.Strings(names)
	writeJSON(w, map[string]any{"archives": names})
}

// handleStats serves GET /stats/<name>: the archive's backend
// counters, opening it through the handle cache if necessary.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name, ok := cleanName(strings.TrimPrefix(r.URL.Path, "/stats/"))
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	h, err := s.acquire(r.Context(), name)
	if err != nil {
		acquireError(w, err)
		return
	}
	defer s.release(h)
	if h.err != nil {
		http.Error(w, h.err.Error(), openError(h.err))
		return
	}
	writeJSON(w, map[string]any{
		"name":              h.name,
		"format":            h.a.Format().String(),
		"decompressed_size": h.size,
		"stats":             h.a.Stats(),
	})
}

// handleMetrics serves GET /metrics: pool accounting, server counters
// and a per-open-archive stats map. Handles still mid-cold-open are
// skipped rather than waited on — metrics must answer promptly even
// while a multi-GiB sizing scan is in flight.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	archives := map[string]any{}
	handles := s.openHandles()
	for _, h := range handles {
		select {
		case <-h.ready:
			if h.err == nil && h.a != nil {
				archives[h.name] = map[string]any{
					"format":            h.a.Format().String(),
					"decompressed_size": h.size,
					"stats":             h.a.Stats(),
				}
			}
		default: // open still in flight: report it next time
		}
		s.release(h)
	}
	out := map[string]any{
		"server":   s.Metrics(),
		"archives": archives,
	}
	if s.pool != nil {
		out["pool"] = s.pool.Stats()
	}
	writeJSON(w, out)
}

// writeJSON emits v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
