package pugz

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/gzipw"
	"repro/internal/workloads"
)

// printable returns n bytes confined to pugz's supported range 9..126.
func printable(n int, seed uint64) []byte {
	b64 := workloads.Base64(n, seed)
	return b64
}

func compress(t *testing.T, data []byte, opts gzipw.Options) []byte {
	t.Helper()
	comp, _, err := gzipw.Compress(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestSyncRoundTrip(t *testing.T) {
	data := printable(700_000, 1)
	comp := compress(t, data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	for _, threads := range []int{1, 2, 4} {
		var out bytes.Buffer
		err := Decompress(comp, &out, Options{
			Threads: threads, ChunkSize: 32 << 10, Sync: true, CheckPrintable: true,
		})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("threads=%d: mismatch (%d vs %d bytes)", threads, out.Len(), len(data))
		}
	}
}

func TestUnsyncWritesEverythingOnce(t *testing.T) {
	data := printable(600_000, 2)
	comp := compress(t, data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	var out bytes.Buffer
	err := Decompress(comp, &out, Options{
		Threads: 4, ChunkSize: 32 << 10, Sync: false, CheckPrintable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(data) {
		t.Fatalf("unsync wrote %d bytes, want %d", out.Len(), len(data))
	}
	// Chunk order is undefined but byte content must be a permutation of
	// contiguous chunk spans: compare histograms.
	var want, got [256]int
	for _, b := range data {
		want[b]++
	}
	for _, b := range out.Bytes() {
		got[b]++
	}
	if want != got {
		t.Fatal("unsync output is not a byte permutation of the input")
	}
}

func TestSingleThreadUnsyncIsOrdered(t *testing.T) {
	data := printable(300_000, 3)
	comp := compress(t, data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	var out bytes.Buffer
	if err := Decompress(comp, &out, Options{Threads: 1, ChunkSize: 32 << 10}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("single-threaded unsync output must be in order")
	}
}

func TestRejectsNonPrintableContent(t *testing.T) {
	// Binary data falls outside 9..126; pugz quits with an error (§4.5:
	// "It quits and returns an error when trying to do so").
	data := workloads.Random(400_000, 4)
	comp := compress(t, data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	var out bytes.Buffer
	err := Decompress(comp, &out, Options{
		Threads: 2, ChunkSize: 32 << 10, Sync: true, CheckPrintable: true,
	})
	if !errors.Is(err, ErrUnsupportedContent) {
		t.Fatalf("got %v, want ErrUnsupportedContent", err)
	}
}

func TestNonPrintableAcceptedWithoutCheck(t *testing.T) {
	// The ablation switch: same data passes with the restriction off.
	data := workloads.Random(200_000, 5)
	comp := compress(t, data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	var out bytes.Buffer
	err := Decompress(comp, &out, Options{
		Threads: 2, ChunkSize: 32 << 10, Sync: true, CheckPrintable: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("mismatch")
	}
}

func TestOutputBufferLimit(t *testing.T) {
	// A chunk that expands beyond OutputBufferRatio x ChunkSize fails,
	// mirroring the libdeflate fixed-buffer limitation (§1.2).
	data := bytes.Repeat([]byte(strings.Repeat("ab", 50)), 50_000) // highly compressible printable data
	comp := compress(t, data, gzipw.Options{Level: 9, BlockSize: 64 << 10})
	var out bytes.Buffer
	err := Decompress(comp, &out, Options{
		Threads: 2, ChunkSize: 4 << 10, Sync: true, OutputBufferRatio: 2,
	})
	if !errors.Is(err, ErrOutputBuffer) {
		t.Fatalf("got %v, want ErrOutputBuffer", err)
	}
}

func TestSingleBlockFileFails(t *testing.T) {
	// pugz parallelizes on Deflate block granularity; a single-block file
	// spanning several chunks leaves chunks with no block to find.
	data := printable(600_000, 6)
	comp := compress(t, data, gzipw.Options{Level: 1, SingleBlock: true, Strategy: gzipw.DynamicOnly})
	var out bytes.Buffer
	err := Decompress(comp, &out, Options{Threads: 4, ChunkSize: 32 << 10, Sync: true})
	if err == nil {
		t.Fatal("expected failure on single-block file spanning many chunks")
	}
}

func TestChunkSizeSweep(t *testing.T) {
	data := printable(500_000, 7)
	comp := compress(t, data, gzipw.Options{Level: 6, BlockSize: 8 << 10})
	for _, cs := range []int{8 << 10, 32 << 10, 128 << 10, 1 << 20} {
		var out bytes.Buffer
		err := Decompress(comp, &out, Options{Threads: 3, ChunkSize: cs, Sync: true})
		if err != nil {
			t.Fatalf("chunk size %d: %v", cs, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("chunk size %d: mismatch", cs)
		}
	}
}

func TestPigzStyleInput(t *testing.T) {
	// The paper's Figure 9 input: pigz-style independently compressed
	// chunks joined by empty stored blocks.
	data := printable(800_000, 8)
	comp := compress(t, data, gzipw.Options{Level: 6, BlockSize: 32 << 10, IndependentChunks: 64 << 10})
	var out bytes.Buffer
	err := Decompress(comp, &out, Options{Threads: 4, ChunkSize: 64 << 10, Sync: true, CheckPrintable: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("mismatch")
	}
}

func TestEmptyInputRejected(t *testing.T) {
	var out bytes.Buffer
	if err := Decompress(nil, &out, Options{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}
