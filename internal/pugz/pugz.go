// Package pugz reimplements the pugz baseline of Kerbiriou & Chikhi
// (IPDPSW 2019), the system rapidgzip generalises (paper §1.2, §2.2):
// two-stage parallel gzip decompression with a *fixed uniform* chunk
// distribution, a printable-content (byte values 9–126) restriction
// used to validate candidate blocks, libdeflate-style fixed output
// buffers, and either synchronized (in-order) or unsynchronized output.
//
// Its known limitations are reproduced deliberately, because the
// evaluation depends on them: it fails on files whose content falls
// outside 9–126 (§4.5: pugz cannot decompress the Silesia corpus), it
// fails when a chunk's decompressed size exceeds the fixed output
// buffer (§1.2), and its synchronized mode scales poorly (§4.4).
package pugz

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bitio"
	"repro/internal/blockfinder"
	"repro/internal/deflate"
	"repro/internal/gzformat"
)

// Options configures Decompress.
type Options struct {
	// Threads is the parallelism (default 1).
	Threads int
	// ChunkSize is the compressed bytes per chunk (pugz default 32 MiB,
	// §1.2; Figure 12 sweeps it).
	ChunkSize int
	// Sync writes output in order ("pugz (sync)"); otherwise chunks are
	// written as soon as they are ready, in undefined order ("pugz").
	Sync bool
	// OutputBufferRatio mimics libdeflate's preallocated output buffer:
	// decompression fails when a chunk expands beyond this multiple of
	// the chunk size (paper §1.2: 512 MiB per 32 MiB chunk = 16).
	OutputBufferRatio int
	// CheckPrintable enforces pugz's content restriction to byte values
	// 9..126 when validating candidate blocks (§1.2). Disabling it
	// makes the emulation accept arbitrary data (useful for ablation).
	CheckPrintable bool
}

func (o Options) withDefaults() Options {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 32 << 20
	}
	if o.OutputBufferRatio <= 0 {
		o.OutputBufferRatio = 16
	}
	return o
}

// ErrUnsupportedContent mirrors pugz quitting on data outside 9–126.
var ErrUnsupportedContent = errors.New("pugz: decompressed data outside supported byte range 9-126")

// ErrOutputBuffer mirrors the fixed-output-buffer failure mode.
var ErrOutputBuffer = errors.New("pugz: chunk exceeds preallocated output buffer")

type chunkRes struct {
	res *deflate.ChunkResult
	out [][]byte
	err error
}

// Decompress inflates a gzip buffer with the pugz scheme, writing the
// decompressed stream to w.
func Decompress(data []byte, w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	br := bitio.NewBitReaderBytes(data)
	if _, err := gzformat.ParseHeader(br); err != nil {
		return fmt.Errorf("pugz: %w", err)
	}
	firstBlock := br.BitPos()

	totalBits := uint64(len(data)) * 8
	chunkBits := uint64(opts.ChunkSize) * 8
	nChunks := int((totalBits + chunkBits - 1) / chunkBits)
	if nChunks < 1 {
		nChunks = 1
	}

	results := make([]chunkRes, nChunks)
	stage1Done := make([]chan struct{}, nChunks)
	windowReady := make([]chan []byte, nChunks)
	replaced := make([]chan struct{}, nChunks)
	written := make([]chan struct{}, nChunks)
	for i := range stage1Done {
		stage1Done[i] = make(chan struct{})
		windowReady[i] = make(chan []byte, 1)
		replaced[i] = make(chan struct{})
		written[i] = make(chan struct{})
	}

	// Stage 1: fixed uniform distribution of chunks to threads (§1.2:
	// "chunks are distributed to the parallel threads in a fixed uniform
	// manner"), each decoding with markers from the first found block.
	var wg sync.WaitGroup
	for t := 0; t < opts.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			finder := blockfinder.NewPugzFinder()
			var dec deflate.Decoder
			for k := t; k < nChunks; k += opts.Threads {
				results[k].res, results[k].err = stage1(data, k, firstBlock, chunkBits, finder, &dec, opts)
				close(stage1Done[k])
			}
		}(t)
	}

	// Window propagation chain: strictly sequential (§2.2: "The
	// propagation of the windows cannot be parallelized").
	go func() {
		window := []byte{}
		for k := 0; k < nChunks; k++ {
			<-stage1Done[k]
			if results[k].err != nil {
				// Propagate an empty window; the error surfaces below.
				windowReady[k] <- nil
				continue
			}
			if results[k].res == nil {
				// Empty chunk (no block started inside it): the window
				// passes through unchanged.
				windowReady[k] <- nil
				continue
			}
			windowReady[k] <- window
			res := results[k].res
			next, err := res.WindowAt(res.TotalOut(), window)
			if err != nil {
				results[k].err = err
				window = nil
				continue
			}
			window = next
		}
	}()

	// Stage 2: parallel marker replacement per chunk, same fixed
	// distribution.
	var mu sync.Mutex // serialises unsynchronized writes
	var wg2 sync.WaitGroup
	var unsyncErr error
	var unsyncN int64
	for t := 0; t < opts.Threads; t++ {
		wg2.Add(1)
		go func(t int) {
			defer wg2.Done()
			for k := t; k < nChunks; k += opts.Threads {
				window := <-windowReady[k]
				if results[k].err == nil && results[k].res != nil {
					segs, err := results[k].res.Resolved(window)
					if err != nil {
						results[k].err = err
					} else {
						results[k].out = segs
					}
				}
				if !opts.Sync && results[k].err == nil {
					mu.Lock()
					for _, seg := range results[k].out {
						n, err := w.Write(seg)
						unsyncN += int64(n)
						if err != nil && unsyncErr == nil {
							unsyncErr = err
						}
					}
					results[k].out = nil
					mu.Unlock()
				}
				close(replaced[k])
				if opts.Sync {
					// The defining cost of pugz's synchronized mode
					// (§4.4: it "does not scale to more than 32
					// cores"): a thread stalls until its chunk has been
					// written in order before taking the next one.
					<-written[k]
				}
			}
		}(t)
	}

	// Output: synchronized mode writes strictly in order.
	var firstErr error
	for k := 0; k < nChunks; k++ {
		<-replaced[k]
		if results[k].err != nil && firstErr == nil {
			firstErr = results[k].err
		}
		if opts.Sync && firstErr == nil {
			for _, seg := range results[k].out {
				if _, err := w.Write(seg); err != nil {
					firstErr = err
					break
				}
			}
			results[k].out = nil
		}
		close(written[k])
	}
	wg.Wait()
	wg2.Wait()
	if firstErr == nil {
		firstErr = unsyncErr
	}
	return firstErr
}

// stage1 finds the first block in chunk k and first-stage decodes it.
func stage1(data []byte, k int, firstBlock uint64, chunkBits uint64, finder *blockfinder.PugzFinder, dec *deflate.Decoder, opts Options) (*deflate.ChunkResult, error) {
	start := uint64(k) * chunkBits
	stop := start + chunkBits
	maxOut := uint64(opts.OutputBufferRatio) * uint64(opts.ChunkSize)
	br := bitio.NewBitReaderBytes(data)

	if k == 0 {
		// The first chunk starts at the known first block with a known
		// (empty) window.
		res, err := dec.DecodeChunk(br, deflate.ChunkConfig{
			Start: firstBlock, Stop: stop, StopOnlyAtDynamic: true, MaxDecompressed: maxOut,
		})
		if err == deflate.ErrOutputLimit {
			return nil, ErrOutputBuffer
		}
		if err != nil {
			return nil, err
		}
		if err := checkPrintable(res, opts); err != nil {
			return nil, err
		}
		return res, nil
	}

	searchFrom := start
	for {
		cand, ok := finder.Next(data, searchFrom)
		if !ok || cand >= stop {
			// No (findable) block starts inside this chunk: the previous
			// chunk's decode runs through it, so it contributes nothing.
			return nil, nil
		}
		res, err := dec.DecodeChunk(br, deflate.ChunkConfig{
			Start: cand, Stop: stop, StopOnlyAtDynamic: true, TwoStage: true, MaxDecompressed: maxOut,
		})
		if err == deflate.ErrOutputLimit {
			return nil, ErrOutputBuffer
		}
		if err == nil {
			if err := checkPrintable(res, opts); err != nil {
				return nil, err
			}
			return res, nil
		}
		searchFrom = cand + 1
	}
}

// checkPrintable enforces pugz's content restriction: decoded literals
// must fall in 9..126 (§1.2). Only a prefix is checked, mirroring
// pugz's validation of the first decoded bytes.
func checkPrintable(res *deflate.ChunkResult, opts Options) error {
	if !opts.CheckPrintable {
		return nil
	}
	const probe = 64 << 10
	n := 0
	for _, v := range res.Marked {
		if v < deflate.MarkerBase && (v < 9 || v > 126) {
			return ErrUnsupportedContent
		}
		n++
		if n >= probe {
			return nil
		}
	}
	for _, b := range res.Raw {
		if b < 9 || b > 126 {
			return ErrUnsupportedContent
		}
		n++
		if n >= probe {
			return nil
		}
	}
	return nil
}
