// Package experiments regenerates every table and figure of the
// paper's evaluation (§4) at laptop scale: the same workloads, the same
// competitors (or their documented stand-ins, see DESIGN.md §2), the
// same parameter sweeps, printed in the same row layout. cmd/benchsuite
// is the command-line front end; the root bench_test.go exposes the
// same runs as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"time"
)

// Config scales the experiments to the machine and time budget.
type Config struct {
	// Out receives the formatted tables.
	Out io.Writer
	// Cores is the parallelism sweep for the scaling figures. Empty
	// selects {1, 2, 4, 8, 16, ...} up to runtime.NumCPU().
	Cores []int
	// BytesPerCore is the uncompressed workload size per core for the
	// weak-scaling figures (the paper used 362-512 MB per core; the
	// default here is 4 MiB so a full suite finishes in minutes).
	BytesPerCore int
	// Fig12Bytes is the fixed workload for the chunk-size sweep.
	Fig12Bytes int
	// Table1Positions is the number of bit positions for the filter
	// funnel (the paper tested 1e12; default 2e7).
	Table1Positions uint64
	// Repeats per measurement (paper: 20-100). Default 3.
	Repeats int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if len(c.Cores) == 0 {
		for p := 1; p <= runtime.NumCPU(); p *= 2 {
			c.Cores = append(c.Cores, p)
		}
		if last := c.Cores[len(c.Cores)-1]; last != runtime.NumCPU() {
			c.Cores = append(c.Cores, runtime.NumCPU())
		}
	}
	if c.BytesPerCore <= 0 {
		c.BytesPerCore = 4 << 20
	}
	if c.Fig12Bytes <= 0 {
		c.Fig12Bytes = 96 << 20
	}
	if c.Table1Positions == 0 {
		c.Table1Positions = 20_000_000
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// Measurement is a bandwidth sample set.
type Measurement struct {
	MBps   float64 // mean decompressed (or processed) MB/s
	StdDev float64
	Err    error
}

func (m Measurement) String() string {
	if m.Err != nil {
		return fmt.Sprintf("error: %v", truncErr(m.Err))
	}
	return fmt.Sprintf("%9.1f ± %.1f", m.MBps, m.StdDev)
}

func truncErr(err error) string {
	s := err.Error()
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}

// measure runs fn cfg.Repeats times; fn returns the number of payload
// bytes it processed.
func measure(repeats int, fn func() (int64, error)) Measurement {
	var samples []float64
	for i := 0; i < repeats; i++ {
		start := time.Now()
		n, err := fn()
		el := time.Since(start)
		if err != nil {
			return Measurement{Err: err}
		}
		samples = append(samples, float64(n)/1e6/el.Seconds())
	}
	return summarize(samples)
}

func summarize(samples []float64) Measurement {
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	vari := 0.0
	for _, s := range samples {
		vari += (s - mean) * (s - mean)
	}
	if len(samples) > 1 {
		vari /= float64(len(samples) - 1)
	}
	return Measurement{MBps: mean, StdDev: math.Sqrt(vari)}
}

// discard is an io.Writer that only counts.
type discard struct{ n int64 }

func (d *discard) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}

// shmPath returns a path on a RAM-backed filesystem when available
// (matching the paper's /dev/shm benchmarks), else a temp path.
func shmPath(name string) string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm/" + name
	}
	return os.TempDir() + "/" + name
}

// header prints a table caption.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// clipCores deduplicates and clips the sweep to the host.
func clipCores(cores []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cores {
		if c >= 1 && c <= runtime.NumCPU() && !seen[c] {
			out = append(out, c)
			seen[c] = true
		}
	}
	sort.Ints(out)
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
