package experiments

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"runtime"

	"repro/internal/bzip2x"
	"repro/internal/gzipw"
	"repro/internal/lz4x"
	"repro/internal/workloads"
	"repro/internal/zstdx"
)

// Table3 decompresses the Silesia-like corpus compressed by every
// compressor emulation and level of the paper's Table 3, using all
// cores.
func Table3(cfg Config) error {
	cfg = cfg.WithDefaults()
	cores := clipCores(cfg.Cores)
	p := cores[len(cores)-1]
	size := cfg.BytesPerCore * p
	header(cfg.Out, fmt.Sprintf("Table 3: bandwidth vs compressor, silesia-like %d MiB, %d cores", size>>20, p))
	data := workloads.SilesiaLike(size, 33)

	presets := []string{
		"bgzip -l -1", "bgzip -l 0", "bgzip -l 3", "bgzip -l 6", "bgzip -l 9",
		"gzip -1", "gzip -3", "gzip -6", "gzip -9",
		"igzip -0", "igzip -1", "igzip -2", "igzip -3",
		"pigz -1", "pigz -3", "pigz -6", "pigz -9",
	}
	fmt.Fprintf(cfg.Out, "%-14s %-12s %s\n", "compressor", "ratio", "bandwidth MB/s")
	for _, preset := range presets {
		opts, err := gzipw.Preset(preset)
		if err != nil {
			return err
		}
		comp, _, err := gzipw.Compress(data, opts)
		if err != nil {
			return err
		}
		ratio := float64(len(data)) / float64(len(comp))
		m := measure(cfg.Repeats, func() (int64, error) { return rapidgzipRun(comp, p, nil) })
		fmt.Fprintf(cfg.Out, "%-14s %-12.2f %s\n", preset, ratio, m)
	}
	return nil
}

// Table4 compares formats and decompressors at P = 1, 16, max (paper
// Table 4). Stand-ins per DESIGN.md: lbzip2 -> bzip2x.DecompressParallel,
// lz4 -> lz4x serial; the pzstd row is real multi-frame Zstandard
// (zstdx.DecompressParallel), the format whose per-frame metadata makes
// parallel decompression trivial (§4.9).
func Table4(cfg Config) error {
	cfg = cfg.WithDefaults()
	cores := clipCores(cfg.Cores)
	maxP := cores[len(cores)-1]
	ps := []int{1}
	if maxP >= 16 {
		ps = append(ps, 16)
	}
	if maxP != 1 && maxP != 16 {
		ps = append(ps, maxP)
	}

	header(cfg.Out, "Table 4: cross-format comparison")
	fmt.Fprintf(cfg.Out, "%-10s %-8s %-26s %-4s %s\n", "format", "ratio", "decompressor", "P", "bandwidth MB/s")

	for _, p := range ps {
		// Weak scaling like the paper: 2 Silesia tarballs per core.
		data := workloads.SilesiaLike(cfg.BytesPerCore*p, 44)

		// gzip + {rapidgzip, rapidgzip(index), igzip-stdlib}.
		gz, _, err := gzipw.Compress(data, presetOrDie("gzip -6"))
		if err != nil {
			return err
		}
		gzRatio := ratioOf(data, gz)
		m := measure(cfg.Repeats, func() (int64, error) { return rapidgzipRun(gz, p, nil) })
		fmt.Fprintf(cfg.Out, "%-10s %-8.2f %-26s %-4d %s\n", "gzip", gzRatio, "rapidgzip", p, m)
		idx, err := buildIndex(gz, p)
		if err != nil {
			return err
		}
		m = measure(cfg.Repeats, func() (int64, error) { return rapidgzipRun(gz, p, idx) })
		fmt.Fprintf(cfg.Out, "%-10s %-8.2f %-26s %-4d %s\n", "gzip", gzRatio, "rapidgzip (index)", p, m)
		if p == 1 {
			m = measure(cfg.Repeats, func() (int64, error) {
				zr, err := gzip.NewReader(bytes.NewReader(gz))
				if err != nil {
					return 0, err
				}
				var d discard
				_, err = io.Copy(&d, zr)
				return d.n, err
			})
			fmt.Fprintf(cfg.Out, "%-10s %-8.2f %-26s %-4d %s\n", "gzip", gzRatio, "igzip (stdlib flate)", p, m)
		}

		// BGZF: metadata-chunked gzip, the trivially parallel format.
		bg, _, err := gzipw.Compress(data, presetOrDie("bgzip -l 6"))
		if err != nil {
			return err
		}
		m = measure(cfg.Repeats, func() (int64, error) { return rapidgzipRun(bg, p, nil) })
		fmt.Fprintf(cfg.Out, "%-10s %-8.2f %-26s %-4d %s\n", "bgzf", ratioOf(data, bg), "rapidgzip (bgzf path)", p, m)

		// bzip2 multi-stream + lbzip2-style parallel decompression.
		bz, err := bzip2x.Compress(data, bzip2x.WriterOptions{Level: 9, StreamSize: 900_000})
		if err != nil {
			return err
		}
		m = measure(cfg.Repeats, func() (int64, error) {
			out, err := bzip2x.DecompressParallel(bz, p)
			return int64(len(out)), err
		})
		fmt.Fprintf(cfg.Out, "%-10s %-8.2f %-26s %-4d %s\n", "bzip2", ratioOf(data, bz), "lbzip2 (bzip2x)", p, m)

		// Multi-frame Zstandard: the paper's pzstd row (§4.9), no longer
		// a stand-in — per-frame content sizes make the decode
		// trivially parallelizable.
		pz := zstdx.CompressFrames(data, zstdx.FrameOptions{Level: 1, FrameSize: 1 << 20, ContentChecksum: true})
		m = measure(cfg.Repeats, func() (int64, error) {
			out, err := zstdx.DecompressParallel(pz, p)
			return int64(len(out)), err
		})
		fmt.Fprintf(cfg.Out, "%-10s %-8.2f %-26s %-4d %s\n", "pzstd", ratioOf(data, pz), "pzstd (zstdx frames)", p, m)

		// Single-frame LZ4, serial (the lz4 row; only meaningful at P=1).
		if p == 1 {
			lz := lz4x.CompressFrames(data, lz4x.FrameOptions{BlockSize: 256 << 10})
			m = measure(cfg.Repeats, func() (int64, error) {
				out, err := lz4x.Decompress(lz)
				return int64(len(out)), err
			})
			fmt.Fprintf(cfg.Out, "%-10s %-8.2f %-26s %-4d %s\n", "lz4", ratioOf(data, lz), "lz4x (serial)", p, m)
		}
	}
	fmt.Fprintf(cfg.Out, "(pzstd: multi-frame Zstandard via internal/zstdx. host cores: %d)\n", runtime.NumCPU())
	return nil
}

func ratioOf(data, comp []byte) float64 {
	return float64(len(data)) / float64(len(comp))
}

// All runs every experiment in paper order.
func All(cfg Config) error {
	for _, f := range []func(Config) error{Fig7, Fig8, Table1, Table2, Fig9, Fig10, Fig11, Fig12, Table3, Table4} {
		if err := f(cfg); err != nil {
			return err
		}
	}
	return nil
}

// ByName runs one experiment by its paper label.
func ByName(name string, cfg Config) error {
	m := map[string]func(Config) error{
		"fig7": Fig7, "fig8": Fig8, "fig9": Fig9, "fig10": Fig10,
		"fig11": Fig11, "fig12": Fig12,
		"table1": Table1, "table2": Table2, "table3": Table3, "table4": Table4,
		"all": All,
	}
	f, ok := m[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (fig7-12, table1-4, all)", name)
	}
	return f(cfg)
}
