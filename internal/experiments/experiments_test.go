package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// microConfig shrinks every experiment to smoke-test scale.
func microConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:             buf,
		Cores:           []int{1, 2},
		BytesPerCore:    192 << 10,
		Fig12Bytes:      1 << 20,
		Table1Positions: 200_000,
		Repeats:         1,
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, name := range []string{
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"table1", "table2", "table3", "table4",
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ByName(name, microConfig(&buf)); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if strings.Contains(out, "NaN") {
				t.Fatalf("NaN in output:\n%s", out)
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if err := ByName("fig99", Config{Out: &bytes.Buffer{}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestScalingRowsContainNoErrorsOnBase64(t *testing.T) {
	// Figure 9's inputs are printable; every cell must be a number.
	var buf bytes.Buffer
	if err := Fig9(microConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "error") {
		t.Fatalf("figure 9 contains error cells:\n%s", buf.String())
	}
}

func TestFig10PugzBehaviour(t *testing.T) {
	// The Silesia-like corpus contains bytes outside 9..126; the pugz
	// column must show its characteristic failure (§4.5), not numbers.
	var buf bytes.Buffer
	if err := Fig10(microConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "error") {
		t.Fatalf("expected pugz error cells in figure 10:\n%s", buf.String())
	}
}
