package experiments

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/bitio"
	"repro/internal/blockfinder"
	"repro/internal/deflate"
	"repro/internal/filereader"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

// Fig7 benchmarks BitReader.Read for 1..30 bits per call (paper
// Figure 7: "the bit reader should be queried as rarely as possible
// with as many bits as possible").
func Fig7(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 7: BitReader bandwidth vs bits per read call")
	fmt.Fprintf(cfg.Out, "%-14s %s\n", "bits/call", "bandwidth MB/s")
	base := cfg.BytesPerCore / 2
	if base > 2<<20 {
		base = 2 << 20
	}
	for bits := uint(1); bits <= 30; bits++ {
		// Scale the data with bits-per-read for roughly equal runtimes,
		// like the paper.
		data := workloads.Random(base*int(bits)/8, uint64(bits))
		m := measure(cfg.Repeats, func() (int64, error) {
			br := bitio.NewBitReaderBytes(data)
			total := uint64(len(data)) * 8
			var sink uint64
			for pos := uint64(0); pos+uint64(bits) <= total; pos += uint64(bits) {
				v, err := br.Read(bits)
				if err != nil {
					return 0, err
				}
				sink ^= v
			}
			_ = sink
			return int64(len(data)), nil
		})
		fmt.Fprintf(cfg.Out, "%-14d %s\n", bits, m)
	}
	return nil
}

// Fig8 benchmarks SharedFileReader with strided parallel reads (paper
// Figure 8: 128 KiB chunks, one stride per thread, file in /dev/shm).
func Fig8(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Figure 8: SharedFileReader strided parallel reads (128 KiB chunks)")
	size := 256 << 20
	if size > 64*cfg.BytesPerCore {
		size = 64 * cfg.BytesPerCore
	}
	path := shmPath("rapidgzip_fig8.bin")
	if err := os.WriteFile(path, workloads.Random(size, 8), 0o644); err != nil {
		return err
	}
	defer os.Remove(path)
	src, err := filereader.OpenFile(path)
	if err != nil {
		return err
	}
	defer src.Close()
	shared := filereader.NewShared(src)

	fmt.Fprintf(cfg.Out, "%-10s %s\n", "threads", "bandwidth MB/s")
	for _, threads := range clipCores(cfg.Cores) {
		m := measure(cfg.Repeats, func() (int64, error) {
			errs := make(chan error, threads)
			const chunk = 128 << 10
			for t := 0; t < threads; t++ {
				go func(t int) {
					buf := make([]byte, chunk)
					var err error
					for off := int64(t) * chunk; off < int64(size); off += int64(threads) * chunk {
						if _, err = shared.ReadAt(buf, off); err != nil {
							break
						}
					}
					errs <- err
				}(t)
			}
			for t := 0; t < threads; t++ {
				if err := <-errs; err != nil {
					return 0, err
				}
			}
			return int64(size), nil
		})
		fmt.Fprintf(cfg.Out, "%-10d %s\n", threads, m)
	}
	return nil
}

// Table1 reproduces the Dynamic Block finder filter funnel.
func Table1(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, fmt.Sprintf("Table 1: filter funnel over %d random bit positions (paper: 1e12)", cfg.Table1Positions))
	data := workloads.Random(int(cfg.Table1Positions/8)+2400, 1)
	funnel := blockfinder.ScanFunnel(data, cfg.Table1Positions)
	fmt.Fprint(cfg.Out, funnel.String())
	return nil
}

// Table2 benchmarks every pipeline component (paper Table 2).
func Table2(cfg Config) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, "Table 2: component bandwidths")
	fmt.Fprintf(cfg.Out, "%-24s %s\n", "component", "bandwidth MB/s")

	// Block finders scan a real gzip file of base64 data, as in the
	// decompression pipeline. The trial finders are orders of magnitude
	// slower, so they get proportionally smaller inputs.
	big := cfg.BytesPerCore
	if big > 4<<20 {
		big = 4 << 20
	}
	raw := workloads.Base64(4*big, 2)
	comp, _, err := gzipw.Compress(raw, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		return err
	}

	scan := func(name string, f blockfinder.Finder, n int) {
		if n > len(comp) {
			n = len(comp)
		}
		data := comp[:n]
		m := measure(cfg.Repeats, func() (int64, error) {
			blockfinder.ScanAll(f, data, -1)
			return int64(len(data)), nil
		})
		fmt.Fprintf(cfg.Out, "%-24s %s\n", name, m)
	}
	scan("DBF flate trial (zlib)", blockfinder.NewTrialFlateFinder(), 48<<10)
	scan("DBF custom deflate", blockfinder.NewTrialCustomFinder(), 192<<10)
	scan("Pugz block finder", blockfinder.NewPugzFinder(), 1<<20)
	scan("DBF skip-LUT", blockfinder.NewSkipLUTFinder(), 2<<20)
	scan("DBF rapidgzip", blockfinder.NewDynamicFinder(), 4<<20)
	scan("NBF", blockfinder.StoredFinder{}, len(comp))

	// Marker replacement: resolve a two-stage chunk against its window.
	marked, window, outLen, err := markedChunk(raw)
	if err != nil {
		return err
	}
	dst := make([]byte, outLen)
	m := measure(cfg.Repeats, func() (int64, error) {
		if err := deflate.ResolveMarkers(dst, marked, window); err != nil {
			return 0, err
		}
		return int64(outLen), nil
	})
	fmt.Fprintf(cfg.Out, "%-24s %s\n", "Marker replacement", m)

	// Write to /dev/shm.
	path := shmPath("rapidgzip_table2.bin")
	defer os.Remove(path)
	m = measure(cfg.Repeats, func() (int64, error) {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return 0, err
		}
		return int64(len(raw)), nil
	})
	fmt.Fprintf(cfg.Out, "%-24s %s\n", "Write to /dev/shm", m)

	// Count newlines (the paper's cheapest consumer of decompressed data).
	m = measure(cfg.Repeats, func() (int64, error) {
		_ = bytes.Count(raw, []byte{'\n'})
		return int64(len(raw)), nil
	})
	fmt.Fprintf(cfg.Out, "%-24s %s\n", "Count newlines", m)
	return nil
}

// markedChunk produces a marked 16-bit chunk plus the window it needs,
// by two-stage decoding the second half of a compressed stream.
func markedChunk(raw []byte) ([]uint16, []byte, int, error) {
	// Repetitive text keeps back-references (and therefore markers)
	// alive across the whole chunk.
	text := workloads.SilesiaLike(len(raw)/2, 3)
	comp, meta, err := gzipw.Compress(text, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		return nil, nil, 0, err
	}
	// Find a block boundary near the middle using the writer's ground
	// truth, then decode two-stage from there.
	var bs gzipw.BlockOffset
	for _, b := range meta.Blocks {
		if b.Decomp > uint64(len(text)/2) && b.Type == deflate.BlockDynamic && !b.Final {
			bs = b
			break
		}
	}
	if bs.Bit == 0 {
		return nil, nil, 0, fmt.Errorf("no mid-file block boundary found")
	}
	var dec deflate.Decoder
	cr, err := dec.DecodeChunk(bitio.NewBitReaderBytes(comp), deflate.ChunkConfig{
		Start: bs.Bit, Stop: deflate.StopAtEOF, TwoStage: true,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	window := text[bs.Decomp-deflate.WindowSize : bs.Decomp]
	return cr.Marked, window, len(cr.Marked), nil
}
