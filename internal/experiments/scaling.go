package experiments

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/deflate"
	"repro/internal/filereader"
	"repro/internal/gzipw"
	"repro/internal/pugz"
	"repro/internal/workloads"
)

// generator produces n deterministic workload bytes.
type generator func(n int, seed uint64) []byte

// Fig9 is the weak-scaling benchmark on base64-encoded random data
// (paper Figure 9; pigz-style compression, per-core scaled file size).
func Fig9(cfg Config) error {
	return runScaling(cfg, "Figure 9: decompression scaling, base64 random data", workloads.Base64, true)
}

// Fig10 is the weak-scaling benchmark on the Silesia-like corpus
// (paper Figure 10; pugz is excluded there because it cannot process
// bytes outside 9-126 — here the row shows the error instead).
func Fig10(cfg Config) error {
	return runScaling(cfg, "Figure 10: decompression scaling, Silesia-like corpus", workloads.SilesiaLike, true)
}

// Fig11 is the weak-scaling benchmark on FASTQ data (paper Figure 11).
func Fig11(cfg Config) error {
	return runScaling(cfg, "Figure 11: decompression scaling, FASTQ", workloads.FASTQ, true)
}

func runScaling(cfg Config, title string, gen generator, includePugz bool) error {
	cfg = cfg.WithDefaults()
	header(cfg.Out, title)
	cores := clipCores(cfg.Cores)
	maxP := cores[len(cores)-1]

	// One dataset at maximum size; per-P runs compress a prefix, like
	// the paper's per-core concatenation (weak scaling).
	full := gen(cfg.BytesPerCore*maxP, 9)

	// Single-threaded baselines, each on one core's worth of data.
	base := full[:cfg.BytesPerCore]
	baseComp, _, err := gzipw.Compress(base, presetOrDie("pigz -6"))
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "single-threaded baselines (%d MiB):\n", len(base)>>20)
	m := measure(cfg.Repeats, func() (int64, error) {
		out, err := deflate.DecompressGzip(baseComp)
		return int64(len(out)), err
	})
	fmt.Fprintf(cfg.Out, "  %-28s %s\n", "gzip (serial custom)", m)
	m = measure(cfg.Repeats, func() (int64, error) {
		zr, err := gzip.NewReader(bytes.NewReader(baseComp))
		if err != nil {
			return 0, err
		}
		var d discard
		_, err = io.Copy(&d, zr)
		return d.n, err
	})
	fmt.Fprintf(cfg.Out, "  %-28s %s\n", "igzip (stdlib flate)", m)
	m = measure(cfg.Repeats, func() (int64, error) { return pigzSim(baseComp) })
	fmt.Fprintf(cfg.Out, "  %-28s %s\n", "pigz (pipelined serial)", m)

	fmt.Fprintf(cfg.Out, "%-6s %-26s %-26s %-26s %-26s\n",
		"cores", "rapidgzip (no index)", "rapidgzip (index)", "pugz (sync)", "pugz")
	for _, p := range cores {
		data := full[:cfg.BytesPerCore*p]
		comp, _, err := gzipw.Compress(data, presetOrDie("pigz -6"))
		if err != nil {
			return err
		}
		noIdx := measure(cfg.Repeats, func() (int64, error) { return rapidgzipRun(comp, p, nil) })
		idxBuf, err := buildIndex(comp, p)
		var withIdx Measurement
		if err != nil {
			withIdx = Measurement{Err: err}
		} else {
			withIdx = measure(cfg.Repeats, func() (int64, error) { return rapidgzipRun(comp, p, idxBuf) })
		}
		var sync, unsync Measurement
		if includePugz {
			sync = measure(cfg.Repeats, func() (int64, error) { return pugzRun(comp, p, true) })
			unsync = measure(cfg.Repeats, func() (int64, error) { return pugzRun(comp, p, false) })
		}
		fmt.Fprintf(cfg.Out, "%-6d %-26s %-26s %-26s %-26s\n", p, noIdx, withIdx, sync, unsync)
	}
	return nil
}

// Fig12 sweeps the chunk size at fixed parallelism (paper Figure 12).
func Fig12(cfg Config) error {
	cfg = cfg.WithDefaults()
	cores := clipCores(cfg.Cores)
	p := cores[len(cores)-1]
	if p > 16 {
		p = 16 // the paper uses 16 cores
	}
	header(cfg.Out, fmt.Sprintf("Figure 12: chunk-size sweep, base64 data, %d cores", p))
	data := workloads.Base64(cfg.Fig12Bytes, 12)
	comp, _, err := gzipw.Compress(data, presetOrDie("pigz -6"))
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%-14s %-26s %-26s\n", "chunk size", "rapidgzip", "pugz (sync)")
	for _, cs := range []int{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20} {
		if cs > len(comp) {
			break
		}
		rg := measure(cfg.Repeats, func() (int64, error) { return rapidgzipRunChunk(comp, p, cs) })
		pz := measure(cfg.Repeats, func() (int64, error) {
			var d discard
			err := pugz.Decompress(comp, &d, pugz.Options{Threads: p, ChunkSize: cs, Sync: true, CheckPrintable: true})
			return d.n, err
		})
		fmt.Fprintf(cfg.Out, "%-14s %-26s %-26s\n", fmtSize(cs), rg, pz)
	}
	return nil
}

// --- runners -------------------------------------------------------------

// scaledChunk miniaturizes the paper's 4 MiB default chunk size: the
// evaluation files here are orders of magnitude smaller than the
// paper's 512 MB/core, so the chunk size shrinks proportionally to
// keep many chunks per worker (the paper's regime). Figure 12 sweeps
// the parameter explicitly.
func scaledChunk(compLen, p int) int {
	cs := compLen / (6 * p)
	if cs < 128<<10 {
		cs = 128 << 10
	}
	if cs > 4<<20 {
		cs = 4 << 20
	}
	return cs
}

func rapidgzipRun(comp []byte, p int, index []byte) (int64, error) {
	return rapidgzipRunOpts(comp, core.Config{Parallelism: p, ChunkSize: scaledChunk(len(comp), p)}, index)
}

func rapidgzipRunChunk(comp []byte, p, chunkSize int) (int64, error) {
	return rapidgzipRunOpts(comp, core.Config{Parallelism: p, ChunkSize: chunkSize}, nil)
}

func rapidgzipRunOpts(comp []byte, cfg core.Config, index []byte) (int64, error) {
	r, err := core.NewReader(filereader.MemoryReader(comp), cfg)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	if index != nil {
		if err := r.ImportIndex(bytes.NewReader(index)); err != nil {
			return 0, err
		}
	}
	var d discard
	_, err = r.WriteTo(&d)
	return d.n, err
}

func buildIndex(comp []byte, p int) ([]byte, error) {
	r, err := core.NewReader(filereader.MemoryReader(comp), core.Config{Parallelism: p, ChunkSize: scaledChunk(len(comp), p)})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var buf bytes.Buffer
	if err := r.ExportIndex(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func pugzRun(comp []byte, p int, sync bool) (int64, error) {
	var d discard
	// CheckPrintable is pugz's defining restriction (§1.2): it must be
	// on for the faithful comparison — Figure 10 excludes pugz exactly
	// because it errors out on bytes outside 9..126. pugz needs chunks
	// ~4-8x larger than rapidgzip (its block finder is slower, Fig 12).
	cs := 4 * scaledChunk(len(comp), p)
	err := pugz.Decompress(comp, &d, pugz.Options{Threads: p, Sync: sync, ChunkSize: cs, CheckPrintable: true})
	return d.n, err
}

// pigzSim mimics pigz's decompression concurrency model: decompression
// on one goroutine, writing on another (pigz cannot parallelize the
// inflate itself, §4.4).
func pigzSim(comp []byte) (int64, error) {
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return 0, err
	}
	ch := make(chan []byte, 8)
	done := make(chan int64)
	go func() {
		var n int64
		for b := range ch {
			n += int64(len(b))
		}
		done <- n
	}()
	buf := make([]byte, 1<<20)
	for {
		n, err := zr.Read(buf)
		if n > 0 {
			b := make([]byte, n)
			copy(b, buf[:n])
			ch <- b
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			close(ch)
			<-done
			return 0, err
		}
	}
	close(ch)
	return <-done, nil
}

func presetOrDie(name string) gzipw.Options {
	opts, err := gzipw.Preset(name)
	if err != nil {
		panic(err)
	}
	return opts
}

func fmtSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KiB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
