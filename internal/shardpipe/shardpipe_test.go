package shardpipe

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestOrderPreserved submits jobs that finish out of order and checks
// the sink still sees submit order.
func TestOrderPreserved(t *testing.T) {
	var got []int
	pl := New(4, 8, func(v int) error {
		got = append(got, v)
		return nil
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := time.Duration(rng.Intn(300)) * time.Microsecond
		if err := pl.Submit(func() (int, error) {
			time.Sleep(d)
			return i, nil
		}); err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	if err := pl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("sink saw %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result %d = %d, want %d (order broken)", i, v, i)
		}
	}
}

// TestInFlightBound asserts Submit blocks rather than buffering
// unboundedly: with a window of 2 and jobs gated on a channel, the
// third Submit cannot complete until a job is released.
func TestInFlightBound(t *testing.T) {
	release := make(chan struct{})
	var drained []int
	pl := New(2, 2, func(v int) error {
		drained = append(drained, v)
		return nil
	})
	for i := 0; i < 2; i++ {
		pl.Submit(func() (int, error) {
			<-release
			return i, nil
		})
	}
	third := make(chan error, 1)
	go func() {
		third <- pl.Submit(func() (int, error) { return 2, nil })
	}()
	select {
	case err := <-third:
		t.Fatalf("third Submit returned (%v) while window was full", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-third; err != nil {
		t.Fatalf("third Submit after release: %v", err)
	}
	if err := pl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(drained) != 3 {
		t.Fatalf("drained %d, want 3", len(drained))
	}
}

// TestJobErrorPoisons checks a failing job surfaces from Submit/Close
// and stops the sink from seeing later results.
func TestJobErrorPoisons(t *testing.T) {
	boom := errors.New("boom")
	var sunk int
	pl := New(2, 2, func(int) error { sunk++; return nil })
	pl.Submit(func() (int, error) { return 0, nil })
	pl.Submit(func() (int, error) { return 0, boom })
	// Enough submits to force draining past the failed job.
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = pl.Submit(func() (int, error) { return 0, nil })
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Submit after failure = %v, want %v", err, boom)
	}
	if cerr := pl.Close(); !errors.Is(cerr, boom) {
		t.Fatalf("Close = %v, want %v", cerr, boom)
	}
	if sunk > 1 {
		t.Fatalf("sink ran %d times after poison, want <= 1", sunk)
	}
}

// TestSinkErrorPoisons checks a sink failure also poisons the pipeline.
func TestSinkErrorPoisons(t *testing.T) {
	bad := errors.New("sink full")
	pl := New(1, 1, func(int) error { return bad })
	pl.Submit(func() (int, error) { return 1, nil })
	pl.Submit(func() (int, error) { return 2, nil }) // forces a drain
	if err := pl.Close(); !errors.Is(err, bad) {
		t.Fatalf("Close = %v, want %v", err, bad)
	}
	if err := pl.Submit(func() (int, error) { return 3, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func ExamplePipeline() {
	pl := New(4, 0, func(s string) error {
		fmt.Println(s)
		return nil
	})
	for _, w := range []string{"a", "b", "c"} {
		pl.Submit(func() (string, error) { return w, nil })
	}
	pl.Close()
	// Output:
	// a
	// b
	// c
}
