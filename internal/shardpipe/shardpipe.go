// Package shardpipe runs an ordered parallel encode pipeline: fixed
// jobs are submitted in stream order, execute concurrently on a worker
// pool, and their results are handed to a single sink in submit order.
// It is the write-side mirror of the read path's span engine — the
// compressor analogue of "independent chunks decoded on the pool,
// joined in order by the consumer" (the structure pigz and pzstd use,
// which the paper's Table 3 / §4.8 identifies as what makes parallel
// *de*compression possible in the first place).
//
// The pipeline bounds in-flight jobs, so a fast producer cannot buffer
// an unbounded number of encoded shards: Submit blocks once the window
// is full, waiting for the oldest job to finish and be drained.
package shardpipe

import (
	"errors"

	"repro/internal/pool"
)

// Pipeline coordinates ordered parallel encoding. Not safe for
// concurrent Submit calls; one producer drives it (the Writer path is
// inherently sequential — it is the encoding that parallelizes).
type Pipeline[T any] struct {
	p        *pool.Pool
	ownsPool bool
	inflight []*pool.Future[T]
	window   int
	sink     func(T) error
	err      error // first sink or job error; sticky
}

// New builds a pipeline running jobs on workers goroutines with at
// most window jobs in flight, delivering each result to sink in submit
// order. window < 1 is clamped to workers+1 (one shard encoding per
// worker plus one being drained).
func New[T any](workers, window int, sink func(T) error) *Pipeline[T] {
	if workers < 1 {
		workers = 1
	}
	if window < 1 {
		window = workers + 1
	}
	return &Pipeline[T]{p: pool.New(workers), ownsPool: true, window: window, sink: sink}
}

// ErrClosed reports a Submit after Close.
var ErrClosed = errors.New("shardpipe: pipeline is closed")

// Submit enqueues job for concurrent execution. It blocks while the
// in-flight window is full, draining the oldest result first. After
// any job or sink error the pipeline is poisoned: the error is
// returned here (and from Close) and further jobs are not run.
func (pl *Pipeline[T]) Submit(job func() (T, error)) error {
	if pl.p == nil {
		return ErrClosed
	}
	if pl.err != nil {
		return pl.err
	}
	for len(pl.inflight) >= pl.window {
		if err := pl.drainOne(); err != nil {
			return err
		}
	}
	pl.inflight = append(pl.inflight, pool.Go(pl.p, job))
	return nil
}

// drainOne waits for the oldest in-flight job and feeds its result to
// the sink, preserving submit order.
func (pl *Pipeline[T]) drainOne() error {
	fut := pl.inflight[0]
	pl.inflight = pl.inflight[1:]
	res, err := fut.Wait()
	if err == nil && pl.err == nil {
		// Results completing after a poison are waited for (the worker
		// must not outlive the pipeline) but never reach the sink: the
		// output stream is already broken at the failed shard.
		err = pl.sink(res)
	}
	if err != nil && pl.err == nil {
		pl.err = err
	}
	return pl.err
}

// Close drains every outstanding job (in order) and releases the
// worker pool. It returns the pipeline's first error, if any. Close
// is idempotent.
func (pl *Pipeline[T]) Close() error {
	if pl.p == nil {
		return pl.err
	}
	for len(pl.inflight) > 0 {
		pl.drainOne() // keeps draining past an error so workers finish
	}
	if pl.ownsPool {
		pl.p.Close()
	}
	pl.p = nil
	return pl.err
}
