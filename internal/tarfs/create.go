package tarfs

import (
	"archive/tar"
	"fmt"
	"io"
	"io/fs"
)

// Create streams src into w as a TAR archive: every directory and
// regular file under src, in fs.WalkDir order, with deterministic
// USTAR-compatible headers. Pointed at a compressing Writer (the write
// side of this repository), it produces the .tar.gz/.tar.zst inputs
// the read side's TarFS serves randomly — the round trip the paper's
// ratarmount use case (§1.3) starts from. Irregular files (symlinks,
// devices, sockets) are skipped: an fs.FS cannot represent their
// content.
//
// Create does not close w.
func Create(w io.Writer, src fs.FS) error {
	tw := tar.NewWriter(w)
	err := fs.WalkDir(src, ".", func(name string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if name == "." {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		switch {
		case d.IsDir():
			hdr, err := tar.FileInfoHeader(info, "")
			if err != nil {
				return err
			}
			hdr.Name = name + "/"
			hdr.Format = tar.FormatPAX
			return tw.WriteHeader(hdr)
		case !info.Mode().IsRegular():
			return nil
		}
		hdr, err := tar.FileInfoHeader(info, "")
		if err != nil {
			return err
		}
		hdr.Name = name
		hdr.Format = tar.FormatPAX
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		f, err := src.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		if n, err := io.Copy(tw, f); err != nil {
			return fmt.Errorf("tarfs: streaming %s after %d bytes: %w", name, n, err)
		}
		return nil
	})
	if err != nil {
		tw.Close()
		return err
	}
	return tw.Close()
}
