package tarfs

import (
	"bytes"
	"io"
	"io/fs"
	"testing"
	"testing/fstest"
)

// TestCreateRoundTrip streams a MapFS into a TAR and opens it back
// through this package's FS.
func TestCreateRoundTrip(t *testing.T) {
	src := fstest.MapFS{
		"readme.txt":       {Data: []byte("hello tar")},
		"dir/a.bin":        {Data: bytes.Repeat([]byte{0xAB}, 4096)},
		"dir/sub/deep.txt": {Data: []byte("nested")},
		"empty.dat":        {Data: nil},
	}
	var buf bytes.Buffer
	if err := Create(&buf, src); err != nil {
		t.Fatalf("Create: %v", err)
	}
	tfs, err := New(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for name, want := range src {
		f, err := tfs.Open(name)
		if err != nil {
			t.Fatalf("Open(%s): %v", name, err)
		}
		got, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, want.Data) {
			t.Fatalf("%s: got %d bytes, want %d", name, len(got), len(want.Data))
		}
	}
	// The directory structure must walk identically.
	var names []string
	fs.WalkDir(tfs, ".", func(name string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			names = append(names, name)
		}
		return nil
	})
	if len(names) != len(src) {
		t.Fatalf("walk found %d files, want %d (%v)", len(names), len(src), names)
	}
}
