// Package tarfs provides random access to the members of a TAR archive
// through an io/fs.FS — the "light-weight layer to access the compressed
// file contents" the paper describes for ratarmount (§1.3). Layered on
// the parallel gzip reader, opening one file out of a multi-gigabyte
// .tar.gz costs one index lookup plus the decompression of the touched
// chunks only.
package tarfs

import (
	"archive/tar"
	"errors"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"time"
)

// entry is one archive member.
type entry struct {
	hdr    *tar.Header
	offset int64 // decompressed offset of the member's content
}

// FS is a read-only filesystem view of a TAR archive stored in an
// io.ReaderAt (typically a *rapidgzip.Reader). It implements fs.FS,
// fs.ReadDirFS and fs.StatFS. Safe for concurrent use if the underlying
// reader is (rapidgzip readers are).
type FS struct {
	r       io.ReaderAt
	files   map[string]*entry
	dirs    map[string][]string // dir -> sorted child names
	modTime time.Time
}

// countingReader tracks the position of a sequential reader so the
// archive scan can record each member's content offset.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Source is what tarfs needs from a decompressor: concurrent
// positional reads over the decompressed stream plus its total size.
// Every rapidgzip Archive satisfies it.
type Source interface {
	io.ReaderAt
	Size() (int64, error)
}

// Open scans the TAR structure inside src and returns the filesystem —
// the format-agnostic entry point: any Archive (gzip, BGZF, bzip2,
// LZ4) works, at whatever random-access granularity its capabilities
// admit.
func Open(src Source) (*FS, error) {
	size, err := src.Size()
	if err != nil {
		return nil, err
	}
	return New(src, size)
}

// New scans the TAR structure once (sequentially, which on a rapidgzip
// reader builds the seek-point index as a side effect) and returns the
// filesystem. size is the decompressed size of the archive.
func New(r io.ReaderAt, size int64) (*FS, error) {
	fsys := &FS{
		r:     r,
		files: map[string]*entry{},
		dirs:  map[string][]string{},
	}
	cr := &countingReader{r: io.NewSectionReader(r, 0, size)}
	tr := tar.NewReader(cr)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A generator-truncated trailing entry ends the archive.
			if errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return nil, err
		}
		name := path.Clean(hdr.Name)
		if name == "." || strings.HasPrefix(name, "../") {
			continue
		}
		e := &entry{hdr: hdr, offset: cr.n}
		switch hdr.Typeflag {
		case tar.TypeReg, tar.TypeRegA:
			fsys.files[name] = e
			fsys.addToDir(name)
		case tar.TypeDir:
			fsys.ensureDir(name)
		}
		if hdr.ModTime.After(fsys.modTime) {
			fsys.modTime = hdr.ModTime
		}
	}
	for d := range fsys.dirs {
		sort.Strings(fsys.dirs[d])
	}
	return fsys, nil
}

// addToDir registers name (and its ancestors) in the directory tree.
func (f *FS) addToDir(name string) {
	for {
		dir := path.Dir(name)
		base := path.Base(name)
		kids := f.dirs[dir]
		found := false
		for _, k := range kids {
			if k == base {
				found = true
				break
			}
		}
		if !found {
			f.dirs[dir] = append(f.dirs[dir], base)
		}
		if dir == "." {
			return
		}
		name = dir
	}
}

func (f *FS) ensureDir(name string) {
	if _, ok := f.dirs[name]; !ok {
		f.dirs[name] = nil
		f.addToDir(name)
	}
}

// Open implements fs.FS.
func (f *FS) Open(name string) (fs.File, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	if e, ok := f.files[name]; ok {
		return &file{
			fsys: f,
			e:    e,
			sr:   io.NewSectionReader(f.r, e.offset, e.hdr.Size),
		}, nil
	}
	if _, ok := f.dirs[name]; ok || name == "." {
		return &dir{fsys: f, name: name}, nil
	}
	return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
}

// Stat implements fs.StatFS.
func (f *FS) Stat(name string) (fs.FileInfo, error) {
	h, err := f.Open(name)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	return h.Stat()
}

// ReadDir implements fs.ReadDirFS.
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrInvalid}
	}
	kids, ok := f.dirs[name]
	if !ok && name != "." {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	out := make([]fs.DirEntry, 0, len(kids))
	for _, k := range kids {
		full := k
		if name != "." {
			full = name + "/" + k
		}
		info, err := f.Stat(full)
		if err != nil {
			return nil, err
		}
		out = append(out, fs.FileInfoToDirEntry(info))
	}
	return out, nil
}

// --- file ---------------------------------------------------------------

type file struct {
	fsys *FS
	e    *entry
	sr   *io.SectionReader
}

func (f *file) Read(p []byte) (int, error)                { return f.sr.Read(p) }
func (f *file) ReadAt(p []byte, off int64) (int, error)   { return f.sr.ReadAt(p, off) }
func (f *file) Seek(off int64, whence int) (int64, error) { return f.sr.Seek(off, whence) }
func (f *file) Close() error                              { return nil }
func (f *file) Stat() (fs.FileInfo, error)                { return f.e.hdr.FileInfo(), nil }

// --- directory ------------------------------------------------------------

type dir struct {
	fsys *FS
	name string
	pos  int
}

func (d *dir) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.name, Err: errors.New("is a directory")}
}
func (d *dir) Close() error { return nil }

func (d *dir) Stat() (fs.FileInfo, error) {
	return dirInfo{name: path.Base(d.name), mod: d.fsys.modTime}, nil
}

func (d *dir) ReadDir(n int) ([]fs.DirEntry, error) {
	all, err := d.fsys.ReadDir(d.name)
	if err != nil {
		return nil, err
	}
	rest := all[d.pos:]
	if n <= 0 {
		d.pos = len(all)
		return rest, nil
	}
	if len(rest) == 0 {
		return nil, io.EOF
	}
	if n > len(rest) {
		n = len(rest)
	}
	d.pos += n
	return rest[:n], nil
}

type dirInfo struct {
	name string
	mod  time.Time
}

func (i dirInfo) Name() string       { return i.name }
func (i dirInfo) Size() int64        { return 0 }
func (i dirInfo) Mode() fs.FileMode  { return fs.ModeDir | 0o555 }
func (i dirInfo) ModTime() time.Time { return i.mod }
func (i dirInfo) IsDir() bool        { return true }
func (i dirInfo) Sys() any           { return nil }
