package tarfs

import (
	"archive/tar"
	"bytes"
	"io"
	"io/fs"
	"testing"
	"testing/fstest"

	"repro/internal/core"
	"repro/internal/filereader"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

// buildTar writes a small archive with nested directories.
func buildTar(t *testing.T, files map[string][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for name, content := range files {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(content)), Typeflag: tar.TypeReg,
		}); err != nil {
			t.Fatal(err)
		}
		tw.Write(content)
	}
	tw.Close()
	return buf.Bytes()
}

var sample = map[string][]byte{
	"readme.txt":        []byte("hello"),
	"data/a.bin":        bytes.Repeat([]byte{0xAB}, 4096),
	"data/b.bin":        []byte("bbbb"),
	"data/nested/c.txt": []byte("deep content"),
}

func openFS(t *testing.T, raw []byte) *FS {
	t.Helper()
	fsys, err := New(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	return fsys
}

func TestFSConformance(t *testing.T) {
	raw := buildTar(t, sample)
	fsys := openFS(t, raw)
	if err := fstest.TestFS(fsys, "readme.txt", "data/a.bin", "data/b.bin", "data/nested/c.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestReadFiles(t *testing.T) {
	raw := buildTar(t, sample)
	fsys := openFS(t, raw)
	for name, want := range sample {
		got, err := fs.ReadFile(fsys, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content mismatch", name)
		}
	}
	if _, err := fs.ReadFile(fsys, "missing.txt"); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestReadDir(t *testing.T) {
	raw := buildTar(t, sample)
	fsys := openFS(t, raw)
	root, err := fsys.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 2 { // data/, readme.txt
		t.Fatalf("root has %d entries", len(root))
	}
	data, err := fsys.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 {
		t.Fatalf("data has %d entries", len(data))
	}
}

func TestSeekWithinFile(t *testing.T) {
	raw := buildTar(t, sample)
	fsys := openFS(t, raw)
	f, err := fsys.Open("data/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sk := f.(io.Seeker)
	if _, err := sk.Seek(4000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 96)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB || buf[95] != 0xAB {
		t.Fatal("seeked read wrong")
	}
}

// TestOverIndexedGzip is the ratarmount scenario end to end: tarfs on
// top of the parallel gzip reader, random access to members of a
// compressed archive.
func TestOverIndexedGzip(t *testing.T) {
	tarball := workloads.SilesiaLike(2<<20, 3) // a real TAR by construction
	comp, _, err := gzipw.Compress(tarball, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.NewReader(filereader.MemoryReader(comp), core.Config{Parallelism: 4, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	size, err := r.Size()
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := New(r, size)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fsys.ReadDir("silesia")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d members", len(entries))
	}
	// Random access to one member must match the serial ground truth.
	name := "silesia/" + entries[len(entries)/2].Name()
	got, err := fs.ReadFile(fsys, name)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from a plain tar walk.
	tr := tar.NewReader(bytes.NewReader(tarball))
	for {
		hdr, err := tr.Next()
		if err != nil {
			t.Fatalf("member %q not found serially", name)
		}
		if hdr.Name == name {
			want, _ := io.ReadAll(tr)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: tarfs content differs from serial tar read", name)
			}
			return
		}
	}
}
