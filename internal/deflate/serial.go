package deflate

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/gzformat"
)

// DecompressGzip decodes a complete (possibly multi-member) gzip buffer
// serially with the custom single-stage decoder. It verifies each
// member's ISIZE and CRC32 and is the single-threaded baseline the
// paper's scaling figures compare against ("rapidgzip" at P=1).
func DecompressGzip(data []byte) ([]byte, error) {
	br := bitio.NewBitReaderBytes(data)
	var d Decoder
	cr, err := d.DecodeChunk(br, ChunkConfig{
		Start:              0,
		Stop:               StopAtEOF,
		StartsAtGzipHeader: true,
		SizeHint:           4 * len(data),
	})
	if err != nil {
		return nil, err
	}
	out := cr.Raw
	if err := VerifyMembers(cr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// VerifyMembers checks ISIZE and CRC32 of every member recorded in cr
// against the resolved output bytes.
func VerifyMembers(cr *ChunkResult, out []byte) error {
	start := uint64(0)
	for i, ev := range cr.Members {
		if ev.DecompOffset < start || ev.DecompOffset > uint64(len(out)) {
			return errors.New("deflate: inconsistent member offsets")
		}
		size := ev.DecompOffset - start
		if uint32(size) != ev.Footer.ISize {
			return fmt.Errorf("deflate: member %d ISIZE mismatch: footer %d, decoded %d", i, ev.Footer.ISize, size)
		}
		crc := gzformat.UpdateCRC(0, out[start:ev.DecompOffset])
		if crc != ev.Footer.CRC32 {
			return fmt.Errorf("deflate: member %d CRC mismatch: footer %#x, computed %#x", i, ev.Footer.CRC32, crc)
		}
		start = ev.DecompOffset
	}
	return nil
}
