// Package deflate implements a custom Deflate (RFC 1951) decoder that
// can start at arbitrary *bit* offsets and decode in two stages: when
// the 32 KiB back-reference window is unknown, unresolved references are
// emitted as 16-bit marker symbols that are replaced once the window
// becomes available (paper §2.2). This is the decoding engine behind the
// parallel gzip reader; it also supports conventional single-stage
// decoding when a window is given, the fast path for Non-Compressed
// Blocks, and the fallback from two-stage to single-stage decoding once
// the sliding window no longer contains markers (paper §3.3).
package deflate

// Deflate format constants.
const (
	// WindowSize is the back-reference window of Deflate (RFC 1951 §2).
	WindowSize = 32768
	// MaxMatchLen is the longest back-reference copy.
	MaxMatchLen = 258
	// MinMatchLen is the shortest back-reference copy.
	MinMatchLen = 3
	// EndOfBlock is the literal-alphabet symbol terminating a block.
	EndOfBlock = 256

	// MaxLitSymbols and MaxDistSymbols bound the dynamic alphabets.
	MaxLitSymbols  = 286
	MaxDistSymbols = 30
	// NumPrecodeSymbols is the size of the code-length alphabet.
	NumPrecodeSymbols = 19
	// MaxPrecodeLen is the longest precode code length (3-bit entries).
	MaxPrecodeLen = 7

	// MarkerBase is the first 16-bit output value that denotes a marker
	// rather than a literal byte. Marker value MarkerBase+i stands for
	// position i within the (unknown) initial 32 KiB window, i.e. window
	// offset 0 is the oldest unknown byte (paper §2.2: "unique 15-bit
	// wide markers corresponding to the offset in the buffer").
	MarkerBase = 256
)

// BlockType enumerates the three Deflate block kinds (paper Figure 2).
type BlockType uint8

const (
	BlockStored  BlockType = 0
	BlockFixed   BlockType = 1
	BlockDynamic BlockType = 2
	blockInvalid BlockType = 3
)

func (t BlockType) String() string {
	switch t {
	case BlockStored:
		return "stored"
	case BlockFixed:
		return "fixed"
	case BlockDynamic:
		return "dynamic"
	}
	return "invalid"
}

// precodeOrder is the storage order of precode code lengths (RFC 1951 §3.2.7).
var precodeOrder = [NumPrecodeSymbols]uint8{
	16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
}

// Length code table: symbols 257..285 map to (base, extra bits).
var (
	lengthBase = [29]uint16{
		3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
		35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
	}
	lengthExtra = [29]uint8{
		0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
		3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
	}
)

// Distance code table: symbols 0..29 map to (base, extra bits).
var (
	distBase = [30]uint32{
		1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
		257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
		8193, 12289, 16385, 24577,
	}
	distExtra = [30]uint8{
		0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
		7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
	}
)

// Fixed Huffman code lengths (RFC 1951 §3.2.6).
var fixedLitLengths, fixedDistLengths []uint8

func init() {
	fixedLitLengths = make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		fixedLitLengths[i] = 8
	}
	for i := 144; i <= 255; i++ {
		fixedLitLengths[i] = 9
	}
	for i := 256; i <= 279; i++ {
		fixedLitLengths[i] = 7
	}
	for i := 280; i <= 287; i++ {
		fixedLitLengths[i] = 8
	}
	fixedDistLengths = make([]uint8, 32)
	for i := range fixedDistLengths {
		fixedDistLengths[i] = 5
	}
}

// FixedLitLengths returns a copy of the fixed literal code lengths; the
// compressor uses it to emit Fixed Blocks.
func FixedLitLengths() []uint8 { return append([]uint8(nil), fixedLitLengths...) }

// FixedDistLengths returns a copy of the fixed distance code lengths.
func FixedDistLengths() []uint8 { return append([]uint8(nil), fixedDistLengths...) }

// LengthCode returns the literal-alphabet symbol, extra-bit count and
// extra-bit value encoding a match length (3..258). Used by the
// compressor suite.
func LengthCode(length int) (sym uint16, extra uint8, extraVal uint32) {
	// Linear scan is fine for table construction; the compressor caches
	// a direct lookup (see internal/gzipw).
	for i := len(lengthBase) - 1; i >= 0; i-- {
		if int(lengthBase[i]) <= length {
			// Symbol 285 (index 28) encodes exactly 258 with 0 extra bits;
			// lengths 227..257 must use index 27.
			if i == 28 && length != 258 {
				continue
			}
			return uint16(257 + i), lengthExtra[i], uint32(length - int(lengthBase[i]))
		}
	}
	return 0, 0, 0
}

// DistCode returns the distance-alphabet symbol, extra-bit count and
// extra-bit value encoding a distance (1..32768).
func DistCode(dist int) (sym uint16, extra uint8, extraVal uint32) {
	for i := len(distBase) - 1; i >= 0; i-- {
		if int(distBase[i]) <= dist {
			return uint16(i), distExtra[i], uint32(dist - int(distBase[i]))
		}
	}
	return 0, 0, 0
}
