package deflate_test

// Edge cases of the rewritten inner loops that the differential fuzzer
// only hits probabilistically: overlapping back-references at every
// distance below the 8-byte copy width, and streams whose final Huffman
// codes land inside the last words of input, where the wide-refill fast
// path must hand off to the checked tail.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bitio"
	deflate "repro/internal/deflate"
	"repro/internal/gzipw"
)

func decodeGzip(t *testing.T, comp []byte, twoStage bool) []byte {
	t.Helper()
	var dec deflate.Decoder
	cr, err := dec.DecodeChunk(bitio.NewBitReaderBytes(comp), deflate.ChunkConfig{
		Stop: deflate.StopAtEOF, StartsAtGzipHeader: true, TwoStage: twoStage,
	})
	if err != nil {
		t.Fatalf("decode (twoStage=%v): %v", twoStage, err)
	}
	segs, err := cr.Resolved(nil)
	if err != nil {
		t.Fatalf("resolve (twoStage=%v): %v", twoStage, err)
	}
	var out []byte
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// TestOverlapDistances round-trips periodic data whose repeat period
// steers the compressor toward back-references at that distance — every
// distance below the 8-byte copy width, plus straddling ones. The
// overlap-safe replication path must reproduce the pattern exactly in
// both the raw and the marker-resolution pipelines.
func TestOverlapDistances(t *testing.T) {
	for _, dist := range []int{1, 2, 3, 4, 5, 6, 7, 8, 13} {
		t.Run(fmt.Sprintf("dist=%d", dist), func(t *testing.T) {
			pattern := make([]byte, dist)
			for i := range pattern {
				pattern[i] = byte('a' + i)
			}
			// A literal prefix so the first match has history to copy
			// from, then enough repetition for long matches.
			data := append([]byte("0123456789abcdef~!@#"), bytes.Repeat(pattern, 4096/dist+2)...)
			for _, level := range []int{1, 9} {
				comp, _, err := gzipw.Compress(data, gzipw.Options{Level: level})
				if err != nil {
					t.Fatal(err)
				}
				for _, twoStage := range []bool{false, true} {
					if got := decodeGzip(t, comp, twoStage); !bytes.Equal(got, data) {
						t.Fatalf("level %d twoStage=%v: round trip mismatch", level, twoStage)
					}
				}
			}
		})
	}
}

// TestNearEndRefills sweeps tiny members so the final Huffman codes and
// the 8-byte gzip footer land within the last input words at every
// alignment: the wide-refill guard (pos+8 <= len) must hand off to the
// checked byte-at-a-time tail without losing or inventing bits.
func TestNearEndRefills(t *testing.T) {
	seed := []byte("near-end refills: the quick brown fox jumps over the lazy dog; ")
	for _, level := range []int{1, 6, 9} {
		for n := 0; n <= 300; n++ {
			data := bytes.Repeat(seed, n/len(seed)+1)[:n]
			comp, _, err := gzipw.Compress(data, gzipw.Options{Level: level})
			if err != nil {
				t.Fatal(err)
			}
			if got := decodeGzip(t, comp, false); !bytes.Equal(got, data) {
				t.Fatalf("level %d n=%d: round trip mismatch", level, n)
			}
		}
	}
}
