package deflate

import "errors"

// ErrBadMarker reports a marker that points outside the supplied window,
// which indicates corruption or a wrong window.
var ErrBadMarker = errors.New("deflate: marker outside window")

// ResolveMarkers replaces the 16-bit symbols of src with bytes: values
// below MarkerBase are literals, the rest index into window, which holds
// the (up to) 32 KiB of decompressed data preceding the chunk. This is
// the second stage of two-stage decompression (paper §2.2); Table 2
// benchmarks it as "Marker replacement".
//
// dst must have length len(src). A window shorter than 32 KiB (chunk
// near the start of the stream) is aligned to the *end* of the virtual
// 32 KiB window, matching how markers were assigned.
func ResolveMarkers(dst []byte, src []uint16, window []byte) error {
	shift := WindowSize - len(window)
	// Literal runs dominate (markers can only reference the first
	// 32 KiB of the chunk), so resolve four symbols per iteration:
	// MarkerBase is a power of two, making one OR-compare a "no marker
	// among these four" test.
	i := 0
	for ; i+4 <= len(src) && i+4 <= len(dst); i += 4 {
		v0, v1, v2, v3 := src[i], src[i+1], src[i+2], src[i+3]
		if v0|v1|v2|v3 < MarkerBase {
			dst[i] = byte(v0)
			dst[i+1] = byte(v1)
			dst[i+2] = byte(v2)
			dst[i+3] = byte(v3)
			continue
		}
		for k, v := range [4]uint16{v0, v1, v2, v3} {
			if v < MarkerBase {
				dst[i+k] = byte(v)
				continue
			}
			idx := int(v-MarkerBase) - shift
			if idx < 0 || idx >= len(window) {
				return ErrBadMarker
			}
			dst[i+k] = window[idx]
		}
	}
	for ; i < len(src); i++ {
		v := src[i]
		if v < MarkerBase {
			dst[i] = byte(v)
			continue
		}
		idx := int(v-MarkerBase) - shift
		if idx < 0 || idx >= len(window) {
			return ErrBadMarker
		}
		dst[i] = window[idx]
	}
	return nil
}

// ResolveSymbols resolves a []uint16 tail in place against window,
// producing bytes. Used for the cheap serial window propagation between
// chunks (paper §2.2: only the last 32 KiB must be propagated serially).
func ResolveSymbols(src []uint16, window []byte) ([]byte, error) {
	dst := make([]byte, len(src))
	if err := ResolveMarkers(dst, src, window); err != nil {
		return nil, err
	}
	return dst, nil
}

// HasMarkers reports whether any symbol in src is a marker.
func HasMarkers(src []uint16) bool {
	for _, v := range src {
		if v >= MarkerBase {
			return true
		}
	}
	return false
}

// TailSymbols returns the last n output symbols of the chunk ending at
// decompressed offset end (end <= TotalOut). Raw bytes are widened to
// uint16. It allocates at most n entries.
func (cr *ChunkResult) TailSymbols(end uint64, n int) []uint16 {
	if end > cr.TotalOut() {
		end = cr.TotalOut()
	}
	if uint64(n) > end {
		n = int(end)
	}
	out := make([]uint16, n)
	pos := n
	// Fill from the raw segment first (it is the later segment).
	rawEnd := int64(end) - int64(len(cr.Marked))
	if rawEnd > 0 {
		take := int64(pos)
		if take > rawEnd {
			take = rawEnd
		}
		for i := int64(0); i < take; i++ {
			pos--
			out[pos] = uint16(cr.Raw[rawEnd-1-i])
		}
	}
	mEnd := int64(end)
	if m := int64(len(cr.Marked)); mEnd > m {
		mEnd = m
	}
	for i := int64(0); i < int64(pos); i++ {
		out[int64(pos)-1-i] = cr.Marked[mEnd-1-i]
	}
	return out
}

// WindowAt computes the resolved 32 KiB window for the position end
// within this chunk, given the resolved window that preceded the chunk.
// It resolves at most 32 Ki symbols, so it is cheap enough to run
// serially while full marker replacement happens in parallel.
func (cr *ChunkResult) WindowAt(end uint64, prevWindow []byte) ([]byte, error) {
	tail := cr.TailSymbols(end, WindowSize)
	resolved, err := ResolveSymbols(tail, prevWindow)
	if err != nil {
		return nil, err
	}
	if len(resolved) >= WindowSize {
		return resolved, nil
	}
	// The chunk produced fewer than 32 KiB up to end; prepend from the
	// previous window.
	need := WindowSize - len(resolved)
	if need > len(prevWindow) {
		need = len(prevWindow)
	}
	win := make([]byte, 0, need+len(resolved))
	win = append(win, prevWindow[len(prevWindow)-need:]...)
	win = append(win, resolved...)
	return win, nil
}

// Resolved returns the chunk's decompressed bytes as up to two segments
// (resolved-marked, raw), avoiding a copy of the raw segment. window is
// only needed when a marked segment exists.
func (cr *ChunkResult) Resolved(window []byte) ([][]byte, error) {
	var segs [][]byte
	if len(cr.Marked) > 0 {
		dst := make([]byte, len(cr.Marked))
		if err := ResolveMarkers(dst, cr.Marked, window); err != nil {
			return nil, err
		}
		segs = append(segs, dst)
	}
	if len(cr.Raw) > 0 {
		segs = append(segs, cr.Raw)
	}
	return segs, nil
}
