package deflate_test

// Ablation benchmark for the paper's §1.3 claim that index-primed
// decompression delegated to zlib "is more than twice as fast as the
// two-stage decompression": the same chunk of a real gzip file is
// decoded (a) two-stage with markers, (b) single-stage with the known
// window on the custom decoder, (c) delegated to stdlib flate via
// Realign.

import (
	"testing"

	"repro/internal/bitio"
	deflate "repro/internal/deflate"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

func chunkFixture(b *testing.B) (comp []byte, start, end gzipw.BlockOffset, window []byte, size int) {
	b.Helper()
	data := workloads.SilesiaLike(8<<20, 17)
	comp, meta, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	// A ~2 MiB chunk starting mid-file.
	for _, bo := range meta.Blocks {
		if bo.Decomp >= 2<<20 && !bo.Final && start.Bit == 0 {
			start = bo
		}
		if start.Bit != 0 && bo.Decomp >= start.Decomp+(2<<20) && !bo.Final {
			end = bo
			break
		}
	}
	if start.Bit == 0 || end.Bit == 0 {
		b.Fatal("no suitable chunk found")
	}
	window = data[start.Decomp-deflate.WindowSize : start.Decomp]
	size = int(end.Decomp - start.Decomp)
	return comp, start, end, window, size
}

func BenchmarkChunkDecodeTwoStage(b *testing.B) {
	comp, start, end, window, size := chunkFixture(b)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dec deflate.Decoder
		cr, err := dec.DecodeChunk(bitio.NewBitReaderBytes(comp), deflate.ChunkConfig{
			Start: start.Bit, Stop: end.Bit, TwoStage: true, SizeHint: size,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Include marker replacement: that is the full two-stage cost.
		if _, err := cr.Resolved(window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkDecodeSingleStage(b *testing.B) {
	comp, start, end, window, size := chunkFixture(b)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dec deflate.Decoder
		cr, err := dec.DecodeChunk(bitio.NewBitReaderBytes(comp), deflate.ChunkConfig{
			Start: start.Bit, Stop: end.Bit, Window: window, SizeHint: size,
		})
		if err != nil {
			b.Fatal(err)
		}
		if cr.TotalOut() != uint64(size) {
			b.Fatalf("decoded %d, want %d", cr.TotalOut(), size)
		}
	}
}

func BenchmarkChunkDecodeDelegated(b *testing.B) {
	comp, start, end, window, size := chunkFixture(b)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := deflate.DelegateWindow(comp, start.Bit, end.Bit, window, size)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != size {
			b.Fatal("size mismatch")
		}
	}
}
