package deflate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// This file implements the paper's "delegate decompression to zlib when
// the index has been loaded" optimization (§1.3, §3.3: "If a window
// exists in the index for a chunk offset, then the decompression task
// will delegate decompression to zlib. ... This is more than twice as
// fast as the two-stage decompression").
//
// zlib can resume at a bit offset via inflatePrime; Go's compress/flate
// cannot. Nor can the chunk simply be bit-shifted to offset 0: stored
// blocks align their LEN fields to *stream* byte boundaries, so a shift
// by k != 0 corrupts every stored block in the chunk. Instead the
// stream is primed: a sequence of empty Deflate blocks totaling
// ≡ startBit (mod 8) bits is prepended, the original bytes follow
// untouched (their byte boundaries — and thus stored-block alignment —
// are preserved), and an empty final stored block is appended at the
// exact end offset. Empty blocks emit no output, so the preset
// dictionary window is unaffected. An empty fixed block is 10 bits
// (residue 2); an empty dynamic block with a hand-built header is
// 97 bits (residue 1); compositions of the two reach every residue.

// ErrDelegate reports that the fast stdlib-delegated path could not
// decode the chunk (e.g. a gzip member boundary lies inside it); the
// caller falls back to the custom decoder.
var ErrDelegate = errors.New("deflate: cannot delegate chunk")

// lsbWriter packs bits LSB-first (Deflate bit order) for the priming
// prefix. Huffman codes go MSB-of-code first, per RFC 1951 §3.1.1.
type lsbWriter struct {
	buf []byte
	n   uint64
}

func (w *lsbWriter) bit(b uint) {
	if w.n%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.n/8] |= 1 << (w.n % 8)
	}
	w.n++
}

// bits writes the low n bits of v, least significant first.
func (w *lsbWriter) bits(v uint64, n uint) {
	for i := uint(0); i < n; i++ {
		w.bit(uint(v >> i & 1))
	}
}

// code writes a Huffman code of n bits, most significant first.
func (w *lsbWriter) code(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.bit(uint(v >> uint(i) & 1))
	}
}

// writeEmptyFixed emits a non-final Fixed Block containing only the
// end-of-block symbol: 10 bits total (residue 2 mod 8).
func (w *lsbWriter) writeEmptyFixed() {
	w.bits(0, 1) // BFINAL
	w.bits(1, 2) // BTYPE fixed
	w.code(0, 7) // EOB (fixed code for symbol 256)
}

// writeEmptyDynamic emits a non-final Dynamic Block containing only the
// end-of-block symbol, constructed to be 97 bits (odd residue):
// literal code {0:len1, 256:len1}, one distance code of length 1,
// precode {18:len1, 0:len2, 1:len2}.
func (w *lsbWriter) writeEmptyDynamic() {
	w.bits(0, 1)  // BFINAL
	w.bits(2, 2)  // BTYPE dynamic
	w.bits(0, 5)  // HLIT  -> 257 literal lengths
	w.bits(0, 5)  // HDIST -> 1 distance length
	w.bits(15, 4) // HCLEN -> 19 precode entries
	// Precode lengths in the fixed order 16,17,18,0,8,7,9,6,10,5,11,4,
	// 12,3,13,2,14,1,15.
	lens := map[int]uint64{18: 1, 0: 2, 1: 2}
	for _, sym := range [19]int{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15} {
		w.bits(lens[sym], 3)
	}
	// Canonical precode: 18 -> 0 (1 bit), 0 -> 10, 1 -> 11.
	sym18 := func(rep uint64) { w.code(0, 1); w.bits(rep-11, 7) }
	sym0 := func() { w.code(2, 2) }
	sym1 := func() { w.code(3, 2) }
	_ = sym0
	// 258 code lengths: lit 0 -> 1, lits 1..255 -> 0 (via two repeats),
	// lit 256 (EOB) -> 1, dist 0 -> 1.
	sym1()
	sym18(138)
	sym18(117)
	sym1()
	sym1()
	// Literal code: {0 -> 0, 256 -> 1}; emit EOB.
	w.code(1, 1)
}

// writePriming emits empty blocks totaling ≡ k (mod 8) bits.
func (w *lsbWriter) writePriming(k uint64) {
	rest := k % 8
	if rest%2 == 1 {
		w.writeEmptyDynamic() // 97 bits ≡ 1
		rest = (rest + 7) % 8 // consumed residue 1
	}
	for i := uint64(0); i < rest/2; i++ {
		w.writeEmptyFixed() // 10 bits ≡ 2
	}
}

// Realign builds a complete, self-terminating Deflate stream whose
// payload is the bit range [startBit, endBit) of data: priming blocks
// bring the stream position to startBit mod 8, the original bytes are
// appended verbatim (preserving stored-block byte alignment), and an
// empty final stored block terminates the stream at the exact end
// offset.
func Realign(data []byte, startBit, endBit uint64) ([]byte, error) {
	if endBit < startBit || (endBit+7)/8 > uint64(len(data))*8 {
		return nil, fmt.Errorf("%w: bad bit range [%d, %d)", ErrDelegate, startBit, endBit)
	}
	n := endBit - startBit
	k := startBit % 8
	w := &lsbWriter{}
	w.writePriming(k)
	if w.n%8 != k {
		return nil, fmt.Errorf("%w: priming residue %d != %d", ErrDelegate, w.n%8, k)
	}

	P := w.n // priming bits; P ≡ k (mod 8)
	base := startBit / 8
	if k != 0 {
		// The priming prefix ends k bits into its last byte; the top
		// 8-k bits of the original start byte complete it.
		w.buf[len(w.buf)-1] |= data[base] &^ byte(1<<k-1)
		base++
	}
	endByte := (endBit + 7) / 8
	if base < endByte {
		w.buf = append(w.buf, data[base:endByte]...)
	}
	total := P + n // stream position right after the payload

	// Terminate: clear bits at/after `total`, set BFINAL there, BTYPE=00
	// and zero padding follow, then byte-aligned LEN=0, NLEN=0xFFFF.
	//
	// When endBit is the *canonical* offset of a stored block (§3.4.1:
	// 3 bits before its byte-aligned LEN field), the real stream's
	// preceding block ended up to 7 padding bits earlier, and flate
	// parses the header there instead: it sees BFINAL=0 (real padding),
	// BTYPE=00, skips the rest of the padding — including the BFINAL
	// bit set below — and consumes the appended LEN=0/NLEN as an empty
	// non-final stored block. A second, byte-aligned final empty stored
	// block therefore follows: the dynamic-end case never reads it, the
	// stored-end case terminates on it.
	hdrEnd := (total + 3 + 7) / 8
	for uint64(len(w.buf)) < hdrEnd {
		w.buf = append(w.buf, 0)
	}
	w.buf = w.buf[:hdrEnd]
	idx, bit := total/8, total%8
	w.buf[idx] &= byte(1<<bit) - 1
	w.buf[idx] |= 1 << bit
	for i := idx + 1; uint64(i) < hdrEnd; i++ {
		w.buf[i] = 0
	}
	return append(w.buf, 0x00, 0x00, 0xFF, 0xFF, 0x01, 0x00, 0x00, 0xFF, 0xFF), nil
}

// DelegateWindow decompresses the Deflate bit range [startBit, endBit)
// of data using compress/flate with window as the preset dictionary.
// The range must contain whole Deflate blocks of a single stream and
// produce exactly size bytes; otherwise ErrDelegate is returned and the
// caller must use the custom bit-level decoder.
func DelegateWindow(data []byte, startBit, endBit uint64, window []byte, size int) ([]byte, error) {
	buf, err := Realign(data, startBit, endBit)
	if err != nil {
		return nil, err
	}
	fr := flate.NewReaderDict(bytes.NewReader(buf), window)
	defer fr.Close()
	out := make([]byte, size)
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDelegate, err)
	}
	// The chunk must end exactly at size: the appended empty stored
	// block (or the member's real final block) must be next.
	var probe [1]byte
	if n, err := fr.Read(probe[:]); n != 0 || (err != nil && err != io.EOF) {
		return nil, fmt.Errorf("%w: chunk produced more than %d bytes", ErrDelegate, size)
	}
	return out, nil
}

// DelegateMembers decompresses size bytes of whole, byte-aligned gzip
// members starting at byteOff, using compress/gzip (which also verifies
// each member's CRC32). This is the fast path for chunks that begin at
// a member boundary — BGZF groups in particular (§3.4.4).
func DelegateMembers(data []byte, byteOff int64, size int) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data[byteOff:]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDelegate, err)
	}
	defer zr.Close()
	out := make([]byte, size)
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDelegate, err)
	}
	return out, nil
}
