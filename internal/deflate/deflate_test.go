package deflate

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

// gzipCompress compresses data with the standard library at the given level.
func gzipCompress(t testing.TB, data []byte, level int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testPayloads builds inputs with different compression characteristics.
func testPayloads(seed int64, n int) map[string][]byte {
	rng := rand.New(rand.NewSource(seed))
	random := make([]byte, n)
	rng.Read(random)

	text := make([]byte, 0, n)
	words := []string{"how", "much", "wood", "would", "a", "woodchuck", "chuck", "if", "could", "the", "quick", "brown", "fox"}
	for len(text) < n {
		text = append(text, words[rng.Intn(len(words))]...)
		text = append(text, ' ')
	}
	text = text[:n]

	runs := make([]byte, 0, n)
	for len(runs) < n {
		b := byte(rng.Intn(4))
		k := 1 + rng.Intn(300)
		for i := 0; i < k && len(runs) < n; i++ {
			runs = append(runs, b)
		}
	}

	// base64-style data: printable, almost no repeated substrings, so
	// Deflate compresses it with Huffman coding alone (paper §4.4).
	const b64alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	b64 := make([]byte, n)
	for i := range b64 {
		if i%77 == 76 {
			b64[i] = '\n'
			continue
		}
		b64[i] = b64alpha[rng.Intn(64)]
	}

	return map[string][]byte{"random": random, "text": text, "runs": runs, "base64": b64}
}

func TestDecompressGzipMatchesStdlib(t *testing.T) {
	for name, data := range testPayloads(1, 300_000) {
		for _, level := range []int{0, 1, 6, 9} {
			comp := gzipCompress(t, data, level)
			got, err := DecompressGzip(comp)
			if err != nil {
				t.Fatalf("%s level %d: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: output mismatch (%d vs %d bytes)", name, level, len(got), len(data))
			}
		}
	}
}

func TestDecompressMultiMember(t *testing.T) {
	var comp bytes.Buffer
	var want []byte
	for i := 0; i < 5; i++ {
		part := testPayloads(int64(i), 50_000)["text"]
		comp.Write(gzipCompress(t, part, 6))
		want = append(want, part...)
	}
	got, err := DecompressGzip(comp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("multi-member output mismatch")
	}
}

func TestDecompressEmpty(t *testing.T) {
	comp := gzipCompress(t, nil, 6)
	got, err := DecompressGzip(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestBlockStartsAreParseable(t *testing.T) {
	data := testPayloads(2, 400_000)["text"]
	comp := gzipCompress(t, data, 6)
	br := bitio.NewBitReaderBytes(comp)
	var d Decoder
	cr, err := d.DecodeChunk(br, ChunkConfig{Start: 0, Stop: StopAtEOF, StartsAtGzipHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.BlockStarts) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(cr.BlockStarts))
	}
	// Every recorded non-final block start must parse as a valid block
	// header at that exact offset.
	for _, bs := range cr.BlockStarts {
		if err := br.SeekBits(bs.Bit); err != nil {
			t.Fatal(err)
		}
		final, typ, err := ParseBlockHeader(br)
		if err != nil {
			t.Fatal(err)
		}
		if final != bs.Final || typ != bs.Type {
			t.Fatalf("offset %d: got final=%v type=%v want final=%v type=%v",
				bs.Bit, final, typ, bs.Final, bs.Type)
		}
	}
}

// decodeAll decodes a gzip buffer and returns output plus block starts.
func decodeAll(t testing.TB, comp []byte) ([]byte, *ChunkResult) {
	t.Helper()
	br := bitio.NewBitReaderBytes(comp)
	var d Decoder
	cr, err := d.DecodeChunk(br, ChunkConfig{Start: 0, Stop: StopAtEOF, StartsAtGzipHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	return cr.Raw, cr
}

func TestTwoStageEquivalence(t *testing.T) {
	// Decode from a mid-stream block with an unknown window; after
	// marker replacement the output must equal the serial suffix.
	for name, data := range testPayloads(3, 400_000) {
		comp := gzipCompress(t, data, 6)
		want, cr := decodeAll(t, comp)
		if len(cr.BlockStarts) < 4 {
			continue // random data may end up in few stored blocks
		}
		for _, pick := range []int{1, len(cr.BlockStarts) / 2, len(cr.BlockStarts) - 1} {
			bs := cr.BlockStarts[pick]
			if bs.Final {
				continue
			}
			br := bitio.NewBitReaderBytes(comp)
			var d Decoder
			two, err := d.DecodeChunk(br, ChunkConfig{Start: bs.Bit, Stop: StopAtEOF, TwoStage: true})
			if err != nil {
				t.Fatalf("%s block %d: %v", name, pick, err)
			}
			// The window is the 32 KiB preceding the block.
			start := bs.DecompOffset
			wstart := uint64(0)
			if start > WindowSize {
				wstart = start - WindowSize
			}
			window := want[wstart:start]
			segs, err := two.Resolved(window)
			if err != nil {
				t.Fatalf("%s block %d: resolve: %v", name, pick, err)
			}
			var got []byte
			for _, s := range segs {
				got = append(got, s...)
			}
			if !bytes.Equal(got, want[start:]) {
				t.Fatalf("%s block %d: two-stage mismatch (%d vs %d bytes)",
					name, pick, len(got), len(want)-int(start))
			}
		}
	}
}

func TestStopConditionMatchesBlockStarts(t *testing.T) {
	data := testPayloads(4, 500_000)["text"]
	comp := gzipCompress(t, data, 6)
	want, full := decodeAll(t, comp)

	stop := uint64(len(comp)) * 8 / 2 // stop near the middle
	br := bitio.NewBitReaderBytes(comp)
	var d Decoder
	first, err := d.DecodeChunk(br, ChunkConfig{Start: 0, Stop: stop, StartsAtGzipHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.EndIsEOF {
		t.Fatal("expected mid-stream stop")
	}
	// EndBit must be a recorded non-final Dynamic/Stored block start.
	found := false
	var at BlockStart
	for _, bs := range full.BlockStarts {
		if bs.Bit == first.EndBit {
			found, at = true, bs
			break
		}
	}
	if !found {
		t.Fatalf("EndBit %d is not a known block start", first.EndBit)
	}
	if at.Final || at.Type == BlockFixed {
		t.Fatalf("stopped at non-qualifying block %+v", at)
	}
	if first.TotalOut() != at.DecompOffset {
		t.Fatalf("chunk output %d != block decomp offset %d", first.TotalOut(), at.DecompOffset)
	}

	// Continue from EndBit with the known window; total must match.
	wstart := uint64(0)
	if at.DecompOffset > WindowSize {
		wstart = at.DecompOffset - WindowSize
	}
	rest, err := d.DecodeChunk(br, ChunkConfig{
		Start: first.EndBit, Stop: StopAtEOF, Window: want[wstart:at.DecompOffset],
	})
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]byte(nil), first.Raw...), rest.Raw...)
	if !bytes.Equal(got, want) {
		t.Fatal("stitched output mismatch")
	}
}

func TestMarkerFallback(t *testing.T) {
	// Base64-style data compresses almost entirely via Huffman coding
	// with very few back-references, so markers stop propagating and the
	// decoder falls back to single-stage raw output (paper §4.4: "This
	// enables the decoder to replace the two-stage method with
	// single-stage decompression after a while").
	data := testPayloads(5, 400_000)["base64"]
	comp := gzipCompress(t, data, 6)
	_, full := decodeAll(t, comp)
	var bs BlockStart
	for _, b := range full.BlockStarts {
		if !b.Final && b.Type == BlockDynamic && b.DecompOffset > 0 {
			bs = b
			break
		}
	}
	if bs.Bit == 0 {
		t.Skip("no suitable mid-stream block")
	}
	br := bitio.NewBitReaderBytes(comp)
	var d Decoder
	cr, err := d.DecodeChunk(br, ChunkConfig{Start: bs.Bit, Stop: StopAtEOF, TwoStage: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Raw) == 0 {
		t.Fatal("expected fallback to single-stage decoding")
	}
	if len(cr.Marked) > 3*WindowSize {
		t.Fatalf("marked segment unexpectedly large: %d", len(cr.Marked))
	}
}

func TestResolveMarkers(t *testing.T) {
	window := make([]byte, WindowSize)
	for i := range window {
		window[i] = byte(i * 13)
	}
	src := []uint16{'a', MarkerBase + 0, MarkerBase + WindowSize - 1, 'z', MarkerBase + 100}
	dst := make([]byte, len(src))
	if err := ResolveMarkers(dst, src, window); err != nil {
		t.Fatal(err)
	}
	want := []byte{'a', window[0], window[WindowSize-1], 'z', window[100]}
	if !bytes.Equal(dst, want) {
		t.Fatalf("got %v want %v", dst, want)
	}

	// Short window: markers align to the end of the virtual window.
	short := window[WindowSize-100:]
	src = []uint16{MarkerBase + WindowSize - 1, MarkerBase + WindowSize - 100}
	dst = make([]byte, 2)
	if err := ResolveMarkers(dst, src, short); err != nil {
		t.Fatal(err)
	}
	if dst[0] != short[99] || dst[1] != short[0] {
		t.Fatalf("short window resolution wrong: %v", dst)
	}

	// Marker before the short window start is an error.
	if err := ResolveMarkers(dst, []uint16{MarkerBase + WindowSize - 101, 0}, short); err != ErrBadMarker {
		t.Fatalf("got %v", err)
	}
}

func TestTailSymbolsAndWindowAt(t *testing.T) {
	cr := &ChunkResult{
		Marked: []uint16{10, 11, MarkerBase + 5, 13},
		Raw:    []byte{20, 21, 22},
	}
	tail := cr.TailSymbols(cr.TotalOut(), 5)
	want := []uint16{MarkerBase + 5, 13, 20, 21, 22}
	for i := range want {
		if tail[i] != want[i] {
			t.Fatalf("tail = %v want %v", tail, want)
		}
	}
	tail = cr.TailSymbols(3, 2)
	if tail[0] != 11 || tail[1] != MarkerBase+5 {
		t.Fatalf("tail(3,2) = %v", tail)
	}

	window := make([]byte, WindowSize)
	window[WindowSize-1] = 99
	window[5] = 55
	win, err := cr.WindowAt(cr.TotalOut(), window)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != WindowSize {
		t.Fatalf("window length %d", len(win))
	}
	// Last 7 bytes: resolved chunk output.
	wantTail := []byte{10, 11, 55, 13, 20, 21, 22}
	if !bytes.Equal(win[WindowSize-7:], wantTail) {
		t.Fatalf("window tail = %v want %v", win[WindowSize-7:], wantTail)
	}
	// Preceding bytes come from the previous window.
	if win[WindowSize-8] != 99 {
		t.Fatal("window prefix not taken from previous window")
	}
}

func TestGarbageNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		garbage := make([]byte, 4096)
		rng.Read(garbage)
		br := bitio.NewBitReaderBytes(garbage)
		var d Decoder
		for off := uint64(0); off < 64; off++ {
			_, err := d.DecodeChunk(br, ChunkConfig{
				Start: off, Stop: StopAtEOF, TwoStage: true, MaxDecompressed: 1 << 20,
			})
			_ = err // errors expected; panics are not
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputLimit(t *testing.T) {
	// Highly compressible data blows past a small output limit.
	data := bytes.Repeat([]byte{'x'}, 1<<20)
	comp := gzipCompress(t, data, 9)
	br := bitio.NewBitReaderBytes(comp)
	var d Decoder
	_, err := d.DecodeChunk(br, ChunkConfig{
		Start: 0, Stop: StopAtEOF, StartsAtGzipHeader: true, MaxDecompressed: 1000,
	})
	if err != ErrOutputLimit {
		t.Fatalf("got %v", err)
	}
}

func TestCorruptFooter(t *testing.T) {
	data := testPayloads(6, 10_000)["text"]
	comp := gzipCompress(t, data, 6)
	comp[len(comp)-2] ^= 0xFF // corrupt ISIZE
	if _, err := DecompressGzip(comp); err == nil {
		t.Fatal("expected ISIZE mismatch error")
	}
	comp = gzipCompress(t, data, 6)
	comp[len(comp)-6] ^= 0xFF // corrupt CRC
	if _, err := DecompressGzip(comp); err == nil {
		t.Fatal("expected CRC mismatch error")
	}
}

func TestLengthDistCodeHelpers(t *testing.T) {
	for length := MinMatchLen; length <= MaxMatchLen; length++ {
		sym, extra, val := LengthCode(length)
		if sym < 257 || sym > 285 {
			t.Fatalf("length %d: symbol %d", length, sym)
		}
		back := int(lengthBase[sym-257]) + int(val)
		if back != length {
			t.Fatalf("length %d: decodes to %d", length, back)
		}
		if uint8(extra) != lengthExtra[sym-257] {
			t.Fatalf("length %d: extra mismatch", length)
		}
	}
	for _, dist := range []int{1, 2, 3, 4, 5, 100, 257, 1024, 4096, 32768} {
		sym, _, val := DistCode(dist)
		if sym > 29 {
			t.Fatalf("dist %d: symbol %d", dist, sym)
		}
		back := int(distBase[sym]) + int(val)
		if back != dist {
			t.Fatalf("dist %d: decodes to %d", dist, back)
		}
	}
}

func TestRejectReasonStrings(t *testing.T) {
	for r := RejectReason(0); r < NumRejectReasons; r++ {
		if r.String() == "" {
			t.Fatalf("reason %d has no string", r)
		}
	}
}

func BenchmarkSerialDecode(b *testing.B) {
	// Part of Table 2/4 context: single-stage custom decoder bandwidth.
	data := testPayloads(7, 4<<20)["text"]
	comp := gzipCompress(b, data, 6)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressGzip(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStageDecode(b *testing.B) {
	data := testPayloads(8, 4<<20)["text"]
	comp := gzipCompress(b, data, 6)
	_, full := decodeAll(b, comp)
	var bs BlockStart
	for _, c := range full.BlockStarts {
		if !c.Final && c.DecompOffset > 0 {
			bs = c
			break
		}
	}
	if bs.Bit == 0 {
		b.Skip("no mid-stream block")
	}
	br := bitio.NewBitReaderBytes(comp)
	var d Decoder
	b.SetBytes(int64(uint64(len(data)) - bs.DecompOffset))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeChunk(br, ChunkConfig{Start: bs.Bit, Stop: StopAtEOF, TwoStage: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkerReplacement(b *testing.B) {
	// Table 2 "Marker replacement" row.
	rng := rand.New(rand.NewSource(9))
	src := make([]uint16, 8<<20)
	for i := range src {
		if rng.Intn(10) == 0 {
			src[i] = MarkerBase + uint16(rng.Intn(WindowSize))
		} else {
			src[i] = uint16(rng.Intn(256))
		}
	}
	window := make([]byte, WindowSize)
	rng.Read(window)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ResolveMarkers(dst, src, window); err != nil {
			b.Fatal(err)
		}
	}
}
