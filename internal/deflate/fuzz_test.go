package deflate_test

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"testing"

	"repro/internal/bitio"
	deflate "repro/internal/deflate"
)

// refCap bounds the reference decode so compression bombs cannot make
// the fuzzer crawl; inputs that legitimately exceed it are skipped.
const refCap = 1 << 20

// FuzzDeflateVsStdlib decodes arbitrary bytes as a raw Deflate stream
// with both compress/flate and the custom decoder: when stdlib
// succeeds the custom decoder must produce byte-identical output (in
// single-stage and two-stage mode both), and when stdlib rejects the
// stream the custom decoder must reject it too. This pins the
// rewritten fast loops — wide refills, inlined two-level table walks,
// 8-byte copies — to an independent implementation of the format.
//
// DecodeChunk expects a gzip footer after the final block, which raw
// Deflate does not have; on the success path the input is padded with
// 8 zero bytes that are consumed as the footer (they sit past the
// payload stdlib validated, so they cannot change block decoding), and
// only the first member's output is compared, in case trailing bytes
// happen to parse as another gzip member.
func FuzzDeflateVsStdlib(f *testing.F) {
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 80)
	for _, level := range []int{flate.HuffmanOnly, 1, 6, 9} {
		var buf bytes.Buffer
		w, _ := flate.NewWriter(&buf, level)
		w.Write(text)
		w.Close()
		f.Add(buf.Bytes())
	}
	var overlap bytes.Buffer
	w, _ := flate.NewWriter(&overlap, 9)
	w.Write(bytes.Repeat([]byte("abc"), 2000)) // dist-3 overlapping copies
	w.Close()
	f.Add(overlap.Bytes())
	f.Add([]byte{0x01, 0x02, 0x00, 0xfd, 0xff, 0xca, 0xfe}) // final stored block
	f.Add([]byte{0x03, 0x00})                               // final fixed block, EOB only
	f.Add(overlap.Bytes()[:20])                             // truncated mid-block

	f.Fuzz(func(t *testing.T, data []byte) {
		ref, refErr := io.ReadAll(io.LimitReader(flate.NewReader(bytes.NewReader(data)), refCap))
		if refErr == nil && len(ref) >= refCap {
			return // possibly truncated by the cap: not comparable
		}

		if refErr != nil {
			// Invalid payload: the custom decoder must reject it as well.
			// No footer pad — the stream must already fail inside block
			// decoding or at the (absent) footer.
			var dec deflate.Decoder
			cr, err := dec.DecodeChunk(bitio.NewBitReaderBytes(data), deflate.ChunkConfig{
				Stop: deflate.StopAtEOF, MaxDecompressed: 4 * refCap,
			})
			if err == nil {
				t.Fatalf("stdlib rejects (%v), custom decoder accepted %d bytes", refErr, cr.TotalOut())
			}
			return
		}

		padded := append(append([]byte{}, data...), make([]byte, 8)...)
		for _, twoStage := range []bool{false, true} {
			var dec deflate.Decoder
			cr, err := dec.DecodeChunk(bitio.NewBitReaderBytes(padded), deflate.ChunkConfig{
				Stop: deflate.StopAtEOF, TwoStage: twoStage, MaxDecompressed: 4 * refCap,
			})
			if errors.Is(err, deflate.ErrOutputLimit) {
				return // a trailing pseudo-member blew the cap: not comparable
			}
			if err != nil {
				t.Fatalf("stdlib accepts %d bytes, custom decoder (twoStage=%v) failed: %v", len(ref), twoStage, err)
			}
			segs, err := cr.Resolved(nil)
			if err != nil {
				t.Fatalf("marker resolution failed on a windowless stream (twoStage=%v): %v", twoStage, err)
			}
			var out []byte
			for _, s := range segs {
				out = append(out, s...)
			}
			if len(cr.Members) == 0 {
				t.Fatalf("successful decode recorded no member end (twoStage=%v)", twoStage)
			}
			if end := cr.Members[0].DecompOffset; end != uint64(len(ref)) {
				t.Fatalf("first member decoded %d bytes, stdlib %d (twoStage=%v)", end, len(ref), twoStage)
			}
			if !bytes.Equal(out[:len(ref)], ref) {
				t.Fatalf("output differs from stdlib (twoStage=%v)", twoStage)
			}
		}
	})
}
