package deflate

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/huffman"
)

// RejectReason identifies which of the sequential Dynamic Block header
// checks failed (paper §3.4.2, Table 1). The order of the enumerators is
// the order the checks run in, which is also the order that filters the
// most candidates first.
type RejectReason uint8

const (
	RejectNone RejectReason = iota
	// RejectEOF: not enough bits left for a complete header.
	RejectEOF
	// RejectFinalBlock: the final-block bit is set (the finder only
	// searches for non-final blocks).
	RejectFinalBlock
	// RejectBlockType: the two type bits are not 10 (dynamic).
	RejectBlockType
	// RejectCodeCount: HLIT is 30 or 31 (more than 286 literal codes).
	// The paper calls this check "invalid Precode size". HDIST is not
	// checked early (matching the paper's funnel); distance lengths
	// declared for the impossible symbols 30/31 are caught by the
	// distance-code check instead.
	RejectCodeCount
	// RejectPrecodeInvalid: the precode histogram is oversubscribed.
	RejectPrecodeInvalid
	// RejectPrecodeNonOptimal: the precode has unused leaves.
	RejectPrecodeNonOptimal
	// RejectPrecodeData: the precode-encoded code lengths are invalid
	// (bad repeat op, overrun, or missing end-of-block code).
	RejectPrecodeData
	// RejectDistInvalid / RejectDistNonOptimal: distance code invalid or
	// inefficient.
	RejectDistInvalid
	RejectDistNonOptimal
	// RejectLitInvalid / RejectLitNonOptimal: literal code invalid or
	// inefficient.
	RejectLitInvalid
	RejectLitNonOptimal

	NumRejectReasons
)

func (r RejectReason) String() string {
	switch r {
	case RejectNone:
		return "valid deflate header"
	case RejectEOF:
		return "unexpected end of data"
	case RejectFinalBlock:
		return "invalid final block"
	case RejectBlockType:
		return "invalid compression type"
	case RejectCodeCount:
		return "invalid precode size"
	case RejectPrecodeInvalid:
		return "invalid precode code"
	case RejectPrecodeNonOptimal:
		return "non-optimal precode code"
	case RejectPrecodeData:
		return "invalid precode-encoded data"
	case RejectDistInvalid:
		return "invalid distance code"
	case RejectDistNonOptimal:
		return "non-optimal distance code"
	case RejectLitInvalid:
		return "invalid literal code"
	case RejectLitNonOptimal:
		return "non-optimal literal code"
	}
	return fmt.Sprintf("reject(%d)", uint8(r))
}

// HeaderError wraps a RejectReason as an error for decode paths.
type HeaderError struct{ Reason RejectReason }

func (e *HeaderError) Error() string { return "deflate: " + e.Reason.String() }

var headerErrors [NumRejectReasons]*HeaderError

func init() {
	for i := range headerErrors {
		headerErrors[i] = &HeaderError{RejectReason(i)}
	}
}

// ErrCorrupt reports invalid compressed data encountered mid-block.
var ErrCorrupt = errors.New("deflate: corrupt compressed data")

// Decoder holds the reusable scratch state for decoding Deflate streams.
// A Decoder is not safe for concurrent use; each worker owns one.
type Decoder struct {
	br *bitio.BitReader

	lit, dist, precode huffman.Decoder
	hasDist            bool

	clens       [MaxLitSymbols + 32]uint8
	precodeLens [NumPrecodeSymbols]uint8
}

// Reset points the decoder at a bit reader.
func (d *Decoder) Reset(br *bitio.BitReader) { d.br = br }

// ParseBlockHeader reads the 3-bit block header at the current position.
func ParseBlockHeader(br *bitio.BitReader) (final bool, typ BlockType, err error) {
	v, err := br.Read(3)
	if err != nil {
		return false, blockInvalid, err
	}
	return v&1 == 1, BlockType(v >> 1), nil
}

// ParseDynamicHeader parses the Huffman definition part of a Dynamic
// Block header (everything after the 3 header bits), building d.lit and
// d.dist. It validates in the order of §3.4.2 and returns the first
// failed check; this is the "DBF custom deflate" trial-and-error path of
// Table 2, and also the header parser used by real decoding.
func (d *Decoder) ParseDynamicHeader() RejectReason {
	br := d.br
	v, err := br.Read(14)
	if err != nil {
		return RejectEOF
	}
	hlit := int(v & 31)
	hdist := int(v >> 5 & 31)
	hclen := int(v >> 10 & 15)
	if hlit > 29 {
		return RejectCodeCount
	}
	nlit := 257 + hlit
	ndist := 1 + hdist
	nclen := 4 + hclen

	// Read the precode code lengths (3 bits each, permuted order).
	for i := range d.precodeLens {
		d.precodeLens[i] = 0
	}
	var counts [MaxPrecodeLen + 1]int
	used := 0
	for i := 0; i < nclen; i++ {
		l, err := br.Read(3)
		if err != nil {
			return RejectEOF
		}
		d.precodeLens[precodeOrder[i]] = uint8(l)
		if l > 0 {
			counts[l]++
			used++
		}
	}
	if used == 0 {
		return RejectPrecodeInvalid
	}
	if err := huffman.ValidateCounts(counts[:], used, false); err != nil {
		if err == huffman.ErrOversubscribed {
			return RejectPrecodeInvalid
		}
		return RejectPrecodeNonOptimal
	}
	if err := d.precode.Init(d.precodeLens[:], false); err != nil {
		return RejectPrecodeInvalid
	}

	// Decode the literal+distance code lengths with the precode.
	total := nlit + ndist
	cl := d.clens[:total]
	i := 0
	for i < total {
		sym, err := d.precode.Decode(br)
		if err != nil {
			return RejectPrecodeData
		}
		switch {
		case sym < 16:
			cl[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return RejectPrecodeData
			}
			rep, err := br.Read(2)
			if err != nil {
				return RejectEOF
			}
			n := 3 + int(rep)
			if i+n > total {
				return RejectPrecodeData
			}
			prev := cl[i-1]
			for k := 0; k < n; k++ {
				cl[i] = prev
				i++
			}
		case sym == 17:
			rep, err := br.Read(3)
			if err != nil {
				return RejectEOF
			}
			n := 3 + int(rep)
			if i+n > total {
				return RejectPrecodeData
			}
			for k := 0; k < n; k++ {
				cl[i] = 0
				i++
			}
		default: // 18
			rep, err := br.Read(7)
			if err != nil {
				return RejectEOF
			}
			n := 11 + int(rep)
			if i+n > total {
				return RejectPrecodeData
			}
			for k := 0; k < n; k++ {
				cl[i] = 0
				i++
			}
		}
	}
	if cl[EndOfBlock] == 0 {
		// A block without an end-of-block code can never terminate.
		return RejectPrecodeData
	}

	// Distance code first: it is cheaper to validate (30 vs 286 symbols),
	// maximising early-exit value (paper §3.4.2: literal and distance
	// codes are only *initialized* after both were found valid).
	distLens := cl[nlit:total]
	// RFC 1951 reserves distance symbols 30 and 31: HDIST may declare
	// them, but a nonzero code length for either is invalid.
	for s := 30; s < len(distLens); s++ {
		if distLens[s] > 0 {
			return RejectDistInvalid
		}
	}
	if len(distLens) > 30 {
		distLens = distLens[:30]
	}
	distUsed := 0
	for _, l := range distLens {
		if l > 0 {
			distUsed++
		}
	}
	d.hasDist = distUsed > 0
	if distUsed > 0 {
		if err := huffman.Validate(distLens, distUsed == 1); err != nil {
			if err == huffman.ErrOversubscribed {
				return RejectDistInvalid
			}
			return RejectDistNonOptimal
		}
	}
	litLens := cl[:nlit]
	if err := huffman.Validate(litLens, false); err != nil {
		if err == huffman.ErrOversubscribed {
			return RejectLitInvalid
		}
		return RejectLitNonOptimal
	}

	// Both valid: build the decoding tables.
	if err := d.lit.Init(litLens, false); err != nil {
		return RejectLitInvalid
	}
	if distUsed > 0 {
		if err := d.dist.Init(distLens, distUsed == 1); err != nil {
			return RejectDistInvalid
		}
	}
	return RejectNone
}

// initFixed loads the fixed Huffman tables (Fixed Blocks, RFC 1951 §3.2.6).
func (d *Decoder) initFixed() error {
	if err := d.lit.Init(fixedLitLengths, false); err != nil {
		return err
	}
	if err := d.dist.Init(fixedDistLengths, false); err != nil {
		return err
	}
	d.hasDist = true
	return nil
}

// ParseStoredHeader parses a Non-Compressed Block's length fields. The
// 3 header bits must already be consumed; it skips the padding and
// validates LEN against NLEN. It returns LEN and the bit offset of the
// LEN field.
func ParseStoredHeader(br *bitio.BitReader) (length int, lenPos uint64, err error) {
	br.AlignToByte()
	lenPos = br.BitPos()
	v, err := br.Read(32)
	if err != nil {
		return 0, 0, err
	}
	l := uint16(v)
	nl := uint16(v >> 16)
	if l != ^nl {
		return 0, 0, ErrCorrupt
	}
	return int(l), lenPos, nil
}
