package deflate

import (
	"errors"
	"math"

	"repro/internal/bitio"
	"repro/internal/gzformat"
)

// ErrOutputLimit reports that a decode exceeded MaxDecompressed. The
// parallel reader uses it both as runaway protection against false
// positives and to emulate pugz's fixed output buffers (paper §1.2).
var ErrOutputLimit = errors.New("deflate: decompressed output limit exceeded")

// ErrNoDistanceCode reports a back-reference in a block that declared no
// usable distance code.
var ErrNoDistanceCode = errors.New("deflate: length symbol without distance code")

// StopAtEOF decodes to the end of the last gzip member.
const StopAtEOF = math.MaxUint64

// ChunkConfig parameterises DecodeChunk.
type ChunkConfig struct {
	// Start is the absolute bit offset of the first Deflate block header
	// (or of a gzip member header when StartsAtGzipHeader is set).
	Start uint64
	// Stop makes decoding halt at the first non-final Dynamic or
	// Non-Compressed block whose canonical offset is >= Stop. This stop
	// condition matches the block finder's search conditions exactly, so
	// the next chunk's key lines up (paper §3.3). Use StopAtEOF to decode
	// everything.
	Stop uint64
	// TwoStage selects marker-based decoding for an unknown window.
	// Otherwise Window (possibly empty) is the known initial window.
	TwoStage bool
	Window   []byte
	// StartsAtGzipHeader makes the decode begin with gzip header parsing.
	StartsAtGzipHeader bool
	// StopBeforeMember, when nonzero, ends the chunk after a member
	// footer whose following member would begin at/after this bit
	// offset. This is how BGZF chunk boundaries stop (paper §3.4.4):
	// they sit on member boundaries, not Deflate block boundaries.
	StopBeforeMember uint64
	// StopOnlyAtDynamic restricts the stop condition to Dynamic blocks.
	// The pugz emulation uses this: its block finder searches only for
	// Dynamic blocks, and §3.3 requires the stop condition to match the
	// finder's search conditions for chunk boundaries to line up.
	StopOnlyAtDynamic bool
	// MaxDecompressed aborts the decode when the output exceeds this
	// many symbols (0 = no limit).
	MaxDecompressed uint64
	// SizeHint pre-allocates output capacity.
	SizeHint int
}

// BlockStart records one Deflate block boundary inside a chunk.
type BlockStart struct {
	// Bit is the canonical bit offset of the block header: exact for
	// Dynamic and Fixed blocks; for non-final Non-Compressed Blocks it is
	// normalised to 3 bits before the byte-aligned LEN field, resolving
	// the padding ambiguity of §3.4.1.
	Bit uint64
	// DecompOffset is the decompressed position (within this chunk's
	// output) where the block starts.
	DecompOffset uint64
	Type         BlockType
	Final        bool
}

// MemberEvent records a gzip member boundary encountered mid-chunk.
type MemberEvent struct {
	// DecompOffset is the position in the chunk output where the member
	// ended.
	DecompOffset uint64
	Footer       gzformat.Footer
	// AtEOF is set when no further member follows.
	AtEOF bool
	// Header and HeaderEndBit describe the next member when !AtEOF.
	Header       gzformat.Header
	HeaderEndBit uint64
}

// ChunkResult is the output of one chunk decode: an optional marked
// segment (two-stage, 16-bit symbols) followed by an optional raw byte
// segment (single-stage or post-fallback).
type ChunkResult struct {
	StartBit uint64
	// EndBit is the canonical offset of the block that triggered the
	// stop condition (not consumed), or the position after the final
	// footer when EndIsEOF.
	EndBit   uint64
	EndIsEOF bool
	// TrailingData is set when bytes that are not a gzip member follow
	// the final footer.
	TrailingData bool

	Marked []uint16
	Raw    []byte

	Members     []MemberEvent
	BlockStarts []BlockStart

	// FirstHeader is the gzip header parsed when StartsAtGzipHeader.
	FirstHeader gzformat.Header
}

// TotalOut returns the number of decompressed symbols (= bytes after
// marker resolution).
func (cr *ChunkResult) TotalOut() uint64 {
	return uint64(len(cr.Marked)) + uint64(len(cr.Raw))
}

// chunkState is the mutable decode state shared by the block loops.
type chunkState struct {
	out16      []uint16
	out8       []byte
	window     []byte
	marked     bool
	lastMarker int64 // index in out16 of the newest marker; -1 = virtual initial window
	histStart  int64 // lowest valid history position (negative reaches into the window)
	maxOut     int
	scratch    []byte
}

func (st *chunkState) total() uint64 {
	return uint64(len(st.out16)) + uint64(len(st.out8))
}

// canFallback reports whether the last WindowSize outputs contain no
// marker, enabling the switch to single-stage decoding (paper §3.3).
func (st *chunkState) canFallback() bool {
	return st.marked && int64(len(st.out16))-st.lastMarker > WindowSize
}

// DecodeChunk decodes Deflate data according to cfg, reading from br.
// It is the single entry point used by sequential decompression, by
// speculative (two-stage) chunk workers and by index-based decoding.
func (d *Decoder) DecodeChunk(br *bitio.BitReader, cfg ChunkConfig) (*ChunkResult, error) {
	if err := br.SeekBits(cfg.Start); err != nil {
		return nil, err
	}
	d.br = br
	cr := &ChunkResult{StartBit: cfg.Start}
	st := &chunkState{
		marked:     cfg.TwoStage,
		window:     cfg.Window,
		lastMarker: -1,
		maxOut:     math.MaxInt,
	}
	if cfg.MaxDecompressed > 0 && cfg.MaxDecompressed < math.MaxInt {
		st.maxOut = int(cfg.MaxDecompressed)
	}
	if cfg.TwoStage {
		st.histStart = -WindowSize
		st.out16 = make([]uint16, 0, max(cfg.SizeHint, 64*1024))
	} else {
		st.histStart = -int64(len(cfg.Window))
		st.out8 = make([]byte, 0, max(cfg.SizeHint, 64*1024))
	}
	if cfg.StartsAtGzipHeader {
		hdr, err := gzformat.ParseHeader(br)
		if err != nil {
			return nil, err
		}
		cr.FirstHeader = hdr
	}

	for {
		if st.canFallback() {
			st.marked = false
		}
		headerPos := br.BitPos()
		final, typ, err := ParseBlockHeader(br)
		if err != nil {
			return nil, err
		}

		switch typ {
		case BlockStored:
			length, lenPos, err := ParseStoredHeader(br)
			if err != nil {
				return nil, err
			}
			canonical := headerPos
			if !final {
				canonical = lenPos - 3
				if !cfg.StopOnlyAtDynamic && canonical >= cfg.Stop {
					cr.EndBit = canonical
					d.finish(cr, st)
					return cr, nil
				}
			}
			cr.BlockStarts = append(cr.BlockStarts, BlockStart{canonical, st.total(), typ, final})
			if err := d.copyStored(st, length); err != nil {
				return nil, err
			}

		case BlockFixed:
			cr.BlockStarts = append(cr.BlockStarts, BlockStart{headerPos, st.total(), typ, final})
			if err := d.initFixed(); err != nil {
				return nil, err
			}
			if err := d.decodeHuffBlock(st); err != nil {
				return nil, err
			}

		case BlockDynamic:
			if !final && headerPos >= cfg.Stop {
				cr.EndBit = headerPos
				d.finish(cr, st)
				return cr, nil
			}
			cr.BlockStarts = append(cr.BlockStarts, BlockStart{headerPos, st.total(), typ, final})
			if r := d.ParseDynamicHeader(); r != RejectNone {
				return nil, headerErrors[r]
			}
			if err := d.decodeHuffBlock(st); err != nil {
				return nil, err
			}

		default:
			return nil, ErrCorrupt
		}

		if uint64(len(st.out16))+uint64(len(st.out8)) > uint64(st.maxOut) {
			return nil, ErrOutputLimit
		}

		if final {
			stop, err := d.memberEnd(cr, st, cfg.StopBeforeMember)
			if err != nil {
				return nil, err
			}
			if stop {
				d.finish(cr, st)
				return cr, nil
			}
		}
	}
}

// memberEnd handles the gzip footer after a final block and the start
// of the following member, if any. It reports whether the chunk ends.
func (d *Decoder) memberEnd(cr *ChunkResult, st *chunkState, stopBeforeMember uint64) (stop bool, err error) {
	br := d.br
	br.AlignToByte()
	footer, err := gzformat.ParseFooter(br)
	if err != nil {
		return false, err
	}
	ev := MemberEvent{DecompOffset: st.total(), Footer: footer}
	if br.RemainingBits() == 0 {
		ev.AtEOF = true
		cr.Members = append(cr.Members, ev)
		cr.EndIsEOF = true
		cr.EndBit = br.BitPos()
		return true, nil
	}
	endOfFooter := br.BitPos()
	if stopBeforeMember > 0 && endOfFooter >= stopBeforeMember {
		// The next member starts at/after the configured boundary; end
		// the chunk here without consuming its header.
		cr.Members = append(cr.Members, ev)
		cr.EndBit = endOfFooter
		return true, nil
	}
	hdr, err := gzformat.ParseHeader(br)
	if err != nil {
		// Trailing non-gzip data: stop cleanly at the footer.
		ev.AtEOF = true
		cr.Members = append(cr.Members, ev)
		cr.EndIsEOF = true
		cr.TrailingData = true
		cr.EndBit = endOfFooter
		return true, nil
	}
	ev.Header = hdr
	ev.HeaderEndBit = br.BitPos()
	cr.Members = append(cr.Members, ev)
	// The back-reference window does not cross member boundaries.
	st.histStart = int64(st.total())
	return false, nil
}

func (d *Decoder) finish(cr *ChunkResult, st *chunkState) {
	cr.Marked = st.out16
	cr.Raw = st.out8
}

// copyStored implements the Non-Compressed Block fast path (§3.3): the
// raw data is copied straight into the result buffer.
func (d *Decoder) copyStored(st *chunkState, length int) error {
	if length == 0 {
		return nil
	}
	br := d.br
	if !st.marked {
		p := len(st.out8)
		st.out8 = growBytes(st.out8, length)
		return br.ReadFull(st.out8[p : p+length])
	}
	if cap(st.scratch) < 65536 {
		st.scratch = make([]byte, 65536)
	}
	buf := st.scratch[:length]
	if err := br.ReadFull(buf); err != nil {
		return err
	}
	p := len(st.out16)
	st.out16 = growU16(st.out16, length)
	out := st.out16[p:]
	for i, b := range buf {
		out[i] = uint16(b)
	}
	return nil
}

// decodeHuffBlock decodes one Huffman-compressed block body in the
// current mode. d.lit/d.dist must be initialised.
func (d *Decoder) decodeHuffBlock(st *chunkState) error {
	if st.marked {
		return d.decodeHuffBlockMarked(st)
	}
	return d.decodeHuffBlockRaw(st)
}

// decodeHuffBlockMarked is the two-stage (first stage) decode loop:
// output symbols are 16-bit; back-references into the unknown initial
// window emit markers (paper §2.2, Figure 3).
func (d *Decoder) decodeHuffBlockMarked(st *chunkState) error {
	br := d.br
	out := st.out16
	lastMarker := st.lastMarker
	histStart := st.histStart
	maxOut := st.maxOut
	defer func() {
		st.out16 = out
		st.lastMarker = lastMarker
	}()
	for {
		sym, err := d.lit.Decode(br)
		if err != nil {
			return err
		}
		if sym < 256 {
			out = append(out, sym)
			continue
		}
		if sym == EndOfBlock {
			return nil
		}
		if sym > 285 {
			return ErrCorrupt
		}
		li := sym - 257
		length := int(lengthBase[li])
		if e := lengthExtra[li]; e > 0 {
			v, err := br.Read(uint(e))
			if err != nil {
				return err
			}
			length += int(v)
		}
		if !d.hasDist {
			return ErrNoDistanceCode
		}
		dsym, err := d.dist.Decode(br)
		if err != nil {
			return err
		}
		if dsym > 29 {
			return ErrCorrupt
		}
		dist := int(distBase[dsym])
		if e := distExtra[dsym]; e > 0 {
			v, err := br.Read(uint(e))
			if err != nil {
				return err
			}
			dist += int(v)
		}
		p := len(out)
		if int64(p)-int64(dist) < histStart {
			return ErrCorrupt
		}
		if p+length > maxOut {
			return ErrOutputLimit
		}
		if dist <= p {
			src := p - dist
			for k := 0; k < length; k++ {
				v := out[src+k]
				if v >= MarkerBase {
					lastMarker = int64(len(out))
				}
				out = append(out, v)
			}
		} else {
			for k := 0; k < length; k++ {
				pp := len(out)
				if dist <= pp {
					v := out[pp-dist]
					if v >= MarkerBase {
						lastMarker = int64(pp)
					}
					out = append(out, v)
				} else {
					off := WindowSize - (dist - pp)
					lastMarker = int64(pp)
					out = append(out, uint16(MarkerBase+off))
				}
			}
		}
	}
}

// decodeHuffBlockRaw is the conventional single-stage decode loop used
// when the window is known or after the marker-free fallback.
func (d *Decoder) decodeHuffBlockRaw(st *chunkState) error {
	br := d.br
	out := st.out8
	base := int64(len(st.out16))
	histStart := st.histStart
	maxOut := st.maxOut
	defer func() { st.out8 = out }()
	for {
		sym, err := d.lit.Decode(br)
		if err != nil {
			return err
		}
		if sym < 256 {
			out = append(out, byte(sym))
			continue
		}
		if sym == EndOfBlock {
			return nil
		}
		if sym > 285 {
			return ErrCorrupt
		}
		li := sym - 257
		length := int(lengthBase[li])
		if e := lengthExtra[li]; e > 0 {
			v, err := br.Read(uint(e))
			if err != nil {
				return err
			}
			length += int(v)
		}
		if !d.hasDist {
			return ErrNoDistanceCode
		}
		dsym, err := d.dist.Decode(br)
		if err != nil {
			return err
		}
		if dsym > 29 {
			return ErrCorrupt
		}
		dist := int(distBase[dsym])
		if e := distExtra[dsym]; e > 0 {
			v, err := br.Read(uint(e))
			if err != nil {
				return err
			}
			dist += int(v)
		}
		p := len(out)
		if base+int64(p)-int64(dist) < histStart {
			return ErrCorrupt
		}
		if int64(p)+int64(length) > int64(maxOut) {
			return ErrOutputLimit
		}
		if dist <= p {
			out = appendCopyWithin(out, dist, length)
			continue
		}
		// Reach back into the marked segment or the initial window.
		k := dist - p
		for length > 0 && k > 0 {
			b, ok := st.historyByte(k)
			if !ok {
				return ErrCorrupt
			}
			out = append(out, b)
			length--
			k--
		}
		if length > 0 {
			out = appendCopyWithin(out, dist, length)
		}
	}
}

// historyByte returns the byte k positions before the start of the raw
// segment: from the (marker-free by construction) tail of the marked
// segment, or from the known initial window.
func (st *chunkState) historyByte(k int) (byte, bool) {
	if n := len(st.out16); n >= k {
		v := st.out16[n-k]
		if v >= MarkerBase {
			return 0, false
		}
		return byte(v), true
	}
	j := k - len(st.out16)
	if j <= len(st.window) {
		return st.window[len(st.window)-j], true
	}
	return 0, false
}

// appendCopyWithin appends length bytes copied from dist back within
// out, handling the overlapping (run-generating) case.
func appendCopyWithin(out []byte, dist, length int) []byte {
	p := len(out)
	out = growBytes(out, length)
	dst := out[p : p+length]
	src := p - dist
	switch {
	case dist == 1:
		b := out[src]
		for i := range dst {
			dst[i] = b
		}
	case dist >= length:
		copy(dst, out[src:src+length])
	default:
		for i := range dst {
			dst[i] = out[src+i]
		}
	}
	return out
}

func growBytes(s []byte, n int) []byte {
	need := len(s) + n
	if need <= cap(s) {
		return s[:need]
	}
	c := 2 * cap(s)
	if c < need {
		c = need
	}
	if c < 1024 {
		c = 1024
	}
	ns := make([]byte, need, c)
	copy(ns, s)
	return ns
}

func growU16(s []uint16, n int) []uint16 {
	need := len(s) + n
	if need <= cap(s) {
		return s[:need]
	}
	c := 2 * cap(s)
	if c < need {
		c = need
	}
	if c < 1024 {
		c = 1024
	}
	ns := make([]uint16, need, c)
	copy(ns, s)
	return ns
}
