package deflate

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/bitio"
	"repro/internal/gzformat"
	"repro/internal/huffman"
)

// ErrOutputLimit reports that a decode exceeded MaxDecompressed. The
// parallel reader uses it both as runaway protection against false
// positives and to emulate pugz's fixed output buffers (paper §1.2).
var ErrOutputLimit = errors.New("deflate: decompressed output limit exceeded")

// ErrNoDistanceCode reports a back-reference in a block that declared no
// usable distance code.
var ErrNoDistanceCode = errors.New("deflate: length symbol without distance code")

// StopAtEOF decodes to the end of the last gzip member.
const StopAtEOF = math.MaxUint64

// ChunkConfig parameterises DecodeChunk.
type ChunkConfig struct {
	// Start is the absolute bit offset of the first Deflate block header
	// (or of a gzip member header when StartsAtGzipHeader is set).
	Start uint64
	// Stop makes decoding halt at the first non-final Dynamic or
	// Non-Compressed block whose canonical offset is >= Stop. This stop
	// condition matches the block finder's search conditions exactly, so
	// the next chunk's key lines up (paper §3.3). Use StopAtEOF to decode
	// everything.
	Stop uint64
	// TwoStage selects marker-based decoding for an unknown window.
	// Otherwise Window (possibly empty) is the known initial window.
	TwoStage bool
	Window   []byte
	// StartsAtGzipHeader makes the decode begin with gzip header parsing.
	StartsAtGzipHeader bool
	// StopBeforeMember, when nonzero, ends the chunk after a member
	// footer whose following member would begin at/after this bit
	// offset. This is how BGZF chunk boundaries stop (paper §3.4.4):
	// they sit on member boundaries, not Deflate block boundaries.
	StopBeforeMember uint64
	// StopOnlyAtDynamic restricts the stop condition to Dynamic blocks.
	// The pugz emulation uses this: its block finder searches only for
	// Dynamic blocks, and §3.3 requires the stop condition to match the
	// finder's search conditions for chunk boundaries to line up.
	StopOnlyAtDynamic bool
	// MaxDecompressed aborts the decode when the output exceeds this
	// many symbols (0 = no limit).
	MaxDecompressed uint64
	// StopAtOutput, when nonzero, ends the chunk cleanly at the first
	// block boundary where at least this many symbols have been
	// produced. Indexed decodes use it: the index records the chunk's
	// exact size, and the block at its end bit need not be
	// stop-eligible (a shard boundary can open with a final or Fixed
	// block). The caller truncates the possible overshoot.
	StopAtOutput uint64
	// SizeHint pre-allocates output capacity.
	SizeHint int
}

// BlockStart records one Deflate block boundary inside a chunk.
type BlockStart struct {
	// Bit is the canonical bit offset of the block header: exact for
	// Dynamic and Fixed blocks; for non-final Non-Compressed Blocks it is
	// normalised to 3 bits before the byte-aligned LEN field, resolving
	// the padding ambiguity of §3.4.1.
	Bit uint64
	// DecompOffset is the decompressed position (within this chunk's
	// output) where the block starts.
	DecompOffset uint64
	Type         BlockType
	Final        bool
}

// MemberEvent records a gzip member boundary encountered mid-chunk.
type MemberEvent struct {
	// DecompOffset is the position in the chunk output where the member
	// ended.
	DecompOffset uint64
	Footer       gzformat.Footer
	// AtEOF is set when no further member follows.
	AtEOF bool
	// Header and HeaderEndBit describe the next member when !AtEOF.
	Header       gzformat.Header
	HeaderEndBit uint64
}

// ChunkResult is the output of one chunk decode: an optional marked
// segment (two-stage, 16-bit symbols) followed by an optional raw byte
// segment (single-stage or post-fallback).
type ChunkResult struct {
	StartBit uint64
	// EndBit is the canonical offset of the block that triggered the
	// stop condition (not consumed), or the position after the final
	// footer when EndIsEOF.
	EndBit   uint64
	EndIsEOF bool
	// TrailingData is set when bytes that are not a gzip member follow
	// the final footer.
	TrailingData bool

	Marked []uint16
	Raw    []byte

	Members     []MemberEvent
	BlockStarts []BlockStart

	// FirstHeader is the gzip header parsed when StartsAtGzipHeader.
	FirstHeader gzformat.Header
}

// TotalOut returns the number of decompressed symbols (= bytes after
// marker resolution).
func (cr *ChunkResult) TotalOut() uint64 {
	return uint64(len(cr.Marked)) + uint64(len(cr.Raw))
}

// chunkState is the mutable decode state shared by the block loops.
type chunkState struct {
	out16      []uint16
	out8       []byte
	window     []byte
	marked     bool
	lastMarker int64 // index in out16 of the newest marker; -1 = virtual initial window
	histStart  int64 // lowest valid history position (negative reaches into the window)
	maxOut     int
	scratch    []byte
}

func (st *chunkState) total() uint64 {
	return uint64(len(st.out16)) + uint64(len(st.out8))
}

// canFallback reports whether the last WindowSize outputs contain no
// marker, enabling the switch to single-stage decoding (paper §3.3).
func (st *chunkState) canFallback() bool {
	return st.marked && int64(len(st.out16))-st.lastMarker > WindowSize
}

// DecodeChunk decodes Deflate data according to cfg, reading from br.
// It is the single entry point used by sequential decompression, by
// speculative (two-stage) chunk workers and by index-based decoding.
func (d *Decoder) DecodeChunk(br *bitio.BitReader, cfg ChunkConfig) (*ChunkResult, error) {
	if err := br.SeekBits(cfg.Start); err != nil {
		return nil, err
	}
	d.br = br
	cr := &ChunkResult{StartBit: cfg.Start}
	st := &chunkState{
		marked:     cfg.TwoStage,
		window:     cfg.Window,
		lastMarker: -1,
		maxOut:     math.MaxInt,
	}
	if cfg.MaxDecompressed > 0 && cfg.MaxDecompressed < math.MaxInt {
		st.maxOut = int(cfg.MaxDecompressed)
	}
	if cfg.TwoStage {
		st.histStart = -WindowSize
		st.out16 = make([]uint16, 0, max(cfg.SizeHint, 64*1024))
	} else {
		st.histStart = -int64(len(cfg.Window))
		st.out8 = make([]byte, 0, max(cfg.SizeHint, 64*1024))
	}
	if cfg.StartsAtGzipHeader {
		hdr, err := gzformat.ParseHeader(br)
		if err != nil {
			return nil, err
		}
		cr.FirstHeader = hdr
	}

	for {
		if cfg.StopAtOutput > 0 && st.total() >= cfg.StopAtOutput {
			cr.EndBit = br.BitPos()
			d.finish(cr, st)
			return cr, nil
		}
		if st.canFallback() {
			st.marked = false
		}
		headerPos := br.BitPos()
		final, typ, err := ParseBlockHeader(br)
		if err != nil {
			return nil, err
		}

		switch typ {
		case BlockStored:
			length, lenPos, err := ParseStoredHeader(br)
			if err != nil {
				return nil, err
			}
			canonical := headerPos
			if !final {
				canonical = lenPos - 3
				if !cfg.StopOnlyAtDynamic && canonical >= cfg.Stop {
					cr.EndBit = canonical
					d.finish(cr, st)
					return cr, nil
				}
			}
			cr.BlockStarts = append(cr.BlockStarts, BlockStart{canonical, st.total(), typ, final})
			if err := d.copyStored(st, length); err != nil {
				return nil, err
			}

		case BlockFixed:
			cr.BlockStarts = append(cr.BlockStarts, BlockStart{headerPos, st.total(), typ, final})
			if err := d.initFixed(); err != nil {
				return nil, err
			}
			if err := d.decodeHuffBlock(st); err != nil {
				return nil, err
			}

		case BlockDynamic:
			if !final && headerPos >= cfg.Stop {
				cr.EndBit = headerPos
				d.finish(cr, st)
				return cr, nil
			}
			cr.BlockStarts = append(cr.BlockStarts, BlockStart{headerPos, st.total(), typ, final})
			if r := d.ParseDynamicHeader(); r != RejectNone {
				return nil, headerErrors[r]
			}
			if err := d.decodeHuffBlock(st); err != nil {
				return nil, err
			}

		default:
			return nil, ErrCorrupt
		}

		if uint64(len(st.out16))+uint64(len(st.out8)) > uint64(st.maxOut) {
			return nil, ErrOutputLimit
		}

		if final {
			stop, err := d.memberEnd(cr, st, cfg.StopBeforeMember)
			if err != nil {
				return nil, err
			}
			if stop {
				d.finish(cr, st)
				return cr, nil
			}
		}
	}
}

// memberEnd handles the gzip footer after a final block and the start
// of the following member, if any. It reports whether the chunk ends.
func (d *Decoder) memberEnd(cr *ChunkResult, st *chunkState, stopBeforeMember uint64) (stop bool, err error) {
	br := d.br
	br.AlignToByte()
	footer, err := gzformat.ParseFooter(br)
	if err != nil {
		return false, err
	}
	ev := MemberEvent{DecompOffset: st.total(), Footer: footer}
	if br.RemainingBits() == 0 {
		ev.AtEOF = true
		cr.Members = append(cr.Members, ev)
		cr.EndIsEOF = true
		cr.EndBit = br.BitPos()
		return true, nil
	}
	endOfFooter := br.BitPos()
	if stopBeforeMember > 0 && endOfFooter >= stopBeforeMember {
		// The next member starts at/after the configured boundary; end
		// the chunk here without consuming its header.
		cr.Members = append(cr.Members, ev)
		cr.EndBit = endOfFooter
		return true, nil
	}
	hdr, err := gzformat.ParseHeader(br)
	if err != nil {
		// Trailing non-gzip data: stop cleanly at the footer.
		ev.AtEOF = true
		cr.Members = append(cr.Members, ev)
		cr.EndIsEOF = true
		cr.TrailingData = true
		cr.EndBit = endOfFooter
		return true, nil
	}
	ev.Header = hdr
	ev.HeaderEndBit = br.BitPos()
	cr.Members = append(cr.Members, ev)
	// The back-reference window does not cross member boundaries.
	st.histStart = int64(st.total())
	return false, nil
}

func (d *Decoder) finish(cr *ChunkResult, st *chunkState) {
	cr.Marked = st.out16
	cr.Raw = st.out8
}

// copyStored implements the Non-Compressed Block fast path (§3.3): the
// raw data is copied straight into the result buffer.
func (d *Decoder) copyStored(st *chunkState, length int) error {
	if length == 0 {
		return nil
	}
	br := d.br
	if !st.marked {
		p := len(st.out8)
		st.out8 = growBytes(st.out8, length)
		return br.ReadFull(st.out8[p : p+length])
	}
	if cap(st.scratch) < 65536 {
		st.scratch = make([]byte, 65536)
	}
	buf := st.scratch[:length]
	if err := br.ReadFull(buf); err != nil {
		return err
	}
	p := len(st.out16)
	st.out16 = growU16(st.out16, length)
	out := st.out16[p:]
	for i, b := range buf {
		out[i] = uint16(b)
	}
	return nil
}

// decodeHuffBlock decodes one Huffman-compressed block body in the
// current mode. d.lit/d.dist must be initialised.
func (d *Decoder) decodeHuffBlock(st *chunkState) error {
	if st.marked {
		return d.decodeHuffBlockMarked(st)
	}
	return d.decodeHuffBlockRaw(st)
}

// The block loops below decode on a local copy of the BitReader's
// accumulator (bitio.View/Commit), refilled with one 8-byte load per
// element — the wide-refill discipline that makes pure-Go decoders
// hardware-limited. After a refill the accumulator holds 56..63 valid
// bits, which covers a worst-case element in one go: litlen code (15)
// + length extra (5) + distance code (15) + distance extra (13) = 48
// bits. Literals consume at most 15 bits, so several decode per
// refill; the inner loop re-enters without refilling while at least
// 48 bits remain. Within 8 bytes of the buffered window's edge the
// loops fall back to the checked per-symbol path (which also refills
// ReaderAt-backed windows), so the fast path never needs bounds or
// end-of-stream checks on the bit source.

// fastElementBits is the worst-case bit cost of one decoded element;
// the fast loops refill whenever fewer bits remain.
const fastElementBits = 48

// decodeHuffBlockMarked is the two-stage (first stage) decode loop:
// output symbols are 16-bit; back-references into the unknown initial
// window emit markers (paper §2.2, Figure 3).
func (d *Decoder) decodeHuffBlockMarked(st *chunkState) error {
	br := d.br
	out := st.out16
	lastMarker := st.lastMarker
	defer func() {
		st.out16 = out
		st.lastMarker = lastMarker
	}()

	lt, ltShift := d.lit.Table(), d.lit.RootBits()
	ltMask := uint64(1)<<ltShift - 1
	var dt []huffman.Entry
	var dtShift uint
	var dtMask uint64
	if d.hasDist {
		dt, dtShift = d.dist.Table(), d.dist.RootBits()
		dtMask = uint64(1)<<dtShift - 1
	}

	buf, pos, bits, nbits := br.View()
	for {
		if pos+8 > len(buf) {
			br.Commit(pos, bits, nbits)
			var done bool
			var err error
			out, lastMarker, done, err = d.markedSlowElement(st, out, lastMarker)
			if done || err != nil {
				return err
			}
			buf, pos, bits, nbits = br.View()
			continue
		}
		bits |= binary.LittleEndian.Uint64(buf[pos:]) << nbits
		pos += int((63 - nbits) >> 3)
		nbits |= 56

		for {
			e := lt[bits&ltMask]
			if sb := e.SubBits(); sb != 0 {
				e = lt[uint64(e.Val())+bits>>ltShift&(1<<sb-1)]
			}
			n := e.Bits()
			if n == 0 {
				br.Commit(pos, bits, nbits)
				return huffman.ErrBadSymbol
			}
			bits >>= n
			nbits -= n
			sym := e.Val()
			if sym < 256 {
				out = append(out, sym)
				if nbits >= fastElementBits {
					continue
				}
				break
			}
			if sym == EndOfBlock {
				br.Commit(pos, bits, nbits)
				return nil
			}
			if sym > 285 {
				br.Commit(pos, bits, nbits)
				return ErrCorrupt
			}
			li := sym - 257
			length := int(lengthBase[li])
			if x := lengthExtra[li]; x > 0 {
				length += int(bits & (1<<x - 1))
				bits >>= x
				nbits -= uint(x)
			}
			if !d.hasDist {
				br.Commit(pos, bits, nbits)
				return ErrNoDistanceCode
			}
			de := dt[bits&dtMask]
			if sb := de.SubBits(); sb != 0 {
				de = dt[uint64(de.Val())+bits>>dtShift&(1<<sb-1)]
			}
			dn := de.Bits()
			if dn == 0 {
				br.Commit(pos, bits, nbits)
				return huffman.ErrBadSymbol
			}
			bits >>= dn
			nbits -= dn
			dsym := de.Val()
			if dsym > 29 {
				br.Commit(pos, bits, nbits)
				return ErrCorrupt
			}
			dist := int(distBase[dsym])
			if x := distExtra[dsym]; x > 0 {
				dist += int(bits & (1<<x - 1))
				bits >>= x
				nbits -= uint(x)
			}
			var err error
			out, lastMarker, err = emitMarkedMatch(st, out, lastMarker, dist, length)
			if err != nil {
				br.Commit(pos, bits, nbits)
				return err
			}
			break
		}
	}
}

// emitMarkedMatch bounds-checks and appends one back-reference in
// marked mode, tracking the newest copied or generated marker.
func emitMarkedMatch(st *chunkState, out []uint16, lastMarker int64, dist, length int) ([]uint16, int64, error) {
	p := len(out)
	if int64(p)-int64(dist) < st.histStart {
		return out, lastMarker, ErrCorrupt
	}
	if p+length > st.maxOut {
		return out, lastMarker, ErrOutputLimit
	}
	if dist <= p {
		src := p - dist
		out = growU16(out, length)
		dst := out[p : p+length]
		// Forward element order keeps the self-overlapping (dist <
		// length) case correct: later reads see earlier writes.
		for i := range dst {
			v := out[src+i]
			if v >= MarkerBase {
				lastMarker = int64(p + i)
			}
			dst[i] = v
		}
		return out, lastMarker, nil
	}
	for k := 0; k < length; k++ {
		pp := len(out)
		if dist <= pp {
			v := out[pp-dist]
			if v >= MarkerBase {
				lastMarker = int64(pp)
			}
			out = append(out, v)
		} else {
			off := WindowSize - (dist - pp)
			lastMarker = int64(pp)
			out = append(out, uint16(MarkerBase+off))
		}
	}
	return out, lastMarker, nil
}

// markedSlowElement decodes one element through the checked BitReader
// path; used near buffered-window edges and at end of input. It
// reports done when the block's end-of-block symbol was consumed.
func (d *Decoder) markedSlowElement(st *chunkState, out []uint16, lastMarker int64) ([]uint16, int64, bool, error) {
	br := d.br
	sym, err := d.lit.Decode(br)
	if err != nil {
		return out, lastMarker, false, err
	}
	if sym < 256 {
		return append(out, sym), lastMarker, false, nil
	}
	if sym == EndOfBlock {
		return out, lastMarker, true, nil
	}
	dist, length, err := d.slowMatchTail(sym)
	if err != nil {
		return out, lastMarker, false, err
	}
	out, lastMarker, err = emitMarkedMatch(st, out, lastMarker, dist, length)
	return out, lastMarker, false, err
}

// decodeHuffBlockRaw is the conventional single-stage decode loop used
// when the window is known or after the marker-free fallback.
func (d *Decoder) decodeHuffBlockRaw(st *chunkState) error {
	br := d.br
	out := st.out8
	defer func() { st.out8 = out }()

	lt, ltShift := d.lit.Table(), d.lit.RootBits()
	ltMask := uint64(1)<<ltShift - 1
	var dt []huffman.Entry
	var dtShift uint
	var dtMask uint64
	if d.hasDist {
		dt, dtShift = d.dist.Table(), d.dist.RootBits()
		dtMask = uint64(1)<<dtShift - 1
	}

	buf, pos, bits, nbits := br.View()
	for {
		if pos+8 > len(buf) {
			br.Commit(pos, bits, nbits)
			var done bool
			var err error
			out, done, err = d.rawSlowElement(st, out)
			if done || err != nil {
				return err
			}
			buf, pos, bits, nbits = br.View()
			continue
		}
		bits |= binary.LittleEndian.Uint64(buf[pos:]) << nbits
		pos += int((63 - nbits) >> 3)
		nbits |= 56

		for {
			e := lt[bits&ltMask]
			if sb := e.SubBits(); sb != 0 {
				e = lt[uint64(e.Val())+bits>>ltShift&(1<<sb-1)]
			}
			n := e.Bits()
			if n == 0 {
				br.Commit(pos, bits, nbits)
				return huffman.ErrBadSymbol
			}
			bits >>= n
			nbits -= n
			sym := e.Val()
			if sym < 256 {
				out = append(out, byte(sym))
				if nbits >= fastElementBits {
					continue
				}
				break
			}
			if sym == EndOfBlock {
				br.Commit(pos, bits, nbits)
				return nil
			}
			if sym > 285 {
				br.Commit(pos, bits, nbits)
				return ErrCorrupt
			}
			li := sym - 257
			length := int(lengthBase[li])
			if x := lengthExtra[li]; x > 0 {
				length += int(bits & (1<<x - 1))
				bits >>= x
				nbits -= uint(x)
			}
			if !d.hasDist {
				br.Commit(pos, bits, nbits)
				return ErrNoDistanceCode
			}
			de := dt[bits&dtMask]
			if sb := de.SubBits(); sb != 0 {
				de = dt[uint64(de.Val())+bits>>dtShift&(1<<sb-1)]
			}
			dn := de.Bits()
			if dn == 0 {
				br.Commit(pos, bits, nbits)
				return huffman.ErrBadSymbol
			}
			bits >>= dn
			nbits -= dn
			dsym := de.Val()
			if dsym > 29 {
				br.Commit(pos, bits, nbits)
				return ErrCorrupt
			}
			dist := int(distBase[dsym])
			if x := distExtra[dsym]; x > 0 {
				dist += int(bits & (1<<x - 1))
				bits >>= x
				nbits -= uint(x)
			}
			var err error
			out, err = d.emitRawMatch(st, out, dist, length)
			if err != nil {
				br.Commit(pos, bits, nbits)
				return err
			}
			break
		}
	}
}

// emitRawMatch bounds-checks and appends one back-reference in raw
// mode, reaching into the marked segment or the initial window when
// the distance exceeds the raw output written so far.
func (d *Decoder) emitRawMatch(st *chunkState, out []byte, dist, length int) ([]byte, error) {
	p := len(out)
	if int64(len(st.out16))+int64(p)-int64(dist) < st.histStart {
		return out, ErrCorrupt
	}
	if int64(p)+int64(length) > int64(st.maxOut) {
		return out, ErrOutputLimit
	}
	if dist <= p {
		return appendCopyWithin(out, dist, length), nil
	}
	k := dist - p
	for length > 0 && k > 0 {
		b, ok := st.historyByte(k)
		if !ok {
			return out, ErrCorrupt
		}
		out = append(out, b)
		length--
		k--
	}
	if length > 0 {
		out = appendCopyWithin(out, dist, length)
	}
	return out, nil
}

// rawSlowElement decodes one element through the checked BitReader
// path; used near buffered-window edges and at end of input.
func (d *Decoder) rawSlowElement(st *chunkState, out []byte) ([]byte, bool, error) {
	br := d.br
	sym, err := d.lit.Decode(br)
	if err != nil {
		return out, false, err
	}
	if sym < 256 {
		return append(out, byte(sym)), false, nil
	}
	if sym == EndOfBlock {
		return out, true, nil
	}
	dist, length, err := d.slowMatchTail(sym)
	if err != nil {
		return out, false, err
	}
	out, err = d.emitRawMatch(st, out, dist, length)
	return out, false, err
}

// slowMatchTail reads the remainder of a match element (length extra
// bits, distance code, distance extra bits) after a length symbol was
// decoded on the checked path.
func (d *Decoder) slowMatchTail(sym uint16) (dist, length int, err error) {
	br := d.br
	if sym > 285 {
		return 0, 0, ErrCorrupt
	}
	li := sym - 257
	length = int(lengthBase[li])
	if e := lengthExtra[li]; e > 0 {
		v, err := br.Read(uint(e))
		if err != nil {
			return 0, 0, err
		}
		length += int(v)
	}
	if !d.hasDist {
		return 0, 0, ErrNoDistanceCode
	}
	dsym, err := d.dist.Decode(br)
	if err != nil {
		return 0, 0, err
	}
	if dsym > 29 {
		return 0, 0, ErrCorrupt
	}
	dist = int(distBase[dsym])
	if e := distExtra[dsym]; e > 0 {
		v, err := br.Read(uint(e))
		if err != nil {
			return 0, 0, err
		}
		dist += int(v)
	}
	return dist, length, nil
}

// historyByte returns the byte k positions before the start of the raw
// segment: from the (marker-free by construction) tail of the marked
// segment, or from the known initial window.
func (st *chunkState) historyByte(k int) (byte, bool) {
	if n := len(st.out16); n >= k {
		v := st.out16[n-k]
		if v >= MarkerBase {
			return 0, false
		}
		return byte(v), true
	}
	j := k - len(st.out16)
	if j <= len(st.window) {
		return st.window[len(st.window)-j], true
	}
	return 0, false
}

// appendCopyWithin appends length bytes copied from dist back within
// out, handling the overlapping (run-generating) case. Non-overlapping
// copies are a single memmove; overlapping ones replicate the dist-byte
// pattern with doubling memmoves — O(log(length/dist)) wide copies
// instead of a byte loop, which also covers dist < 8 safely.
func appendCopyWithin(out []byte, dist, length int) []byte {
	p := len(out)
	out = growBytes(out, length)
	dst := out[p : p+length]
	src := p - dist
	if dist >= length {
		copy(dst, out[src:src+length])
		return out
	}
	n := copy(dst, out[src:p])
	for n < length {
		n += copy(dst[n:], dst[:n])
	}
	return out
}

func growBytes(s []byte, n int) []byte {
	need := len(s) + n
	if need <= cap(s) {
		return s[:need]
	}
	c := 2 * cap(s)
	if c < need {
		c = need
	}
	if c < 1024 {
		c = 1024
	}
	ns := make([]byte, need, c)
	copy(ns, s)
	return ns
}

func growU16(s []uint16, n int) []uint16 {
	need := len(s) + n
	if need <= cap(s) {
		return s[:need]
	}
	c := 2 * cap(s)
	if c < need {
		c = need
	}
	if c < 1024 {
		c = 1024
	}
	ns := make([]uint16, need, c)
	copy(ns, s)
	return ns
}
