package deflate_test

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"testing"

	deflate "repro/internal/deflate"
	"repro/internal/gzipw"
	"repro/internal/workloads"
)

// TestDelegateWindowAgainstCustomDecoder checks that the realign+flate
// path reproduces exactly what the custom decoder produces for every
// interior block boundary of a real gzip file.
func TestDelegateWindowAgainstCustomDecoder(t *testing.T) {
	data := workloads.SilesiaLike(400_000, 1)
	comp, meta, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	blocks := meta.Blocks
	tested := 0
	for i := 0; i+1 < len(blocks); i += 2 {
		start, end := blocks[i], blocks[i+1]
		if start.Final || end.Final || start.Decomp == 0 {
			continue
		}
		if start.Decomp < deflate.WindowSize {
			continue
		}
		window := data[start.Decomp-deflate.WindowSize : start.Decomp]
		size := int(end.Decomp - start.Decomp)
		out, err := deflate.DelegateWindow(comp, start.Bit, end.Bit, window, size)
		if err != nil {
			t.Fatalf("block %d (bits %d..%d): %v", i, start.Bit, end.Bit, err)
		}
		if !bytes.Equal(out, data[start.Decomp:end.Decomp]) {
			t.Fatalf("block %d: delegated output mismatch", i)
		}
		tested++
	}
	if tested < 3 {
		t.Fatalf("only %d block pairs tested; input too small?", tested)
	}
}

func TestDelegateWindowWrongSize(t *testing.T) {
	data := workloads.Base64(100_000, 2)
	comp, meta, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	var a, b gzipw.BlockOffset
	for i, bo := range meta.Blocks {
		if i > 0 && !bo.Final {
			a = meta.Blocks[i]
			b = meta.Blocks[i+1]
			break
		}
	}
	window := data[:a.Decomp]
	if len(window) > deflate.WindowSize {
		window = window[len(window)-deflate.WindowSize:]
	}
	size := int(b.Decomp - a.Decomp)
	// Too small: the chunk produces more than size.
	if _, err := deflate.DelegateWindow(comp, a.Bit, b.Bit, window, size-1); !errors.Is(err, deflate.ErrDelegate) {
		t.Fatalf("undersized: got %v", err)
	}
	// Too large: the appended empty stored block ends the stream early.
	if _, err := deflate.DelegateWindow(comp, a.Bit, b.Bit, window, size+1); !errors.Is(err, deflate.ErrDelegate) {
		t.Fatalf("oversized: got %v", err)
	}
}

func TestDelegateWindowRejectsMemberCrossing(t *testing.T) {
	// A range spanning a gzip footer + next header cannot be delegated.
	data := workloads.Base64(200_000, 3)
	comp, meta, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10, MemberSize: 64 << 10})
	if len(meta.Members) < 2 {
		t.Fatal("need a multi-member file")
	}
	// From the first block of member 0 across into member 1.
	start := meta.Blocks[0]
	end := uint64(meta.Members[1]+100) * 8
	if _, err := deflate.DelegateWindow(comp, start.Bit, end, nil, 150_000); !errors.Is(err, deflate.ErrDelegate) {
		t.Fatalf("member crossing: got %v", err)
	}
}

func TestDelegateMembers(t *testing.T) {
	data := workloads.FASTQ(150_000, 4)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := deflate.DelegateMembers(comp, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("mismatch")
	}
	// Corrupt a payload byte: stdlib's per-member CRC must catch it.
	bad := bytes.Clone(comp)
	bad[len(bad)/2] ^= 0x5A
	if _, err := deflate.DelegateMembers(bad, 0, len(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}

// TestRealignProducesValidStream checks the bit surgery directly: the
// realigned buffer must be a complete, self-terminating Deflate stream
// that stdlib flate decodes to exactly the blocks' content — without
// being told the size.
func TestRealignProducesValidStream(t *testing.T) {
	data := workloads.SilesiaLike(150_000, 5)
	comp, meta, _ := gzipw.Compress(data, gzipw.Options{Level: 9, BlockSize: 16 << 10})
	var a, b gzipw.BlockOffset
	for i := 1; i+1 < len(meta.Blocks); i++ {
		if !meta.Blocks[i].Final && meta.Blocks[i].Decomp > 0 {
			a, b = meta.Blocks[i], meta.Blocks[i+1]
			break
		}
	}
	buf, err := deflate.Realign(comp, a.Bit, b.Bit)
	if err != nil {
		t.Fatal(err)
	}
	window := data[:a.Decomp]
	if len(window) > deflate.WindowSize {
		window = window[len(window)-deflate.WindowSize:]
	}
	fr := flate.NewReaderDict(bytes.NewReader(buf), window)
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[a.Decomp:b.Decomp]) {
		t.Fatalf("realigned stream decodes to %d bytes, want %d", len(got), b.Decomp-a.Decomp)
	}
}
