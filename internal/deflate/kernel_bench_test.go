package deflate

// Micro-benchmarks isolating the three costs the chunk-level ablation
// rows (ablation_bench_test.go) blend together: back-reference copies
// (appendCopyWithin), pure symbol decode on a match-free stream, and —
// in internal/bitio — the wide-refill discipline itself
// (BenchmarkViewCommitRefill). Together they localise a chunk-decode
// regression to one kernel without profiling.

import (
	"bytes"
	"compress/flate"
	"fmt"
	"testing"

	"repro/internal/bitio"
)

// BenchmarkAppendCopyWithin sweeps the copy kernel's regimes: long
// non-overlapping memmoves, the dist < 8 run-replication path that the
// 8-byte-wide copies must keep overlap-safe, and short in-between
// distances.
func BenchmarkAppendCopyWithin(b *testing.B) {
	cases := []struct{ dist, length int }{
		{32 << 10, 64}, // far history: single memmove
		{1, 64},        // RLE: maximal overlap
		{3, 64},        // dist < 8, non-power-of-two pattern
		{7, 300},       // dist < 8, long replication
		{48, 64},       // short but non-overlapping
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("dist=%d,len=%d", c.dist, c.length), func(b *testing.B) {
			base := make([]byte, 64<<10, 8<<20)
			for i := range base {
				base[i] = byte(i * 31)
			}
			out := base
			b.SetBytes(int64(c.length))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(out)+c.length > cap(out) {
					out = out[:64<<10]
				}
				out = appendCopyWithin(out, c.dist, c.length)
			}
		})
	}
}

// BenchmarkSymbolDecode decodes a match-free deflate stream
// (flate.HuffmanOnly never emits back-references), so the measured loop
// is exactly table lookup + literal store + refill — the symbol-decode
// kernel with the copy kernel ablated away.
func BenchmarkSymbolDecode(b *testing.B) {
	data := make([]byte, 1<<20)
	s := uint32(99)
	for i := range data {
		s = s*1664525 + 1013904223
		data[i] = byte(s >> 24)
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.HuffmanOnly)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fw.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		b.Fatal(err)
	}
	// DecodeChunk expects a gzip footer after the final block; zero pad
	// stands in for one (the decode stops at the final block first).
	stream := append(comp.Bytes(), make([]byte, 8)...)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dec Decoder
		cr, err := dec.DecodeChunk(bitio.NewBitReaderBytes(stream), ChunkConfig{
			Stop: StopAtEOF, SizeHint: len(data),
		})
		if err != nil {
			b.Fatal(err)
		}
		if cr.TotalOut() != uint64(len(data)) {
			b.Fatalf("decoded %d, want %d", cr.TotalOut(), len(data))
		}
	}
}
