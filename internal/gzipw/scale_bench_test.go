package gzipw

import (
	"io"
	"testing"

	"repro/internal/workloads"
)

func benchWriterWorkers(b *testing.B, workers int) {
	data := workloads.Base64(8<<20, 42)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewWriter(io.Discard, WriterOptions{Level: 6, Parallelism: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterW1(b *testing.B) { benchWriterWorkers(b, 1) }
func BenchmarkWriterW4(b *testing.B) { benchWriterWorkers(b, 4) }
