package gzipw

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/gzformat"
)

// testPayload builds compressible-but-varied input.
func testPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dogs", "0123456789"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(4) == 0 {
			b.WriteByte(byte(rng.Intn(256)))
		}
		b.WriteByte(' ')
	}
	return b.Bytes()[:n]
}

// TestWriterRoundTrip verifies parallel-sharded output decodes
// byte-exact with the stdlib across sizes straddling shard boundaries.
func TestWriterRoundTrip(t *testing.T) {
	shard := 8 << 10
	for _, n := range []int{0, 1, shard - 1, shard, shard + 1, 5*shard + 321} {
		for _, level := range []int{0, 1, 6} {
			data := testPayload(n, int64(n))
			var out bytes.Buffer
			w, err := NewWriter(&out, WriterOptions{Level: level, ShardSize: shard, BlockSize: 4 << 10, Parallelism: 3})
			if err != nil {
				t.Fatalf("NewWriter: %v", err)
			}
			if _, err := w.Write(data); err != nil {
				t.Fatalf("n=%d level=%d Write: %v", n, level, err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("n=%d level=%d Close: %v", n, level, err)
			}
			if got := w.CompressedSize(); got != int64(out.Len()) {
				t.Fatalf("CompressedSize = %d, wrote %d", got, out.Len())
			}
			zr, err := gzip.NewReader(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("n=%d level=%d gzip.NewReader: %v", n, level, err)
			}
			dec, err := io.ReadAll(zr)
			if err != nil {
				t.Fatalf("n=%d level=%d decode: %v", n, level, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("n=%d level=%d round trip mismatch (%d vs %d bytes)", n, level, len(dec), len(data))
			}
		}
	}
}

// TestWriterReadFrom checks the io.ReaderFrom path matches Write.
func TestWriterReadFrom(t *testing.T) {
	data := testPayload(100_000, 7)
	var out bytes.Buffer
	w, err := NewWriter(&out, WriterOptions{Level: 6, ShardSize: 16 << 10, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.ReadFrom(bytes.NewReader(data))
	if err != nil || n != int64(len(data)) {
		t.Fatalf("ReadFrom = %d, %v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	zr, _ := gzip.NewReader(bytes.NewReader(out.Bytes()))
	dec, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

// TestWriterCheckpoints asserts the recorded checkpoint table tiles the
// output exactly: contiguous compressed extents starting after the
// header, contiguous decompressed extents covering the input, per-shard
// CRCs matching, and every boundary byte-aligned by construction.
func TestWriterCheckpoints(t *testing.T) {
	shard := 10 << 10
	data := testPayload(4*shard+99, 3)
	var out bytes.Buffer
	w, err := NewWriter(&out, WriterOptions{Level: 6, ShardSize: shard, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	w.Write(data)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cps := w.Checkpoints()
	if len(cps) != 5 {
		t.Fatalf("got %d checkpoints, want 5", len(cps))
	}
	wantComp := int64(w.HeaderLen())
	wantDecomp := int64(0)
	for i, cp := range cps {
		if cp.CompOff != wantComp || cp.DecompOff != wantDecomp {
			t.Fatalf("checkpoint %d at (%d,%d), want (%d,%d)", i, cp.CompOff, cp.DecompOff, wantComp, wantDecomp)
		}
		if cp.CompEnd <= cp.CompOff {
			t.Fatalf("checkpoint %d empty compressed extent", i)
		}
		wantCRC := gzformat.UpdateCRC(0, data[cp.DecompOff:cp.DecompOff+cp.DecompSize])
		if cp.CRC32 != wantCRC {
			t.Fatalf("checkpoint %d CRC %08x, want %08x", i, cp.CRC32, wantCRC)
		}
		wantComp = cp.CompEnd
		wantDecomp += cp.DecompSize
	}
	if wantDecomp != int64(len(data)) {
		t.Fatalf("checkpoints cover %d bytes, input is %d", wantDecomp, len(data))
	}
	// trailer = 5-byte empty stored final block + 8-byte footer
	if wantComp+13 != w.CompressedSize() {
		t.Fatalf("checkpoints end at %d, file is %d (want 13-byte trailer)", wantComp, w.CompressedSize())
	}
	// The footer CRC must equal the whole-input CRC (GF(2) combination).
	if got, want := w.CRC32(), gzformat.UpdateCRC(0, data); got != want {
		t.Fatalf("combined CRC %08x, want %08x", got, want)
	}
}

// TestWriterBGZF verifies member-per-chunk mode: stdlib multistream
// decode, per-member checkpoints, EOF marker.
func TestWriterBGZF(t *testing.T) {
	data := testPayload(3*BGZFChunkSize/2, 11)
	var out bytes.Buffer
	w, err := NewWriter(&out, WriterOptions{Level: 6, BGZF: true, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	w.Write(data)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(out.Bytes(), BGZFEOFMarker) {
		t.Fatal("output missing BGZF EOF marker")
	}
	zr, err := gzip.NewReader(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("BGZF round trip failed: %v", err)
	}
	cps := w.Checkpoints()
	if len(cps) != 2 {
		t.Fatalf("got %d checkpoints, want 2", len(cps))
	}
	if cps[0].CompOff != 0 || cps[0].DecompSize != BGZFChunkSize {
		t.Fatalf("first member checkpoint = %+v", cps[0])
	}
	// Each member's header must carry its BSIZE.
	for i, cp := range cps {
		hdr, err := gzformat.ParseHeader(bitio.NewBitReaderBytes(out.Bytes()[cp.CompOff:]))
		if err != nil {
			t.Fatalf("member %d header: %v", i, err)
		}
		if int64(hdr.BGZFBlockSize) != cp.CompEnd-cp.CompOff {
			t.Fatalf("member %d BSIZE %d, extent %d", i, hdr.BGZFBlockSize, cp.CompEnd-cp.CompOff)
		}
	}
}

// TestWriterErrors covers invalid options and write-after-close.
func TestWriterErrors(t *testing.T) {
	if _, err := NewWriter(io.Discard, WriterOptions{Level: 10}); err == nil {
		t.Fatal("level 10 accepted")
	}
	if _, err := NewWriter(io.Discard, WriterOptions{ShardSize: -1}); err == nil {
		t.Fatal("negative shard size accepted")
	}
	w, err := NewWriter(io.Discard, WriterOptions{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write after Close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
