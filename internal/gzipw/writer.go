package gzipw

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/bitio"
	"repro/internal/crc32x"
	"repro/internal/gzformat"
	"repro/internal/shardpipe"
)

// The encode path recycles its three large per-shard allocations —
// the 256 KiB matcher, the input shard buffer, and the output segment
// buffer — across shards and Writers. Without this, every shard left
// multiple megabytes of garbage behind and the concurrent GC competed
// with the encode workers for cores, which showed up directly as lost
// parallel scaling.
var (
	matcherPool  sync.Pool // *matcher
	segBufPool   sync.Pool // *bytes.Buffer (output segments; returned by drain)
	shardBufPool sync.Pool // []byte (input shards; returned after encode)
)

// getMatcher returns a dictionary-clean matcher configured for level.
func getMatcher(level int) *matcher {
	if v := matcherPool.Get(); v != nil {
		m := v.(*matcher)
		m.p = levels[level]
		m.reset()
		return m
	}
	return newMatcher(level)
}

func getSegBuf() *bytes.Buffer {
	if v := segBufPool.Get(); v != nil {
		b := v.(*bytes.Buffer)
		b.Reset()
		return b
	}
	return new(bytes.Buffer)
}

// getShardBuf returns an empty buffer with capacity for an n-byte shard.
func getShardBuf(n int) []byte {
	if v := shardBufPool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			return b[:0]
		}
	}
	return make([]byte, 0, n)
}

// WriterOptions configures a parallel Writer. The zero value compresses
// like a single-threaded gzip -6 over 1 MiB independent shards.
type WriterOptions struct {
	// Level 0 stores without compression; 1..9 trade speed for ratio
	// like zlib's levels. The default (when left zero by the public
	// API) is chosen by the caller; this package treats 0 literally.
	Level int
	// ShardSize is the uncompressed bytes compressed independently per
	// shard (the parallel work unit AND the random-access granularity
	// of the emitted index). Zero selects DefaultShardSize. BGZF
	// ignores it: the format caps members at BGZFChunkSize.
	ShardSize int
	// BlockSize is the uncompressed bytes per Deflate block within a
	// shard. Zero selects DefaultBlockSize.
	BlockSize int
	// Parallelism is the number of encode workers. Zero selects
	// runtime.NumCPU().
	Parallelism int
	// BGZF emits Blocked-GNU-Zip-Format framing: one member per
	// 65280-byte chunk, each header carrying the compressed size, plus
	// the canonical empty EOF member on Close.
	BGZF bool
	// Name is the optional original-file name stored in the header.
	Name string
}

// DefaultShardSize is the uncompressed bytes per independent shard:
// large enough that the per-shard dictionary reset costs little ratio,
// small enough that a shard is a sensible random-access unit.
const DefaultShardSize = 1 << 20

// Checkpoint records one drained shard: its compressed byte extent in
// the output, the decompressed extent it encodes, and the CRC32 of the
// uncompressed shard bytes (for BGZF, the member's footer CRC). The
// compressed extents are byte-aligned by construction — every shard
// ends on an empty stored block's boundary (plain gzip) or a member
// boundary (BGZF) — which is exactly what makes the emitted archive
// seekable without a sizing pass.
type Checkpoint struct {
	CompOff, CompEnd      int64
	DecompOff, DecompSize int64
	CRC32                 uint32
}

// encodedShard is one shard's encode result moving through the pipeline.
// buf, when set, is the pooled buffer backing seg; drain returns it to
// segBufPool once the segment has been written out.
type encodedShard struct {
	seg    []byte
	buf    *bytes.Buffer
	crc    uint32
	rawLen int
}

// Writer is a parallel sharded gzip/BGZF encoder: input is cut into
// fixed-size shards, each compressed independently (reset dictionary)
// on a worker pool, and the compressed segments are joined in order —
// pigz's structure, which Table 3 / §4.8 of the paper identifies as the
// one that keeps parallel decompression possible. Plain gzip output is
// a single member whose shards are joined by empty stored blocks and
// whose footer CRC is combined shard-wise in GF(2); BGZF output is one
// member per chunk plus the canonical EOF marker.
//
// Not safe for concurrent use: one producer writes, the encoding
// parallelizes underneath.
type Writer struct {
	out  io.Writer
	opts WriterOptions
	pipe *shardpipe.Pipeline[encodedShard]

	shard []byte // pending uncompressed input

	compOff     int64 // bytes written to out
	decompOff   int64 // uncompressed bytes drained
	crc         uint32
	checkpoints []Checkpoint
	headerLen   int

	closed bool
	err    error
}

// NewWriter constructs a parallel writer over w. For plain gzip the
// member header is written immediately; the first checkpoint's CompOff
// is therefore the header length.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	if opts.Level < 0 || opts.Level > 9 {
		return nil, fmt.Errorf("gzipw: invalid level %d", opts.Level)
	}
	if opts.ShardSize < 0 {
		return nil, fmt.Errorf("gzipw: negative shard size %d", opts.ShardSize)
	}
	if opts.ShardSize == 0 {
		opts.ShardSize = DefaultShardSize
	}
	if opts.BGZF {
		opts.ShardSize = BGZFChunkSize
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	pw := &Writer{out: w, opts: opts}
	pw.pipe = shardpipe.New[encodedShard](opts.Parallelism, 2*opts.Parallelism, pw.drain)
	if !opts.BGZF {
		hdr := buildHeaderBytes(Options{Name: opts.Name}, 0)
		if _, err := w.Write(hdr); err != nil {
			pw.pipe.Close()
			return nil, err
		}
		pw.headerLen = len(hdr)
		pw.compOff = int64(len(hdr))
	}
	return pw, nil
}

// drain is the pipeline sink: it writes one encoded shard and records
// its checkpoint. Runs on the producer goroutine (inside Write/Close).
func (w *Writer) drain(es encodedShard) error {
	if _, err := w.out.Write(es.seg); err != nil {
		return err
	}
	w.checkpoints = append(w.checkpoints, Checkpoint{
		CompOff:    w.compOff,
		CompEnd:    w.compOff + int64(len(es.seg)),
		DecompOff:  w.decompOff,
		DecompSize: int64(es.rawLen),
		CRC32:      es.crc,
	})
	w.compOff += int64(len(es.seg))
	w.decompOff += int64(es.rawLen)
	// The single-member CRC chain: shard CRCs combine in GF(2) exactly
	// like the parallel verification path combines them on decode.
	w.crc = crc32x.Combine(w.crc, es.crc, int64(es.rawLen))
	if es.buf != nil {
		segBufPool.Put(es.buf)
	}
	return nil
}

// Write implements io.Writer, buffering into the current shard and
// submitting full shards to the encode pool. It blocks only when the
// bounded in-flight window is full.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("gzipw: write after Close")
	}
	if w.err != nil {
		return 0, w.err
	}
	total := len(p)
	for len(p) > 0 {
		if w.shard == nil {
			w.shard = getShardBuf(w.opts.ShardSize)
		}
		n := w.opts.ShardSize - len(w.shard)
		if n > len(p) {
			n = len(p)
		}
		w.shard = append(w.shard, p[:n]...)
		p = p[n:]
		if len(w.shard) == w.opts.ShardSize {
			if err := w.submitShard(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// ReadFrom implements io.ReaderFrom: it fills shards straight from r,
// avoiding the caller's intermediate buffer.
func (w *Writer) ReadFrom(r io.Reader) (int64, error) {
	if w.closed {
		return 0, errors.New("gzipw: write after Close")
	}
	var total int64
	for {
		if w.shard == nil {
			w.shard = getShardBuf(w.opts.ShardSize)
		}
		n, err := r.Read(w.shard[len(w.shard):w.opts.ShardSize])
		w.shard = w.shard[:len(w.shard)+n]
		total += int64(n)
		if len(w.shard) == w.opts.ShardSize {
			if serr := w.submitShard(); serr != nil {
				return total, serr
			}
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// submitShard hands the pending shard to the pool. The shard slice is
// owned by the job from here on.
func (w *Writer) submitShard() error {
	data := w.shard
	w.shard = nil
	opts := w.opts
	err := w.pipe.Submit(func() (encodedShard, error) {
		var es encodedShard
		var err error
		if opts.BGZF {
			es, err = encodeBGZFShard(data, opts)
		} else {
			es, err = encodeGzipShard(data, opts)
		}
		shardBufPool.Put(data[:0])
		return es, err
	})
	if err != nil {
		w.err = err
	}
	return err
}

// Close flushes the pending shard, drains the pipeline, and writes the
// stream trailer: for plain gzip the final empty stored block plus the
// member footer (combined CRC32, total size), for BGZF the canonical
// EOF member. Close does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if len(w.shard) > 0 && w.err == nil {
		w.submitShard()
	}
	if err := w.pipe.Close(); err != nil {
		if w.err == nil {
			w.err = err
		}
		return w.err
	}
	if w.err != nil {
		return w.err
	}
	var trailer []byte
	if w.opts.BGZF {
		trailer = BGZFEOFMarker
	} else {
		// A final empty stored block terminates the Deflate stream at a
		// byte boundary (shards are all non-final), then the footer.
		trailer = append(trailer, 0x01, 0x00, 0x00, 0xff, 0xff)
		var ftr [8]byte
		putFooter(ftr[:], w.crc, uint64(w.decompOff))
		trailer = append(trailer, ftr[:]...)
	}
	if _, err := w.out.Write(trailer); err != nil {
		w.err = err
		return err
	}
	w.compOff += int64(len(trailer))
	return nil
}

// Checkpoints returns the per-shard checkpoint table recorded while
// encoding. Complete only after Close.
func (w *Writer) Checkpoints() []Checkpoint { return w.checkpoints }

// HeaderLen returns the gzip member header length (0 for BGZF, whose
// members each carry their own header).
func (w *Writer) HeaderLen() int { return w.headerLen }

// CompressedSize returns the total bytes written to the underlying
// writer. Final only after Close.
func (w *Writer) CompressedSize() int64 { return w.compOff }

// UncompressedSize returns the input bytes encoded so far (drained
// shards only; final after Close).
func (w *Writer) UncompressedSize() int64 { return w.decompOff }

// CRC32 returns the combined CRC of the whole uncompressed stream
// (plain gzip's member footer value). Final only after Close.
func (w *Writer) CRC32() uint32 { return w.crc }

// encodeGzipShard compresses one shard as an independent Deflate
// segment: a fresh dictionary, all blocks non-final, terminated by an
// empty stored block so the segment is byte-aligned — the join point
// the next shard (or the stream trailer) continues from.
func encodeGzipShard(data []byte, opts WriterOptions) (encodedShard, error) {
	buf := getSegBuf()
	bw := bitio.NewBitWriter(buf)
	var m *matcher
	if opts.Level > 0 {
		m = getMatcher(opts.Level)
		defer matcherPool.Put(m)
	}
	meta := &Meta{} // block offsets are relative to the shard; discarded
	bopts := Options{Level: opts.Level, BlockSize: opts.BlockSize}
	for bStart := 0; bStart < len(data); bStart += opts.BlockSize {
		bEnd := bStart + opts.BlockSize
		if bEnd > len(data) {
			bEnd = len(data)
		}
		if err := emitBlock(bw, meta, m, data, bStart, bEnd, 0, false, bopts); err != nil {
			return encodedShard{}, err
		}
	}
	emitEmptyStored(bw)
	if err := bw.Flush(); err != nil {
		return encodedShard{}, err
	}
	if bw.BitsWritten%8 != 0 {
		return encodedShard{}, errors.New("gzipw: shard segment not byte-aligned")
	}
	return encodedShard{seg: buf.Bytes(), buf: buf, crc: gzformat.UpdateCRC(0, data), rawLen: len(data)}, nil
}

// encodeBGZFShard compresses one shard as a complete BGZF member:
// header with the BSIZE extra subfield, Deflate body ending in a final
// block, CRC32/ISIZE footer.
func encodeBGZFShard(data []byte, opts WriterOptions) (encodedShard, error) {
	body := getSegBuf()
	defer segBufPool.Put(body)
	bw := bitio.NewBitWriter(body)
	var m *matcher
	if opts.Level > 0 {
		m = getMatcher(opts.Level)
		defer matcherPool.Put(m)
	}
	sub := &Meta{}
	if err := compressMember(bw, sub, m, data, 0, len(data), Options{
		Level: opts.Level, BlockSize: opts.BlockSize,
	}); err != nil {
		return encodedShard{}, err
	}
	if err := bw.Flush(); err != nil {
		return encodedShard{}, err
	}
	hdr := buildHeaderBytes(Options{Name: opts.Name}, 0)
	bsize := len(hdr) + 8 + body.Len() + 8 // +8 for the extra field itself
	hdr = buildHeaderBytes(Options{Name: opts.Name}, bsize)
	if len(hdr)+body.Len()+8 != bsize {
		return encodedShard{}, errors.New("gzipw: BGZF size accounting error")
	}
	if bsize > 1<<16 {
		return encodedShard{}, fmt.Errorf("gzipw: BGZF member of %d bytes exceeds the 64 KiB format cap", bsize)
	}
	crc := gzformat.UpdateCRC(0, data)
	out := getSegBuf()
	out.Grow(bsize)
	out.Write(hdr)
	out.Write(body.Bytes())
	var ftr [8]byte
	putFooter(ftr[:], crc, uint64(len(data)))
	out.Write(ftr[:])
	return encodedShard{seg: out.Bytes(), buf: out, crc: crc, rawLen: len(data)}, nil
}
