// Package gzipw is a from-scratch Deflate/gzip compressor used to create
// the paper's evaluation inputs with controlled block structure: plain
// gzip streams, pigz-style independently-compressed chunks joined by
// empty stored blocks, BGZF files with size metadata, and igzip -0 style
// single-huge-block streams (paper §4.4, §4.8, Table 3). It exists so
// the reproduction does not depend on external compression tools; its
// output is verified against the standard library's gzip reader.
package gzipw

import (
	"encoding/binary"
	"math/bits"
)

// Token encoding: literals are the byte value; matches set bit 31 and
// pack length-3 in bits 16..23 and distance-1 in bits 0..15.
type token uint32

const tokenMatch token = 1 << 31

func literalToken(b byte) token { return token(b) }

func matchToken(length, dist int) token {
	return tokenMatch | token(length-3)<<16 | token(dist-1)
}

func (t token) isMatch() bool { return t&tokenMatch != 0 }
func (t token) literal() byte { return byte(t) }
func (t token) length() int   { return int(t>>16&0xFF) + 3 }
func (t token) dist() int     { return int(t&0xFFFF) + 1 }

const (
	minMatch   = 3
	maxMatch   = 258
	maxDist    = 32768
	hashBits   = 15
	hashSize   = 1 << hashBits
	hashShift  = 32 - hashBits
	windowMask = maxDist - 1
)

// levelParams mirror zlib's configuration table: how greedily to search
// the hash chains per compression level.
type levelParams struct {
	good, lazy, nice, chain int
	useLazy                 bool
}

var levels = [10]levelParams{
	{}, // 0 = stored only
	{good: 4, lazy: 0, nice: 8, chain: 4},
	{good: 4, lazy: 0, nice: 16, chain: 8},
	{good: 4, lazy: 0, nice: 32, chain: 32},
	{good: 4, lazy: 4, nice: 16, chain: 16, useLazy: true},
	{good: 8, lazy: 16, nice: 32, chain: 32, useLazy: true},
	{good: 8, lazy: 16, nice: 128, chain: 128, useLazy: true},
	{good: 8, lazy: 32, nice: 128, chain: 256, useLazy: true},
	{good: 32, lazy: 128, nice: 258, chain: 1024, useLazy: true},
	{good: 32, lazy: 258, nice: 258, chain: 4096, useLazy: true},
}

type matcher struct {
	head [hashSize]int32
	prev [maxDist]int32
	p    levelParams
	// tok is the token scratch reused across blocks (and, via
	// matcherPool, across shards): tokenising a 128 KiB block grows a
	// multi-hundred-KiB slice, which dominated the encode path's GC
	// pressure when allocated fresh per block.
	tok []token
}

func newMatcher(level int) *matcher {
	m := &matcher{p: levels[level]}
	for i := range m.head {
		m.head[i] = -1
	}
	return m
}

// reset clears the dictionary; used between independent chunks
// (pigz-style compression resets state at chunk boundaries).
func (m *matcher) reset() {
	for i := range m.head {
		m.head[i] = -1
	}
}

func hash4(data []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(data[i:]) * 2654435761 >> hashShift
}

func (m *matcher) insert(data []byte, i int) {
	h := hash4(data, i)
	m.prev[i&windowMask] = m.head[h]
	m.head[h] = int32(i)
}

// findMatch returns the best match for position i, searching back to
// windowStart. Positions older than i-maxDist are unreachable.
func (m *matcher) findMatch(data []byte, i, end, windowStart int) (length, dist int) {
	limit := i - maxDist
	if limit < windowStart {
		limit = windowStart
	}
	maxLen := end - i
	if maxLen > maxMatch {
		maxLen = maxMatch
	}
	if maxLen < minMatch {
		return 0, 0
	}
	chain := m.p.chain
	nice := m.p.nice
	if nice > maxLen {
		nice = maxLen
	}
	best := minMatch - 1
	bestPos := -1
	cand := m.head[hash4(data, i)]
	for cand >= int32(limit) && chain > 0 {
		c := int(cand)
		if c >= i {
			// Stale entry from a previous (resetless) region; follow chain.
			cand = m.prev[c&windowMask]
			chain--
			continue
		}
		if data[c+best] == data[i+best] && data[c] == data[i] {
			n := matchLen(data, c, i, maxLen)
			if n > best {
				best = n
				bestPos = c
				if n >= nice {
					break
				}
			}
		}
		next := m.prev[c&windowMask]
		if next >= cand {
			break // cycle guard for stale ring entries
		}
		cand = next
		chain--
	}
	if bestPos < 0 {
		return 0, 0
	}
	return best, i - bestPos
}

func matchLen(data []byte, a, b, limit int) int {
	n := 0
	// Compare eight bytes per step while both runs stay in bounds; the
	// first differing byte falls out of the XOR's trailing zeros.
	for n+8 <= limit && b+n+8 <= len(data) {
		x := binary.LittleEndian.Uint64(data[a+n:]) ^ binary.LittleEndian.Uint64(data[b+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for n < limit && data[a+n] == data[b+n] {
		n++
	}
	return n
}

// appendTokens tokenises data[start:end] with back-references reaching
// no further than windowStart, appending to tokens. blockBounds receives
// the token index at which each multiple of blockSize input bytes is
// crossed (used to segment Deflate blocks along input positions).
func (m *matcher) appendTokens(tokens []token, data []byte, start, end, windowStart int) []token {
	i := start
	p := m.p
	for i < end {
		if end-i < minMatch+1 {
			for ; i < end; i++ {
				tokens = append(tokens, literalToken(data[i]))
			}
			break
		}
		m.insert(data, i)
		length, dist := m.findMatch(data, i, end, windowStart)
		if length < minMatch {
			tokens = append(tokens, literalToken(data[i]))
			i++
			continue
		}
		if p.useLazy && length < p.lazy && i+1 < end-minMatch {
			// One-step lazy matching: prefer a longer match at i+1.
			m.insert(data, i+1)
			l2, d2 := m.findMatch(data, i+1, end, windowStart)
			if l2 > length {
				tokens = append(tokens, literalToken(data[i]))
				// Insert hash entries for the skipped span of the new match.
				for j := i + 2; j < i+1+l2 && j < end-minMatch; j++ {
					m.insert(data, j)
				}
				tokens = append(tokens, matchToken(l2, d2))
				i = i + 1 + l2
				continue
			}
			// Keep original match; i+1 already inserted.
			for j := i + 2; j < i+length && j < end-minMatch; j++ {
				m.insert(data, j)
			}
			tokens = append(tokens, matchToken(length, dist))
			i += length
			continue
		}
		for j := i + 1; j < i+length && j < end-minMatch; j++ {
			m.insert(data, j)
		}
		tokens = append(tokens, matchToken(length, dist))
		i += length
	}
	return tokens
}
