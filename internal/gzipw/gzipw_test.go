package gzipw

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/deflate"
	"repro/internal/gzformat"
)

// stdlibDecompress validates our compressor output against the standard
// library's gzip reader — an independent reference implementation.
func stdlibDecompress(t testing.TB, comp []byte) []byte {
	t.Helper()
	r, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatalf("stdlib header: %v", err)
	}
	r.Multistream(true)
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("stdlib read: %v", err)
	}
	return out
}

func payloads(seed int64, n int) map[string][]byte {
	rng := rand.New(rand.NewSource(seed))
	random := make([]byte, n)
	rng.Read(random)
	text := make([]byte, 0, n)
	words := []string{"wood", "chuck", "would", "how", "much", "if", "a", "the"}
	for len(text) < n {
		text = append(text, words[rng.Intn(len(words))]...)
		text = append(text, ' ')
	}
	zeros := make([]byte, n)
	return map[string][]byte{"random": random, "text": text[:n], "zeros": zeros}
}

func TestCompressRoundTripStdlib(t *testing.T) {
	for name, data := range payloads(1, 200_000) {
		for _, level := range []int{0, 1, 4, 6, 9} {
			comp, _, err := Compress(data, Options{Level: level})
			if err != nil {
				t.Fatalf("%s level %d: %v", name, level, err)
			}
			if got := stdlibDecompress(t, comp); !bytes.Equal(got, data) {
				t.Fatalf("%s level %d: stdlib round trip mismatch", name, level)
			}
		}
	}
}

func TestCompressRoundTripOwnDecoder(t *testing.T) {
	for name, data := range payloads(2, 200_000) {
		for _, opts := range []Options{
			{Level: 6},
			{Level: 6, Strategy: FixedOnly},
			{Level: 6, Strategy: DynamicOnly},
			{Level: 3, Strategy: StoredOnly},
			{Level: 9, SingleBlock: true},
			{Level: 5, IndependentChunks: 32 << 10},
			{Level: 6, MemberSize: 64 << 10},
			{Level: 6, BGZF: true},
			{Level: 0, BGZF: true},
		} {
			comp, _, err := Compress(data, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			got, err := deflate.DecompressGzip(comp)
			if err != nil {
				t.Fatalf("%s %+v: decode: %v", name, opts, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s %+v: round trip mismatch", name, opts)
			}
		}
	}
}

func TestCompressionRatios(t *testing.T) {
	data := payloads(3, 500_000)["text"]
	var prev float64 = 0
	for _, level := range []int{1, 6, 9} {
		comp, _, err := Compress(data, Options{Level: level})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(data)) / float64(len(comp))
		if ratio < 2 {
			t.Fatalf("level %d: ratio %.2f too low for repetitive text", level, ratio)
		}
		if ratio+0.2 < prev {
			t.Fatalf("level %d ratio %.2f noticeably worse than lower level's %.2f", level, ratio, prev)
		}
		prev = ratio
	}
	// Random data must trigger the stored fallback and stay near ratio 1.
	random := payloads(3, 500_000)["random"]
	comp, meta, err := Compress(random, Options{Level: 6})
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(comp)) > float64(len(random))*1.01 {
		t.Fatalf("random data expanded: %d -> %d", len(random), len(comp))
	}
	stored := 0
	for _, b := range meta.Blocks {
		if b.Type == deflate.BlockStored {
			stored++
		}
	}
	if stored == 0 {
		t.Fatal("random data produced no stored blocks")
	}
}

func TestMetaBlockOffsetsMatchDecoder(t *testing.T) {
	// The decoder's recorded block starts must equal the compressor's
	// ground-truth offsets — including the canonical normalisation of
	// stored-block offsets (§3.4.1).
	for name, data := range payloads(4, 300_000) {
		for _, opts := range []Options{
			{Level: 6, BlockSize: 24 << 10},
			{Level: 1, IndependentChunks: 48 << 10, BlockSize: 24 << 10},
			{Level: 0},
		} {
			comp, meta, err := Compress(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			br := bitio.NewBitReaderBytes(comp)
			var d deflate.Decoder
			cr, err := d.DecodeChunk(br, deflate.ChunkConfig{
				Start: 0, Stop: deflate.StopAtEOF, StartsAtGzipHeader: true,
			})
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if len(cr.BlockStarts) != len(meta.Blocks) {
				t.Fatalf("%s %+v: decoder saw %d blocks, compressor wrote %d",
					name, opts, len(cr.BlockStarts), len(meta.Blocks))
			}
			for i, bs := range cr.BlockStarts {
				mb := meta.Blocks[i]
				if bs.Bit != mb.Bit || bs.Type != mb.Type || bs.Final != mb.Final {
					t.Fatalf("%s %+v block %d: decoder %+v vs meta %+v", name, opts, i, bs, mb)
				}
				if bs.DecompOffset != mb.Decomp {
					t.Fatalf("%s %+v block %d: decomp %d vs %d", name, opts, i, bs.DecompOffset, mb.Decomp)
				}
			}
		}
	}
}

func TestBGZFStructure(t *testing.T) {
	data := payloads(5, 300_000)["text"]
	comp, meta, err := Compress(data, Options{Level: 6, BGZF: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(comp, BGZFEOFMarker) {
		t.Fatal("missing BGZF EOF marker")
	}
	// Walk the members using only the BSIZE metadata, like bgzip does.
	pos := 0
	count := 0
	var total int
	for pos < len(comp) {
		br := bitio.NewBitReaderBytes(comp[pos:])
		hdr, err := gzipHeaderAt(br)
		if err != nil {
			t.Fatalf("member %d at %d: %v", count, pos, err)
		}
		if hdr <= 0 {
			t.Fatalf("member %d: no BGZF BSIZE", count)
		}
		pos += hdr
		count++
		total++
	}
	if pos != len(comp) {
		t.Fatalf("BSIZE walk ended at %d of %d", pos, len(comp))
	}
	wantMembers := (len(data)+BGZFChunkSize-1)/BGZFChunkSize + 1 // + EOF member
	if count != wantMembers {
		t.Fatalf("got %d members want %d", count, wantMembers)
	}
	if len(meta.Members) != wantMembers {
		t.Fatalf("meta records %d members want %d", len(meta.Members), wantMembers)
	}
}

func gzipHeaderAt(br *bitio.BitReader) (int, error) {
	h, err := gzformat.ParseHeader(br)
	if err != nil {
		return 0, err
	}
	return h.BGZFBlockSize, nil
}

func TestPresets(t *testing.T) {
	data := payloads(6, 150_000)["text"]
	names := []string{
		"gzip -1", "gzip -6", "gzip -9",
		"pigz -1", "pigz -6", "pigz -9",
		"bgzip -l -1", "bgzip -l 0", "bgzip -l 6",
		"igzip -0", "igzip -1", "igzip -3",
	}
	for _, name := range names {
		opts, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		comp, meta, err := Compress(data, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := deflate.DecompressGzip(comp)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip mismatch", name)
		}
		if name == "igzip -0" {
			nonFinal := 0
			for _, b := range meta.Blocks {
				if !b.Final {
					nonFinal++
				}
			}
			if nonFinal != 0 {
				t.Fatalf("igzip -0 should have a single block, got %d non-final", nonFinal)
			}
		}
	}
	for _, bad := range []string{"", "gzip", "zopfli -1", "gzip -0", "igzip -7"} {
		if _, err := Preset(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for _, opts := range []Options{{Level: 6}, {Level: 0}, {Level: 6, BGZF: true}} {
		comp, _, err := Compress(nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := deflate.DecompressGzip(comp)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(got) != 0 {
			t.Fatalf("%+v: got %d bytes", opts, len(got))
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, lvl uint8, blockShift uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100_000)
		data := make([]byte, n)
		// Mixed content: runs, random, text fragments.
		for i := 0; i < n; {
			switch rng.Intn(3) {
			case 0:
				k := min(n-i, 1+rng.Intn(100))
				b := byte(rng.Intn(256))
				for j := 0; j < k; j++ {
					data[i+j] = b
				}
				i += k
			case 1:
				k := min(n-i, 1+rng.Intn(100))
				rng.Read(data[i : i+k])
				i += k
			default:
				k := min(n-i, 10)
				copy(data[i:], "woodchuck ")
				i += k
			}
		}
		level := int(lvl % 10)
		bs := 1 << (10 + blockShift%8)
		comp, _, err := Compress(data, Options{Level: level, BlockSize: bs})
		if err != nil {
			return false
		}
		got, err := deflate.DecompressGzip(comp)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenEncoding(t *testing.T) {
	tok := matchToken(258, 32768)
	if !tok.isMatch() || tok.length() != 258 || tok.dist() != 32768 {
		t.Fatalf("max token: len=%d dist=%d", tok.length(), tok.dist())
	}
	tok = matchToken(3, 1)
	if tok.length() != 3 || tok.dist() != 1 {
		t.Fatalf("min token: len=%d dist=%d", tok.length(), tok.dist())
	}
	lit := literalToken(0xAB)
	if lit.isMatch() || lit.literal() != 0xAB {
		t.Fatal("literal token")
	}
}

func BenchmarkCompressLevel6(b *testing.B) {
	data := payloads(7, 4<<20)["text"]
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(data, Options{Level: 6}); err != nil {
			b.Fatal(err)
		}
	}
}
