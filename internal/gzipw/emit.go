package gzipw

import (
	"errors"

	"repro/internal/bitio"
	"repro/internal/deflate"
	"repro/internal/huffman"
)

// precodeOrder is the storage permutation of RFC 1951 §3.2.7.
var precodeOrder = [19]uint8{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}

// lengthCodeOf / distCodeOf are direct lookup tables built once.
var (
	lengthCodeOf [maxMatch + 1]uint16 // length -> literal alphabet symbol
	distCodeHi   [maxDist >> 7]uint8  // dist-1 >> 7 -> symbol (for dist > 256)
	distCodeLo   [256]uint8           // dist-1 -> symbol (for dist <= 256)
)

func init() {
	for l := minMatch; l <= maxMatch; l++ {
		sym, _, _ := deflate.LengthCode(l)
		lengthCodeOf[l] = sym
	}
	for d := 1; d <= 256; d++ {
		sym, _, _ := deflate.DistCode(d)
		distCodeLo[d-1] = uint8(sym)
	}
	for d := 257; d <= maxDist; d++ {
		sym, _, _ := deflate.DistCode(d)
		distCodeHi[(d-1)>>7] = uint8(sym)
	}
}

func distSym(dist int) uint8 {
	if dist <= 256 {
		return distCodeLo[dist-1]
	}
	return distCodeHi[(dist-1)>>7]
}

// lengthExtraBits/distExtraBits duplicate the decoder tables for emission.
var lengthExtraBits = [286]uint8{}
var lengthBaseOf = [286]uint16{}
var distExtraBits = [30]uint8{}
var distBaseOf = [30]uint32{}

func init() {
	for l := minMatch; l <= maxMatch; l++ {
		sym, extra, _ := deflate.LengthCode(l)
		lengthExtraBits[sym] = extra
		if lengthBaseOf[sym] == 0 {
			lengthBaseOf[sym] = uint16(l)
		}
	}
	// Recompute exact bases: LengthCode returns (sym, extra, offset); the
	// base is l - offset.
	for l := minMatch; l <= maxMatch; l++ {
		sym, _, off := deflate.LengthCode(l)
		lengthBaseOf[sym] = uint16(l - int(off))
	}
	for d := 1; d <= maxDist; d++ {
		sym, extra, off := deflate.DistCode(d)
		distExtraBits[sym] = extra
		distBaseOf[sym] = uint32(d - int(off))
	}
}

// tokenHistograms tallies the literal/length and distance alphabets.
func tokenHistograms(tokens []token) (litFreq [286]int, distFreq [30]int) {
	for _, t := range tokens {
		if !t.isMatch() {
			litFreq[t.literal()]++
			continue
		}
		litFreq[lengthCodeOf[t.length()]]++
		distFreq[distSym(t.dist())]++
	}
	litFreq[deflate.EndOfBlock]++
	return
}

// clOp is one precode operation from run-length encoding code lengths.
type clOp struct {
	sym   uint8 // 0..18
	extra uint8 // repeat payload
}

// rleCodeLengths encodes the concatenated code lengths with symbols
// 16 (copy previous 3-6), 17 (zeros 3-10) and 18 (zeros 11-138).
func rleCodeLengths(lens []uint8) (ops []clOp, freq [19]int) {
	i := 0
	for i < len(lens) {
		v := lens[i]
		run := 1
		for i+run < len(lens) && lens[i+run] == v {
			run++
		}
		if v == 0 {
			for run >= 3 {
				n := run
				if n > 138 {
					n = 138
				}
				if n >= 11 {
					ops = append(ops, clOp{18, uint8(n - 11)})
					freq[18]++
				} else {
					ops = append(ops, clOp{17, uint8(n - 3)})
					freq[17]++
				}
				run -= n
				i += n
			}
			for ; run > 0; run-- {
				ops = append(ops, clOp{0, 0})
				freq[0]++
				i++
			}
			continue
		}
		// First occurrence emits the length itself; repeats use 16.
		ops = append(ops, clOp{v, 0})
		freq[v]++
		i++
		run--
		for run >= 3 {
			n := run
			if n > 6 {
				n = 6
			}
			ops = append(ops, clOp{16, uint8(n - 3)})
			freq[16]++
			run -= n
			i += n
		}
		for ; run > 0; run-- {
			ops = append(ops, clOp{v, 0})
			freq[v]++
			i++
		}
	}
	return
}

var clExtraBits = [19]uint8{16: 2, 17: 3, 18: 7}

// dynamicPlan holds everything needed to emit a dynamic block and its
// exact bit size, so block-type selection can compare costs.
type dynamicPlan struct {
	litEnc, distEnc, preEnc *huffman.Encoder
	litLens, distLens       []uint8
	ops                     []clOp
	nlit, ndist, nclen      int
	headerBits, bodyBits    int
}

func planDynamic(tokens []token) (*dynamicPlan, error) {
	litFreq, distFreq := tokenHistograms(tokens)
	litLens, err := huffman.BuildLengths(litFreq[:], huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	// End-of-block must be codeable even in an all-literal tiny block.
	if litLens[deflate.EndOfBlock] == 0 {
		return nil, errors.New("gzipw: end-of-block not coded")
	}
	distUsed := 0
	for _, f := range distFreq {
		if f > 0 {
			distUsed++
		}
	}
	var distLens []uint8
	if distUsed > 0 {
		distLens, err = huffman.BuildLengths(distFreq[:], huffman.MaxBits)
		if err != nil {
			return nil, err
		}
	} else {
		distLens = []uint8{0}
	}

	nlit := 257
	for s := 285; s >= 257; s-- {
		if litLens[s] > 0 {
			nlit = s + 1
			break
		}
	}
	ndist := 1
	for s := len(distLens) - 1; s >= 1; s-- {
		if distLens[s] > 0 {
			ndist = s + 1
			break
		}
	}
	combined := make([]uint8, 0, nlit+ndist)
	combined = append(combined, litLens[:nlit]...)
	combined = append(combined, distLens[:ndist]...)
	ops, preFreq := rleCodeLengths(combined)
	preLens, err := huffman.BuildLengths(preFreq[:], 7)
	if err != nil {
		return nil, err
	}
	nclen := 4
	for i := 18; i >= 4; i-- {
		if preLens[precodeOrder[i]] > 0 {
			nclen = i + 1
			break
		}
	}
	litEnc, err := huffman.NewEncoder(litLens)
	if err != nil {
		return nil, err
	}
	distEnc, err := huffman.NewEncoder(distLens)
	if err != nil {
		return nil, err
	}
	preEnc, err := huffman.NewEncoder(preLens)
	if err != nil {
		return nil, err
	}

	p := &dynamicPlan{
		litEnc: litEnc, distEnc: distEnc, preEnc: preEnc,
		litLens: litLens, distLens: distLens,
		ops: ops, nlit: nlit, ndist: ndist, nclen: nclen,
	}
	p.headerBits = 14 + 3*nclen
	for _, op := range ops {
		p.headerBits += int(preLens[op.sym]) + int(clExtraBits[op.sym])
	}
	for s, f := range litFreq {
		if f > 0 {
			p.bodyBits += f * (int(litLens[s]) + int(extraBitsForLit(s)))
		}
	}
	for s, f := range distFreq {
		if f > 0 {
			p.bodyBits += f * (int(distLens[s]) + int(distExtraBits[s]))
		}
	}
	return p, nil
}

func extraBitsForLit(sym int) uint8 {
	if sym < 257 {
		return 0
	}
	return lengthExtraBits[sym]
}

// fixedCost returns the bit cost of encoding tokens with the fixed code.
func fixedCost(tokens []token) int {
	litFreq, distFreq := tokenHistograms(tokens)
	fl := deflate.FixedLitLengths()
	bits := 0
	for s, f := range litFreq {
		if f > 0 {
			bits += f * (int(fl[s]) + int(extraBitsForLit(s)))
		}
	}
	for s, f := range distFreq {
		if f > 0 {
			bits += f * (5 + int(distExtraBits[s]))
		}
	}
	return bits
}

// emitDynamic writes a complete dynamic block.
func emitDynamic(bw *bitio.BitWriter, p *dynamicPlan, tokens []token, final bool) {
	f := uint64(0)
	if final {
		f = 1
	}
	bw.WriteBits(f|uint64(deflate.BlockDynamic)<<1, 3)
	bw.WriteBits(uint64(p.nlit-257), 5)
	bw.WriteBits(uint64(p.ndist-1), 5)
	bw.WriteBits(uint64(p.nclen-4), 4)
	for i := 0; i < p.nclen; i++ {
		bw.WriteBits(uint64(p.preEnc.Lengths[precodeOrder[i]]), 3)
	}
	for _, op := range p.ops {
		bw.WriteBits(uint64(p.preEnc.Codes[op.sym]), uint(p.preEnc.Lengths[op.sym]))
		if eb := clExtraBits[op.sym]; eb > 0 {
			bw.WriteBits(uint64(op.extra), uint(eb))
		}
	}
	emitTokens(bw, p.litEnc, p.distEnc, tokens)
}

// emitFixed writes a fixed-Huffman block.
func emitFixed(bw *bitio.BitWriter, tokens []token, final bool) {
	f := uint64(0)
	if final {
		f = 1
	}
	bw.WriteBits(f|uint64(deflate.BlockFixed)<<1, 3)
	litEnc, _ := huffman.NewEncoder(deflate.FixedLitLengths())
	distEnc, _ := huffman.NewEncoder(deflate.FixedDistLengths())
	emitTokens(bw, litEnc, distEnc, tokens)
}

func emitTokens(bw *bitio.BitWriter, litEnc, distEnc *huffman.Encoder, tokens []token) {
	for _, t := range tokens {
		if !t.isMatch() {
			b := t.literal()
			bw.WriteBits(uint64(litEnc.Codes[b]), uint(litEnc.Lengths[b]))
			continue
		}
		length, dist := t.length(), t.dist()
		ls := lengthCodeOf[length]
		bw.WriteBits(uint64(litEnc.Codes[ls]), uint(litEnc.Lengths[ls]))
		if eb := lengthExtraBits[ls]; eb > 0 {
			bw.WriteBits(uint64(length-int(lengthBaseOf[ls])), uint(eb))
		}
		ds := distSym(dist)
		bw.WriteBits(uint64(distEnc.Codes[ds]), uint(distEnc.Lengths[ds]))
		if eb := distExtraBits[ds]; eb > 0 {
			bw.WriteBits(uint64(dist-int(distBaseOf[ds])), uint(eb))
		}
	}
	bw.WriteBits(uint64(litEnc.Codes[deflate.EndOfBlock]), uint(litEnc.Lengths[deflate.EndOfBlock]))
}

// emitStored writes data as stored blocks (65535-byte cap per block),
// invoking record with each block's canonical bit offset (the normalised
// offset of §3.4.1 for non-final blocks) and input offset.
func emitStored(bw *bitio.BitWriter, data []byte, final bool, record func(canonical uint64, off int, final bool)) {
	off := 0
	for {
		n := len(data) - off
		if n > 65535 {
			n = 65535
		}
		last := off+n == len(data)
		f := uint64(0)
		if final && last {
			f = 1
		}
		headerPos := bw.BitsWritten
		bw.WriteBits(f|uint64(deflate.BlockStored)<<1, 3)
		bw.AlignToByte()
		canonical := bw.BitsWritten - 3
		if f == 1 {
			canonical = headerPos
		}
		record(canonical, off, final && last)
		bw.WriteBits(uint64(n), 16)
		bw.WriteBits(uint64(^uint16(n)), 16)
		bw.WriteBytes(data[off : off+n])
		off += n
		if last {
			return
		}
	}
}

// emitEmptyStored writes a zero-length non-final stored block — the
// byte-aligning "sync flush" pigz places between its chunks (paper §4.4).
func emitEmptyStored(bw *bitio.BitWriter) (canonical uint64) {
	bw.WriteBits(uint64(deflate.BlockStored)<<1, 3)
	bw.AlignToByte()
	canonical = bw.BitsWritten - 3
	bw.WriteBits(0, 16)
	bw.WriteBits(uint64(^uint16(0)), 16)
	return canonical
}
