package gzipw

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bitio"
	"repro/internal/deflate"
	"repro/internal/gzformat"
)

// Strategy forces a block type; Auto picks the cheapest per block.
type Strategy uint8

const (
	Auto Strategy = iota
	StoredOnly
	FixedOnly
	DynamicOnly
)

// Options configures Compress. The zero value compresses like a plain
// gzip -6: one member, dynamic blocks of DefaultBlockSize input bytes.
type Options struct {
	// Level 0 stores without compression (bgzip -l 0 behaviour); 1..9
	// trade speed for ratio like zlib's levels.
	Level int
	// BlockSize is the uncompressed bytes per Deflate block. Compressors
	// differ in this choice, which Table 3 shows affects parallel
	// decompression; 0 means DefaultBlockSize.
	BlockSize int
	Strategy  Strategy
	// SingleBlock emits the entire input as one Deflate block — the
	// igzip -0 structure that defeats parallelization (paper §4.8).
	SingleBlock bool
	// IndependentChunks compresses every N input bytes with a reset
	// dictionary, joined by empty stored blocks — pigz's structure.
	IndependentChunks int
	// MemberSize splits the output into multiple gzip members every N
	// input bytes. BGZF implies members of BGZFChunkSize.
	MemberSize int
	// BGZF writes Blocked-GNU-Zip-Format framing: small members whose
	// headers carry the compressed size ("BC" extra subfield) plus the
	// canonical empty EOF member (paper §3.4.4).
	BGZF bool
	Name string
}

// DefaultBlockSize approximates common gzip deflate block sizes.
const DefaultBlockSize = 128 * 1024

// BGZFChunkSize is the uncompressed payload cap of one BGZF member.
const BGZFChunkSize = 65280

// BlockOffset records one emitted Deflate block (ground truth for the
// block finder tests and the experiment harnesses).
type BlockOffset struct {
	// Bit is the canonical bit offset of the block header in the output.
	Bit uint64
	// Decomp is the cumulative uncompressed offset where the block starts.
	Decomp uint64
	Type   deflate.BlockType
	Final  bool
}

// Meta describes the structure of a compressed output.
type Meta struct {
	Blocks  []BlockOffset
	Members []uint64 // byte offsets of gzip member headers
}

// Compress encodes data as a gzip file per opts and returns the file
// plus structural metadata.
func Compress(data []byte, opts Options) ([]byte, *Meta, error) {
	if opts.Level < 0 || opts.Level > 9 {
		return nil, nil, fmt.Errorf("gzipw: invalid level %d", opts.Level)
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.BGZF {
		return compressBGZF(data, opts)
	}
	memberSize := opts.MemberSize
	if memberSize <= 0 {
		memberSize = len(data)
	}

	var buf bytes.Buffer
	bw := bitio.NewBitWriter(&buf)
	meta := &Meta{}
	var m *matcher
	if opts.Level > 0 {
		m = newMatcher(opts.Level)
	}

	for mStart := 0; ; mStart += memberSize {
		mEnd := mStart + memberSize
		if mEnd > len(data) {
			mEnd = len(data)
		}
		meta.Members = append(meta.Members, bw.BitsWritten/8)
		hdr := buildHeaderBytes(opts, 0)
		bw.WriteBytes(hdr)
		if m != nil {
			m.reset()
		}
		if err := compressMember(bw, meta, m, data, mStart, mEnd, opts); err != nil {
			return nil, nil, err
		}
		bw.AlignToByte()
		crc := gzformat.UpdateCRC(0, data[mStart:mEnd])
		var ftr [8]byte
		putFooter(ftr[:], crc, uint64(mEnd-mStart))
		bw.WriteBytes(ftr[:])
		if mEnd >= len(data) {
			break
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), meta, nil
}

func putFooter(dst []byte, crc uint32, isize uint64) {
	dst[0] = byte(crc)
	dst[1] = byte(crc >> 8)
	dst[2] = byte(crc >> 16)
	dst[3] = byte(crc >> 24)
	dst[4] = byte(isize)
	dst[5] = byte(isize >> 8)
	dst[6] = byte(isize >> 16)
	dst[7] = byte(isize >> 24)
}

func buildHeaderBytes(opts Options, bsize int) []byte {
	var hb bytes.Buffer
	ho := gzformat.WriteHeaderOptions{Name: opts.Name, OS: 255}
	if bsize > 0 {
		ho.Extra = gzformat.BGZFExtra(bsize)
	}
	if _, err := gzformat.WriteHeader(&hb, ho); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return hb.Bytes()
}

// compressMember emits one member's Deflate stream.
func compressMember(bw *bitio.BitWriter, meta *Meta, m *matcher, data []byte, mStart, mEnd int, opts Options) error {
	if mStart == mEnd {
		// Empty member: one final fixed block containing only EOB.
		meta.Blocks = append(meta.Blocks, BlockOffset{bw.BitsWritten, uint64(mStart), deflate.BlockFixed, true})
		emitFixed(bw, nil, true)
		return nil
	}
	chunk := opts.IndependentChunks
	if chunk <= 0 {
		chunk = mEnd - mStart
	}
	for cStart := mStart; cStart < mEnd; cStart += chunk {
		cEnd := cStart + chunk
		if cEnd > mEnd {
			cEnd = mEnd
		}
		if opts.IndependentChunks > 0 && m != nil {
			m.reset()
		}
		blockSize := opts.BlockSize
		if opts.SingleBlock {
			blockSize = cEnd - cStart
		}
		for bStart := cStart; bStart < cEnd; bStart += blockSize {
			bEnd := bStart + blockSize
			if bEnd > cEnd {
				bEnd = cEnd
			}
			final := bEnd == mEnd
			if err := emitBlock(bw, meta, m, data, bStart, bEnd, cStart, final, opts); err != nil {
				return err
			}
		}
		if opts.IndependentChunks > 0 && cEnd < mEnd {
			canonical := emitEmptyStored(bw)
			meta.Blocks = append(meta.Blocks, BlockOffset{canonical, uint64(cEnd), deflate.BlockStored, false})
		}
	}
	return nil
}

// emitBlock tokenises and emits one Deflate block, choosing the block
// type per the strategy.
func emitBlock(bw *bitio.BitWriter, meta *Meta, m *matcher, data []byte, bStart, bEnd, windowStart int, final bool, opts Options) error {
	raw := data[bStart:bEnd]
	record := func(bit uint64, t deflate.BlockType) {
		meta.Blocks = append(meta.Blocks, BlockOffset{bit, uint64(bStart), t, final})
	}
	recordStored := func(canonical uint64, off int, fin bool) {
		meta.Blocks = append(meta.Blocks, BlockOffset{canonical, uint64(bStart + off), deflate.BlockStored, fin})
	}
	if opts.Level == 0 || opts.Strategy == StoredOnly {
		emitStored(bw, raw, final, recordStored)
		return nil
	}
	var tokens []token
	if m != nil {
		tokens = m.appendTokens(m.tok[:0], data, bStart, bEnd, windowStart)
		m.tok = tokens
	} else {
		for _, b := range raw {
			tokens = append(tokens, literalToken(b))
		}
	}
	switch opts.Strategy {
	case FixedOnly:
		record(bw.BitsWritten, deflate.BlockFixed)
		emitFixed(bw, tokens, final)
		return nil
	case DynamicOnly:
		plan, err := planDynamic(tokens)
		if err != nil {
			return err
		}
		record(bw.BitsWritten, deflate.BlockDynamic)
		emitDynamic(bw, plan, tokens, final)
		return nil
	}
	// Auto: compare exact dynamic cost, fixed cost and stored cost.
	plan, err := planDynamic(tokens)
	if err != nil {
		return err
	}
	dynBits := plan.headerBits + plan.bodyBits + 3
	fixBits := fixedCost(tokens) + 3
	storedBits := 8*len(raw) + 32 + 8 + 35*(len(raw)/65535+1)
	switch {
	case storedBits < dynBits && storedBits < fixBits:
		emitStored(bw, raw, final, recordStored)
	case fixBits <= dynBits:
		record(bw.BitsWritten, deflate.BlockFixed)
		emitFixed(bw, tokens, final)
	default:
		record(bw.BitsWritten, deflate.BlockDynamic)
		emitDynamic(bw, plan, tokens, final)
	}
	return nil
}

// compressBGZF emits BGZF framing: every member covers at most
// BGZFChunkSize input bytes, carries its compressed size in the header
// extra field, and the file ends with the canonical empty EOF member.
func compressBGZF(data []byte, opts Options) ([]byte, *Meta, error) {
	var out bytes.Buffer
	meta := &Meta{}
	var m *matcher
	if opts.Level > 0 {
		m = newMatcher(opts.Level)
	}
	for start := 0; start < len(data) || start == 0; start += BGZFChunkSize {
		end := start + BGZFChunkSize
		if end > len(data) {
			end = len(data)
		}
		var body bytes.Buffer
		bw := bitio.NewBitWriter(&body)
		if m != nil {
			m.reset()
		}
		sub := &Meta{}
		if err := compressMember(bw, sub, m, data, start, end, Options{
			Level: opts.Level, BlockSize: opts.BlockSize, Strategy: opts.Strategy,
		}); err != nil {
			return nil, nil, err
		}
		if err := bw.Flush(); err != nil {
			return nil, nil, err
		}
		hdr := buildHeaderBytes(opts, 0)
		// BSIZE counts the whole member: header+extra, body, footer.
		bsize := len(hdr) + 8 + body.Len() + 8 // +8 for the extra field itself
		hdr = buildHeaderBytes(opts, bsize)
		if len(hdr)+body.Len()+8 != bsize {
			return nil, nil, errors.New("gzipw: BGZF size accounting error")
		}
		meta.Members = append(meta.Members, uint64(out.Len()))
		memberBase := uint64(out.Len()+len(hdr)) * 8
		for _, b := range sub.Blocks {
			meta.Blocks = append(meta.Blocks, BlockOffset{memberBase + b.Bit, uint64(start) + (b.Decomp - uint64(start)), b.Type, b.Final})
		}
		out.Write(hdr)
		out.Write(body.Bytes())
		crc := gzformat.UpdateCRC(0, data[start:end])
		var ftr [8]byte
		putFooter(ftr[:], crc, uint64(end-start))
		out.Write(ftr[:])
		if len(data) == 0 {
			break
		}
	}
	out.Write(BGZFEOFMarker)
	meta.Members = append(meta.Members, uint64(out.Len()-len(BGZFEOFMarker)))
	return out.Bytes(), meta, nil
}

// BGZFEOFMarker is the canonical 28-byte empty BGZF member terminating
// every BGZF file (HTSlib specification).
var BGZFEOFMarker = []byte{
	0x1f, 0x8b, 0x08, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff,
	0x06, 0x00, 0x42, 0x43, 0x02, 0x00, 0x1b, 0x00, 0x03, 0x00,
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
}

// Preset returns the Options emulating a known compressor invocation.
// Recognised names: "gzip -N" (1..9), "pigz -N", "bgzip -l N" (-1, 0..9),
// "igzip -N" (0..3). The emulations reproduce each tool's *structural*
// signature — block sizes, sync points, metadata — which is what drives
// the parallel decompression differences of Table 3.
func Preset(name string) (Options, error) {
	fields := strings.Fields(name)
	if len(fields) < 2 {
		return Options{}, fmt.Errorf("gzipw: unknown preset %q", name)
	}
	tool := fields[0]
	levelStr := strings.TrimPrefix(fields[len(fields)-1], "-")
	lvl, err := strconv.Atoi(levelStr)
	if err != nil {
		return Options{}, fmt.Errorf("gzipw: bad preset level in %q", name)
	}
	switch tool {
	case "gzip":
		if lvl < 1 || lvl > 9 {
			return Options{}, fmt.Errorf("gzipw: gzip level %d", lvl)
		}
		return Options{Level: lvl, BlockSize: 128 << 10}, nil
	case "pigz":
		if lvl < 1 || lvl > 9 {
			return Options{}, fmt.Errorf("gzipw: pigz level %d", lvl)
		}
		// pigz compresses 128 KiB chunks quasi-independently and joins
		// them with empty stored blocks.
		return Options{Level: lvl, BlockSize: 128 << 10, IndependentChunks: 128 << 10}, nil
	case "bgzip":
		if fields[1] == "-l" && len(fields) >= 3 {
			if lvl == -1 {
				lvl = 6
			}
			if lvl < 0 || lvl > 9 {
				return Options{}, fmt.Errorf("gzipw: bgzip level %d", lvl)
			}
			return Options{Level: lvl, BGZF: true}, nil
		}
		return Options{Level: 6, BGZF: true}, nil
	case "igzip":
		switch lvl {
		case 0:
			// igzip -0 puts all data in a single Dynamic Block (§4.8).
			return Options{Level: 1, SingleBlock: true, Strategy: DynamicOnly}, nil
		case 1, 2, 3:
			return Options{Level: lvl, BlockSize: 256 << 10}, nil
		}
		return Options{}, fmt.Errorf("gzipw: igzip level %d", lvl)
	}
	return Options{}, fmt.Errorf("gzipw: unknown tool %q", tool)
}
