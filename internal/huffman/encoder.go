package huffman

import (
	"errors"
	"sort"
)

// Encoder holds a canonical Huffman code ready for bit emission.
type Encoder struct {
	// Lengths[sym] is the code length in bits (0 = symbol unused).
	Lengths []uint8
	// Codes[sym] is the bit-reversed code, ready to feed an LSB-first
	// BitWriter.
	Codes []uint32
}

// BuildLengths computes optimal code lengths limited to maxBits for the
// given symbol frequencies using the package-merge algorithm (optimal
// length-limited Huffman). Symbols with zero frequency get length 0.
//
// If fewer than two symbols are used, the remaining symbol (or symbol 0)
// is assigned length 1, mirroring zlib's behaviour of always emitting a
// decodable, complete-enough code.
func BuildLengths(freqs []int, maxBits uint) ([]uint8, error) {
	n := len(freqs)
	lengths := make([]uint8, n)
	var used []int
	for sym, f := range freqs {
		if f > 0 {
			used = append(used, sym)
		}
	}
	switch len(used) {
	case 0:
		// Emit a dummy code for symbol 0 so the alphabet stays decodable.
		if n > 0 {
			lengths[0] = 1
		}
		return lengths, nil
	case 1:
		lengths[used[0]] = 1
		return lengths, nil
	}
	if uint64(len(used)) > 1<<maxBits {
		return nil, errors.New("huffman: too many symbols for length limit")
	}

	// Package-merge. Coins are (weight, symbols-covered) pairs; at each
	// of maxBits levels we merge pairs and mix in the original coins.
	type coin struct {
		weight int64
		syms   []int // leaf symbols covered by this package
	}
	leaves := make([]coin, 0, len(used))
	for _, sym := range used {
		leaves = append(leaves, coin{int64(freqs[sym]), []int{sym}})
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].weight < leaves[j].weight })

	var prev []coin
	for level := uint(0); level < maxBits; level++ {
		// Merge pairs from prev row.
		var packages []coin
		for i := 0; i+1 < len(prev); i += 2 {
			syms := make([]int, 0, len(prev[i].syms)+len(prev[i+1].syms))
			syms = append(syms, prev[i].syms...)
			syms = append(syms, prev[i+1].syms...)
			packages = append(packages, coin{prev[i].weight + prev[i+1].weight, syms})
		}
		// Merge-sort packages with the leaf coins.
		row := make([]coin, 0, len(packages)+len(leaves))
		i, j := 0, 0
		for i < len(packages) || j < len(leaves) {
			if j >= len(leaves) || (i < len(packages) && packages[i].weight <= leaves[j].weight) {
				row = append(row, packages[i])
				i++
			} else {
				row = append(row, leaves[j])
				j++
			}
		}
		prev = row
	}
	// Take the first 2(n-1) items of the final row; each time a leaf
	// symbol appears in a selected package its depth increases by one.
	take := 2 * (len(used) - 1)
	if take > len(prev) {
		take = len(prev)
	}
	for _, c := range prev[:take] {
		for _, sym := range c.syms {
			lengths[sym]++
		}
	}
	return lengths, nil
}

// NewEncoder builds canonical codes from code lengths. The lengths must
// form a valid code (typically produced by BuildLengths or read from a
// Deflate header).
func NewEncoder(lengths []uint8) (*Encoder, error) {
	var counts [MaxBits + 1]int
	for _, l := range lengths {
		if l > MaxBits {
			return nil, ErrTooManyBits
		}
		if l > 0 {
			counts[l]++
		}
	}
	var firstCode [MaxBits + 2]uint32
	code := uint32(0)
	for l := 1; l <= MaxBits; l++ {
		code = (code + uint32(counts[l-1])) << 1
		firstCode[l] = code
	}
	enc := &Encoder{Lengths: lengths, Codes: make([]uint32, len(lengths))}
	next := firstCode
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		enc.Codes[sym] = reverseBits(next[l], uint(l))
		next[l]++
	}
	return enc, nil
}
