// Package huffman implements canonical Huffman codes as used by Deflate
// (RFC 1951): construction and validation of decoders from code-length
// sequences, fast table-driven decoding, and length-limited code
// construction for the compressor suite.
//
// The validity rules follow the paper's Figure 6: a code is *invalid*
// when some length is oversubscribed (more codes of a length than the
// binary tree allows) and *inefficient* (non-optimal) when leaves remain
// unused. The block finder exploits both conditions as filters
// (paper §3.4.2).
package huffman

import (
	"errors"

	"repro/internal/bitio"
)

// MaxBits is the maximum code length in Deflate literal/distance codes.
const MaxBits = 15

// Validation outcomes for a code-length sequence.
var (
	ErrOversubscribed = errors.New("huffman: oversubscribed code (invalid)")
	ErrIncomplete     = errors.New("huffman: incomplete code (non-optimal)")
	ErrNoSymbols      = errors.New("huffman: no symbols with nonzero length")
	ErrTooManyBits    = errors.New("huffman: code length exceeds maximum")
	ErrBadSymbol      = errors.New("huffman: invalid symbol in stream")
)

// Validate checks the code described by lengths (one entry per symbol,
// zero meaning "symbol unused"). With allowIncomplete, a code with
// exactly one used symbol may be incomplete — the Deflate special case
// for distance codes ("if only one distance code is used, it is encoded
// using one bit").
func Validate(lengths []uint8, allowIncomplete bool) error {
	var counts [MaxBits + 1]int
	used := 0
	for _, l := range lengths {
		if l > MaxBits {
			return ErrTooManyBits
		}
		if l > 0 {
			counts[l]++
			used++
		}
	}
	if used == 0 {
		return ErrNoSymbols
	}
	return ValidateCounts(counts[:], used, allowIncomplete)
}

// ValidateCounts checks a histogram of code lengths (counts[l] = number
// of symbols with length l). used is the total number of coded symbols.
func ValidateCounts(counts []int, used int, allowIncomplete bool) error {
	avail := 1
	incomplete := false
	for l := 1; l < len(counts); l++ {
		avail <<= 1
		avail -= counts[l]
		if avail < 0 {
			return ErrOversubscribed
		}
	}
	incomplete = avail != 0
	if incomplete {
		if allowIncomplete && used == 1 {
			return nil
		}
		return ErrIncomplete
	}
	return nil
}

// Entry is one cell of the decoding table: a packed uint32.
//
//	bits 0..4   total bits consumed (code length, or root bits for a link)
//	bits 5..8   extra sub-table index bits (nonzero marks a link entry)
//	bits 16..31 symbol value, or sub-table base offset for link entries
//
// A zero Entry marks an invalid code prefix. The type and its
// accessors are exported so decode loops can inline the two-level
// lookup (via Table/RootBits) without a method call per symbol.
type Entry uint32

// Bits returns the total bits a direct hit consumes (or the root width
// for a link entry). Zero means the prefix is invalid.
func (e Entry) Bits() uint { return uint(e & 31) }

// SubBits returns the second-level index width; nonzero marks a link.
func (e Entry) SubBits() uint { return uint(e >> 5 & 15) }

// Val returns the decoded symbol, or the sub-table base for a link.
func (e Entry) Val() uint16 { return uint16(e >> 16) }

func mkEntry(bits, subBits uint, val uint16) Entry {
	return Entry(bits&31) | Entry(subBits&15)<<5 | Entry(val)<<16
}

// Decoder is a table-driven canonical Huffman decoder. Codes no longer
// than rootBits resolve with a single lookup; longer codes use one
// second-level lookup, the same structure zlib's inflate uses.
type Decoder struct {
	root     []Entry
	rootBits uint
	maxLen   uint
	// minLen is used by EOF handling: at least minLen bits must remain.
	minLen uint
}

// defaultRootBits balances table build cost (paid per Dynamic Block)
// against lookup depth. 9 matches zlib's ENOUGH-tuned default.
const defaultRootBits = 9

// NewDecoder builds a decoder for the canonical code defined by lengths.
// allowIncomplete has the same meaning as in Validate.
func NewDecoder(lengths []uint8, allowIncomplete bool) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Init(lengths, allowIncomplete); err != nil {
		return nil, err
	}
	return d, nil
}

// Init (re)builds the decoder in place, reusing table storage. This is
// the hot path of Dynamic Block decoding: two Init calls per block.
func (d *Decoder) Init(lengths []uint8, allowIncomplete bool) error {
	var counts [MaxBits + 1]int
	used := 0
	maxLen, minLen := uint(0), uint(MaxBits+1)
	for _, l := range lengths {
		if l > MaxBits {
			return ErrTooManyBits
		}
		if l == 0 {
			continue
		}
		counts[l]++
		used++
		if uint(l) > maxLen {
			maxLen = uint(l)
		}
		if uint(l) < minLen {
			minLen = uint(l)
		}
	}
	if used == 0 {
		return ErrNoSymbols
	}
	if err := ValidateCounts(counts[:], used, allowIncomplete); err != nil {
		return err
	}

	// Canonical first-code computation.
	var firstCode [MaxBits + 2]uint32
	code := uint32(0)
	for l := 1; l <= MaxBits; l++ {
		code = (code + uint32(counts[l-1])) << 1
		firstCode[l] = code
	}

	rootBits := uint(defaultRootBits)
	if maxLen < rootBits {
		rootBits = maxLen
	}
	d.rootBits = rootBits
	d.maxLen = maxLen
	d.minLen = minLen

	// Size the table: root plus one sub-table per distinct long-code
	// root prefix. We allocate lazily by appending.
	rootSize := 1 << rootBits
	if cap(d.root) < rootSize {
		d.root = make([]Entry, rootSize, rootSize*2)
	}
	d.root = d.root[:rootSize]
	for i := range d.root {
		d.root[i] = 0
	}

	// nextCode tracks the running canonical code per length.
	nextCode := firstCode
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		c := nextCode[l]
		nextCode[l]++
		// Deflate codes are written MSB-first within the code while the
		// stream is LSB-first, so the lookup key is the bit-reversed code.
		rev := reverseBits(c, uint(l))
		if uint(l) <= rootBits {
			// Fill all root slots whose low bits match the code.
			e := mkEntry(uint(l), 0, uint16(sym))
			step := 1 << uint(l)
			for i := int(rev); i < rootSize; i += step {
				d.root[i] = e
			}
			continue
		}
		// Long code: ensure a sub-table exists for this root prefix.
		prefix := rev & uint32(rootSize-1)
		subBits := maxLen - rootBits
		le := d.root[prefix]
		var base int
		if le == 0 {
			base = len(d.root)
			n := 1 << subBits
			for i := 0; i < n; i++ {
				d.root = append(d.root, 0)
			}
			if base > int(^uint16(0)) {
				return errors.New("huffman: table too large")
			}
			d.root[prefix] = mkEntry(rootBits, subBits, uint16(base))
		} else {
			base = int(le.Val())
		}
		e := mkEntry(uint(l), 0, uint16(sym))
		step := 1 << (uint(l) - rootBits)
		subSize := 1 << subBits
		for i := int(rev >> rootBits); i < subSize; i += step {
			d.root[base+i] = e
		}
	}
	return nil
}

func reverseBits(v uint32, n uint) uint32 {
	var r uint32
	for i := uint(0); i < n; i++ {
		r = r<<1 | v&1
		v >>= 1
	}
	return r
}

// Decode reads one symbol from br. Near end of stream it relies on
// Peek's zero padding and only errors when the consumed code would
// extend past the real data.
func (d *Decoder) Decode(br *bitio.BitReader) (uint16, error) {
	v, avail := br.Peek(d.maxLen)
	e := d.root[v&uint64(1<<d.rootBits-1)]
	if e == 0 {
		return 0, ErrBadSymbol
	}
	if sb := e.SubBits(); sb != 0 {
		e = d.root[int(e.Val())+int(v>>d.rootBits&(1<<sb-1))]
		if e == 0 {
			return 0, ErrBadSymbol
		}
	}
	n := e.Bits()
	if n > avail {
		return 0, errors.New("huffman: unexpected end of stream")
	}
	br.Skip(n)
	return e.Val(), nil
}

// MaxLen returns the longest code length in the decoder.
func (d *Decoder) MaxLen() uint { return d.maxLen }

// Table returns the decoding table for inlined lookups: index the low
// RootBits of the bitstream into it; a link entry (SubBits != 0)
// redirects to Val()+nextBits. The slice is owned by the Decoder and
// valid until the next Init.
func (d *Decoder) Table() []Entry { return d.root }

// RootBits returns the first-level index width of Table.
func (d *Decoder) RootBits() uint { return d.rootBits }
