package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestValidateFigure6(t *testing.T) {
	// The three example codes from the paper's Figure 6.
	cases := []struct {
		lengths []uint8
		want    error
	}{
		{[]uint8{1, 1, 1}, ErrOversubscribed}, // left: three 1-bit symbols
		{[]uint8{2, 2, 2}, ErrIncomplete},     // middle: code 11 unused
		{[]uint8{2, 2, 1}, nil},               // right: complete
	}
	for i, c := range cases {
		if got := Validate(c.lengths, false); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestValidateSpecialCases(t *testing.T) {
	if err := Validate([]uint8{0, 0, 0}, false); err != ErrNoSymbols {
		t.Errorf("all-zero: %v", err)
	}
	// Single symbol of length 1 is incomplete, but allowed for distance codes.
	if err := Validate([]uint8{1, 0}, false); err != ErrIncomplete {
		t.Errorf("single strict: %v", err)
	}
	if err := Validate([]uint8{1, 0}, true); err != nil {
		t.Errorf("single lenient: %v", err)
	}
	// Two single-length-1 symbols form a complete code.
	if err := Validate([]uint8{1, 1}, false); err != nil {
		t.Errorf("two 1-bit: %v", err)
	}
	if err := Validate([]uint8{16}, false); err != ErrTooManyBits {
		t.Errorf("too long: %v", err)
	}
}

func TestDecoderKnownCode(t *testing.T) {
	// Lengths A=2, B=2, C=1 (Figure 6 right). Canonical: C=0, A=10, B=11.
	d, err := NewDecoder([]uint8{2, 2, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := bitio.NewBitWriter(&buf)
	// Emit C A B C. LSB-first writer wants bit-reversed codes:
	// C=0 (1 bit), A=10 -> reversed 01, B=11 -> reversed 11.
	w.WriteBits(0, 1)
	w.WriteBits(0b01, 2)
	w.WriteBits(0b11, 2)
	w.WriteBits(0, 1)
	w.Flush()
	r := bitio.NewBitReaderBytes(buf.Bytes())
	want := []uint16{2, 0, 1, 2}
	for i, sym := range want {
		got, err := d.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != sym {
			t.Fatalf("symbol %d: got %d want %d", i, got, sym)
		}
	}
}

func TestDecoderInvalidPrefix(t *testing.T) {
	// Single-symbol incomplete code: code "0" decodes, code "1" is invalid.
	d, err := NewDecoder([]uint8{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	r := bitio.NewBitReaderBytes([]byte{0xFF})
	if _, err := d.Decode(r); err != ErrBadSymbol {
		t.Fatalf("got %v", err)
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nsyms := 2 + rng.Intn(285)
		freqs := make([]int, nsyms)
		for i := range freqs {
			if rng.Intn(3) > 0 {
				freqs[i] = 1 + rng.Intn(10000)
			}
		}
		lengths, err := BuildLengths(freqs, MaxBits)
		if err != nil {
			t.Logf("BuildLengths: %v", err)
			return false
		}
		used := 0
		for _, l := range lengths {
			if l > 0 {
				used++
			}
		}
		if err := Validate(lengths, used <= 1); err != nil {
			t.Logf("Validate: %v (lengths %v)", err, lengths)
			return false
		}
		enc, err := NewEncoder(lengths)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(lengths, used <= 1)
		if err != nil {
			t.Logf("NewDecoder: %v", err)
			return false
		}
		// Encode a random symbol sequence (only used symbols).
		var symbols []uint16
		for i := 0; i < 500; i++ {
			s := rng.Intn(nsyms)
			if lengths[s] > 0 {
				symbols = append(symbols, uint16(s))
			}
		}
		var buf bytes.Buffer
		w := bitio.NewBitWriter(&buf)
		for _, s := range symbols {
			w.WriteBits(uint64(enc.Codes[s]), uint(lengths[s]))
		}
		w.Flush()
		r := bitio.NewBitReaderBytes(buf.Bytes())
		for _, s := range symbols {
			got, err := dec.Decode(r)
			if err != nil || got != s {
				t.Logf("decode got %d err %v want %d", got, err, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildLengthsRespectsLimit(t *testing.T) {
	// Fibonacci-like frequencies force deep unlimited Huffman trees;
	// package-merge must cap the depth.
	freqs := make([]int, 30)
	a, b := 1, 1
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	for _, limit := range []uint{7, 9, 15} {
		lengths, err := BuildLengths(freqs, limit)
		if err != nil {
			t.Fatal(err)
		}
		for sym, l := range lengths {
			if uint(l) > limit {
				t.Fatalf("limit %d: symbol %d got length %d", limit, sym, l)
			}
		}
		if err := Validate(lengths, false); err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
	}
}

func TestBuildLengthsOptimality(t *testing.T) {
	// For a power-of-two uniform distribution the optimal code is flat.
	freqs := []int{5, 5, 5, 5}
	lengths, err := BuildLengths(freqs, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		if l != 2 {
			t.Fatalf("got %v", lengths)
		}
	}
}

func TestBuildLengthsDegenerate(t *testing.T) {
	lengths, err := BuildLengths([]int{0, 0, 7, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[2] != 1 {
		t.Fatalf("single-symbol: %v", lengths)
	}
	lengths, err = BuildLengths([]int{0, 0, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[0] != 1 {
		t.Fatalf("no-symbol: %v", lengths)
	}
}

func TestDecoderLongCodes(t *testing.T) {
	// Construct a code with lengths spanning the sub-table boundary
	// (root is 9 bits): lengths 1..15 in a complete code.
	lengths := make([]uint8, 16)
	for i := 1; i <= 14; i++ {
		lengths[i-1] = uint8(i)
	}
	lengths[14] = 15
	lengths[15] = 15
	if err := Validate(lengths, false); err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(lengths, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := bitio.NewBitWriter(&buf)
	for s := 0; s < 16; s++ {
		w.WriteBits(uint64(enc.Codes[s]), uint(lengths[s]))
	}
	w.Flush()
	r := bitio.NewBitReaderBytes(buf.Bytes())
	for s := 0; s < 16; s++ {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", s, err)
		}
		if got != uint16(s) {
			t.Fatalf("symbol %d: got %d", s, got)
		}
	}
}

func BenchmarkDecoderInit(b *testing.B) {
	// Cost of building the literal decoder for a typical Dynamic Block.
	rng := rand.New(rand.NewSource(1))
	freqs := make([]int, 286)
	for i := range freqs {
		freqs[i] = 1 + rng.Intn(1000)
	}
	lengths, err := BuildLengths(freqs, MaxBits)
	if err != nil {
		b.Fatal(err)
	}
	var d Decoder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Init(lengths, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	freqs := make([]int, 286)
	for i := range freqs {
		freqs[i] = 1 + rng.Intn(1000)
	}
	lengths, _ := BuildLengths(freqs, MaxBits)
	enc, _ := NewEncoder(lengths)
	dec, _ := NewDecoder(lengths, false)
	var buf bytes.Buffer
	w := bitio.NewBitWriter(&buf)
	const n = 100000
	for i := 0; i < n; i++ {
		s := rng.Intn(286)
		w.WriteBits(uint64(enc.Codes[s]), uint(lengths[s]))
	}
	w.Flush()
	data := buf.Bytes()
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewBitReaderBytes(data)
		for j := 0; j < n; j++ {
			if _, err := dec.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// The Deflate special case: a code with a single used symbol may be
// incomplete ("if only one distance code is used, it is encoded using
// one bit"). The decoder must build it when allowed, resolve the one
// code, reject the unused prefix, and still refuse the table when the
// caller demands completeness.
func TestIncompleteSingleCode(t *testing.T) {
	lengths := make([]uint8, 30)
	lengths[4] = 1 // one distance code, one bit: "0" means symbol 4

	if _, err := NewDecoder(lengths, false); err != ErrIncomplete {
		t.Fatalf("strict build: %v, want ErrIncomplete", err)
	}
	dec, err := NewDecoder(lengths, true)
	if err != nil {
		t.Fatal(err)
	}
	// Stream "0 1": the first bit decodes symbol 4, the second hits the
	// unused half of the table.
	r := bitio.NewBitReaderBytes([]byte{0b10})
	if got, err := dec.Decode(r); err != nil || got != 4 {
		t.Fatalf("decode: %d, %v", got, err)
	}
	if _, err := dec.Decode(r); err != ErrBadSymbol {
		t.Fatalf("unused prefix: %v, want ErrBadSymbol", err)
	}

	// Multi-symbol incomplete codes stay invalid even when the
	// single-code exception is allowed.
	lengths[7] = 2
	if _, err := NewDecoder(lengths, true); err != ErrIncomplete {
		t.Fatalf("two-symbol incomplete: %v, want ErrIncomplete", err)
	}
}
