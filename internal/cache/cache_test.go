package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRUCache[int, string](3)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(3, "c")
	c.Get(1) // 1 becomes most recent; 2 is now LRU
	c.Put(4, "d")
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if !c.Contains(k) {
			t.Fatalf("%d missing", k)
		}
	}
}

func TestPutExistingRefreshes(t *testing.T) {
	c := NewLRUCache[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(1, 11) // refresh 1; 2 becomes LRU
	c.Put(3, 30)
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("got %d", v)
	}
}

func TestStats(t *testing.T) {
	c := NewLRUCache[int, int](2)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Put(2, 2)
	c.Put(3, 3)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestOnEvict(t *testing.T) {
	var evicted []int
	c := NewLRUCache[int, int](1)
	c.OnEvict = func(k, v int) { evicted = append(evicted, k) }
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted %v", evicted)
	}
}

func TestDeleteAndResize(t *testing.T) {
	c := NewLRUCache[int, int](4)
	for i := 0; i < 4; i++ {
		c.Put(i, i)
	}
	c.Delete(2)
	if c.Len() != 3 || c.Contains(2) {
		t.Fatal("delete failed")
	}
	c.Resize(1)
	if c.Len() != 1 {
		t.Fatalf("len after resize = %d", c.Len())
	}
	// Deleting a missing key is a no-op.
	c.Delete(99)
}

func TestPeekDoesNotTouch(t *testing.T) {
	c := NewLRUCache[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Peek(1) // must NOT refresh 1
	c.Put(3, 3)
	if c.Contains(1) {
		t.Fatal("peek should not have refreshed 1")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(16)
		c := NewLRUCache[int, int](capacity)
		for i := 0; i < 500; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Put(rng.Intn(40), i)
			case 1:
				c.Get(rng.Intn(40))
			default:
				c.Delete(rng.Intn(40))
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKeys(t *testing.T) {
	c := NewLRUCache[int, int](8)
	for i := 0; i < 5; i++ {
		c.Put(i, i)
	}
	if len(c.Keys()) != 5 {
		t.Fatalf("keys %v", c.Keys())
	}
}
