// Package cache provides a generic keyed cache with pluggable eviction
// strategies — the Cache<Key, Value, CacheStrategy> component of the
// paper's architecture (Figure 5). The chunk fetcher uses two instances:
// a small cache for accessed chunks and a larger prefetch cache, kept
// separate to avoid prefetch-induced pollution (paper §3.2).
package cache

// Strategy decides which key to evict when a cache is full.
type Strategy[K comparable] interface {
	// Touch records an access to key.
	Touch(key K)
	// Insert records a new key.
	Insert(key K)
	// Evict selects and removes the eviction victim.
	Evict() (K, bool)
	// Remove deletes key from the strategy's bookkeeping.
	Remove(key K)
}

// lruNode is a doubly-linked list node for LRU ordering.
type lruNode[K comparable] struct {
	key        K
	prev, next *lruNode[K]
}

// LRU is a least-recently-used eviction strategy.
type LRU[K comparable] struct {
	nodes      map[K]*lruNode[K]
	head, tail *lruNode[K] // head = most recent, tail = eviction victim
}

// NewLRU returns an empty LRU strategy.
func NewLRU[K comparable]() *LRU[K] {
	return &LRU[K]{nodes: map[K]*lruNode[K]{}}
}

func (l *LRU[K]) unlink(n *lruNode[K]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU[K]) pushFront(n *lruNode[K]) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// Touch implements Strategy.
func (l *LRU[K]) Touch(key K) {
	if n, ok := l.nodes[key]; ok {
		l.unlink(n)
		l.pushFront(n)
	}
}

// Insert implements Strategy.
func (l *LRU[K]) Insert(key K) {
	if _, ok := l.nodes[key]; ok {
		l.Touch(key)
		return
	}
	n := &lruNode[K]{key: key}
	l.nodes[key] = n
	l.pushFront(n)
}

// Evict implements Strategy.
func (l *LRU[K]) Evict() (K, bool) {
	var zero K
	if l.tail == nil {
		return zero, false
	}
	n := l.tail
	l.unlink(n)
	delete(l.nodes, n.key)
	return n.key, true
}

// Remove implements Strategy.
func (l *LRU[K]) Remove(key K) {
	if n, ok := l.nodes[key]; ok {
		l.unlink(n)
		delete(l.nodes, key)
	}
}

// Stats counts cache effectiveness; the chunk fetcher reports these for
// diagnosing prefetch quality.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Cache is a capacity-bounded map with strategy-driven eviction. It is
// not goroutine-safe; the chunk fetcher serialises access.
type Cache[K comparable, V any] struct {
	capacity int
	items    map[K]V
	strat    Strategy[K]
	stats    Stats
	// OnEvict, when set, observes evicted entries.
	OnEvict func(K, V)
}

// New returns a cache holding at most capacity entries.
func New[K comparable, V any](capacity int, strat Strategy[K]) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{capacity: capacity, items: map[K]V{}, strat: strat}
}

// NewLRUCache returns a cache with LRU eviction.
func NewLRUCache[K comparable, V any](capacity int) *Cache[K, V] {
	return New[K, V](capacity, NewLRU[K]())
}

// Get returns the value for key, updating recency.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	v, ok := c.items[key]
	if ok {
		c.strat.Touch(key)
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return v, ok
}

// Peek returns the value without updating recency or stats.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	v, ok := c.items[key]
	return v, ok
}

// Contains reports presence without side effects.
func (c *Cache[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or replaces the value for key, evicting if necessary.
func (c *Cache[K, V]) Put(key K, value V) {
	if _, ok := c.items[key]; ok {
		c.items[key] = value
		c.strat.Touch(key)
		return
	}
	for len(c.items) >= c.capacity {
		victim, ok := c.strat.Evict()
		if !ok {
			break
		}
		if c.OnEvict != nil {
			c.OnEvict(victim, c.items[victim])
		}
		delete(c.items, victim)
		c.stats.Evictions++
	}
	c.items[key] = value
	c.strat.Insert(key)
}

// Delete removes key.
func (c *Cache[K, V]) Delete(key K) {
	if _, ok := c.items[key]; ok {
		delete(c.items, key)
		c.strat.Remove(key)
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Capacity returns the configured capacity.
func (c *Cache[K, V]) Capacity() int { return c.capacity }

// Resize changes the capacity, evicting as needed.
func (c *Cache[K, V]) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.capacity = capacity
	for len(c.items) > c.capacity {
		victim, ok := c.strat.Evict()
		if !ok {
			break
		}
		if c.OnEvict != nil {
			c.OnEvict(victim, c.items[victim])
		}
		delete(c.items, victim)
		c.stats.Evictions++
	}
}

// Stats returns a copy of the hit/miss/eviction counters.
func (c *Cache[K, V]) Stats() Stats { return c.stats }

// Keys returns the cached keys in unspecified order.
func (c *Cache[K, V]) Keys() []K {
	out := make([]K, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	return out
}
