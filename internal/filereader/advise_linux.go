//go:build linux

package filereader

import (
	"os"
	"syscall"
)

// posix_fadvise advice value: the application expects to access the
// range sequentially, so the kernel may double the readahead window.
const fadvSequential = 2

// adviseSequential issues posix_fadvise(POSIX_FADV_SEQUENTIAL) for
// [off, off+n) of f. The stdlib syscall package exposes no Fadvise
// wrapper, so this calls fadvise64 directly. Failures are deliberately
// ignored: the hint is an optimization, and some filesystems (and
// seccomp profiles) reject it.
func adviseSequential(f *os.File, off, n int64) {
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(),
		uintptr(off), uintptr(n), fadvSequential, 0, 0)
}
