package filereader

import (
	"fmt"
	"io"
)

// Walker parses a FileReader sequentially with bounded memory: small
// Peek/Next requests are served from a fixed refill window, and Skip
// advances past payloads without reading them. It is the primitive the
// span-engine sizing passes use to walk frame and block headers of a
// file larger than RAM — the windowed counterpart of slicing a
// whole-file buffer.
//
// A Walker is not safe for concurrent use; every sizing pass owns its
// own.
type Walker struct {
	src    FileReader
	size   int64
	window int

	buf    []byte // buffered bytes, absolute range [bufOff, bufOff+len(buf))
	bufOff int64
	pos    int64
}

// DefaultWalkerWindow is the refill pread size. It is deliberately
// small: a sizing pass over a sparse multi-gigabyte file skips from
// block header to block header, and every skip past the buffered window
// costs one refill — a small window keeps the scan's total source
// traffic a low single-digit percentage of the file even when block
// payloads dwarf their headers.
const DefaultWalkerWindow = 8 << 10

// NewWalker returns a Walker positioned at offset 0. window <= 0
// selects DefaultWalkerWindow.
func NewWalker(src FileReader, window int) *Walker {
	if window <= 0 {
		window = DefaultWalkerWindow
	}
	return &Walker{src: src, size: src.Size(), window: window}
}

// Pos returns the current absolute offset.
func (w *Walker) Pos() int64 { return w.pos }

// Size returns the source size.
func (w *Walker) Size() int64 { return w.size }

// Remaining returns the bytes between the current position and EOF
// (negative after a Skip past the end — the caller's truncation check).
func (w *Walker) Remaining() int64 { return w.size - w.pos }

// Peek returns exactly n bytes at the current position without
// advancing. The slice is valid until the next Walker call. Fewer than
// n bytes before EOF is io.ErrUnexpectedEOF; read failures are ErrIO.
func (w *Walker) Peek(n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if w.pos < w.bufOff || w.pos+int64(n) > w.bufOff+int64(len(w.buf)) {
		if err := w.refill(n); err != nil {
			return nil, err
		}
	}
	i := int(w.pos - w.bufOff)
	return w.buf[i : i+n], nil
}

// Next returns exactly n bytes at the current position and advances
// past them. The slice is valid until the next Walker call.
func (w *Walker) Next(n int) ([]byte, error) {
	b, err := w.Peek(n)
	if err != nil {
		return nil, err
	}
	w.pos += int64(n)
	return b, nil
}

// Skip advances the position by n bytes without reading them. Skipping
// past EOF is allowed (a following Peek fails and Remaining goes
// negative), so callers can detect truncation where it is cheapest.
func (w *Walker) Skip(n int64) { w.pos += n }

// refill loads at least need bytes at the current position into the
// buffer, reading up to the window size (or need, whichever is larger).
func (w *Walker) refill(need int) error {
	if w.pos < 0 || w.pos+int64(need) > w.size {
		return fmt.Errorf("walker at offset %d: need %d bytes, %d remain: %w", w.pos, need, w.size-w.pos, io.ErrUnexpectedEOF)
	}
	n := w.window
	if need > n {
		n = need
	}
	if int64(n) > w.size-w.pos {
		n = int(w.size - w.pos)
	}
	if cap(w.buf) < n {
		w.buf = make([]byte, n)
	} else {
		w.buf = w.buf[:n]
	}
	rn, err := w.src.ReadAt(w.buf, w.pos)
	if rn < need {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("%w: walker refill at offset %d: %w", ErrIO, w.pos, err)
	}
	w.buf = w.buf[:rn]
	w.bufOff = w.pos
	return nil
}
