//go:build !linux

package filereader

import "os"

// adviseSequential is a no-op where posix_fadvise is unavailable.
func adviseSequential(f *os.File, off, n int64) {}
