// Package filereader abstracts file access for the parallel reader —
// the FileReader hierarchy of the paper's architecture (Figure 5):
// StandardFileReader wraps regular files, MemoryReader serves in-memory
// buffers, and SharedFileReader lets many decompression threads read the
// same file concurrently with positional reads (benchmarked in the
// paper's Figure 8).
package filereader

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// ErrIO marks a positional read that failed for I/O reasons — a short
// pread, a vanished file, a directory opened as a file. It lets callers
// distinguish "the storage failed" from "the content is not the format
// it claims to be". Test with errors.Is.
var ErrIO = errors.New("filereader: read failed")

// FileReader is a sized, concurrently usable positional reader. All
// implementations must allow concurrent ReadAt calls.
type FileReader interface {
	io.ReaderAt
	// Size returns the total size in bytes.
	Size() int64
}

// MemoryReader serves a byte slice; the zero-copy path for benchmarks
// and tests (the paper's equivalent is a file in /dev/shm).
type MemoryReader []byte

// ReadAt implements io.ReaderAt.
func (m MemoryReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("filereader: negative offset")
	}
	if off >= int64(len(m)) {
		return 0, io.EOF
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements FileReader.
func (m MemoryReader) Size() int64 { return int64(len(m)) }

// StandardFileReader wraps an *os.File. os.File.ReadAt issues pread(2),
// which is safe for concurrent use from many goroutines.
type StandardFileReader struct {
	f    *os.File
	size int64
}

// OpenFile opens path for shared positional reading.
func OpenFile(path string) (*StandardFileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &StandardFileReader{f: f, size: st.Size()}, nil
}

// NewStandardFileReader wraps an already-open file.
func NewStandardFileReader(f *os.File) (*StandardFileReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return &StandardFileReader{f: f, size: st.Size()}, nil
}

// ReadAt implements io.ReaderAt.
func (r *StandardFileReader) ReadAt(p []byte, off int64) (int, error) {
	return r.f.ReadAt(p, off)
}

// Size implements FileReader.
func (r *StandardFileReader) Size() int64 { return r.size }

// Close closes the underlying file.
func (r *StandardFileReader) Close() error { return r.f.Close() }

// SharedFileReader multiplexes one FileReader across decompression
// threads, counting traffic. The paper's SharedFileReader additionally
// maintains per-thread cursors; in Go the positional-read model makes
// cursors unnecessary, so this wrapper only adds accounting.
type SharedFileReader struct {
	src       FileReader
	bytesRead atomic.Int64
	reads     atomic.Int64
}

// NewShared wraps src for shared use.
func NewShared(src FileReader) *SharedFileReader {
	return &SharedFileReader{src: src}
}

// ReadAt implements io.ReaderAt; it is safe for concurrent use.
func (s *SharedFileReader) ReadAt(p []byte, off int64) (int, error) {
	n, err := s.src.ReadAt(p, off)
	s.bytesRead.Add(int64(n))
	s.reads.Add(1)
	return n, err
}

// Size implements FileReader.
func (s *SharedFileReader) Size() int64 { return s.src.Size() }

// BytesRead returns the total bytes served so far.
func (s *SharedFileReader) BytesRead() int64 { return s.bytesRead.Load() }

// Reads returns the number of ReadAt calls served so far.
func (s *SharedFileReader) Reads() int64 { return s.reads.Load() }

// Bytes returns the underlying buffer when src is memory-backed —
// directly, or behind a SharedFileReader — so callers can take
// zero-copy fast paths (slicing instead of preading). The second result
// reports whether src was memory-backed.
func Bytes(src FileReader) ([]byte, bool) {
	switch r := src.(type) {
	case MemoryReader:
		return r, true
	case *SharedFileReader:
		if m, ok := r.src.(MemoryReader); ok {
			return m, true
		}
	}
	return nil, false
}

// AdviseSequential hints the OS that the byte range [off, end) of src
// is about to be read sequentially (posix_fadvise SEQUENTIAL on Linux,
// widening the kernel readahead window). It is a no-op for
// memory-backed sources and on platforms without the syscall — callers
// hint unconditionally and let the platform decide.
func AdviseSequential(src FileReader, off, end int64) {
	if end <= off {
		return
	}
	if f := osFile(src); f != nil {
		adviseSequential(f, off, end-off)
	}
}

// osFile unwraps src to its backing *os.File, when it has one.
func osFile(src FileReader) *os.File {
	switch r := src.(type) {
	case *StandardFileReader:
		return r.f
	case *SharedFileReader:
		return osFile(r.src)
	}
	return nil
}

// scratchPool recycles extent buffers between span decodes, so steady
// random access over a file-backed source allocates no per-read
// compressed-side garbage.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// extentNoop is the release function for zero-copy extents.
func extentNoop() {}

// Extent returns the compressed bytes [off, end) of src. Memory-backed
// sources are sliced without copying; file-backed sources are read with
// one pread into a pooled scratch buffer. The caller must call release
// exactly once when done with the bytes (and must not use them after).
// Read failures and short reads report ErrIO.
func Extent(src FileReader, off, end int64) (data []byte, release func(), err error) {
	if off < 0 || end < off || end > src.Size() {
		return nil, nil, fmt.Errorf("%w: extent [%d,%d) out of bounds (%d-byte source)", ErrIO, off, end, src.Size())
	}
	if m, ok := Bytes(src); ok {
		// Count the logical access even on the zero-copy path, so the
		// traffic counters mean the same thing for both backings.
		if s, shared := src.(*SharedFileReader); shared {
			s.bytesRead.Add(end - off)
			s.reads.Add(1)
		}
		return m[off:end], extentNoop, nil
	}
	bp := scratchPool.Get().(*[]byte)
	buf := *bp
	n := int(end - off)
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	rn, rerr := src.ReadAt(buf, off)
	if rn < n {
		*bp = buf
		scratchPool.Put(bp)
		if rerr == nil {
			rerr = io.ErrUnexpectedEOF
		}
		return nil, nil, fmt.Errorf("%w: extent [%d,%d): %w", ErrIO, off, end, rerr)
	}
	return buf, func() { *bp = buf; scratchPool.Put(bp) }, nil
}

// ReadAll loads the entire source into memory.
func ReadAll(src FileReader) ([]byte, error) {
	// In-memory sources alias their slice instead of copying: every
	// consumer treats the returned bytes as read-only, and the copy
	// would dominate the open cost of the checkpoint-import fast path
	// (which otherwise only parses a small index).
	if m, ok := src.(MemoryReader); ok {
		return m, nil
	}
	out := make([]byte, src.Size())
	n, err := src.ReadAt(out, 0)
	if int64(n) == src.Size() {
		return out, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, fmt.Errorf("%w: %w", ErrIO, err)
}
