package filereader

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestMemoryReader(t *testing.T) {
	m := MemoryReader([]byte("hello world"))
	if m.Size() != 11 {
		t.Fatal("size")
	}
	buf := make([]byte, 5)
	n, err := m.ReadAt(buf, 6)
	if err != nil || n != 5 || string(buf) != "world" {
		t.Fatalf("n=%d err=%v buf=%q", n, err, buf)
	}
	// Short read at the tail returns io.EOF.
	n, err = m.ReadAt(buf, 9)
	if n != 2 || err != io.EOF {
		t.Fatalf("tail: n=%d err=%v", n, err)
	}
	if _, err := m.ReadAt(buf, 11); err != io.EOF {
		t.Fatalf("past end: %v", err)
	}
	if _, err := m.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestStandardFileReader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	content := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(content)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(content)) {
		t.Fatal("size mismatch")
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch")
	}
}

func TestSharedConcurrentReads(t *testing.T) {
	// The Figure 8 scenario: many threads read the same buffer in a
	// strided pattern; every byte must arrive intact and the stats must
	// add up.
	content := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(content)
	s := NewShared(MemoryReader(content))

	const threads = 8
	const stride = 128 * 1024
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			buf := make([]byte, stride)
			for off := int64(tid) * stride; off < s.Size(); off += threads * stride {
				n, err := s.ReadAt(buf[:minI64(stride, s.Size()-off)], off)
				if err != nil && err != io.EOF {
					errs <- err
					return
				}
				if !bytes.Equal(buf[:n], content[off:off+int64(n)]) {
					errs <- io.ErrUnexpectedEOF
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.BytesRead() != int64(len(content)) {
		t.Fatalf("accounted %d bytes, want %d", s.BytesRead(), len(content))
	}
	if s.Reads() != 8 {
		t.Fatalf("reads = %d", s.Reads())
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BenchmarkSharedStrided reproduces Figure 8: aggregate bandwidth of
// strided 128 KiB reads from shared memory for varying thread counts.
func BenchmarkSharedStrided(b *testing.B) {
	content := make([]byte, 64<<20)
	rand.New(rand.NewSource(3)).Read(content)
	maxThreads := runtime.GOMAXPROCS(0)
	for _, threads := range []int{1, 2, 4, 8, 16, maxThreads} {
		if threads > maxThreads {
			continue
		}
		b.Run(benchName(threads), func(b *testing.B) {
			s := NewShared(MemoryReader(content))
			b.SetBytes(int64(len(content)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for tid := 0; tid < threads; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						buf := make([]byte, 128<<10)
						for off := int64(tid) * int64(len(buf)); off < s.Size(); off += int64(threads) * int64(len(buf)) {
							end := off + int64(len(buf))
							if end > s.Size() {
								end = s.Size()
							}
							s.ReadAt(buf[:end-off], off)
						}
					}(tid)
				}
				wg.Wait()
			}
		})
	}
}

func benchName(threads int) string {
	return "threads=" + string(rune('0'+threads/10)) + string(rune('0'+threads%10))
}

func TestOpenFileAndStandardReader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	content := []byte("0123456789abcdef")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(content)) {
		t.Fatalf("size %d", r.Size())
	}
	buf := make([]byte, 4)
	if _, err := r.ReadAt(buf, 10); err != nil || string(buf) != "abcd" {
		t.Fatalf("%q %v", buf, err)
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r2, err := NewStandardFileReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != int64(len(content)) {
		t.Fatal("wrapped size mismatch")
	}
}

func TestMemoryReaderEdges(t *testing.T) {
	m := MemoryReader("hello")
	buf := make([]byte, 10)
	if _, err := m.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := m.ReadAt(buf, 5); err != io.EOF {
		t.Fatalf("offset at end: %v", err)
	}
	n, err := m.ReadAt(buf, 2)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
}

func TestReadAll(t *testing.T) {
	data := []byte("the whole content")
	got, err := ReadAll(MemoryReader(data))
	if err != nil || string(got) != string(data) {
		t.Fatalf("%q %v", got, err)
	}
}

func TestSharedCounters(t *testing.T) {
	s := NewShared(MemoryReader(make([]byte, 1000)))
	buf := make([]byte, 100)
	for i := 0; i < 5; i++ {
		s.ReadAt(buf, int64(i)*100)
	}
	if s.Reads() != 5 || s.BytesRead() != 500 {
		t.Fatalf("reads=%d bytes=%d", s.Reads(), s.BytesRead())
	}
	if s.Size() != 1000 {
		t.Fatal("size passthrough broken")
	}
}
