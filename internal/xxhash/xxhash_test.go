package xxhash

import "testing"

// TestSum32Vectors pins the reference test vectors of the xxHash spec
// (the same values the LZ4 frame tests relied on before the
// implementations were merged here).
func TestSum32Vectors(t *testing.T) {
	if got := Sum32(nil, 0); got != 0x02CC5D05 {
		t.Fatalf("Sum32(\"\") = %#08x, want 0x02CC5D05", got)
	}
	if a, b := Sum32([]byte("abc"), 0), Sum32([]byte("abd"), 0); a == b {
		t.Fatal("Sum32 collision on near-identical inputs")
	}
	if a, b := Sum32([]byte("abc"), 0), Sum32([]byte("abc"), 1); a == b {
		t.Fatal("seed has no effect on Sum32")
	}
	// Cross-check every length class (striped 16-byte lanes, 4-byte
	// tail, byte tail) against the incremental property: a prefix's
	// hash must differ from the full input's.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 7)
	}
	seen := map[uint32]int{}
	for n := 0; n <= len(data); n++ {
		h := Sum32(data[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Sum32 collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

// TestSum64Vectors pins the xxHash64 reference vectors (the values the
// Zstandard content-checksum tests relied on).
func TestSum64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xEF46DB3751D8E999},
		{"a", 0xD24EC4F1A98C6E5B},
		{"abc", 0x44BC2CF5AD770999},
		{"Nobody inspects the spammish repetition", 0xFBCEA83C8A378BF1},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in), 0); got != c.want {
			t.Errorf("Sum64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
	if a, b := Sum64([]byte("abc"), 0), Sum64([]byte("abc"), 1); a == b {
		t.Fatal("seed has no effect on Sum64")
	}
	// Exercise the 32-byte striped path plus every tail length.
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i * 13)
	}
	seen := map[uint64]int{}
	for n := 0; n <= len(data); n++ {
		h := Sum64(data[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Sum64 collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}
