// Package xxhash implements the two xxHash variants the compressed
// formats here rely on: the LZ4 frame format checks headers, blocks and
// content with xxHash32, and the Zstandard frame format stores the low
// 32 bits of an xxHash64 as its content checksum. One package owns both
// so the backends cannot drift apart on the shared prime/mix scheme.
package xxhash

import (
	"encoding/binary"
	"math/bits"
)

// xxHash32 primes.
const (
	prime32x1 = 2654435761
	prime32x2 = 2246822519
	prime32x3 = 3266489917
	prime32x4 = 668265263
	prime32x5 = 374761393
)

func round32(acc, input uint32) uint32 {
	return bits.RotateLeft32(acc+input*prime32x2, 13) * prime32x1
}

// Sum32 computes the 32-bit xxHash of data with the given seed.
func Sum32(data []byte, seed uint32) uint32 {
	n := len(data)
	var h uint32
	p := 0
	if n >= 16 {
		v1 := seed + prime32x1 + prime32x2
		v2 := seed + prime32x2
		v3 := seed
		v4 := seed - prime32x1
		for p+16 <= n {
			v1 = round32(v1, binary.LittleEndian.Uint32(data[p:]))
			v2 = round32(v2, binary.LittleEndian.Uint32(data[p+4:]))
			v3 = round32(v3, binary.LittleEndian.Uint32(data[p+8:]))
			v4 = round32(v4, binary.LittleEndian.Uint32(data[p+12:]))
			p += 16
		}
		h = bits.RotateLeft32(v1, 1) + bits.RotateLeft32(v2, 7) +
			bits.RotateLeft32(v3, 12) + bits.RotateLeft32(v4, 18)
	} else {
		h = seed + prime32x5
	}
	h += uint32(n)
	for p+4 <= n {
		h += binary.LittleEndian.Uint32(data[p:]) * prime32x3
		h = bits.RotateLeft32(h, 17) * prime32x4
		p += 4
	}
	for p < n {
		h += uint32(data[p]) * prime32x5
		h = bits.RotateLeft32(h, 11) * prime32x1
		p++
	}
	h ^= h >> 15
	h *= prime32x2
	h ^= h >> 13
	h *= prime32x3
	h ^= h >> 16
	return h
}

// xxHash64 primes.
const (
	prime64x1 = 0x9E3779B185EBCA87
	prime64x2 = 0xC2B2AE3D27D4EB4F
	prime64x3 = 0x165667B19E3779F9
	prime64x4 = 0x85EBCA77C2B2AE63
	prime64x5 = 0x27D4EB2F165667C5
)

func round64(acc, v uint64) uint64 {
	acc += v * prime64x2
	return bits.RotateLeft64(acc, 31) * prime64x1
}

func merge64(h, v uint64) uint64 {
	h ^= round64(0, v)
	return h*prime64x1 + prime64x4
}

// Sum64 computes the 64-bit xxHash of data with the given seed.
func Sum64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	p := 0
	if n >= 32 {
		v1 := seed + prime64x1 + prime64x2
		v2 := seed + prime64x2
		v3 := seed
		v4 := seed - prime64x1
		for ; p+32 <= n; p += 32 {
			v1 = round64(v1, binary.LittleEndian.Uint64(data[p:]))
			v2 = round64(v2, binary.LittleEndian.Uint64(data[p+8:]))
			v3 = round64(v3, binary.LittleEndian.Uint64(data[p+16:]))
			v4 = round64(v4, binary.LittleEndian.Uint64(data[p+24:]))
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = merge64(h, v1)
		h = merge64(h, v2)
		h = merge64(h, v3)
		h = merge64(h, v4)
	} else {
		h = seed + prime64x5
	}
	h += uint64(n)
	for ; p+8 <= n; p += 8 {
		h ^= round64(0, binary.LittleEndian.Uint64(data[p:]))
		h = bits.RotateLeft64(h, 27)*prime64x1 + prime64x4
	}
	if p+4 <= n {
		h ^= uint64(binary.LittleEndian.Uint32(data[p:])) * prime64x1
		h = bits.RotateLeft64(h, 23)*prime64x2 + prime64x3
		p += 4
	}
	for ; p < n; p++ {
		h ^= uint64(data[p]) * prime64x5
		h = bits.RotateLeft64(h, 11) * prime64x1
	}
	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}
