package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/gzformat"
	"repro/internal/gzindex"
	"repro/internal/spanengine"
)

// scanBGZF builds the full span table of a BGZF file from metadata
// alone — the trivially parallel fast path of §3.4.4: every member
// header carries the compressed member size (BSIZE) and every footer
// the uncompressed size (ISIZE), so span boundaries, sizes, and the
// index are known without decompressing or searching anything.
//
// Headers and footers are read through small bounded windows (a few
// hundred bytes per member) rather than a file-wide reader, so the
// sizing pass over a larger-than-RAM file touches only metadata bytes.
//
// Members are grouped into spans of about ChunkSize compressed bytes
// so the per-task overhead stays comparable to the generic path.
func (c *gzipCodec) scanBGZF() (spanengine.ScanResult, error) {
	fileSize := int64(c.fileBits / 8)

	var spans []spanengine.Span
	var pos int64
	var decomp uint64
	groupStart := int64(0)
	groupDecomp := uint64(0)
	var groupMembers []memberMark

	flush := func(end int64, endDecomp uint64, eof bool) error {
		m := spanMeta{
			startBit:      uint64(groupStart) * 8,
			endBit:        uint64(end) * 8,
			startDecomp:   groupDecomp,
			size:          endDecomp - groupDecomp,
			atMemberStart: true,
			endIsEOF:      eof,
			members:       groupMembers,
		}
		groupMembers = nil
		if err := c.index.Add(gzindex.SeekPoint{
			CompressedBitOffset: m.startBit,
			UncompressedOffset:  m.startDecomp,
			AtMemberStart:       true,
		}, nil); err != nil {
			return err
		}
		for _, mm := range m.members {
			c.index.AddMemberEnd(m.startBit,
				gzindex.MemberEnd{RelEnd: mm.absEnd - m.startDecomp, CRC32: mm.crc})
		}
		c.byOff[groupStart] = len(c.metas)
		c.metas = append(c.metas, m)
		spans = append(spans, spanengine.Span{
			CompOff:    groupStart,
			CompEnd:    end,
			DecompOff:  int64(m.startDecomp),
			DecompSize: int64(m.size),
		})
		groupStart = end
		groupDecomp = endDecomp
		return nil
	}

	for pos < fileSize {
		hdr, err := c.parseHeaderAt(pos, fileSize)
		if err != nil {
			return spanengine.ScanResult{}, fmt.Errorf("core: BGZF member scan at %d: %w", pos, err)
		}
		if hdr.BGZFBlockSize <= 0 {
			return spanengine.ScanResult{}, fmt.Errorf("core: member at %d lacks BGZF metadata", pos)
		}
		memberEnd := pos + int64(hdr.BGZFBlockSize)
		if memberEnd > fileSize {
			return spanengine.ScanResult{}, fmt.Errorf("core: BGZF member at %d overruns the file", pos)
		}
		// The footer is CRC32 then ISIZE; one read captures both, so the
		// member marks enable architecture-level CRC verification too.
		var footerRaw [8]byte
		if _, err := c.src.ReadAt(footerRaw[:], memberEnd-8); err != nil {
			return spanengine.ScanResult{}, err
		}
		decomp += uint64(binary.LittleEndian.Uint32(footerRaw[4:]))
		groupMembers = append(groupMembers, memberMark{
			absEnd: decomp,
			crc:    binary.LittleEndian.Uint32(footerRaw[:4]),
		})
		pos = memberEnd
		if pos-groupStart >= int64(c.cfg.ChunkSize) || pos >= fileSize {
			if err := flush(pos, decomp, pos >= fileSize); err != nil {
				return spanengine.ScanResult{}, err
			}
		}
	}
	if pos != fileSize {
		return spanengine.ScanResult{}, fmt.Errorf("core: BGZF members end at %d, file has %d bytes", pos, fileSize)
	}
	c.eof = true
	c.frontierBit = uint64(fileSize) * 8
	c.frontierDecomp = decomp
	c.index.Finalized = true
	c.index.UncompressedSize = decomp
	return spanengine.ScanResult{Spans: spans}, nil
}

// parseHeaderAt parses one gzip member header through a bounded window
// read at byte offset pos, growing the window geometrically when a
// header (with its optional fields) spills past it.
func (c *gzipCodec) parseHeaderAt(pos, fileSize int64) (gzformat.Header, error) {
	win := int64(512)
	for {
		if win > fileSize-pos {
			win = fileSize - pos
		}
		buf := make([]byte, win)
		if n, err := c.src.ReadAt(buf, pos); err != nil && int64(n) < win {
			return gzformat.Header{}, err
		}
		hdr, err := gzformat.ParseHeader(bitio.NewBitReaderBytes(buf))
		if err == nil || win >= fileSize-pos {
			return hdr, err
		}
		win *= 8
	}
}
