package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/gzformat"
	"repro/internal/gzindex"
)

// initBGZF builds the full chunk table of a BGZF file from metadata
// alone — the trivially parallel fast path of §3.4.4: every member
// header carries the compressed member size (BSIZE) and every footer
// the uncompressed size (ISIZE), so chunk boundaries, sizes, and the
// index are known without decompressing or searching anything.
//
// Members are grouped into chunks of about ChunkSize compressed bytes
// so the per-task overhead stays comparable to the generic path.
func (f *Fetcher) initBGZF() error {
	fileSize := int64(f.fileBits / 8)
	br := bitio.NewBitReader(f.file, fileSize)

	var pos int64
	var decomp uint64
	groupStart := int64(0)
	groupDecomp := uint64(0)
	var groupMembers []memberMark

	flush := func(end int64, endDecomp uint64, eof bool) error {
		ci := chunkInfo{
			startBit:      uint64(groupStart) * 8,
			endBit:        uint64(end) * 8,
			startDecomp:   groupDecomp,
			size:          endDecomp - groupDecomp,
			atMemberStart: true,
			unitStart:     len(f.chunks),
			endIsEOF:      eof,
			members:       groupMembers,
		}
		groupMembers = nil
		if err := f.index.Add(gzindex.SeekPoint{
			CompressedBitOffset: ci.startBit,
			UncompressedOffset:  ci.startDecomp,
			AtMemberStart:       true,
		}, nil); err != nil {
			return err
		}
		for _, m := range ci.members {
			f.index.AddMemberEnd(ci.startBit,
				gzindex.MemberEnd{RelEnd: m.absEnd - ci.startDecomp, CRC32: m.crc})
		}
		f.chunks = append(f.chunks, ci)
		groupStart = end
		groupDecomp = endDecomp
		return nil
	}

	for pos < fileSize {
		if err := br.SeekBits(uint64(pos) * 8); err != nil {
			return err
		}
		hdr, err := gzformat.ParseHeader(br)
		if err != nil {
			return fmt.Errorf("core: BGZF member scan at %d: %w", pos, err)
		}
		if hdr.BGZFBlockSize <= 0 {
			return fmt.Errorf("core: member at %d lacks BGZF metadata", pos)
		}
		memberEnd := pos + int64(hdr.BGZFBlockSize)
		if memberEnd > fileSize {
			return fmt.Errorf("core: BGZF member at %d overruns the file", pos)
		}
		// The footer is CRC32 then ISIZE; one read captures both, so the
		// member marks enable architecture-level CRC verification too.
		var footerRaw [8]byte
		if _, err := f.file.ReadAt(footerRaw[:], memberEnd-8); err != nil {
			return err
		}
		decomp += uint64(binary.LittleEndian.Uint32(footerRaw[4:]))
		groupMembers = append(groupMembers, memberMark{
			absEnd: decomp,
			crc:    binary.LittleEndian.Uint32(footerRaw[:4]),
		})
		pos = memberEnd
		if pos-groupStart >= int64(f.cfg.ChunkSize) || pos >= fileSize {
			if err := flush(pos, decomp, pos >= fileSize); err != nil {
				return err
			}
		}
	}
	if pos != fileSize {
		return fmt.Errorf("core: BGZF members end at %d, file has %d bytes", pos, fileSize)
	}
	f.eof = true
	f.frontierBit = uint64(fileSize) * 8
	f.frontierDecomp = decomp
	f.index.Finalized = true
	f.index.UncompressedSize = decomp
	return nil
}
