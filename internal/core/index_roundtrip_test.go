package core

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/deflate"
	"repro/internal/filereader"
	"repro/internal/gzipw"
	"repro/internal/prefetch"
)

// roundTripCase pairs an input corpus with a compressor structure; the
// matrix covers the acceptance criteria explicitly: multi-member files,
// dynamic-block files, and >4 MiB inputs.
type roundTripCase struct {
	name string
	data []byte
	opts gzipw.Options
}

func roundTripCases() []roundTripCase {
	return []roundTripCase{
		{"multimember", mkBase64(40, 1_200_000), gzipw.Options{Level: 6, BlockSize: 32 << 10, MemberSize: 150 << 10}},
		{"dynamic", mkText(41, 1_000_000), gzipw.Options{Level: 9, BlockSize: 16 << 10, Strategy: gzipw.DynamicOnly}},
		{"large", mkText(42, 5<<20), gzipw.Options{Level: 6, BlockSize: 64 << 10}},
		{"large-multimember", mkBase64(43, 5<<20), gzipw.Options{Level: 6, BlockSize: 64 << 10, MemberSize: 1 << 20}},
		{"stored", mkRandom(44, 1_500_000), gzipw.Options{Level: 0}},
	}
}

// exportIndex builds the full index for comp and returns its serialised
// form.
func exportIndex(t *testing.T, comp []byte, chunkSize int) []byte {
	t.Helper()
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: chunkSize})
	var buf bytes.Buffer
	if err := r.ExportIndex(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIndexRoundTripMatrix is the tentpole acceptance test: for every
// corpus/compressor pair, ExportIndex → NewReader+ImportIndex must
// yield byte-identical output to an independent serial decode, with the
// block finder never invoked on the import path.
func TestIndexRoundTripMatrix(t *testing.T) {
	for _, c := range roundTripCases() {
		t.Run(c.name, func(t *testing.T) {
			comp, _, err := gzipw.Compress(c.data, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := deflate.DecompressGzip(comp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, c.data) {
				t.Fatal("serial baseline disagrees with input")
			}
			ixRaw := exportIndex(t, comp, 64<<10)

			r := open(t, comp, Config{Parallelism: 4, ChunkSize: 64 << 10})
			if err := r.ImportIndex(bytes.NewReader(ixRaw)); err != nil {
				t.Fatal(err)
			}
			// Whole-stream equality against the serial decode.
			if got := readAll(t, r); !bytes.Equal(got, serial) {
				t.Fatalf("import path output differs from serial decode (%d vs %d bytes)", len(got), len(serial))
			}
			// Positional reads at awkward offsets, byte-compared to the
			// serial decode.
			rng := rand.New(rand.NewSource(7))
			buf := make([]byte, 1537)
			for trial := 0; trial < 25; trial++ {
				off := rng.Intn(len(serial) - len(buf))
				if _, err := r.ReadAt(buf, int64(off)); err != nil {
					t.Fatalf("ReadAt(%d): %v", off, err)
				}
				if !bytes.Equal(buf, serial[off:off+len(buf)]) {
					t.Fatalf("ReadAt(%d) mismatch", off)
				}
			}
			s := r.FetcherStats()
			if s.FinderProbes != 0 {
				t.Fatalf("import path probed the block finder %d times", s.FinderProbes)
			}
			if s.GuessTasks != 0 {
				t.Fatalf("import path issued %d speculative tasks", s.GuessTasks)
			}
		})
	}
}

// TestImportedIndexConcurrentReadAt hammers ReadAt from many goroutines
// over an imported index; run under -race this doubles as the
// concurrency-safety assertion of the acceptance criteria.
func TestImportedIndexConcurrentReadAt(t *testing.T) {
	data := mkText(45, 3<<20)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 32 << 10, MemberSize: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ixRaw := exportIndex(t, comp, 64<<10)

	r := open(t, comp, Config{
		Parallelism: 4, ChunkSize: 64 << 10,
		Strategy: prefetch.NewMultiStream(), AccessCacheSize: 16,
	})
	if err := r.ImportIndex(bytes.NewReader(ixRaw)); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			buf := make([]byte, 2048)
			for trial := 0; trial < 30; trial++ {
				off := rng.Intn(len(data) - len(buf))
				if _, err := r.ReadAt(buf, int64(off)); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, data[off:off+len(buf)]) {
					errs <- io.ErrUnexpectedEOF
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := r.FetcherStats(); s.FinderProbes != 0 {
		t.Fatalf("concurrent import-path reads probed the finder %d times", s.FinderProbes)
	}
}

// TestExportedIndexIsV4 pins the reader/CLI handshake: what ExportIndex
// writes must carry the current format magic, so externally saved
// indexes are covered by the format's golden/corruption tests.
func TestExportedIndexIsV4(t *testing.T) {
	data := mkText(46, 200_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	ixRaw := exportIndex(t, comp, 32<<10)
	if len(ixRaw) < 8 || string(ixRaw[:8]) != "RGZIDX04" {
		t.Fatalf("exported index starts with %q", ixRaw[:min(8, len(ixRaw))])
	}
}

// TestImportRejectsCorruptIndex flips one byte in the middle of a valid
// index: the import must fail up front instead of producing a reader
// with silently wrong chunk geometry.
func TestImportRejectsCorruptIndex(t *testing.T) {
	data := mkText(47, 300_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	ixRaw := exportIndex(t, comp, 32<<10)

	for _, pos := range []int{9, len(ixRaw) / 2, len(ixRaw) - 2} {
		bad := bytes.Clone(ixRaw)
		bad[pos] ^= 0x20
		r, err := NewReader(filereader.MemoryReader(comp), Config{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ImportIndex(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupt index (byte %d flipped) accepted", pos)
		}
		r.Close()
	}
}

// TestSequentialAfterImportVerifiesMemberCRCs: the exported index
// persists the member marks, so an import restores the full member-CRC
// verification chain even though delegated chunk decodes carry no
// footer events of their own.
func TestSequentialAfterImportVerifiesMemberCRCs(t *testing.T) {
	data := mkText(48, 800_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10, MemberSize: 200 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ixRaw := exportIndex(t, comp, 64<<10)

	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 64 << 10, VerifyChecksums: true})
	if err := r.ImportIndex(bytes.NewReader(ixRaw)); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r); !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	if ok, fails := r.CRCStatus(); !ok || fails > 0 {
		t.Fatalf("CRC after import: ok=%v fails=%d", ok, fails)
	}
}

// TestImportAfterReadsReplacesStaleState: importing an index into a
// reader that has already served reads must discard every cache keyed
// by the old chunk geometry — here forced by importing an index built
// at a different chunk size, so old and new table indices disagree.
func TestImportAfterReadsReplacesStaleState(t *testing.T) {
	data := mkText(50, 1_000_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10, MemberSize: 250 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ixRaw := exportIndex(t, comp, 16<<10) // fine-grained table

	r := open(t, comp, Config{Parallelism: 2, ChunkSize: 128 << 10, VerifyChecksums: true})
	// Serve reads first: populates the access cache and advances the
	// CRC cursor under the coarse self-built table.
	buf := make([]byte, 60_000)
	for _, off := range []int{0, 400_000, 800_000} {
		if _, err := r.ReadAt(buf, int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ImportIndex(bytes.NewReader(ixRaw)); err != nil {
		t.Fatal(err)
	}
	// A full sequential pass must verify cleanly: the import reset the
	// CRC cursor along with the table (the pre-import random access had
	// already knocked verification out of sequential order).
	if got := readAll(t, r); !bytes.Equal(got, data) {
		t.Fatal("sequential read after import mismatch")
	}
	if ok, fails := r.CRCStatus(); !ok || fails > 0 {
		t.Fatalf("CRC after import: ok=%v fails=%d", ok, fails)
	}
	// And every positional read must reflect the new table, not the
	// cached spans of the old one.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		off := rng.Intn(len(data) - len(buf))
		if _, err := r.ReadAt(buf, int64(off)); err != nil {
			t.Fatalf("ReadAt(%d) after import: %v", off, err)
		}
		if !bytes.Equal(buf, data[off:off+len(buf)]) {
			t.Fatalf("ReadAt(%d) after import: stale data", off)
		}
	}
}

// TestImportPreservesDetectedCRCFailures: an import re-arms sequential
// verification but must not launder a stream that already failed it.
func TestImportPreservesDetectedCRCFailures(t *testing.T) {
	data := mkText(52, 200_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	ixRaw := exportIndex(t, comp, 32<<10)

	r := open(t, comp, Config{Parallelism: 2, ChunkSize: 32 << 10, VerifyChecksums: true})
	// Simulate a detected mismatch from earlier consumption.
	r.f.codec.crcMu.Lock()
	r.f.codec.crcBroken = true
	r.f.codec.crcMu.Unlock()
	r.f.cnt.crcFailures.Store(1)
	if err := r.ImportIndex(bytes.NewReader(ixRaw)); err != nil {
		t.Fatal(err)
	}
	if ok, fails := r.CRCStatus(); ok || fails != 1 {
		t.Fatalf("import laundered a CRC failure: ok=%v fails=%d", ok, fails)
	}
}

// TestImportThenVerifyCatchesPayloadCorruption is the end-to-end
// integrity story: a valid index over a compressed file whose payload
// was corrupted after export. The import itself succeeds (the index is
// intact); the read must then fail — decode error, chunk-size
// mismatch, or a member CRC failure — rather than return wrong bytes
// as if verified.
func TestImportThenVerifyCatchesPayloadCorruption(t *testing.T) {
	data := mkText(49, 600_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10, MemberSize: 150 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ixRaw := exportIndex(t, comp, 64<<10)

	bad := bytes.Clone(comp)
	bad[len(bad)/3] ^= 0x55
	r, err := NewReader(filereader.MemoryReader(bad), Config{Parallelism: 4, ChunkSize: 64 << 10, VerifyChecksums: true})
	if err != nil {
		return // corruption hit the first header: also a detection
	}
	defer r.Close()
	if err := r.ImportIndex(bytes.NewReader(ixRaw)); err != nil {
		t.Fatalf("index import should succeed (the index is intact): %v", err)
	}
	var buf bytes.Buffer
	_, readErr := r.WriteTo(&buf)
	ok, fails := r.CRCStatus()
	if readErr == nil && ok && fails == 0 && bytes.Equal(buf.Bytes(), data) {
		t.Fatal("payload corruption slipped through an index-primed verified read")
	}
}
