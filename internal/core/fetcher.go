// Package core implements the paper's primary contribution: parallel
// decompression of, and constant-time seeking in, arbitrary gzip files
// via a cache-and-parallel-prefetch chunk architecture (paper §3,
// Figures 4 and 5).
//
// Since the span-engine port, the chunk table, the caches and the
// prefetch pipeline live in internal/spanengine — the same core that
// serves bzip2, LZ4 and zstd. This package contributes the gzip codec
// (codec.go): speculative block-finder decodes parked as tentative
// results, confirmed one decode unit at a time at the exact frontier
// offset — which makes the whole design robust against block-finder
// false positives: a misguided speculative result simply never matches
// a requested key and ages out of the pool (§3: "Robustness against
// false positives results from the cache acting as an intermediary with
// the offset as key").
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bitio"
	"repro/internal/filereader"
	"repro/internal/gzformat"
	"repro/internal/gzindex"
	"repro/internal/prefetch"
	"repro/internal/spanengine"
)

// Config tunes the parallel reader.
type Config struct {
	// Parallelism is the worker count (values < 1 are clamped to 1).
	Parallelism int
	// ChunkSize is the compressed bytes per work unit (paper default
	// 4 MiB; Figure 12 sweeps this parameter).
	ChunkSize int
	// MaxPrefetch bounds in-flight speculative chunks (paper §1.4: the
	// prefetch cache holds twice the parallelism).
	MaxPrefetch int
	// AccessCacheSize is the accessed-chunk cache capacity (paper §3.2:
	// a size of one suffices for sequential decompression).
	AccessCacheSize int
	// Strategy decides what to prefetch; nil = prefetch.NewAdaptive().
	Strategy prefetch.Strategy
	// VerifyChecksums enables gzip CRC32 verification during sequential
	// consumption, combined across chunks with crc32x — the checksum
	// support the paper lists as future work (§6).
	VerifyChecksums bool
	// GuessedRatioLimit aborts a speculative chunk decode whose output
	// exceeds this multiple of the chunk size; the on-demand exact
	// decode (unlimited) remains correct. This is the §1.4 mitigation
	// for worst-case memory usage.
	GuessedRatioLimit int
	// SkipMetadataScan suppresses the eager BGZF member-metadata scan
	// at construction. Set it when an index import will immediately
	// replace the chunk table anyway; without an import the file is
	// simply handled by the generic (slower) path.
	SkipMetadataScan bool
	// Pool, when non-nil, places the chunk cache in a shared
	// cross-engine pool: cached decompressed bytes are bounded
	// pool-wide instead of AccessCacheSize chunks per reader.
	Pool *spanengine.CachePool
}

func (c Config) withDefaults() Config {
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 4 << 20
	}
	if c.MaxPrefetch <= 0 {
		// The paper holds 2x parallelism; this implementation defaults
		// to 4x because its consumer does more per-chunk work (window
		// copies into the index, CRC bookkeeping) and a deeper pipeline
		// hides the resulting bubbles. Memory stays bounded by
		// MaxPrefetch * chunk output.
		c.MaxPrefetch = 4 * c.Parallelism
	}
	if c.AccessCacheSize <= 0 {
		// Eagerly resolved chunks wait here until consumption; size it
		// like the prefetch window so none are evicted in flight.
		c.AccessCacheSize = 2*c.Parallelism + 4
	}
	if c.Strategy == nil {
		c.Strategy = prefetch.NewAdaptive()
	}
	if c.GuessedRatioLimit <= 0 {
		c.GuessedRatioLimit = 256
	}
	return c
}

// errNoBlock marks a grid cell that contains no usable block start.
var errNoBlock = errors.New("core: no deflate block found in chunk")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("core: reader is closed")

// counters holds the gzip activity counters. They are bumped from
// worker goroutines and the consumer alike, so every field is atomic;
// the struct is owned by the Fetcher and outlives engine swaps (an
// index import replaces the engine, not the statistics).
type counters struct {
	guessTasks       atomic.Uint64
	guessNoBlock     atomic.Uint64
	guessFalseStarts atomic.Uint64
	finderProbes     atomic.Uint64
	onDemand         atomic.Uint64
	indexed          atomic.Uint64
	delegated        atomic.Uint64
	consumed         atomic.Uint64
	crcFailures      atomic.Uint64
}

// FetcherStats counts fetcher activity for diagnostics and experiments.
type FetcherStats struct {
	GuessTasks       uint64
	GuessNoBlock     uint64
	GuessFalseStarts uint64 // speculative results that never matched
	// FinderProbes counts block-finder candidate probes across all
	// speculative tasks. It stays exactly zero when a complete index
	// was imported: known chunk offsets make the finder unnecessary.
	FinderProbes    uint64
	OnDemandDecodes uint64
	IndexedDecodes  uint64
	// DelegatedDecodes counts indexed chunk decodes served by stdlib
	// delegation (§3.3 "delegate decompression to zlib"). The indexed
	// path now always runs the custom single-stage decoder — its
	// wide-refill kernels outrun compress/flate — so this stays zero;
	// the field remains for dashboard compatibility.
	DelegatedDecodes uint64
	ChunksConsumed   uint64
	CRCFailures      uint64
}

// Fetcher is the GzipChunkFetcher: a span engine driven by the gzip
// codec. All methods are safe for concurrent use — the engine
// serialises its own state, the codec its own.
type Fetcher struct {
	cfg      Config
	engCfg   spanengine.Config
	file     *filereader.SharedFileReader
	fileBits uint64
	codec    *gzipCodec
	eng      *spanengine.Engine
	cnt      counters
	// sourceFP is the fingerprint of the open file, computed once at
	// construction; exported indexes carry it and imports are checked
	// against it.
	sourceFP gzindex.Fingerprint
	closed   bool
}

// NewFetcher opens a gzip file for parallel reading. It validates the
// first gzip header eagerly and routes BGZF files to the metadata fast
// path of §3.4.4 (a complete-table engine); everything else runs the
// growing engine, whose span table extends one confirmed decode unit
// at a time.
func NewFetcher(src filereader.FileReader, cfg Config) (*Fetcher, error) {
	cfg = cfg.withDefaults()
	size := src.Size()
	f := &Fetcher{
		cfg:      cfg,
		fileBits: uint64(size) * 8,
		engCfg: spanengine.Config{
			Threads:     cfg.Parallelism,
			CacheSize:   cfg.AccessCacheSize,
			MaxPrefetch: cfg.MaxPrefetch,
			Strategy:    cfg.Strategy,
			Pool:        cfg.Pool,
		},
	}
	// Open-time setup (fingerprint, first-header validation) reads the
	// raw source before the counting wrapper goes on: SourceReads then
	// reports decode traffic only, so a reopen from a persisted index
	// performs zero counted reads before the first access.
	fp, err := gzindex.ComputeFingerprint(src, size)
	if err != nil {
		// Fingerprinting only reads bytes, so any failure here is a
		// source I/O problem (a directory opened as a file, a file that
		// shrank under us) — never a format verdict. Tagging it ErrIO
		// lets the public layer classify it as ErrSourceRead.
		return nil, fmt.Errorf("core: %w: %w", filereader.ErrIO, err)
	}
	f.sourceFP = fp
	hdr, err := gzformat.ParseHeader(bitio.NewBitReader(src, size))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	if shared, ok := src.(*filereader.SharedFileReader); ok {
		f.file = shared
	} else {
		f.file = filereader.NewShared(src)
	}
	f.codec = newGzipCodec(cfg, f.file, &f.cnt)
	f.codec.bgzf = hdr.BGZFBlockSize > 0
	f.codec.index.CompressedSize = uint64(size)
	f.codec.index.SourceFP = &f.sourceFP
	// First-pass confirmation observes every footer, so the index it
	// builds carries the complete set of member marks.
	f.codec.index.MemberMarksComplete = true

	if f.codec.bgzf && !cfg.SkipMetadataScan {
		f.eng, err = spanengine.New(f.file, f.codec, f.engCfg)
	} else {
		f.eng, err = spanengine.NewGrowing(f.file, f.codec, 0, f.engCfg)
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Close shuts the worker pool down.
func (f *Fetcher) Close() {
	if !f.closed {
		f.closed = true
		f.eng.Close()
	}
}

// EnsureAll scans to EOF, completing the index.
func (f *Fetcher) EnsureAll() error { return f.eng.EnsureComplete() }

// TotalSize returns the decompressed size, scanning the rest of the
// file if necessary.
func (f *Fetcher) TotalSize() (uint64, error) {
	size, err := f.eng.TotalSize()
	return uint64(size), err
}

// CRCStatus reports (verifiedSoFar, failures). verifiedSoFar is false
// once consumption left sequential order or a mismatch occurred.
func (f *Fetcher) CRCStatus() (bool, uint64) { return f.codec.crcStatus() }

// StatsSnapshot returns the gzip activity counters.
func (f *Fetcher) StatsSnapshot() FetcherStats {
	return FetcherStats{
		GuessTasks:       f.cnt.guessTasks.Load(),
		GuessNoBlock:     f.cnt.guessNoBlock.Load(),
		GuessFalseStarts: f.cnt.guessFalseStarts.Load(),
		FinderProbes:     f.cnt.finderProbes.Load(),
		OnDemandDecodes:  f.cnt.onDemand.Load(),
		IndexedDecodes:   f.cnt.indexed.Load(),
		DelegatedDecodes: f.cnt.delegated.Load(),
		ChunksConsumed:   f.cnt.consumed.Load(),
		CRCFailures:      f.cnt.crcFailures.Load(),
	}
}

// EngineStats returns the span-engine counters (cache, prefetch and
// source-read activity).
func (f *Fetcher) EngineStats() spanengine.Stats { return f.eng.Stats() }

// --- index import/export -------------------------------------------------

// Index returns the seek-point index built so far.
func (f *Fetcher) Index() *gzindex.Index {
	f.codec.mu.Lock()
	defer f.codec.mu.Unlock()
	return f.codec.index
}

// checkpointTable maps the engine's span table into the index's
// persistable per-format section, tagged with the codec format.
func (f *Fetcher) checkpointTable() *gzindex.CheckpointTable {
	spans := f.eng.Checkpoints()
	t := &gzindex.CheckpointTable{Format: f.codec.FormatTag(), Flags: f.eng.Flags()}
	t.Spans = make([]gzindex.Checkpoint, len(spans))
	for i, s := range spans {
		t.Spans[i] = gzindex.Checkpoint{
			CompOff: s.CompOff, CompEnd: s.CompEnd,
			DecompOff: s.DecompOff, DecompSize: s.DecompSize,
		}
	}
	return t
}

// ImportIndex installs a finalized index, skipping the initial
// decompression pass entirely (§1.3: "The seek point index can be
// exported and imported ... to avoid the decompression time for the
// initial decompression pass"). The current engine — span table,
// caches, in-flight decodes — is replaced wholesale: everything it
// holds is keyed by the old geometry.
func (f *Fetcher) ImportIndex(ix *gzindex.Index) error {
	if !ix.Finalized {
		return errors.New("core: can only import finalized indexes")
	}
	if ix.Len() == 0 {
		return errors.New("core: empty index")
	}
	if ix.CompressedSize != f.fileBits/8 {
		return fmt.Errorf("core: index is for a %d-byte file, have %d bytes",
			ix.CompressedSize, f.fileBits/8)
	}
	if ix.SourceFP != nil && *ix.SourceFP != f.sourceFP {
		return fmt.Errorf("core: index fingerprint %08x/%08x does not match the open file's %08x/%08x (index built for a different file of the same size)",
			ix.SourceFP.Head, ix.SourceFP.Tail, f.sourceFP.Head, f.sourceFP.Tail)
	}
	if ix.Checkpoints != nil {
		if tag := ix.Checkpoints.Format; tag != "gzip" && tag != "bgzf" {
			return fmt.Errorf("core: index checkpoint table is for format %q, not gzip/BGZF", tag)
		}
	}
	// Adopt the file's own fingerprint so a re-export of an index
	// imported from the fingerprint-less v2 format gains one.
	ix.SourceFP = &f.sourceFP

	n := ix.Len()
	metas := make([]spanMeta, n)
	spans := make([]spanengine.Span, n)
	byOff := make(map[int64]int, n)
	for i := range metas {
		p := ix.Point(i)
		m := spanMeta{
			startBit:      p.CompressedBitOffset,
			startDecomp:   p.UncompressedOffset,
			atMemberStart: p.AtMemberStart,
		}
		if i+1 < n {
			next := ix.Point(i + 1)
			m.endBit = next.CompressedBitOffset
			m.size = next.UncompressedOffset - p.UncompressedOffset
		} else {
			m.endBit = ix.CompressedSize * 8
			m.size = ix.UncompressedSize - p.UncompressedOffset
			m.endIsEOF = true
		}
		for _, me := range ix.MemberEnds(p.CompressedBitOffset) {
			m.members = append(m.members,
				memberMark{absEnd: p.UncompressedOffset + me.RelEnd, crc: me.CRC32})
		}
		metas[i] = m
		s := spanengine.Span{
			CompOff:    int64(m.startBit / 8),
			CompEnd:    int64(m.endBit / 8),
			DecompOff:  int64(m.startDecomp),
			DecompSize: int64(m.size),
		}
		if m.endIsEOF {
			s.CompEnd = int64(ix.CompressedSize)
		}
		if _, dup := byOff[s.CompOff]; dup {
			return fmt.Errorf("core: index entries share start byte %d", s.CompOff)
		}
		byOff[s.CompOff] = i
		spans[i] = s
	}

	// Build the replacement engine first: a table the engine rejects
	// must leave the current state untouched.
	eng, err := spanengine.NewFromCheckpoints(f.file, f.codec, spans, 0, f.engCfg)
	if err != nil {
		return err
	}
	// Retire the old engine before rewiring the codec: Close waits for
	// its workers, so no decode observes the geometry mid-swap.
	f.eng.Close()

	c := f.codec
	c.mu.Lock()
	c.metas = metas
	c.byOff = byOff
	c.index = ix
	// Indexes exported by this implementation persist the member marks,
	// restoring full member verification; legacy (v1) indexes do not,
	// and verification then has to lean on the decode results instead.
	c.marksKnown = ix.MemberMarksComplete
	c.eof = true
	c.frontierBit = ix.CompressedSize * 8
	c.frontierDecomp = ix.UncompressedSize
	c.frontierWindow = nil
	c.guessIssued = map[uint64]bool{}
	c.noBlock = map[uint64]bool{}
	c.inflightGuess = map[uint64]*futureChunk{}
	c.mu.Unlock()

	c.crcMu.Lock()
	c.crcNext, c.crcAcc = 0, 0
	// Re-arm sequential verification under the new table — unless a
	// mismatch was already detected: an import must not launder a
	// stream that has failed verification.
	c.crcBroken = f.cnt.crcFailures.Load() > 0
	c.consumed = map[int]bool{}
	c.crcMu.Unlock()

	f.eng = eng
	return nil
}

// Chunks returns the number of confirmed table entries.
func (f *Fetcher) Chunks() int { return f.eng.NumSpans() }

// EOF reports whether the whole file has been scanned.
func (f *Fetcher) EOF() bool { return f.eng.Complete() }

// FrontierDecomp returns the decompressed bytes confirmed so far.
func (f *Fetcher) FrontierDecomp() uint64 { return uint64(f.eng.Size()) }

// BytesRead reports compressed bytes read from the underlying file.
func (f *Fetcher) BytesRead() int64 { return f.file.BytesRead() }
