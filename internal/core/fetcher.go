// Package core implements the paper's primary contribution: parallel
// decompression of, and constant-time seeking in, arbitrary gzip files
// via a cache-and-parallel-prefetch chunk architecture (paper §3,
// Figures 4 and 5).
//
// The Fetcher is the GzipChunkFetcher of the paper: it partitions the
// compressed file into a fixed grid of chunk-sized cells, speculatively
// decodes cells with the block finder and the two-stage decoder, keys
// every decode result by the exact bit offset where it actually began,
// and serves sequential consumption from the exact frontier offset —
// which makes the whole design robust against block-finder false
// positives: a misguided speculative result simply never matches a
// requested key and ages out of the cache (§3: "Robustness against
// false positives results from the cache acting as an intermediary with
// the offset as key").
package core

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/bitio"
	"repro/internal/blockfinder"
	"repro/internal/cache"
	"repro/internal/crc32x"
	"repro/internal/deflate"
	"repro/internal/filereader"
	"repro/internal/gzformat"
	"repro/internal/gzindex"
	"repro/internal/pool"
	"repro/internal/prefetch"
)

// Config tunes the parallel reader.
type Config struct {
	// Parallelism is the worker count (values < 1 are clamped to 1).
	Parallelism int
	// ChunkSize is the compressed bytes per work unit (paper default
	// 4 MiB; Figure 12 sweeps this parameter).
	ChunkSize int
	// MaxPrefetch bounds in-flight speculative chunks (paper §1.4: the
	// prefetch cache holds twice the parallelism).
	MaxPrefetch int
	// AccessCacheSize is the accessed-chunk cache capacity (paper §3.2:
	// a size of one suffices for sequential decompression).
	AccessCacheSize int
	// Strategy decides what to prefetch; nil = prefetch.NewAdaptive().
	Strategy prefetch.Strategy
	// VerifyChecksums enables gzip CRC32 verification during sequential
	// consumption, combined across chunks with crc32x — the checksum
	// support the paper lists as future work (§6).
	VerifyChecksums bool
	// GuessedRatioLimit aborts a speculative chunk decode whose output
	// exceeds this multiple of the chunk size; the on-demand exact
	// decode (unlimited) remains correct. This is the §1.4 mitigation
	// for worst-case memory usage.
	GuessedRatioLimit int
	// SkipMetadataScan suppresses the eager BGZF member-metadata scan
	// at construction. Set it when an index import will immediately
	// replace the chunk table anyway; without an import the file is
	// simply handled by the generic (slower) path.
	SkipMetadataScan bool
}

func (c Config) withDefaults() Config {
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 4 << 20
	}
	if c.MaxPrefetch <= 0 {
		// The paper holds 2x parallelism; this implementation defaults
		// to 4x because its consumer does more per-chunk work (window
		// copies into the index, CRC bookkeeping) and a deeper pipeline
		// hides the resulting bubbles. Memory stays bounded by
		// MaxPrefetch * chunk output.
		c.MaxPrefetch = 4 * c.Parallelism
	}
	if c.AccessCacheSize <= 0 {
		// Eagerly resolved chunks wait here until consumption; size it
		// like the prefetch window so none are evicted in flight.
		c.AccessCacheSize = 2*c.Parallelism + 4
	}
	if c.Strategy == nil {
		c.Strategy = prefetch.NewAdaptive()
	}
	if c.GuessedRatioLimit <= 0 {
		c.GuessedRatioLimit = 256
	}
	return c
}

// errNoBlock marks a grid cell that contains no usable block start.
var errNoBlock = errors.New("core: no deflate block found in chunk")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("core: reader is closed")

// chunkInfo is one confirmed chunk-table entry.
type chunkInfo struct {
	startBit, endBit  uint64
	startDecomp, size uint64
	atMemberStart     bool
	// unitStart is the table index of the first entry of this entry's
	// decode unit (a first-pass decode that got split into several
	// entries). After an index import every entry is its own unit.
	unitStart int
	endIsEOF  bool
	// members records every gzip member end inside (or at the end of)
	// this entry, captured when the entry was confirmed. Re-decodes of
	// the entry — in particular the stdlib-delegated fast path, whose
	// results carry no footer events — verify against these marks.
	members []memberMark
}

// memberMark is the footer of a member ending inside a confirmed entry:
// the absolute decompressed offset where the member ends and the CRC32
// its footer declares.
type memberMark struct {
	absEnd uint64
	crc    uint32
}

// chunkPayload is a decoded (possibly still marker-bearing) chunk.
type chunkPayload struct {
	res *deflate.ChunkResult
	// delegated marks results produced by the stdlib fast path.
	delegated bool
}

// resolvedData is the output of the parallel marker-replacement task.
type resolvedData struct {
	segs  [][]byte
	parts []crcPart
}

// crcPart carries the checksum of a member-delimited span of a chunk.
type crcPart struct {
	len       uint64
	crc       uint32
	expect    uint32 // footer CRC32 of the member ending after this part
	hasExpect bool
}

// crcBound marks a member end within a resolved span: the offset
// relative to the span start and the expected footer CRC32.
type crcBound struct {
	relEnd uint64
	crc    uint32
}

// ResolvedChunk is a fully decoded span ready for reading.
type ResolvedChunk struct {
	// StartDecomp/Size delimit the decompressed span this chunk covers.
	StartDecomp uint64
	Size        uint64
	// firstEntry/lastEntry delimit the chunk-table entries this span
	// covers (for sequential CRC accounting).
	firstEntry, lastEntry int
	// consumed marks the first read access (for the ChunksConsumed
	// statistic). Guarded by the reader's mutex like everything else.
	consumed bool
	fut      *pool.Future[*resolvedData]
}

// Bytes waits for marker replacement and returns the decompressed
// segments of the span.
func (rc *ResolvedChunk) Bytes() ([][]byte, error) {
	d, err := rc.fut.Wait()
	if err != nil {
		return nil, err
	}
	return d.segs, nil
}

// FetcherStats counts fetcher activity for diagnostics and experiments.
type FetcherStats struct {
	GuessTasks       uint64
	GuessNoBlock     uint64
	GuessFalseStarts uint64 // speculative results that never matched
	// FinderProbes counts block-finder candidate probes across all
	// speculative tasks. It stays exactly zero when a complete index
	// was imported: known chunk offsets make the finder unnecessary.
	FinderProbes    uint64
	OnDemandDecodes uint64
	IndexedDecodes  uint64
	// DelegatedDecodes counts indexed chunk decodes served by the
	// stdlib-delegation fast path (§3.3 "delegate decompression to
	// zlib"); the remainder fell back to the custom decoder.
	DelegatedDecodes uint64
	ChunksConsumed   uint64
	CRCFailures      uint64
}

// Fetcher is the GzipChunkFetcher. It is not goroutine-safe; the
// ParallelGzipReader serialises access to it. Worker tasks touch only
// their own state plus the thread-safe SharedFileReader.
type Fetcher struct {
	cfg      Config
	file     *filereader.SharedFileReader
	fileBits uint64
	pool     *pool.Pool
	strategy prefetch.Strategy

	index *gzindex.Index
	// sourceFP is the fingerprint of the open file, computed once at
	// construction; exported indexes carry it and imports are checked
	// against it.
	sourceFP gzindex.Fingerprint
	chunks   []chunkInfo
	// marksKnown reports that the chunk table's member marks are
	// authoritative: first-pass confirmation, BGZF metadata scan, or an
	// imported index that persisted its marks. Only a legacy index
	// import clears it; member verification then has to rely on the
	// decode results' own footer events.
	marksKnown bool

	frontierBit    uint64
	frontierDecomp uint64
	frontierWindow []byte
	memberStart    uint64 // decompressed offset where the current member began
	eof            bool

	results       *cache.Cache[uint64, *chunkPayload]
	access        *cache.Cache[int, *ResolvedChunk]
	inflightGuess map[uint64]*pool.Future[*chunkPayload]
	inflightIdx   map[int]*pool.Future[*chunkPayload]
	guessIssued   map[uint64]bool
	noBlock       map[uint64]bool

	// completions receives a signal whenever a speculative task ends,
	// so a consumer blocked on the frontier chunk can keep sweeping
	// results and dispatching follow-up work — paper Figure 4 step 6:
	// "Periodically check for ready chunks and move them into the cache
	// until C1 has become ready".
	completions chan struct{}

	// Sequential CRC verification state (valid while consumption stays
	// in table order from entry 0).
	crcNext   int
	crcAcc    uint32
	crcBroken bool

	// Stats is mutated on the consumer goroutine only; finderProbes is
	// the one counter bumped from workers and so lives apart as an
	// atomic. StatsSnapshot folds it in.
	Stats        FetcherStats
	finderProbes atomic.Uint64

	closed bool
}

func (f *Fetcher) chunkBits() uint64 { return uint64(f.cfg.ChunkSize) * 8 }

// NewFetcher opens a gzip file for parallel reading. It validates the
// first gzip header eagerly and routes BGZF files to the metadata fast
// path of §3.4.4.
func NewFetcher(src filereader.FileReader, cfg Config) (*Fetcher, error) {
	cfg = cfg.withDefaults()
	f := &Fetcher{
		cfg:         cfg,
		file:        filereader.NewShared(src),
		fileBits:    uint64(src.Size()) * 8,
		pool:        pool.New(cfg.Parallelism),
		strategy:    cfg.Strategy,
		index:       gzindex.New(cfg.ChunkSize),
		marksKnown:  true,
		noBlock:     map[uint64]bool{},
		completions: make(chan struct{}, 4096),
	}
	f.resetCaches()
	f.index.CompressedSize = uint64(src.Size())
	fp, err := gzindex.ComputeFingerprint(f.file, src.Size())
	if err != nil {
		f.pool.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	f.sourceFP = fp
	f.index.SourceFP = &f.sourceFP
	// First-pass confirmation observes every footer, so the index it
	// builds carries the complete set of member marks.
	f.index.MemberMarksComplete = true

	br := bitio.NewBitReader(f.file, src.Size())
	hdr, err := gzformat.ParseHeader(br)
	if err != nil {
		f.pool.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	if hdr.BGZFBlockSize > 0 && !cfg.SkipMetadataScan {
		if err := f.initBGZF(); err != nil {
			f.pool.Close()
			return nil, err
		}
	}
	return f, nil
}

// resetCaches (re)creates every cache keyed by the chunk table or grid
// geometry, abandoning in-flight decodes (their tasks touch no mutable
// fetcher state). Used at construction and when an index import
// replaces the table.
func (f *Fetcher) resetCaches() {
	f.results = cache.NewLRUCache[uint64, *chunkPayload](max(2*f.cfg.MaxPrefetch, 4))
	f.results.OnEvict = func(key uint64, _ *chunkPayload) {
		delete(f.guessIssued, key/f.chunkBits())
	}
	f.access = cache.NewLRUCache[int, *ResolvedChunk](f.cfg.AccessCacheSize)
	f.inflightGuess = map[uint64]*pool.Future[*chunkPayload]{}
	f.inflightIdx = map[int]*pool.Future[*chunkPayload]{}
	f.guessIssued = map[uint64]bool{}
}

// Close shuts the worker pool down.
func (f *Fetcher) Close() {
	if !f.closed {
		f.closed = true
		f.pool.Close()
	}
}

// --- frontier ----------------------------------------------------------

// EnsureCovered extends the confirmed chunk table until it covers the
// decompressed offset (or EOF is reached).
func (f *Fetcher) EnsureCovered(offset uint64) error {
	for !f.eof && offset >= f.frontierDecomp {
		if err := f.extendFrontier(); err != nil {
			return err
		}
	}
	return nil
}

// EnsureAll scans to EOF, completing the index.
func (f *Fetcher) EnsureAll() error {
	for !f.eof {
		if err := f.extendFrontier(); err != nil {
			return err
		}
	}
	return nil
}

// TotalSize returns the decompressed size, scanning the rest of the
// file if necessary.
func (f *Fetcher) TotalSize() (uint64, error) {
	if err := f.EnsureAll(); err != nil {
		return 0, err
	}
	return f.frontierDecomp, nil
}

// extendFrontier confirms the next decode unit: it obtains the result
// for the exact frontier offset (prefetch cache, in-flight speculative
// task, or on-demand decode), propagates the window serially, verifies
// member sizes, splits oversized units into index entries, and advances
// the frontier.
func (f *Fetcher) extendFrontier() error {
	if f.closed {
		return ErrClosed
	}
	if f.eof {
		return io.EOF
	}
	// Trigger prefetching before blocking on the frontier chunk so that
	// decompression starts fully parallel (paper §3.2).
	f.strategy.Access(uint64(len(f.chunks)))
	f.sweep()
	f.issuePrefetches()

	atMember := len(f.chunks) == 0 // chunk 0 starts at the gzip header
	cd, err := f.obtainFrontier(f.frontierBit, atMember)
	if err != nil {
		return err
	}
	// The payload moves into the access cache below (resolved); drop
	// the marked copy so the result cache only holds unconfirmed
	// speculative chunks (paper §1.4 memory bound).
	f.results.Delete(f.frontierBit)
	res := cd.res
	total := res.TotalOut()

	// Serial window propagation: resolve only the final <=32 KiB
	// (paper §2.2 — the non-parallelizable Amdahl term).
	newWindow, err := res.WindowAt(total, f.frontierWindow)
	if err != nil {
		return fmt.Errorf("core: window propagation: %w", err)
	}

	// ISIZE verification for every member ending inside this unit.
	for i := range res.Members {
		ev := &res.Members[i]
		absEnd := f.frontierDecomp + ev.DecompOffset
		size := absEnd - f.memberStart
		if uint32(size) != ev.Footer.ISize {
			return fmt.Errorf("core: gzip ISIZE mismatch at offset %d: footer %d, decoded %d",
				absEnd, ev.Footer.ISize, uint32(size))
		}
		f.memberStart = absEnd
	}

	// Record the unit, splitting oversized outputs into multiple index
	// entries so decompressed chunk sizes stay comparable (§1.4).
	unitStart := len(f.chunks)
	splits := f.splitPoints(res)
	startBit := f.frontierBit
	startDecomp := f.frontierDecomp
	for _, sp := range splits {
		ci := chunkInfo{
			startBit:      startBit,
			endBit:        sp.endBit,
			startDecomp:   startDecomp,
			size:          f.frontierDecomp + sp.endDecomp - startDecomp,
			atMemberStart: unitStart == 0 && startBit == 0,
			unitStart:     unitStart,
		}
		window := f.windowFor(ci, res)
		if err := f.index.Add(gzindex.SeekPoint{
			CompressedBitOffset: ci.startBit,
			UncompressedOffset:  ci.startDecomp,
			AtMemberStart:       ci.atMemberStart,
		}, window); err != nil {
			return err
		}
		f.chunks = append(f.chunks, ci)
		startBit = sp.endBit
		startDecomp = f.frontierDecomp + sp.endDecomp
	}
	f.chunks[len(f.chunks)-1].endIsEOF = res.EndIsEOF
	f.recordMemberMarks(unitStart, res)

	// Dispatch this unit's full marker replacement to the pool right
	// away (paper Figure 4, step 5: "Resolve the markers inside each
	// chunk in parallel using the thread pool") — confirmation of the
	// next unit does not wait for it, so replacements overlap.
	rc := f.resolve(unitStart, cd)
	rc.firstEntry, rc.lastEntry = unitStart, len(f.chunks)
	for e := unitStart; e < len(f.chunks); e++ {
		f.access.Put(e, rc)
	}

	f.frontierWindow = newWindow
	f.frontierBit = res.EndBit
	f.frontierDecomp += total
	if res.EndIsEOF {
		f.eof = true
		f.index.Finalized = true
		f.index.UncompressedSize = f.frontierDecomp
		f.drainGuesses()
	}
	return nil
}

// drainGuesses settles every speculative task still in flight once the
// frontier has reached EOF. No future frontier request will ever wait
// on them, so without this their outcomes (no-block cells, usable
// results for later random access) would be recorded only if another
// sweep happened to run — and a single-block file would report zero
// no-block cells despite having probed every one of them.
func (f *Fetcher) drainGuesses() {
	for g, fut := range f.inflightGuess {
		delete(f.inflightGuess, g)
		cd, err := fut.Wait()
		f.recordGuess(g, cd, err)
	}
}

// recordMemberMarks distributes the footer events of a freshly
// confirmed decode unit over its table entries [unitStart, len(chunks)).
// A member ending at decompressed offset X belongs to the entry whose
// span (start, start+size] contains X; the zero-length edge case (a
// member boundary exactly at the unit start) attaches to the first
// entry.
func (f *Fetcher) recordMemberMarks(unitStart int, res *deflate.ChunkResult) {
	e := unitStart
	for i := range res.Members {
		absEnd := f.frontierDecomp + res.Members[i].DecompOffset
		for e < len(f.chunks)-1 && absEnd > f.chunks[e].startDecomp+f.chunks[e].size {
			e++
		}
		crc := res.Members[i].Footer.CRC32
		f.chunks[e].members = append(f.chunks[e].members, memberMark{absEnd: absEnd, crc: crc})
		// Mirror the mark into the index so an export→import round trip
		// restores it (and with it, full member verification).
		f.index.AddMemberEnd(f.chunks[e].startBit,
			gzindex.MemberEnd{RelEnd: absEnd - f.chunks[e].startDecomp, CRC32: crc})
	}
}

// advanceReady confirms every decode unit whose speculative result is
// already cached at the exact frontier offset, without blocking. This
// is what lets the serial window-propagation walk run ahead of
// consumption, so the full marker replacements it dispatches execute
// in parallel (§2.2's Amdahl analysis assumes exactly this overlap).
func (f *Fetcher) advanceReady() {
	for !f.eof && f.results.Contains(f.frontierBit) {
		if err := f.extendFrontier(); err != nil {
			return
		}
	}
}

// splitPoint delimits one index entry inside a decode unit.
type splitPoint struct {
	endBit    uint64 // compressed end of this entry
	endDecomp uint64 // decompressed end within the unit output
}

// splitPoints returns entry boundaries for a decode unit: roughly one
// entry per ChunkSize of decompressed output, cut at recorded non-final
// Dynamic/Stored block starts (which the per-entry stop condition can
// recognise).
func (f *Fetcher) splitPoints(res *deflate.ChunkResult) []splitPoint {
	total := res.TotalOut()
	target := uint64(f.cfg.ChunkSize)
	var out []splitPoint
	if total > 2*target {
		nextCut := target
		for _, bs := range res.BlockStarts {
			if bs.DecompOffset == 0 || bs.Final || bs.Type == deflate.BlockFixed {
				continue
			}
			if bs.DecompOffset >= nextCut && total-bs.DecompOffset > target/2 {
				out = append(out, splitPoint{endBit: bs.Bit, endDecomp: bs.DecompOffset})
				nextCut = bs.DecompOffset + target
			}
		}
	}
	out = append(out, splitPoint{endBit: res.EndBit, endDecomp: total})
	return out
}

// windowFor computes the stored window for an index entry of the unit
// currently being confirmed.
func (f *Fetcher) windowFor(ci chunkInfo, res *deflate.ChunkResult) []byte {
	if ci.atMemberStart {
		return nil
	}
	if ci.startDecomp == f.frontierDecomp {
		w := make([]byte, len(f.frontierWindow))
		copy(w, f.frontierWindow)
		return w
	}
	w, err := res.WindowAt(ci.startDecomp-f.frontierDecomp, f.frontierWindow)
	if err != nil {
		return nil
	}
	return w
}

// obtainFrontier fetches the decode result starting exactly at bit E —
// paper Figure 4: the consumer requests chunks by the exact end offset
// of the previous chunk; mismatches fall back to an on-demand decode.
func (f *Fetcher) obtainFrontier(E uint64, atMember bool) (*chunkPayload, error) {
	if cd, ok := f.results.Get(E); ok {
		return cd, nil
	}
	g := E / f.chunkBits()
	if fut, ok := f.inflightGuess[g]; ok {
		delete(f.inflightGuess, g)
		cd, err := f.waitServicing(fut)
		f.recordGuess(g, cd, err)
		if err == nil && cd.res.StartBit == E {
			return cd, nil
		}
		if err == nil {
			f.Stats.GuessFalseStarts++
		}
	}
	// On-demand exact decode with the known window (single-stage).
	f.Stats.OnDemandDecodes++
	stop := (E/f.chunkBits() + 1) * f.chunkBits()
	br := bitio.NewBitReader(f.file, int64(f.fileBits/8))
	var dec deflate.Decoder
	res, err := dec.DecodeChunk(br, deflate.ChunkConfig{
		Start:              E,
		Stop:               stop,
		Window:             f.frontierWindow,
		StartsAtGzipHeader: atMember,
		SizeHint:           4 * f.cfg.ChunkSize,
	})
	if err != nil {
		return nil, fmt.Errorf("core: decode at bit %d: %w", E, err)
	}
	return &chunkPayload{res: res}, nil
}

// --- prefetching --------------------------------------------------------

// sweep moves completed speculative tasks into the result cache
// (paper Figure 4, step 6).
func (f *Fetcher) sweep() {
	for g, fut := range f.inflightGuess {
		if !fut.Ready() {
			continue
		}
		delete(f.inflightGuess, g)
		cd, err := fut.Wait()
		f.recordGuess(g, cd, err)
	}
	for idx, fut := range f.inflightIdx {
		if !fut.Ready() {
			continue
		}
		delete(f.inflightIdx, idx)
		cd, err := fut.Wait()
		if err == nil {
			f.countDelegated(cd)
			f.results.Put(cd.res.StartBit, cd)
		}
	}
}

func (f *Fetcher) recordGuess(g uint64, cd *chunkPayload, err error) {
	switch {
	case err == nil:
		f.results.Put(cd.res.StartBit, cd)
	case errors.Is(err, errNoBlock):
		f.noBlock[g] = true
		f.Stats.GuessNoBlock++
	}
}

// issuePrefetches asks the strategy for chunk indexes and dispatches
// indexed or speculative decodes, filtering already-available chunks
// (paper §3.2: "The prefetcher has to filter out already cached chunks
// and chunks that are currently being prefetched").
func (f *Fetcher) issuePrefetches() {
	cands := f.strategy.Prefetch(f.cfg.MaxPrefetch)
	inflight := len(f.inflightGuess) + len(f.inflightIdx)
	for _, cand := range cands {
		if inflight >= f.cfg.MaxPrefetch {
			return
		}
		if cand < uint64(len(f.chunks)) {
			if f.dispatchIndexed(int(cand)) {
				inflight++
			}
			continue
		}
		if f.eof {
			continue
		}
		gap := cand - uint64(len(f.chunks))
		g := f.frontierBit/f.chunkBits() + 1 + gap
		if f.dispatchGuess(g) {
			inflight++
		}
	}
}

// dispatchIndexed starts a window-primed decode of one confirmed
// entry. The window is snapshotted on the caller's goroutine: the
// index is still being appended to while workers run.
func (f *Fetcher) dispatchIndexed(idx int) bool {
	if f.access.Contains(idx) || f.inflightIdx[idx] != nil {
		return false
	}
	ci := f.chunks[idx]
	if f.results.Contains(ci.startBit) {
		return false
	}
	window, hasWin := f.index.Window(ci.startBit)
	if !hasWin && !ci.atMemberStart {
		return false
	}
	f.Stats.IndexedDecodes++
	allowDelegate := f.delegationOK()
	fut := pool.GoLow(f.pool, func() (*chunkPayload, error) {
		defer f.notifyCompletion()
		return f.decodeIndexed(ci, window, allowDelegate)
	})
	f.inflightIdx[idx] = fut
	return true
}

// delegationOK reports whether indexed decodes may take the
// stdlib-delegated fast path. Delegated results carry no footer
// events, so when checksum verification is on, delegation requires the
// chunk table's member marks to be authoritative — without them (a
// legacy index import) every mid-stream footer would silently escape
// verification and desynchronise the member CRC chain.
func (f *Fetcher) delegationOK() bool {
	return !f.cfg.VerifyChecksums || f.marksKnown
}

// notifyCompletion wakes a consumer blocked on the frontier so it can
// sweep finished speculative results and dispatch follow-up work. Never
// blocks; a full channel means the consumer has plenty to look at.
func (f *Fetcher) notifyCompletion() {
	select {
	case f.completions <- struct{}{}:
	default:
	}
}

// waitServicing waits for fut while servicing completion events: each
// event sweeps ready results into the cache and issues new prefetches,
// keeping the workers fed during the wait (Figure 4 step 6).
func (f *Fetcher) waitServicing(fut *pool.Future[*chunkPayload]) (*chunkPayload, error) {
	for {
		select {
		case <-fut.Done():
			return fut.Wait()
		case <-f.completions:
			f.sweep()
			f.issuePrefetches()
		}
	}
}

// decodeIndexed decodes a confirmed entry with its stored window — the
// fast path used when an index exists (§3.3, §4.4: "the output buffer
// can be allocated beforehand ... marker replacement can be skipped").
// When allowDelegate is set it first attempts the paper's zlib
// delegation (here: compress/flate on a bit-realigned copy of the
// chunk, see deflate.DelegateWindow) and falls back to the custom
// single-stage decoder when the chunk cannot be delegated (e.g. a
// member boundary inside it). It is safe to call from worker
// goroutines: it touches no mutable fetcher state.
func (f *Fetcher) decodeIndexed(ci chunkInfo, window []byte, allowDelegate bool) (*chunkPayload, error) {
	if allowDelegate {
		if res, err := f.decodeDelegated(ci, window); err == nil {
			return &chunkPayload{res: res, delegated: true}, nil
		}
	}
	br := bitio.NewBitReader(f.file, int64(f.fileBits/8))
	var dec deflate.Decoder
	stop := ci.endBit
	if ci.endIsEOF {
		stop = deflate.StopAtEOF
	}
	res, err := dec.DecodeChunk(br, deflate.ChunkConfig{
		Start:              ci.startBit,
		Stop:               stop,
		StopBeforeMember:   stop,
		Window:             window,
		StartsAtGzipHeader: ci.atMemberStart,
		SizeHint:           int(ci.size),
	})
	if err != nil {
		return nil, err
	}
	if res.TotalOut() != ci.size {
		return nil, fmt.Errorf("core: indexed chunk at bit %d decoded %d bytes, index says %d",
			ci.startBit, res.TotalOut(), ci.size)
	}
	return &chunkPayload{res: res}, nil
}

// decodeDelegated decodes one confirmed entry with the standard
// library (flate with a preset dictionary for mid-stream entries, gzip
// for member-aligned entries). Any failure is reported so the caller
// can fall back to the custom decoder.
func (f *Fetcher) decodeDelegated(ci chunkInfo, window []byte) (*deflate.ChunkResult, error) {
	if ci.size == 0 || ci.size > uint64(int(^uint(0)>>1)) {
		return nil, errNoBlock
	}
	byteStart := int64(ci.startBit / 8)
	byteEnd := int64((ci.endBit + 7) / 8)
	if max := int64(f.fileBits / 8); byteEnd > max {
		byteEnd = max
	}
	buf := make([]byte, byteEnd-byteStart)
	if _, err := f.file.ReadAt(buf, byteStart); err != nil && err != io.EOF {
		return nil, err
	}
	var out []byte
	var err error
	if ci.atMemberStart {
		out, err = deflate.DelegateMembers(buf, 0, int(ci.size))
	} else {
		out, err = deflate.DelegateWindow(buf, ci.startBit-uint64(byteStart)*8, ci.endBit-uint64(byteStart)*8, window, int(ci.size))
	}
	if err != nil {
		return nil, err
	}
	return &deflate.ChunkResult{
		StartBit: ci.startBit,
		EndBit:   ci.endBit,
		Raw:      out,
		EndIsEOF: ci.endIsEOF,
	}, nil
}

// dispatchGuess starts a speculative two-stage decode for grid cell g.
func (f *Fetcher) dispatchGuess(g uint64) bool {
	cb := f.chunkBits()
	if g*cb >= f.fileBits || f.guessIssued[g] || f.noBlock[g] || f.inflightGuess[g] != nil {
		return false
	}
	f.guessIssued[g] = true
	f.Stats.GuessTasks++
	fut := pool.GoLow(f.pool, func() (*chunkPayload, error) {
		defer f.notifyCompletion()
		return f.guessTask(g)
	})
	f.inflightGuess[g] = fut
	return true
}

// guessTask searches cell g for a block start and decodes from it with
// markers (paper Figure 4, steps 4-5). It runs on a worker goroutine
// and touches no mutable fetcher state.
func (f *Fetcher) guessTask(g uint64) (*chunkPayload, error) {
	cb := f.chunkBits()
	B := g * cb
	stop := B + cb
	end := stop
	if end > f.fileBits {
		end = f.fileBits
	}
	// Search buffer: the cell plus margin so headers that spill past the
	// boundary can still be validated.
	bufStart := int64(B / 8)
	bufEnd := int64((end+7)/8) + 512
	if bufEnd > int64(f.fileBits/8) {
		bufEnd = int64(f.fileBits / 8)
	}
	buf := make([]byte, bufEnd-bufStart)
	if n, err := f.file.ReadAt(buf, bufStart); err != nil && n < len(buf) {
		return nil, err
	}
	finder := blockfinder.NewCombinedFinder()
	br := bitio.NewBitReader(f.file, int64(f.fileBits/8))
	var dec deflate.Decoder
	searchFrom := B - uint64(bufStart)*8
	for {
		f.finderProbes.Add(1)
		cand, ok := finder.Next(buf, searchFrom)
		abs := uint64(bufStart)*8 + cand
		if !ok || abs >= end {
			return nil, errNoBlock
		}
		res, err := dec.DecodeChunk(br, deflate.ChunkConfig{
			Start:           abs,
			Stop:            stop,
			TwoStage:        true,
			MaxDecompressed: uint64(f.cfg.GuessedRatioLimit) * uint64(f.cfg.ChunkSize),
			SizeHint:        2 * f.cfg.ChunkSize,
		})
		if err == nil {
			return &chunkPayload{res: res}, nil
		}
		searchFrom = cand + 1
	}
}

// --- access -------------------------------------------------------------

// ChunkAt returns the resolved chunk covering the decompressed offset
// plus its table index. io.EOF signals offsets at/after the end.
func (f *Fetcher) ChunkAt(offset uint64) (*ResolvedChunk, int, error) {
	if f.closed {
		return nil, 0, ErrClosed
	}
	if err := f.EnsureCovered(offset); err != nil {
		return nil, 0, err
	}
	if offset >= f.frontierDecomp {
		return nil, 0, io.EOF
	}
	idx := f.findChunk(offset)
	rc, err := f.ChunkByIndex(idx)
	return rc, idx, err
}

func (f *Fetcher) findChunk(offset uint64) int {
	lo, hi := 0, len(f.chunks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.chunks[mid].startDecomp <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ChunkByIndex returns the resolved chunk for table index idx.
func (f *Fetcher) ChunkByIndex(idx int) (*ResolvedChunk, error) {
	if f.closed {
		return nil, ErrClosed
	}
	if idx < 0 || idx >= len(f.chunks) {
		return nil, io.EOF
	}
	if rc, ok := f.access.Get(idx); ok {
		f.verifySequential(rc.firstEntry, rc.lastEntry, rc)
		if !rc.consumed {
			rc.consumed = true
			f.Stats.ChunksConsumed++
		}
		f.onAccess(idx)
		return rc, nil
	}

	// First preference: the whole decode unit from the first pass. The
	// result cache is keyed by start bit, which a later per-entry decode
	// of the unit's first entry shares — so accept the payload only if
	// it really spans the whole unit.
	unit := f.chunks[idx].unitStart
	unitCI := f.chunks[unit]
	if cd, ok := f.results.Get(unitCI.startBit); ok {
		last := unit + 1
		for last < len(f.chunks) && f.chunks[last].unitStart == unit {
			last++
		}
		span := f.chunks[last-1].startDecomp + f.chunks[last-1].size - unitCI.startDecomp
		if cd.res.TotalOut() == span {
			f.results.Delete(unitCI.startBit)
			rc := f.resolve(unit, cd)
			rc.firstEntry, rc.lastEntry = unit, last
			for e := unit; e < last; e++ {
				f.access.Put(e, rc)
			}
			f.verifySequential(unit, last, rc)
			f.onAccess(idx)
			rc.consumed = true
			f.Stats.ChunksConsumed++
			return rc, nil
		}
	}

	// Per-entry path: indexed decode of just this entry.
	ci := f.chunks[idx]
	cd, err := f.obtainEntry(idx, ci)
	if err != nil {
		return nil, err
	}
	rc := f.resolve(idx, cd)
	rc.firstEntry, rc.lastEntry = idx, idx+1
	f.access.Put(idx, rc)
	f.verifySequential(idx, idx+1, rc)
	f.onAccess(idx)
	rc.consumed = true
	f.Stats.ChunksConsumed++
	return rc, nil
}

func (f *Fetcher) onAccess(idx int) {
	f.strategy.Access(uint64(idx))
	f.sweep()
	f.issuePrefetches()
	f.advanceReady()
}

// obtainEntry fetches the payload for a single confirmed entry. Cached
// payloads that share the entry's start bit but cover a different span
// (speculative decodes stopped at a grid-cell boundary) are discarded:
// once the chunk table is confirmed they can never match an entry.
func (f *Fetcher) obtainEntry(idx int, ci chunkInfo) (*chunkPayload, error) {
	if cd, ok := f.results.Get(ci.startBit); ok {
		f.results.Delete(ci.startBit)
		if cd.res.TotalOut() == ci.size {
			return cd, nil
		}
	}
	if fut, ok := f.inflightIdx[idx]; ok {
		delete(f.inflightIdx, idx)
		if cd, err := f.waitServicing(fut); err == nil {
			f.countDelegated(cd)
			return cd, nil
		}
	}
	f.Stats.OnDemandDecodes++
	window, hasWin := f.index.Window(ci.startBit)
	if !hasWin && !ci.atMemberStart {
		return nil, fmt.Errorf("core: no window for chunk at bit %d", ci.startBit)
	}
	cd, err := f.decodeIndexed(ci, window, f.delegationOK())
	if err != nil {
		return nil, err
	}
	f.countDelegated(cd)
	return cd, nil
}

// countDelegated tallies stdlib-delegated decodes (main thread only).
func (f *Fetcher) countDelegated(cd *chunkPayload) {
	if cd.delegated {
		f.Stats.DelegatedDecodes++
	}
}

// resolve dispatches full marker replacement (and CRC computation) to
// the pool and returns the handle — paper Figure 4: "Resolve the
// markers inside each chunk in parallel using the thread pool". first
// is the table index of the first entry the payload covers.
func (f *Fetcher) resolve(first int, cd *chunkPayload) *ResolvedChunk {
	ci := f.chunks[first]
	res := cd.res
	var window []byte
	if len(res.Marked) > 0 {
		window, _ = f.index.Window(ci.startBit)
	}
	verify := f.cfg.VerifyChecksums
	var bounds []crcBound
	if verify {
		bounds = f.crcBounds(first, res)
	}
	rc := &ResolvedChunk{StartDecomp: ci.startDecomp, Size: res.TotalOut()}
	rc.fut = pool.Go(f.pool, func() (*resolvedData, error) {
		segs, err := res.Resolved(window)
		if err != nil {
			return nil, err
		}
		rd := &resolvedData{segs: segs}
		if verify {
			rd.parts = crcParts(bounds, res.TotalOut(), segs)
		}
		return rd, nil
	})
	return rc
}

// crcBounds lists the member ends inside the span that starts at table
// entry first and covers res.TotalOut() bytes. The confirmed table is
// authoritative: its marks survive re-decodes through the delegated
// fast path, whose results carry no footer events. Only when the table
// came from a legacy index import (no marks persisted) do the decode
// result's own footer events serve as the boundary source — and
// delegation is disabled then (see delegationOK).
func (f *Fetcher) crcBounds(first int, res *deflate.ChunkResult) []crcBound {
	var bounds []crcBound
	if f.marksKnown {
		spanStart := f.chunks[first].startDecomp
		spanEnd := spanStart + res.TotalOut()
		for e := first; e < len(f.chunks) && f.chunks[e].startDecomp < spanEnd; e++ {
			for _, m := range f.chunks[e].members {
				bounds = append(bounds, crcBound{relEnd: m.absEnd - spanStart, crc: m.crc})
			}
		}
		return bounds
	}
	for i := range res.Members {
		bounds = append(bounds, crcBound{relEnd: res.Members[i].DecompOffset, crc: res.Members[i].Footer.CRC32})
	}
	return bounds
}

// crcParts computes member-delimited CRCs of the chunk bytes.
func crcParts(bounds []crcBound, total uint64, segs [][]byte) []crcPart {
	var parts []crcPart
	pos := uint64(0)
	segIdx, segOff := 0, 0
	advance := func(n uint64) uint32 {
		crc := uint32(0)
		for n > 0 && segIdx < len(segs) {
			seg := segs[segIdx][segOff:]
			take := uint64(len(seg))
			if take > n {
				take = n
			}
			crc = crc32x.Combine(crc, crc32x.Checksum(seg[:take]), int64(take))
			segOff += int(take)
			n -= take
			if segOff == len(segs[segIdx]) {
				segIdx++
				segOff = 0
			}
		}
		return crc
	}
	for _, b := range bounds {
		n := b.relEnd - pos
		parts = append(parts, crcPart{len: n, crc: advance(n), expect: b.crc, hasExpect: true})
		pos = b.relEnd
	}
	if rest := total - pos; rest > 0 || len(parts) == 0 {
		parts = append(parts, crcPart{len: rest, crc: advance(rest)})
	}
	return parts
}

// verifySequential accumulates member CRCs while consumption stays in
// table order and compares them against the gzip footers (§6 future
// work, implemented). Out-of-order access disables verification.
func (f *Fetcher) verifySequential(first, lastExclusive int, rc *ResolvedChunk) {
	if !f.cfg.VerifyChecksums || f.crcBroken {
		return
	}
	if lastExclusive <= f.crcNext {
		return // already accounted (repeated access to a cached chunk)
	}
	if first != f.crcNext {
		f.crcBroken = true
		return
	}
	rd, err := rc.fut.Wait()
	if err != nil {
		f.crcBroken = true
		return
	}
	for _, p := range rd.parts {
		f.crcAcc = crc32x.Combine(f.crcAcc, p.crc, int64(p.len))
		if p.hasExpect {
			if f.crcAcc != p.expect {
				f.crcBroken = true
				f.Stats.CRCFailures++
				return
			}
			f.crcAcc = 0
		}
	}
	f.crcNext = lastExclusive
}

// CRCStatus reports (verifiedSoFar, failures). verifiedSoFar is false
// once consumption left sequential order or a mismatch occurred.
func (f *Fetcher) CRCStatus() (bool, uint64) {
	return !f.crcBroken, f.Stats.CRCFailures
}

// StatsSnapshot returns the activity counters, folding in the
// worker-side finder-probe count.
func (f *Fetcher) StatsSnapshot() FetcherStats {
	s := f.Stats
	s.FinderProbes = f.finderProbes.Load()
	return s
}

// --- index import/export -------------------------------------------------

// Index returns the seek-point index built so far.
func (f *Fetcher) Index() *gzindex.Index { return f.index }

// ImportIndex installs a finalized index, skipping the initial
// decompression pass entirely (§1.3: "The seek point index can be
// exported and imported ... to avoid the decompression time for the
// initial decompression pass").
func (f *Fetcher) ImportIndex(ix *gzindex.Index) error {
	if !ix.Finalized {
		return errors.New("core: can only import finalized indexes")
	}
	if ix.Len() == 0 {
		return errors.New("core: empty index")
	}
	if ix.CompressedSize != f.fileBits/8 {
		return fmt.Errorf("core: index is for a %d-byte file, have %d bytes",
			ix.CompressedSize, f.fileBits/8)
	}
	if ix.SourceFP != nil && *ix.SourceFP != f.sourceFP {
		return fmt.Errorf("core: index fingerprint %08x/%08x does not match the open file's %08x/%08x (index built for a different file of the same size)",
			ix.SourceFP.Head, ix.SourceFP.Tail, f.sourceFP.Head, f.sourceFP.Tail)
	}
	// Adopt the file's own fingerprint so a re-export of an index
	// imported from the fingerprint-less v2 format gains one.
	ix.SourceFP = &f.sourceFP
	chunks := make([]chunkInfo, ix.Len())
	for i := range chunks {
		p := ix.Point(i)
		ci := chunkInfo{
			startBit:      p.CompressedBitOffset,
			startDecomp:   p.UncompressedOffset,
			atMemberStart: p.AtMemberStart,
			unitStart:     i,
		}
		if i+1 < ix.Len() {
			next := ix.Point(i + 1)
			ci.endBit = next.CompressedBitOffset
			ci.size = next.UncompressedOffset - p.UncompressedOffset
		} else {
			ci.endBit = ix.CompressedSize * 8
			ci.size = ix.UncompressedSize - p.UncompressedOffset
			ci.endIsEOF = true
		}
		for _, m := range ix.MemberEnds(p.CompressedBitOffset) {
			ci.members = append(ci.members,
				memberMark{absEnd: p.UncompressedOffset + m.RelEnd, crc: m.CRC32})
		}
		chunks[i] = ci
	}
	// Discard everything derived from the previous chunk table: cached
	// spans and in-flight decodes are keyed by the old geometry, and
	// the sequential CRC cursor refers to the old entry numbering. An
	// import mid-stream would otherwise serve stale chunk mappings.
	f.resetCaches()
	f.crcNext, f.crcAcc = 0, 0
	// Re-arm sequential verification under the new table — unless a
	// mismatch was already detected: an import must not launder a
	// stream that has failed verification.
	f.crcBroken = f.Stats.CRCFailures > 0
	f.chunks = chunks
	f.index = ix
	// Indexes exported by this implementation persist the member marks,
	// restoring full member verification; legacy (v1) indexes do not,
	// and verification then has to lean on the decode results instead.
	f.marksKnown = ix.MemberMarksComplete
	f.eof = true
	f.frontierBit = ix.CompressedSize * 8
	f.frontierDecomp = ix.UncompressedSize
	return nil
}

// Chunks returns the number of confirmed table entries.
func (f *Fetcher) Chunks() int { return len(f.chunks) }

// EOF reports whether the whole file has been scanned.
func (f *Fetcher) EOF() bool { return f.eof }

// FrontierDecomp returns the decompressed bytes confirmed so far.
func (f *Fetcher) FrontierDecomp() uint64 { return f.frontierDecomp }

// BytesRead reports compressed bytes read from the underlying file.
func (f *Fetcher) BytesRead() int64 { return f.file.BytesRead() }
