package core

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/filereader"
	"repro/internal/gzipw"
)

func TestTinyMembers(t *testing.T) {
	// Many tiny gzip members (e.g. concatenated per-record logs): lots
	// of headers/footers inside chunks, tiny final blocks everywhere.
	data := mkText(30, 200_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, MemberSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 16 << 10, VerifyChecksums: true})
	if got := readAll(t, r); !bytes.Equal(got, data) {
		t.Fatal("tiny-member decode mismatch")
	}
	if ok, fails := r.CRCStatus(); !ok || fails > 0 {
		t.Fatalf("CRC: %v %d", ok, fails)
	}
}

func TestIndexBuiltAtDifferentChunkSize(t *testing.T) {
	// An index built with one chunk size must work in a reader
	// configured with another.
	data := mkText(31, 500_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r1 := open(t, comp, Config{Parallelism: 2, ChunkSize: 16 << 10})
	var ix bytes.Buffer
	if err := r1.ExportIndex(&ix); err != nil {
		t.Fatal(err)
	}
	r2 := open(t, comp, Config{Parallelism: 4, ChunkSize: 256 << 10, VerifyChecksums: true})
	if err := r2.ImportIndex(bytes.NewReader(ix.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r2); !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	if ok, fails := r2.CRCStatus(); !ok || fails > 0 {
		t.Fatalf("CRC: %v %d", ok, fails)
	}
}

func TestReadPastEOF(t *testing.T) {
	data := mkText(32, 50_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	r := open(t, comp, Config{Parallelism: 2})

	if _, err := r.Seek(int64(len(data))+1000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if n, err := r.Read(buf); n != 0 || err != io.EOF {
		t.Fatalf("read past EOF: n=%d err=%v", n, err)
	}
	// ReadAt at the exact end.
	if n, err := r.ReadAt(buf, int64(len(data))); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt at EOF: n=%d err=%v", n, err)
	}
	// ReadAt straddling the end returns the tail plus EOF per io.ReaderAt.
	n, err := r.ReadAt(buf, int64(len(data))-4)
	if n != 4 || (err != io.EOF && err != nil) {
		t.Fatalf("straddling ReadAt: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf[:4], data[len(data)-4:]) {
		t.Fatal("tail bytes wrong")
	}
}

func TestZeroLengthReads(t *testing.T) {
	data := mkText(33, 10_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	r := open(t, comp, Config{Parallelism: 2})
	if n, err := r.Read(nil); n != 0 || err != nil {
		t.Fatalf("Read(nil): %d %v", n, err)
	}
	got := readAll(t, r)
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch after zero-length read")
	}
}

func TestBGZFWithChecksums(t *testing.T) {
	// BGZF chunks are delegated to stdlib gzip, which verifies each
	// member's CRC itself; corrupting a payload byte must surface as an
	// error even though the architecture-level CRC chain is bypassed.
	data := mkText(34, 400_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(comp)
	bad[len(bad)/2] ^= 0x11
	r, err := NewReader(filereader.MemoryReader(bad), Config{Parallelism: 2})
	if err != nil {
		// Corruption in the member scan metadata is also acceptable.
		return
	}
	defer r.Close()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err == nil && bytes.Equal(buf.Bytes(), data) {
		t.Fatal("BGZF corruption silently ignored")
	}
}

func TestStatsIndexedDecodes(t *testing.T) {
	// Index-primed reads run the custom single-stage decoder on every
	// chunk; the stdlib delegation path is gone (the rewritten kernels
	// outrun compress/flate), so its counter must stay zero.
	data := mkBase64(35, 600_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r1 := open(t, comp, Config{Parallelism: 2, ChunkSize: 32 << 10})
	var ix bytes.Buffer
	if err := r1.ExportIndex(&ix); err != nil {
		t.Fatal(err)
	}
	r2 := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	if err := r2.ImportIndex(bytes.NewReader(ix.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r2); !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
	s := r2.FetcherStats()
	if s.IndexedDecodes == 0 {
		t.Fatalf("no indexed decodes (onDemand=%d)", s.OnDemandDecodes)
	}
	if s.DelegatedDecodes != 0 {
		t.Fatalf("unexpected delegated decodes: %d", s.DelegatedDecodes)
	}
}

func TestSequentialReadAfterRandomAccess(t *testing.T) {
	// Random access must not corrupt a later full sequential pass
	// (regression guard for cache/frontier interactions).
	data := mkText(36, 400_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r := open(t, comp, Config{Parallelism: 3, ChunkSize: 32 << 10})
	buf := make([]byte, 100)
	for _, off := range []int{300_000, 10, 200_000, 399_000, 0} {
		if _, err := r.ReadAt(buf, int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("sequential pass after random access: %v", err)
	}
}
