package core

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"testing"

	"strings"

	"repro/internal/deflate"
	"repro/internal/filereader"
	"repro/internal/gzindex"
	"repro/internal/gzipw"
	"repro/internal/prefetch"
)

// mkText builds repetitive text (marker-heavy under compression).
func mkText(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"wood", "chuck", "would", "how", "much", "if", "a", "the", "quick"}
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, words[rng.Intn(len(words))]...)
		out = append(out, ' ')
	}
	return out[:n]
}

// mkBase64 builds base64-style data (almost no back-references).
func mkBase64(seed int64, n int) []byte {
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		if i%77 == 76 {
			out[i] = '\n'
		} else {
			out[i] = alpha[rng.Intn(64)]
		}
	}
	return out
}

func mkRandom(seed int64, n int) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

func open(t testing.TB, comp []byte, cfg Config) *ParallelGzipReader {
	t.Helper()
	r, err := NewReader(filereader.MemoryReader(comp), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func readAll(t testing.TB, r *ParallelGzipReader) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The cross-product matrix: data kinds x compressor structures, small
// chunk size to force many parallel chunks.
func compressorMatrix() map[string]gzipw.Options {
	return map[string]gzipw.Options{
		"gzip":        {Level: 6, BlockSize: 32 << 10},
		"gzip-small":  {Level: 9, BlockSize: 8 << 10},
		"pigz":        {Level: 6, BlockSize: 32 << 10, IndependentChunks: 64 << 10},
		"stored":      {Level: 0},
		"single":      {Level: 1, SingleBlock: true, Strategy: gzipw.DynamicOnly},
		"multimember": {Level: 6, BlockSize: 32 << 10, MemberSize: 100 << 10},
		"bgzf":        {Level: 6, BGZF: true},
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	datasets := map[string][]byte{
		"text":   mkText(1, 900_000),
		"base64": mkBase64(2, 900_000),
		"random": mkRandom(3, 500_000),
	}
	for dname, data := range datasets {
		for cname, opts := range compressorMatrix() {
			comp, _, err := gzipw.Compress(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4} {
				r := open(t, comp, Config{Parallelism: par, ChunkSize: 64 << 10, VerifyChecksums: true})
				got := readAll(t, r)
				if !bytes.Equal(got, data) {
					t.Fatalf("%s/%s P=%d: mismatch (%d vs %d bytes)", dname, cname, par, len(got), len(data))
				}
				if ok, fails := r.CRCStatus(); !ok || fails > 0 {
					t.Fatalf("%s/%s P=%d: CRC verification failed (%d failures)", dname, cname, par, fails)
				}
			}
		}
	}
}

func TestStdlibCompressedInput(t *testing.T) {
	// Files produced by an entirely independent compressor.
	data := mkText(4, 1_200_000)
	for _, level := range []int{1, 6, 9} {
		var buf bytes.Buffer
		w, _ := gzip.NewWriterLevel(&buf, level)
		w.Write(data)
		w.Close()
		r := open(t, buf.Bytes(), Config{Parallelism: 6, ChunkSize: 32 << 10, VerifyChecksums: true})
		if got := readAll(t, r); !bytes.Equal(got, data) {
			t.Fatalf("level %d: mismatch", level)
		}
		stats := r.FetcherStats()
		if stats.GuessTasks == 0 {
			t.Fatalf("level %d: no speculative decodes happened (chunking broken)", level)
		}
	}
}

func TestReadSmallPieces(t *testing.T) {
	data := mkText(5, 300_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r := open(t, comp, Config{Parallelism: 3, ChunkSize: 32 << 10})
	var got []byte
	buf := make([]byte, 777)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("piecewise read mismatch")
	}
}

func TestSeekAndRead(t *testing.T) {
	data := mkText(6, 600_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		off := rng.Intn(len(data) - 100)
		if _, err := r.Seek(int64(off), io.SeekStart); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 100)
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if !bytes.Equal(buf, data[off:off+100]) {
			t.Fatalf("offset %d: mismatch", off)
		}
	}
	// SeekEnd and SeekCurrent.
	end, err := r.Seek(0, io.SeekEnd)
	if err != nil || end != int64(len(data)) {
		t.Fatalf("SeekEnd: %d, %v", end, err)
	}
	if _, err := r.Seek(-10, io.SeekCurrent); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(rest, data[len(data)-10:]) {
		t.Fatalf("tail read: %q %v", rest, err)
	}
}

func TestReadAtConcurrent(t *testing.T) {
	// §3: "fast concurrent access at two different offsets".
	data := mkText(8, 800_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r := open(t, comp, Config{
		Parallelism: 4, ChunkSize: 32 << 10,
		Strategy: prefetch.NewMultiStream(), AccessCacheSize: 8,
	})
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			start := g * len(data) / 2
			buf := make([]byte, 1000)
			for off := start; off+len(buf) < start+len(data)/2; off += 50_000 {
				if _, err := r.ReadAt(buf, int64(off)); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, data[off:off+len(buf)]) {
					errs <- io.ErrUnexpectedEOF
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < 2; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexExportImport(t *testing.T) {
	data := mkText(9, 700_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})

	r1 := open(t, comp, Config{Parallelism: 4, ChunkSize: 64 << 10})
	var ixBuf bytes.Buffer
	if err := r1.ExportIndex(&ixBuf); err != nil {
		t.Fatal(err)
	}

	r2 := open(t, comp, Config{Parallelism: 4, ChunkSize: 64 << 10, VerifyChecksums: true})
	if err := r2.ImportIndex(bytes.NewReader(ixBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r2); !bytes.Equal(got, data) {
		t.Fatal("decode with imported index mismatch")
	}
	stats := r2.FetcherStats()
	if stats.GuessTasks != 0 {
		t.Fatalf("index-primed decode ran %d speculative tasks", stats.GuessTasks)
	}
	if ok, _ := r2.CRCStatus(); !ok {
		t.Fatal("CRC verification failed with index")
	}
	// Random access with imported index needs no initial pass.
	r3 := open(t, comp, Config{Parallelism: 2, ChunkSize: 64 << 10})
	if err := r3.ImportIndex(bytes.NewReader(ixBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 500)
	off := len(data) - 600
	if _, err := r3.ReadAt(buf, int64(off)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+500]) {
		t.Fatal("random access with index mismatch")
	}
}

func TestImportIndexWrongFile(t *testing.T) {
	data := mkText(10, 100_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	r1 := open(t, comp, Config{Parallelism: 2})
	var ixBuf bytes.Buffer
	if err := r1.ExportIndex(&ixBuf); err != nil {
		t.Fatal(err)
	}
	other, _, _ := gzipw.Compress(mkText(11, 50_000), gzipw.Options{Level: 6})
	r2 := open(t, other, Config{Parallelism: 2})
	if err := r2.ImportIndex(bytes.NewReader(ixBuf.Bytes())); err == nil {
		t.Fatal("index for a different file accepted")
	}
}

func TestImportIndexWrongFileSameSize(t *testing.T) {
	// Two different files of identical compressed length: the size
	// check alone cannot tell them apart, the source fingerprint must.
	data := mkText(10, 100_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	r1 := open(t, comp, Config{Parallelism: 2})
	var ixBuf bytes.Buffer
	if err := r1.ExportIndex(&ixBuf); err != nil {
		t.Fatal(err)
	}
	other := bytes.Clone(comp)
	other[100] ^= 0xFF // same length, different content
	r2 := open(t, other, Config{Parallelism: 2})
	err := r2.ImportIndex(bytes.NewReader(ixBuf.Bytes()))
	if err == nil {
		t.Fatal("index for a different file of identical size accepted")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("rejected for the wrong reason: %v", err)
	}
}

func TestImportFingerprintlessV2Index(t *testing.T) {
	// Indexes saved before the fingerprint existed must keep importing
	// (they just stay size-checked only) — and a re-export upgrades
	// them to the fingerprinted format.
	data := mkText(10, 100_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	r1 := open(t, comp, Config{Parallelism: 2})
	var ixBuf bytes.Buffer
	if err := r1.ExportIndex(&ixBuf); err != nil {
		t.Fatal(err)
	}
	// Strip the fingerprint to emulate a v2-era index.
	ix, err := gzindex.Read(bytes.NewReader(ixBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ix.SourceFP = nil
	var v2ish bytes.Buffer
	if _, err := ix.WriteTo(&v2ish); err != nil {
		t.Fatal(err)
	}
	r2 := open(t, comp, Config{Parallelism: 2})
	if err := r2.ImportIndex(bytes.NewReader(v2ish.Bytes())); err != nil {
		t.Fatalf("fingerprint-less index rejected: %v", err)
	}
	var re bytes.Buffer
	if err := r2.ExportIndex(&re); err != nil {
		t.Fatal(err)
	}
	reIx, err := gzindex.Read(bytes.NewReader(re.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if reIx.SourceFP == nil {
		t.Fatal("re-export did not adopt the file fingerprint")
	}
}

func TestBGZFFastPath(t *testing.T) {
	data := mkText(12, 600_000)
	comp, _, err := gzipw.Compress(data, gzipw.Options{Level: 6, BGZF: true})
	if err != nil {
		t.Fatal(err)
	}
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 128 << 10, VerifyChecksums: true})
	// The index must be complete before any read: BGZF needs no scan.
	if r.f.EOF() != true {
		t.Fatal("BGZF file not recognised by the fast path")
	}
	if got := readAll(t, r); !bytes.Equal(got, data) {
		t.Fatal("BGZF decode mismatch")
	}
	stats := r.FetcherStats()
	if stats.GuessTasks != 0 {
		t.Fatalf("BGZF path ran %d speculative tasks", stats.GuessTasks)
	}
	if ok, _ := r.CRCStatus(); !ok {
		t.Fatal("BGZF CRC verification failed")
	}
}

func TestSingleBlockFileDegradesGracefully(t *testing.T) {
	// igzip -0 structure: one huge dynamic block; parallelization is
	// impossible (§4.8) but decoding must stay correct.
	data := mkBase64(13, 400_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 1, SingleBlock: true, Strategy: gzipw.DynamicOnly})
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	if got := readAll(t, r); !bytes.Equal(got, data) {
		t.Fatal("single-block decode mismatch")
	}
	stats := r.FetcherStats()
	if stats.GuessNoBlock == 0 {
		t.Fatal("expected no-block speculative results for a single-block file")
	}
}

func TestHighCompressionRatioFile(t *testing.T) {
	// Zeros compress ~1000x; speculative chunks hit the ratio guard and
	// the frontier decode must still handle the file (§1.4).
	data := make([]byte, 8<<20)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 9, BlockSize: 64 << 10})
	if len(comp) > 100_000 {
		t.Fatalf("zeros should compress tiny, got %d", len(comp))
	}
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 8 << 10, GuessedRatioLimit: 8})
	got := readAll(t, r)
	if !bytes.Equal(got, data) {
		t.Fatal("high-ratio decode mismatch")
	}
}

func TestChunkSplitting(t *testing.T) {
	// A high-ratio file must yield index entries much smaller than the
	// raw decode units (§1.4 chunk splitting).
	data := bytes.Repeat(mkText(14, 1000), 3000) // ~3 MB, very repetitive
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 9, BlockSize: 8 << 10})
	r := open(t, comp, Config{Parallelism: 2, ChunkSize: 16 << 10})
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ix := r.Index()
	if ix.Len() < 4 {
		t.Fatalf("expected split entries, got %d", ix.Len())
	}
	var maxSize uint64
	for i := 0; i+1 < ix.Len(); i++ {
		size := ix.Point(i+1).UncompressedOffset - ix.Point(i).UncompressedOffset
		if size > maxSize {
			maxSize = size
		}
	}
	if maxSize > uint64(16<<10)*8 {
		t.Fatalf("largest entry %d far exceeds chunk size", maxSize)
	}
	// Re-reading via the split index must be correct.
	if got := readAll(t, r); !bytes.Equal(got, data) {
		t.Fatal("split-index read mismatch")
	}
}

func TestTruncatedFileErrors(t *testing.T) {
	data := mkText(15, 200_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	trunc := comp[:len(comp)/2]
	r := open(t, trunc, Config{Parallelism: 2, ChunkSize: 16 << 10})
	var buf bytes.Buffer
	_, err := r.WriteTo(&buf)
	if err == nil {
		t.Fatal("truncated file decoded without error")
	}
}

func TestCorruptMidFileErrors(t *testing.T) {
	data := mkText(16, 400_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	comp[len(comp)/2] ^= 0xA5
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err == nil {
		// Corruption may land in a place that still decodes structurally;
		// then the checksum pass must catch it instead.
		r2 := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10, VerifyChecksums: true})
		var buf2 bytes.Buffer
		if _, err2 := r2.WriteTo(&buf2); err2 == nil {
			if ok, _ := r2.CRCStatus(); ok && bytes.Equal(buf2.Bytes(), data) {
				t.Fatal("corruption silently ignored")
			}
		}
	}
}

func TestEmptyFile(t *testing.T) {
	comp, _, _ := gzipw.Compress(nil, gzipw.Options{Level: 6})
	r := open(t, comp, Config{Parallelism: 2})
	got := readAll(t, r)
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
	size, err := r.Size()
	if err != nil || size != 0 {
		t.Fatalf("size %d err %v", size, err)
	}
}

func TestNotGzipErrors(t *testing.T) {
	if _, err := NewReader(filereader.MemoryReader([]byte("not a gzip file")), Config{}); err == nil {
		t.Fatal("non-gzip input accepted")
	}
}

func TestSizeWithoutReading(t *testing.T) {
	data := mkText(17, 300_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6})
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	size, err := r.Size()
	if err != nil || size != int64(len(data)) {
		t.Fatalf("size %d err %v want %d", size, err, len(data))
	}
}

func TestPrefetchStrategies(t *testing.T) {
	data := mkText(18, 500_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	for name, s := range map[string]prefetch.Strategy{
		"fixed":       prefetch.NewFixed(),
		"adaptive":    prefetch.NewAdaptive(),
		"multistream": prefetch.NewMultiStream(),
	} {
		r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10, Strategy: s})
		if got := readAll(t, r); !bytes.Equal(got, data) {
			t.Fatalf("%s: mismatch", name)
		}
	}
}

func TestSerialBaselineAgreement(t *testing.T) {
	// The parallel reader and the plain serial decoder must agree.
	data := mkText(19, 400_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	serial, err := deflate.DecompressGzip(comp)
	if err != nil {
		t.Fatal(err)
	}
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	if got := readAll(t, r); !bytes.Equal(got, serial) {
		t.Fatal("parallel disagrees with serial")
	}
}
