package core

import (
	"math/rand"
	"testing"

	"repro/internal/gzipw"
)

// TestChunkCoverageAfterRandomAccess is a regression test: a per-entry
// indexed decode shares its start bit with the decode unit it belongs
// to, and the unit path of ChunkByIndex once mistook such an entry
// payload for the whole unit, caching chunks that did not cover the
// offsets they were registered for.
func TestChunkCoverageAfterRandomAccess(t *testing.T) {
	data := mkText(6, 600_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		off := rng.Intn(len(data) - 100)
		rc, idx, err := r.f.ChunkAt(uint64(off))
		if err != nil {
			t.Fatalf("trial %d off %d: %v", trial, off, err)
		}
		segs, err := rc.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range segs {
			total += len(s)
		}
		if uint64(off) < rc.StartDecomp || uint64(off) >= rc.StartDecomp+uint64(total) {
			ci := r.f.chunks[idx]
			t.Fatalf("not covered: off=%d rc=[%d,+%d) entry={startDecomp:%d size:%d unit:%d}",
				off, rc.StartDecomp, total, ci.startDecomp, ci.size, ci.unitStart)
		}
	}
}
