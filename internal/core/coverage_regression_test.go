package core

import (
	"math/rand"
	"testing"

	"repro/internal/gzipw"
)

// TestChunkCoverageAfterRandomAccess is a regression test: the span
// serving a random-access offset must actually cover that offset, and
// its cached content must match its table extent — the bespoke chunk
// path once cached unit payloads under entries they did not cover.
func TestChunkCoverageAfterRandomAccess(t *testing.T) {
	data := mkText(6, 600_000)
	comp, _, _ := gzipw.Compress(data, gzipw.Options{Level: 6, BlockSize: 16 << 10})
	r := open(t, comp, Config{Parallelism: 4, ChunkSize: 32 << 10})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		off := rng.Intn(len(data) - 100)
		i, err := r.f.eng.SpanAt(int64(off))
		if err != nil {
			t.Fatalf("trial %d off %d: %v", trial, off, err)
		}
		content, err := r.f.eng.SpanContent(i)
		if err != nil {
			t.Fatal(err)
		}
		start, size := r.f.eng.SpanExtent(i)
		if int64(len(content)) != size {
			t.Fatalf("span %d: content %d bytes, table says %d", i, len(content), size)
		}
		if int64(off) < start || int64(off) >= start+size {
			t.Fatalf("not covered: off=%d span %d=[%d,+%d)", off, i, start, size)
		}
	}
}
