package core
